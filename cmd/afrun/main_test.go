package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// miniGraph has several 0→5 routes plus spurs; the (0,5) instance has a
// comfortably positive p_max.
const miniGraph = "0 1\n0 2\n1 3\n1 4\n2 3\n2 4\n3 5\n4 5\n1 6\n2 7\n"

func writeGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte(miniGraph), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

var args = []string{"-s", "0", "-t", "5", "-alpha", "0.3", "-eps", "0.1",
	"-N", "50", "-l", "4000", "-trials", "4000", "-seed", "3"}

// TestRunGolden runs afrun on a mini instance and checks the full report
// shape: every line of the golden format, with parseable values, and
// byte-identical output across runs (the run is deterministic in -seed).
func TestRunGolden(t *testing.T) {
	path := writeGraph(t)
	var out strings.Builder
	if err := run(append([]string{"-file", path}, args...), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, pat := range []string{
		`^instance: 8 nodes, 10 edges, s=0 t=5\n`,
		`(?m)^p\*max  = 0\.\d{5} \(\|Vmax\| = \d+\)$`,
		`(?m)^RAF    : \|I\| = \d+, f = 0\.\d{5}  \(pool 4000, type-1 \d+, covered \d+\)$`,
		`(?m)^HD     : \|I\| = \d+, f = 0\.\d{5}$`,
		`(?m)^SP     : \|I\| = \d+, f = 0\.\d{5}$`,
		`(?m)^invited: \[\d+( \d+)*\]$`,
	} {
		if !regexp.MustCompile(pat).MatchString(got) {
			t.Errorf("output missing %q:\n%s", pat, got)
		}
	}
	var again strings.Builder
	if err := run(append([]string{"-file", path}, args...), &again); err != nil {
		t.Fatal(err)
	}
	if again.String() != got {
		t.Errorf("output not deterministic:\n%s\nvs\n%s", got, again.String())
	}
}

func TestRunDataset(t *testing.T) {
	// A generated analog: pick a pair that may be invalid for -s/-t and
	// accept either a clean run or a clean validation error.
	var out strings.Builder
	err := run([]string{"-dataset", "Wiki", "-scale", "0.02", "-s", "0", "-t", "97",
		"-alpha", "0.3", "-eps", "0.1", "-N", "50", "-l", "2000", "-trials", "2000"}, &out)
	if err == nil && !strings.Contains(out.String(), "instance:") {
		t.Errorf("no report produced:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -s/-t accepted")
	}
	if err := run([]string{"-dataset", "nope", "-s", "0", "-t", "1"}, &out); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run([]string{"-file", "/nonexistent", "-s", "0", "-t", "1"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	path := writeGraph(t)
	if err := run([]string{"-file", path, "-s", "0", "-t", "1"}, &out); err == nil {
		t.Error("adjacent pair accepted")
	}
}
