// Command afrun solves one active-friending instance with RAF and reports
// the invitation set, its measured acceptance probability, and the HD/SP
// baselines at the same budget.
//
// Usage:
//
//	afrun -dataset Wiki -scale 0.05 -s 12 -t 345 -alpha 0.2
//	afrun -file graph.txt -s 0 -t 99 -alpha 0.3 -l 50000
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	af "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "afrun:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("afrun", flag.ContinueOnError)
	dataset := fs.String("dataset", "Wiki", "Table I dataset analog")
	scale := fs.Float64("scale", 0.05, "dataset scale")
	file := fs.String("file", "", "edge-list file instead of a generated dataset")
	sFlag := fs.Int("s", -1, "initiator node (required)")
	tFlag := fs.Int("t", -1, "target node (required)")
	alpha := fs.Float64("alpha", 0.1, "required fraction of p_max")
	eps := fs.Float64("eps", 0.01, "accuracy slack")
	bigN := fs.Float64("N", 100000, "success-probability control (1 - 2/N)")
	l := fs.Int64("l", 200000, "realization cap (practical regime)")
	seed := fs.Int64("seed", 1, "random seed")
	trials := fs.Int64("trials", 50000, "Monte-Carlo trials for reporting f")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sFlag < 0 || *tFlag < 0 {
		return fmt.Errorf("both -s and -t are required")
	}

	var g *af.Graph
	var err error
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return fmt.Errorf("opening graph: %w", err)
		}
		defer f.Close()
		g, err = af.LoadEdgeList(f)
		if err != nil {
			return err
		}
	} else {
		g, err = af.GenerateDataset(*dataset, *scale, *seed)
		if err != nil {
			return err
		}
	}

	p, err := af.NewProblem(g, af.Node(*sFlag), af.Node(*tFlag))
	if err != nil {
		return err
	}
	ctx := context.Background()
	sol, err := p.Solve(ctx, af.Options{
		Alpha: *alpha, Eps: *eps, N: *bigN,
		Seed: *seed, MaxRealizations: *l,
	})
	if err != nil {
		return err
	}
	fRAF, err := p.AcceptanceProbability(ctx, sol.Invited, *trials, *seed+1)
	if err != nil {
		return err
	}
	k := len(sol.Invited)
	fHD, err := p.AcceptanceProbability(ctx, p.HighDegreeSet(k), *trials, *seed+2)
	if err != nil {
		return err
	}
	fSP, err := p.AcceptanceProbability(ctx, p.ShortestPathSet(k), *trials, *seed+3)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "instance: %d nodes, %d edges, s=%d t=%d\n", g.NumNodes(), g.NumEdges(), *sFlag, *tFlag)
	fmt.Fprintf(w, "p*max  = %.5f (|Vmax| = %d)\n", sol.PStar, sol.VmaxSize)
	fmt.Fprintf(w, "RAF    : |I| = %d, f = %.5f  (pool %d, type-1 %d, covered %d)\n",
		k, fRAF, sol.Realizations, sol.PoolType1, sol.Covered)
	fmt.Fprintf(w, "HD     : |I| = %d, f = %.5f\n", k, fHD)
	fmt.Fprintf(w, "SP     : |I| = %d, f = %.5f\n", k, fSP)
	if k <= 50 {
		fmt.Fprintf(w, "invited: %v\n", sol.Invited)
	}
	return nil
}
