// Command afgen generates a synthetic social graph — either an analog of
// one of the paper's Table I datasets or a generic random model — and
// writes it as a SNAP-style edge list.
//
// Usage:
//
//	afgen -dataset Wiki -scale 0.1 -seed 1 -out wiki.txt
//	afgen -model ba -n 10000 -k 8 -out ba.txt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "afgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("afgen", flag.ContinueOnError)
	dataset := fs.String("dataset", "", "Table I dataset analog: Wiki|HepTh|HepPh|Youtube")
	scale := fs.Float64("scale", 0.1, "fraction of the published node count (dataset mode)")
	model := fs.String("model", "", "generic model: er|ba|ws|plc|pm")
	n := fs.Int("n", 1000, "node count (model mode)")
	m := fs.Int("m", 5000, "edge count (er)")
	k := fs.Int("k", 4, "attachment/lattice degree (ba, ws, pm)")
	beta := fs.Float64("beta", 0.1, "rewiring probability (ws)")
	exponent := fs.Float64("exponent", 2.5, "power-law exponent (plc)")
	avgDeg := fs.Float64("avgdeg", 8, "average degree (plc)")
	prefBias := fs.Float64("prefbias", 0.8, "preferential fraction (pm)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *graph.Graph
	var err error
	rng := rand.New(rand.NewSource(*seed))
	switch {
	case *dataset != "":
		var d gen.Dataset
		if d, err = gen.DatasetByName(*dataset); err == nil {
			g, err = d.Generate(*scale, *seed)
		}
	case *model == "er":
		g, err = gen.ErdosRenyi(*n, *m, rng)
	case *model == "ba":
		g, err = gen.BarabasiAlbert(*n, *k, rng)
	case *model == "ws":
		g, err = gen.WattsStrogatz(*n, *k, *beta, rng)
	case *model == "plc":
		g, err = gen.PowerLawConfiguration(*n, *exponent, *avgDeg, rng)
	case *model == "pm":
		g, err = gen.PreferentialMixed(*n, *k, *prefBias, rng)
	default:
		return fmt.Errorf("need -dataset or -model (er|ba|ws|plc|pm)")
	}
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("creating output: %w", err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	if err := gen.WriteEdgeList(w, g); err != nil {
		return err
	}
	st := gen.Summarize(g)
	fmt.Fprintf(os.Stderr, "generated %d nodes, %d edges (edges/node %.2f, max degree %d)\n",
		st.Nodes, st.Edges, st.EdgesPerNode, st.MaxDegree)
	return nil
}
