package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.txt")
	if err := run([]string{"-dataset", "Wiki", "-scale", "0.02", "-out", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# Undirected graph") {
		t.Errorf("missing header: %q", string(data[:40]))
	}
}

func TestRunModels(t *testing.T) {
	for _, args := range [][]string{
		{"-model", "er", "-n", "30", "-m", "60"},
		{"-model", "ba", "-n", "30", "-k", "2"},
		{"-model", "ws", "-n", "30", "-k", "2", "-beta", "0.2"},
		{"-model", "plc", "-n", "50", "-exponent", "2.5", "-avgdeg", "4"},
		{"-model", "pm", "-n", "30", "-k", "2", "-prefbias", "0.5"},
	} {
		out := filepath.Join(t.TempDir(), "g.txt")
		if err := run(append(args, "-out", out), os.Stdout); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}, os.Stdout); err == nil {
		t.Error("no mode accepted")
	}
	if err := run([]string{"-dataset", "nope"}, os.Stdout); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run([]string{"-model", "ba", "-n", "1", "-k", "5"}, os.Stdout); err == nil {
		t.Error("invalid BA params accepted")
	}
}
