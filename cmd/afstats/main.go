// Command afstats prints Table I — the dataset statistics — either for
// the synthetic Table I analogs (regenerated at the requested scale) or
// for an edge-list file.
//
// Usage:
//
//	afstats -scale 0.1 -seed 1          # all four Table I analogs
//	afstats -file graph.txt             # stats of a stored graph
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
	"repro/internal/gen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "afstats:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("afstats", flag.ContinueOnError)
	scale := fs.Float64("scale", 0.1, "fraction of published node counts")
	seed := fs.Int64("seed", 1, "generator seed")
	file := fs.String("file", "", "edge-list file to summarize instead")
	csv := fs.Bool("csv", false, "emit CSV instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var names []string
	var stats []gen.Stats
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return fmt.Errorf("opening graph: %w", err)
		}
		defer f.Close()
		g, err := gen.ReadEdgeList(f)
		if err != nil {
			return err
		}
		names = []string{*file}
		stats = []gen.Stats{gen.Summarize(g)}
	} else {
		for _, d := range gen.Datasets() {
			g, err := d.Generate(*scale, *seed)
			if err != nil {
				return err
			}
			names = append(names, fmt.Sprintf("%s (paper: %d/%d)", d.Name, d.PaperNodes, d.PaperEdges))
			stats = append(stats, gen.Summarize(g))
		}
	}
	t := eval.RenderTable1(names, stats)
	if *csv {
		return t.WriteCSV(os.Stdout)
	}
	return t.WriteText(os.Stdout)
}
