package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunGenerated(t *testing.T) {
	if err := run([]string{"-scale", "0.02"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "0.02", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFileErrors(t *testing.T) {
	if err := run([]string{"-file", "/nonexistent/path"}); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("not numbers\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", bad}); err == nil {
		t.Error("malformed file accepted")
	}
	if err := run([]string{"-scale", "99"}); err == nil {
		t.Error("bad scale accepted")
	}
}
