package main

import (
	"encoding/csv"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns everything fn wrote.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run: %v (output so far: %q)", runErr, out)
	}
	return string(out)
}

func TestRunGenerated(t *testing.T) {
	out := captureStdout(t, func() error { return run([]string{"-scale", "0.02"}) })
	for _, want := range []string{"Table I", "dataset", "nodes", "edges", "Wiki", "HepTh", "HepPh", "Youtube"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestRunGeneratedCSV(t *testing.T) {
	out := captureStdout(t, func() error { return run([]string{"-scale", "0.02", "-csv"}) })
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("output is not CSV: %v\n%s", err, out)
	}
	// Header plus one row per registered dataset analog.
	if len(rows) != 5 {
		t.Fatalf("got %d CSV rows, want 5:\n%s", len(rows), out)
	}
	if rows[0][0] != "dataset" || rows[0][1] != "nodes" {
		t.Errorf("header = %v", rows[0])
	}
	for _, row := range rows[1:] {
		n, err := strconv.Atoi(row[1])
		if err != nil || n <= 0 {
			t.Errorf("row %v: bad node count", row)
		}
	}
}

func TestRunFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error { return run([]string{"-file", path, "-csv"}) })
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("output is not CSV: %v\n%s", err, out)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d CSV rows, want 2:\n%s", len(rows), out)
	}
	// The path triangle has 3 nodes and 2 edges.
	if rows[1][0] != path || rows[1][1] != "3" || rows[1][2] != "2" {
		t.Errorf("file stats row = %v, want [%s 3 2 ...]", rows[1], path)
	}
}

func TestRunFileErrors(t *testing.T) {
	if err := run([]string{"-file", "/nonexistent/path"}); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("not numbers\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", bad}); err == nil {
		t.Error("malformed file accepted")
	}
	if err := run([]string{"-scale", "99"}); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-bogusflag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
