// Command afexp regenerates the paper's evaluation artifacts — every table
// and every figure of Sec. IV — on the synthetic Table I analogs.
//
// Usage:
//
//	afexp -exp table1 -scale 0.1
//	afexp -exp fig3 -datasets Wiki,HepTh -pairs 30 -scale 0.05
//	afexp -exp fig4 | -exp fig5 | -exp table2 | -exp fig6 | -exp warm | -exp refine | -exp churn | -exp topk | -exp transport | -exp all
//
// The warm experiment is this reproduction's restart story rather than a
// paper artifact: it serves a pool-bound workload cold, flushes every
// pool snapshot to disk, replays the workload on a server warmed from
// those snapshots, and reports the timing gap plus a byte-identity check
// of the answers. The refine experiment measures the resumable p_max
// estimator the same way: a staged coarse → tight Algorithm 2 sequence
// against a cold tight estimate, reporting the draws the retained ledger
// saved and an identity check of the estimates. The churn experiment is
// the dynamic-graph story: sparse random deltas mutate the graph epoch
// by epoch while warm pools migrate across each one by repair, and the
// repair draw bill is compared against discard-and-resample. The topk
// experiment measures the batched ranking scheduler: a successive-halving
// run at a quarter of the exhaustive draw budget against the exhaustive
// batch, reporting the draw ratio, the precision@k the schedule retained,
// and a byte-identity check of the exhaustive batch against independent
// SolveMax queries. The transport experiment serves one workload through
// the query protocol's three transports — direct Dispatcher calls, the
// pipe's line protocol and a live HTTP endpoint (internal/proto) — and
// verifies the reply streams are byte-identical, reporting each path's
// wall-clock protocol overhead.
//
// Scale, pair count and Monte-Carlo budgets default to laptop-friendly
// values; raise them (e.g. -scale 1 -pairs 500) to match the paper's
// setup exactly.
//
// Experiments route through the graph-level serving layer
// (internal/server): each pair's pool is sampled once, reused across the
// α-sweep (fig3), the growth curves (fig4/fig5) and the f measurements,
// and evicted least-recently-used when -maxbytes bounds the pool memory.
// All results are deterministic in -seed, independent of -workers and of
// the eviction schedule.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync/atomic"

	"repro/internal/baselines"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/obs/httpserve"
	"repro/internal/server"
	"repro/internal/tablewriter"
	"repro/internal/weights"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "afexp:", err)
		os.Exit(1)
	}
}

type options struct {
	exp      string
	datasets []string
	scale    float64
	pairs    int
	maxPmax  float64
	alpha    float64
	eps      float64
	bigN     float64
	maxReal  int64
	maxBytes int64
	trials   int64
	seed     int64
	workers  int
	csv      bool
}

func run(args []string) error {
	fs := flag.NewFlagSet("afexp", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: table1|fig3|fig4|fig5|table2|fig6|warm|refine|churn|topk|transport|all")
	datasets := fs.String("datasets", "Wiki,HepTh,HepPh,Youtube", "comma-separated dataset analogs")
	scale := fs.Float64("scale", 0.05, "dataset scale (1 = paper size)")
	pairs := fs.Int("pairs", 20, "number of (s,t) pairs per dataset (paper: 500)")
	maxPmax := fs.Float64("maxpmax", 0, "reject pairs with p_max above this (0 disables); keeps scaled analogs in the paper's p_max regime")
	alpha := fs.Float64("alpha", 0.1, "alpha for fig4/fig5/table2/fig6")
	eps := fs.Float64("eps", 0.01, "accuracy slack (paper: 0.01)")
	bigN := fs.Float64("N", 100000, "success control (paper: 100000)")
	maxReal := fs.Int64("maxreal", 60000, "realization cap per RAF run")
	maxBytes := fs.Int64("maxbytes", 0, "serving-layer pool memory budget in bytes (0 = unlimited)")
	trials := fs.Int64("trials", 20000, "Monte-Carlo trials per f estimate")
	seed := fs.Int64("seed", 1, "root seed")
	workers := fs.Int("workers", 0, "parallel workers (0 = CPUs)")
	csv := fs.Bool("csv", false, "emit CSV")
	obsCLI := httpserve.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// One observability bundle spans every dataset's server; /statusz
	// follows the server currently running experiments.
	var ob *obs.Obs
	var curSv atomic.Pointer[server.Server]
	var obsOpts httpserve.Options
	if obsCLI.Enabled() {
		ob = obs.New()
		obsOpts = httpserve.Options{
			Registry: ob.Registry,
			Tracer:   ob.Tracer,
			Statusz: func(w io.Writer) {
				if sv := curSv.Load(); sv != nil {
					sv.WriteStatusz(w)
				}
			},
		}
	}
	obsSrv, err := obsCLI.Start(obsOpts)
	if err != nil {
		return err
	}
	defer obsSrv.Close()
	o := options{
		exp: *exp, datasets: strings.Split(*datasets, ","), scale: *scale,
		pairs: *pairs, maxPmax: *maxPmax, alpha: *alpha, eps: *eps, bigN: *bigN,
		maxReal: *maxReal, maxBytes: *maxBytes, trials: *trials, seed: *seed, workers: *workers,
		csv: *csv,
	}
	ctx := context.Background()

	emit := func(t *tablewriter.Table) error {
		if o.csv {
			return t.WriteCSV(os.Stdout)
		}
		if err := t.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	if o.exp == "table1" || o.exp == "all" {
		if err := table1(o, emit); err != nil {
			return err
		}
	}
	wantsPairs := map[string]bool{"fig3": true, "fig4": true, "fig5": true, "table2": true, "fig6": true, "warm": true, "refine": true, "churn": true, "topk": true, "transport": true, "all": true}
	if !wantsPairs[o.exp] && o.exp != "table1" {
		return fmt.Errorf("unknown experiment %q", o.exp)
	}
	if o.exp == "table1" {
		return nil
	}

	var table2Rows []*eval.VmaxRow
	var table2Names []string
	for _, name := range o.datasets {
		name = strings.TrimSpace(name)
		d, err := gen.DatasetByName(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "== dataset %s (scale %.3f) ==\n", name, o.scale)
		g, err := d.Generate(o.scale, o.seed)
		if err != nil {
			return err
		}
		w := weights.NewDegree(g)
		ps, err := eval.SamplePairs(ctx, g, w, eval.PairConfig{
			Count: o.pairs, MinPmax: 0.01, MaxPmax: o.maxPmax, PreferDistant: true, ScreenTrials: 3000,
			Seed: o.seed, Workers: o.workers,
		})
		if err != nil {
			return fmt.Errorf("dataset %s: %w", name, err)
		}
		cfg := eval.Config{
			Graph: g, Weights: w, Pairs: ps,
			Alpha: o.alpha, Eps: o.eps, N: o.bigN,
			MaxRealizations: o.maxReal, EvalTrials: o.trials,
			Seed: o.seed, Workers: o.workers,
			Obs: ob,
		}
		// Route every pair's sessions through the serving layer: pools
		// are shared across experiments on this dataset and evicted
		// least-recently-used under -maxbytes.
		sv := server.New(g, w, server.Config{
			Seed: o.seed, Workers: o.workers, MaxPoolBytes: o.maxBytes, Obs: ob,
		})
		curSv.Store(sv)
		cfg.Server = sv
		if o.exp == "fig3" || o.exp == "all" {
			rows, err := eval.BasicExperiment(ctx, cfg, []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35})
			if err != nil {
				return err
			}
			if err := emit(eval.RenderFig3(name, rows)); err != nil {
				return err
			}
		}
		if o.exp == "fig4" || o.exp == "all" {
			res, err := eval.CompareGrowth(ctx, cfg, baselines.HighDegree{})
			if err != nil {
				return err
			}
			if err := emit(eval.RenderGrowth(name, res)); err != nil {
				return err
			}
		}
		if o.exp == "fig5" || o.exp == "all" {
			res, err := eval.CompareGrowth(ctx, cfg, baselines.ShortestPath{})
			if err != nil {
				return err
			}
			if err := emit(eval.RenderGrowth(name, res)); err != nil {
				return err
			}
		}
		if o.exp == "table2" || o.exp == "all" {
			cfg2 := cfg
			cfg2.Alpha = 0.1 // the paper's Table II setting
			row, err := eval.VmaxExperiment(ctx, cfg2)
			if err != nil {
				return err
			}
			table2Rows = append(table2Rows, row)
			table2Names = append(table2Names, name)
		}
		if o.exp == "warm" || o.exp == "all" {
			// Warm-restart experiment: serve a pool-bound workload cold,
			// flush every pool to disk (the afserve shutdown path), then
			// replay it on a server warmed from the snapshots and compare
			// wall-clock time and answers.
			dir, err := os.MkdirTemp("", "afexp-spill-*")
			if err != nil {
				return err
			}
			res, werr := eval.WarmRestart(ctx, cfg, dir)
			os.RemoveAll(dir)
			if werr != nil {
				return werr
			}
			if err := emit(eval.RenderWarmRestart(name, res)); err != nil {
				return err
			}
		}
		if o.exp == "churn" || o.exp == "all" {
			// Mutation-churn experiment: mutate the graph epoch by epoch
			// while serving a pool-bound workload, migrating warm pools
			// across each delta by repair, and compare the repair draw bill
			// against discard-and-resample plus a byte-identity check
			// against a cold server on the final graph.
			res, err := eval.MutationChurn(ctx, cfg, 3, 2)
			if err != nil {
				return err
			}
			if err := emit(eval.RenderChurn(name, res)); err != nil {
				return err
			}
		}
		if o.exp == "refine" || o.exp == "all" {
			// Refinement experiment: a staged coarse → tight p_max
			// estimate against a cold tight one, per pair. 0.3 → 0.1 is
			// the spread the paper's equation system typically lands in.
			res, err := eval.PmaxRefinement(ctx, cfg, 0.3, 0.1)
			if err != nil {
				return err
			}
			if err := emit(eval.RenderPmaxRefine(name, res)); err != nil {
				return err
			}
		}
		if o.exp == "topk" || o.exp == "all" {
			// Batched ranking experiment: the pairs' source s ranks the
			// pairs' targets as one scheduled top-k batch; the scheduled
			// run gets a quarter of the exhaustive draw budget.
			res, err := eval.TopKRanking(ctx, cfg, 5, 5)
			if err != nil {
				return err
			}
			if err := emit(eval.RenderTopK(name, res)); err != nil {
				return err
			}
		}
		if o.exp == "transport" || o.exp == "all" {
			// Transport-parity experiment: the same workload through the
			// Dispatcher, the pipe line protocol and a live HTTP endpoint
			// must produce byte-identical reply streams.
			res, err := eval.TransportParity(ctx, cfg)
			if err != nil {
				return err
			}
			if err := emit(eval.RenderTransport(name, res)); err != nil {
				return err
			}
		}
		if (o.exp == "fig6" || o.exp == "all") && name == strings.TrimSpace(o.datasets[0]) {
			// The paper's Fig. 6 uses a single illustrative pair from the
			// first (Wiki) dataset.
			pts, err := eval.RealizationSweep(ctx, cfg, []int64{1000, 5000, 10000, 50000, 100000, 200000, 400000})
			if err != nil {
				return err
			}
			if err := emit(eval.RenderFig6(name, pts)); err != nil {
				return err
			}
		}
		st := sv.Stats()
		fmt.Fprintf(os.Stderr, "server: %d pairs live, %d created, %d evicted, %d KiB held\n",
			st.SessionsLive, st.SessionsCreated, st.SessionsEvicted, st.BytesHeld>>10)
	}
	if len(table2Rows) > 0 {
		if err := emit(eval.RenderTable2(table2Names, table2Rows)); err != nil {
			return err
		}
	}
	return nil
}

func table1(o options, emit func(*tablewriter.Table) error) error {
	var names []string
	var stats []gen.Stats
	for _, d := range gen.Datasets() {
		g, err := d.Generate(o.scale, o.seed)
		if err != nil {
			return err
		}
		names = append(names, d.Name)
		stats = append(stats, gen.Summarize(g))
	}
	return emit(eval.RenderTable1(names, stats))
}
