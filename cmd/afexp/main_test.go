package main

import (
	"testing"
)

func TestRunTable1(t *testing.T) {
	if err := run([]string{"-exp", "table1", "-scale", "0.02"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "table1", "-scale", "0.02", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run([]string{"-exp", "fig3", "-datasets", "nope", "-pairs", "1"}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// TestRunFig3Tiny exercises the full fig3 path end to end at minimal cost.
func TestRunFig3Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	err := run([]string{
		"-exp", "fig3", "-datasets", "Wiki", "-pairs", "2",
		"-scale", "0.03", "-maxreal", "3000", "-trials", "2000",
	})
	if err != nil {
		t.Fatal(err)
	}
}
