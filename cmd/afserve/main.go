// Command afserve serves active-friending queries for arbitrary (s,t)
// pairs over line-delimited JSON on stdin/stdout — the paper's online
// setting, with many pairs in flight against one graph at once. It wraps
// activefriending.Server: pair sessions are created on demand, shared
// across queries, and evicted least-recently-used under -maxbytes.
//
// Usage:
//
//	afserve -file graph.txt < queries.jsonl
//	afserve -dataset Wiki -scale 0.05 -maxbytes 268435456 -j 8
//
// Each input line is one request:
//
//	{"id":1,"op":"solve","s":3,"t":91,"alpha":0.2}
//	{"id":2,"op":"solvemax","s":3,"t":91,"budget":5,"realizations":50000}
//	{"id":3,"op":"solvemax","s":3,"t":91,"budgets":[1,2,5,10]}
//	{"id":4,"op":"acceptance","s":3,"t":91,"invited":[17,91],"trials":20000}
//	{"id":5,"op":"pmax","s":3,"t":91,"trials":20000}
//	{"id":6,"op":"pmaxest","s":3,"t":91,"eps":0.1,"n":100000,"trials":2000000}
//	{"id":7,"op":"topk","s":3,"targets":[91,17,64,108],"k":2,"budget":5,"maxdraws":500000}
//	{"id":8,"op":"stats"}
//
// A solvemax with a "budgets" list answers the whole sweep in one
// response: the pair's pool is folded into a set-cover family once, one
// solver is reused across budgets, and the measurements are batched
// coverage queries. A topk ranks the "targets" list for source s as one
// scheduled batch (successive halving under the "maxdraws" draw budget;
// omit it to score every candidate at full effort, byte-identical to
// independent solvemax calls) and reports the k winners with their
// per-candidate score, effort and invitation set.
//
// -metrics-addr (or its alias -pprof) serves the observability surface
// on a dedicated mux: Prometheus text at /metrics (per-kind request
// latency summaries, per-stage timings, and every stats counter), a
// human-readable /statusz, the slowest retained traces at /tracez, and
// net/http/pprof under /debug/pprof/ for profiling under real traffic.
// Either flag also enables server metrics, and the "stats" op then
// carries the registry snapshot in its "metrics" field. -slow-query
// logs every query slower than the threshold as one line of JSON on
// stderr (kind, total, per-stage spans). Instrumentation never changes
// an answer.
//
// pmax is the cheap fixed-budget estimate (the evaluation pool's type-1
// fraction over "trials" draws); pmaxest runs the paper's Algorithm 2
// stopping rule at relative error "eps" with failure probability 1/"n",
// capped at "trials" draws (each defaulted when omitted). Repeated or
// refined pmaxest queries for one pair reuse the pair's retained draw
// ledger — the response reports the draws consumed, reused and newly
// sampled — and the ledger survives restarts via -spill-dir.
//
// -spill-dir makes pool state survive both eviction and restarts:
// evicted pairs are snapshotted to disk and restored from bytes on
// their next query, and when stdin closes (or on SIGINT/SIGTERM) every
// live pair is flushed. A restarted server with the same -seed picks
// the snapshots up lazily, or eagerly with -warm; snapshots are
// checksummed and carry their stream identity, so a damaged or
// mismatched file just means that pair resamples — answers are
// byte-identical either way.
//
// Each response is one JSON line {"id":…,"ok":true,"result":…} (or
// "error" when ok is false). With -j > 1 requests are answered
// concurrently and responses may arrive out of order; match them by id.
// Results are pure functions of (-seed, s, t) and the request
// parameters: answer order, concurrency and pool eviction never change
// them.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"

	af "repro"
	"repro/internal/obs/httpserve"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "afserve:", err)
		os.Exit(1)
	}
}

type request struct {
	ID           int64     `json:"id,omitempty"`
	Op           string    `json:"op"`
	S            af.Node   `json:"s"`
	T            af.Node   `json:"t"`
	Alpha        float64   `json:"alpha,omitempty"`
	Eps          float64   `json:"eps,omitempty"`
	N            float64   `json:"n,omitempty"`
	Budget       int       `json:"budget,omitempty"`
	Budgets      []int     `json:"budgets,omitempty"`
	Realizations int64     `json:"realizations,omitempty"`
	Trials       int64     `json:"trials,omitempty"`
	Invited      []af.Node `json:"invited,omitempty"`
	// Targets / K / MaxDraws parameterize the "topk" op.
	Targets  []af.Node `json:"targets,omitempty"`
	K        int       `json:"k,omitempty"`
	MaxDraws int64     `json:"maxdraws,omitempty"`
	// Add / Remove are the "delta" op's edge lists, each edge a [u, v]
	// pair.
	Add    [][2]af.Node `json:"add,omitempty"`
	Remove [][2]af.Node `json:"remove,omitempty"`
}

type response struct {
	ID     int64  `json:"id,omitempty"`
	Op     string `json:"op"`
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
	Result any    `json:"result,omitempty"`
}

// statsResult is the "stats" op's payload when the server runs with
// metrics: the ServerStats ledger, flat as before (embedding keeps the
// field layout identical for clients that unmarshal the ledger only),
// plus the registry snapshot.
type statsResult struct {
	af.ServerStats
	Metrics []af.MetricSample `json:"metrics"`
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("afserve", flag.ContinueOnError)
	file := fs.String("file", "", "edge-list file to serve")
	dataset := fs.String("dataset", "", "Table I dataset analog to generate instead of -file")
	scale := fs.Float64("scale", 0.05, "dataset scale")
	seed := fs.Int64("seed", 1, "root seed; every answer is a pure function of (seed, s, t)")
	workers := fs.Int("workers", 0, "sampling workers per query (0 = CPUs)")
	shards := fs.Int("shards", 0, "pair-map lock shards (0 = default)")
	maxBytes := fs.Int64("maxbytes", 0, "pool memory budget in bytes (0 = unlimited)")
	spillDir := fs.String("spill-dir", "", "spill evicted pools to snapshots in this directory and flush all pools on shutdown")
	warm := fs.Bool("warm", false, "preload every snapshot in -spill-dir before serving")
	jobs := fs.Int("j", 1, "max in-flight requests; >1 answers out of order")
	obsCLI := httpserve.AddFlags(fs)
	slowQuery := fs.Duration("slow-query", 0, "log queries slower than this as one-line JSON on stderr (0 = off; implies metrics)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *warm && *spillDir == "" {
		return fmt.Errorf("-warm requires -spill-dir")
	}
	if *spillDir != "" {
		if err := os.MkdirAll(*spillDir, 0o755); err != nil {
			return fmt.Errorf("creating -spill-dir: %w", err)
		}
	}

	var g *af.Graph
	var err error
	switch {
	case *file != "":
		f, err2 := os.Open(*file)
		if err2 != nil {
			return fmt.Errorf("opening graph: %w", err2)
		}
		g, err = af.LoadEdgeList(f)
		f.Close()
	case *dataset != "":
		g, err = af.GenerateDataset(*dataset, *scale, *seed)
	default:
		return fmt.Errorf("one of -file or -dataset is required")
	}
	if err != nil {
		return err
	}
	if *jobs < 1 {
		*jobs = 1
	}

	sv := af.NewServer(g, af.ServerConfig{
		MaxPoolBytes:       *maxBytes,
		Shards:             *shards,
		Seed:               *seed,
		Workers:            *workers,
		SpillDir:           *spillDir,
		Metrics:            obsCLI.Enabled() || *slowQuery > 0,
		SlowQueryThreshold: *slowQuery,
	})
	var obsOpts httpserve.Options
	if o := sv.Obs(); o != nil {
		obsOpts = httpserve.Options{Registry: o.Registry, Tracer: o.Tracer, Statusz: sv.WriteStatusz}
	}
	obsSrv, err := obsCLI.Start(obsOpts)
	if err != nil {
		return err
	}
	defer obsSrv.Close()
	ctx := context.Background()
	if *warm {
		n, err := sv.Warm()
		if err != nil {
			return fmt.Errorf("warming from %s: %w", *spillDir, err)
		}
		fmt.Fprintf(os.Stderr, "afserve: warmed %d pairs from %s\n", n, *spillDir)
	}
	// Graceful shutdown: flush every live pair's pools to the spill
	// directory exactly once — on EOF after in-flight requests drain, or
	// on SIGINT/SIGTERM (in-flight pairs snapshot consistently; pairs
	// that grow afterwards are simply flushed at their pre-growth size).
	var flushOnce sync.Once
	flush := func() {
		flushOnce.Do(func() {
			if err := sv.SpillAll(); err != nil {
				fmt.Fprintln(os.Stderr, "afserve: spill flush:", err)
			}
		})
	}
	if *spillDir != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		done := make(chan struct{})
		defer close(done) // unblocks the watcher so repeated run() calls don't leak it
		go func() {
			select {
			case <-sig:
				flush()
				os.Exit(0)
			case <-done:
			}
		}()
		defer flush()
	}

	var mu sync.Mutex // serializes response lines
	bw := bufio.NewWriter(out)
	defer bw.Flush()
	enc := json.NewEncoder(bw)
	reply := func(resp response) error {
		mu.Lock()
		defer mu.Unlock()
		if err := enc.Encode(resp); err != nil {
			return err
		}
		// Flush per response so pipelined clients see answers promptly.
		return bw.Flush()
	}

	sem := make(chan struct{}, *jobs)
	var wg sync.WaitGroup
	var failed atomic.Bool // a reply could not be written; stop serving
	var replyErr error
	var replyErrOnce sync.Once
	fail := func(err error) {
		replyErrOnce.Do(func() { replyErr = err; failed.Store(true) })
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() && !failed.Load() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req request
		if err := json.Unmarshal(line, &req); err != nil {
			if err := reply(response{OK: false, Error: fmt.Sprintf("bad request: %v", err)}); err != nil {
				fail(err)
			}
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(req request) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := reply(serve(ctx, sv, req)); err != nil {
				fail(err)
			}
		}(req)
	}
	// Always drain in-flight workers before returning: the deferred
	// flush must not race their writes.
	wg.Wait()
	if replyErr != nil {
		return replyErr
	}
	return sc.Err()
}

// serve answers one request against the server.
func serve(ctx context.Context, sv *af.Server, req request) response {
	resp := response{ID: req.ID, Op: req.Op}
	trials := req.Trials
	if trials <= 0 {
		trials = 20000
	}
	var result any
	var err error
	switch req.Op {
	case "solve":
		result, err = sv.Solve(ctx, req.S, req.T, af.Options{
			Alpha: req.Alpha, Eps: req.Eps, N: req.N,
			Realizations: req.Realizations,
		})
	case "solvemax":
		// A "budgets" list answers the whole sweep from one pool fold and
		// two batched coverage queries; "budget" answers a single solve.
		if len(req.Budgets) > 0 {
			result, err = sv.SolveMaxBudgets(ctx, req.S, req.T, req.Budgets, req.Realizations)
		} else {
			result, err = sv.SolveMax(ctx, req.S, req.T, req.Budget, req.Realizations)
		}
	case "acceptance":
		var f float64
		f, err = sv.AcceptanceProbability(ctx, req.S, req.T, req.Invited, trials)
		result = map[string]float64{"f": f}
	case "pmax":
		var f float64
		f, err = sv.Pmax(ctx, req.S, req.T, trials)
		result = map[string]float64{"pmax": f}
	case "pmaxest":
		var est *af.PmaxEstimate
		est, err = sv.EstimatePmax(ctx, req.S, req.T, req.Eps, req.N, req.Trials)
		if err == nil {
			result = map[string]any{
				"pmax": est.Value, "draws": est.Draws, "reused": est.Reused,
				"sampled": est.Sampled, "truncated": est.Truncated,
			}
		}
	case "topk":
		result, err = sv.TopK(ctx, req.S, req.Targets, req.K, af.TopKOptions{
			Budget:       req.Budget,
			Realizations: req.Realizations,
			MaxDraws:     req.MaxDraws,
		})
	case "delta":
		// Mutate the served graph in place: cached pairs are migrated
		// across the new epoch by repair, not discarded. Requests already
		// in flight answer at the epoch they started on.
		d := &af.Delta{}
		for _, e := range req.Add {
			d.Add = append(d.Add, af.Edge{U: e[0], V: e[1]})
		}
		for _, e := range req.Remove {
			d.Remove = append(d.Remove, af.Edge{U: e[0], V: e[1]})
		}
		result, err = sv.ApplyDelta(ctx, d)
	case "stats":
		if ms := sv.MetricsSnapshot(); ms != nil {
			result = statsResult{ServerStats: sv.Stats(), Metrics: ms}
		} else {
			result = sv.Stats()
		}
	default:
		err = fmt.Errorf("unknown op %q", req.Op)
	}
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	resp.OK = true
	resp.Result = result
	return resp
}
