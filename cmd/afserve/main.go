// Command afserve serves active-friending queries for arbitrary (s,t)
// pairs — the paper's online setting, with many pairs in flight against
// one graph at once. The query protocol (request/response schema,
// dispatch, error shaping) lives in internal/proto; this binary is flag
// parsing plus two transports over one shared Dispatcher: line-
// delimited JSON on stdin/stdout, and (with -metrics-addr) the same
// protocol over HTTP at POST /v1/query (see internal/proto/httpapi).
//
// Usage:
//
//	afserve -file graph.txt < queries.jsonl
//	afserve -dataset Wiki -scale 0.05 -maxbytes 268435456 -j 8
//	afserve -file graph.txt -metrics-addr localhost:6060 &
//	curl -d '{"op":"pmax","s":3,"t":91}' http://localhost:6060/v1/query
//
// Each input line is one request:
//
//	{"id":1,"op":"solve","s":3,"t":91,"alpha":0.2}
//	{"id":2,"op":"solvemax","s":3,"t":91,"budget":5,"realizations":50000}
//	{"id":3,"op":"solvemax","s":3,"t":91,"budgets":[1,2,5,10]}
//	{"id":4,"op":"acceptance","s":3,"t":91,"invited":[17,91],"trials":20000}
//	{"id":5,"op":"pmax","s":3,"t":91,"trials":20000}
//	{"id":6,"op":"pmaxest","s":3,"t":91,"eps":0.1,"n":100000,"trials":2000000}
//	{"id":7,"op":"topk","s":3,"targets":[91,17,64,108],"k":2,"budget":5,"maxdraws":500000}
//	{"id":8,"op":"topkrefine","s":3,"targets":[91,17,64,108],"k":2,"budget":5,"extradraws":500000}
//	{"id":9,"op":"stats"}
//
// A solvemax with a "budgets" list answers the whole sweep in one
// response: the pair's pool is folded into a set-cover family once, one
// solver is reused across budgets, and the measurements are batched
// coverage queries. A topk ranks the "targets" list for source s as one
// scheduled batch (successive halving under the "maxdraws" draw budget;
// omit it to score every candidate at full effort, byte-identical to
// independent solvemax calls) and reports the k winners with their
// per-candidate score, effort and invitation set; a topkrefine with the
// same (s, targets, k, budget, realizations) signature resumes the
// retained run with "extradraws" more budget, paying only the top-up.
//
// -metrics-addr (or its alias -pprof) serves the observability surface
// on a dedicated mux: Prometheus text at /metrics (per-kind request
// latency summaries, per-stage timings, and every stats counter), a
// human-readable /statusz, the slowest retained traces at /tracez, and
// net/http/pprof under /debug/pprof/ for profiling under real traffic —
// plus the query protocol itself at POST /v1/query (one request line,
// or an NDJSON batch answered as an NDJSON stream). Either flag also
// enables server metrics, and the "stats" op then carries the registry
// snapshot in its "metrics" field. -slow-query logs every query slower
// than the threshold as one line of JSON on stderr (kind, total,
// per-stage spans). Instrumentation never changes an answer.
//
// pmax is the cheap fixed-budget estimate (the evaluation pool's type-1
// fraction over "trials" draws); pmaxest runs the paper's Algorithm 2
// stopping rule at relative error "eps" with failure probability 1/"n",
// capped at "trials" draws (each defaulted when omitted). Repeated or
// refined pmaxest queries for one pair reuse the pair's retained draw
// ledger — the response reports the draws consumed, reused and newly
// sampled — and the ledger survives restarts via -spill-dir.
//
// -spill-dir makes pool state survive both eviction and restarts:
// evicted pairs are snapshotted to disk and restored from bytes on
// their next query, and when stdin closes (or on SIGINT/SIGTERM) every
// live pair is flushed — after in-flight queries on both transports
// drain, so shutdown never tears an answer. A restarted server with the
// same -seed picks the snapshots up lazily, or eagerly with -warm;
// snapshots are checksummed and carry their stream identity, so a
// damaged or mismatched file just means that pair resamples — answers
// are byte-identical either way. -spill-ttl expires snapshot files not
// rewritten within the TTL (swept at -warm and periodically while
// serving), bounding the directory; an expired pair resamples, which
// changes no answer.
//
// Each response is one JSON line {"id":…,"ok":true,"result":…} (or
// "error" when ok is false). Concurrency is one shared budget across
// both transports: -j is the server's admission limit (MaxInflight) and
// also caps how many pipe requests run at once, -queue bounds how many
// more may wait for a slot, and anything beyond fast-rejects with an
// overload error (an error reply on the pipe, HTTP 429 on /v1/query) —
// the pipe alone never overflows the queue, since it submits at most -j
// at a time, but pipe and HTTP traffic together contend for the same
// slots. With -j > 1 pipe responses may arrive out of order; match them
// by id. Results are pure functions of (-seed, s, t) and the request
// parameters: answer order, concurrency and pool eviction never change
// them.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/obs/httpserve"
	"repro/internal/proto"
	"repro/internal/proto/httpapi"
	"repro/internal/server"
	"repro/internal/weights"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "afserve:", err)
		os.Exit(1)
	}
}

// drainGate counts in-flight pipe requests and refuses new ones once
// drain begins — the pipe-side analog of httpapi.Handler's drain.
type drainGate struct {
	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool
}

func (g *drainGate) begin() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.wg.Add(1)
	return true
}

func (g *drainGate) end() { g.wg.Done() }

func (g *drainGate) drain() {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	g.wg.Wait()
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("afserve", flag.ContinueOnError)
	file := fs.String("file", "", "edge-list file to serve")
	dataset := fs.String("dataset", "", "Table I dataset analog to generate instead of -file")
	scale := fs.Float64("scale", 0.05, "dataset scale")
	seed := fs.Int64("seed", 1, "root seed; every answer is a pure function of (seed, s, t)")
	workers := fs.Int("workers", 0, "sampling workers per query (0 = CPUs)")
	shards := fs.Int("shards", 0, "pair-map lock shards (0 = default)")
	maxBytes := fs.Int64("maxbytes", 0, "pool memory budget in bytes (0 = unlimited)")
	spillDir := fs.String("spill-dir", "", "spill evicted pools to snapshots in this directory and flush all pools on shutdown")
	spillTTL := fs.Duration("spill-ttl", 0, "expire spill files not rewritten within this TTL (0 = keep forever)")
	warm := fs.Bool("warm", false, "preload every snapshot in -spill-dir before serving")
	jobs := fs.Int("j", 1, "max in-flight queries across both transports (the admission limit); >1 answers the pipe out of order")
	queue := fs.Int("queue", 16, "queries that may wait for an in-flight slot before the server fast-rejects with an overload error")
	obsCLI := httpserve.AddFlags(fs)
	slowQuery := fs.Duration("slow-query", 0, "log queries slower than this as one-line JSON on stderr (0 = off; implies metrics)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *warm && *spillDir == "" {
		return fmt.Errorf("-warm requires -spill-dir")
	}
	if *spillDir != "" {
		if err := os.MkdirAll(*spillDir, 0o755); err != nil {
			return fmt.Errorf("creating -spill-dir: %w", err)
		}
	}

	var g *graph.Graph
	var err error
	switch {
	case *file != "":
		f, err2 := os.Open(*file)
		if err2 != nil {
			return fmt.Errorf("opening graph: %w", err2)
		}
		g, err = gen.ReadEdgeList(f)
		f.Close()
	case *dataset != "":
		var d gen.Dataset
		d, err = gen.DatasetByName(*dataset)
		if err == nil {
			g, err = d.Generate(*scale, *seed)
		}
	default:
		return fmt.Errorf("one of -file or -dataset is required")
	}
	if err != nil {
		return err
	}
	if *jobs < 1 {
		*jobs = 1
	}
	if *queue < 0 {
		*queue = 0
	}

	var o *obs.Obs
	if obsCLI.Enabled() || *slowQuery > 0 {
		o = obs.New()
		if *slowQuery > 0 {
			o.SetSlowLog(*slowQuery, os.Stderr)
		}
	}
	sv := server.New(g, weights.NewDegree(g), server.Config{
		MaxPoolBytes: *maxBytes,
		Shards:       *shards,
		Seed:         *seed,
		Workers:      *workers,
		SpillDir:     *spillDir,
		SpillTTL:     *spillTTL,
		MaxInflight:  *jobs,
		MaxQueue:     *queue,
		Obs:          o,
	})
	d := proto.NewDispatcher(sv)
	api := httpapi.New(d)
	obsOpts := httpserve.Options{Query: api}
	if o != nil {
		obsOpts.Registry, obsOpts.Tracer, obsOpts.Statusz = o.Registry, o.Tracer, sv.WriteStatusz
	}
	obsSrv, err := obsCLI.Start(obsOpts)
	if err != nil {
		return err
	}
	defer obsSrv.Close()
	ctx := context.Background()
	if *warm {
		n, err := sv.Warm()
		if err != nil {
			return fmt.Errorf("warming from %s: %w", *spillDir, err)
		}
		fmt.Fprintf(os.Stderr, "afserve: warmed %d pairs from %s\n", n, *spillDir)
	}
	// Graceful shutdown: flush every live pair's pools to the spill
	// directory exactly once — after in-flight queries on both transports
	// have drained, so the flush never races an answer in progress.
	var flushOnce sync.Once
	flush := func() {
		flushOnce.Do(func() {
			if err := sv.SpillAll(); err != nil {
				fmt.Fprintln(os.Stderr, "afserve: spill flush:", err)
			}
		})
	}
	var pipe drainGate
	// Deferred drain order (LIFO): on the EOF return path the pipe is
	// already drained by the loop's wg semantics, so drain HTTP, then
	// flush.
	defer flush()
	defer api.Drain()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	done := make(chan struct{})
	defer close(done) // unblocks the watcher so repeated run() calls don't leak it
	go func() {
		select {
		case <-sig:
			// In-flight queries finish (new ones are refused: the pipe
			// gate closes, HTTP answers 503), then the spill tier flushes.
			pipe.drain()
			api.Drain()
			flush()
			os.Exit(0)
		case <-done:
		}
	}()

	var mu sync.Mutex // serializes response lines
	bw := bufio.NewWriter(out)
	defer bw.Flush()
	enc := json.NewEncoder(bw)
	reply := func(resp proto.Response) error {
		mu.Lock()
		defer mu.Unlock()
		if err := enc.Encode(resp); err != nil {
			return err
		}
		// Flush per response so pipelined clients see answers promptly.
		return bw.Flush()
	}

	// The pipe's local cap matches the admission limit: at most -j pipe
	// queries are submitted at once, so pipe-only traffic admits
	// instantly and never overflows the shared queue — rejections only
	// appear when HTTP traffic contends for the same slots.
	sem := make(chan struct{}, *jobs)
	var failed atomic.Bool // a reply could not be written; stop serving
	var replyErr error
	var replyErrOnce sync.Once
	fail := func(err error) {
		replyErrOnce.Do(func() { replyErr = err; failed.Store(true) })
	}

	lr := proto.NewLineReader(in)
	var readErr error
	for !failed.Load() {
		line, err := lr.ReadLine()
		if errors.Is(err, proto.ErrOversized) {
			// Unlike the old scanner (fatal ErrTooLong), an oversized line
			// is consumed, answered, and the stream continues.
			if err := reply(proto.Oversized()); err != nil {
				fail(err)
			}
			continue
		}
		if err != nil {
			if err != io.EOF {
				readErr = err
			}
			break
		}
		if len(line) == 0 {
			continue
		}
		req, errResp := proto.DecodeRequest(line)
		if errResp != nil {
			if err := reply(*errResp); err != nil {
				fail(err)
			}
			continue
		}
		if !pipe.begin() {
			break // draining; the signal watcher owns shutdown
		}
		sem <- struct{}{}
		go func(req proto.Request) {
			defer pipe.end()
			defer func() { <-sem }()
			if err := reply(d.Dispatch(ctx, req)); err != nil {
				fail(err)
			}
		}(req)
	}
	// Always drain in-flight workers before returning: the deferred
	// flush must not race their writes.
	pipe.drain()
	if replyErr != nil {
		return replyErr
	}
	return readErr
}
