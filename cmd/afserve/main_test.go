package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// diamond is a small graph with several 0→5 routes (and spurs), so the
// (0,5), (0,3), (0,4) pairs all have positive p_max.
const diamond = "0 1\n0 2\n1 3\n1 4\n2 3\n2 4\n3 5\n4 5\n1 6\n2 7\n"

func graphFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte(diamond), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const queries = `{"id":1,"op":"pmax","s":0,"t":5,"trials":4000}
{"id":2,"op":"solve","s":0,"t":5,"alpha":0.3,"eps":0.1,"n":50,"realizations":4000}
{"id":3,"op":"acceptance","s":0,"t":5,"invited":[3,4,5],"trials":4000}
{"id":4,"op":"solvemax","s":0,"t":5,"budget":2,"realizations":4000}
{"id":5,"op":"pmax","s":0,"t":3,"trials":4000}
{"id":6,"op":"pmaxest","s":0,"t":4,"eps":0.2,"n":50,"trials":100000}
{"id":7,"op":"stats"}
{"id":8,"op":"solve","s":0,"t":1}
{"id":9,"op":"bogus","s":0,"t":5}
`

type resp struct {
	ID     int64           `json:"id"`
	Op     string          `json:"op"`
	OK     bool            `json:"ok"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

func runServe(t *testing.T, args []string, input string) []resp {
	t.Helper()
	var sb strings.Builder
	if err := run(args, strings.NewReader(input), &sb); err != nil {
		t.Fatal(err)
	}
	var out []resp
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		var r resp
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad response line %q: %v", line, err)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func TestServeQueries(t *testing.T) {
	path := graphFile(t)
	got := runServe(t, []string{"-file", path, "-seed", "7"}, queries)
	if len(got) != 9 {
		t.Fatalf("got %d responses, want 9", len(got))
	}
	for _, r := range got[:7] {
		if !r.OK {
			t.Errorf("id %d (%s): error %q", r.ID, r.Op, r.Error)
		}
	}
	if got[7].OK || got[7].Error == "" {
		t.Errorf("adjacent pair: %+v", got[7])
	}
	if got[8].OK || !strings.Contains(got[8].Error, "unknown op") {
		t.Errorf("bogus op: %+v", got[8])
	}
	var pm struct {
		Pmax float64 `json:"pmax"`
	}
	if err := json.Unmarshal(got[0].Result, &pm); err != nil {
		t.Fatal(err)
	}
	if pm.Pmax <= 0 || pm.Pmax > 1 {
		t.Errorf("pmax = %v", pm.Pmax)
	}
	var sol struct {
		Invited []int32 `json:"Invited"`
	}
	if err := json.Unmarshal(got[1].Result, &sol); err != nil {
		t.Fatal(err)
	}
	if len(sol.Invited) == 0 {
		t.Errorf("solve returned empty invitation set: %s", got[1].Result)
	}
	var est struct {
		Pmax      float64 `json:"pmax"`
		Draws     int64   `json:"draws"`
		Truncated bool    `json:"truncated"`
	}
	if err := json.Unmarshal(got[5].Result, &est); err != nil {
		t.Fatal(err)
	}
	if est.Pmax <= 0 || est.Pmax > 1 || est.Draws <= 0 {
		t.Errorf("pmaxest = %+v", est)
	}

	// Determinism across runs, budgets and concurrency: same seed, same
	// answers for every query — eviction and out-of-order answering are
	// latency events, not correctness events. (stats output is excluded:
	// hit/miss and byte ledgers legitimately differ.)
	for _, extra := range [][]string{
		{"-maxbytes", "16384"},
		{"-j", "4"},
		{"-maxbytes", "16384", "-j", "4", "-shards", "2", "-workers", "2"},
	} {
		again := runServe(t, append([]string{"-file", path, "-seed", "7"}, extra...), queries)
		if len(again) != len(got) {
			t.Fatalf("%v: got %d responses, want %d", extra, len(again), len(got))
		}
		for i := range got {
			if got[i].Op == "stats" {
				continue
			}
			if got[i].Op == "pmaxest" {
				// The estimate, its stopping point and the truncation flag
				// are pure functions of the seed; reused/sampled legitimately
				// vary with concurrency and eviction order.
				var a struct {
					Pmax      float64 `json:"pmax"`
					Draws     int64   `json:"draws"`
					Truncated bool    `json:"truncated"`
				}
				if err := json.Unmarshal(again[i].Result, &a); err != nil {
					t.Fatal(err)
				}
				if a.Pmax != est.Pmax || a.Draws != est.Draws || a.Truncated != est.Truncated {
					t.Errorf("%v: pmaxest diverged: %+v, want %+v", extra, a, est)
				}
				continue
			}
			if string(again[i].Result) != string(got[i].Result) || again[i].OK != got[i].OK {
				t.Errorf("%v: id %d diverged:\n got %s\nwant %s", extra, again[i].ID, again[i].Result, got[i].Result)
			}
		}
	}
}

// TestServeSpillWarmRestart: a run with -spill-dir flushes its pools on
// shutdown (stdin EOF), and a restarted server with the same seed and
// -warm answers identically — its spill ledger showing the pools came
// from disk rather than resampling.
func TestServeSpillWarmRestart(t *testing.T) {
	path := graphFile(t)
	dir := filepath.Join(t.TempDir(), "spill")
	first := runServe(t, []string{"-file", path, "-seed", "7", "-spill-dir", dir}, queries)
	files, err := filepath.Glob(filepath.Join(dir, "pair-*.afsnap"))
	if err != nil || len(files) == 0 {
		t.Fatalf("shutdown flush wrote no snapshots (err %v)", err)
	}

	second := runServe(t, []string{"-file", path, "-seed", "7", "-spill-dir", dir, "-warm"}, queries)
	if len(second) != len(first) {
		t.Fatalf("got %d responses, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i].Op == "stats" {
			continue
		}
		if first[i].Op == "pmaxest" {
			// The estimate itself must be byte-identical; the warm run
			// answers it from the restored draw ledger, which is exactly
			// what the reused/sampled accounting is supposed to show.
			var cold, warm struct {
				Pmax            float64 `json:"pmax"`
				Draws           int64   `json:"draws"`
				Reused, Sampled int64
				Truncated       bool
			}
			if err := json.Unmarshal(first[i].Result, &cold); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(second[i].Result, &warm); err != nil {
				t.Fatal(err)
			}
			if warm.Pmax != cold.Pmax || warm.Draws != cold.Draws || warm.Truncated != cold.Truncated {
				t.Errorf("pmaxest diverged after warm restart: %+v, want %+v", warm, cold)
			}
			if cold.Reused != 0 || warm.Reused != warm.Draws || warm.Sampled != 0 {
				t.Errorf("pmaxest ledger: cold %+v, warm %+v — warm run should reuse every draw", cold, warm)
			}
			continue
		}
		if string(second[i].Result) != string(first[i].Result) || second[i].OK != first[i].OK {
			t.Errorf("id %d diverged after warm restart:\n got %s\nwant %s", second[i].ID, second[i].Result, first[i].Result)
		}
	}
	// The second run's stats response must show disk-warm pools.
	var st struct {
		SpillLoads      int64
		SpillDrawsSaved int64
	}
	for _, r := range second {
		if r.Op == "stats" {
			if err := json.Unmarshal(r.Result, &st); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st.SpillLoads == 0 || st.SpillDrawsSaved == 0 {
		t.Errorf("warm restart did not load from disk: %+v", st)
	}

	// -warm without -spill-dir is a configuration error.
	if err := run([]string{"-file", path, "-warm"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("-warm without -spill-dir accepted")
	}
}

func TestServeErrors(t *testing.T) {
	if err := run([]string{}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing graph source accepted")
	}
	if err := run([]string{"-file", "/nonexistent"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing file accepted")
	}
	// Malformed request lines are answered, not fatal.
	path := graphFile(t)
	got := runServe(t, []string{"-file", path}, "not json\n")
	if len(got) != 1 || got[0].OK {
		t.Errorf("malformed line: %+v", got)
	}
}

func TestServeDataset(t *testing.T) {
	got := runServe(t, []string{"-dataset", "Wiki", "-scale", "0.02"}, `{"id":1,"op":"stats"}`+"\n")
	if len(got) != 1 || !got[0].OK {
		t.Fatalf("stats on generated dataset: %+v", got)
	}
}

// TestServeDelta: the "delta" op mutates the served graph in place, and
// every answer after it matches a server started cold on the mutated
// graph — migration by repair is invisible to clients. A delta that
// makes a queried pair adjacent dissolves it.
func TestServeDelta(t *testing.T) {
	path := graphFile(t)
	const deltaQueries = `{"id":1,"op":"pmax","s":0,"t":5,"trials":4000}
{"id":2,"op":"pmaxest","s":0,"t":4,"eps":0.2,"n":50,"trials":100000}
{"id":3,"op":"delta","add":[[6,7],[5,7]]}
{"id":4,"op":"pmax","s":0,"t":5,"trials":4000}
{"id":5,"op":"solve","s":0,"t":5,"alpha":0.3,"eps":0.1,"n":50,"realizations":4000}
{"id":6,"op":"pmaxest","s":0,"t":4,"eps":0.2,"n":50,"trials":100000}
{"id":7,"op":"pmax","s":0,"t":3,"trials":4000}
{"id":8,"op":"delta","add":[[0,3]]}
{"id":9,"op":"solve","s":0,"t":3}
{"id":10,"op":"stats"}
`
	got := runServe(t, []string{"-file", path, "-seed", "7"}, deltaQueries)
	if len(got) != 10 {
		t.Fatalf("got %d responses, want 10", len(got))
	}
	for _, r := range got[:8] {
		if !r.OK {
			t.Fatalf("id %d (%s): error %q", r.ID, r.Op, r.Error)
		}
	}
	var sum struct {
		NumEdges      int64
		PairsMigrated int
		PairsDropped  int
	}
	if err := json.Unmarshal(got[2].Result, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.NumEdges != 12 || sum.PairsMigrated != 2 {
		t.Errorf("delta summary: %+v, want 12 edges and 2 pairs migrated", sum)
	}
	// Post-delta answers must match a server started cold on the mutated
	// graph — clients can't tell repair from a rebuild.
	mutated := filepath.Join(t.TempDir(), "g2.txt")
	if err := os.WriteFile(mutated, []byte(diamond+"6 7\n5 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cold := runServe(t, []string{"-file", mutated, "-seed", "7"}, `{"id":4,"op":"pmax","s":0,"t":5,"trials":4000}
{"id":5,"op":"solve","s":0,"t":5,"alpha":0.3,"eps":0.1,"n":50,"realizations":4000}
{"id":6,"op":"pmaxest","s":0,"t":4,"eps":0.2,"n":50,"trials":100000}
`)
	for i, want := range cold {
		r := got[3+i]
		if r.Op == "pmaxest" {
			// reused/sampled legitimately differ (the warm server reuses
			// pre-delta draws from undamaged chunks); the estimate may not.
			var a, b struct {
				Pmax  float64 `json:"pmax"`
				Draws int64   `json:"draws"`
			}
			if err := json.Unmarshal(r.Result, &a); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(want.Result, &b); err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("id %d diverged from cold server: %+v, want %+v", r.ID, a, b)
			}
			continue
		}
		if string(r.Result) != string(want.Result) {
			t.Errorf("id %d diverged from cold server:\n got %s\nwant %s", r.ID, r.Result, want.Result)
		}
	}
	// The second delta made the live (0,3) pair adjacent: it is dissolved,
	// and subsequent queries for it are rejected.
	if got[8].OK || got[8].Error == "" {
		t.Errorf("dissolved pair still answers: %+v", got[8])
	}
	var st struct {
		DeltasApplied int64
		PairsDropped  int64
	}
	if err := json.Unmarshal(got[9].Result, &st); err != nil {
		t.Fatal(err)
	}
	if st.DeltasApplied != 2 || st.PairsDropped == 0 {
		t.Errorf("stats after deltas: %+v", st)
	}
}

// TestServeSolveMaxSweep: a "budgets" list answers the whole sweep in one
// response, and each entry matches the corresponding single-budget query.
func TestServeSolveMaxSweep(t *testing.T) {
	path := graphFile(t)
	const sweepQueries = `{"id":1,"op":"solvemax","s":0,"t":5,"budgets":[1,2,3],"realizations":4000}
{"id":2,"op":"solvemax","s":0,"t":5,"budget":1,"realizations":4000}
{"id":3,"op":"solvemax","s":0,"t":5,"budget":2,"realizations":4000}
{"id":4,"op":"solvemax","s":0,"t":5,"budget":3,"realizations":4000}
`
	got := runServe(t, []string{"-file", path, "-seed", "7"}, sweepQueries)
	if len(got) != 4 {
		t.Fatalf("got %d responses, want 4", len(got))
	}
	for _, r := range got {
		if !r.OK {
			t.Fatalf("id %d: error %q", r.ID, r.Error)
		}
	}
	var sweep []json.RawMessage
	if err := json.Unmarshal(got[0].Result, &sweep); err != nil {
		t.Fatalf("sweep result not an array: %v", err)
	}
	if len(sweep) != 3 {
		t.Fatalf("sweep has %d entries, want 3", len(sweep))
	}
	for i, want := range got[1:] {
		if string(sweep[i]) != string(want.Result) {
			t.Errorf("budget %d: sweep entry %s != single response %s", i+1, sweep[i], want.Result)
		}
	}
}

// TestServeTopK: the "topk" op answers a batched ranking request, its
// winners come ranked best-first, and the answer is deterministic across
// concurrency and byte-budget settings like every other query.
func TestServeTopK(t *testing.T) {
	path := graphFile(t)
	const topkQueries = `{"id":1,"op":"topk","s":0,"targets":[3,4,5,6,7],"k":2,"budget":2,"realizations":2048}
{"id":2,"op":"topk","s":0,"targets":[3,4,5,6,7],"k":2,"budget":2,"realizations":2048,"maxdraws":10240}
{"id":3,"op":"topk","s":0,"k":2,"budget":2}
`
	got := runServe(t, []string{"-file", path, "-seed", "7"}, topkQueries)
	if len(got) != 3 {
		t.Fatalf("got %d responses, want 3", len(got))
	}
	type topk struct {
		Winners []struct {
			Target int32
			Score  float64
		}
		Candidates []struct{ Target int32 }
		DrawsSpent int64
	}
	var full topk
	if !got[0].OK {
		t.Fatalf("topk: error %q", got[0].Error)
	}
	if err := json.Unmarshal(got[0].Result, &full); err != nil {
		t.Fatal(err)
	}
	if len(full.Winners) != 2 || len(full.Candidates) != 5 {
		t.Fatalf("topk shape: %d winners, %d candidates", len(full.Winners), len(full.Candidates))
	}
	if full.Winners[0].Score < full.Winners[1].Score {
		t.Errorf("winners not ranked best-first: %+v", full.Winners)
	}
	// The scheduled run answers under a tighter draw bill.
	var sched topk
	if !got[1].OK {
		t.Fatalf("scheduled topk: error %q", got[1].Error)
	}
	if err := json.Unmarshal(got[1].Result, &sched); err != nil {
		t.Fatal(err)
	}
	if sched.DrawsSpent >= full.DrawsSpent {
		t.Errorf("scheduled run spent %d draws, full run %d", sched.DrawsSpent, full.DrawsSpent)
	}
	// Missing targets is a client error, not a crash.
	if got[2].OK || got[2].Error == "" {
		t.Errorf("topk without targets: %+v", got[2])
	}
	// Determinism: concurrency and eviction change latency, not answers.
	for _, extra := range [][]string{
		{"-j", "4"},
		{"-maxbytes", "16384", "-workers", "2"},
	} {
		again := runServe(t, append([]string{"-file", path, "-seed", "7"}, extra...), topkQueries)
		for i := range got[:2] {
			var a, b topk
			if err := json.Unmarshal(got[i].Result, &a); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(again[i].Result, &b); err != nil {
				t.Fatal(err)
			}
			// DrawsSpent legitimately varies with eviction; winner
			// identity and scores do not.
			a.DrawsSpent, b.DrawsSpent = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%v: id %d diverged:\n got %+v\nwant %+v", extra, got[i].ID, b, a)
			}
		}
	}
}

// TestServeMetrics: -metrics-addr enables the observability layer
// without changing any answer, and the stats op then carries the
// registry snapshot — still unmarshaling flat as plain ServerStats.
func TestServeMetrics(t *testing.T) {
	path := graphFile(t)
	plain := runServe(t, []string{"-file", path, "-seed", "7"}, queries)
	instr := runServe(t, []string{"-file", path, "-seed", "7",
		"-metrics-addr", "127.0.0.1:0", "-slow-query", "1ns"}, queries)
	if len(instr) != len(plain) {
		t.Fatalf("got %d responses, want %d", len(instr), len(plain))
	}
	for i := range plain {
		if plain[i].Op == "stats" {
			continue
		}
		if string(instr[i].Result) != string(plain[i].Result) || instr[i].OK != plain[i].OK {
			t.Errorf("id %d diverged under metrics:\n got %s\nwant %s",
				instr[i].ID, instr[i].Result, plain[i].Result)
		}
	}

	var stats struct {
		SessionsCreated int64 `json:"SessionsCreated"`
		Metrics         []struct {
			Name   string  `json:"name"`
			Labels string  `json:"labels"`
			Value  float64 `json:"value"`
		} `json:"metrics"`
	}
	for _, r := range instr {
		if r.Op != "stats" {
			continue
		}
		if err := json.Unmarshal(r.Result, &stats); err != nil {
			t.Fatal(err)
		}
	}
	if stats.SessionsCreated == 0 {
		t.Error("stats lost its flat ServerStats fields")
	}
	found := false
	for _, s := range stats.Metrics {
		if s.Name == "af_sessions_created_total" {
			found = true
			if s.Value != float64(stats.SessionsCreated) {
				t.Errorf("af_sessions_created_total = %v, ledger says %d", s.Value, stats.SessionsCreated)
			}
		}
	}
	if !found {
		t.Errorf("stats carries no af_sessions_created_total sample (%d samples)", len(stats.Metrics))
	}

	// Without metrics the stats payload has no metrics key at all.
	for _, r := range plain {
		if r.Op == "stats" && strings.Contains(string(r.Result), `"metrics"`) {
			t.Errorf("plain stats grew a metrics field: %s", r.Result)
		}
	}
}
