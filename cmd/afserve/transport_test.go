package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/proto"
	"repro/internal/proto/httpapi"
	"repro/internal/server"
	"repro/internal/weights"
)

// transportQueries exercises every op plus every error shape the
// protocol can produce: a malformed line (first, so the pipe's inline
// decode reply cannot race an in-flight op's reply), a topkrefine with
// no retained signature, an adjacent pair, an unknown op, and a final
// stats op whose ledger must agree across transports because both saw
// the identical query sequence under the identical admission config.
const transportQueries = `not json
{"id":1,"op":"solve","s":0,"t":5,"alpha":0.3,"eps":0.1,"n":50,"realizations":4000}
{"id":2,"op":"solvemax","s":0,"t":5,"budget":2,"realizations":4000}
{"id":3,"op":"solvemax","s":0,"t":5,"budgets":[1,2,3],"realizations":4000}
{"id":4,"op":"acceptance","s":0,"t":5,"invited":[3,4,5],"trials":4000}
{"id":5,"op":"pmax","s":0,"t":5,"trials":4000}
{"id":6,"op":"pmaxest","s":0,"t":4,"eps":0.2,"n":50,"trials":100000}
{"id":7,"op":"topk","s":0,"targets":[3,4,5,6,7],"k":2,"budget":2,"realizations":2048,"maxdraws":10240}
{"id":8,"op":"topkrefine","s":0,"targets":[3,4,5,6,7],"k":2,"budget":2,"realizations":2048,"extradraws":4096}
{"id":9,"op":"topkrefine","s":1,"targets":[5],"k":1,"budget":2}
{"id":10,"op":"delta","add":[[6,7],[5,7]]}
{"id":11,"op":"solve","s":0,"t":5}
{"id":12,"op":"solve","s":0,"t":1}
{"id":13,"op":"bogus","s":0,"t":5}
{"id":14,"op":"stats"}
`

// repliesByID maps each reply line (trailing newline stripped) by its
// id; the malformed-line reply carries id 0.
func repliesByID(t *testing.T, out string) map[int64]string {
	t.Helper()
	m := make(map[int64]string)
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		var r struct {
			ID int64 `json:"id"`
		}
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad reply line %q: %v", line, err)
		}
		if _, dup := m[r.ID]; dup {
			t.Fatalf("duplicate reply id %d", r.ID)
		}
		m[r.ID] = line
	}
	return m
}

// newQueryServer builds an HTTP query endpoint configured exactly like
// `afserve -file <diamond> -seed 7` with its default -j 1 -queue 16,
// so stats ledgers (including admission counters) agree with the pipe.
func newQueryServer(t *testing.T) *httptest.Server {
	t.Helper()
	g, err := gen.ReadEdgeList(strings.NewReader(diamond))
	if err != nil {
		t.Fatal(err)
	}
	sv := server.New(g, weights.NewDegree(g), server.Config{Seed: 7, MaxInflight: 1, MaxQueue: 16})
	ts := httptest.NewServer(httpapi.New(proto.NewDispatcher(sv)))
	t.Cleanup(ts.Close)
	return ts
}

func postLine(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestTransportEquivalence is the acceptance gate for the extraction:
// every op answered over HTTP — single-request POSTs and one NDJSON
// batch — is byte-identical to the pipe transport's reply, error
// shapes included. Separate server instances are valid because every
// answer is a pure function of (seed, graph, query sequence).
func TestTransportEquivalence(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-file", graphFile(t), "-seed", "7"},
		strings.NewReader(transportQueries), &sb); err != nil {
		t.Fatal(err)
	}
	pipe := repliesByID(t, sb.String())
	if len(pipe) != 15 {
		t.Fatalf("pipe answered %d replies, want 15", len(pipe))
	}

	// Single-request exchanges: one POST per line, in the same order the
	// pipe saw them, against a server with the same seed and admission
	// config. The body must match the pipe reply byte-for-byte and the
	// status must reflect the typed code: 400 for decode failures and
	// unknown ops, 200 for everything that dispatched — including domain
	// errors like the adjacent pair and the unseen topkrefine signature,
	// which are answers, not transport failures.
	ts := newQueryServer(t)
	lines := strings.Split(strings.TrimSuffix(transportQueries, "\n"), "\n")
	for _, line := range lines {
		code, body := postLine(t, ts.URL, line+"\n")
		var r struct {
			ID int64 `json:"id"`
		}
		if err := json.Unmarshal([]byte(body), &r); err != nil {
			t.Fatalf("query %q: unparseable HTTP body %q: %v", line, body, err)
		}
		want, ok := pipe[r.ID]
		if !ok {
			t.Fatalf("HTTP reply id %d has no pipe counterpart", r.ID)
		}
		if got := strings.TrimSuffix(body, "\n"); got != want {
			t.Errorf("id %d: HTTP reply diverged from pipe\n got %s\nwant %s", r.ID, got, want)
		}
		wantCode := http.StatusOK
		if r.ID == 0 || r.ID == 13 {
			wantCode = http.StatusBadRequest
		}
		if code != wantCode {
			t.Errorf("id %d: HTTP status %d, want %d", r.ID, code, wantCode)
		}
	}

	// Batch exchange: the whole stream in one POST answers with NDJSON
	// at 200, one reply per line in request order, each byte-identical
	// to the pipe reply. Fresh server so the stats ledger sees the same
	// sequence exactly once.
	ts2 := newQueryServer(t)
	code, body := postLine(t, ts2.URL, transportQueries)
	if code != http.StatusOK {
		t.Fatalf("batch POST: status %d, want 200", code)
	}
	batch := repliesByID(t, body)
	if len(batch) != len(pipe) {
		t.Fatalf("batch answered %d replies, want %d", len(batch), len(pipe))
	}
	for id, want := range pipe {
		if batch[id] != want {
			t.Errorf("id %d: batch reply diverged from pipe\n got %s\nwant %s", id, batch[id], want)
		}
	}
	// Batch replies come back in request order even though ids could
	// reorder under a concurrent pipe.
	var prev int64 = -1
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		var r struct {
			ID int64 `json:"id"`
		}
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatal(err)
		}
		if r.ID < prev {
			t.Fatalf("batch replies out of request order: id %d after %d", r.ID, prev)
		}
		prev = r.ID
	}
}

// TestTransportOversized: a line past MaxRequestBytes is a per-request
// failure on both transports — the pipe answers the typed reply and
// keeps serving, a single-request POST maps it to 413, and a batch
// carries it in line — never a torn-down stream.
func TestTransportOversized(t *testing.T) {
	big := `{"op":"pmax","s":0,"t":5,"junk":"` + strings.Repeat("x", proto.MaxRequestBytes) + `"}`
	const follow = `{"id":1,"op":"pmax","s":0,"t":5,"trials":2000}`

	var sb strings.Builder
	if err := run([]string{"-file", graphFile(t), "-seed", "7"},
		strings.NewReader(big+"\n"+follow+"\n"), &sb); err != nil {
		t.Fatal(err)
	}
	pipe := repliesByID(t, sb.String())
	if len(pipe) != 2 {
		t.Fatalf("pipe answered %d replies, want 2 (oversized must not kill the stream)", len(pipe))
	}
	if !strings.Contains(pipe[0], "exceeds") {
		t.Errorf("oversized pipe reply: %s", pipe[0])
	}
	var ok1 struct {
		OK bool `json:"ok"`
	}
	if err := json.Unmarshal([]byte(pipe[1]), &ok1); err != nil || !ok1.OK {
		t.Errorf("query after oversized line failed: %s", pipe[1])
	}

	ts := newQueryServer(t)
	code, body := postLine(t, ts.URL, big+"\n")
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("single oversized POST: status %d, want 413", code)
	}
	if got := strings.TrimSuffix(body, "\n"); got != pipe[0] {
		t.Errorf("oversized HTTP reply diverged from pipe\n got %s\nwant %s", got, pipe[0])
	}

	code, body = postLine(t, ts.URL, big+"\n"+follow+"\n")
	if code != http.StatusOK {
		t.Errorf("batch with oversized line: status %d, want 200", code)
	}
	batch := repliesByID(t, body)
	if batch[0] != pipe[0] || batch[1] != pipe[1] {
		t.Errorf("batch replies diverged from pipe:\n%s\nwant\n%s\n%s", body, pipe[0], pipe[1])
	}
}
