package main

import (
	"os"
	"strings"
	"testing"
)

// TestServeGoldenBytes pins the pipe transport's output byte-for-byte
// against replies recorded from the pre-refactor afserve (the protocol
// inlined in main.go), over every op: the internal/proto extraction is
// a refactor, not a format change, and this is the proof. The recorded
// stream deliberately has its malformed line first (before any op is in
// flight, so reply order is deterministic even though the loop answers
// decode errors inline) and excludes the "stats" op, whose ledger
// legitimately grows new fields across PRs — HTTP-vs-pipe equivalence
// covers stats instead.
func TestServeGoldenBytes(t *testing.T) {
	queries, err := os.ReadFile("testdata/golden_queries.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/golden_replies.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-file", "testdata/golden_graph.txt", "-seed", "7"},
		strings.NewReader(string(queries)), &sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != string(want) {
		t.Errorf("pipe replies are not byte-identical to the pre-refactor golden\ngot:\n%s\nwant:\n%s", got, want)
	}
}
