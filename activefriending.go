// Package activefriending is the public API of this reproduction of
// "An Approximation Algorithm for Active Friending in Online Social
// Networks" (Tong, Wang, Li, Wu, Du — ICDCS 2019).
//
// Active friending helps an initiator s methodically befriend a target t:
// under the linear-threshold friending model, a user accepts an invitation
// once the combined familiarity of their mutual friends with s reaches a
// random threshold, so s should invite a carefully chosen set of
// intermediate users first. The Minimum Active Friending problem asks for
// the smallest invitation set I with f(I) ≥ α·p_max, where f is the
// acceptance probability and p_max its maximum over all invitation sets.
//
// The package exposes the paper's RAF algorithm (randomized, O(√n)
// approximation with controllable success probability), the exact
// polynomial special case α = 1 (V_max), the HD/SP baselines, forward and
// reverse Monte-Carlo estimators of f, synthetic dataset generators, and
// an experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// Every algorithm draws reverse realizations through a shared engine
// (internal/engine) that stores pools in a compact CSR arena, samples in
// worker-count-independent chunks — all results are pure functions of the
// seed — and serves coverage queries from an inverted index.
//
// Quick start, one-shot:
//
//	g, _ := activefriending.GenerateDataset("Wiki", 0.05, 1)
//	p, _ := activefriending.NewProblem(g, s, t)
//	sol, _ := p.Solve(ctx, activefriending.Options{Alpha: 0.3})
//	fmt.Println(sol.Invited, sol.PStar)
//
// For repeated queries on one (s,t) instance — an α-sweep, solve-then-
// measure loops, serving traffic — open a Session: it samples the
// realization pool once, grows it on demand, and reuses it (plus the
// cached V_max and p_max estimate) across Solve, SolveMax,
// AcceptanceProbability and Pmax calls:
//
//	sess := p.NewSession(1, 0) // seed 1, all CPUs
//	for _, alpha := range []float64{0.1, 0.2, 0.3} {
//		sol, _ := sess.Solve(ctx, activefriending.Options{Alpha: alpha})
//		fmt.Println(alpha, len(sol.Invited))
//	}
//
// To serve many (s,t) pairs on one graph — the paper's online social
// network setting — open a Server instead: it creates pair sessions on
// demand, shards them across locks, and evicts cold pools under a memory
// budget. Every answer is a pure function of (seed, s, t), so eviction
// and re-admission never change results:
//
//	sv := activefriending.NewServer(g, activefriending.ServerConfig{
//		MaxPoolBytes: 256 << 20, Seed: 1,
//	})
//	sol, _ := sv.Solve(ctx, s, t, activefriending.Options{Alpha: 0.3})
//	f, _ := sv.AcceptanceProbability(ctx, s, t, sol.Invited, 20000)
//
// A friending surface usually ranks many candidate targets for one
// source rather than answering a single pair. Server.TopK serves that as
// one scheduled batch: a successive-halving schedule spends most of the
// draw budget on the leading candidates (total draws sublinear in the
// candidate count), every candidate's partial-effort score is a prefix
// of its full-effort one, and an unlimited budget returns byte-identical
// answers to independent SolveMax calls per candidate. The result is
// anytime: TopKRefine resumes the schedule with more budget, reusing
// every draw already paid for:
//
//	top, _ := sv.TopK(ctx, s, candidates, 5, activefriending.TopKOptions{
//		Budget: 10, Realizations: 20000, MaxDraws: 500000,
//	})
//	for _, w := range top.Winners {
//		fmt.Println(w.Target, w.Score, w.Effort)
//	}
//	top, _ = sv.TopKRefine(ctx, top, 500000) // tighten the leaders
//
// The served graph may mutate: Server.ApplyDelta adds and removes edges
// atomically, producing the next epoch, and migrates every cached pair
// across it by repair — pool chunks whose sampled walks never consulted
// a changed node keep their bytes; only damaged chunks are resampled —
// so a sparse mutation costs a small fraction of rebuilding the cache,
// and answers afterwards are byte-identical to a server built fresh on
// the mutated graph:
//
//	res, _ := sv.ApplyDelta(ctx, &activefriending.Delta{
//		Add: []activefriending.Edge{{U: 3, V: 17}},
//	})
//	fmt.Println(res.PairsMigrated, res.RepairDrawsSaved)
//
// A Server also speaks the serving protocol over HTTP: Handler (or the
// Server itself, via ServeHTTP) answers POST requests carrying one
// protocol line — or an NDJSON batch — with the same reply bytes the
// stdin/stdout transport produces, and ServerConfig.MaxInflight /
// MaxQueue bound how much traffic executes at once (beyond the bound
// the server fast-rejects with ErrOverloaded / HTTP 429 instead of
// queueing unboundedly):
//
//	sv := activefriending.NewServer(g, activefriending.ServerConfig{
//		Seed: 1, MaxInflight: 8, MaxQueue: 64,
//	})
//	http.Handle("/v1/query", sv.Handler())
//	go http.ListenAndServe(":8080", nil)
//	// curl -d '{"op":"solvemax","s":3,"t":91,"budget":5}' localhost:8080/v1/query
//
// cmd/afserve exposes the same protocol over line-delimited JSON on
// stdin/stdout and (with -metrics-addr) over HTTP at /v1/query, with
// graceful drain on SIGTERM.
//
// # Persistence
//
// Pools can be snapshotted to disk and loaded back byte-identically
// (internal/snapshot): a snapshot is a versioned, checksummed,
// little-endian blob — a 64-byte header (seed, stream namespace,
// universe, total draws), the CSR offset table, the per-path draw
// indices, the path arena, and a CRC-32C footer — loadable either by
// copy or zero-copy via mmap. Because every pool is a pure function of
// (seed, l), and every answer a pure function of its pool, answers
// computed from a loaded snapshot are byte-identical to answers computed
// from fresh sampling; a corrupted, truncated or seed-mismatched file is
// rejected by validation and the pool is simply resampled. Persistence
// is therefore purely a latency tier (loading a pool is ~25× faster than
// resampling it).
//
// The p_max stopping rule (Algorithm 2) runs through the same chunked
// engine: each Session and server pair keeps a resumable draw ledger, so
// asking for a tighter ε₀ extends the existing draw sequence instead of
// re-running the rule, and the ledger is persisted alongside the pools.
//
// Give a Server a ServerConfig.SpillDir and eviction under MaxPoolBytes
// writes the victim's pools to disk instead of discarding them, with
// re-admission restoring from bytes; Server.SpillAll flushes every live
// pair (graceful shutdown) and Server.Warm preloads every spill file
// (restart). ServerStats ledgers the spills, loads, bytes and draws
// saved. afserve wires this up end to end:
//
//	afserve -file graph.txt -seed 1 -maxbytes 268435456 -spill-dir /var/tmp/af
//	afserve -file graph.txt -seed 1 -spill-dir /var/tmp/af -warm   # restart, disk-warm
package activefriending

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/maxaf"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/proto/httpapi"
	"repro/internal/server"
	"repro/internal/weights"
)

// Node identifies a user; nodes are dense integers in [0, NumUsers).
type Node = graph.Node

// Graph is the immutable social graph (see NewGraphBuilder, LoadEdgeList,
// GenerateDataset).
type Graph = graph.Graph

// NewGraphBuilder returns a builder for a social graph with n users.
func NewGraphBuilder(n int) *graph.Builder { return graph.NewBuilder(n) }

// LoadEdgeList parses a SNAP-style edge list ("u v" per line, '#'
// comments, arbitrary ids remapped densely).
func LoadEdgeList(r io.Reader) (*Graph, error) { return gen.ReadEdgeList(r) }

// SaveEdgeList writes g in the same format.
func SaveEdgeList(w io.Writer, g *Graph) error { return gen.WriteEdgeList(w, g) }

// GenerateDataset synthesizes the offline analog of one of the paper's
// Table I datasets ("Wiki", "HepTh", "HepPh", "Youtube") at the given
// scale ∈ (0,1] of the published node count.
func GenerateDataset(name string, scale float64, seed int64) (*Graph, error) {
	d, err := gen.DatasetByName(name)
	if err != nil {
		return nil, err
	}
	return d.Generate(scale, seed)
}

// DatasetNames lists the Table I registry in the paper's order.
func DatasetNames() []string {
	ds := gen.Datasets()
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name
	}
	return names
}

// Problem is an active-friending instance: a network with the paper's
// degree-normalized familiarity weights (w(u,v) = 1/|N_v|), an initiator
// and a target. Immutable and safe for concurrent use.
type Problem struct {
	in  *ltm.Instance
	eng *engine.Engine
}

func newProblem(in *ltm.Instance) *Problem {
	return &Problem{in: in, eng: engine.New(in)}
}

// NewProblem validates and builds a problem on g with the paper's weight
// convention. s and t must be distinct, existing, non-adjacent users.
func NewProblem(g *Graph, s, t Node) (*Problem, error) {
	in, err := ltm.NewInstance(g, weights.NewDegree(g), s, t)
	if err != nil {
		return nil, err
	}
	return newProblem(in), nil
}

// NewProblemWithWeights builds a problem with an explicit familiarity
// function; weightOf(u, v) is v's familiarity with u and must satisfy
// Σ_{u∈N_v} weightOf(u,v) ≤ 1 for every v.
func NewProblemWithWeights(g *Graph, s, t Node, weightOf func(u, v Node) float64) (*Problem, error) {
	sch, err := weights.NewExplicit(g, weightOf)
	if err != nil {
		return nil, err
	}
	in, err := ltm.NewInstance(g, sch, s, t)
	if err != nil {
		return nil, err
	}
	return newProblem(in), nil
}

// Initiator returns s.
func (p *Problem) Initiator() Node { return p.in.S() }

// Target returns t.
func (p *Problem) Target() Node { return p.in.T() }

// Graph returns the underlying graph.
func (p *Problem) Graph() *Graph { return p.in.Graph() }

// Options configures Solve. The zero value solves with the paper's
// experimental defaults (α = 0.1, ε = 0.01, N = 100000) in the practical
// sampling regime.
type Options struct {
	// Alpha is the required fraction of p_max (default 0.1).
	Alpha float64
	// Eps is the accuracy slack (default 0.01): the guarantee is
	// f(I) ≥ (Alpha−Eps)·p_max with probability ≥ 1 − 2/N.
	Eps float64
	// N controls the success probability (default 100000).
	N float64
	// Seed fixes all randomness; Workers bounds parallelism (0 = CPUs).
	Seed    int64
	Workers int
	// MaxRealizations caps the sampled pool (default 200000; 0 keeps the
	// default — use Unbounded for the pure-theory sizing).
	MaxRealizations int64
	// MaxPmaxDraws caps the p_max estimation (default 2000000).
	MaxPmaxDraws int64
	// Realizations, when positive, skips the theoretical pool sizing and
	// uses exactly this many realizations (the practical regime of the
	// paper's Sec. IV-E). With a Session, a fixed Realizations across an
	// α-sweep means the pool is sampled exactly once.
	Realizations int64
	// Unbounded disables both caps: pool sizing follows Eq. 16 exactly.
	// Feasible only on small instances.
	Unbounded bool
}

func (o Options) normalized() Options {
	out := o
	if out.Alpha == 0 {
		out.Alpha = 0.1
	}
	if out.Eps == 0 {
		out.Eps = 0.01
	}
	if out.N == 0 {
		out.N = 100000
	}
	if out.MaxRealizations == 0 {
		out.MaxRealizations = 200000
	}
	if out.MaxPmaxDraws == 0 {
		out.MaxPmaxDraws = 2000000
	}
	if out.Unbounded {
		out.MaxRealizations = 0
		out.MaxPmaxDraws = 0
	}
	return out
}

// Solution is the output of Solve.
type Solution struct {
	// Invited is the invitation set I*, ascending, always containing the
	// target.
	Invited []Node
	// PStar is the algorithm's estimate of p_max.
	PStar float64
	// VmaxSize is |V_max| (the α = 1 optimum size).
	VmaxSize int
	// Realizations is the pool size used; Covered of PoolType1 sampled
	// type-1 realizations are covered by Invited.
	Realizations int64
	PoolType1    int
	Covered      int
}

// ErrTargetUnreachable reports p_max ≈ 0: no invitation strategy works.
var ErrTargetUnreachable = core.ErrTargetUnreachable

func (o Options) coreConfig() core.Config {
	return core.Config{
		Alpha:           o.Alpha,
		Eps:             o.Eps,
		N:               o.N,
		Seed:            o.Seed,
		Workers:         o.Workers,
		MaxRealizations: o.MaxRealizations,
		MaxPmaxDraws:    o.MaxPmaxDraws,
		OverrideL:       o.Realizations,
	}
}

func solutionFromResult(res *core.Result) *Solution {
	return &Solution{
		Invited:      res.Invited.Members(),
		PStar:        res.PStar,
		VmaxSize:     res.VmaxSize,
		Realizations: res.LUsed,
		PoolType1:    res.PoolType1,
		Covered:      res.Covered,
	}
}

// Solve runs the RAF algorithm (Algorithm 4 of the paper). The result is
// deterministic for a fixed Options.Seed regardless of Options.Workers.
func (p *Problem) Solve(ctx context.Context, opts Options) (*Solution, error) {
	o := opts.normalized()
	res, err := core.RAF(ctx, p.in, o.coreConfig())
	if err != nil {
		return nil, err
	}
	return solutionFromResult(res), nil
}

// MaxSolution is the output of SolveMax.
type MaxSolution struct {
	// Invited is the chosen invitation set (size ≤ the budget).
	Invited []Node
	// EstimatedF estimates f(Invited) on draws decorrelated from the pool
	// the greedy optimized over (the same stream family
	// AcceptanceProbability uses), so it is an unbiased measurement of the
	// returned set.
	EstimatedF float64
	// TrainF is the covered fraction of the solve pool itself — the
	// quantity the greedy maximized. It is optimistically biased (the set
	// was chosen to cover exactly these draws); the TrainF−EstimatedF gap
	// is the overfit margin.
	TrainF float64
}

// SolveMax solves the *maximum* active friending variant (the problem of
// Yang et al. that the paper's related work targets): maximize f(I)
// subject to |I| ≤ budget, using the same realization machinery with a
// budgeted max-coverage greedy. realizations ≤ 0 selects the default pool
// size.
func (p *Problem) SolveMax(ctx context.Context, budget int, realizations int64, seed int64) (*MaxSolution, error) {
	res, err := maxaf.Solve(ctx, p.in, maxaf.Config{
		Budget:       budget,
		Realizations: realizations,
		Seed:         seed,
	})
	if err != nil {
		return nil, err
	}
	l := realizations
	if l <= 0 {
		l = maxaf.DefaultRealizations
	}
	// Measure the returned set on fresh draws (the estimator's stream
	// family is decorrelated from the solve pool's): the in-pool fraction
	// is what the greedy optimized and overstates f.
	f, err := p.eng.EstimateF(ctx, res.Invited, l, 0, seed)
	if err != nil {
		return nil, err
	}
	return &MaxSolution{
		Invited:    res.Invited.Members(),
		EstimatedF: f,
		TrainF:     res.CoveredFraction,
	}, nil
}

// Vmax returns the unique minimum invitation set achieving p_max
// (Lemma 7; the polynomial α = 1 special case).
func (p *Problem) Vmax() ([]Node, error) {
	vm, err := core.Vmax(p.in)
	if err != nil {
		return nil, err
	}
	return vm.Members(), nil
}

// AcceptanceProbability estimates f(invited) with trials reverse
// Monte-Carlo samples (Corollary 1 of the paper). Deterministic per seed,
// independent of the worker count.
func (p *Problem) AcceptanceProbability(ctx context.Context, invited []Node, trials int64, seed int64) (float64, error) {
	set, err := p.toSet(invited)
	if err != nil {
		return 0, err
	}
	return p.eng.EstimateF(ctx, set, trials, 0, seed)
}

// AcceptanceProbabilityForward estimates f(invited) by simulating the
// friending process (Process 1) directly — slower, used to cross-check the
// reverse estimator (Lemma 1 guarantees agreement).
func (p *Problem) AcceptanceProbabilityForward(ctx context.Context, invited []Node, trials int64, seed int64) (float64, error) {
	set, err := p.toSet(invited)
	if err != nil {
		return 0, err
	}
	return p.in.EstimateF(ctx, set, trials, 0, seed)
}

// Pmax estimates p_max = f(V) with trials reverse samples.
func (p *Problem) Pmax(ctx context.Context, trials int64, seed int64) (float64, error) {
	all := graph.NewNodeSet(p.in.Graph().NumNodes())
	all.Fill()
	return p.eng.EstimateF(ctx, all, trials, 0, seed)
}

// HighDegreeSet returns the HD baseline's invitation set of size k.
func (p *Problem) HighDegreeSet(k int) []Node {
	order := baselines.HighDegree{}.Rank(p.in)
	return baselines.PrefixSet(p.in.Graph().NumNodes(), order, k).Members()
}

// ShortestPathSet returns the SP baseline's invitation set of size k.
func (p *Problem) ShortestPathSet(k int) []Node {
	order := baselines.ShortestPath{}.Rank(p.in)
	return baselines.PrefixSet(p.in.Graph().NumNodes(), order, k).Members()
}

func (p *Problem) toSet(invited []Node) (*graph.NodeSet, error) {
	return nodeSetOf(p.in.Graph(), invited)
}

func nodeSetOf(g *Graph, invited []Node) (*graph.NodeSet, error) {
	set := graph.NewNodeSet(g.NumNodes())
	for _, v := range invited {
		if err := g.CheckNode(v); err != nil {
			return nil, fmt.Errorf("activefriending: invited set: %w", err)
		}
		set.Add(v)
	}
	return set, nil
}

// IsUnreachable reports whether err indicates a pair with p_max ≈ 0.
func IsUnreachable(err error) bool { return errors.Is(err, core.ErrTargetUnreachable) }

// Session serves repeated queries on one problem from shared state: the
// realization pool (sampled once, grown incrementally, never resampled),
// the exact V_max, the p_max estimate, and a separate evaluation pool
// with an inverted coverage index for f measurements. An α-sweep of Solve
// calls with a fixed Options.Realizations samples the pool exactly once;
// SolveMax reuses the same pool the minimization solves use.
//
// The session's seed and worker count govern every call (Options.Seed and
// Options.Workers are ignored), and all results are independent of the
// worker count. Safe for concurrent use.
type Session struct {
	p    *Problem
	core *core.Session
	eval *engine.Session
}

// NewSession opens a session on the problem. seed fixes all randomness;
// workers bounds sampling parallelism (0 = all CPUs) without affecting
// any result.
func (p *Problem) NewSession(seed int64, workers int) *Session {
	cs := core.NewSession(p.in, seed, workers)
	return &Session{p: p, core: cs, eval: cs.Engine().NewEvalSession(seed, workers)}
}

// Solve runs the RAF algorithm against the session's cached pool.
func (s *Session) Solve(ctx context.Context, opts Options) (*Solution, error) {
	o := opts.normalized()
	res, err := s.core.RAF(ctx, o.coreConfig())
	if err != nil {
		return nil, err
	}
	return solutionFromResult(res), nil
}

// SolveMax solves the budgeted maximum variant against the session's
// cached pool (shared with Solve). realizations ≤ 0 selects the default
// pool size. EstimatedF is measured against the session's decorrelated
// evaluation pool; the in-pool fraction the greedy optimized is TrainF.
func (s *Session) SolveMax(ctx context.Context, budget int, realizations int64) (*MaxSolution, error) {
	l := realizations
	if l <= 0 {
		l = maxaf.DefaultRealizations
	}
	pool, err := s.core.Pool(ctx, l)
	if err != nil {
		return nil, err
	}
	res, err := maxaf.SolveFromPool(ctx, s.p.in, budget, pool)
	if err != nil {
		return nil, err
	}
	f, err := s.eval.EstimateF(ctx, res.Invited, l)
	if err != nil {
		return nil, err
	}
	return &MaxSolution{
		Invited:    res.Invited.Members(),
		EstimatedF: f,
		TrainF:     res.CoveredFraction,
	}, nil
}

// maxSolutions pairs a budget sweep's solver results with their
// decorrelated estimates.
func maxSolutions(results []*maxaf.Result, fs []float64) []*MaxSolution {
	out := make([]*MaxSolution, len(results))
	for i, r := range results {
		out[i] = &MaxSolution{
			Invited:    r.Invited.Members(),
			EstimatedF: fs[i],
			TrainF:     r.CoveredFraction,
		}
	}
	return out
}

// SolveMaxBudgets answers SolveMax for every budget in one shot against
// the session's cached pool: the pool's set-cover family is folded once,
// one solver's scratch is reused across the sweep, and both the TrainF
// and EstimatedF measurements are batched coverage queries — one postings
// traversal per pool for the whole sweep. Results are identical to
// calling SolveMax per budget.
func (s *Session) SolveMaxBudgets(ctx context.Context, budgets []int, realizations int64) ([]*MaxSolution, error) {
	l := realizations
	if l <= 0 {
		l = maxaf.DefaultRealizations
	}
	pool, err := s.core.Pool(ctx, l)
	if err != nil {
		return nil, err
	}
	results, err := maxaf.SolveBudgetsFromPool(ctx, s.p.in, budgets, pool)
	if err != nil {
		return nil, err
	}
	sets := make([]*graph.NodeSet, len(results))
	for i, r := range results {
		sets[i] = r.Invited
	}
	fs, err := s.eval.EstimateFMany(ctx, sets, l)
	if err != nil {
		return nil, err
	}
	return maxSolutions(results, fs), nil
}

// AcceptanceProbability estimates f(invited) as a coverage query against
// the session's evaluation pool (grown to at least trials draws), so
// repeated measurements share draws and the pool's coverage index.
func (s *Session) AcceptanceProbability(ctx context.Context, invited []Node, trials int64) (float64, error) {
	set, err := s.p.toSet(invited)
	if err != nil {
		return 0, err
	}
	return s.eval.EstimateF(ctx, set, trials)
}

// Pmax estimates p_max = f(V) from the session's evaluation pool: it is
// the pool's type-1 fraction over exactly trials draws. For an estimate
// carrying the paper's (ε₀, 1/N) stopping-rule guarantee — and for
// incremental refinement — use EstimatePmax.
func (s *Session) Pmax(ctx context.Context, trials int64) (float64, error) {
	return s.eval.FractionType1(ctx, trials)
}

// PmaxEstimate is the outcome of EstimatePmax: the Algorithm 2 estimate
// together with its draw accounting.
type PmaxEstimate struct {
	// Value is the p_max estimate; with Truncated false it is within
	// relative error eps0 of p_max with probability ≥ 1 − 1/N.
	Value float64
	// Draws is the number of stopping-rule draws the estimate consumed;
	// Reused counts those answered from the session's retained ledger
	// (draws paid for by earlier estimates), Sampled the net-new draws.
	Draws   int64
	Reused  int64
	Sampled int64
	// Truncated reports that the draw budget ran out before the rule
	// converged; Value is then the plain Monte-Carlo mean over the budget
	// and carries no relative-error guarantee.
	Truncated bool
}

// EstimatePmax runs the paper's Algorithm 2 (the Dagum et al. stopping
// rule) at relative error eps0 ∈ (0,1) (default 0.1) with failure
// probability 1/n (default n = 100000), drawing at most maxDraws samples
// (≤ 0 selects the default cap of 2000000). The session's estimator
// retains its draw ledger, so repeated calls reuse every draw already
// paid for and a tighter eps0 extends the sequence instead of
// restarting — the refined estimate is identical to a cold estimate at
// the tighter accuracy. Deterministic per seed, independent of the
// worker count. Solve's internal p_max step shares the same ledger.
func (s *Session) EstimatePmax(ctx context.Context, eps0, n float64, maxDraws int64) (*PmaxEstimate, error) {
	e0, bigN, budget := pmaxDefaults(eps0, n, maxDraws)
	res, err := s.core.EstimatePmax(ctx, e0, bigN, budget)
	if err != nil {
		return nil, err
	}
	return pmaxEstimateFrom(res), nil
}

// pmaxDefaults normalizes EstimatePmax parameters (shared by Session and
// Server).
func pmaxDefaults(eps0, n float64, maxDraws int64) (float64, float64, int64) {
	if eps0 == 0 {
		eps0 = 0.1
	}
	if n == 0 {
		n = 100000
	}
	if maxDraws <= 0 {
		maxDraws = 2000000
	}
	return eps0, n, maxDraws
}

func pmaxEstimateFrom(res engine.PmaxResult) *PmaxEstimate {
	return &PmaxEstimate{
		Value:     res.Estimate,
		Draws:     res.Draws,
		Reused:    res.Reused,
		Sampled:   res.Sampled,
		Truncated: res.Truncated,
	}
}

// ServerConfig configures a Server.
type ServerConfig struct {
	// MaxPoolBytes bounds the total memory of cached per-pair state (pool
	// arenas, offset tables, coverage indexes). When a query pushes the
	// total over the budget, the least-recently-used pairs' pools are
	// evicted until it fits; evicted pairs are re-derived on their next
	// query with byte-identical pools, so eviction never changes an
	// answer. 0 disables eviction.
	MaxPoolBytes int64
	// Shards is the number of locks the pair map is sharded across
	// (default 16); queries for pairs on distinct shards never contend on
	// session lookup.
	Shards int
	// Seed roots every pair's randomness: all results are pure functions
	// of (Seed, s, t). Workers bounds sampling parallelism per query
	// (0 = all CPUs) without affecting any result.
	Seed    int64
	Workers int
	// SpillDir, when non-empty, gives eviction a disk tier: instead of
	// discarding an evicted pair's pools, the server snapshots them to
	// one checksummed file in this directory (which must exist), and the
	// pair's next query restores the pools from bytes instead of
	// resampling draw by draw. Snapshots carry their stream identity
	// (seed and namespace); files that fail validation — corruption,
	// format-version skew, or a different Seed — are ignored and the
	// pair resamples, with byte-identical answers either way. See also
	// Server.SpillAll (shutdown flush) and Server.Warm (startup preload).
	SpillDir string
	// Metrics enables the observability layer: per-kind request latency
	// histograms, per-stage query tracing, and scrape-time mirrors of
	// every ServerStats counter, reachable via Server.Obs,
	// Server.WriteMetrics, Server.MetricsSnapshot and Server.WriteStatusz.
	// Off (the default) the query path pays nothing — the tracer hooks
	// compile to nil-check no-ops. Instrumentation never changes an
	// answer: results stay pure functions of (Seed, s, t).
	Metrics bool
	// SlowQueryThreshold, with Metrics, logs every query slower than the
	// threshold as one line of JSON (kind, total, per-stage spans) to
	// SlowQueryLog (default os.Stderr). 0 disables slow-query logging.
	SlowQueryThreshold time.Duration
	SlowQueryLog       io.Writer
	// SpillTTL, when positive, expires spill files: a snapshot not
	// rewritten within the TTL is deleted (swept at Warm and
	// periodically while serving), bounding the spill directory. An
	// expired pair resamples on its next query — a latency cost, never
	// a correctness one.
	SpillTTL time.Duration
	// MaxInflight, when positive, enables admission control: at most
	// MaxInflight queries execute at once, at most MaxQueue more wait
	// for a slot, and anything beyond fast-rejects with ErrOverloaded —
	// under overload the server sheds load in O(1) instead of queueing
	// unboundedly. Internal work (warming, delta migration) is never
	// gated. 0 disables the gate.
	MaxInflight int
	MaxQueue    int
}

// Server serves active-friending queries for arbitrary (s,t) pairs on
// one graph — the paper's online setting, where many friending requests
// are in flight against one social network at once. Pair sessions are
// created on demand, cached, and evicted least-recently-used under
// ServerConfig.MaxPoolBytes. Safe for concurrent use.
//
//	sv := activefriending.NewServer(g, activefriending.ServerConfig{
//		MaxPoolBytes: 256 << 20, Seed: 1,
//	})
//	sol, _ := sv.Solve(ctx, s, t, activefriending.Options{Alpha: 0.3})
//	f, _ := sv.AcceptanceProbability(ctx, s, t, sol.Invited, 20000)
//	fmt.Println(sv.Stats().BytesHeld)
type Server struct {
	sv *server.Server

	handlerOnce sync.Once
	handler     http.Handler
}

// ErrOverloaded is the admission fast-reject: ServerConfig.MaxInflight
// queries are executing and the MaxQueue wait slots are full. The query
// did not run; retrying with backoff is sound.
var ErrOverloaded = server.ErrOverloaded

// IsOverloaded reports whether err is an admission rejection.
func IsOverloaded(err error) bool { return errors.Is(err, server.ErrOverloaded) }

// Handler returns the server's HTTP query endpoint: POST one request
// line — or an NDJSON batch — of the afserve wire protocol and receive
// the same reply bytes the stdin/stdout transport produces (see
// internal/proto/httpapi for the status-code mapping: 429 on
// ErrOverloaded, 400/413 on malformed or oversized requests). Mount it
// wherever the application serves HTTP:
//
//	sv := activefriending.NewServer(g, activefriending.ServerConfig{
//		Seed: 1, MaxInflight: 8, MaxQueue: 64,
//	})
//	http.Handle("/v1/query", sv.Handler())
//	go http.ListenAndServe(":8080", nil)
//	// curl -d '{"op":"solvemax","s":3,"t":91,"budget":5}' localhost:8080/v1/query
//
// The handler is created once and reused; Server.ServeHTTP serves the
// same endpoint directly.
func (sv *Server) Handler() http.Handler {
	sv.handlerOnce.Do(func() {
		sv.handler = httpapi.New(proto.NewDispatcher(sv.sv))
	})
	return sv.handler
}

// ServeHTTP implements http.Handler by delegating to Handler, so a
// *Server can itself be mounted on a mux.
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sv.Handler().ServeHTTP(w, r)
}

// NewServer returns a server for g with the paper's degree-normalized
// weight convention.
func NewServer(g *Graph, cfg ServerConfig) *Server {
	var o *obs.Obs
	if cfg.Metrics {
		o = obs.New()
		if cfg.SlowQueryThreshold > 0 {
			w := cfg.SlowQueryLog
			if w == nil {
				w = os.Stderr
			}
			o.SetSlowLog(cfg.SlowQueryThreshold, w)
		}
	}
	return &Server{sv: server.New(g, weights.NewDegree(g), server.Config{
		MaxPoolBytes: cfg.MaxPoolBytes,
		Shards:       cfg.Shards,
		Seed:         cfg.Seed,
		Workers:      cfg.Workers,
		SpillDir:     cfg.SpillDir,
		SpillTTL:     cfg.SpillTTL,
		MaxInflight:  cfg.MaxInflight,
		MaxQueue:     cfg.MaxQueue,
		Obs:          o,
	})}
}

// Obs is the observability bundle a Metrics-enabled Server carries: a
// metrics registry plus a slowest-trace tracer. The serving binaries
// hand it to the HTTP endpoint (internal/obs/httpserve); library users
// usually want the rendered forms (WriteMetrics, MetricsSnapshot,
// WriteStatusz) instead.
type Obs = obs.Obs

// MetricSample is one flattened metric series at scrape time.
type MetricSample = obs.Sample

// Obs returns the server's observability bundle; nil unless the server
// was built with ServerConfig.Metrics.
func (sv *Server) Obs() *Obs { return sv.sv.Obs() }

// WriteMetrics renders the Prometheus text exposition of every
// registered series. A no-op without ServerConfig.Metrics.
func (sv *Server) WriteMetrics(w io.Writer) error {
	o := sv.sv.Obs()
	if o == nil {
		return nil
	}
	return o.Registry.WritePrometheus(w)
}

// MetricsSnapshot returns every registered series as flat samples —
// the machine-readable form afserve's stats op ships alongside
// ServerStats. Nil without ServerConfig.Metrics.
func (sv *Server) MetricsSnapshot() []MetricSample {
	o := sv.sv.Obs()
	if o == nil {
		return nil
	}
	return o.Registry.Snapshot()
}

// WriteStatusz renders the human-readable status page: the stats
// ledger, per-kind and per-stage latency quantiles, and the slowest
// retained traces. Works without Metrics too (the ledger lines only).
func (sv *Server) WriteStatusz(w io.Writer) { sv.sv.WriteStatusz(w) }

// SpillAll snapshots every cached pair's pools to ServerConfig.SpillDir
// without evicting them — the graceful-shutdown flush. A successor
// process serving the same graph with the same Seed then answers its
// first queries from disk-warm pools (lazily on first query, or eagerly
// via Warm). A no-op when no SpillDir is configured.
func (sv *Server) SpillAll() error { return sv.sv.SpillAll() }

// Warm admits every pair with a spill file in ServerConfig.SpillDir and
// returns the number of pairs whose pools were actually restored from
// disk. Files that fail validation still admit their pair — cold, and
// ledgered in ServerStats.SpillLoadErrors — but are not counted.
// Admission runs through the normal cache path, so the memory budget is
// enforced and ServerStats ledgers the loads. A no-op without a
// SpillDir.
func (sv *Server) Warm() (int, error) { return sv.sv.Warm() }

// Solve runs RAF for the pair (s, t) against its cached session.
// Options.Seed and Options.Workers are ignored: the server's per-pair
// streams govern, so the result is a pure function of (ServerConfig.Seed,
// s, t) and the solve parameters.
func (sv *Server) Solve(ctx context.Context, s, t Node, opts Options) (*Solution, error) {
	o := opts.normalized()
	res, err := sv.sv.Solve(ctx, s, t, o.coreConfig())
	if err != nil {
		return nil, err
	}
	return solutionFromResult(res), nil
}

// SolveMax solves the budgeted maximum variant for (s, t) against the
// pair's cached pools; see Session.SolveMax for the TrainF/EstimatedF
// distinction.
func (sv *Server) SolveMax(ctx context.Context, s, t Node, budget int, realizations int64) (*MaxSolution, error) {
	res, f, err := sv.sv.SolveMax(ctx, s, t, budget, realizations)
	if err != nil {
		return nil, err
	}
	return &MaxSolution{
		Invited:    res.Invited.Members(),
		EstimatedF: f,
		TrainF:     res.CoveredFraction,
	}, nil
}

// SolveMaxBudgets answers a whole SolveMax budget sweep for (s, t) in one
// shot: the pair's pool is folded into a set-cover family once, one
// solver is reused across budgets, and the TrainF / EstimatedF
// measurements are batched coverage queries (one postings traversal per
// pool). Results are identical to calling SolveMax per budget.
func (sv *Server) SolveMaxBudgets(ctx context.Context, s, t Node, budgets []int, realizations int64) ([]*MaxSolution, error) {
	results, fs, err := sv.sv.SolveMaxBudgets(ctx, s, t, budgets, realizations)
	if err != nil {
		return nil, err
	}
	return maxSolutions(results, fs), nil
}

// TopKOptions parameterizes one batched ranking request.
type TopKOptions struct {
	// Budget is the invitation budget each candidate is solved under
	// (default 10).
	Budget int
	// Realizations is the full per-candidate effort: the pool size a
	// winner is scored at (≤ 0 selects the package default, 50000).
	Realizations int64
	// MaxDraws bounds the whole batch's realization-draw bill; the
	// scheduler concentrates it on the leading candidates. 0 means
	// unlimited, which scores every candidate at full effort and
	// returns byte-identical answers to independent SolveMax calls.
	MaxDraws int64
}

// TopKCandidate is one candidate target's standing after a TopK run.
type TopKCandidate struct {
	Target Node
	// Score is the decorrelated estimate of the acceptance probability
	// of Invited at Effort draws — what candidates are ranked on.
	// TrainF is the biased in-pool fraction of the same solve.
	Score  float64
	TrainF float64
	// Invited is the candidate's last chosen invitation set (nil if it
	// never scored).
	Invited []Node
	// Effort is the pool size the candidate was last scored at — its
	// confidence; Rounds its scheduling rounds; Frozen marks
	// candidates eliminated before the final round.
	Effort int64
	Rounds int
	Frozen bool
	// Err is the scoring failure that froze the candidate, if any
	// (e.g. the target is the source, or already adjacent to it).
	Err string
}

// TopKResult is a finished batched ranking.
type TopKResult struct {
	Source Node
	K      int
	// Winners are the top min(K, scored) candidates, best first, each
	// scored at the schedule's final effort. Candidates holds every
	// target's standing in input order; Ranked lists input indices
	// best-first.
	Winners    []TopKCandidate
	Candidates []TopKCandidate
	Ranked     []int
	// Rounds is the number of halving rounds run. DrawsSpent is the
	// measured draw bill; PlannedDraws the schedule's a-priori bill;
	// ExhaustiveDraws what independent full-effort SolveMax calls
	// would have planned. Truncated reports that MaxDraws forced even
	// the winners below full effort — TopKRefine can finish the job.
	Rounds          int
	DrawsSpent      int64
	PlannedDraws    int64
	ExhaustiveDraws int64
	Truncated       bool

	inner *server.TopKResult // retained so TopKRefine can resume
}

func topKResultFrom(source Node, k int, res *server.TopKResult) *TopKResult {
	conv := func(c server.TopKCandidate) TopKCandidate {
		out := TopKCandidate{
			Target: c.Target,
			Score:  c.Score,
			TrainF: c.TrainF,
			Effort: c.Effort,
			Rounds: c.Rounds,
			Frozen: c.Frozen,
			Err:    c.Err,
		}
		if c.Invited != nil {
			out.Invited = c.Invited.Members()
		}
		return out
	}
	r := &TopKResult{
		Source:          source,
		K:               k,
		Candidates:      make([]TopKCandidate, len(res.Candidates)),
		Ranked:          res.Ranked,
		Rounds:          res.Rounds,
		DrawsSpent:      res.DrawsSpent,
		PlannedDraws:    res.PlannedDraws,
		ExhaustiveDraws: res.ExhaustiveDraws,
		Truncated:       res.Truncated,
		inner:           res,
	}
	for i, c := range res.Candidates {
		r.Candidates[i] = conv(c)
	}
	for _, wi := range res.Winners() {
		r.Winners = append(r.Winners, r.Candidates[wi])
	}
	return r
}

// TopK ranks candidate targets for one source as a single scheduled
// batch and returns the best k, spending at most opts.MaxDraws
// realization draws across the whole batch. A successive-halving
// schedule scores every surviving candidate at a growing pool size and
// freezes the bottom half each round, so the draw bill concentrates on
// the leaders and stays sublinear in len(targets); each candidate rides
// the server's ordinary pair cache (byte budget, eviction, spill tier
// and graph deltas all apply). With an unlimited budget the answers are
// byte-identical to calling SolveMax once per target — partial-effort
// scores are prefixes of full-effort ones, so scheduling never changes
// what full effort would conclude, only how cheaply the batch gets
// there.
func (sv *Server) TopK(ctx context.Context, source Node, targets []Node, k int, opts TopKOptions) (*TopKResult, error) {
	budget := opts.Budget
	if budget <= 0 {
		budget = 10
	}
	res, err := sv.sv.TopK(ctx, server.TopKQuery{
		S:            source,
		Targets:      targets,
		K:            k,
		Budget:       budget,
		Realizations: opts.Realizations,
		MaxDraws:     opts.MaxDraws,
	})
	if err != nil {
		return nil, err
	}
	return topKResultFrom(source, k, res), nil
}

// TopKRefine resumes a finished TopK run with extraDraws more budget:
// the schedule re-plans at the enlarged budget and re-runs against the
// same warm pair cache, so only the incremental draws are paid — the
// anytime contract. The refined result equals what a cold TopK at the
// combined budget would return.
func (sv *Server) TopKRefine(ctx context.Context, prev *TopKResult, extraDraws int64) (*TopKResult, error) {
	if prev == nil || prev.inner == nil {
		return nil, errors.New("activefriending: TopKRefine needs a result returned by TopK")
	}
	res, err := sv.sv.TopKRefine(ctx, prev.inner, extraDraws)
	if err != nil {
		return nil, err
	}
	return topKResultFrom(prev.Source, prev.K, res), nil
}

// AcceptanceProbability estimates f(invited) for the pair (s, t) against
// its cached evaluation pool.
func (sv *Server) AcceptanceProbability(ctx context.Context, s, t Node, invited []Node, trials int64) (float64, error) {
	set, err := nodeSetOf(sv.sv.Graph(), invited)
	if err != nil {
		return 0, err
	}
	return sv.sv.EstimateF(ctx, s, t, set, trials)
}

// Graph returns the served graph at the current epoch (the result of
// the last ApplyDelta, or the construction graph before any delta).
func (sv *Server) Graph() *Graph { return sv.sv.Graph() }

// Epochs returns the number of graph epochs the server has served: 1 at
// construction, +1 per effective ApplyDelta.
func (sv *Server) Epochs() int { return sv.sv.Epochs() }

// Edge is one undirected edge (U, V) of the social graph.
type Edge = graph.Edge

// Delta is a batch graph mutation: edges to add and edges to remove,
// applied atomically by Server.ApplyDelta to produce the next epoch's
// graph. Adding a present edge or removing an absent one is a no-op
// that dirties nothing; listing one edge in both sets is an error.
type Delta = graph.Delta

// DeltaSummary reports what one ApplyDelta did.
type DeltaSummary struct {
	// Dirty is the sorted set of nodes whose edges actually changed;
	// empty for a no-op delta, which advances no epoch.
	Dirty []Node
	// NumNodes and NumEdges describe the new epoch's graph.
	NumNodes int
	NumEdges int64
	// PairsMigrated counts cached pairs carried across the epoch by
	// repair; PairsDropped those dissolved because s and t became
	// adjacent (their friending problem is solved).
	PairsMigrated int
	PairsDropped  int
	// RepairChunksResampled and RepairDrawsResampled are the pool chunks
	// and draws the migration re-drew; RepairDrawsSaved the draws
	// adopted verbatim — what discarding every pool would have cost on
	// top.
	RepairChunksResampled int
	RepairDrawsResampled  int64
	RepairDrawsSaved      int64
}

// ApplyDelta mutates the served graph: the delta's edges are added and
// removed atomically, producing the next epoch, and every cached pair
// is migrated across it by repair — pool chunks whose sampled walks
// never consulted a changed node keep their bytes, only damaged chunks
// are resampled — so queries after ApplyDelta are byte-identical to a
// server built fresh on the mutated graph, at a fraction of the
// resampling bill (ServerStats ledgers both sides). Pairs whose (s, t)
// become adjacent are dropped; spill files from earlier epochs are
// adopted and repaired when loaded. In-flight queries finish at the
// epoch they started on; queries issued after ApplyDelta returns see
// the new epoch.
//
//	sv := activefriending.NewServer(g, activefriending.ServerConfig{Seed: 1})
//	sol, _ := sv.Solve(ctx, s, t, activefriending.Options{Alpha: 0.3})
//	res, _ := sv.ApplyDelta(ctx, &activefriending.Delta{
//		Add:    []activefriending.Edge{{U: 3, V: 17}},
//		Remove: []activefriending.Edge{{U: 4, V: 9}},
//	})
//	fmt.Println(res.RepairDrawsSaved)           // draws kept across the mutation
//	sol2, _ := sv.Solve(ctx, s, t, activefriending.Options{Alpha: 0.3}) // new epoch
func (sv *Server) ApplyDelta(ctx context.Context, d *Delta) (*DeltaSummary, error) {
	res, err := sv.sv.ApplyDelta(ctx, d, nil)
	if err != nil {
		return nil, err
	}
	return &DeltaSummary{
		Dirty:                 res.Dirty,
		NumNodes:              res.NumNodes,
		NumEdges:              res.NumEdges,
		PairsMigrated:         res.PairsMigrated,
		PairsDropped:          res.PairsDropped,
		RepairChunksResampled: res.Repair.Resampled,
		RepairDrawsResampled:  res.Repair.DrawsResampled,
		RepairDrawsSaved:      res.Repair.DrawsSaved,
	}, nil
}

// Pmax estimates p_max for the pair (s, t) from its evaluation pool (the
// type-1 fraction over exactly trials draws); see EstimatePmax for the
// stopping-rule estimate.
func (sv *Server) Pmax(ctx context.Context, s, t Node, trials int64) (float64, error) {
	return sv.sv.Pmax(ctx, s, t, trials)
}

// EstimatePmax runs Algorithm 2 for the pair (s, t) through its retained
// estimator ledger (see Session.EstimatePmax for parameter defaults and
// the refinement contract). The ledger survives eviction via the spill
// tier, so a refined request after a restart reuses the draws a previous
// process paid for; the cumulative reuse is ledgered in
// ServerStats.PmaxDrawsReused.
func (sv *Server) EstimatePmax(ctx context.Context, s, t Node, eps0, n float64, maxDraws int64) (*PmaxEstimate, error) {
	e0, bigN, budget := pmaxDefaults(eps0, n, maxDraws)
	res, err := sv.sv.PmaxEstimate(ctx, s, t, e0, bigN, budget)
	if err != nil {
		return nil, err
	}
	return pmaxEstimateFrom(res), nil
}

// ServerKindStats is the hit/miss tally for one query kind: a hit found
// the pair's session cached; a miss created it (including re-creation
// after eviction).
type ServerKindStats struct {
	Hits   int64
	Misses int64
}

// ServerStats is the server's observability ledger.
type ServerStats struct {
	// SessionsLive counts currently cached pair sessions;
	// SessionsCreated and SessionsEvicted are lifetime counters (a pair
	// recreated after eviction counts as created again). An eviction is
	// counted exactly when its pair leaves the cache, so at quiescence
	// SessionsLive == SessionsCreated − SessionsEvicted.
	SessionsLive    int
	SessionsCreated int64
	SessionsEvicted int64
	// BytesHeld is the accounted size of all cached pair state; after an
	// eviction pass it never exceeds ServerConfig.MaxPoolBytes.
	BytesHeld int64
	// Spills counts evictions (and SpillAll flushes) that wrote a pair's
	// pools to ServerConfig.SpillDir, totalling SpillBytes on disk;
	// SpillLoads counts re-admissions restored from a spill file
	// (SpillLoadBytes read) instead of resampled, and SpillDrawsSaved
	// totals the pool draws those loads avoided — the load-vs-resample
	// win. SpillLoadErrors counts rejected or unreadable spill files,
	// split by cause — checksum failures, format-version skew,
	// stream-identity mismatches (wrong Seed), instance mismatches (a
	// graph the epoch lineage doesn't know), and everything else —
	// SpillWriteErrors failed snapshot writes (the previous file, if
	// any, survives); the affected pairs resampled, which changes no
	// answer.
	Spills               int64
	SpillBytes           int64
	SpillLoads           int64
	SpillLoadBytes       int64
	SpillDrawsSaved      int64
	SpillLoadErrors      int64
	SpillLoadErrChecksum int64
	SpillLoadErrVersion  int64
	SpillLoadErrStream   int64
	SpillLoadErrInstance int64
	SpillLoadErrOther    int64
	SpillWriteErrors     int64
	// SpillFilesExpired counts spill files deleted by the TTL sweep
	// (ServerConfig.SpillTTL); the affected pairs resample on their next
	// query, which changes no answer.
	SpillFilesExpired int64
	// DeltasApplied counts effective ApplyDelta calls; PairsDropped the
	// pairs deltas dissolved. PoolsRepaired counts pair migrations and
	// stale-spill loads carried across epochs by repair, re-drawing
	// RepairChunksResampled chunks (RepairDrawsResampled draws) while
	// adopting RepairDrawsSaved draws verbatim — the repair-vs-discard
	// win.
	DeltasApplied         int64
	PairsDropped          int64
	PoolsRepaired         int64
	RepairChunksResampled int64
	RepairDrawsResampled  int64
	RepairDrawsSaved      int64
	// PmaxDrawsReused totals the Algorithm 2 stopping-rule draws that
	// Solve and EstimatePmax answered from retained estimator ledgers
	// instead of resampling — the p_max refinement win.
	PmaxDrawsReused int64
	// Coalesced counts queries that joined an identical concurrent
	// in-flight query (same pair, parameters and graph epoch) and
	// shared its answer instead of paying their own computation.
	Coalesced int64
	// Inflight and Queued are the admission gate's current occupancy
	// (queries executing / waiting for a slot); Admitted and Rejected
	// are lifetime counters. All zero without ServerConfig.MaxInflight.
	Inflight int
	Queued   int
	Admitted int64
	Rejected int64
	// Per-query-kind hit/miss tallies. TopK counts per-candidate
	// session acquisitions of batched ranking rounds.
	Solve                 ServerKindStats
	SolveMax              ServerKindStats
	AcceptanceProbability ServerKindStats
	Pmax                  ServerKindStats
	EstimatePmax          ServerKindStats
	TopK                  ServerKindStats
}

// Stats returns a snapshot of the server's ledger.
func (sv *Server) Stats() ServerStats {
	st := sv.sv.Stats()
	conv := func(k server.Kind) ServerKindStats {
		return ServerKindStats{Hits: st.ByKind[k].Hits, Misses: st.ByKind[k].Misses}
	}
	return ServerStats{
		SessionsLive:          st.SessionsLive,
		SessionsCreated:       st.SessionsCreated,
		SessionsEvicted:       st.SessionsEvicted,
		BytesHeld:             st.BytesHeld,
		Spills:                st.Spills,
		SpillBytes:            st.SpillBytes,
		SpillLoads:            st.SpillLoads,
		SpillLoadBytes:        st.SpillLoadBytes,
		SpillDrawsSaved:       st.SpillDrawsSaved,
		SpillLoadErrors:       st.SpillLoadErrors,
		SpillLoadErrChecksum:  st.SpillLoadErrChecksum,
		SpillLoadErrVersion:   st.SpillLoadErrVersion,
		SpillLoadErrStream:    st.SpillLoadErrStream,
		SpillLoadErrInstance:  st.SpillLoadErrInstance,
		SpillLoadErrOther:     st.SpillLoadErrOther,
		SpillWriteErrors:      st.SpillWriteErrors,
		SpillFilesExpired:     st.SpillFilesExpired,
		PmaxDrawsReused:       st.PmaxDrawsReused,
		Coalesced:             st.Coalesced,
		Inflight:              st.Inflight,
		Queued:                st.Queued,
		Admitted:              st.Admitted,
		Rejected:              st.Rejected,
		DeltasApplied:         st.DeltasApplied,
		PairsDropped:          st.PairsDropped,
		PoolsRepaired:         st.PoolsRepaired,
		RepairChunksResampled: st.RepairChunksResampled,
		RepairDrawsResampled:  st.RepairDrawsResampled,
		RepairDrawsSaved:      st.RepairDrawsSaved,
		Solve:                 conv(server.KindSolve),
		SolveMax:              conv(server.KindSolveMax),
		AcceptanceProbability: conv(server.KindEstimateF),
		Pmax:                  conv(server.KindPmax),
		EstimatePmax:          conv(server.KindPmaxEst),
		TopK:                  conv(server.KindTopK),
	}
}

// SessionStats exposes the session's sampling ledger, making pool reuse
// observable: after an α-sweep, PoolDraws equals the pool size rather
// than sweeps × pool size.
type SessionStats struct {
	// PoolDraws is the number of realizations sampled into pools (solve
	// and evaluation combined); PmaxDraws is the number of Bernoulli
	// draws in the p_max estimator's retained ledger (each counted once,
	// however many estimates consumed it); TotalDraws counts every draw
	// made through the engine, including transient one-shot estimator
	// draws belonging to neither ledger.
	PoolDraws  int64
	PmaxDraws  int64
	TotalDraws int64
	// SolvePoolSize and EvalPoolSize are the cached pool sizes.
	SolvePoolSize int64
	EvalPoolSize  int64
}

// Stats returns the session's current sampling ledger.
func (s *Session) Stats() SessionStats {
	eng := s.core.Engine()
	return SessionStats{
		PoolDraws:     eng.PoolDraws(),
		PmaxDraws:     eng.PmaxDraws(),
		TotalDraws:    eng.Draws(),
		SolvePoolSize: s.core.PoolSize(),
		EvalPoolSize:  s.eval.Size(),
	}
}
