package activefriending

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// lineGraph builds 0-1-2-…-(n−1).
func lineGraph(n int) *Graph {
	b := NewGraphBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(Node(i), Node(i+1))
	}
	return b.Build()
}

func TestNewProblemValidation(t *testing.T) {
	g := lineGraph(4)
	if _, err := NewProblem(g, 0, 1); err == nil {
		t.Error("adjacent pair accepted")
	}
	if _, err := NewProblem(g, 2, 2); err == nil {
		t.Error("s == t accepted")
	}
	p, err := NewProblem(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Initiator() != 0 || p.Target() != 3 || p.Graph().NumNodes() != 4 {
		t.Error("accessors broken")
	}
}

func TestSolveLine(t *testing.T) {
	g := lineGraph(4)
	p, err := NewProblem(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve(context.Background(), Options{
		Alpha: 0.5, Eps: 0.1, N: 50, Seed: 1,
		MaxRealizations: 20000, MaxPmaxDraws: 200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Invited) != 2 || sol.Invited[0] != 2 || sol.Invited[1] != 3 {
		t.Errorf("Invited = %v, want [2 3]", sol.Invited)
	}
	if math.Abs(sol.PStar-0.5) > 0.1 {
		t.Errorf("PStar = %v, want ~0.5", sol.PStar)
	}
	if sol.VmaxSize != 2 || sol.Realizations <= 0 || sol.PoolType1 <= 0 {
		t.Errorf("diagnostics: %+v", sol)
	}
}

func TestSolveDefaultsAndUnreachable(t *testing.T) {
	b := NewGraphBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(3, 4)
	g := b.Build()
	p, err := NewProblem(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Solve(context.Background(), Options{MaxPmaxDraws: 1000})
	if !IsUnreachable(err) {
		t.Errorf("err = %v, want unreachable", err)
	}
	if !errors.Is(err, ErrTargetUnreachable) {
		t.Errorf("errors.Is failed for %v", err)
	}
}

func TestVmaxFacade(t *testing.T) {
	g := lineGraph(5)
	p, err := NewProblem(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := p.Vmax()
	if err != nil {
		t.Fatal(err)
	}
	if len(vm) != 3 || vm[0] != 2 || vm[2] != 4 {
		t.Errorf("Vmax = %v, want [2 3 4]", vm)
	}
}

func TestAcceptanceProbabilityAgreement(t *testing.T) {
	g := lineGraph(4)
	p, err := NewProblem(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	invited := []Node{2, 3}
	rev, err := p.AcceptanceProbability(ctx, invited, 150000, 7)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := p.AcceptanceProbabilityForward(ctx, invited, 150000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rev-0.5) > 0.01 || math.Abs(fwd-0.5) > 0.01 {
		t.Errorf("estimates rev=%v fwd=%v, want ~0.5", rev, fwd)
	}
	pm, err := p.Pmax(ctx, 150000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pm-0.5) > 0.01 {
		t.Errorf("Pmax = %v, want ~0.5", pm)
	}
}

func TestAcceptanceProbabilityBadNode(t *testing.T) {
	g := lineGraph(4)
	p, err := NewProblem(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AcceptanceProbability(context.Background(), []Node{99}, 100, 1); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestBaselineSets(t *testing.T) {
	g := lineGraph(6)
	p, err := NewProblem(g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	hd := p.HighDegreeSet(3)
	if len(hd) != 3 {
		t.Errorf("HD set = %v", hd)
	}
	sp := p.ShortestPathSet(4)
	// SP on a line includes exactly the interior path plus t.
	want := map[Node]bool{2: true, 3: true, 4: true, 5: true}
	if len(sp) != 4 {
		t.Fatalf("SP set = %v", sp)
	}
	for _, v := range sp {
		if !want[v] {
			t.Errorf("SP set contains unexpected %v", sp)
		}
	}
}

func TestGenerateDataset(t *testing.T) {
	g, err := GenerateDataset("Wiki", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 100 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if _, err := GenerateDataset("nope", 0.1, 3); err == nil {
		t.Error("unknown dataset accepted")
	}
	names := DatasetNames()
	if len(names) != 4 || names[0] != "Wiki" {
		t.Errorf("DatasetNames = %v", names)
	}
}

func TestEdgeListRoundTripFacade(t *testing.T) {
	g := lineGraph(5)
	var sb strings.Builder
	if err := SaveEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("edges = %d, want %d", g2.NumEdges(), g.NumEdges())
	}
}

func TestNewProblemWithWeights(t *testing.T) {
	g := lineGraph(4)
	p, err := NewProblemWithWeights(g, 0, 3, func(u, v Node) float64 { return 0.4 })
	if err != nil {
		t.Fatal(err)
	}
	// With w = 0.4 on every incoming edge: node 2 activates from node 1
	// with prob 0.4, then t with prob 0.4: f({2,3}) = 0.16.
	f, err := p.AcceptanceProbability(context.Background(), []Node{2, 3}, 200000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-0.16) > 0.01 {
		t.Errorf("f = %v, want ~0.16", f)
	}
	if _, err := NewProblemWithWeights(g, 0, 3, func(u, v Node) float64 { return 0.9 }); err == nil {
		t.Error("over-normalized weights accepted")
	}
}

func TestSolveMax(t *testing.T) {
	g := lineGraph(4)
	p, err := NewProblem(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := p.SolveMax(context.Background(), 2, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Invited) != 2 || sol.Invited[0] != 2 || sol.Invited[1] != 3 {
		t.Errorf("SolveMax invited = %v, want [2 3]", sol.Invited)
	}
	if sol.EstimatedF < 0.4 || sol.EstimatedF > 0.6 {
		t.Errorf("EstimatedF = %v, want ~0.5", sol.EstimatedF)
	}
	if _, err := p.SolveMax(context.Background(), 0, 100, 1); err == nil {
		t.Error("budget 0 accepted")
	}
}

// TestSessionSharedPool exercises the session facade end to end: an
// α-sweep plus SolveMax and estimator calls, all against shared pools.
func TestSessionSharedPool(t *testing.T) {
	g := lineGraph(4)
	p, err := NewProblem(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sess := p.NewSession(1, 0)
	opts := Options{
		Eps: 0.1, N: 50, Realizations: 10000, MaxPmaxDraws: 200000,
	}
	for _, alpha := range []float64{0.3, 0.5, 0.7} {
		opts.Alpha = alpha
		sol, err := sess.Solve(ctx, opts)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if len(sol.Invited) != 2 || sol.Invited[0] != 2 || sol.Invited[1] != 3 {
			t.Errorf("alpha=%v: Invited = %v, want [2 3]", alpha, sol.Invited)
		}
	}
	st := sess.Stats()
	if st.SolvePoolSize != 10000 {
		t.Errorf("SolvePoolSize = %d, want 10000", st.SolvePoolSize)
	}
	// The whole sweep sampled the solve pool exactly once.
	if st.PoolDraws != 10000 {
		t.Errorf("PoolDraws = %d, want 10000 (pool sampled more than once)", st.PoolDraws)
	}

	// SolveMax shares the same pool: only the growth from 10000 to 12000
	// is sampled.
	msol, err := sess.SolveMax(ctx, 2, 12000)
	if err != nil {
		t.Fatal(err)
	}
	if len(msol.Invited) != 2 || msol.Invited[0] != 2 || msol.Invited[1] != 3 {
		t.Errorf("SolveMax invited = %v, want [2 3]", msol.Invited)
	}
	st = sess.Stats()
	if st.SolvePoolSize != 12000 {
		t.Errorf("after SolveMax: SolvePoolSize = %d, want 12000", st.SolvePoolSize)
	}
	// SolveMax grew the solve pool 10000→12000 and measured EstimatedF on
	// a 12000-draw eval pool; the ledger counts each pooled draw once.
	if st.PoolDraws != st.SolvePoolSize+st.EvalPoolSize {
		t.Errorf("after SolveMax: PoolDraws = %d, want SolvePoolSize+EvalPoolSize = %d (regrow double-counted)",
			st.PoolDraws, st.SolvePoolSize+st.EvalPoolSize)
	}

	// Estimators run against the separate evaluation pool.
	f, err := sess.AcceptanceProbability(ctx, []Node{2, 3}, 50000)
	if err != nil {
		t.Fatal(err)
	}
	pmax, err := sess.Pmax(ctx, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-0.5) > 0.02 || math.Abs(pmax-0.5) > 0.02 {
		t.Errorf("f = %v, pmax = %v, want ~0.5 each", f, pmax)
	}
	st = sess.Stats()
	if st.EvalPoolSize != 50000 {
		t.Errorf("EvalPoolSize = %d, want 50000", st.EvalPoolSize)
	}
	// The documented SessionStats invariant, after the full grow sequence
	// (solve pool 10000→12000, eval pool 12000→50000, partial chunks
	// regrown along the way): PoolDraws == SolvePoolSize + EvalPoolSize.
	if st.PoolDraws != st.SolvePoolSize+st.EvalPoolSize {
		t.Errorf("PoolDraws = %d, want SolvePoolSize+EvalPoolSize = %d",
			st.PoolDraws, st.SolvePoolSize+st.EvalPoolSize)
	}
}

// TestSessionMatchesOneShot: session results agree with one-shot Problem
// calls at the same seed.
func TestSessionMatchesOneShot(t *testing.T) {
	g := lineGraph(4)
	p, err := NewProblem(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := Options{
		Alpha: 0.5, Eps: 0.1, N: 50, Seed: 3, Realizations: 8000,
		MaxPmaxDraws: 200000,
	}
	oneShot, err := p.Solve(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	viaSess, err := p.NewSession(3, 0).Solve(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(oneShot.Invited) != len(viaSess.Invited) {
		t.Fatalf("invited sets differ: %v vs %v", oneShot.Invited, viaSess.Invited)
	}
	for i := range oneShot.Invited {
		if oneShot.Invited[i] != viaSess.Invited[i] {
			t.Fatalf("invited sets differ: %v vs %v", oneShot.Invited, viaSess.Invited)
		}
	}
	if oneShot.PoolType1 != viaSess.PoolType1 || oneShot.Covered != viaSess.Covered {
		t.Errorf("diagnostics differ: %+v vs %+v", oneShot, viaSess)
	}
}

// diamondChain builds a graph with many s→t routes: 0–{1,2}, {1,2}–{3,4},
// {3,4}–5, plus a few dead-end spurs that give the sampler wrong turns.
func diamondChain() *Graph {
	b := NewGraphBuilder(10)
	for _, e := range [][2]Node{
		{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 5}, {4, 5},
		{1, 6}, {2, 7}, {3, 8}, {4, 9},
	} {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// TestSolveMaxTrainEvalDiverge: TrainF is the covered fraction of the
// very pool the greedy optimized over and is optimistically biased;
// EstimatedF is re-measured on decorrelated draws. On a small pool the
// two must not coincide — previously SolveMax reported the biased
// in-pool number as EstimatedF.
func TestSolveMaxTrainEvalDiverge(t *testing.T) {
	g := diamondChain()
	p, err := NewProblem(g, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sess := p.NewSession(3, 0)
	sol, err := sess.SolveMax(ctx, 2, 400)
	if err != nil {
		t.Fatal(err)
	}
	if sol.TrainF == sol.EstimatedF {
		t.Errorf("TrainF = EstimatedF = %v: EstimatedF still measured on the solve pool", sol.TrainF)
	}
	if sol.TrainF <= 0 || sol.EstimatedF <= 0 {
		t.Errorf("degenerate estimates: TrainF = %v, EstimatedF = %v", sol.TrainF, sol.EstimatedF)
	}
	// One-shot path re-measures too (estimator streams are decorrelated
	// from pool streams by namespace).
	oneShot, err := p.SolveMax(ctx, 2, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if oneShot.TrainF == oneShot.EstimatedF {
		t.Errorf("one-shot TrainF = EstimatedF = %v", oneShot.TrainF)
	}
}

// TestServerFacade: the public Server answers all four query kinds,
// answers are identical with and without an eviction-inducing budget,
// and the stats ledger tracks sessions and bytes.
func TestServerFacade(t *testing.T) {
	g := diamondChain()
	ctx := context.Background()
	pairs := [][2]Node{{0, 5}, {0, 3}, {0, 4}, {6, 5}, {1, 2}}
	opts := Options{Alpha: 0.3, Eps: 0.1, N: 50, Realizations: 3000, MaxPmaxDraws: 100000}

	type answers struct {
		sol  *Solution
		msol *MaxSolution
		f    float64
		pmax float64
	}
	collect := func(sv *Server) []answers {
		var out []answers
		for _, pk := range pairs {
			a := answers{}
			var err error
			a.sol, err = sv.Solve(ctx, pk[0], pk[1], opts)
			if err != nil {
				t.Fatalf("Solve(%v): %v", pk, err)
			}
			a.msol, err = sv.SolveMax(ctx, pk[0], pk[1], 2, 2000)
			if err != nil {
				t.Fatalf("SolveMax(%v): %v", pk, err)
			}
			a.f, err = sv.AcceptanceProbability(ctx, pk[0], pk[1], a.sol.Invited, 2000)
			if err != nil {
				t.Fatalf("AcceptanceProbability(%v): %v", pk, err)
			}
			a.pmax, err = sv.Pmax(ctx, pk[0], pk[1], 2000)
			if err != nil {
				t.Fatalf("Pmax(%v): %v", pk, err)
			}
			if a.f <= 0 || a.pmax <= 0 || a.f > a.pmax+0.05 {
				t.Errorf("pair %v: f = %v, pmax = %v", pk, a.f, a.pmax)
			}
			out = append(out, a)
		}
		return out
	}

	free := NewServer(g, ServerConfig{Seed: 9})
	want := collect(free)
	budgeted := NewServer(g, ServerConfig{Seed: 9, MaxPoolBytes: 24 << 10, Shards: 2, Workers: 2})
	got := collect(budgeted)
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("pair %v: budgeted server diverged:\n got %+v\nwant %+v", pairs[i], got[i], want[i])
		}
	}

	st := budgeted.Stats()
	if st.SessionsEvicted == 0 {
		t.Errorf("no evictions under a 24KiB budget: %+v", st)
	}
	if st.BytesHeld > 24<<10 {
		t.Errorf("BytesHeld = %d exceeds the 24KiB budget", st.BytesHeld)
	}
	if st.Solve.Hits+st.Solve.Misses != int64(len(pairs)) {
		t.Errorf("solve queries = %d, want %d", st.Solve.Hits+st.Solve.Misses, len(pairs))
	}
	if free.Stats().SessionsLive != len(pairs) {
		t.Errorf("unbudgeted live sessions = %d, want %d", free.Stats().SessionsLive, len(pairs))
	}
	// Adjacent pair rejected, wrong node id rejected.
	if _, err := budgeted.Pmax(ctx, 0, 1, 1000); err == nil {
		t.Error("adjacent pair accepted")
	}
	if _, err := budgeted.AcceptanceProbability(ctx, 0, 5, []Node{99}, 1000); err == nil {
		t.Error("out-of-range invited node accepted")
	}

	// Spill tier: a budgeted server that spills to disk, and a warm
	// restart from its flushed state, both answer identically; the
	// ledger shows pools moving through the disk tier instead of being
	// resampled.
	dir := t.TempDir()
	spilling := NewServer(g, ServerConfig{Seed: 9, MaxPoolBytes: 24 << 10, SpillDir: dir})
	if got := collect(spilling); !reflect.DeepEqual(want, got) {
		t.Error("spilling server diverged from the unbudgeted reference")
	}
	if st := spilling.Stats(); st.Spills == 0 || st.SpillLoads == 0 || st.SpillDrawsSaved == 0 {
		t.Errorf("spill tier idle under budget pressure: %+v", st)
	}
	if err := spilling.SpillAll(); err != nil {
		t.Fatal(err)
	}
	warmed := NewServer(g, ServerConfig{Seed: 9, SpillDir: dir})
	if n, err := warmed.Warm(); err != nil || n == 0 {
		t.Fatalf("Warm = %d, %v", n, err)
	}
	if got := collect(warmed); !reflect.DeepEqual(want, got) {
		t.Error("warm-restarted server diverged")
	}
	if st := warmed.Stats(); st.SpillLoads == 0 {
		t.Errorf("warm restart resampled instead of loading: %+v", st)
	}
}

// TestEstimatePmaxFacade drives the Algorithm 2 estimator through the
// Session and Server facades: estimates land near the true p_max,
// refinement to a tighter eps0 reuses the session's ledger, and the
// server's answer is identical to the session's for the pair's derived
// seed-independent parameters.
func TestEstimatePmaxFacade(t *testing.T) {
	g := lineGraph(4) // p_max = 1/2 exactly
	p, err := NewProblem(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sess := p.NewSession(1, 0)

	coarse, err := sess.EstimatePmax(ctx, 0.3, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Truncated || math.Abs(coarse.Value-0.5) > 0.3*0.5+0.1 {
		t.Errorf("coarse estimate %+v, want ~0.5 untruncated", coarse)
	}
	if coarse.Reused != 0 {
		t.Errorf("cold estimate reused %d draws", coarse.Reused)
	}
	tight, err := sess.EstimatePmax(ctx, 0.05, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tight.Value-0.5) > 0.05*0.5+0.05 {
		t.Errorf("tight estimate %v, want within ~eps0 of 0.5", tight.Value)
	}
	if tight.Reused == 0 || tight.Draws <= coarse.Draws {
		t.Errorf("refinement did not extend the ledger: %+v after %+v", tight, coarse)
	}
	if st := sess.Stats(); st.PmaxDraws == 0 || st.PmaxDraws < tight.Draws {
		t.Errorf("SessionStats.PmaxDraws = %d, want ≥ %d", st.PmaxDraws, tight.Draws)
	}
	// Repeating the tight request answers purely from the ledger.
	again, err := sess.EstimatePmax(ctx, 0.05, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.Sampled != 0 || again.Value != tight.Value || again.Draws != tight.Draws {
		t.Errorf("repeat estimate resampled: %+v, want %+v with 0 sampled", again, tight)
	}

	// Server facade: deterministic per (seed, s, t), reuse ledgered.
	sv := NewServer(g, ServerConfig{Seed: 1})
	a, err := sv.EstimatePmax(ctx, 0, 3, 0.05, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sv.EstimatePmax(ctx, 0, 3, 0.05, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Draws != b.Draws || b.Sampled != 0 {
		t.Errorf("server estimates diverged: %+v vs %+v", a, b)
	}
	if st := sv.Stats(); st.PmaxDrawsReused < b.Draws || st.EstimatePmax.Hits+st.EstimatePmax.Misses != 2 {
		t.Errorf("server pmax ledger: %+v", st)
	}
	// Defaults: zero parameters select eps0 = 0.1, N = 1e5 and the draw
	// cap — on this tiny graph the rule converges well inside the cap.
	def, err := sess.EstimatePmax(ctx, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if def.Truncated || math.Abs(def.Value-0.5) > 0.1 {
		t.Errorf("default estimate %+v, want ~0.5", def)
	}
}

// TestTopKFacade drives the batched ranking API end to end: winners of
// an unlimited-budget batch match independent SolveMax answers, a
// budgeted batch spends fewer draws, refinement resumes warm, and the
// ledger sees the batch.
func TestTopKFacade(t *testing.T) {
	g := diamondChain()
	ctx := context.Background()
	source := Node(0)
	targets := []Node{3, 4, 5, 8, 9}
	opts := TopKOptions{Budget: 2, Realizations: 2048}

	sv := NewServer(g, ServerConfig{Seed: 9})
	top, err := sv.TopK(ctx, source, targets, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Winners) != 2 || len(top.Candidates) != len(targets) || len(top.Ranked) != len(targets) {
		t.Fatalf("shape: %d winners, %d candidates, %d ranked", len(top.Winners), len(top.Candidates), len(top.Ranked))
	}
	ref := NewServer(g, ServerConfig{Seed: 9})
	for i, tgt := range targets {
		msol, err := ref.SolveMax(ctx, source, tgt, 2, 2048)
		if err != nil {
			t.Fatalf("SolveMax(%d): %v", tgt, err)
		}
		c := top.Candidates[i]
		if c.Score != msol.EstimatedF || c.TrainF != msol.TrainF || !reflect.DeepEqual(c.Invited, msol.Invited) {
			t.Fatalf("candidate %d diverged from SolveMax:\n%+v\nvs\n%+v", i, c, msol)
		}
	}
	// Winners are the best-scored candidates.
	for i := 1; i < len(top.Ranked); i++ {
		if top.Candidates[top.Ranked[i-1]].Score < top.Candidates[top.Ranked[i]].Score {
			t.Fatalf("ranking out of order: %v", top.Ranked)
		}
	}
	if st := sv.Stats(); st.TopK.Hits+st.TopK.Misses == 0 {
		t.Errorf("TopK kind unledgered: %+v", st)
	}

	// A budgeted batch on a fresh server spends fewer draws and stays
	// refinable up to the exhaustive answer.
	lean := NewServer(g, ServerConfig{Seed: 9})
	budget := top.ExhaustiveDraws / 4
	sched, err := lean.TopK(ctx, source, targets, 2, TopKOptions{Budget: 2, Realizations: 2048, MaxDraws: budget})
	if err != nil {
		t.Fatal(err)
	}
	if sched.DrawsSpent >= top.DrawsSpent {
		t.Fatalf("budgeted batch spent %d draws, exhaustive spent %d", sched.DrawsSpent, top.DrawsSpent)
	}
	refined, err := lean.TopKRefine(ctx, sched, top.ExhaustiveDraws)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refined.Winners, top.Winners) {
		t.Fatalf("refined winners diverged:\n%+v\nvs\n%+v", refined.Winners, top.Winners)
	}
	if refined.DrawsSpent >= top.DrawsSpent {
		t.Fatalf("refinement resumed nothing: %d vs %d draws", refined.DrawsSpent, top.DrawsSpent)
	}

	// Validation surfaces.
	if _, err := sv.TopK(ctx, source, nil, 2, opts); err == nil {
		t.Error("empty target list accepted")
	}
	if _, err := sv.TopKRefine(ctx, &TopKResult{}, 10); err == nil {
		t.Error("refine of a foreign result accepted")
	}
}
