package activefriending

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/proto"
)

// jsonShape renders the JSON-visible structure of a type — exported
// field names, tags and kinds, in declaration order, recursively — so
// two mirror structs can be compared for wire compatibility without
// being the same Go type.
func jsonShape(t reflect.Type) string {
	switch t.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Array:
		return "[" + jsonShape(t.Elem()) + "]"
	case reflect.Map:
		return "map[" + jsonShape(t.Key()) + "]" + jsonShape(t.Elem())
	case reflect.Struct:
		var b strings.Builder
		b.WriteString("{")
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			fmt.Fprintf(&b, "%s tag=%q %s;", f.Name, f.Tag.Get("json"), jsonShape(f.Type))
		}
		b.WriteString("}")
		return b.String()
	default:
		return t.Kind().String()
	}
}

// TestWireMirrorsFacade pins internal/proto's wire structs to the
// facade result types they mirror (wire.go documents this test by
// name): same exported fields, same declaration order, same kinds and
// tags — so the JSON the HTTP and pipe transports emit is exactly the
// JSON a facade user would marshal, and a field added to one side
// without the other fails here instead of on a client.
func TestWireMirrorsFacade(t *testing.T) {
	pairs := []struct {
		name           string
		facade, mirror any
	}{
		{"Solution", Solution{}, proto.Solution{}},
		{"MaxSolution", MaxSolution{}, proto.MaxSolution{}},
		{"TopKCandidate", TopKCandidate{}, proto.TopKCandidate{}},
		{"TopKResult", TopKResult{}, proto.TopKResult{}},
		{"DeltaSummary", DeltaSummary{}, proto.DeltaSummary{}},
		{"ServerKindStats", ServerKindStats{}, proto.KindStats{}},
		{"ServerStats", ServerStats{}, proto.Stats{}},
	}
	for _, p := range pairs {
		want := jsonShape(reflect.TypeOf(p.facade))
		got := jsonShape(reflect.TypeOf(p.mirror))
		if got != want {
			t.Errorf("%s: proto mirror diverged from facade\nfacade %s\nmirror %s", p.name, want, got)
		}
		// Belt and suspenders: the zero values marshal to identical bytes.
		fb, err1 := json.Marshal(p.facade)
		mb, err2 := json.Marshal(p.mirror)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: marshal: %v / %v", p.name, err1, err2)
		}
		if string(fb) != string(mb) {
			t.Errorf("%s: zero-value JSON diverged\nfacade %s\nmirror %s", p.name, fb, mb)
		}
	}
}
