// Benchmarks that regenerate every table and figure of the paper's
// evaluation (Sec. IV), one bench per artifact, plus micro-benchmarks for
// the core machinery (ablations called out in DESIGN.md).
//
// Default sizes are laptop-scale so `go test -bench=.` completes in
// minutes; set AF_SCALE (dataset scale factor multiplier) and AF_PAIRS to
// approach the paper's setup, e.g.:
//
//	AF_SCALE=10 AF_PAIRS=50 go test -bench=Fig3 -benchtime=1x -timeout=0
package activefriending_test

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/maxaf"
	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/realization"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/setcover"
	"repro/internal/snapshot"
	"repro/internal/weights"
)

// benchScales are the per-dataset default scales (fractions of published
// node counts), chosen so every dataset contributes while the whole suite
// stays fast. AF_SCALE multiplies them (capped at 1).
var benchScales = map[string]float64{
	"Wiki":    0.05,
	"HepTh":   0.02,
	"HepPh":   0.015,
	"Youtube": 0.004,
}

func envFloat(name string, def float64) float64 {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

type benchSetup struct {
	g     *graph.Graph
	w     weights.Scheme
	pairs []eval.Pair
	cfg   eval.Config
}

var (
	setupMu    sync.Mutex
	setupCache = map[string]*benchSetup{}
)

// setupDataset builds (once per process) the graph and screened pairs for
// a dataset bench.
func setupDataset(b *testing.B, name string) *benchSetup {
	b.Helper()
	setupMu.Lock()
	defer setupMu.Unlock()
	if s, ok := setupCache[name]; ok {
		return s
	}
	scale := benchScales[name] * envFloat("AF_SCALE", 1)
	if scale > 1 {
		scale = 1
	}
	d, err := gen.DatasetByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := d.Generate(scale, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := weights.NewDegree(g)
	pairs, err := eval.SamplePairs(context.Background(), g, w, eval.PairConfig{
		Count:         envInt("AF_PAIRS", 3),
		MinPmax:       0.01,
		PreferDistant: true,
		ScreenTrials:  2000,
		Seed:          1,
	})
	if err != nil {
		b.Fatalf("dataset %s: %v", name, err)
	}
	s := &benchSetup{
		g: g, w: w, pairs: pairs,
		cfg: eval.Config{
			Graph: g, Weights: w, Pairs: pairs,
			Alpha: 0.1, Eps: 0.01, N: 100000,
			MaxRealizations: 20000, MaxPmaxDraws: 300000,
			EvalTrials: 5000, Seed: 1,
		},
	}
	setupCache[name] = s
	return s
}

// --- Table I ---------------------------------------------------------------

func BenchmarkTable1_DatasetStats(b *testing.B) {
	scaleMul := envFloat("AF_SCALE", 1)
	for i := 0; i < b.N; i++ {
		for _, d := range gen.Datasets() {
			scale := benchScales[d.Name] * scaleMul
			if scale > 1 {
				scale = 1
			}
			g, err := d.Generate(scale, 1)
			if err != nil {
				b.Fatal(err)
			}
			st := gen.Summarize(g)
			if st.Nodes == 0 {
				b.Fatal("empty dataset")
			}
			if i == 0 {
				b.Logf("Table I %s: nodes=%d edges=%d edges/node=%.2f (paper: %d/%d/%.2f)",
					d.Name, st.Nodes, st.Edges, st.EdgesPerNode,
					d.PaperNodes, d.PaperEdges, d.PaperAvgDegree)
			}
		}
	}
}

// --- Fig. 3 (basic experiment, one bench per dataset) ----------------------

func benchFig3(b *testing.B, dataset string) {
	s := setupDataset(b, dataset)
	alphas := []float64{0.05, 0.2, 0.35}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.BasicExperiment(context.Background(), s.cfg, alphas)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("Fig3 %s alpha=%.2f: pmax=%.4f RAF=%.4f HD=%.4f SP=%.4f |I|=%.1f",
					dataset, r.Alpha, r.Pmax, r.RAF, r.HD, r.SP, r.AvgSize)
			}
		}
	}
}

func BenchmarkFig3_Wiki(b *testing.B)    { benchFig3(b, "Wiki") }
func BenchmarkFig3_HepTh(b *testing.B)   { benchFig3(b, "HepTh") }
func BenchmarkFig3_HepPh(b *testing.B)   { benchFig3(b, "HepPh") }
func BenchmarkFig3_Youtube(b *testing.B) { benchFig3(b, "Youtube") }

// --- Fig. 4 (grow HD to match RAF) and Fig. 5 (grow SP) --------------------

func benchGrowth(b *testing.B, dataset string, ranker baselines.Ranker) {
	s := setupDataset(b, dataset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.CompareGrowth(context.Background(), s.cfg, ranker)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, bin := range res.Bins {
				if bin.Count > 0 {
					b.Logf("%s %s: f-ratio≈%.1f → size-ratio %.2f (%d pts)",
						dataset, ranker.Name(), bin.XCenter, bin.SizeRatio, bin.Count)
				}
			}
		}
	}
}

func BenchmarkFig4_Wiki(b *testing.B)    { benchGrowth(b, "Wiki", baselines.HighDegree{}) }
func BenchmarkFig4_HepTh(b *testing.B)   { benchGrowth(b, "HepTh", baselines.HighDegree{}) }
func BenchmarkFig4_HepPh(b *testing.B)   { benchGrowth(b, "HepPh", baselines.HighDegree{}) }
func BenchmarkFig4_Youtube(b *testing.B) { benchGrowth(b, "Youtube", baselines.HighDegree{}) }

func BenchmarkFig5_Wiki(b *testing.B)    { benchGrowth(b, "Wiki", baselines.ShortestPath{}) }
func BenchmarkFig5_HepTh(b *testing.B)   { benchGrowth(b, "HepTh", baselines.ShortestPath{}) }
func BenchmarkFig5_HepPh(b *testing.B)   { benchGrowth(b, "HepPh", baselines.ShortestPath{}) }
func BenchmarkFig5_Youtube(b *testing.B) { benchGrowth(b, "Youtube", baselines.ShortestPath{}) }

// --- Table II (Vmax comparison) --------------------------------------------

func benchTable2(b *testing.B, dataset string) {
	s := setupDataset(b, dataset)
	cfg := s.cfg
	cfg.Alpha = 0.1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := eval.VmaxExperiment(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("Table II %s: |Vmax|=%.1f |I_RAF|=%.1f ratio=%.2f",
				dataset, row.AvgVmax, row.AvgRAF, row.AvgRatio)
		}
	}
}

func BenchmarkTable2_Wiki(b *testing.B)    { benchTable2(b, "Wiki") }
func BenchmarkTable2_HepTh(b *testing.B)   { benchTable2(b, "HepTh") }
func BenchmarkTable2_HepPh(b *testing.B)   { benchTable2(b, "HepPh") }
func BenchmarkTable2_Youtube(b *testing.B) { benchTable2(b, "Youtube") }

// --- Fig. 6 (realization sweep) --------------------------------------------

func BenchmarkFig6_RealizationSweep(b *testing.B) {
	s := setupDataset(b, "Wiki")
	grid := []int64{500, 2000, 8000, 32000, 128000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := eval.RealizationSweep(context.Background(), s.cfg, grid)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range pts {
				b.Logf("Fig6 Wiki: l=%d → f=%.4f |I|=%d", p.L, p.F, p.Size)
			}
		}
	}
}

// --- Ablation / machinery micro-benchmarks ---------------------------------

func benchInstance(b *testing.B) *ltm.Instance {
	b.Helper()
	s := setupDataset(b, "Wiki")
	p := s.pairs[0]
	in, err := ltm.NewInstance(s.g, s.w, p.S, p.T)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkSampleTG measures the reverse sampler (Remark 3): the unit cost
// of every estimator in the library.
func BenchmarkSampleTG(b *testing.B) {
	in := benchInstance(b)
	sp := realization.NewSampler(in)
	st := rng.NewStream(1)
	b.ResetTimer()
	type1 := 0
	for i := 0; i < b.N; i++ {
		if sp.SampleTG(&st).Outcome == realization.Type1 {
			type1++
		}
	}
	if b.N > 1000 {
		b.ReportMetric(float64(type1)/float64(b.N), "type1-frac")
	}
}

// BenchmarkForwardSimulate measures one draw of Process 1 — the estimator
// RAF avoids (compare with BenchmarkSampleTG for the Remark 3 speedup).
func BenchmarkForwardSimulate(b *testing.B) {
	in := benchInstance(b)
	all := graph.NewNodeSet(in.Graph().NumNodes())
	all.Fill()
	st := rng.NewStream(1)
	sc := ltm.NewSimScratch(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.SimulateOnce(all, &st, sc, nil)
	}
}

// BenchmarkVmax measures the exact block-cut-tree V_max computation
// (Lemma 7).
func BenchmarkVmax(b *testing.B) {
	in := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Vmax(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSetcoverGreedy measures the MSC greedy on a realization-shaped
// instance (many short duplicate-heavy sets).
func BenchmarkSetcoverGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	distinct := make([][]int32, 200)
	for i := range distinct {
		sz := 1 + rng.Intn(6)
		s := make([]int32, sz)
		for j := range s {
			s[j] = int32(rng.Intn(1000))
		}
		distinct[i] = s
	}
	inst := &setcover.Instance{UniverseSize: 1000}
	for i := 0; i < 50000; i++ {
		inst.Sets = append(inst.Sets, distinct[rng.Intn(len(distinct))])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := setcover.Greedy(inst, 30000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRAFSolve measures one full Algorithm 4 run end to end.
func BenchmarkRAFSolve(b *testing.B) {
	s := setupDataset(b, "Wiki")
	p := s.pairs[0]
	in, err := ltm.NewInstance(s.g, s.w, p.S, p.T)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{
		Alpha: 0.1, Eps: 0.01, N: 100000, Seed: 1,
		MaxRealizations: 20000, MaxPmaxDraws: 300000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RAF(context.Background(), in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSamplePool measures parallel pool generation (Alg. 3 line 2)
// through the engine: chunked, worker-count-independent, CSR-pooled.
func BenchmarkSamplePool(b *testing.B) {
	in := benchInstance(b)
	eng := engine.New(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SamplePool(context.Background(), 20000, 0, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCoveragePool builds one pool and an invitation set unioning the
// first nPaths paths — nPaths small mimics measuring a solver's output
// set; nPaths = NumType1/2 is the postings-heavy adversarial case.
func benchCoveragePool(b *testing.B, nPaths func(type1 int) int) (*engine.Pool, *graph.NodeSet) {
	b.Helper()
	in := benchInstance(b)
	pool, err := engine.New(in).SamplePool(context.Background(), 20000, 0, 7)
	if err != nil {
		b.Fatal(err)
	}
	invited := graph.NewNodeSet(in.Graph().NumNodes())
	for i := 0; i < nPaths(pool.NumType1()); i++ {
		for _, v := range pool.Path(i) {
			invited.Add(v)
		}
	}
	return pool, invited
}

func small(type1 int) int { return min(10, type1) }
func half(type1 int) int  { return type1 / 2 }

// BenchmarkCoverageScan* measure the O(|pool|·pathlen) linear coverage
// scan — the pre-engine behaviour of every coverage query.
func BenchmarkCoverageScanSmallSet(b *testing.B) {
	pool, invited := benchCoveragePool(b, small)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.CoverageCount(invited)
	}
}

func BenchmarkCoverageScanHalfPool(b *testing.B) {
	pool, invited := benchCoveragePool(b, half)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.CoverageCount(invited)
	}
}

// BenchmarkCoverageIndexed* measure the same queries through the
// inverted node → realization index (amortizing its one-time build).
func BenchmarkCoverageIndexedSmallSet(b *testing.B) {
	pool, invited := benchCoveragePool(b, small)
	pool.Index()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Index().CoverageCount(invited)
	}
}

func BenchmarkCoverageIndexedHalfPool(b *testing.B) {
	pool, invited := benchCoveragePool(b, half)
	pool.Index()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Index().CoverageCount(invited)
	}
}

// BenchmarkSessionAlphaSweep measures a 3-α sweep through one Session —
// the pool is sampled once and reused (compare BenchmarkAlphaSweepCold).
func BenchmarkSessionAlphaSweep(b *testing.B) {
	s := setupDataset(b, "Wiki")
	p := s.pairs[0]
	in, err := ltm.NewInstance(s.g, s.w, p.S, p.T)
	if err != nil {
		b.Fatal(err)
	}
	alphas := []float64{0.05, 0.15, 0.3}
	cfg := core.Config{
		Eps: 0.01, N: 100000, OverrideL: 20000, MaxPmaxDraws: 300000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := core.NewSession(in, int64(i+1), 0)
		for _, alpha := range alphas {
			cfg.Alpha = alpha
			if _, err := sess.RAF(context.Background(), cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAlphaSweepCold runs the same sweep with a fresh pool per α —
// the pre-Session behaviour.
func BenchmarkAlphaSweepCold(b *testing.B) {
	s := setupDataset(b, "Wiki")
	p := s.pairs[0]
	in, err := ltm.NewInstance(s.g, s.w, p.S, p.T)
	if err != nil {
		b.Fatal(err)
	}
	alphas := []float64{0.05, 0.15, 0.3}
	cfg := core.Config{
		Eps: 0.01, N: 100000, OverrideL: 20000, MaxPmaxDraws: 300000,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, alpha := range alphas {
			cfg.Alpha = alpha
			cfg.Seed = int64(i + 1)
			if _, err := core.RAF(context.Background(), in, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGenerateWiki measures dataset synthesis.
func BenchmarkGenerateWiki(b *testing.B) {
	d, err := gen.DatasetByName("Wiki")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := d.Generate(0.1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxAFSolve measures the budgeted (maximum active friending)
// extension end to end.
func BenchmarkMaxAFSolve(b *testing.B) {
	in := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maxaf.Solve(context.Background(), in, maxaf.Config{
			Budget: 20, Realizations: 20000, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- PR 3: amortized solve-path benchmarks ---------------------------------

// benchSolvePool samples one 20k-draw pool for the repeated-solve and
// batched-coverage benchmarks (cached per process via setupDataset).
func benchSolvePool(b *testing.B) *engine.Pool {
	b.Helper()
	in := benchInstance(b)
	pool, err := engine.New(in).SamplePool(context.Background(), 20000, 0, 7)
	if err != nil {
		b.Fatal(err)
	}
	if pool.NumType1() == 0 {
		b.Skip("no type-1 realizations")
	}
	return pool
}

// sweepDemands is a 10-demand β-sweep grid against one pool: the workload
// of α/β sweeps and repeated server solves on a cached pair.
func sweepDemands(pool *engine.Pool) []int {
	t1 := pool.NumType1()
	demands := make([]int, 0, 10)
	for i := 1; i <= 10; i++ {
		d := t1 * i / 11
		if d < 1 {
			d = 1
		}
		demands = append(demands, d)
	}
	return demands
}

// BenchmarkRepeatedSolves measures the amortized path: the pool's family
// is folded once (cached) and one Solver's scratch is reused across the
// whole 10-demand sweep — each iteration is 10 solves, rebuild-free.
func BenchmarkRepeatedSolves(b *testing.B) {
	pool := benchSolvePool(b)
	demands := sweepDemands(pool)
	fam, err := pool.Family()
	if err != nil {
		b.Fatal(err)
	}
	solver := setcover.NewSolver(fam)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range demands {
			if _, err := solver.Solve(d); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRepeatedSolvesRebuild is the pre-split behaviour: every solve
// of the same sweep re-folds the family, re-hashes every path and
// rebuilds the element index from scratch (one-shot setcover.Greedy).
func BenchmarkRepeatedSolvesRebuild(b *testing.B) {
	pool := benchSolvePool(b)
	demands := sweepDemands(pool)
	inst := pool.SetcoverInstance()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range demands {
			if _, err := setcover.Greedy(inst, d); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchQuerySets builds the batched-coverage workload: 8 invitation sets
// of the shapes real traffic produces (solver outputs = small path
// unions, plus near-universe measurement sets).
func benchQuerySets(pool *engine.Pool) []*graph.NodeSet {
	n := pool.Universe()
	sets := make([]*graph.NodeSet, 0, 8)
	for i := 0; i < 6; i++ {
		s := graph.NewNodeSet(n)
		for j := 0; j <= i*3; j++ {
			for _, v := range pool.Path(j % pool.NumType1()) {
				s.Add(v)
			}
		}
		sets = append(sets, s)
	}
	full := graph.NewNodeSet(n)
	full.Fill()
	almost := full.Clone()
	almost.Remove(graph.Node(0))
	sets = append(sets, full, almost)
	return sets
}

// BenchmarkCoverageBatch answers 8 coverage queries in one batched
// postings traversal (Index.CoverageCounts).
func BenchmarkCoverageBatch(b *testing.B) {
	pool := benchSolvePool(b)
	sets := benchQuerySets(pool)
	pool.Index()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Index().CoverageCounts(sets)
	}
}

// BenchmarkCoverageBatchSingles answers the same 8 queries with one
// CoverageCount call each — the pre-batch behaviour CoverageBatch must
// beat.
func BenchmarkCoverageBatchSingles(b *testing.B) {
	pool := benchSolvePool(b)
	sets := benchQuerySets(pool)
	pool.Index()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sets {
			pool.Index().CoverageCount(s)
		}
	}
}

// --- PR 4: pool persistence benchmarks ---------------------------------------

// benchSnapshotBytes samples a 20k-draw session pool once and serializes
// it — the unit of work of the server's spill tier.
func benchSnapshotBytes(b *testing.B) (*ltm.Instance, []byte) {
	b.Helper()
	in := benchInstance(b)
	sess := engine.New(in).NewSession(7, 0)
	if _, err := sess.Pool(context.Background(), 20000); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	return in, buf.Bytes()
}

// BenchmarkSnapshotSave measures serializing a 20k-draw pool (the
// eviction-time spill cost, minus disk).
func BenchmarkSnapshotSave(b *testing.B) {
	in := benchInstance(b)
	sess := engine.New(in).NewSession(7, 0)
	if _, err := sess.Pool(context.Background(), 20000); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(sess.SnapshotSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.Snapshot(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad measures the copying read path: bytes →
// validated session pool with regrow tables.
func BenchmarkSnapshotLoad(b *testing.B) {
	in, data := benchSnapshotBytes(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.OpenSession(engine.New(in), bytes.NewReader(data), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotMmap measures the zero-copy path: open + map + decode
// + validate, pool aliasing the mapped file.
func BenchmarkSnapshotMmap(b *testing.B) {
	in, data := benchSnapshotBytes(b)
	path := filepath.Join(b.TempDir(), "pool.afsnap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := snapshot.OpenFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := engine.OpenSessionData(engine.New(in), f.Pools[0], 0); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

// BenchmarkSpillReload measures re-admitting an evicted 20k-draw pool
// from its snapshot, ready to answer queries; BenchmarkSpillResample is
// the draw-by-draw rebuild it replaces. The acceptance bar for the spill
// tier is reload ≥ 10× faster than resample.
func BenchmarkSpillReload(b *testing.B) {
	in, data := benchSnapshotBytes(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := engine.OpenSession(engine.New(in), bytes.NewReader(data), 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Pool(context.Background(), 20000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpillResample(b *testing.B) {
	in, _ := benchSnapshotBytes(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := engine.New(in).NewSession(7, 0)
		if _, err := sess.Pool(context.Background(), 20000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPmaxSequentialVsChunked compares the paper's Algorithm 2 as a
// one-at-a-time stopping rule (mc.StoppingRule over a single stream)
// against the engine's chunked estimator at the same accuracy. The
// chunked path samples in parallel chunks and finds the stopping point by
// prefix scan; "chunked/1worker" isolates the single-thread overhead: the
// doubling growth ladder oversamples past the stopping point by at most
// 2× (≈1.5× on average) — the price of worker-parallel sampling, a
// worker-count-independent result, and a resumable ledger (the surplus
// draws are retained and pre-pay future refinements, see
// BenchmarkPmaxRefine). With W workers the wall clock is ≈ oversample/W
// of sequential, so the chunked path wins from 2 workers up.
func BenchmarkPmaxSequentialVsChunked(b *testing.B) {
	in := benchInstance(b)
	ctx := context.Background()
	const eps, bigN = 0.05, 100000.0
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := realization.NewSampler(in)
			st := rng.DerivedStream(7, 0x506D6178, 0)
			if _, _, _, err := mc.StoppingRule(ctx, eps, bigN, 0, func() bool {
				return sp.SampleTG(&st).Outcome == realization.Type1
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for name, workers := range map[string]int{"chunked/1worker": 1, "chunked": 0} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.New(in).NewPmaxEstimator(7, workers).Estimate(ctx, eps, bigN, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPmaxRefine measures the resumable-estimator win: refining a
// coarse ε₀ = 0.1 estimate to ε₀ = 0.05 against a retained ledger
// ("refine") versus estimating at ε₀ = 0.05 from scratch ("cold"). The
// refine path reuses every coarse draw — its marginal cost is only the
// ledger extension beyond the coarse stopping region (the coarse pass
// pre-pays ~Υ(0.1)/Υ(0.05) ≈ a quarter of the tight estimate's bill).
func BenchmarkPmaxRefine(b *testing.B) {
	in := benchInstance(b)
	ctx := context.Background()
	const bigN = 100000.0
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.New(in).NewPmaxEstimator(7, 0).Estimate(ctx, 0.05, bigN, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("refine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			pe := engine.New(in).NewPmaxEstimator(7, 0)
			if _, err := pe.Estimate(ctx, 0.1, bigN, 0); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := pe.Estimate(ctx, 0.05, bigN, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- PR 7: dynamic-graph repair benchmarks -----------------------------------

// benchDeltaSetup builds a sparse instance with a warm 20k-draw session
// and a sparse delta: one edge added between the two lowest-degree
// non-adjacent nodes. On a sparse graph such endpoints sit in few
// chunks' touch sets, which is the regime delta repair is for — most
// chunks adopt, few resample.
func benchDeltaSetup(b *testing.B) (*engine.Session, *ltm.Instance, []graph.Node) {
	b.Helper()
	g, err := gen.ErdosRenyi(3000, 4500, rand.New(rand.NewSource(17)))
	if err != nil {
		b.Fatal(err)
	}
	w := weights.NewDegree(g)
	pairs, err := eval.SamplePairs(context.Background(), g, w, eval.PairConfig{
		Count: 1, MinPmax: 0.01, ScreenTrials: 2000, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	s, t := pairs[0].S, pairs[0].T
	in, err := ltm.NewInstance(g, w, s, t)
	if err != nil {
		b.Fatal(err)
	}
	sess := engine.New(in).NewSession(7, 0)
	if _, err := sess.Pool(context.Background(), 20000); err != nil {
		b.Fatal(err)
	}
	var u, v graph.Node = -1, -1
	for cand := graph.Node(0); cand < graph.Node(g.NumNodes()); cand++ {
		if g.Degree(cand) == 0 || cand == s || cand == t {
			continue
		}
		switch {
		case u < 0 || g.Degree(cand) < g.Degree(u):
			if u >= 0 && !g.HasEdge(u, cand) {
				v = u
			}
			u = cand
		case (v < 0 || g.Degree(cand) < g.Degree(v)) && !g.HasEdge(u, cand):
			v = cand
		}
	}
	if v < 0 {
		b.Fatal("no sparse node pair found")
	}
	d := &graph.Delta{Add: []graph.Edge{{U: u, V: v}}}
	g2, dirty, err := d.Apply(g)
	if err != nil {
		b.Fatal(err)
	}
	in2, err := in.ApplyDelta(g2, dirty, nil)
	if err != nil {
		b.Fatal(err)
	}
	return sess, in2, dirty
}

// BenchmarkDeltaRepairVsResample compares carrying a warm pool across a
// sparse graph delta by repair (only damaged chunks resampled under
// their original streams) against the discard strategy (the full pool
// redrawn on the new instance). Both produce byte-identical pools; the
// draws/op metric is the bill. Repair must resample strictly fewer
// draws than discard — the benchmark fails otherwise.
func BenchmarkDeltaRepairVsResample(b *testing.B) {
	ctx := context.Background()
	sess, in2, dirty := benchDeltaSetup(b)
	const l = 20000
	b.Run("repair", func(b *testing.B) {
		b.ReportAllocs()
		var draws int64
		for i := 0; i < b.N; i++ {
			repaired, st, err := sess.RepairTo(ctx, engine.New(in2), dirty)
			if err != nil {
				b.Fatal(err)
			}
			if st.DrawsSaved <= 0 || st.DrawsResampled >= l {
				b.Fatalf("sparse delta did not beat discard: %+v", st)
			}
			if _, err := repaired.Pool(ctx, l); err != nil {
				b.Fatal(err)
			}
			draws = st.DrawsResampled
		}
		b.ReportMetric(float64(draws), "draws/op")
	})
	b.Run("resample", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.New(in2).NewSession(7, 0).Pool(ctx, l); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(l), "draws/op")
	})
}

// --- PR 8: batched top-k ranking benchmarks --------------------------------

// topkBenchTargets builds a deterministic candidate list for the Wiki
// setup: the first n nodes that are valid friending targets for the
// screened source (not the source itself, not already adjacent).
func topkBenchTargets(b *testing.B, s *benchSetup, n int) (graph.Node, []graph.Node) {
	b.Helper()
	src := s.pairs[0].S
	targets := make([]graph.Node, 0, n)
	for v := 0; v < s.g.NumNodes() && len(targets) < n; v++ {
		node := graph.Node(v)
		if node == src || s.g.HasEdge(src, node) {
			continue
		}
		targets = append(targets, node)
	}
	if len(targets) < n {
		b.Skipf("only %d candidate targets available, want %d", len(targets), n)
	}
	return src, targets
}

// topkBenchEffort is the full per-candidate pool size L; the exhaustive
// draw bill for n candidates is 2·L·n (solve pool + evaluation pool).
const topkBenchEffort = 5000

// benchTopKScheduled measures the batched path: one TopK request under a
// quarter of the exhaustive draw budget, successive halving deciding
// which candidates earn full effort. draws/op is the measured pool
// growth — the acceptance bar is ≥3× fewer draws than the exhaustive
// loop below at n=64, at lower wall-clock.
func benchTopKScheduled(b *testing.B, n int) {
	s := setupDataset(b, "Wiki")
	src, targets := topkBenchTargets(b, s, n)
	q := server.TopKQuery{
		S: src, Targets: targets, K: max(1, n/8), Budget: 10,
		Realizations: topkBenchEffort,
		MaxDraws:     int64(n) * topkBenchEffort / 2, // exhaustive bill / 4
	}
	var draws int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv := server.New(s.g, s.w, server.Config{Seed: 1})
		res, err := sv.TopK(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		draws += res.DrawsSpent
	}
	b.ReportMetric(float64(draws)/float64(b.N), "draws/op")
}

// benchTopKExhaustive is the baseline the scheduler is judged against:
// n independent SolveMax calls on a fresh server, every candidate at
// full effort. draws/op sums the per-pair pool ledgers.
func benchTopKExhaustive(b *testing.B, n int) {
	s := setupDataset(b, "Wiki")
	src, targets := topkBenchTargets(b, s, n)
	var draws int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv := server.New(s.g, s.w, server.Config{Seed: 1})
		for _, t := range targets {
			// Unreachable or dissolved targets cost their sampled pools
			// either way; the scheduled run freezes the same candidates.
			if _, _, err := sv.SolveMax(context.Background(), src, t, 10, topkBenchEffort); err != nil {
				continue
			}
		}
		b.StopTimer()
		for _, t := range targets {
			h, err := sv.Pair(src, t)
			if err != nil {
				continue
			}
			draws += h.Core().Engine().PoolDraws()
			h.Done()
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(draws)/float64(b.N), "draws/op")
}

func BenchmarkTopKScheduled16(b *testing.B)  { benchTopKScheduled(b, 16) }
func BenchmarkTopKScheduled64(b *testing.B)  { benchTopKScheduled(b, 64) }
func BenchmarkTopKExhaustive16(b *testing.B) { benchTopKExhaustive(b, 16) }
func BenchmarkTopKExhaustive64(b *testing.B) { benchTopKExhaustive(b, 64) }

// BenchmarkObsDisabledTraceOps pins the disabled observability path: on
// an untraced context, TraceFrom + StartSpan + End + Finish are
// nil-check no-ops — the price every uninstrumented query pays for the
// hooks being compiled in. Must stay ~1ns and 0 allocs/op.
func BenchmarkObsDisabledTraceOps(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := obs.TraceFrom(ctx)
		sp := tr.StartSpan(obs.StageSolve)
		sp.End()
		tr.Finish()
	}
}

// BenchmarkObsHistogramObserve is one warmed latency observation — the
// dominant per-query recording cost when observability is enabled.
func BenchmarkObsHistogramObserve(b *testing.B) {
	h := obs.NewRegistry().Histogram("af_bench_seconds", "bench fixture")
	h.Observe(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) + 1)
	}
}

// benchObsSolveMax measures the same warm SolveMax query with
// observability off vs on; the Enabled/Disabled delta is the whole
// instrumentation bill on a real query (trace allocation, spans, two
// histogram observations).
func benchObsSolveMax(b *testing.B, o *obs.Obs) {
	s := setupDataset(b, "Wiki")
	p := s.pairs[0]
	sv := server.New(s.g, s.w, server.Config{Seed: 1, Obs: o})
	ctx := context.Background()
	if _, _, err := sv.SolveMax(ctx, p.S, p.T, 10, topkBenchEffort); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sv.SolveMax(ctx, p.S, p.T, 10, topkBenchEffort); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsDisabledServerSolveMax(b *testing.B) { benchObsSolveMax(b, nil) }
func BenchmarkObsEnabledServerSolveMax(b *testing.B)  { benchObsSolveMax(b, obs.New()) }
