#!/usr/bin/env bash
# benchcmp.sh — diff two BENCH_*.json perf-trajectory points (written by
# scripts/bench.sh) and print per-benchmark ns/op and allocs/op ratios.
#
# Usage:
#   scripts/benchcmp.sh old.json new.json
#   scripts/benchcmp.sh new.json          # old = latest committed BENCH_pr*.json
#
# Exit status is always 0: the trajectory is a review signal, not a hard
# gate — set BENCHCMP_MAX_RATIO to fail when any benchmark's ns/op ratio
# (new/old) exceeds it, e.g. BENCHCMP_MAX_RATIO=1.5 in a strict CI lane.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -eq 2 ]; then
  old="$1" new="$2"
elif [ "$#" -eq 1 ]; then
  new="$1"
  old="$(ls BENCH_pr*.json 2>/dev/null | sort -t r -k 2 -n | tail -1 || true)"
  if [ -z "$old" ]; then
    echo "benchcmp: no committed BENCH_pr*.json to compare against" >&2
    exit 1
  fi
else
  echo "usage: $0 [old.json] new.json" >&2
  exit 1
fi
[ -r "$old" ] || { echo "benchcmp: cannot read $old" >&2; exit 1; }
[ -r "$new" ] || { echo "benchcmp: cannot read $new" >&2; exit 1; }
echo "benchcmp: $old -> $new" >&2

# The JSON is the flat one-object-per-line array bench.sh emits; pull
# (name, ns_per_op, allocs_per_op) per line without needing jq.
extract() {
  sed -n 's/.*"name": *"\([^"]*\)", *"ns_per_op": *\([0-9.eE+-]*\), *"allocs_per_op": *\([0-9]*\|null\).*/\1 \2 \3/p' "$1"
}

extract "$old" | sort >/tmp/benchcmp_old.$$
extract "$new" | sort >/tmp/benchcmp_new.$$
trap 'rm -f /tmp/benchcmp_old.$$ /tmp/benchcmp_new.$$' EXIT

join /tmp/benchcmp_old.$$ /tmp/benchcmp_new.$$ | awk -v maxratio="${BENCHCMP_MAX_RATIO:-0}" '
BEGIN {
  printf "%-50s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "allocs"
  bad = 0
}
{
  name = $1; ons = $2; oal = $3; nns = $4; nal = $5
  ratio = (ons > 0) ? nns / ons : 0
  alloc = (oal == "null" || nal == "null") ? "-" : sprintf("%s->%s", oal, nal)
  printf "%-50s %14.1f %14.1f %7.2fx %10s\n", name, ons, nns, ratio, alloc
  if (maxratio + 0 > 0 && ratio > maxratio + 0) {
    printf "REGRESSION: %s ns/op ratio %.2f exceeds %.2f\n", name, ratio, maxratio > "/dev/stderr"
    bad = 1
  }
}
END { exit bad }
'

# Benchmarks present on only one side are new or retired — list them so a
# silently dropped benchmark cannot read as "no regression".
join -v 1 /tmp/benchcmp_old.$$ /tmp/benchcmp_new.$$ | awk '{print "only in old: " $1}'
join -v 2 /tmp/benchcmp_old.$$ /tmp/benchcmp_new.$$ | awk '{print "only in new: " $1}'
