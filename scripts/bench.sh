#!/usr/bin/env bash
# bench.sh — run the tier-1 micro-benchmark set and emit a machine-
# readable perf trajectory point.
#
# Usage:
#   scripts/bench.sh [output.json]     # default: BENCH_pr10.json
#   BENCHTIME=3x scripts/bench.sh      # override -benchtime
#
# The JSON is a flat array of {name, ns_per_op, allocs_per_op} so future
# PRs can diff against it: a regression shows up as a ratio, not a vibe.
# allocs_per_op is null for benchmarks run without -benchmem counters.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr10.json}"
benchtime="${BENCHTIME:-1s}"
pattern='RepeatedSolves|CoverageBatch|CoverageScan|CoverageIndexed|SetcoverGreedy|SamplePool|Snapshot|Spill|Pmax|Delta|TopK|Obs|Proto|Admission'

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# The root package carries the paper-artifact and protocol benches; the
# admission-gate benches live with the server they gate.
go test -run 'xxx' -bench "$pattern" -benchmem -benchtime "$benchtime" . ./internal/server | tee "$raw" >&2

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    ns = $3
    allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$raw" > "$out"

echo "wrote $(grep -c '"name"' "$out") benchmark results to $out" >&2
