// Benchmarks for the query protocol's dispatcher overhead: the same
// warm (cached) query answered four ways — a direct server call, a
// typed Dispatch, the pipe's decode→dispatch→encode line path, and a
// loopback HTTP round trip — so the cost of each protocol layer is the
// delta between adjacent rows. A warm query isolates protocol cost:
// the answer is a cache hit, so sampling never dominates.
package activefriending_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/proto"
	"repro/internal/proto/httpapi"
	"repro/internal/server"
	"repro/internal/weights"
)

type protoBench struct {
	sv   *server.Server
	d    *proto.Dispatcher
	req  proto.Request
	line []byte
}

func newProtoBench(b *testing.B) *protoBench {
	b.Helper()
	g, err := gen.BarabasiAlbert(300, 4, rand.New(rand.NewSource(17)))
	if err != nil {
		b.Fatal(err)
	}
	sv := server.New(g, weights.NewDegree(g), server.Config{Seed: 7, Workers: 2})
	pb := &protoBench{
		sv:  sv,
		d:   proto.NewDispatcher(sv),
		req: proto.Request{ID: 1, Op: "pmax", S: 0, T: 250, Trials: 4000},
	}
	pb.line, err = json.Marshal(pb.req)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the pair so every measured iteration is a cache hit.
	if resp := pb.d.Dispatch(context.Background(), pb.req); !resp.OK {
		b.Fatalf("warmup: %+v", resp)
	}
	return pb
}

// BenchmarkProtoDirect is the baseline: the server call the dispatcher
// wraps, with no protocol layer at all.
func BenchmarkProtoDirect(b *testing.B) {
	pb := newProtoBench(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pb.sv.Pmax(ctx, 0, 250, 4000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtoDispatch adds the typed request→op mapping.
func BenchmarkProtoDispatch(b *testing.B) {
	pb := newProtoBench(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := pb.d.Dispatch(ctx, pb.req); !resp.OK {
			b.Fatalf("%+v", resp)
		}
	}
}

// BenchmarkProtoDispatchLine adds the pipe's JSON decode and encode —
// the full per-line cost of the stdin/stdout transport minus the pipe.
func BenchmarkProtoDispatchLine(b *testing.B) {
	pb := newProtoBench(b)
	ctx := context.Background()
	enc := json.NewEncoder(discard{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := pb.d.DispatchLine(ctx, pb.line)
		if !resp.OK {
			b.Fatalf("%+v", resp)
		}
		if err := enc.Encode(resp); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkProtoHTTP adds a loopback HTTP round trip per query — the
// end-to-end single-request POST path.
func BenchmarkProtoHTTP(b *testing.B) {
	pb := newProtoBench(b)
	ts := httptest.NewServer(httpapi.New(pb.d))
	defer ts.Close()
	body := string(pb.line) + "\n"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL, "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var r proto.Response
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil || !r.OK {
			b.Fatalf("%+v (%v)", r, err)
		}
		resp.Body.Close()
	}
}
