package graph

import "math/bits"

// NodeSet is a fixed-universe bitset over the nodes of a graph. It is the
// representation used for invitation sets and friend sets, where membership
// tests dominate. The zero value is unusable; allocate with NewNodeSet.
type NodeSet struct {
	words []uint64
	n     int
}

// NewNodeSet returns an empty set over a universe of n nodes.
func NewNodeSet(n int) *NodeSet {
	return &NodeSet{words: make([]uint64, (n+63)/64), n: n}
}

// NewNodeSetOf returns a set over n nodes containing the given members.
func NewNodeSetOf(n int, members ...Node) *NodeSet {
	s := NewNodeSet(n)
	for _, v := range members {
		s.Add(v)
	}
	return s
}

// Universe returns the universe size the set was created with.
func (s *NodeSet) Universe() int { return s.n }

// Add inserts v.
func (s *NodeSet) Add(v Node) { s.words[v>>6] |= 1 << (uint(v) & 63) }

// Remove deletes v.
func (s *NodeSet) Remove(v Node) { s.words[v>>6] &^= 1 << (uint(v) & 63) }

// Contains reports membership of v.
func (s *NodeSet) Contains(v Node) bool {
	return s.words[v>>6]&(1<<(uint(v)&63)) != 0
}

// Len returns the number of members.
func (s *NodeSet) Len() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Clear removes all members, keeping the universe.
func (s *NodeSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy.
func (s *NodeSet) Clone() *NodeSet {
	out := &NodeSet{words: make([]uint64, len(s.words)), n: s.n}
	copy(out.words, s.words)
	return out
}

// AddAll inserts every member of other (same universe required).
func (s *NodeSet) AddAll(other *NodeSet) {
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// ContainsAll reports whether every member of other is in s.
func (s *NodeSet) ContainsAll(other *NodeSet) bool {
	for i, w := range other.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Range calls fn for every member in ascending order without allocating,
// stopping early if fn returns false.
func (s *NodeSet) Range(fn func(Node) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(Node(i*64 + b)) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns the members in ascending order.
func (s *NodeSet) Members() []Node {
	out := make([]Node, 0, s.Len())
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, Node(i*64+b))
			w &= w - 1
		}
	}
	return out
}

// Fill inserts every node in [0, universe).
func (s *NodeSet) Fill() {
	for v := 0; v < s.n; v++ {
		s.Add(Node(v))
	}
}
