package graph

// BFSFrom runs a breadth-first search from the given sources, skipping any
// node for which blocked returns true (sources themselves are not skipped).
// It returns dist with dist[v] = hop distance from the nearest source, or -1
// if unreachable, and parent with the BFS tree parent (-1 for sources and
// unreachable nodes).
//
// blocked may be nil, meaning no node is blocked.
func (g *Graph) BFSFrom(sources []Node, blocked func(Node) bool) (dist []int32, parent []Node) {
	n := g.NumNodes()
	dist = make([]int32, n)
	parent = make([]Node, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	queue := make([]Node, 0, len(sources))
	for _, s := range sources {
		if dist[s] == -1 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range g.Neighbors(v) {
			if dist[u] != -1 {
				continue
			}
			if blocked != nil && blocked(u) {
				continue
			}
			dist[u] = dist[v] + 1
			parent[u] = v
			queue = append(queue, u)
		}
	}
	return dist, parent
}

// Reachable returns a boolean mask of nodes reachable from sources without
// entering blocked nodes (sources are reachable by definition unless they
// are out of range). blocked may be nil.
func (g *Graph) Reachable(sources []Node, blocked func(Node) bool) []bool {
	dist, _ := g.BFSFrom(sources, blocked)
	out := make([]bool, len(dist))
	for v, d := range dist {
		out[v] = d >= 0
	}
	return out
}

// ConnectedComponents labels each node with a component id in [0, count)
// and returns the labels and the component count.
func (g *Graph) ConnectedComponents() (labels []int32, count int) {
	n := g.NumNodes()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]Node, 0, 64)
	var next int32
	for start := 0; start < n; start++ {
		if labels[start] != -1 {
			continue
		}
		labels[start] = next
		queue = append(queue[:0], Node(start))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.Neighbors(v) {
				if labels[u] == -1 {
					labels[u] = next
					queue = append(queue, u)
				}
			}
		}
		next++
	}
	return labels, int(next)
}

// SameComponent reports whether u and v lie in the same connected component.
func (g *Graph) SameComponent(u, v Node) bool {
	if u == v {
		return true
	}
	seen := make(map[Node]bool, 64)
	seen[u] = true
	queue := []Node{u}
	for head := 0; head < len(queue); head++ {
		w := queue[head]
		for _, x := range g.Neighbors(w) {
			if x == v {
				return true
			}
			if !seen[x] {
				seen[x] = true
				queue = append(queue, x)
			}
		}
	}
	return false
}
