package graph

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func TestDeltaAddRemove(t *testing.T) {
	g := pathGraph(4) // 0-1, 1-2, 2-3
	d := &Delta{
		Add:    []Edge{{U: 0, V: 3}},
		Remove: []Edge{{U: 2, V: 1}}, // reverse orientation: canonicalized
	}
	g2, dirty, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.HasEdge(0, 3) || g2.HasEdge(1, 2) || !g2.HasEdge(0, 1) || !g2.HasEdge(2, 3) {
		t.Errorf("post-delta adjacency wrong")
	}
	if want := []Node{0, 1, 2, 3}; !reflect.DeepEqual(dirty, want) {
		t.Errorf("dirty = %v, want %v", dirty, want)
	}
	// The source graph is immutable.
	if !g.HasEdge(1, 2) || g.HasEdge(0, 3) {
		t.Error("Apply mutated the source graph")
	}
}

func TestDeltaNoOps(t *testing.T) {
	g := pathGraph(4)
	d := &Delta{
		Add:    []Edge{{U: 0, V: 1}}, // already present
		Remove: []Edge{{U: 0, V: 2}}, // not present
	}
	g2, dirty, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 0 {
		t.Errorf("no-op delta marked %v dirty", dirty)
	}
	if !reflect.DeepEqual(g2.Edges(), g.Edges()) {
		t.Error("no-op delta changed the edge set")
	}
}

func TestDeltaConflictAndInvalid(t *testing.T) {
	g := pathGraph(3)
	conflict := &Delta{Add: []Edge{{U: 2, V: 0}}, Remove: []Edge{{U: 0, V: 2}}}
	if _, _, err := conflict.Apply(g); !errors.Is(err, ErrDeltaConflict) {
		t.Errorf("conflict: err = %v, want ErrDeltaConflict", err)
	}
	loop := &Delta{Add: []Edge{{U: 1, V: 1}}}
	if _, _, err := loop.Apply(g); err == nil {
		t.Error("self-loop add accepted")
	}
	neg := &Delta{Remove: []Edge{{U: -1, V: 2}}}
	if _, _, err := neg.Apply(g); err == nil {
		t.Error("negative endpoint accepted")
	}
}

func TestDeltaGrowsUniverse(t *testing.T) {
	g := pathGraph(3)
	d := &Delta{Add: []Edge{{U: 2, V: 6}}}
	g2, dirty, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 7 {
		t.Errorf("NumNodes = %d, want 7", g2.NumNodes())
	}
	if want := []Node{2, 6}; !reflect.DeepEqual(dirty, want) {
		t.Errorf("dirty = %v, want %v", dirty, want)
	}
	if g2.Degree(4) != 0 {
		t.Error("implicit nodes should be isolated")
	}
}

// TestDeltaMatchesRebuild is the property the repair path leans on: Apply
// must agree with rebuilding the post-delta edge set from scratch, and
// the dirty set must be exactly the endpoints of the symmetric
// difference.
func TestDeltaMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(30)
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(Node(rng.Intn(n)), Node(rng.Intn(n)))
		}
		g := b.Build()

		var d Delta
		for i := 0; i < 1+rng.Intn(6); i++ {
			e := Edge{U: Node(rng.Intn(n)), V: Node(rng.Intn(n))}
			if e.U == e.V {
				continue
			}
			if rng.Intn(2) == 0 {
				d.Add = append(d.Add, e)
			} else {
				d.Remove = append(d.Remove, e)
			}
		}
		got, dirty, err := d.Apply(g)
		if errors.Is(err, ErrDeltaConflict) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}

		// Rebuild from scratch: start from g's edges, drop removes, add adds.
		want := map[Edge]bool{}
		for _, e := range g.Edges() {
			want[e] = true
		}
		for _, e := range d.Remove {
			ce, _ := canonical(e)
			delete(want, ce)
		}
		for _, e := range d.Add {
			ce, _ := canonical(e)
			want[ce] = true
		}
		if int64(len(want)) != got.NumEdges() {
			t.Fatalf("trial %d: %d edges, want %d", trial, got.NumEdges(), len(want))
		}
		wantDirty := NewNodeSet(got.NumNodes())
		for _, e := range got.Edges() {
			if !want[e] {
				t.Fatalf("trial %d: unexpected edge %v", trial, e)
			}
			if !g.HasEdge(e.U, e.V) {
				wantDirty.Add(e.U)
				wantDirty.Add(e.V)
			}
		}
		for _, e := range g.Edges() {
			if !got.HasEdge(e.U, e.V) {
				wantDirty.Add(e.U)
				wantDirty.Add(e.V)
			}
		}
		if !reflect.DeepEqual(dirty, wantDirty.Members()) {
			t.Fatalf("trial %d: dirty %v, want %v", trial, dirty, wantDirty.Members())
		}
	}
}

// TestSubgraphEdgesRoundTrip: inducing on all nodes is the identity, and
// re-building a subgraph from its own Edges() reproduces it — the
// Builder/Edges/Subgraph consistency the delta path relies on.
func TestSubgraphEdgesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(20)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(Node(rng.Intn(n)), Node(rng.Intn(n)))
		}
		g := b.Build()

		all := make([]bool, n)
		for i := range all {
			all[i] = true
		}
		idSub, _ := g.Subgraph(all)
		if !reflect.DeepEqual(idSub.Edges(), g.Edges()) {
			t.Fatal("Subgraph over all nodes is not the identity")
		}

		keep := make([]bool, n)
		for i := range keep {
			keep[i] = rng.Intn(2) == 0
		}
		sub, orig := g.Subgraph(keep)
		rebuilt := FromEdges(sub.NumNodes(), sub.Edges())
		if !reflect.DeepEqual(rebuilt.Edges(), sub.Edges()) {
			t.Fatal("subgraph Edges round-trip mismatch")
		}
		// Every subgraph edge maps back to an original edge.
		for _, e := range sub.Edges() {
			if !g.HasEdge(orig[e.U], orig[e.V]) {
				t.Fatalf("subgraph edge %v has no preimage", e)
			}
		}
	}
}
