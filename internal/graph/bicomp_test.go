package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedBlock(b []Node) []Node {
	out := append([]Node(nil), b...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestBCCPath(t *testing.T) {
	g := pathGraph(4)
	bcc := g.BiconnectedComponents()
	if len(bcc.Blocks) != 3 {
		t.Fatalf("path P4 has %d blocks, want 3 (each edge)", len(bcc.Blocks))
	}
	wantCut := []bool{false, true, true, false}
	for v, w := range wantCut {
		if bcc.IsCut[v] != w {
			t.Errorf("IsCut[%d] = %v, want %v", v, bcc.IsCut[v], w)
		}
	}
}

func TestBCCCycle(t *testing.T) {
	g := cycleGraph(5)
	bcc := g.BiconnectedComponents()
	if len(bcc.Blocks) != 1 {
		t.Fatalf("C5 has %d blocks, want 1", len(bcc.Blocks))
	}
	if len(bcc.Blocks[0]) != 5 {
		t.Errorf("block size = %d, want 5", len(bcc.Blocks[0]))
	}
	for v := 0; v < 5; v++ {
		if bcc.IsCut[v] {
			t.Errorf("cycle has no cut vertices, but IsCut[%d]", v)
		}
	}
}

func TestBCCBowtie(t *testing.T) {
	// Two triangles sharing vertex 2.
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2)
	g := b.Build()
	bcc := g.BiconnectedComponents()
	if len(bcc.Blocks) != 2 {
		t.Fatalf("bowtie has %d blocks, want 2", len(bcc.Blocks))
	}
	for v := 0; v < 5; v++ {
		want := v == 2
		if bcc.IsCut[v] != want {
			t.Errorf("IsCut[%d] = %v, want %v", v, bcc.IsCut[v], want)
		}
	}
	for _, blk := range bcc.Blocks {
		if len(blk) != 3 {
			t.Errorf("block %v size = %d, want 3", blk, len(blk))
		}
	}
}

func TestBCCDisconnected(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	// 5 isolated.
	g := b.Build()
	bcc := g.BiconnectedComponents()
	if len(bcc.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(bcc.Blocks))
	}
	if !bcc.IsCut[3] {
		t.Error("3 should be a cut vertex")
	}
	if bcc.IsCut[5] {
		t.Error("isolated node cannot be a cut vertex")
	}
}

func TestBCCCutVerticesAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(14)
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(Node(rng.Intn(n)), Node(rng.Intn(n)))
		}
		g := b.Build()
		bcc := g.BiconnectedComponents()
		_, base := g.ConnectedComponents()
		for v := 0; v < n; v++ {
			keep := make([]bool, n)
			for i := range keep {
				keep[i] = i != v
			}
			sub, _ := g.Subgraph(keep)
			_, after := sub.ConnectedComponents()
			// Removing v splits its component into k parts, so
			// after = base - 1 + k; v is a cut vertex iff k >= 2,
			// i.e. after > base. Isolated vertices are never cut.
			isCut := g.Degree(Node(v)) > 0 && after > base
			if bcc.IsCut[v] != isCut {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBlockCutTreeBowtie(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2)
	g := b.Build()
	bct := NewBlockCutTree(g)
	if bct.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d, want 2", bct.NumBlocks())
	}
	if !bct.IsCut(2) {
		t.Error("2 should be cut")
	}
	// 0 and 4 are in different blocks; the simple paths 0..4 cover all 5
	// vertices.
	mask := bct.VerticesOnSimplePaths(5, 0, 4)
	for v := 0; v < 5; v++ {
		if !mask[v] {
			t.Errorf("vertex %d should be on a simple 0-4 path", v)
		}
	}
}

func TestVerticesOnSimplePathsPendant(t *testing.T) {
	// 0-1-2 path with pendant 3 hanging off 1. Vertex 3 can reach both 0
	// and 2, but lies on no simple 0-2 path.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	g := b.Build()
	bct := NewBlockCutTree(g)
	mask := bct.VerticesOnSimplePaths(4, 0, 2)
	want := []bool{true, true, true, false}
	for v, w := range want {
		if mask[v] != w {
			t.Errorf("mask[%d] = %v, want %v", v, mask[v], w)
		}
	}
}

func TestVerticesOnSimplePathsDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	bct := NewBlockCutTree(g)
	mask := bct.VerticesOnSimplePaths(4, 0, 3)
	for v, on := range mask {
		if on {
			t.Errorf("mask[%d] = true for disconnected pair", v)
		}
	}
}

func TestVerticesOnSimplePathsSameNode(t *testing.T) {
	g := pathGraph(3)
	bct := NewBlockCutTree(g)
	mask := bct.VerticesOnSimplePaths(3, 1, 1)
	if !mask[1] || mask[0] || mask[2] {
		t.Errorf("mask = %v, want only node 1", mask)
	}
}

// TestVerticesOnSimplePathsAgainstEnumeration enumerates all simple paths
// on small random graphs and compares.
func TestVerticesOnSimplePathsAgainstEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(7) // keep tiny: path enumeration is exponential
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(Node(rng.Intn(n)), Node(rng.Intn(n)))
		}
		g := b.Build()
		a := Node(rng.Intn(n))
		z := Node(rng.Intn(n))
		want := make([]bool, n)
		var dfs func(v Node, visited []bool, path []Node)
		dfs = func(v Node, visited []bool, path []Node) {
			if v == z {
				for _, p := range path {
					want[p] = true
				}
				want[z] = true
				return
			}
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					dfs(u, visited, append(path, u))
					visited[u] = false
				}
			}
		}
		if a == z {
			want[a] = true
		} else {
			visited := make([]bool, n)
			visited[a] = true
			dfs(a, visited, []Node{a})
		}
		bct := NewBlockCutTree(g)
		got := bct.VerticesOnSimplePaths(n, a, z)
		// When a and z are disconnected, got is all-false and want is too,
		// except endpooints are never marked by enumeration either.
		if a != z && !g.SameComponent(a, z) {
			for _, v := range got {
				if v {
					return false
				}
			}
			return true
		}
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBlockCutTreeIsolatedVertex(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	bct := NewBlockCutTree(g)
	if bct.TreeNodeOf(2) != -1 {
		t.Errorf("isolated vertex should map to -1, got %d", bct.TreeNodeOf(2))
	}
	if got := bct.BlockVertices(0); len(sortedBlock(got)) != 2 {
		t.Errorf("block = %v, want the 0-1 edge", got)
	}
}
