// Package graph provides the compact undirected-graph substrate used by the
// active-friending library: a CSR (compressed sparse row) adjacency
// representation, an incremental builder, traversals, connected and
// biconnected components, a block-cut tree, and successive disjoint
// shortest-path extraction.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected;
// influence weights are directional but derived from the structure by the
// weights package, so the graph itself stores only adjacency.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Node identifies a vertex. Nodes are dense integers in [0, NumNodes).
type Node = int32

// ErrNodeOutOfRange reports a node identifier outside [0, NumNodes).
var ErrNodeOutOfRange = errors.New("graph: node out of range")

// Graph is an immutable undirected simple graph in CSR form.
//
// The zero value is an empty graph with no nodes. Construct non-trivial
// graphs with a Builder or FromEdges.
type Graph struct {
	// offsets has length n+1; the neighbors of node v are
	// adj[offsets[v]:offsets[v+1]], sorted ascending.
	offsets []int32
	adj     []Node
	m       int64 // number of undirected edges
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 { return g.m }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v Node) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v Node) []Node {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v Node) bool {
	if u == v {
		return false
	}
	// Search the shorter list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// ValidNode reports whether v is a valid node identifier for g.
func (g *Graph) ValidNode(v Node) bool {
	return v >= 0 && int(v) < g.NumNodes()
}

// CheckNode returns ErrNodeOutOfRange (wrapped with v) unless v is valid.
func (g *Graph) CheckNode(v Node) error {
	if !g.ValidNode(v) {
		return fmt.Errorf("%w: %d (graph has %d nodes)", ErrNodeOutOfRange, v, g.NumNodes())
	}
	return nil
}

// AvgDegree returns 2m/n, the average degree.
func (g *Graph) AvgDegree() float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(n)
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(Node(v)); d > max {
			max = d
		}
	}
	return max
}

// Edge is an undirected edge; U < V is not required on input but is
// canonicalized by the builder.
type Edge struct {
	U, V Node
}

// Builder accumulates edges and produces an immutable Graph.
// The zero value is ready to use; call Grow to pre-size.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph with n nodes (0..n-1).
// More nodes may be added implicitly by AddEdge with larger endpoints.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// Grow reserves capacity for m additional edges.
func (b *Builder) Grow(m int) {
	if cap(b.edges)-len(b.edges) < m {
		next := make([]Edge, len(b.edges), len(b.edges)+m)
		copy(next, b.edges)
		b.edges = next
	}
}

// EnsureNode guarantees that v is a valid node in the built graph.
func (b *Builder) EnsureNode(v Node) {
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
}

// AddEdge records the undirected edge (u, v). Self-loops are ignored;
// duplicate edges are de-duplicated at Build time.
func (b *Builder) AddEdge(u, v Node) {
	if u == v || u < 0 || v < 0 {
		return
	}
	b.EnsureNode(u)
	b.EnsureNode(v)
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{U: u, V: v})
}

// NumPendingEdges returns the number of (possibly duplicate) edges recorded.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the immutable CSR graph and leaves the builder reusable
// (its recorded edges are retained).
func (b *Builder) Build() *Graph {
	// Sort and deduplicate.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	uniq := b.edges[:0]
	var last Edge = Edge{U: -1, V: -1}
	for _, e := range b.edges {
		if e != last {
			uniq = append(uniq, e)
			last = e
		}
	}
	b.edges = uniq

	n := b.n
	deg := make([]int32, n+1)
	for _, e := range b.edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	offsets := make([]int32, n+1)
	for i := 1; i <= n; i++ {
		offsets[i] = offsets[i-1] + deg[i]
	}
	adj := make([]Node, offsets[n])
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for _, e := range b.edges {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	g := &Graph{offsets: offsets, adj: adj, m: int64(len(b.edges))}
	// Each adjacency list is already sorted because edges were processed in
	// (U,V) order for the U side; the V side needs sorting.
	for v := 0; v < n; v++ {
		ns := adj[offsets[v]:offsets[v+1]]
		if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
			sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		}
	}
	return g
}

// FromEdges builds a graph with n nodes from the given edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// Edges returns all undirected edges with U < V, in sorted order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(Node(v)) {
			if Node(v) < u {
				out = append(out, Edge{U: Node(v), V: u})
			}
		}
	}
	return out
}

// Subgraph returns the induced subgraph on keep (nodes where keep[v] is
// true), along with the mapping from new node ids to original ids.
// Nodes are renumbered densely in ascending original order.
func (g *Graph) Subgraph(keep []bool) (*Graph, []Node) {
	if len(keep) != g.NumNodes() {
		panic("graph: Subgraph mask length mismatch")
	}
	remap := make([]Node, g.NumNodes())
	orig := make([]Node, 0)
	var next Node
	for v := range keep {
		if keep[v] {
			remap[v] = next
			orig = append(orig, Node(v))
			next++
		} else {
			remap[v] = -1
		}
	}
	b := NewBuilder(int(next))
	for _, v := range orig {
		for _, u := range g.Neighbors(v) {
			if u > v && keep[u] {
				b.AddEdge(remap[v], remap[u])
			}
		}
	}
	return b.Build(), orig
}
