package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(Node(i), Node(i+1))
	}
	return b.Build()
}

func cycleGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(Node(i), Node((i+1)%n))
	}
	return b.Build()
}

func completeGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(Node(i), Node(j))
		}
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumNodes() != 0 {
		t.Errorf("NumNodes() = %d, want 0", g.NumNodes())
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges() = %d, want 0", g.NumEdges())
	}
	if g.AvgDegree() != 0 {
		t.Errorf("AvgDegree() = %v, want 0", g.AvgDegree())
	}
	if g.MaxDegree() != 0 {
		t.Errorf("MaxDegree() = %v, want 0", g.MaxDegree())
	}
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse orientation
	b.AddEdge(0, 1) // exact duplicate
	b.AddEdge(1, 1) // self loop: dropped
	b.AddEdge(1, 2)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges() = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(1, 2) {
		t.Error("expected edges missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) = true, want false")
	}
	if g.HasEdge(1, 1) {
		t.Error("self loop should not exist")
	}
}

func TestBuilderImplicitNodes(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9)
	g := b.Build()
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes() = %d, want 10", g.NumNodes())
	}
	if g.Degree(5) != 1 || g.Degree(9) != 1 || g.Degree(0) != 0 {
		t.Error("degree mismatch for implicit nodes")
	}
}

func TestBuilderNegativeEndpointsIgnored(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(-1, 0)
	b.AddEdge(0, -3)
	g := b.Build()
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges() = %d, want 0", g.NumEdges())
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(2, 4)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(2, 1)
	g := b.Build()
	want := []Node{0, 1, 3, 4}
	if got := g.Neighbors(2); !reflect.DeepEqual(got, want) {
		t.Errorf("Neighbors(2) = %v, want %v", got, want)
	}
}

func TestDegreeAndAvg(t *testing.T) {
	g := completeGraph(5)
	if g.NumEdges() != 10 {
		t.Fatalf("K5 edges = %d, want 10", g.NumEdges())
	}
	for v := Node(0); v < 5; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("Degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if g.AvgDegree() != 4 {
		t.Errorf("AvgDegree() = %v, want 4", g.AvgDegree())
	}
	if g.MaxDegree() != 4 {
		t.Errorf("MaxDegree() = %v, want 4", g.MaxDegree())
	}
}

func TestCheckNode(t *testing.T) {
	g := pathGraph(3)
	if err := g.CheckNode(2); err != nil {
		t.Errorf("CheckNode(2) = %v, want nil", err)
	}
	if err := g.CheckNode(3); err == nil {
		t.Error("CheckNode(3) = nil, want error")
	}
	if err := g.CheckNode(-1); err == nil {
		t.Error("CheckNode(-1) = nil, want error")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		var edges []Edge
		for i := 0; i < n*2; i++ {
			edges = append(edges, Edge{U: Node(rng.Intn(n)), V: Node(rng.Intn(n))})
		}
		g := FromEdges(n, edges)
		g2 := FromEdges(n, g.Edges())
		if g.NumEdges() != g2.NumEdges() {
			t.Fatalf("round trip edge count %d != %d", g.NumEdges(), g2.NumEdges())
		}
		if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
			t.Fatal("round trip edge sets differ")
		}
	}
}

// TestCSRInvariants is a property test: for random graphs, the CSR
// structure is consistent (degree sums, symmetry, sortedness).
func TestCSRInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(Node(rng.Intn(n)), Node(rng.Intn(n)))
		}
		g := b.Build()
		degSum := 0
		for v := 0; v < n; v++ {
			ns := g.Neighbors(Node(v))
			degSum += len(ns)
			if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
				return false
			}
			for _, u := range ns {
				if u == Node(v) {
					return false // self loop
				}
				if !g.HasEdge(u, Node(v)) {
					return false // asymmetric adjacency
				}
			}
			for i := 1; i < len(ns); i++ {
				if ns[i] == ns[i-1] {
					return false // parallel edge
				}
			}
		}
		return int64(degSum) == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBFSPathGraph(t *testing.T) {
	g := pathGraph(6)
	dist, parent := g.BFSFrom([]Node{0}, nil)
	for v := 0; v < 6; v++ {
		if dist[v] != int32(v) {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
	if parent[0] != -1 {
		t.Errorf("parent of source = %d, want -1", parent[0])
	}
	for v := 1; v < 6; v++ {
		if parent[v] != Node(v-1) {
			t.Errorf("parent[%d] = %d, want %d", v, parent[v], v-1)
		}
	}
}

func TestBFSMultiSource(t *testing.T) {
	g := pathGraph(7)
	dist, _ := g.BFSFrom([]Node{0, 6}, nil)
	want := []int32{0, 1, 2, 3, 2, 1, 0}
	for v, w := range want {
		if dist[v] != w {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], w)
		}
	}
}

func TestBFSBlocked(t *testing.T) {
	g := pathGraph(5)
	dist, _ := g.BFSFrom([]Node{0}, func(v Node) bool { return v == 2 })
	if dist[1] != 1 {
		t.Errorf("dist[1] = %d, want 1", dist[1])
	}
	for _, v := range []Node{2, 3, 4} {
		if dist[v] != -1 {
			t.Errorf("dist[%d] = %d, want -1 (blocked)", v, dist[v])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	dist, _ := g.BFSFrom([]Node{0}, nil)
	if dist[2] != -1 || dist[3] != -1 {
		t.Error("nodes in other component should be unreachable")
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.Build()
	labels, count := g.ConnectedComponents()
	if count != 4 {
		t.Fatalf("component count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("0,1,2 should share a component")
	}
	if labels[3] != labels[4] {
		t.Error("3,4 should share a component")
	}
	if labels[5] == labels[6] {
		t.Error("isolated nodes should be in distinct components")
	}
	if labels[0] == labels[3] {
		t.Error("0 and 3 should be in distinct components")
	}
}

func TestSameComponent(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	if !g.SameComponent(0, 2) {
		t.Error("SameComponent(0,2) = false, want true")
	}
	if g.SameComponent(0, 3) {
		t.Error("SameComponent(0,3) = true, want false")
	}
	if !g.SameComponent(4, 4) {
		t.Error("SameComponent(4,4) = false, want true")
	}
}

func TestSubgraph(t *testing.T) {
	g := completeGraph(5)
	keep := []bool{true, false, true, true, false}
	sub, orig := g.Subgraph(keep)
	if sub.NumNodes() != 3 {
		t.Fatalf("subgraph nodes = %d, want 3", sub.NumNodes())
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("subgraph edges = %d, want 3 (triangle)", sub.NumEdges())
	}
	want := []Node{0, 2, 3}
	if !reflect.DeepEqual(orig, want) {
		t.Errorf("orig map = %v, want %v", orig, want)
	}
}

func TestShortestPath(t *testing.T) {
	g := pathGraph(5)
	p := g.ShortestPath(0, 4, nil)
	want := []Node{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("ShortestPath = %v, want %v", p, want)
	}
	if p := g.ShortestPath(3, 3, nil); !reflect.DeepEqual(p, []Node{3}) {
		t.Errorf("trivial path = %v, want [3]", p)
	}
}

func TestShortestPathBlockedAndMissing(t *testing.T) {
	g := pathGraph(5)
	if p := g.ShortestPath(0, 4, func(v Node) bool { return v == 2 }); p != nil {
		t.Errorf("blocked path = %v, want nil", p)
	}
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g2 := b.Build()
	if p := g2.ShortestPath(0, 3, nil); p != nil {
		t.Errorf("cross-component path = %v, want nil", p)
	}
}

func TestShortestPathPrefersShort(t *testing.T) {
	// Diamond: 0-1-3 (len 2) and 0-2a-2b-3 (len 3).
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 3)
	b.AddEdge(0, 2)
	b.AddEdge(2, 4)
	b.AddEdge(4, 3)
	g := b.Build()
	p := g.ShortestPath(0, 3, nil)
	if len(p) != 3 {
		t.Errorf("path length = %d, want 3 (nodes)", len(p))
	}
}

func TestSuccessiveDisjointPaths(t *testing.T) {
	// Two disjoint paths 0-1-5 and 0-2-3-5, plus an edge that creates a
	// third non-disjoint route through 1.
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 5)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 5)
	b.AddEdge(2, 1)
	g := b.Build()
	paths := g.SuccessiveDisjointPaths(0, 5, 10)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2: %v", len(paths), paths)
	}
	if len(paths[0]) != 3 {
		t.Errorf("first path %v should be the 2-hop route", paths[0])
	}
	// Interiors must be disjoint.
	seen := map[Node]bool{}
	for _, p := range paths {
		for _, v := range p[1 : len(p)-1] {
			if seen[v] {
				t.Errorf("interior node %d reused", v)
			}
			seen[v] = true
		}
	}
}

func TestSuccessiveDisjointPathsDirectEdge(t *testing.T) {
	g := completeGraph(3)
	paths := g.SuccessiveDisjointPaths(0, 1, 5)
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1 (direct edge terminates)", len(paths))
	}
	if len(paths[0]) != 2 {
		t.Errorf("path = %v, want the direct edge", paths[0])
	}
}

func TestSuccessiveDisjointPathsLimit(t *testing.T) {
	// Star of 4 disjoint 2-hop routes from 0 to 5.
	b := NewBuilder(6)
	for i := 1; i <= 4; i++ {
		b.AddEdge(0, Node(i))
		b.AddEdge(Node(i), 5)
	}
	g := b.Build()
	if got := len(g.SuccessiveDisjointPaths(0, 5, 2)); got != 2 {
		t.Errorf("maxPaths=2 produced %d paths", got)
	}
	if got := len(g.SuccessiveDisjointPaths(0, 5, 10)); got != 4 {
		t.Errorf("expected all 4 disjoint paths, got %d", got)
	}
}
