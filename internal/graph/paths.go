package graph

// ShortestPath returns a shortest (fewest-hops) path from s to t inclusive,
// avoiding nodes for which blocked returns true (s and t are never treated
// as blocked). It returns nil if no such path exists. blocked may be nil.
func (g *Graph) ShortestPath(s, t Node, blocked func(Node) bool) []Node {
	if s == t {
		return []Node{s}
	}
	wrap := blocked
	if wrap != nil {
		inner := blocked
		wrap = func(v Node) bool {
			if v == s || v == t {
				return false
			}
			return inner(v)
		}
	}
	dist, parent := g.BFSFrom([]Node{s}, wrap)
	if dist[t] < 0 {
		return nil
	}
	path := make([]Node, 0, dist[t]+1)
	for v := t; v != -1; v = parent[v] {
		path = append(path, v)
	}
	// Reverse into s..t order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// SuccessiveDisjointPaths extracts up to maxPaths shortest s–t paths whose
// interior vertices are pairwise disjoint: after each path is found, its
// interior vertices are removed before searching for the next. This is the
// path-selection rule of the Shortest-Path (SP) baseline in the paper
// ("SP will select the next shortest path disjoint from those [that] have
// been selected"). Returns the paths in discovery order; fewer than
// maxPaths are returned when s and t become disconnected.
func (g *Graph) SuccessiveDisjointPaths(s, t Node, maxPaths int) [][]Node {
	used := make(map[Node]bool)
	blocked := func(v Node) bool { return used[v] }
	var out [][]Node
	for len(out) < maxPaths {
		p := g.ShortestPath(s, t, blocked)
		if p == nil {
			break
		}
		out = append(out, p)
		for _, v := range p[1 : len(p)-1] {
			used[v] = true
		}
		if len(p) <= 2 {
			// Direct edge s–t: no interior to remove, every further
			// "path" would be identical.
			break
		}
	}
	return out
}
