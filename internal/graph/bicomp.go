package graph

// BCC holds the biconnected components (blocks) of a graph and its cut
// vertices, computed with an iterative Tarjan–Hopcroft DFS.
type BCC struct {
	// Blocks lists the vertex set of each block (2-connected component or
	// bridge edge). Isolated vertices form no block.
	Blocks [][]Node
	// IsCut marks articulation points.
	IsCut []bool
}

type bccFrame struct {
	v, parent Node
	idx       int32 // next neighbor index to process
}

// BiconnectedComponents computes the blocks and cut vertices of g.
func (g *Graph) BiconnectedComponents() *BCC {
	n := g.NumNodes()
	disc := make([]int32, n)
	low := make([]int32, n)
	for i := range disc {
		disc[i] = -1
	}
	isCut := make([]bool, n)
	var blocks [][]Node
	var timer int32
	edgeStack := make([]Edge, 0, 64)
	frames := make([]bccFrame, 0, 64)

	popBlock := func(until Edge) {
		var verts []Node
		seen := make(map[Node]struct{}, 8)
		for {
			if len(edgeStack) == 0 {
				break
			}
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			for _, w := range [2]Node{e.U, e.V} {
				if _, ok := seen[w]; !ok {
					seen[w] = struct{}{}
					verts = append(verts, w)
				}
			}
			if e == until {
				break
			}
		}
		if len(verts) > 0 {
			blocks = append(blocks, verts)
		}
	}

	for root := 0; root < n; root++ {
		if disc[root] != -1 {
			continue
		}
		disc[root] = timer
		low[root] = timer
		timer++
		rootChildren := 0
		frames = append(frames[:0], bccFrame{v: Node(root), parent: -1})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			ns := g.Neighbors(f.v)
			if int(f.idx) < len(ns) {
				u := ns[f.idx]
				f.idx++
				switch {
				case disc[u] == -1:
					// Tree edge: descend.
					if f.parent == -1 {
						rootChildren++
					}
					edgeStack = append(edgeStack, Edge{U: f.v, V: u})
					disc[u] = timer
					low[u] = timer
					timer++
					frames = append(frames, bccFrame{v: u, parent: f.v})
				case u != f.parent && disc[u] < disc[f.v]:
					// Back edge (pushed once, from the deeper endpoint).
					edgeStack = append(edgeStack, Edge{U: f.v, V: u})
					if disc[u] < low[f.v] {
						low[f.v] = disc[u]
					}
				}
				continue
			}
			// All neighbors processed: return to parent.
			frames = frames[:len(frames)-1]
			if f.parent == -1 {
				if rootChildren >= 2 {
					isCut[f.v] = true
				}
				continue
			}
			p := &frames[len(frames)-1]
			if low[f.v] < low[p.v] {
				low[p.v] = low[f.v]
			}
			if low[f.v] >= disc[p.v] {
				if p.parent != -1 {
					isCut[p.v] = true
				}
				popBlock(Edge{U: p.v, V: f.v})
			}
		}
	}
	return &BCC{Blocks: blocks, IsCut: isCut}
}

// BlockCutTree is the bipartite tree whose nodes are blocks and cut
// vertices; a block is adjacent to each cut vertex it contains.
type BlockCutTree struct {
	bcc *BCC
	// treeNodeOf maps a graph vertex to its tree node: cut vertices get
	// their own tree node; other vertices map to their unique block's tree
	// node; isolated vertices map to -1.
	treeNodeOf []int32
	// adj is the tree adjacency. Tree nodes [0, numBlocks) are blocks;
	// [numBlocks, numBlocks+numCuts) are cut vertices.
	adj       [][]int32
	numBlocks int
}

// NewBlockCutTree builds the block-cut tree of g.
func NewBlockCutTree(g *Graph) *BlockCutTree {
	bcc := g.BiconnectedComponents()
	n := g.NumNodes()
	numBlocks := len(bcc.Blocks)
	cutIndex := make([]int32, n)
	for i := range cutIndex {
		cutIndex[i] = -1
	}
	var numCuts int32
	for v := 0; v < n; v++ {
		if bcc.IsCut[v] {
			cutIndex[v] = numCuts
			numCuts++
		}
	}
	t := &BlockCutTree{
		bcc:        bcc,
		treeNodeOf: make([]int32, n),
		adj:        make([][]int32, numBlocks+int(numCuts)),
		numBlocks:  numBlocks,
	}
	for i := range t.treeNodeOf {
		t.treeNodeOf[i] = -1
	}
	for b, verts := range bcc.Blocks {
		for _, v := range verts {
			if bcc.IsCut[v] {
				cutNode := int32(numBlocks) + cutIndex[v]
				t.adj[b] = append(t.adj[b], cutNode)
				t.adj[cutNode] = append(t.adj[cutNode], int32(b))
				t.treeNodeOf[v] = cutNode
			} else {
				t.treeNodeOf[v] = int32(b)
			}
		}
	}
	return t
}

// TreeNodeOf returns the tree node of graph vertex v, or -1 if v is
// isolated (belongs to no block).
func (t *BlockCutTree) TreeNodeOf(v Node) int32 { return t.treeNodeOf[v] }

// NumBlocks returns the number of blocks.
func (t *BlockCutTree) NumBlocks() int { return t.numBlocks }

// BlockVertices returns the vertices of block b.
func (t *BlockCutTree) BlockVertices(b int) []Node { return t.bcc.Blocks[b] }

// IsCut reports whether graph vertex v is an articulation point.
func (t *BlockCutTree) IsCut(v Node) bool { return t.bcc.IsCut[v] }

// treePath returns the tree nodes on the unique path between tree nodes a
// and b inclusive, or nil if they are disconnected (different components).
func (t *BlockCutTree) treePath(a, b int32) []int32 {
	if a < 0 || b < 0 {
		return nil
	}
	if a == b {
		return []int32{a}
	}
	parent := make([]int32, len(t.adj))
	for i := range parent {
		parent[i] = -2
	}
	parent[a] = -1
	queue := []int32{a}
	found := false
	for head := 0; head < len(queue) && !found; head++ {
		v := queue[head]
		for _, u := range t.adj[v] {
			if parent[u] == -2 {
				parent[u] = v
				if u == b {
					found = true
					break
				}
				queue = append(queue, u)
			}
		}
	}
	if !found {
		return nil
	}
	var path []int32
	for v := b; v != -1; v = parent[v] {
		path = append(path, v)
	}
	return path
}

// VerticesOnSimplePaths returns the set (as a mask over g's vertices) of
// vertices lying on at least one simple path between a and b in g,
// including a and b themselves. Returns an all-false mask when a and b are
// disconnected. This is exact: a vertex is on some simple a–b path iff it
// belongs to a block on the a–b path in the block-cut tree.
func (t *BlockCutTree) VerticesOnSimplePaths(n int, a, b Node) []bool {
	out := make([]bool, n)
	if a == b {
		out[a] = true
		return out
	}
	path := t.treePath(t.treeNodeOf[a], t.treeNodeOf[b])
	if path == nil {
		return out
	}
	for _, tn := range path {
		if int(tn) < t.numBlocks {
			for _, v := range t.bcc.Blocks[tn] {
				out[v] = true
			}
		}
	}
	// Endpoints are always included (they may be cut vertices whose tree
	// node is not a block, but each is contained in a path block anyway;
	// set explicitly for robustness).
	out[a] = true
	out[b] = true
	return out
}
