package graph

import (
	"errors"
	"fmt"
)

// ErrDeltaConflict reports a Delta listing the same edge as both an add
// and a remove — the intent is ambiguous, so the apply path refuses it.
var ErrDeltaConflict = errors.New("graph: edge both added and removed in one delta")

// Delta is a batch graph mutation: a set of undirected edges to add and a
// set to remove, applied atomically to produce the next epoch's graph.
// Edges are canonicalized (U < V) on apply; self-loops are rejected, and
// listing the same edge in both sets is an error. Adding an edge that
// already exists or removing one that doesn't is a no-op that marks no
// node dirty — a delta's dirty set reflects only actual structural
// change, which is what the pool-repair damage test keys on.
type Delta struct {
	Add    []Edge
	Remove []Edge
}

// Empty reports whether the delta lists no edges at all.
func (d *Delta) Empty() bool { return len(d.Add) == 0 && len(d.Remove) == 0 }

// canonical returns e with U < V, or an error for self-loops and
// negative nodes.
func canonical(e Edge) (Edge, error) {
	if e.U == e.V {
		return e, fmt.Errorf("graph: delta edge (%d,%d) is a self-loop", e.U, e.V)
	}
	if e.U < 0 || e.V < 0 {
		return e, fmt.Errorf("graph: delta edge (%d,%d) has a negative endpoint", e.U, e.V)
	}
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e, nil
}

// Apply builds the epoch-N+1 graph from g and returns it together with
// the sorted distinct dirty set: the endpoints of every edge that was
// actually added or removed. Nodes beyond g's range referenced by added
// edges grow the node count (max endpoint + 1); removes are processed
// before adds, so a delta that removes and re-adds the same edge is a
// conflict, not a no-op. g is never mutated.
func (d *Delta) Apply(g *Graph) (*Graph, []Node, error) {
	adds := make(map[Edge]bool, len(d.Add))
	for _, e := range d.Add {
		ce, err := canonical(e)
		if err != nil {
			return nil, nil, err
		}
		adds[ce] = true
	}
	removes := make(map[Edge]bool, len(d.Remove))
	for _, e := range d.Remove {
		ce, err := canonical(e)
		if err != nil {
			return nil, nil, err
		}
		if adds[ce] {
			return nil, nil, fmt.Errorf("%w: (%d,%d)", ErrDeltaConflict, ce.U, ce.V)
		}
		removes[ce] = true
	}

	n := g.NumNodes()
	for e := range adds {
		if int(e.V) >= n {
			n = int(e.V) + 1
		}
	}
	dirtySet := NewNodeSet(n)
	b := NewBuilder(n)
	b.Grow(int(g.NumEdges()) + len(adds))
	for _, e := range g.Edges() {
		if removes[e] {
			dirtySet.Add(e.U)
			dirtySet.Add(e.V)
			continue
		}
		b.AddEdge(e.U, e.V)
		if adds[e] {
			delete(adds, e) // already present: adding again is a no-op
		}
	}
	for e := range adds {
		b.AddEdge(e.U, e.V)
		dirtySet.Add(e.U)
		dirtySet.Add(e.V)
	}
	return b.Build(), dirtySet.Members(), nil
}
