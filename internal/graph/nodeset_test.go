package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNodeSetBasics(t *testing.T) {
	s := NewNodeSet(130)
	if s.Len() != 0 {
		t.Errorf("empty Len = %d", s.Len())
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	for _, v := range []Node{0, 64, 129} {
		if !s.Contains(v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	if s.Contains(1) || s.Contains(63) || s.Contains(128) {
		t.Error("false positives")
	}
	s.Remove(64)
	if s.Contains(64) || s.Len() != 2 {
		t.Error("Remove failed")
	}
	if got := s.Members(); !reflect.DeepEqual(got, []Node{0, 129}) {
		t.Errorf("Members = %v", got)
	}
	if s.Universe() != 130 {
		t.Errorf("Universe = %d", s.Universe())
	}
}

func TestNodeSetOfAndClone(t *testing.T) {
	s := NewNodeSetOf(10, 1, 3, 5)
	c := s.Clone()
	c.Add(7)
	if s.Contains(7) {
		t.Error("Clone is not independent")
	}
	if !c.ContainsAll(s) {
		t.Error("superset check failed")
	}
	if s.ContainsAll(c) {
		t.Error("subset reported as superset")
	}
}

func TestNodeSetAddAllClearFill(t *testing.T) {
	a := NewNodeSetOf(100, 5, 50)
	b := NewNodeSetOf(100, 50, 99)
	a.AddAll(b)
	if a.Len() != 3 {
		t.Errorf("after AddAll Len = %d, want 3", a.Len())
	}
	a.Clear()
	if a.Len() != 0 {
		t.Errorf("after Clear Len = %d", a.Len())
	}
	a.Fill()
	if a.Len() != 100 {
		t.Errorf("after Fill Len = %d", a.Len())
	}
}

func TestNodeSetQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := NewNodeSet(n)
		ref := map[Node]bool{}
		for i := 0; i < 200; i++ {
			v := Node(rng.Intn(n))
			if rng.Intn(2) == 0 {
				s.Add(v)
				ref[v] = true
			} else {
				s.Remove(v)
				delete(ref, v)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for v := 0; v < n; v++ {
			if s.Contains(Node(v)) != ref[Node(v)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
