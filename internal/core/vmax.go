package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ltm"
)

// Vmax computes the exact V_max of Lemma 7: the unique minimum invitation
// set achieving p_max. A node u belongs to V_max iff some simple path from
// a member of N_s to t passes through u with every path node outside
// {s} ∪ N_s — equivalently, iff u appears in t(g) for some type-1
// realization g.
//
// Plain reachability intersection over-counts (a pendant branch can reach
// both sides yet lie on no simple path), so the computation is exact: on
// G′ = G − ({s} ∪ N_s), attach a virtual source z to every boundary node
// (a G′ node with a neighbor in N_s) and take the vertices on simple z–t
// paths via the block-cut tree.
func Vmax(in *ltm.Instance) (*graph.NodeSet, error) {
	g := in.Graph()
	n := g.NumNodes()
	s, t := in.S(), in.T()
	nsSet := in.InitialFriendSet()

	// Induced subgraph G′ without s and N_s.
	keep := make([]bool, n)
	for v := 0; v < n; v++ {
		keep[v] = graph.Node(v) != s && !nsSet.Contains(graph.Node(v))
	}
	sub, orig := g.Subgraph(keep)
	// Locate t and the boundary in the renumbered graph.
	newID := make([]graph.Node, n)
	for i := range newID {
		newID[i] = -1
	}
	for newV, oldV := range orig {
		newID[oldV] = graph.Node(newV)
	}
	tNew := newID[t]
	if tNew < 0 {
		return nil, fmt.Errorf("core: target %d unexpectedly excluded from G'", t)
	}

	// Augment with virtual source z adjacent to every boundary node.
	z := graph.Node(sub.NumNodes())
	b := graph.NewBuilder(sub.NumNodes() + 1)
	for _, e := range sub.Edges() {
		b.AddEdge(e.U, e.V)
	}
	hasBoundary := false
	for newV, oldV := range orig {
		for _, u := range g.Neighbors(oldV) {
			if nsSet.Contains(u) {
				b.AddEdge(z, graph.Node(newV))
				hasBoundary = true
				break
			}
		}
	}
	out := graph.NewNodeSet(n)
	if !hasBoundary {
		// N_s has no links into G′: p_max = 0 and V_max is empty.
		return out, nil
	}
	aug := b.Build()
	bct := graph.NewBlockCutTree(aug)
	mask := bct.VerticesOnSimplePaths(aug.NumNodes(), z, tNew)
	for newV, oldV := range orig {
		if mask[newV] {
			out.Add(oldV)
		}
	}
	// z is not a graph vertex; t is included iff reachable (mask[tNew]).
	if !mask[tNew] {
		// t unreachable from the boundary: p_max = 0, V_max empty.
		return graph.NewNodeSet(n), nil
	}
	return out, nil
}

// VmaxApprox returns the reachability-intersection superset of V_max:
// nodes of G′ that are reachable from the boundary and can reach t.
// It over-counts pendant branches; it exists for documentation, tests and
// as a cheaper upper bound.
func VmaxApprox(in *ltm.Instance) *graph.NodeSet {
	g := in.Graph()
	n := g.NumNodes()
	s, t := in.S(), in.T()
	nsSet := in.InitialFriendSet()
	blocked := func(v graph.Node) bool {
		return v == s || nsSet.Contains(v)
	}
	// Boundary: G′ nodes adjacent to N_s.
	var boundary []graph.Node
	for v := 0; v < n; v++ {
		if blocked(graph.Node(v)) {
			continue
		}
		for _, u := range g.Neighbors(graph.Node(v)) {
			if nsSet.Contains(u) {
				boundary = append(boundary, graph.Node(v))
				break
			}
		}
	}
	fromBoundary := g.Reachable(boundary, blocked)
	toT := g.Reachable([]graph.Node{t}, blocked)
	out := graph.NewNodeSet(n)
	if !fromBoundary[t] {
		return out
	}
	for v := 0; v < n; v++ {
		if fromBoundary[v] && toT[v] && !blocked(graph.Node(v)) {
			out.Add(graph.Node(v))
		}
	}
	return out
}
