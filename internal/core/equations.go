package core

import (
	"errors"
	"fmt"
)

// ErrBadConfig reports invalid RAF parameters.
var ErrBadConfig = errors.New("core: invalid configuration")

// Params holds the solved Equation System 1 quantities (Eqs. 10–13/17).
type Params struct {
	// Eps0 is the relative error allotted to the p_max estimate (Eq. 10).
	Eps0 float64
	// Eps1 is the uniform-deviation error of the realization pool (Eq. 11).
	Eps1 float64
	// Beta is the demand fraction handed to the MSC solve (Eq. 12).
	Beta float64
}

// lhs evaluates the left side of Eq. 13 for a candidate eps1 with the
// coupling eps0 = c·eps1:
//
//	β(1 − ε₁(1+ε₀)) − ε₁(1+ε₀),  β = (α − ε₁(1+ε₀)) / (1 + ε₁(1+ε₀)).
//
// (The paper's Eq. 17 prints α(1+ε₁) inside the first factor — a typo
// inconsistent with Eq. 13, which this implementation follows.)
func lhs(alpha, c, eps1 float64) (value, beta float64, feasible bool) {
	eps0 := c * eps1
	if eps0 >= 1 {
		return 0, 0, false
	}
	q := eps1 * (1 + eps0)
	beta = (alpha - q) / (1 + q)
	if beta <= 0 {
		return 0, beta, false
	}
	return beta*(1-q) - q, beta, true
}

// SolveEquationSystem determines (ε₀, ε₁, β) satisfying Eqs. 12–13 under
// the paper's running-time coupling ε₀ = c·ε₁ (the paper uses c = n;
// Sec. III-C licenses c = |V_max|). It bisects on ε₁: the LHS of Eq. 13
// tends to α as ε₁ → 0⁺ and decreases continuously, so a root at α − ε
// exists and is unique for any ε ∈ (0, α).
func SolveEquationSystem(alpha, eps float64, c float64) (Params, error) {
	if alpha <= 0 || alpha > 1 {
		return Params{}, fmt.Errorf("%w: alpha=%v not in (0,1]", ErrBadConfig, alpha)
	}
	if eps <= 0 || eps >= alpha {
		return Params{}, fmt.Errorf("%w: eps=%v must lie in (0, alpha=%v)", ErrBadConfig, eps, alpha)
	}
	if c < 1 {
		return Params{}, fmt.Errorf("%w: coupling factor c=%v must be ≥ 1", ErrBadConfig, c)
	}
	target := alpha - eps

	// lhs is continuous and strictly decreasing in eps1 with limit α > target
	// at 0⁺. eps1 is capped at just under 1/c to keep eps0 = c·eps1 < 1.
	upper := (1 - 1e-12) / c
	var eps1 float64
	if v, _, ok := lhs(alpha, c, upper); ok && v >= target {
		// The whole feasible range satisfies the target; take the largest
		// eps1 (cheapest l*) — the guarantee only improves.
		eps1 = upper
	} else {
		// Bisect for the root of lhs(eps1) = target in (0, upper): keep lo on
		// the (feasible, above-target) side.
		lo, hi := 0.0, upper
		for i := 0; i < 200; i++ {
			mid := (lo + hi) / 2
			if v, _, ok := lhs(alpha, c, mid); ok && v > target {
				lo = mid
			} else {
				hi = mid
			}
		}
		eps1 = lo
	}
	if eps1 <= 0 {
		// target is within floating noise of alpha; pick the tiniest
		// usable eps1 rather than failing.
		eps1 = 1e-12
	}
	v, beta, ok := lhs(alpha, c, eps1)
	if !ok {
		return Params{}, fmt.Errorf("%w: no feasible (eps0, eps1) for alpha=%v eps=%v c=%v", ErrBadConfig, alpha, eps, c)
	}
	// The bisection keeps lhs ≥ target (up to float noise), so the
	// guarantee f(I*) ≥ (α−ε)p_max holds.
	if v < target-1e-6 {
		return Params{}, fmt.Errorf("%w: equation residual %v too large", ErrBadConfig, target-v)
	}
	return Params{Eps0: c * eps1, Eps1: eps1, Beta: beta}, nil
}
