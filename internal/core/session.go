package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/mc"
	"repro/internal/setcover"
	"repro/internal/snapshot"
)

// Session runs repeated RAF solves on one instance while reusing the
// expensive cross-solve state: the realization pool (grown incrementally,
// never resampled), the exact V_max computation, and the Algorithm 2
// p_max draw ledger (engine.PmaxEstimator — a solve needing a tighter ε₀
// or a bigger budget extends the existing draw sequence instead of
// re-running the stopping rule from scratch). An α-sweep through a
// Session samples the pool exactly once and the p_max stream at most up
// to the tightest ε₀ requested.
//
// The session's seed and worker count govern every solve; Config.Seed and
// Config.Workers are ignored by Session.RAF. Safe for concurrent use.
type Session struct {
	in      *ltm.Instance
	eng     *engine.Engine
	pools   *engine.Session
	pmax    *engine.PmaxEstimator
	seed    int64
	workers int

	mu   sync.Mutex
	vmax *graph.NodeSet // cached V_max; nil until first computed
}

// NewSession returns a session for the instance. Seed fixes all
// randomness; workers bounds sampling parallelism (0 = all CPUs) without
// affecting any result.
func NewSession(in *ltm.Instance, seed int64, workers int) *Session {
	eng := engine.New(in)
	return &Session{
		in:      in,
		eng:     eng,
		pools:   eng.NewSession(seed, workers),
		pmax:    eng.NewPmaxEstimator(seed, workers),
		seed:    seed,
		workers: workers,
	}
}

// Engine returns the session's realization engine (for estimators and
// sampling diagnostics).
func (s *Session) Engine() *engine.Engine { return s.eng }

// RepairTo carries the session's sampled state across a graph delta:
// given the epoch-N+1 instance (same (s, t); see ltm.Instance.ApplyDelta
// / RebindTo) and the delta's dirty node set, it returns a new session
// whose realization pool and p_max ledger adopt every chunk the delta
// left undamaged and resample only the rest — byte-identical to a cold
// session on the new instance, at a fraction of the draw bill (see
// engine.Session.RepairTo). The new session's engine is bound to lin and
// graphFP (both may be zero when the caller keeps no lineage), so stale
// spill blobs restored into it later are adopted and repaired too. The
// receiver is not mutated; the cached V_max is dropped — it is cheap to
// recompute and the delta may have changed it.
func (s *Session) RepairTo(ctx context.Context, in2 *ltm.Instance, lin *engine.Lineage, graphFP uint64, dirty []graph.Node) (*Session, engine.RepairStats, error) {
	ne := engine.New(in2)
	if lin != nil {
		ne.Bind(lin, graphFP)
	}
	pools, st, err := s.pools.RepairTo(ctx, ne, dirty)
	if err != nil {
		return nil, engine.RepairStats{}, err
	}
	pmax, pst, err := s.pmax.RepairTo(ctx, ne, dirty)
	if err != nil {
		return nil, engine.RepairStats{}, err
	}
	st.Add(pst)
	return &Session{
		in:      in2,
		eng:     ne,
		pools:   pools,
		pmax:    pmax,
		seed:    s.seed,
		workers: s.workers,
	}, st, nil
}

// PmaxEstimator returns the session's chunked Algorithm 2 estimator —
// its draw ledger persists across solves, so refinement savings are
// observable through it.
func (s *Session) PmaxEstimator() *engine.PmaxEstimator { return s.pmax }

// Instance returns the session's problem instance.
func (s *Session) Instance() *ltm.Instance { return s.in }

// MemBytes returns the bytes held by the session's cached realization
// pool and regrow tables plus the p_max estimator's draw ledger — the
// sizing input for memory-budgeted eviction of cold sessions.
func (s *Session) MemBytes() int64 { return s.pools.MemBytes() + s.pmax.MemBytes() }

// Pool returns the session's cached realization pool grown to at least l
// draws.
func (s *Session) Pool(ctx context.Context, l int64) (*engine.Pool, error) {
	return s.pools.Pool(ctx, l)
}

// Snapshot serializes the session's cached realization pool followed by
// the p_max estimator's draw ledger (see engine.Session.Snapshot and
// engine.PmaxEstimator.Snapshot), so a restored session reuses both the
// pooled draws and the stopping-rule draws instead of resampling them.
// The cached V_max is not written: it is deterministic in the instance
// and recomputed on demand with identical results.
func (s *Session) Snapshot(w io.Writer) error {
	if err := s.pools.Snapshot(w); err != nil {
		return err
	}
	return s.pmax.Snapshot(w)
}

// peeker is the subset of bufio.Reader Restore uses to detect an
// optional p_max section without consuming stream bytes.
type peeker interface {
	Peek(int) ([]byte, error)
}

// Restore loads a session snapshot into a freshly created session,
// consuming exactly one pool snapshot — plus the p_max section, when one
// follows — from r. The pool snapshot's stream identity must match the
// session's seed; on any mismatch or corruption the session is left cold
// and resamples lazily, with byte-identical results, since pools and the
// estimator ledger are pure functions of (seed, draws). The p_max
// section is optional and best-effort: when r supports Peek (e.g. a
// *bufio.Reader) a missing section is skipped cleanly, and an
// identity-mismatched section leaves only the estimator cold.
func (s *Session) Restore(r io.Reader) error {
	if err := s.pools.Restore(r); err != nil {
		return err
	}
	if p, ok := r.(peeker); ok {
		b, err := p.Peek(8)
		if err != nil || !snapshot.IsPmax(b) {
			return nil // no p_max section; the estimator starts cold
		}
	}
	if err := s.pmax.Restore(r); err != nil {
		// The pool restored fine; an unreadable or mismatched estimator
		// section just means the stopping-rule draws are resampled on the
		// next solve — identically, so the fallback changes no answer.
		s.pmax = s.eng.NewPmaxEstimator(s.seed, s.workers)
	}
	return nil
}

// PoolSize returns the cached pool size (0 before the first solve).
func (s *Session) PoolSize() int64 { return s.pools.Size() }

// Vmax returns the cached exact V_max (Lemma 7) of the instance.
func (s *Session) Vmax() (*graph.NodeSet, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.vmax == nil {
		vm, err := Vmax(s.in)
		if err != nil {
			return nil, err
		}
		s.vmax = vm
	}
	return s.vmax, nil
}

// EstimatePmax returns the Algorithm 2 estimate at accuracy eps0 and
// confidence n under a draw budget (0 = unbounded), through the
// session's chunked estimator: draws already in the ledger are reused,
// so a request no tighter than an earlier one samples nothing, and a
// tighter or better-budgeted request extends the existing draw sequence
// instead of restarting. The result — including whether the budget
// truncated the rule — is a pure function of (seed, eps0, n, maxDraws),
// independent of the worker count and of earlier requests.
func (s *Session) EstimatePmax(ctx context.Context, eps0, n float64, maxDraws int64) (engine.PmaxResult, error) {
	res, err := s.pmax.Estimate(ctx, eps0, n, maxDraws)
	if err != nil {
		if errors.Is(err, mc.ErrZeroEstimate) {
			return res, fmt.Errorf("%w: %v", ErrTargetUnreachable, err)
		}
		return res, err
	}
	return res, nil
}

// poolSizeFromTheory converts the Eq. 16 threshold l* to a draw count.
// The clamp must run BEFORE the float→int64 conversion: converting a
// float64 beyond the int64 range is implementation-defined in Go, and the
// theoretical l* is astronomically large whenever p* is tiny. The
// negated comparison also routes NaN to the clamp.
func poolSizeFromTheory(lTheory float64) int64 {
	if !(lTheory <= math.MaxInt64/2) {
		return math.MaxInt64 / 2
	}
	return int64(math.Ceil(lTheory))
}

// Framework runs Algorithm 3 against the session's cached pool, growing
// it to at least l realizations first.
func (s *Session) Framework(ctx context.Context, beta float64, l int64) (*graph.NodeSet, *engine.Pool, *setcover.Solution, error) {
	pool, err := s.pools.Pool(ctx, l)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: sampling pool: %w", err)
	}
	invited, sol, err := FrameworkFromPool(s.in, beta, pool)
	if err != nil {
		return nil, nil, nil, err
	}
	return invited, pool, sol, nil
}

// RAF runs Algorithm 4 using the session's cached pool, V_max and p_max
// state. cfg.Seed and cfg.Workers are ignored in favor of the session's.
func (s *Session) RAF(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{}

	// Special case α = 1 (Sec. III-C): V_max is the unique minimum
	// invitation set achieving p_max and is computable in polynomial time.
	if cfg.Alpha == 1 {
		vm, err := s.Vmax()
		if err != nil {
			return nil, err
		}
		if vm.Len() == 0 {
			return nil, fmt.Errorf("%w: V_max is empty", ErrTargetUnreachable)
		}
		res.Invited = vm
		res.VmaxSize = vm.Len()
		return res, nil
	}

	// Union-bound dimension: |V_max| by default (Sec. III-C), n when the
	// reduction is disabled.
	dim := s.in.Graph().NumNodes()
	if !cfg.DisableVmaxReduction {
		vm, err := s.Vmax()
		if err != nil {
			return nil, err
		}
		res.VmaxSize = vm.Len()
		if res.VmaxSize == 0 {
			return nil, fmt.Errorf("%w: V_max is empty", ErrTargetUnreachable)
		}
		dim = res.VmaxSize
	}

	// Step 1: solve the equation system with coupling c = dim.
	params, err := SolveEquationSystem(cfg.Alpha, cfg.Eps, float64(dim))
	if err != nil {
		return nil, err
	}
	res.Params = params

	// Step 2: estimate p_max (Algorithm 2) through the session's chunked
	// estimator — a solve needing no more accuracy than an earlier one
	// reuses its draws outright, a tighter one extends them.
	pm, err := s.EstimatePmax(ctx, params.Eps0, cfg.N, cfg.MaxPmaxDraws)
	if err != nil {
		return nil, err
	}
	res.PStar = pm.Estimate
	res.PmaxDraws = pm.Draws
	res.PmaxReused = pm.Reused
	res.PmaxTruncated = pm.Truncated

	// Step 3: size the pool (Eq. 16 with the |V_max| refinement), apply
	// practical caps, and run the framework (Algorithm 3) on the shared
	// pool.
	lTheory, err := mc.RealizationThreshold(params.Eps0, params.Eps1, pm.Estimate, dim, cfg.N)
	if err != nil {
		return nil, err
	}
	res.LTheory = lTheory
	l := poolSizeFromTheory(lTheory)
	if cfg.OverrideL > 0 {
		l = cfg.OverrideL
	} else if cfg.MaxRealizations > 0 && l > cfg.MaxRealizations {
		l = cfg.MaxRealizations
	}

	invited, pool, sol, err := s.Framework(ctx, params.Beta, l)
	if err != nil {
		return nil, err
	}
	res.LUsed = pool.Total()
	res.Invited = invited
	res.PoolType1 = pool.NumType1()
	res.Demand = sol.Demand
	res.Covered = sol.Covered
	return res, nil
}
