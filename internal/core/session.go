package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/mc"
	"repro/internal/setcover"
)

// Session runs repeated RAF solves on one instance while reusing the
// expensive cross-solve state: the realization pool (grown incrementally,
// never resampled), the exact V_max computation, and the Algorithm 2
// p_max estimate (reused whenever a later solve needs no more accuracy
// than already bought). An α-sweep through a Session samples the pool
// exactly once.
//
// The session's seed and worker count govern every solve; Config.Seed and
// Config.Workers are ignored by Session.RAF. Safe for concurrent use.
type Session struct {
	in      *ltm.Instance
	eng     *engine.Engine
	pools   *engine.Session
	seed    int64
	workers int

	mu        sync.Mutex
	vmax      *graph.NodeSet // cached V_max; nil until first computed
	pStar     float64
	pStarEps0 float64 // accuracy of the cached estimate; 0 = no estimate
	pStarN    float64
	pmaxDraws int64
	// pStarTruncated records that the cached estimate hit its draw cap
	// (pStarCap) before the stopping rule converged, so its nominal eps0
	// accuracy was not actually achieved.
	pStarTruncated bool
	pStarCap       int64
}

// NewSession returns a session for the instance. Seed fixes all
// randomness; workers bounds sampling parallelism (0 = all CPUs) without
// affecting any result.
func NewSession(in *ltm.Instance, seed int64, workers int) *Session {
	eng := engine.New(in)
	return &Session{
		in:      in,
		eng:     eng,
		pools:   eng.NewSession(seed, workers),
		seed:    seed,
		workers: workers,
	}
}

// Engine returns the session's realization engine (for estimators and
// sampling diagnostics).
func (s *Session) Engine() *engine.Engine { return s.eng }

// Instance returns the session's problem instance.
func (s *Session) Instance() *ltm.Instance { return s.in }

// MemBytes returns the bytes held by the session's cached realization
// pool and regrow tables — the sizing input for memory-budgeted eviction
// of cold sessions.
func (s *Session) MemBytes() int64 { return s.pools.MemBytes() }

// Pool returns the session's cached realization pool grown to at least l
// draws.
func (s *Session) Pool(ctx context.Context, l int64) (*engine.Pool, error) {
	return s.pools.Pool(ctx, l)
}

// Snapshot serializes the session's cached realization pool (see
// engine.Session.Snapshot). The cached V_max and p_max estimate are not
// written: both are deterministic in the instance and seed, so a
// restored session re-derives them on demand with identical results.
func (s *Session) Snapshot(w io.Writer) error { return s.pools.Snapshot(w) }

// Restore loads a pool snapshot into a freshly created session,
// consuming exactly one snapshot from r. The snapshot's stream identity
// must match the session's seed; on any mismatch or corruption the
// session is left cold and resamples lazily — with byte-identical
// results, since pools are pure functions of (seed, l).
func (s *Session) Restore(r io.Reader) error { return s.pools.Restore(r) }

// PoolSize returns the cached pool size (0 before the first solve).
func (s *Session) PoolSize() int64 { return s.pools.Size() }

// Vmax returns the cached exact V_max (Lemma 7) of the instance.
func (s *Session) Vmax() (*graph.NodeSet, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.vmax == nil {
		vm, err := Vmax(s.in)
		if err != nil {
			return nil, err
		}
		s.vmax = vm
	}
	return s.vmax, nil
}

// estimatePmax returns the Algorithm 2 estimate at accuracy eps0 and
// confidence n, reusing the cached estimate when it is at least as
// tight. A cached estimate whose stopping rule was cut short by its draw
// cap never satisfies a request with a larger (or unbounded) budget —
// its nominal accuracy was not achieved, so it is re-estimated.
func (s *Session) estimatePmax(ctx context.Context, eps0, n float64, maxDraws int64) (float64, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	budgetOK := !s.pStarTruncated ||
		(maxDraws > 0 && s.pStarCap > 0 && s.pStarCap >= maxDraws)
	if s.pStarEps0 > 0 && s.pStarEps0 <= eps0 && s.pStarN >= n && budgetOK {
		return s.pStar, s.pmaxDraws, nil
	}
	pStar, draws, err := EstimatePmax(ctx, s.in, eps0, n, maxDraws, s.seed)
	if err != nil {
		return 0, draws, err
	}
	s.pStar, s.pStarEps0, s.pStarN, s.pmaxDraws = pStar, eps0, n, draws
	s.pStarCap = maxDraws
	s.pStarTruncated = maxDraws > 0 && draws >= maxDraws
	return pStar, draws, nil
}

// poolSizeFromTheory converts the Eq. 16 threshold l* to a draw count.
// The clamp must run BEFORE the float→int64 conversion: converting a
// float64 beyond the int64 range is implementation-defined in Go, and the
// theoretical l* is astronomically large whenever p* is tiny. The
// negated comparison also routes NaN to the clamp.
func poolSizeFromTheory(lTheory float64) int64 {
	if !(lTheory <= math.MaxInt64/2) {
		return math.MaxInt64 / 2
	}
	return int64(math.Ceil(lTheory))
}

// Framework runs Algorithm 3 against the session's cached pool, growing
// it to at least l realizations first.
func (s *Session) Framework(ctx context.Context, beta float64, l int64) (*graph.NodeSet, *engine.Pool, *setcover.Solution, error) {
	pool, err := s.pools.Pool(ctx, l)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: sampling pool: %w", err)
	}
	invited, sol, err := FrameworkFromPool(s.in, beta, pool)
	if err != nil {
		return nil, nil, nil, err
	}
	return invited, pool, sol, nil
}

// RAF runs Algorithm 4 using the session's cached pool, V_max and p_max
// state. cfg.Seed and cfg.Workers are ignored in favor of the session's.
func (s *Session) RAF(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{}

	// Special case α = 1 (Sec. III-C): V_max is the unique minimum
	// invitation set achieving p_max and is computable in polynomial time.
	if cfg.Alpha == 1 {
		vm, err := s.Vmax()
		if err != nil {
			return nil, err
		}
		if vm.Len() == 0 {
			return nil, fmt.Errorf("%w: V_max is empty", ErrTargetUnreachable)
		}
		res.Invited = vm
		res.VmaxSize = vm.Len()
		return res, nil
	}

	// Union-bound dimension: |V_max| by default (Sec. III-C), n when the
	// reduction is disabled.
	dim := s.in.Graph().NumNodes()
	if !cfg.DisableVmaxReduction {
		vm, err := s.Vmax()
		if err != nil {
			return nil, err
		}
		res.VmaxSize = vm.Len()
		if res.VmaxSize == 0 {
			return nil, fmt.Errorf("%w: V_max is empty", ErrTargetUnreachable)
		}
		dim = res.VmaxSize
	}

	// Step 1: solve the equation system with coupling c = dim.
	params, err := SolveEquationSystem(cfg.Alpha, cfg.Eps, float64(dim))
	if err != nil {
		return nil, err
	}
	res.Params = params

	// Step 2: estimate p_max (Algorithm 2), reusing the session cache.
	pStar, draws, err := s.estimatePmax(ctx, params.Eps0, cfg.N, cfg.MaxPmaxDraws)
	if err != nil {
		return nil, err
	}
	res.PStar = pStar
	res.PmaxDraws = draws

	// Step 3: size the pool (Eq. 16 with the |V_max| refinement), apply
	// practical caps, and run the framework (Algorithm 3) on the shared
	// pool.
	lTheory, err := mc.RealizationThreshold(params.Eps0, params.Eps1, pStar, dim, cfg.N)
	if err != nil {
		return nil, err
	}
	res.LTheory = lTheory
	l := poolSizeFromTheory(lTheory)
	if cfg.OverrideL > 0 {
		l = cfg.OverrideL
	} else if cfg.MaxRealizations > 0 && l > cfg.MaxRealizations {
		l = cfg.MaxRealizations
	}

	invited, pool, sol, err := s.Framework(ctx, params.Beta, l)
	if err != nil {
		return nil, err
	}
	res.LUsed = pool.Total()
	res.Invited = invited
	res.PoolType1 = pool.NumType1()
	res.Demand = sol.Demand
	res.Covered = sol.Covered
	return res, nil
}
