// Package core implements the paper's primary contribution: the
// Realization-based Active Friending (RAF) algorithm (Algorithm 4) for the
// Minimum Active Friending problem, together with its ingredients — the
// equation-system solve (Eq. 17), the p_max estimation (Algorithm 2), the
// realization-cover framework (Algorithm 3) and the exact V_max of the
// polynomial α = 1 special case (Lemma 7, Sec. III-C).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/mc"
	"repro/internal/realization"
	"repro/internal/rng"
	"repro/internal/setcover"
)

// ErrTargetUnreachable reports an instance whose p_max is (statistically
// indistinguishable from) zero: no invitation strategy can work.
var ErrTargetUnreachable = errors.New("core: target unreachable (p_max ≈ 0)")

// Config parameterizes the RAF algorithm.
type Config struct {
	// Alpha is the required fraction of p_max (Problem 1); (0, 1].
	Alpha float64
	// Eps is the accuracy slack ε ∈ (0, Alpha): the output guarantees
	// f(I*) ≥ (Alpha−Eps)·p_max with probability ≥ 1 − 2/N.
	Eps float64
	// N controls the success probability 1 − 2/N; the paper's experiments
	// use 100000. Must exceed 2.
	N float64
	// Seed makes the run reproducible.
	Seed int64
	// Workers bounds sampling parallelism; 0 means all CPUs.
	Workers int

	// MaxRealizations caps the pool size l. The theoretical l* (Eq. 16)
	// is astronomically conservative (the paper itself shows in Sec. IV-E
	// that far fewer realizations already saturate quality); 0 means
	// "theory only, no cap" and is advisable only on small instances.
	MaxRealizations int64
	// MaxPmaxDraws caps the stopping-rule sample count of Algorithm 2;
	// 0 means unbounded. When the cap is hit with zero successes the run
	// fails with ErrTargetUnreachable.
	MaxPmaxDraws int64
	// OverrideL, when positive, skips the theoretical sizing entirely and
	// uses exactly this many realizations (the practical regime of
	// Sec. IV-E and Fig. 6). Beta is still derived from the equation
	// system.
	OverrideL int64
	// DisableVmaxReduction, when true, uses n rather than |V_max| as the
	// union-bound dimension (for ablation; Sec. III-C licenses |V_max|).
	DisableVmaxReduction bool
}

func (c *Config) validate() error {
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("%w: Alpha=%v not in (0,1]", ErrBadConfig, c.Alpha)
	}
	if c.Eps <= 0 || c.Eps >= c.Alpha {
		return fmt.Errorf("%w: Eps=%v must lie in (0, Alpha=%v)", ErrBadConfig, c.Eps, c.Alpha)
	}
	if c.N <= 2 {
		return fmt.Errorf("%w: N=%v must exceed 2", ErrBadConfig, c.N)
	}
	if c.MaxRealizations < 0 || c.MaxPmaxDraws < 0 || c.OverrideL < 0 {
		return fmt.Errorf("%w: negative cap", ErrBadConfig)
	}
	return nil
}

// Result is the output of a RAF run, including the diagnostics needed by
// the experiments and by EXPERIMENTS.md.
type Result struct {
	// Invited is the invitation set I*.
	Invited *graph.NodeSet
	// Params holds the solved (ε₀, ε₁, β).
	Params Params
	// PStar is the Algorithm 2 estimate of p_max.
	PStar float64
	// PmaxDraws is the number of stopping-rule samples spent on PStar.
	PmaxDraws int64
	// LTheory is the Eq. 16 threshold l* (possibly +Inf-like huge);
	// LUsed is the pool size actually sampled after caps/overrides.
	LTheory float64
	LUsed   int64
	// PoolType1 is |B_l¹| and Demand is ⌈β·|B_l¹|⌉.
	PoolType1 int
	Demand    int
	// Covered is the number of pooled realizations covered by Invited.
	Covered int
	// VmaxSize is |V_max| (0 when the reduction is disabled).
	VmaxSize int
}

// EstimatePmax runs Algorithm 2: the Dagum et al. stopping rule over
// type-1 realization draws. It returns the estimate and the number of
// draws used.
func EstimatePmax(ctx context.Context, in *ltm.Instance, eps0, n float64, maxDraws int64, seed int64) (float64, int64, error) {
	sp := realization.NewSampler(in)
	r := rng.DeriveRand(seed, 0xA162)
	est, draws, err := mc.StoppingRule(ctx, eps0, n, maxDraws, func() bool {
		return sp.SampleTG(r).Outcome == realization.Type1
	})
	if err != nil {
		if errors.Is(err, mc.ErrZeroEstimate) {
			return 0, draws, fmt.Errorf("%w: %v", ErrTargetUnreachable, err)
		}
		return 0, draws, err
	}
	return est, draws, nil
}

// Framework runs Algorithm 3: sample l realizations, then solve the MSC
// instance (V, {t(g₁), …}, ⌈β·|B_l¹|⌉) with the greedy Chlamtáč-style
// solver. It returns the invitation set and the pool diagnostics.
func Framework(ctx context.Context, in *ltm.Instance, beta float64, l int64, workers int, seed int64) (*graph.NodeSet, *realization.Pool, *setcover.Solution, error) {
	if beta <= 0 || beta > 1 {
		return nil, nil, nil, fmt.Errorf("%w: beta=%v not in (0,1]", ErrBadConfig, beta)
	}
	pool, err := realization.SamplePool(ctx, in, l, workers, seed)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: sampling pool: %w", err)
	}
	if pool.NumType1() == 0 {
		return nil, nil, nil, fmt.Errorf("%w: no type-1 realization in %d draws", ErrTargetUnreachable, l)
	}
	demand := int(math.Ceil(beta * float64(pool.NumType1())))
	if demand < 1 {
		demand = 1
	}
	inst := &setcover.Instance{UniverseSize: in.Graph().NumNodes()}
	inst.Sets = make([][]int32, 0, pool.NumType1())
	for _, path := range pool.Type1 {
		inst.Sets = append(inst.Sets, path)
	}
	sol, err := setcover.Greedy(inst, demand)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: MSC solve: %w", err)
	}
	invited := graph.NewNodeSet(in.Graph().NumNodes())
	for _, v := range sol.Union {
		invited.Add(v)
	}
	return invited, pool, sol, nil
}

// RAF runs Algorithm 4 end to end. With probability ≥ 1 − 2/N (for
// uncapped sampling), f(I*) ≥ (Alpha−Eps)·p_max and |I*|/|I_α| = O(√n)
// (Theorem 1).
func RAF(ctx context.Context, in *ltm.Instance, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{}

	// Special case α = 1 (Sec. III-C): V_max is the unique minimum
	// invitation set achieving p_max and is computable in polynomial time.
	if cfg.Alpha == 1 {
		vm, err := Vmax(in)
		if err != nil {
			return nil, err
		}
		if vm.Len() == 0 {
			return nil, fmt.Errorf("%w: V_max is empty", ErrTargetUnreachable)
		}
		res.Invited = vm
		res.VmaxSize = vm.Len()
		return res, nil
	}

	// Union-bound dimension: |V_max| by default (Sec. III-C), n when the
	// reduction is disabled.
	dim := in.Graph().NumNodes()
	if !cfg.DisableVmaxReduction {
		vm, err := Vmax(in)
		if err != nil {
			return nil, err
		}
		res.VmaxSize = vm.Len()
		if res.VmaxSize == 0 {
			return nil, fmt.Errorf("%w: V_max is empty", ErrTargetUnreachable)
		}
		dim = res.VmaxSize
	}

	// Step 1: solve the equation system with coupling c = dim.
	params, err := SolveEquationSystem(cfg.Alpha, cfg.Eps, float64(dim))
	if err != nil {
		return nil, err
	}
	res.Params = params

	// Step 2: estimate p_max (Algorithm 2).
	pStar, draws, err := EstimatePmax(ctx, in, params.Eps0, cfg.N, cfg.MaxPmaxDraws, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res.PStar = pStar
	res.PmaxDraws = draws

	// Step 3: size the pool (Eq. 16 with the |V_max| refinement), apply
	// practical caps, and run the framework (Algorithm 3).
	lTheory, err := mc.RealizationThreshold(params.Eps0, params.Eps1, pStar, dim, cfg.N)
	if err != nil {
		return nil, err
	}
	res.LTheory = lTheory
	l := int64(math.Ceil(lTheory))
	if lTheory > math.MaxInt64/2 {
		l = math.MaxInt64 / 2
	}
	if cfg.OverrideL > 0 {
		l = cfg.OverrideL
	} else if cfg.MaxRealizations > 0 && l > cfg.MaxRealizations {
		l = cfg.MaxRealizations
	}
	res.LUsed = l

	invited, pool, sol, err := Framework(ctx, in, params.Beta, l, cfg.Workers, rng.Derive(cfg.Seed, 0xF4A3))
	if err != nil {
		return nil, err
	}
	res.Invited = invited
	res.PoolType1 = pool.NumType1()
	res.Demand = int(math.Ceil(params.Beta * float64(pool.NumType1())))
	res.Covered = sol.Covered
	return res, nil
}
