// Package core implements the paper's primary contribution: the
// Realization-based Active Friending (RAF) algorithm (Algorithm 4) for the
// Minimum Active Friending problem, together with its ingredients — the
// equation-system solve (Eq. 17), the p_max estimation (Algorithm 2), the
// realization-cover framework (Algorithm 3) and the exact V_max of the
// polynomial α = 1 special case (Lemma 7, Sec. III-C).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/mc"
	"repro/internal/setcover"
)

// ErrTargetUnreachable reports an instance whose p_max is (statistically
// indistinguishable from) zero: no invitation strategy can work.
var ErrTargetUnreachable = errors.New("core: target unreachable (p_max ≈ 0)")

// Config parameterizes the RAF algorithm.
type Config struct {
	// Alpha is the required fraction of p_max (Problem 1); (0, 1].
	Alpha float64
	// Eps is the accuracy slack ε ∈ (0, Alpha): the output guarantees
	// f(I*) ≥ (Alpha−Eps)·p_max with probability ≥ 1 − 2/N.
	Eps float64
	// N controls the success probability 1 − 2/N; the paper's experiments
	// use 100000. Must exceed 2.
	N float64
	// Seed makes the run reproducible.
	Seed int64
	// Workers bounds sampling parallelism; 0 means all CPUs.
	Workers int

	// MaxRealizations caps the pool size l. The theoretical l* (Eq. 16)
	// is astronomically conservative (the paper itself shows in Sec. IV-E
	// that far fewer realizations already saturate quality); 0 means
	// "theory only, no cap" and is advisable only on small instances.
	MaxRealizations int64
	// MaxPmaxDraws caps the stopping-rule sample count of Algorithm 2;
	// 0 means unbounded. When the cap is hit with zero successes the run
	// fails with ErrTargetUnreachable.
	MaxPmaxDraws int64
	// OverrideL, when positive, skips the theoretical sizing entirely and
	// uses exactly this many realizations (the practical regime of
	// Sec. IV-E and Fig. 6). Beta is still derived from the equation
	// system.
	OverrideL int64
	// DisableVmaxReduction, when true, uses n rather than |V_max| as the
	// union-bound dimension (for ablation; Sec. III-C licenses |V_max|).
	DisableVmaxReduction bool
}

func (c *Config) validate() error {
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("%w: Alpha=%v not in (0,1]", ErrBadConfig, c.Alpha)
	}
	if c.Eps <= 0 || c.Eps >= c.Alpha {
		return fmt.Errorf("%w: Eps=%v must lie in (0, Alpha=%v)", ErrBadConfig, c.Eps, c.Alpha)
	}
	if c.N <= 2 {
		return fmt.Errorf("%w: N=%v must exceed 2", ErrBadConfig, c.N)
	}
	if c.MaxRealizations < 0 || c.MaxPmaxDraws < 0 || c.OverrideL < 0 {
		return fmt.Errorf("%w: negative cap", ErrBadConfig)
	}
	return nil
}

// Result is the output of a RAF run, including the diagnostics needed by
// the experiments and by EXPERIMENTS.md.
type Result struct {
	// Invited is the invitation set I*.
	Invited *graph.NodeSet
	// Params holds the solved (ε₀, ε₁, β).
	Params Params
	// PStar is the Algorithm 2 estimate of p_max.
	PStar float64
	// PmaxDraws is the number of stopping-rule draws PStar consumed.
	// PmaxReused counts how many of them were already in the session's
	// estimator ledger from earlier solves (the refinement win), and
	// PmaxTruncated reports that the MaxPmaxDraws budget cut the rule
	// short of its nominal accuracy.
	PmaxDraws     int64
	PmaxReused    int64
	PmaxTruncated bool
	// LTheory is the Eq. 16 threshold l* (possibly +Inf-like huge);
	// LUsed is the pool size actually used after caps/overrides. A
	// Session serves exactly this many draws even when its cache has
	// grown larger, so the result is independent of earlier solves.
	LTheory float64
	LUsed   int64
	// PoolType1 is |B_l¹| and Demand is ⌈β·|B_l¹|⌉ (surfaced from the
	// set-cover solution, which is the single place it is computed).
	PoolType1 int
	Demand    int
	// Covered is the number of pooled realizations covered by Invited.
	Covered int
	// VmaxSize is |V_max| (0 when the reduction is disabled).
	VmaxSize int
}

// EstimatePmax runs Algorithm 2: the Dagum et al. stopping rule over
// type-1 realization draws, sampled in worker-parallel chunks through
// engine.PmaxEstimator (the result is a pure function of the seed). It
// returns the estimate and the number of draws the rule consumed. For
// repeated or refined estimates on one instance, use Session — its
// estimator retains the draw ledger across solves.
func EstimatePmax(ctx context.Context, in *ltm.Instance, eps0, n float64, maxDraws int64, seed int64) (float64, int64, error) {
	res, err := engine.New(in).NewPmaxEstimator(seed, 0).Estimate(ctx, eps0, n, maxDraws)
	if err != nil {
		if errors.Is(err, mc.ErrZeroEstimate) {
			return 0, res.Draws, fmt.Errorf("%w: %v", ErrTargetUnreachable, err)
		}
		return 0, res.Draws, err
	}
	return res.Estimate, res.Draws, nil
}

// FrameworkFromPool runs the solve half of Algorithm 3 on an existing
// realization pool: solve the MSC instance (V, {t(g₁), …}, ⌈β·|B_l¹|⌉)
// with the greedy Chlamtáč-style solver against the pool's cached
// set-cover family, so repeated solves on one pool (α/β sweeps, server
// traffic) fold and index the paths exactly once and run rebuild-free.
// The demand is computed here once and surfaced as Solution.Demand.
func FrameworkFromPool(in *ltm.Instance, beta float64, pool *engine.Pool) (*graph.NodeSet, *setcover.Solution, error) {
	if beta <= 0 || beta > 1 {
		return nil, nil, fmt.Errorf("%w: beta=%v not in (0,1]", ErrBadConfig, beta)
	}
	if pool.NumType1() == 0 {
		return nil, nil, fmt.Errorf("%w: no type-1 realization in %d draws", ErrTargetUnreachable, pool.Total())
	}
	demand := int(math.Ceil(beta * float64(pool.NumType1())))
	if demand < 1 {
		demand = 1
	}
	fam, err := pool.Family()
	if err != nil {
		return nil, nil, fmt.Errorf("core: MSC family: %w", err)
	}
	sol, err := fam.Solve(demand)
	if err != nil {
		return nil, nil, fmt.Errorf("core: MSC solve: %w", err)
	}
	invited := graph.NewNodeSet(in.Graph().NumNodes())
	for _, v := range sol.Union {
		invited.Add(v)
	}
	return invited, sol, nil
}

// Framework runs Algorithm 3: sample l realizations through the engine,
// then solve the MSC instance. It returns the invitation set and the pool
// diagnostics. One-shot; use Session.Framework to reuse pools.
func Framework(ctx context.Context, in *ltm.Instance, beta float64, l int64, workers int, seed int64) (*graph.NodeSet, *engine.Pool, *setcover.Solution, error) {
	if beta <= 0 || beta > 1 {
		return nil, nil, nil, fmt.Errorf("%w: beta=%v not in (0,1]", ErrBadConfig, beta)
	}
	pool, err := engine.New(in).SamplePool(ctx, l, workers, seed)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: sampling pool: %w", err)
	}
	invited, sol, err := FrameworkFromPool(in, beta, pool)
	if err != nil {
		return nil, nil, nil, err
	}
	return invited, pool, sol, nil
}

// RAF runs Algorithm 4 end to end. With probability ≥ 1 − 2/N (for
// uncapped sampling), f(I*) ≥ (Alpha−Eps)·p_max and |I*|/|I_α| = O(√n)
// (Theorem 1). Results are deterministic for a fixed cfg.Seed regardless
// of cfg.Workers. For repeated solves on one instance (an α-sweep, say),
// a Session reuses the realization pool across calls.
func RAF(ctx context.Context, in *ltm.Instance, cfg Config) (*Result, error) {
	return NewSession(in, cfg.Seed, cfg.Workers).RAF(ctx, cfg)
}
