package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
)

func TestSolveEquationSystem(t *testing.T) {
	for _, tc := range []struct {
		alpha, eps, c float64
	}{
		{0.1, 0.01, 100},
		{0.3, 0.05, 1000},
		{0.5, 0.1, 7},
		{0.9, 0.3, 10000},
	} {
		p, err := SolveEquationSystem(tc.alpha, tc.eps, tc.c)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if p.Eps0 <= 0 || p.Eps0 >= 1 || p.Eps1 <= 0 || p.Eps1 >= 1 {
			t.Errorf("%+v: eps out of range: %+v", tc, p)
		}
		if math.Abs(p.Eps0-tc.c*p.Eps1) > 1e-9 {
			t.Errorf("%+v: coupling violated: %+v", tc, p)
		}
		if p.Beta <= 0 || p.Beta > tc.alpha {
			t.Errorf("%+v: beta=%v outside (0, alpha]", tc, p.Beta)
		}
		// Eq. 13 must hold with LHS ≥ alpha − eps (up to noise).
		v, _, ok := lhs(tc.alpha, tc.c, p.Eps1)
		if !ok {
			t.Errorf("%+v: solved point infeasible", tc)
		}
		if v < tc.alpha-tc.eps-1e-6 {
			t.Errorf("%+v: LHS %v < target %v", tc, v, tc.alpha-tc.eps)
		}
	}
}

func TestSolveEquationSystemValidation(t *testing.T) {
	cases := []struct{ alpha, eps, c float64 }{
		{0, 0.01, 10},
		{1.2, 0.01, 10},
		{0.1, 0, 10},
		{0.1, 0.1, 10}, // eps >= alpha
		{0.1, 0.01, 0.5},
	}
	for _, tc := range cases {
		if _, err := SolveEquationSystem(tc.alpha, tc.eps, tc.c); !errors.Is(err, ErrBadConfig) {
			t.Errorf("SolveEquationSystem(%v,%v,%v): err = %v, want ErrBadConfig", tc.alpha, tc.eps, tc.c, err)
		}
	}
}

func TestEstimatePmaxLine(t *testing.T) {
	// Line 0-1-2-3: p_max = 1/2 exactly (see realization tests).
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	est, draws, err := EstimatePmax(context.Background(), in, 0.05, 1000, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-0.5) > 0.05 {
		t.Errorf("p*max = %v, want ~0.5", est)
	}
	if draws <= 0 {
		t.Error("no draws recorded")
	}
}

func TestEstimatePmaxUnreachable(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(3, 4)
	g := b.Build()
	in := mustInstance(t, g, 0, 4)
	_, _, err := EstimatePmax(context.Background(), in, 0.1, 100, 2000, 7)
	if !errors.Is(err, ErrTargetUnreachable) {
		t.Errorf("err = %v, want ErrTargetUnreachable", err)
	}
}

func TestFrameworkLine(t *testing.T) {
	// Line 0..3: the only type-1 path is [3 2], so the framework must
	// invite exactly {2,3}.
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	invited, pool, sol, err := Framework(context.Background(), in, 0.9, 20000, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := invited.Members(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("invited = %v, want [2 3]", got)
	}
	if pool.NumType1() == 0 || sol.Covered < int(0.9*float64(pool.NumType1())) {
		t.Errorf("coverage %d of %d type-1", sol.Covered, pool.NumType1())
	}
}

func TestFrameworkValidation(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	if _, _, _, err := Framework(context.Background(), in, 0, 100, 1, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("beta=0: err = %v", err)
	}
	if _, _, _, err := Framework(context.Background(), in, 1.1, 100, 1, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("beta>1: err = %v", err)
	}
}

func TestFrameworkUnreachable(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(3, 4)
	g := b.Build()
	in := mustInstance(t, g, 0, 4)
	if _, _, _, err := Framework(context.Background(), in, 0.5, 500, 1, 1); !errors.Is(err, ErrTargetUnreachable) {
		t.Errorf("err = %v, want ErrTargetUnreachable", err)
	}
}

func TestRAFConfigValidation(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	ctx := context.Background()
	bad := []Config{
		{Alpha: 0, Eps: 0.01, N: 100},
		{Alpha: 0.5, Eps: 0, N: 100},
		{Alpha: 0.5, Eps: 0.6, N: 100},
		{Alpha: 0.5, Eps: 0.1, N: 2},
		{Alpha: 0.5, Eps: 0.1, N: 100, OverrideL: -1},
	}
	for i, cfg := range bad {
		if _, err := RAF(ctx, in, cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestRAFAlphaOneReturnsVmax(t *testing.T) {
	g := randomConnected(55, 18, 22)
	s, tt := graph.Node(0), graph.Node(17)
	if g.HasEdge(s, tt) {
		t.Skip("adjacent pair")
	}
	in := mustInstance(t, g, s, tt)
	res, err := RAF(context.Background(), in, Config{Alpha: 1, Eps: 0.5, N: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := Vmax(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Invited.ContainsAll(vm) || !vm.ContainsAll(res.Invited) {
		t.Errorf("alpha=1 result %v != V_max %v", res.Invited.Members(), vm.Members())
	}
	if res.VmaxSize != vm.Len() {
		t.Errorf("VmaxSize = %d, want %d", res.VmaxSize, vm.Len())
	}
}

// TestRAFEndToEndLine: on the 4-line, RAF must return {2,3} and report a
// sensible diagnostic trail.
func TestRAFEndToEndLine(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	cfg := Config{
		Alpha: 0.5, Eps: 0.1, N: 50,
		Seed: 3, Workers: 2,
		MaxRealizations: 50000, MaxPmaxDraws: 200000,
	}
	res, err := RAF(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Invited.Members(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("invited = %v, want [2 3]", got)
	}
	if math.Abs(res.PStar-0.5) > 0.1 {
		t.Errorf("PStar = %v, want ~0.5", res.PStar)
	}
	if res.LTheory <= 0 || res.LUsed <= 0 || res.LUsed > 50000 {
		t.Errorf("pool sizing: theory=%v used=%d", res.LTheory, res.LUsed)
	}
	if res.Covered < res.Demand {
		t.Errorf("covered %d < demand %d", res.Covered, res.Demand)
	}
	if res.VmaxSize != 2 {
		t.Errorf("VmaxSize = %d, want 2", res.VmaxSize)
	}
}

// TestRAFMeetsGuarantee: on random small graphs, f(I_RAF) measured by an
// independent estimator must reach (alpha − eps)·p_max.
func TestRAFMeetsGuarantee(t *testing.T) {
	ctx := context.Background()
	checked := 0
	for seed := int64(1); seed <= 12 && checked < 4; seed++ {
		g := randomConnected(seed*13, 24, 30)
		s, tt := graph.Node(0), graph.Node(23)
		if g.HasEdge(s, tt) {
			continue
		}
		in := mustInstance(t, g, s, tt)
		// Measure p_max independently.
		all := graph.NewNodeSet(g.NumNodes())
		all.Fill()
		pmax, err := engine.New(in).EstimateF(ctx, all, 200000, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		if pmax < 0.02 {
			continue // uninteresting pair, mirrors the paper's filter
		}
		checked++
		alpha, eps := 0.3, 0.05
		res, err := RAF(ctx, in, Config{
			Alpha: alpha, Eps: eps, N: 50, Seed: seed,
			Workers: 4, MaxRealizations: 30000, MaxPmaxDraws: 500000,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fRAF, err := engine.New(in).EstimateF(ctx, res.Invited, 200000, 4, seed+999)
		if err != nil {
			t.Fatal(err)
		}
		// Allow Monte-Carlo slack on top of the guarantee.
		if fRAF < (alpha-eps)*pmax-0.02 {
			t.Errorf("seed %d: f(I_RAF)=%v < (α−ε)p_max=%v (pmax=%v, |I|=%d)",
				seed, fRAF, (alpha-eps)*pmax, pmax, res.Invited.Len())
		}
		// The invitation set must always contain the target.
		if !res.Invited.Contains(tt) {
			t.Errorf("seed %d: target not invited", seed)
		}
		// And be a subset of V_max.
		vm, err := Vmax(in)
		if err != nil {
			t.Fatal(err)
		}
		if !vm.ContainsAll(res.Invited) {
			t.Errorf("seed %d: invited set escapes V_max", seed)
		}
	}
	if checked == 0 {
		t.Skip("no usable random pair")
	}
}

// TestRAFOverrideL pins the practical regime: the pool size must equal the
// override.
func TestRAFOverrideL(t *testing.T) {
	g := line(5)
	in := mustInstance(t, g, 0, 4)
	res, err := RAF(context.Background(), in, Config{
		Alpha: 0.4, Eps: 0.1, N: 50, Seed: 2, OverrideL: 7777, MaxPmaxDraws: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LUsed != 7777 {
		t.Errorf("LUsed = %d, want 7777", res.LUsed)
	}
}

// TestRAFDeterministic: identical configs yield identical invitation sets.
func TestRAFDeterministic(t *testing.T) {
	g := randomConnected(101, 20, 24)
	s, tt := graph.Node(0), graph.Node(19)
	if g.HasEdge(s, tt) {
		t.Skip("adjacent pair")
	}
	in := mustInstance(t, g, s, tt)
	cfg := Config{Alpha: 0.3, Eps: 0.05, N: 50, Seed: 77, Workers: 3,
		MaxRealizations: 20000, MaxPmaxDraws: 300000}
	ctx := context.Background()
	r1, err := RAF(ctx, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RAF(ctx, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := r1.Invited.Members(), r2.Invited.Members()
	if len(m1) != len(m2) {
		t.Fatalf("sizes differ: %d vs %d", len(m1), len(m2))
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("invitation sets differ across identical runs")
		}
	}
}

func TestRAFUnreachableTarget(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(4, 5)
	g := b.Build()
	in := mustInstance(t, g, 0, 5)
	_, err := RAF(context.Background(), in, Config{
		Alpha: 0.5, Eps: 0.1, N: 50, MaxPmaxDraws: 1000,
	})
	if !errors.Is(err, ErrTargetUnreachable) {
		t.Errorf("err = %v, want ErrTargetUnreachable", err)
	}
	_, err = RAF(context.Background(), in, Config{Alpha: 1, Eps: 0.5, N: 50})
	if !errors.Is(err, ErrTargetUnreachable) {
		t.Errorf("alpha=1 err = %v, want ErrTargetUnreachable", err)
	}
}

func TestRAFCancellation(t *testing.T) {
	g := line(6)
	in := mustInstance(t, g, 0, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RAF(ctx, in, Config{Alpha: 0.5, Eps: 0.1, N: 50})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestRAFDisableVmaxReduction exercises the ablation path: with the
// reduction disabled the union-bound dimension is n, so the theoretical
// pool is larger, but results remain valid.
func TestRAFDisableVmaxReduction(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	ctx := context.Background()
	base := Config{Alpha: 0.5, Eps: 0.1, N: 50, Seed: 4,
		MaxRealizations: 20000, MaxPmaxDraws: 100000}
	with, err := RAF(ctx, in, base)
	if err != nil {
		t.Fatal(err)
	}
	abl := base
	abl.DisableVmaxReduction = true
	without, err := RAF(ctx, in, abl)
	if err != nil {
		t.Fatal(err)
	}
	if without.VmaxSize != 0 {
		t.Errorf("ablation should not compute V_max, got size %d", without.VmaxSize)
	}
	if without.LTheory <= with.LTheory {
		t.Errorf("n-dimension l* (%v) should exceed |V_max|-dimension l* (%v)",
			without.LTheory, with.LTheory)
	}
	if got := without.Invited.Members(); len(got) != 2 {
		t.Errorf("ablation invited = %v", got)
	}
}
