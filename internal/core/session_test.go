package core

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/ltm"
	"repro/internal/mc"
)

// sessionTestInstance returns a random instance with a comfortably
// positive p_max.
func sessionTestInstance(t *testing.T) *ltm.Instance {
	t.Helper()
	g := randomConnected(13, 24, 30)
	if g.HasEdge(0, 23) {
		t.Skip("adjacent s,t")
	}
	return mustInstance(t, g, 0, 23)
}

// TestSessionAlphaSweepSamplesPoolOnce is the Session's headline
// guarantee: an α-sweep at a fixed pool size draws the realization pool
// exactly once, verified by counting sampler invocations on the engine.
func TestSessionAlphaSweepSamplesPoolOnce(t *testing.T) {
	in := sessionTestInstance(t)
	ctx := context.Background()
	sess := NewSession(in, 5, 4)
	cfg := Config{
		Eps: 0.01, N: 1000, OverrideL: 10000, MaxPmaxDraws: 500000,
	}
	var afterFirst int64
	for i, alpha := range []float64{0.05, 0.1, 0.2, 0.35} {
		cfg.Alpha = alpha
		res, err := sess.RAF(ctx, cfg)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if res.LUsed != 10000 {
			t.Errorf("alpha=%v: LUsed = %d, want 10000", alpha, res.LUsed)
		}
		if i == 0 {
			afterFirst = sess.Engine().PoolDraws()
			if afterFirst != 10000 {
				t.Errorf("first solve drew %d pool samples, want 10000", afterFirst)
			}
		} else if got := sess.Engine().PoolDraws(); got != afterFirst {
			t.Errorf("alpha=%v resampled the pool: draws %d → %d", alpha, afterFirst, got)
		}
	}
}

// TestSessionMatchesOneShotRAF: a session solve and a free RAF call with
// the same seed produce identical results (the free path is the session
// path).
func TestSessionMatchesOneShotRAF(t *testing.T) {
	in := sessionTestInstance(t)
	ctx := context.Background()
	cfg := Config{
		Alpha: 0.3, Eps: 0.05, N: 100, Seed: 9,
		MaxRealizations: 20000, MaxPmaxDraws: 500000,
	}
	free, err := RAF(ctx, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(in, 9, 4).RAF(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !free.Invited.ContainsAll(sess.Invited) || !sess.Invited.ContainsAll(free.Invited) {
		t.Errorf("invited sets differ: %v vs %v", free.Invited.Members(), sess.Invited.Members())
	}
	if free.PoolType1 != sess.PoolType1 || free.Covered != sess.Covered || free.Demand != sess.Demand {
		t.Errorf("diagnostics differ: %+v vs %+v", free, sess)
	}
}

// TestRAFWorkerCountIndependence: solve results are byte-identical across
// worker counts for a fixed seed — the engine's chunked sampling makes
// the pool, and hence the greedy solve, independent of parallelism.
func TestRAFWorkerCountIndependence(t *testing.T) {
	in := sessionTestInstance(t)
	ctx := context.Background()
	base := Config{
		Alpha: 0.3, Eps: 0.05, N: 100, Seed: 21,
		MaxRealizations: 20000, MaxPmaxDraws: 500000, Workers: 1,
	}
	ref, err := RAF(ctx, in, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg := base
		cfg.Workers = workers
		res, err := RAF(ctx, in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.Invited.ContainsAll(res.Invited) || !res.Invited.ContainsAll(ref.Invited) {
			t.Errorf("workers=%d: invited %v, want %v", workers, res.Invited.Members(), ref.Invited.Members())
		}
		if res.PoolType1 != ref.PoolType1 || res.Covered != ref.Covered ||
			res.Demand != ref.Demand || res.PStar != ref.PStar || res.LUsed != ref.LUsed {
			t.Errorf("workers=%d: diagnostics differ: %+v vs %+v", workers, res, ref)
		}
	}
}

// TestDemandSurfacedFromSolution: Result.Demand equals ⌈β·|B_l¹|⌉ as
// computed once inside the framework and carried via the set-cover
// solution.
func TestDemandSurfacedFromSolution(t *testing.T) {
	in := sessionTestInstance(t)
	res, err := RAF(context.Background(), in, Config{
		Alpha: 0.3, Eps: 0.05, N: 100, Seed: 3,
		MaxRealizations: 10000, MaxPmaxDraws: 500000,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(res.Params.Beta * float64(res.PoolType1)))
	if want < 1 {
		want = 1
	}
	if res.Demand != want {
		t.Errorf("Demand = %d, want %d", res.Demand, want)
	}
	if res.Covered < res.Demand {
		t.Errorf("Covered %d below demand %d", res.Covered, res.Demand)
	}
}

// TestSessionPoolGrowthAcrossAlphas: with theoretical sizing capped at
// different MaxRealizations, a later larger request grows the cached pool
// rather than resampling it.
func TestSessionPoolGrowthAcrossAlphas(t *testing.T) {
	in := sessionTestInstance(t)
	ctx := context.Background()
	sess := NewSession(in, 7, 2)
	cfg := Config{Alpha: 0.3, Eps: 0.05, N: 100, MaxPmaxDraws: 500000}

	cfg.OverrideL = 5000
	if _, err := sess.RAF(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	drawsSmall := sess.Engine().PoolDraws()
	cfg.OverrideL = 15000
	res, err := sess.RAF(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LUsed != 15000 {
		t.Errorf("LUsed = %d, want 15000", res.LUsed)
	}
	grown := sess.Engine().PoolDraws() - drawsSmall
	// Growth resamples at most the trailing partial chunk on top of the
	// missing 10000 draws.
	if grown > 10000+2048 {
		t.Errorf("growth drew %d samples, want ≤ %d", grown, 10000+2048)
	}
}

// TestSessionPmaxTruncatedNotReused: a p_max estimate cut short by its
// draw cap must not satisfy a later solve with a larger budget — the
// cached estimate never reached its nominal accuracy.
func TestSessionPmaxTruncatedNotReused(t *testing.T) {
	in := sessionTestInstance(t)
	ctx := context.Background()
	sess := NewSession(in, 5, 2)
	cfg := Config{Alpha: 0.3, Eps: 0.05, N: 100, OverrideL: 2000}

	cfg.MaxPmaxDraws = 50 // far below the stopping-rule threshold
	first, err := sess.RAF(ctx, cfg)
	if err != nil {
		t.Skipf("tiny budget found no successes: %v", err)
	}
	if first.PmaxDraws != 50 {
		t.Fatalf("PmaxDraws = %d, want truncation at 50", first.PmaxDraws)
	}
	cfg.MaxPmaxDraws = 500000
	second, err := sess.RAF(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.PmaxDraws <= 50 {
		t.Errorf("truncated estimate reused: PmaxDraws = %d", second.PmaxDraws)
	}
	// And now that the rule converged, an equal-budget solve does reuse it.
	third, err := sess.RAF(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if third.PmaxDraws != second.PmaxDraws || third.PStar != second.PStar {
		t.Errorf("converged estimate not reused: %v/%d vs %v/%d",
			third.PStar, third.PmaxDraws, second.PStar, second.PmaxDraws)
	}
}

// pmaxTestInstance is sessionTestInstance on a seed whose (0,23) pair is
// never adjacent, so the estimator tests cannot skip.
func pmaxTestInstance(t *testing.T) *ltm.Instance {
	t.Helper()
	return mustInstance(t, randomConnected(1, 24, 30), 0, 23)
}

// TestSessionPmaxRefinementReusesDraws: a solve needing a tighter ε₀
// (here: a larger α tightens ε₀ through the equation system is not
// guaranteed, so the estimator is driven directly) extends the session's
// existing stopping-rule draw sequence instead of restarting, and the
// refined estimate is identical to a cold session's estimate at the
// tight accuracy.
func TestSessionPmaxRefinementReusesDraws(t *testing.T) {
	in := pmaxTestInstance(t)
	ctx := context.Background()

	cold := NewSession(in, 5, 4)
	coldRes, err := cold.EstimatePmax(ctx, 0.1, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}

	staged := NewSession(in, 5, 1)
	coarse, err := staged.EstimatePmax(ctx, 0.3, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := staged.EstimatePmax(ctx, 0.1, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Estimate != coldRes.Estimate || refined.Draws != coldRes.Draws {
		t.Errorf("refined %v/%d != cold %v/%d", refined.Estimate, refined.Draws, coldRes.Estimate, coldRes.Draws)
	}
	if refined.Reused == 0 || refined.Reused < coarse.Draws {
		t.Errorf("refinement reused %d draws, want at least the coarse pass's %d", refined.Reused, coarse.Draws)
	}
	if refined.Sampled >= coldRes.Sampled {
		t.Errorf("refinement sampled %d draws, cold sampled %d — prior draws were thrown away",
			refined.Sampled, coldRes.Sampled)
	}
	// RAF's step 2 runs through the same ledger: a solve after the tight
	// estimate samples nothing new for p_max.
	before := staged.Engine().PmaxDraws()
	res, err := staged.RAF(ctx, Config{Alpha: 0.3, Eps: 0.05, N: 100, OverrideL: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if got := staged.Engine().PmaxDraws(); got != before && res.PmaxReused == 0 {
		t.Errorf("post-estimate solve resampled p_max draws: ledger %d → %d, reused %d", before, got, res.PmaxReused)
	}
}

// TestSessionSnapshotCarriesPmaxState: Snapshot/Restore round-trips the
// estimator ledger alongside the pool, so a restored session's solve
// reuses the stopping-rule draws; a seed-mismatched snapshot leaves the
// whole session cold with identical answers.
func TestSessionSnapshotCarriesPmaxState(t *testing.T) {
	in := pmaxTestInstance(t)
	ctx := context.Background()
	cfg := Config{Alpha: 0.3, Eps: 0.05, N: 100, OverrideL: 3000, MaxPmaxDraws: 500000}

	writer := NewSession(in, 7, 2)
	want, err := writer.RAF(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writer.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	loaded := NewSession(in, 7, 4)
	if err := loaded.Restore(bufio.NewReader(bytes.NewReader(buf.Bytes()))); err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.PmaxEstimator().Draws(), writer.PmaxEstimator().Draws(); got != want {
		t.Fatalf("restored estimator ledger %d, want %d", got, want)
	}
	if got := loaded.Engine().PmaxDraws(); got != 0 {
		t.Errorf("restore charged %d p_max draws to the engine ledger", got)
	}
	got, err := loaded.RAF(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.PStar != want.PStar || got.PmaxDraws != want.PmaxDraws {
		t.Errorf("restored solve p* = %v/%d, want %v/%d", got.PStar, got.PmaxDraws, want.PStar, want.PmaxDraws)
	}
	if got.PmaxReused != got.PmaxDraws {
		t.Errorf("restored solve reused %d of %d p_max draws, want all of them", got.PmaxReused, got.PmaxDraws)
	}
	if loaded.Engine().PmaxDraws() != 0 {
		t.Errorf("restored solve sampled %d p_max draws despite the warm ledger", loaded.Engine().PmaxDraws())
	}

	// Mismatched identity: the restore fails, the session stays cold, and
	// answers still match — resampling is the fallback, not a failure.
	mismatched := NewSession(in, 8, 2)
	if err := mismatched.Restore(bufio.NewReader(bytes.NewReader(buf.Bytes()))); err == nil {
		t.Fatal("seed-mismatched snapshot adopted")
	}
	if mismatched.PoolSize() != 0 || mismatched.PmaxEstimator().Draws() != 0 {
		t.Fatal("mismatched restore left state behind")
	}
	reference, err := NewSession(in, 8, 2).RAF(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldAgain, err := mismatched.RAF(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if coldAgain.PStar != reference.PStar || coldAgain.PmaxDraws != reference.PmaxDraws {
		t.Errorf("post-mismatch solve diverged: %v/%d vs %v/%d",
			coldAgain.PStar, coldAgain.PmaxDraws, reference.PStar, reference.PmaxDraws)
	}
}

// TestSessionPmaxConcurrentEstimates hammers one session's estimator
// from many goroutines at mixed accuracies (alongside RAF solves that
// share the ledger): run under -race in CI. Every answer must equal the
// sequential answer at its accuracy — concurrency is a scheduling event,
// never a correctness one.
func TestSessionPmaxConcurrentEstimates(t *testing.T) {
	in := pmaxTestInstance(t)
	ctx := context.Background()
	epss := []float64{0.3, 0.2, 0.15, 0.1}

	ref := NewSession(in, 5, 2)
	want := make(map[float64][2]float64)
	for _, eps := range epss {
		res, err := ref.EstimatePmax(ctx, eps, 1000, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[eps] = [2]float64{res.Estimate, float64(res.Draws)}
	}

	sess := NewSession(in, 5, 2)
	var wg sync.WaitGroup
	errs := make(chan error, 3*len(epss)+1)
	for round := 0; round < 3; round++ {
		for _, eps := range epss {
			wg.Add(1)
			go func(eps float64) {
				defer wg.Done()
				res, err := sess.EstimatePmax(ctx, eps, 1000, 0)
				if err != nil {
					errs <- err
					return
				}
				if got := [2]float64{res.Estimate, float64(res.Draws)}; got != want[eps] {
					errs <- fmt.Errorf("eps=%v: concurrent estimate %v, want %v", eps, got, want[eps])
				}
			}(eps)
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := sess.RAF(ctx, Config{Alpha: 0.3, Eps: 0.05, N: 100, OverrideL: 2000}); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPoolSizeFromTheory: the Eq. 16 threshold must be clamped BEFORE the
// float→int64 conversion — an out-of-range conversion is
// implementation-defined in Go, and the theoretical l* routinely exceeds
// int64 when p* is tiny.
func TestPoolSizeFromTheory(t *testing.T) {
	const clamp = int64(math.MaxInt64 / 2)
	cases := []struct {
		lTheory float64
		want    int64
	}{
		{123.4, 124},
		{1, 1},
		{1e30, clamp},
		{math.MaxInt64, clamp}, // above MaxInt64/2, below MaxInt64
		{math.Inf(1), clamp},
		{math.NaN(), clamp},
	}
	for _, c := range cases {
		if got := poolSizeFromTheory(c.lTheory); got != c.want {
			t.Errorf("poolSizeFromTheory(%v) = %d, want %d", c.lTheory, got, c.want)
		}
	}
	// An astronomical threshold straight out of Eq. 16: p* = 1e-280 on a
	// 1000-dimensional union bound blows far past int64. The clamped size
	// must stay positive (a negative or wrapped l would poison sampling).
	lTheory, err := mc.RealizationThreshold(0.01, 0.01, 1e-280, 1000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if lTheory <= math.MaxInt64 {
		t.Fatalf("lTheory = %v, expected astronomical", lTheory)
	}
	if got := poolSizeFromTheory(lTheory); got != clamp {
		t.Errorf("poolSizeFromTheory(%v) = %d, want clamp %d", lTheory, got, clamp)
	}
}
