package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/realization"
	"repro/internal/rng"
	"repro/internal/weights"
)

func line(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.Node(i), graph.Node(i+1))
	}
	return b.Build()
}

func randomConnected(seed int64, n, extra int) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.Node(i), graph.Node(r.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(graph.Node(r.Intn(n)), graph.Node(r.Intn(n)))
	}
	return b.Build()
}

func mustInstance(t *testing.T, g *graph.Graph, s, tt graph.Node) *ltm.Instance {
	t.Helper()
	in, err := ltm.NewInstance(g, weights.NewDegree(g), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestVmaxLine(t *testing.T) {
	// 0-1-2-3-4: s=0, t=4. N_s={1}; V_max = {2,3,4}.
	g := line(5)
	in := mustInstance(t, g, 0, 4)
	vm, err := Vmax(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Node{2, 3, 4}
	got := vm.Members()
	if len(got) != len(want) {
		t.Fatalf("Vmax = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vmax = %v, want %v", got, want)
		}
	}
}

func TestVmaxExcludesPendant(t *testing.T) {
	// 0-1-2-3(t) plus pendant 4 hanging off 2: 4 is reachable from both
	// sides but on no simple path, so 4 ∉ V_max.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(2, 4)
	g := b.Build()
	in := mustInstance(t, g, 0, 3)
	vm, err := Vmax(in)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Contains(4) {
		t.Error("pendant 4 wrongly in V_max")
	}
	if !vm.Contains(2) || !vm.Contains(3) {
		t.Errorf("V_max = %v, want {2,3}", vm.Members())
	}
	// The approximation keeps the pendant: documents the difference.
	approx := VmaxApprox(in)
	if !approx.Contains(4) {
		t.Error("VmaxApprox should over-count the pendant")
	}
	if !approx.ContainsAll(vm) {
		t.Error("VmaxApprox must be a superset of Vmax")
	}
}

func TestVmaxDisconnected(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(3, 4)
	g := b.Build()
	in := mustInstance(t, g, 0, 4)
	vm, err := Vmax(in)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Len() != 0 {
		t.Errorf("V_max = %v, want empty (unreachable)", vm.Members())
	}
	if VmaxApprox(in).Len() != 0 {
		t.Error("VmaxApprox should also be empty")
	}
}

func TestVmaxTargetAdjacentToNs(t *testing.T) {
	// s=0 - 1 - t=2: t(g) can be just {t}; V_max = {2}.
	g := line(3)
	in := mustInstance(t, g, 0, 2)
	vm, err := Vmax(in)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Len() != 1 || !vm.Contains(2) {
		t.Errorf("V_max = %v, want {2}", vm.Members())
	}
}

func TestVmaxMultiplePaths(t *testing.T) {
	// Diamond: s=0-1, 1-2, 1-3, 2-4, 3-4, t=4. V_max = {2,3,4}.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 4)
	b.AddEdge(3, 4)
	g := b.Build()
	in := mustInstance(t, g, 0, 4)
	vm, err := Vmax(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []graph.Node{2, 3, 4} {
		if !vm.Contains(v) {
			t.Errorf("V_max missing %d", v)
		}
	}
	if vm.Contains(0) || vm.Contains(1) {
		t.Errorf("V_max contains excluded nodes: %v", vm.Members())
	}
}

// TestVmaxContainsAllSampledPaths: every sampled type-1 t(g) must be a
// subset of V_max (that is Lemma 7's forward direction).
func TestVmaxContainsAllSampledPaths(t *testing.T) {
	f := func(seed int64) bool {
		g := randomConnected(seed, 20, 25)
		s, tt := graph.Node(0), graph.Node(19)
		if g.HasEdge(s, tt) {
			return true
		}
		in, err := ltm.NewInstance(g, weights.NewDegree(g), s, tt)
		if err != nil {
			return true
		}
		vm, err := Vmax(in)
		if err != nil {
			return false
		}
		approx := VmaxApprox(in)
		if !approx.ContainsAll(vm) {
			return false
		}
		sp := realization.NewSampler(in)
		st := rng.NewStream(seed)
		for i := 0; i < 400; i++ {
			tg := sp.SampleTG(&st)
			if tg.Outcome != realization.Type1 {
				continue
			}
			for _, v := range tg.Path {
				if !vm.Contains(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestVmaxAchievesPmax validates f(V_max) = p_max (Lemma 7): inviting
// V_max achieves the same acceptance probability as inviting everyone.
func TestVmaxAchievesPmax(t *testing.T) {
	for _, seed := range []int64{41, 42, 43} {
		g := randomConnected(seed, 16, 20)
		s, tt := graph.Node(0), graph.Node(15)
		if g.HasEdge(s, tt) {
			continue
		}
		in := mustInstance(t, g, s, tt)
		vm, err := Vmax(in)
		if err != nil {
			t.Fatal(err)
		}
		all := graph.NewNodeSet(g.NumNodes())
		all.Fill()
		ctx := context.Background()
		const trials = 120000
		fAll, err := engine.New(in).EstimateF(ctx, all, trials, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		fVm, err := engine.New(in).EstimateF(ctx, vm, trials, 4, seed+100)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fAll-fVm) > 0.01 {
			t.Errorf("seed %d: f(V) = %v but f(V_max) = %v", seed, fAll, fVm)
		}
	}
}

// TestVmaxMinimality validates the uniqueness half of Lemma 7: removing
// any node from V_max strictly reduces the acceptance probability, i.e.
// some sampled realization is no longer covered.
func TestVmaxMinimality(t *testing.T) {
	g := randomConnected(77, 14, 12)
	s, tt := graph.Node(0), graph.Node(13)
	if g.HasEdge(s, tt) {
		t.Skip("adjacent pair")
	}
	in := mustInstance(t, g, s, tt)
	vm, err := Vmax(in)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Len() == 0 {
		t.Skip("empty V_max")
	}
	// Sample many paths; every V_max member must appear in some path
	// (witnessing that its removal loses coverage).
	appeared := graph.NewNodeSet(g.NumNodes())
	sp := realization.NewSampler(in)
	st := rng.NewStream(9)
	for i := 0; i < 300000; i++ {
		tg := sp.SampleTG(&st)
		if tg.Outcome != realization.Type1 {
			continue
		}
		for _, v := range tg.Path {
			appeared.Add(v)
		}
	}
	for _, v := range vm.Members() {
		if !appeared.Contains(v) {
			t.Errorf("V_max member %d never appeared in 300k sampled paths", v)
		}
	}
	// And no node outside V_max ∪ {s} ∪ N_s ever appears.
	if !vm.ContainsAll(appeared) {
		t.Error("sampled paths escaped V_max")
	}
}
