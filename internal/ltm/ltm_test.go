package ltm

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/weights"
)

// line builds the path graph s=0 - 1 - 2 - ... - (n-1)=t.
func line(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.Node(i), graph.Node(i+1))
	}
	return b.Build()
}

func mustInstance(t *testing.T, g *graph.Graph, s, tt graph.Node) *Instance {
	t.Helper()
	in, err := NewInstance(g, weights.NewDegree(g), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	g := line(4)
	w := weights.NewDegree(g)
	cases := []struct {
		name string
		s, t graph.Node
	}{
		{"s out of range", -1, 2},
		{"t out of range", 0, 99},
		{"s equals t", 2, 2},
		{"already friends", 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewInstance(g, w, tc.s, tc.t); !errors.Is(err, ErrBadInstance) {
				t.Errorf("err = %v, want ErrBadInstance", err)
			}
		})
	}
	if _, err := NewInstance(g, nil, 0, 3); !errors.Is(err, ErrBadInstance) {
		t.Errorf("nil scheme err = %v", err)
	}
	in, err := NewInstance(g, w, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if in.S() != 0 || in.T() != 3 {
		t.Error("accessor mismatch")
	}
	if len(in.InitialFriends()) != 1 || in.InitialFriends()[0] != 1 {
		t.Errorf("InitialFriends = %v, want [1]", in.InitialFriends())
	}
}

// On the line 0-1-2-3 with degree weights, node 2 has degree 2 so
// w(1,2) = 1/2; node 3 has degree 1 so w(2,3) = 1. Inviting {2,3}:
// 2 activates with prob 1/2 (θ_2 ≤ 1/2), then 3 activates surely.
// Hence f({2,3}) = 1/2 exactly.
func TestSimulateLineExactProbability(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	invited := graph.NewNodeSetOf(4, 2, 3)
	st := rng.NewStream(7)
	sc := NewSimScratch(in)
	const trials = 200000
	wins := 0
	for i := 0; i < trials; i++ {
		if in.SimulateOnce(invited, &st, sc, nil) {
			wins++
		}
	}
	got := float64(wins) / trials
	if math.Abs(got-0.5) > 0.005 {
		t.Errorf("f({2,3}) ≈ %v, want 0.5", got)
	}
}

func TestSimulateRequiresInvitedTarget(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	// Invite everything except t: must always fail.
	invited := graph.NewNodeSetOf(4, 1, 2)
	st := rng.NewStream(1)
	for i := 0; i < 1000; i++ {
		if in.SimulateOnce(invited, &st, nil, nil) {
			t.Fatal("succeeded without inviting the target")
		}
	}
}

func TestSimulateEmptyInvitation(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	invited := graph.NewNodeSet(4)
	st := rng.NewStream(1)
	for i := 0; i < 100; i++ {
		if in.SimulateOnce(invited, &st, nil, nil) {
			t.Fatal("succeeded with empty invitation set")
		}
	}
}

func TestSimulateDisconnected(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(3, 4)
	g := b.Build()
	in := mustInstance(t, g, 0, 4)
	invited := graph.NewNodeSet(5)
	invited.Fill()
	st := rng.NewStream(1)
	for i := 0; i < 200; i++ {
		if in.SimulateOnce(invited, &st, nil, nil) {
			t.Fatal("succeeded across disconnected components")
		}
	}
}

func TestSimulateScratchFriends(t *testing.T) {
	// Triangle fan: s=0 friends with 1; 1-2, 2-3=t. Invite {2,3}; when it
	// succeeds the new-friend set must be exactly {2,3}.
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	invited := graph.NewNodeSetOf(4, 2, 3)
	friends := graph.NewNodeSet(4)
	st := rng.NewStream(3)
	sc := NewSimScratch(in)
	sawSuccess := false
	for i := 0; i < 500 && !sawSuccess; i++ {
		if in.SimulateOnce(invited, &st, sc, friends) {
			sawSuccess = true
			if !friends.Contains(2) || !friends.Contains(3) {
				t.Errorf("friend set = %v, want {2,3}", friends.Members())
			}
			if friends.Contains(0) || friends.Contains(1) {
				t.Errorf("friend set contains s or N_s: %v", friends.Members())
			}
		}
	}
	if !sawSuccess {
		t.Fatal("never succeeded in 500 trials (p=1/2); RNG broken?")
	}
}

// Monotonicity property: enlarging the invitation set cannot decrease the
// acceptance probability.
func TestEstimateFMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	b := graph.NewBuilder(12)
	for i := 0; i < 30; i++ {
		b.AddEdge(graph.Node(r.Intn(12)), graph.Node(r.Intn(12)))
	}
	b.AddEdge(0, 1)
	b.AddEdge(10, 11)
	g := b.Build()
	if g.HasEdge(0, 11) {
		t.Skip("random graph made s,t adjacent")
	}
	in := mustInstance(t, g, 0, 11)
	small := graph.NewNodeSetOf(12, 5, 10, 11)
	big := small.Clone()
	for v := graph.Node(2); v < 9; v++ {
		big.Add(v)
	}
	ctx := context.Background()
	fSmall, err := in.EstimateF(ctx, small, 40000, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	fBig, err := in.EstimateF(ctx, big, 40000, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if fBig+0.01 < fSmall {
		t.Errorf("monotonicity violated: f(small)=%v > f(big)=%v", fSmall, fBig)
	}
}

func TestEstimateFDeterministic(t *testing.T) {
	g := line(5)
	in := mustInstance(t, g, 0, 4)
	invited := graph.NewNodeSetOf(5, 2, 3, 4)
	ctx := context.Background()
	a, err := in.EstimateF(ctx, invited, 5000, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := in.EstimateF(ctx, invited, 5000, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave %v and %v", a, b)
	}
}

// TestEstimateFWorkerIndependence pins the fixed-chunk contract: the
// estimate is a pure function of (seed, trials), bit-identical for any
// worker count — including a trial count that ends on a partial chunk.
func TestEstimateFWorkerIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	b := graph.NewBuilder(20)
	for i := 1; i < 20; i++ {
		b.AddEdge(graph.Node(i), graph.Node(r.Intn(i)))
	}
	for i := 0; i < 25; i++ {
		b.AddEdge(graph.Node(r.Intn(20)), graph.Node(r.Intn(20)))
	}
	g := b.Build()
	if g.HasEdge(0, 19) {
		t.Skip("random graph made s,t adjacent")
	}
	in := mustInstance(t, g, 0, 19)
	invited := graph.NewNodeSet(20)
	invited.Fill()
	ctx := context.Background()
	for _, trials := range []int64{simChunk * 3, simChunk*2 + 777} {
		want, err := in.EstimateF(ctx, invited, trials, 1, 99)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			got, err := in.EstimateF(ctx, invited, trials, workers, 99)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("trials=%d: %d workers gave %v, 1 worker gave %v", trials, workers, got, want)
			}
		}
	}
}

func TestEstimateFValidation(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	if _, err := in.EstimateF(context.Background(), graph.NewNodeSet(4), 0, 1, 1); !errors.Is(err, ErrBadInstance) {
		t.Errorf("zero trials err = %v", err)
	}
}

func TestEstimateFCancellation(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := in.EstimateF(ctx, graph.NewNodeSetOf(4, 2, 3), 1000, 1, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx err = %v, want context.Canceled", err)
	}
}
