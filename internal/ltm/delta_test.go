package ltm

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/weights"
)

func TestInstanceApplyDelta(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	in, err := NewInstance(g, weights.NewDegree(g), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	_ = in.Plan() // compile, so ApplyDelta takes the incremental path

	d := &graph.Delta{Add: []graph.Edge{{U: 1, V: 4}}}
	g2, dirty, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	next, err := in.ApplyDelta(g2, dirty, nil)
	if err != nil {
		t.Fatal(err)
	}
	if next.Graph() != g2 || next.S() != 0 || next.T() != 5 {
		t.Fatal("next instance misbound")
	}
	// The rebuilt plan must agree draw-for-draw with a fresh compile.
	fresh, err := NewInstance(g2, weights.NewDegree(g2), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g2.NumNodes(); v++ {
		st1 := rng.DerivedStream(3, 9, uint64(v))
		st2 := rng.DerivedStream(3, 9, uint64(v))
		for i := 0; i < 30; i++ {
			u1, ok1 := next.Plan().Sample(graph.Node(v), &st1)
			u2, ok2 := fresh.Plan().Sample(graph.Node(v), &st2)
			if u1 != u2 || ok1 != ok2 {
				t.Fatalf("Sample(%d) draw %d diverges", v, i)
			}
		}
	}
	// The old instance is untouched.
	if in.Graph() != g || in.Graph().HasEdge(1, 4) {
		t.Error("ApplyDelta mutated the receiver")
	}
}

func TestInstanceApplyDeltaDissolves(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	in, err := NewInstance(g, weights.NewDegree(g), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := &graph.Delta{Add: []graph.Edge{{U: 0, V: 3}}}
	g2, dirty, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.ApplyDelta(g2, dirty, nil); !errors.Is(err, ErrBadInstance) {
		t.Errorf("s-t edge delta: err = %v, want ErrBadInstance", err)
	}
}

func TestInstanceDirty(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	in, err := NewInstance(g, weights.NewDegree(g), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Dirty([]graph.Node{1, 3}) {
		t.Error("target in dirty set not detected")
	}
	if in.Dirty([]graph.Node{1, 2}) {
		t.Error("interior nodes flagged the instance dirty")
	}
}
