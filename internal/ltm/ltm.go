// Package ltm implements the paper's threshold-based friending process
// (Process 1) as a forward Monte-Carlo simulator.
//
// Given the initiator s's current friends C₀ = N_s and an invitation set I,
// a round adds every invited non-friend u whose accumulated familiarity
// from current friends, Σ_{v∈C} w(v,u), reaches u's uniformly random
// threshold θ_u. The process stops when no invited user activates or the
// target t becomes a friend. f(I) is the probability of the latter.
//
// The forward simulator is the ground truth of the model; the realization
// package provides the equivalent (Lemma 1) and much faster reverse
// estimator. Their agreement is enforced by cross-validation tests.
package ltm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/weights"
)

// ErrBadInstance reports an invalid (graph, s, t) combination.
var ErrBadInstance = errors.New("ltm: invalid instance")

// Instance is an active-friending instance: the network, the weight
// scheme, the initiator and the target. Immutable and safe for concurrent
// use.
type Instance struct {
	g *graph.Graph
	w weights.Scheme
	s graph.Node
	t graph.Node
	// ns is N_s, cached as both slice and set.
	ns    []graph.Node
	nsSet *graph.NodeSet
}

// NewInstance validates and builds an instance. The target must differ
// from the initiator and must not already be a friend (otherwise the
// problem is trivial), matching the paper's problem setting.
func NewInstance(g *graph.Graph, w weights.Scheme, s, t graph.Node) (*Instance, error) {
	if err := g.CheckNode(s); err != nil {
		return nil, fmt.Errorf("%w: initiator: %v", ErrBadInstance, err)
	}
	if err := g.CheckNode(t); err != nil {
		return nil, fmt.Errorf("%w: target: %v", ErrBadInstance, err)
	}
	if s == t {
		return nil, fmt.Errorf("%w: initiator equals target (%d)", ErrBadInstance, s)
	}
	if g.HasEdge(s, t) {
		return nil, fmt.Errorf("%w: %d and %d are already friends", ErrBadInstance, s, t)
	}
	if w == nil {
		return nil, fmt.Errorf("%w: nil weight scheme", ErrBadInstance)
	}
	in := &Instance{g: g, w: w, s: s, t: t}
	in.ns = g.Neighbors(s)
	in.nsSet = graph.NewNodeSet(g.NumNodes())
	for _, v := range in.ns {
		in.nsSet.Add(v)
	}
	return in, nil
}

// Graph returns the underlying graph.
func (in *Instance) Graph() *graph.Graph { return in.g }

// Weights returns the weight scheme.
func (in *Instance) Weights() weights.Scheme { return in.w }

// S returns the initiator.
func (in *Instance) S() graph.Node { return in.s }

// T returns the target.
func (in *Instance) T() graph.Node { return in.t }

// InitialFriends returns N_s. The slice aliases graph storage.
func (in *Instance) InitialFriends() []graph.Node { return in.ns }

// InitialFriendSet returns N_s as a set. Callers must not modify it.
func (in *Instance) InitialFriendSet() *graph.NodeSet { return in.nsSet }

// SimulateOnce runs one draw of Process 1 under invitation set invited and
// reports whether t became a friend of s. Thresholds are sampled lazily
// from rng, one per touched node.
//
// The returned friends set (C∞ minus the initial N_s) is written into
// scratch if non-nil (for callers that need the final friend set);
// pass nil when only the outcome matters.
func (in *Instance) SimulateOnce(invited *graph.NodeSet, rand *rand.Rand, scratch *graph.NodeSet) bool {
	n := in.g.NumNodes()
	// accum[u] tracks Σ_{v∈C} w(v,u); thr[u] is θ_u, drawn on first touch;
	// state[u]: 0 untouched, 1 touched, 2 in C.
	accum := make([]float64, n)
	thr := make([]float64, n)
	state := make([]uint8, n)

	frontier := make([]graph.Node, 0, len(in.ns))
	// C0 = Ns.
	for _, v := range in.ns {
		state[v] = 2
		frontier = append(frontier, v)
	}
	state[in.s] = 2 // s itself never activates or contributes

	var next []graph.Node
	for len(frontier) > 0 {
		next = next[:0]
		for _, v := range frontier {
			for _, u := range in.g.Neighbors(v) {
				if state[u] == 2 {
					continue
				}
				if !invited.Contains(u) {
					// Uninvited users never join C, but their thresholds
					// are irrelevant; skip entirely.
					continue
				}
				if state[u] == 0 {
					state[u] = 1
					thr[u] = rand.Float64()
				}
				accum[u] += in.w.W(v, u)
				if accum[u] >= thr[u] {
					state[u] = 2
					next = append(next, u)
					if u == in.t {
						in.finish(scratch, state)
						return true
					}
				}
			}
		}
		frontier, next = next, frontier
	}
	in.finish(scratch, state)
	return false
}

func (in *Instance) finish(scratch *graph.NodeSet, state []uint8) {
	if scratch == nil {
		return
	}
	scratch.Clear()
	for v, st := range state {
		if st == 2 && graph.Node(v) != in.s && !in.nsSet.Contains(graph.Node(v)) {
			scratch.Add(graph.Node(v))
		}
	}
}

// EstimateF estimates f(invited) with trials independent forward
// simulations spread across workers (0 = all CPUs). Deterministic for a
// fixed (seed, trials): each trial uses a stream derived from its index
// block, independent of scheduling.
func (in *Instance) EstimateF(ctx context.Context, invited *graph.NodeSet, trials int64, workers int, seed int64) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("%w: trials=%d", ErrBadInstance, trials)
	}
	successes, err := parallel.SumUint64(ctx, trials, workers, func(worker int, n int64) uint64 {
		r := rng.DeriveRand(seed, uint64(worker))
		var hits uint64
		for i := int64(0); i < n; i++ {
			if in.SimulateOnce(invited, r, nil) {
				hits++
			}
		}
		return hits
	})
	if err != nil {
		return 0, err
	}
	return float64(successes) / float64(trials), nil
}
