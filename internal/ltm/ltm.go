// Package ltm implements the paper's threshold-based friending process
// (Process 1) as a forward Monte-Carlo simulator.
//
// Given the initiator s's current friends C₀ = N_s and an invitation set I,
// a round adds every invited non-friend u whose accumulated familiarity
// from current friends, Σ_{v∈C} w(v,u), reaches u's uniformly random
// threshold θ_u. The process stops when no invited user activates or the
// target t becomes a friend. f(I) is the probability of the latter.
//
// The forward simulator is the ground truth of the model; the realization
// package provides the equivalent (Lemma 1) and much faster reverse
// estimator. Their agreement is enforced by cross-validation tests.
package ltm

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/weights"
)

// ErrBadInstance reports an invalid (graph, s, t) combination.
var ErrBadInstance = errors.New("ltm: invalid instance")

// Instance is an active-friending instance: the network, the weight
// scheme, the initiator and the target. Immutable and safe for concurrent
// use.
type Instance struct {
	g *graph.Graph
	w weights.Scheme
	s graph.Node
	t graph.Node
	// ns is N_s, cached as both slice and set.
	ns    []graph.Node
	nsSet *graph.NodeSet

	planOnce sync.Once
	plan     *weights.Plan
}

// NewInstance validates and builds an instance. The target must differ
// from the initiator and must not already be a friend (otherwise the
// problem is trivial), matching the paper's problem setting.
func NewInstance(g *graph.Graph, w weights.Scheme, s, t graph.Node) (*Instance, error) {
	if err := g.CheckNode(s); err != nil {
		return nil, fmt.Errorf("%w: initiator: %v", ErrBadInstance, err)
	}
	if err := g.CheckNode(t); err != nil {
		return nil, fmt.Errorf("%w: target: %v", ErrBadInstance, err)
	}
	if s == t {
		return nil, fmt.Errorf("%w: initiator equals target (%d)", ErrBadInstance, s)
	}
	if g.HasEdge(s, t) {
		return nil, fmt.Errorf("%w: %d and %d are already friends", ErrBadInstance, s, t)
	}
	if w == nil {
		return nil, fmt.Errorf("%w: nil weight scheme", ErrBadInstance)
	}
	in := &Instance{g: g, w: w, s: s, t: t}
	in.ns = g.Neighbors(s)
	in.nsSet = graph.NewNodeSet(g.NumNodes())
	for _, v := range in.ns {
		in.nsSet.Add(v)
	}
	return in, nil
}

// Graph returns the underlying graph.
func (in *Instance) Graph() *graph.Graph { return in.g }

// Weights returns the weight scheme.
func (in *Instance) Weights() weights.Scheme { return in.w }

// Plan returns the instance's compiled sampling plan (built lazily,
// once), the devirtualized form of Weights().SampleInfluencer used by
// every sampling hot path.
func (in *Instance) Plan() *weights.Plan {
	in.planOnce.Do(func() {
		in.plan = weights.NewPlan(in.g, in.w)
	})
	return in.plan
}

// S returns the initiator.
func (in *Instance) S() graph.Node { return in.s }

// T returns the target.
func (in *Instance) T() graph.Node { return in.t }

// InitialFriends returns N_s. The slice aliases graph storage.
func (in *Instance) InitialFriends() []graph.Node { return in.ns }

// InitialFriendSet returns N_s as a set. Callers must not modify it.
func (in *Instance) InitialFriendSet() *graph.NodeSet { return in.nsSet }

// SimScratch holds the reusable per-goroutine state of SimulateOnce:
// epoch-versioned node arrays (reset in O(1) per draw, like the reverse
// sampler's visited set) plus frontier queues and the touched-node list
// that makes the final friend-set sweep proportional to the draw's own
// activity instead of O(n). A SimScratch serves one goroutine at a time.
type SimScratch struct {
	// accum[u] tracks Σ_{v∈C} w(v,u); thr[u] is θ_u, drawn on first
	// touch; state[u]: 1 touched, 2 in C. All three are valid only where
	// mark[u] == epoch.
	accum []float64
	thr   []float64
	state []uint8
	mark  []uint32
	epoch uint32

	frontier  []graph.Node
	next      []graph.Node
	activated []graph.Node // nodes that entered C this draw (= C∞ \ (N_s ∪ {s}))
}

// NewSimScratch returns scratch sized for the instance's graph.
func NewSimScratch(in *Instance) *SimScratch {
	n := in.g.NumNodes()
	return &SimScratch{
		accum: make([]float64, n),
		thr:   make([]float64, n),
		state: make([]uint8, n),
		mark:  make([]uint32, n),
	}
}

// begin opens a new draw epoch.
func (sc *SimScratch) begin() {
	sc.epoch++
	if sc.epoch == 0 { // wrapped: clear and restart
		clear(sc.mark)
		sc.epoch = 1
	}
}

// SimulateOnce runs one draw of Process 1 under invitation set invited and
// reports whether t became a friend of s. Thresholds are sampled lazily
// from st, one per touched node.
//
// scratch carries the draw's working state; pass nil to allocate a
// throwaway (loops should reuse one SimScratch per goroutine — a warmed
// scratch makes the draw allocation-free). The returned friends set
// (C∞ minus the initial N_s) is written into friends if non-nil (for
// callers that need the final friend set); pass nil when only the
// outcome matters.
func (in *Instance) SimulateOnce(invited *graph.NodeSet, st *rng.Stream, scratch *SimScratch, friends *graph.NodeSet) bool {
	sc := scratch
	if sc == nil {
		sc = NewSimScratch(in)
	}
	sc.begin()

	frontier := sc.frontier[:0]
	next := sc.next[:0]
	activated := sc.activated[:0]
	// C0 = Ns; s itself never activates or contributes.
	for _, v := range in.ns {
		sc.mark[v] = sc.epoch
		sc.state[v] = 2
		frontier = append(frontier, v)
	}
	sc.mark[in.s] = sc.epoch
	sc.state[in.s] = 2

	won := false
rounds:
	for len(frontier) > 0 {
		next = next[:0]
		for _, v := range frontier {
			for _, u := range in.g.Neighbors(v) {
				touched := sc.mark[u] == sc.epoch
				if touched && sc.state[u] == 2 {
					continue
				}
				if !invited.Contains(u) {
					// Uninvited users never join C, but their thresholds
					// are irrelevant; skip entirely.
					continue
				}
				if !touched {
					sc.mark[u] = sc.epoch
					sc.state[u] = 1
					sc.thr[u] = st.Float64()
					sc.accum[u] = 0
				}
				sc.accum[u] += in.w.W(v, u)
				if sc.accum[u] >= sc.thr[u] {
					sc.state[u] = 2
					next = append(next, u)
					activated = append(activated, u)
					if u == in.t {
						won = true
						break rounds
					}
				}
			}
		}
		frontier, next = next, frontier
	}
	// Save the (possibly regrown) buffers for the next draw.
	sc.frontier, sc.next, sc.activated = frontier, next, activated
	if friends != nil {
		friends.Clear()
		for _, u := range activated {
			friends.Add(u)
		}
	}
	return won
}

// simChunk is the number of forward draws per estimation chunk; with
// streams derived per chunk index, estimates are pure functions of
// (seed, trials) for any worker count — the same determinism scheme the
// engine's reverse sampler uses.
const simChunk = 2048

// nsForward namespaces the forward-simulation streams so they never
// collide with the engine's reverse-sampling stream families for a
// shared root seed.
const nsForward uint64 = 0x46777264 // "Fwrd"

// EstimateF estimates f(invited) with trials independent forward
// simulations spread across workers (0 = all CPUs). Deterministic for a
// fixed (seed, trials): draws are partitioned into fixed chunks whose
// streams derive from the chunk index, so the worker count affects only
// wall-clock time.
func (in *Instance) EstimateF(ctx context.Context, invited *graph.NodeSet, trials int64, workers int, seed int64) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("%w: trials=%d", ErrBadInstance, trials)
	}
	hits := make([]int64, (trials+simChunk-1)/simChunk)
	var scratch sync.Pool
	scratch.New = func() any { return NewSimScratch(in) }
	err := parallel.ForChunks(ctx, trials, simChunk, workers, func(c int, _, n int64) {
		st := rng.DerivedStream(seed, nsForward, uint64(c))
		sc := scratch.Get().(*SimScratch)
		var h int64
		for i := int64(0); i < n; i++ {
			if in.SimulateOnce(invited, &st, sc, nil) {
				h++
			}
		}
		scratch.Put(sc)
		hits[c] = h
	})
	if err != nil {
		return 0, err
	}
	var successes int64
	for _, h := range hits {
		successes += h
	}
	return float64(successes) / float64(trials), nil
}
