package ltm

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/weights"
)

// ApplyDelta builds the epoch-N+1 instance for the post-delta graph g and
// dirty set (from graph.Delta.Apply): the weight scheme is rebuilt
// incrementally via weights.Rebuild (updates supplies weights for added
// or re-weighted edges, Explicit schemes only), the (s, t) pair is
// re-validated against the new topology — a delta that makes s and t
// adjacent dissolves the instance, the problem is solved — and, if this
// instance's sampling plan was already compiled, the new plan is rebuilt
// row-incrementally instead of from scratch. The receiver is never
// mutated; in-flight work on it stays valid at the old epoch.
func (in *Instance) ApplyDelta(g *graph.Graph, dirty []graph.Node, updates []weights.EdgeWeight) (*Instance, error) {
	w, err := weights.Rebuild(in.w, g, dirty, updates)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
	}
	return in.RebindTo(g, w, dirty)
}

// RebindTo builds the epoch-N+1 instance against a weight scheme that has
// already been rebuilt for the post-delta graph — the serving layer
// applies one delta across many (s, t) pairs and rebuilds the shared
// scheme once (weights.Rebuild), then rebinds each pair's instance to it.
// Semantics match ApplyDelta: the pair is re-validated against the new
// topology, and a compiled sampling plan is rebuilt row-incrementally for
// the dirty nodes only. The receiver is never mutated.
func (in *Instance) RebindTo(g *graph.Graph, w weights.Scheme, dirty []graph.Node) (*Instance, error) {
	next, err := NewInstance(g, w, in.s, in.t)
	if err != nil {
		return nil, err
	}
	// Reuse compiled sampling state when it exists: rebuild only the
	// dirty nodes' rows. Untouched rows stay byte-identical, which is
	// what keeps undamaged pool chunks adoptable across the delta.
	var compiled *weights.Plan
	in.planOnce.Do(func() {}) // settle the once so reading in.plan is safe
	if in.plan != nil {
		compiled = in.plan.Rebuild(g, w, dirty)
	}
	if compiled != nil {
		next.planOnce.Do(func() { next.plan = compiled })
	}
	return next, nil
}

// Dirty reports whether the instance is touched by the given dirty set:
// either endpoint appearing means cached state keyed on (s, t) must be
// re-validated even if pools survive repair.
func (in *Instance) Dirty(dirty []graph.Node) bool {
	for _, v := range dirty {
		if v == in.s || v == in.t {
			return true
		}
	}
	return false
}
