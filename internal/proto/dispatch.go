package proto

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/server"
)

// Dispatcher maps decoded requests onto one server.Server and shapes
// replies. It is transport-agnostic and safe for concurrent use: the
// pipe transport (cmd/afserve) and the HTTP transport
// (internal/proto/httpapi) drive the same Dispatcher, so a request
// produces the same reply bytes on either.
//
// Parameter defaulting (solve's α/ε/N, acceptance's trials, topk's
// budget, pmaxest's stopping-rule knobs) replicates the public facade's
// normalization exactly — the dispatcher must answer what the facade
// would, since both are views of the same server.
type Dispatcher struct {
	sv *server.Server

	// topks retains finished topk results so "topkrefine" can resume
	// them, keyed by the query signature (s, targets, k, budget,
	// realizations) — deliberately excluding maxdraws, which refinement
	// itself enlarges. Bounded FIFO: the protocol is stateless on the
	// wire, so a evicted entry just means a refine request re-runs as a
	// fresh topk would.
	mu        sync.Mutex
	topks     map[string]*server.TopKResult
	topkOrder []string
}

// maxRetainedTopKs bounds the refine cache; see Dispatcher.topks.
const maxRetainedTopKs = 64

// NewDispatcher returns a dispatcher answering against sv.
func NewDispatcher(sv *server.Server) *Dispatcher {
	return &Dispatcher{sv: sv, topks: make(map[string]*server.TopKResult)}
}

// defaultTrials is the draw count for "acceptance" and "pmax" when the
// request omits trials.
const defaultTrials = 20000

// solveConfig replicates activefriending.Options.normalized() +
// coreConfig() for the wire's (alpha, eps, n, realizations) fields.
func solveConfig(req Request) core.Config {
	cfg := core.Config{
		Alpha:           req.Alpha,
		Eps:             req.Eps,
		N:               req.N,
		MaxRealizations: 200000,
		MaxPmaxDraws:    2000000,
		OverrideL:       req.Realizations,
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.1
	}
	if cfg.Eps == 0 {
		cfg.Eps = 0.01
	}
	if cfg.N == 0 {
		cfg.N = 100000
	}
	return cfg
}

// pmaxDefaults replicates the facade's EstimatePmax normalization.
func pmaxDefaults(eps0, n float64, maxDraws int64) (float64, float64, int64) {
	if eps0 == 0 {
		eps0 = 0.1
	}
	if n == 0 {
		n = 100000
	}
	if maxDraws <= 0 {
		maxDraws = 2000000
	}
	return eps0, n, maxDraws
}

// nodeSetOf replicates the facade's invited-set validation, including
// its error prefix: the reply string is wire format.
func nodeSetOf(g *graph.Graph, invited []graph.Node) (*graph.NodeSet, error) {
	set := graph.NewNodeSet(g.NumNodes())
	for _, v := range invited {
		if err := g.CheckNode(v); err != nil {
			return nil, fmt.Errorf("activefriending: invited set: %w", err)
		}
		set.Add(v)
	}
	return set, nil
}

// topkQuery builds the server query for a "topk"/"topkrefine" request,
// applying the facade's budget default.
func topkQuery(req Request) server.TopKQuery {
	budget := req.Budget
	if budget <= 0 {
		budget = 10
	}
	return server.TopKQuery{
		S:            req.S,
		Targets:      req.Targets,
		K:            req.K,
		Budget:       budget,
		Realizations: req.Realizations,
		MaxDraws:     req.MaxDraws,
	}
}

// topkKey is the refine-cache signature of a topk query; MaxDraws is
// excluded so a refined result stays reachable under its original key.
func topkKey(q server.TopKQuery) string {
	return fmt.Sprintf("%d|%v|%d|%d|%d", q.S, q.Targets, q.K, q.Budget, q.Realizations)
}

func (d *Dispatcher) retainTopK(key string, res *server.TopKResult) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.topks[key]; !ok {
		if len(d.topkOrder) >= maxRetainedTopKs {
			delete(d.topks, d.topkOrder[0])
			d.topkOrder = d.topkOrder[1:]
		}
		d.topkOrder = append(d.topkOrder, key)
	}
	d.topks[key] = res
}

func (d *Dispatcher) retainedTopK(key string) *server.TopKResult {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.topks[key]
}

// DispatchLine decodes and answers one request line.
func (d *Dispatcher) DispatchLine(ctx context.Context, line []byte) Response {
	req, errResp := DecodeRequest(line)
	if errResp != nil {
		return *errResp
	}
	return d.Dispatch(ctx, req)
}

// Dispatch answers one decoded request. The reply's Code classifies
// failures for the transport; its body is transport-independent.
func (d *Dispatcher) Dispatch(ctx context.Context, req Request) Response {
	resp := Response{ID: req.ID, Op: req.Op}
	trials := req.Trials
	if trials <= 0 {
		trials = defaultTrials
	}
	var result any
	var err error
	switch req.Op {
	case "solve":
		var res *core.Result
		res, err = d.sv.Solve(ctx, req.S, req.T, solveConfig(req))
		if err == nil {
			result = solutionFrom(res)
		}
	case "solvemax":
		// A "budgets" list answers the whole sweep from one pool fold and
		// two batched coverage queries; "budget" answers a single solve.
		if len(req.Budgets) > 0 {
			rs, fs, err2 := d.sv.SolveMaxBudgets(ctx, req.S, req.T, req.Budgets, req.Realizations)
			err = err2
			if err == nil {
				result = maxSolutionsFrom(rs, fs)
			}
		} else {
			res, f, err2 := d.sv.SolveMax(ctx, req.S, req.T, req.Budget, req.Realizations)
			err = err2
			if err == nil {
				result = maxSolutionFrom(res, f)
			}
		}
	case "acceptance":
		var set *graph.NodeSet
		set, err = nodeSetOf(d.sv.Graph(), req.Invited)
		if err == nil {
			var f float64
			f, err = d.sv.EstimateF(ctx, req.S, req.T, set, trials)
			result = map[string]float64{"f": f}
		}
	case "pmax":
		var f float64
		f, err = d.sv.Pmax(ctx, req.S, req.T, trials)
		result = map[string]float64{"pmax": f}
	case "pmaxest":
		e0, n, budget := pmaxDefaults(req.Eps, req.N, req.Trials)
		est, err2 := d.sv.PmaxEstimate(ctx, req.S, req.T, e0, n, budget)
		err = err2
		if err == nil {
			result = map[string]any{
				"pmax": est.Estimate, "draws": est.Draws, "reused": est.Reused,
				"sampled": est.Sampled, "truncated": est.Truncated,
			}
		}
	case "topk":
		q := topkQuery(req)
		var res *server.TopKResult
		res, err = d.sv.TopK(ctx, q)
		if err == nil {
			d.retainTopK(topkKey(q), res)
			result = topKResultFrom(res)
		}
	case "topkrefine":
		q := topkQuery(req)
		prev := d.retainedTopK(topkKey(q))
		if prev == nil {
			err = fmt.Errorf("topkrefine: no retained topk result for this query signature (run topk first)")
			break
		}
		var res *server.TopKResult
		res, err = d.sv.TopKRefine(ctx, prev, req.ExtraDraws)
		if err == nil {
			d.retainTopK(topkKey(q), res)
			result = topKResultFrom(res)
		}
	case "delta":
		// Mutate the served graph in place: cached pairs are migrated
		// across the new epoch by repair, not discarded. Requests already
		// in flight answer at the epoch they started on.
		gd := &graph.Delta{}
		for _, e := range req.Add {
			gd.Add = append(gd.Add, graph.Edge{U: e[0], V: e[1]})
		}
		for _, e := range req.Remove {
			gd.Remove = append(gd.Remove, graph.Edge{U: e[0], V: e[1]})
		}
		var res *server.DeltaResult
		res, err = d.sv.ApplyDelta(ctx, gd, nil)
		if err == nil {
			result = deltaSummaryFrom(res)
		}
	case "stats":
		st := statsFrom(d.sv)
		if o := d.sv.Obs(); o != nil {
			result = StatsWithMetrics{Stats: st, Metrics: o.Registry.Snapshot()}
		} else {
			result = st
		}
	default:
		resp.Error = fmt.Sprintf("unknown op %q", req.Op)
		resp.code = CodeUnknownOp
		return resp
	}
	if err != nil {
		resp.Error = err.Error()
		resp.code = CodeError
		if errors.Is(err, server.ErrOverloaded) {
			resp.code = CodeOverloaded
		}
		return resp
	}
	resp.OK = true
	resp.Result = result
	return resp
}
