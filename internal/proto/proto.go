// Package proto is the transport-agnostic query protocol of the serving
// stack: the line-delimited JSON request/response schema every afserve
// op speaks (solve, solvemax, acceptance, pmax, pmaxest, topk,
// topkrefine, delta, stats), a versioned codec with typed error codes,
// and a Dispatcher that maps decoded requests onto internal/server and
// shapes the reply.
//
// The wire format predates this package — it was extracted verbatim
// from cmd/afserve — and is frozen: a reply marshals byte-identical to
// the pre-extraction server (golden-tested in cmd/afserve), and every
// transport (the stdin/stdout pipe, internal/proto/httpapi) carries the
// same bytes for the same request. Typed error codes exist only at the
// Go level (Response.Code): transports map them to their own signalling
// (HTTP status, pipe error reply) without changing the reply body.
package proto

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
)

// Version is the protocol version this package speaks. Requests may
// carry an explicit "v"; absent (0) means version 1. A request from the
// future — v greater than Version — is rejected as a bad request, so a
// client can probe what a server speaks instead of getting a silently
// misinterpreted answer.
const Version = 1

// MaxRequestBytes bounds one encoded request line on every transport
// (the pipe's old scanner buffer, kept as the protocol-level limit).
// Longer lines are consumed and answered with an oversized error
// instead of killing the stream.
const MaxRequestBytes = 1 << 20

// Request is one decoded query. The JSON field set is the wire schema;
// which fields an op reads is documented in cmd/afserve. Ops that ride
// the same fields (solve/solvemax/pmaxest all read eps) keep the flat
// layout the protocol has always had.
type Request struct {
	// V is the protocol version (0 = current; see Version).
	V  int    `json:"v,omitempty"`
	ID int64  `json:"id,omitempty"`
	Op string `json:"op"`

	S            graph.Node   `json:"s"`
	T            graph.Node   `json:"t"`
	Alpha        float64      `json:"alpha,omitempty"`
	Eps          float64      `json:"eps,omitempty"`
	N            float64      `json:"n,omitempty"`
	Budget       int          `json:"budget,omitempty"`
	Budgets      []int        `json:"budgets,omitempty"`
	Realizations int64        `json:"realizations,omitempty"`
	Trials       int64        `json:"trials,omitempty"`
	Invited      []graph.Node `json:"invited,omitempty"`
	// Targets / K / MaxDraws parameterize the "topk" op; ExtraDraws is
	// the "topkrefine" op's additional draw budget on top of a retained
	// topk result with the same (s, targets, k, budget, realizations).
	Targets    []graph.Node `json:"targets,omitempty"`
	K          int          `json:"k,omitempty"`
	MaxDraws   int64        `json:"maxdraws,omitempty"`
	ExtraDraws int64        `json:"extradraws,omitempty"`
	// Add / Remove are the "delta" op's edge lists, each edge a [u, v]
	// pair.
	Add    [][2]graph.Node `json:"add,omitempty"`
	Remove [][2]graph.Node `json:"remove,omitempty"`
}

// Code classifies a Response for transports: it never appears on the
// wire (the reply body is the same on every transport); it tells a
// transport which of its own signals to raise — httpapi maps codes to
// HTTP status, the pipe ignores them.
type Code int

const (
	// CodeOK is a successful reply.
	CodeOK Code = iota
	// CodeBadRequest is an undecodable or version-skewed request.
	CodeBadRequest
	// CodeUnknownOp is a well-formed request for an op this server does
	// not speak.
	CodeUnknownOp
	// CodeOversized is a request line exceeding MaxRequestBytes.
	CodeOversized
	// CodeOverloaded is an admission fast-reject (server.ErrOverloaded):
	// the query did not run and a retry with backoff is sound.
	CodeOverloaded
	// CodeError is a domain error from a query that did run (unreachable
	// target, invalid pair, cancelled context, ...).
	CodeError
)

// Response is one reply line. Field set and order are the frozen wire
// format; code stays off the wire.
type Response struct {
	ID     int64  `json:"id,omitempty"`
	Op     string `json:"op"`
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
	Result any    `json:"result,omitempty"`

	code Code
}

// Code classifies the response for transport-level signalling.
func (r Response) Code() Code { return r.code }

// BadRequest shapes the reply for an undecodable line — the exact
// error string the pipe transport has always produced.
func BadRequest(err error) Response {
	return Response{OK: false, Error: fmt.Sprintf("bad request: %v", err), code: CodeBadRequest}
}

// ErrOversized reports a request line longer than MaxRequestBytes; see
// LineReader.
var ErrOversized = errors.New("proto: request exceeds " + fmt.Sprint(MaxRequestBytes) + " bytes")

// Oversized shapes the reply for a request line past MaxRequestBytes.
func Oversized() Response {
	return Response{OK: false, Error: fmt.Sprintf("bad request: request exceeds %d bytes", MaxRequestBytes), code: CodeOversized}
}

// DecodeRequest decodes one request line. On failure the returned
// *Response is the error reply to send (non-nil exactly when decoding
// failed); the request is unusable then.
func DecodeRequest(line []byte) (Request, *Response) {
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		r := BadRequest(err)
		return req, &r
	}
	if req.V > Version {
		r := Response{ID: req.ID, Op: req.Op, OK: false,
			Error: fmt.Sprintf("bad request: unsupported protocol version %d (this server speaks <= %d)", req.V, Version),
			code:  CodeBadRequest}
		return req, &r
	}
	return req, nil
}

// LineReader yields newline-delimited request lines with the protocol's
// size bound enforced: a line longer than MaxRequestBytes is consumed
// to its newline and reported as ErrOversized, leaving the stream
// usable for the next request — unlike bufio.Scanner, whose ErrTooLong
// is terminal. Both transports read through it so the bound and the
// failure mode are identical everywhere.
type LineReader struct {
	br  *bufio.Reader
	eof bool
}

// NewLineReader wraps r. The internal buffer admits exactly
// MaxRequestBytes-long lines (plus the newline) — a ~1 MiB allocation,
// so per-request readers (HTTP) should be pooled and Reset rather than
// reallocated.
func NewLineReader(r io.Reader) *LineReader {
	return &LineReader{br: bufio.NewReaderSize(r, MaxRequestBytes+1)}
}

// Reset rewires the reader onto a new stream, keeping its buffer.
func (lr *LineReader) Reset(r io.Reader) {
	lr.br.Reset(r)
	lr.eof = false
}

// ReadLine returns the next line with its terminator (and a trailing
// \r) stripped. The slice aliases the internal buffer and is valid only
// until the next call. Returns ErrOversized for a too-long line (after
// consuming it), io.EOF at end of stream; a final unterminated line is
// returned normally and the next call reports io.EOF.
func (lr *LineReader) ReadLine() ([]byte, error) {
	if lr.eof {
		return nil, io.EOF
	}
	line, err := lr.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		// Consume the remainder of the oversized line so the stream
		// resynchronizes at the next newline.
		for err == bufio.ErrBufferFull {
			_, err = lr.br.ReadSlice('\n')
		}
		if err != nil {
			lr.eof = true
		}
		return nil, ErrOversized
	}
	if err == io.EOF {
		lr.eof = true
		if len(line) == 0 {
			return nil, io.EOF
		}
	} else if err != nil {
		return nil, err
	}
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}
