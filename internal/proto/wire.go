package proto

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/maxaf"
	"repro/internal/obs"
	"repro/internal/server"
)

// The result shapes below mirror the public facade's types (package
// activefriending: Solution, MaxSolution, TopKCandidate/TopKResult,
// DeltaSummary, ServerStats) field for field, in declaration order —
// the wire format is their JSON marshaling, and the facade cannot be
// imported here (it imports internal/proto/httpapi for Server.Handler,
// which imports this package). TestWireMirrorsFacade in the repo root
// pins every pair byte-identical, so a facade field added without its
// mirror fails there, not on a client.

// Solution mirrors activefriending.Solution.
type Solution struct {
	Invited      []graph.Node
	PStar        float64
	VmaxSize     int
	Realizations int64
	PoolType1    int
	Covered      int
}

func solutionFrom(res *core.Result) *Solution {
	return &Solution{
		Invited:      res.Invited.Members(),
		PStar:        res.PStar,
		VmaxSize:     res.VmaxSize,
		Realizations: res.LUsed,
		PoolType1:    res.PoolType1,
		Covered:      res.Covered,
	}
}

// MaxSolution mirrors activefriending.MaxSolution.
type MaxSolution struct {
	Invited    []graph.Node
	EstimatedF float64
	TrainF     float64
}

func maxSolutionFrom(res *maxaf.Result, f float64) *MaxSolution {
	return &MaxSolution{
		Invited:    res.Invited.Members(),
		EstimatedF: f,
		TrainF:     res.CoveredFraction,
	}
}

func maxSolutionsFrom(results []*maxaf.Result, fs []float64) []*MaxSolution {
	out := make([]*MaxSolution, len(results))
	for i, r := range results {
		out[i] = maxSolutionFrom(r, fs[i])
	}
	return out
}

// TopKCandidate mirrors activefriending.TopKCandidate.
type TopKCandidate struct {
	Target  graph.Node
	Score   float64
	TrainF  float64
	Invited []graph.Node
	Effort  int64
	Rounds  int
	Frozen  bool
	Err     string
}

// TopKResult mirrors activefriending.TopKResult.
type TopKResult struct {
	Source          graph.Node
	K               int
	Winners         []TopKCandidate
	Candidates      []TopKCandidate
	Ranked          []int
	Rounds          int
	DrawsSpent      int64
	PlannedDraws    int64
	ExhaustiveDraws int64
	Truncated       bool
}

func topKResultFrom(res *server.TopKResult) *TopKResult {
	conv := func(c server.TopKCandidate) TopKCandidate {
		out := TopKCandidate{
			Target: c.Target,
			Score:  c.Score,
			TrainF: c.TrainF,
			Effort: c.Effort,
			Rounds: c.Rounds,
			Frozen: c.Frozen,
			Err:    c.Err,
		}
		if c.Invited != nil {
			out.Invited = c.Invited.Members()
		}
		return out
	}
	r := &TopKResult{
		Source:          res.Query.S,
		K:               res.Query.K,
		Candidates:      make([]TopKCandidate, len(res.Candidates)),
		Ranked:          res.Ranked,
		Rounds:          res.Rounds,
		DrawsSpent:      res.DrawsSpent,
		PlannedDraws:    res.PlannedDraws,
		ExhaustiveDraws: res.ExhaustiveDraws,
		Truncated:       res.Truncated,
	}
	for i, c := range res.Candidates {
		r.Candidates[i] = conv(c)
	}
	for _, wi := range res.Winners() {
		r.Winners = append(r.Winners, r.Candidates[wi])
	}
	return r
}

// DeltaSummary mirrors activefriending.DeltaSummary.
type DeltaSummary struct {
	Dirty                 []graph.Node
	NumNodes              int
	NumEdges              int64
	PairsMigrated         int
	PairsDropped          int
	RepairChunksResampled int
	RepairDrawsResampled  int64
	RepairDrawsSaved      int64
}

func deltaSummaryFrom(res *server.DeltaResult) *DeltaSummary {
	return &DeltaSummary{
		Dirty:                 res.Dirty,
		NumNodes:              res.NumNodes,
		NumEdges:              res.NumEdges,
		PairsMigrated:         res.PairsMigrated,
		PairsDropped:          res.PairsDropped,
		RepairChunksResampled: res.Repair.Resampled,
		RepairDrawsResampled:  res.Repair.DrawsResampled,
		RepairDrawsSaved:      res.Repair.DrawsSaved,
	}
}

// KindStats mirrors activefriending.ServerKindStats.
type KindStats struct {
	Hits   int64
	Misses int64
}

// Stats mirrors activefriending.ServerStats.
type Stats struct {
	SessionsLive          int
	SessionsCreated       int64
	SessionsEvicted       int64
	BytesHeld             int64
	Spills                int64
	SpillBytes            int64
	SpillLoads            int64
	SpillLoadBytes        int64
	SpillDrawsSaved       int64
	SpillLoadErrors       int64
	SpillLoadErrChecksum  int64
	SpillLoadErrVersion   int64
	SpillLoadErrStream    int64
	SpillLoadErrInstance  int64
	SpillLoadErrOther     int64
	SpillWriteErrors      int64
	SpillFilesExpired     int64
	DeltasApplied         int64
	PairsDropped          int64
	PoolsRepaired         int64
	RepairChunksResampled int64
	RepairDrawsResampled  int64
	RepairDrawsSaved      int64
	PmaxDrawsReused       int64
	Coalesced             int64
	Inflight              int
	Queued                int
	Admitted              int64
	Rejected              int64
	Solve                 KindStats
	SolveMax              KindStats
	AcceptanceProbability KindStats
	Pmax                  KindStats
	EstimatePmax          KindStats
	TopK                  KindStats
}

func statsFrom(sv *server.Server) Stats {
	st := sv.Stats()
	conv := func(k server.Kind) KindStats {
		return KindStats{Hits: st.ByKind[k].Hits, Misses: st.ByKind[k].Misses}
	}
	return Stats{
		SessionsLive:          st.SessionsLive,
		SessionsCreated:       st.SessionsCreated,
		SessionsEvicted:       st.SessionsEvicted,
		BytesHeld:             st.BytesHeld,
		Spills:                st.Spills,
		SpillBytes:            st.SpillBytes,
		SpillLoads:            st.SpillLoads,
		SpillLoadBytes:        st.SpillLoadBytes,
		SpillDrawsSaved:       st.SpillDrawsSaved,
		SpillLoadErrors:       st.SpillLoadErrors,
		SpillLoadErrChecksum:  st.SpillLoadErrChecksum,
		SpillLoadErrVersion:   st.SpillLoadErrVersion,
		SpillLoadErrStream:    st.SpillLoadErrStream,
		SpillLoadErrInstance:  st.SpillLoadErrInstance,
		SpillLoadErrOther:     st.SpillLoadErrOther,
		SpillWriteErrors:      st.SpillWriteErrors,
		SpillFilesExpired:     st.SpillFilesExpired,
		DeltasApplied:         st.DeltasApplied,
		PairsDropped:          st.PairsDropped,
		PoolsRepaired:         st.PoolsRepaired,
		RepairChunksResampled: st.RepairChunksResampled,
		RepairDrawsResampled:  st.RepairDrawsResampled,
		RepairDrawsSaved:      st.RepairDrawsSaved,
		PmaxDrawsReused:       st.PmaxDrawsReused,
		Coalesced:             st.Coalesced,
		Inflight:              st.Inflight,
		Queued:                st.Queued,
		Admitted:              st.Admitted,
		Rejected:              st.Rejected,
		Solve:                 conv(server.KindSolve),
		SolveMax:              conv(server.KindSolveMax),
		AcceptanceProbability: conv(server.KindEstimateF),
		Pmax:                  conv(server.KindPmax),
		EstimatePmax:          conv(server.KindPmaxEst),
		TopK:                  conv(server.KindTopK),
	}
}

// StatsWithMetrics is the "stats" payload when the server runs with
// metrics: the ledger, flat as before (embedding keeps the field layout
// identical for clients that unmarshal the ledger only), plus the
// registry snapshot.
type StatsWithMetrics struct {
	Stats
	Metrics []obs.Sample `json:"metrics"`
}
