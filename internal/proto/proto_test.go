package proto

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/server"
	"repro/internal/weights"
)

const diamond = "0 1\n0 2\n1 3\n1 4\n2 3\n2 4\n3 5\n4 5\n"

func testDispatcher(t *testing.T, cfg server.Config) *Dispatcher {
	t.Helper()
	g, err := gen.ReadEdgeList(strings.NewReader(diamond))
	if err != nil {
		t.Fatal(err)
	}
	return NewDispatcher(server.New(g, weights.NewDegree(g), cfg))
}

func TestDecodeRequest(t *testing.T) {
	// Malformed JSON is a typed bad-request reply, never an error value:
	// per-request failures are replies on every transport.
	req, errResp := DecodeRequest([]byte("not json"))
	if errResp == nil {
		t.Fatal("malformed line decoded")
	}
	if errResp.Code() != CodeBadRequest {
		t.Errorf("code = %v, want CodeBadRequest", errResp.Code())
	}
	if errResp.OK || !strings.HasPrefix(errResp.Error, "bad request: ") {
		t.Errorf("reply = %+v", errResp)
	}

	// Current and absent versions decode; a future version is refused so
	// an old server never half-understands a newer client.
	for _, line := range []string{`{"op":"pmax","s":0,"t":5}`, `{"v":1,"op":"pmax","s":0,"t":5}`} {
		req, errResp = DecodeRequest([]byte(line))
		if errResp != nil {
			t.Fatalf("%s refused: %+v", line, errResp)
		}
		if req.Op != "pmax" || req.S != 0 || req.T != 5 {
			t.Errorf("%s decoded to %+v", line, req)
		}
	}
	_, errResp = DecodeRequest([]byte(`{"v":2,"op":"pmax","s":0,"t":5}`))
	if errResp == nil || errResp.Code() != CodeBadRequest ||
		!strings.Contains(errResp.Error, "unsupported protocol version 2") {
		t.Errorf("future version accepted: %+v", errResp)
	}
}

func TestResponseCodes(t *testing.T) {
	if c := Oversized().Code(); c != CodeOversized {
		t.Errorf("Oversized code = %v", c)
	}
	if got := Oversized().Error; !strings.Contains(got, "exceeds") {
		t.Errorf("Oversized error = %q", got)
	}
	if c := BadRequest(errors.New("x")).Code(); c != CodeBadRequest {
		t.Errorf("BadRequest code = %v", c)
	}
	if c := (Response{OK: true}).Code(); c != CodeOK {
		t.Errorf("zero code = %v, want CodeOK", c)
	}
}

func TestLineReader(t *testing.T) {
	// \r\n line endings, empty lines and an unterminated final line all
	// read cleanly — clients on other platforms and truncated pipes must
	// not corrupt the stream.
	lr := NewLineReader(strings.NewReader("a\r\n\nb\nc"))
	var got []string
	for {
		line, err := lr.ReadLine()
		if err != nil {
			break
		}
		got = append(got, string(line))
	}
	want := []string{"a", "", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("read %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLineReaderOversized(t *testing.T) {
	// A line one past the cap is refused with the typed error, fully
	// consumed, and the stream stays usable for the next request. A line
	// exactly at the cap is accepted.
	exact := strings.Repeat("x", MaxRequestBytes)
	over := strings.Repeat("y", MaxRequestBytes+1)
	lr := NewLineReader(strings.NewReader(over + "\nafter\n" + exact + "\n"))
	if _, err := lr.ReadLine(); !errors.Is(err, ErrOversized) {
		t.Fatalf("oversized line: err = %v, want ErrOversized", err)
	}
	line, err := lr.ReadLine()
	if err != nil || string(line) != "after" {
		t.Fatalf("stream unusable after oversized line: %q, %v", line, err)
	}
	line, err = lr.ReadLine()
	if err != nil || len(line) != MaxRequestBytes {
		t.Fatalf("line at exactly the cap refused: %d bytes, %v", len(line), err)
	}
}

func TestDispatchUnknownOp(t *testing.T) {
	d := testDispatcher(t, server.Config{Seed: 7})
	resp := d.Dispatch(context.Background(), Request{ID: 1, Op: "bogus"})
	if resp.OK || resp.Code() != CodeUnknownOp || !strings.Contains(resp.Error, `unknown op "bogus"`) {
		t.Errorf("unknown op reply: %+v code %v", resp, resp.Code())
	}
	// An unknown op still echoes id and op so clients can correlate.
	if resp.ID != 1 || resp.Op != "bogus" {
		t.Errorf("unknown op lost correlation fields: %+v", resp)
	}
}

// TestDispatchOverloaded: when the server's admission gate rejects, the
// reply carries CodeOverloaded (HTTP 429 / pipe error reply) rather
// than the generic domain-error code. A barrier-started burst against
// MaxInflight=1, MaxQueue=0 guarantees contention: while the one
// admitted query samples, every concurrent dispatch fast-rejects.
func TestDispatchOverloaded(t *testing.T) {
	d := testDispatcher(t, server.Config{Seed: 7, MaxInflight: 1, MaxQueue: 0})
	const n = 32
	req := Request{Op: "pmax", S: 0, T: 5, Trials: 2_000_000}

	start := make(chan struct{})
	responses := make([]Response, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			responses[i] = d.Dispatch(context.Background(), req)
		}(i)
	}
	close(start)
	wg.Wait()

	var ok, overloaded int
	for _, r := range responses {
		switch {
		case r.OK:
			ok++
		case r.Code() == CodeOverloaded:
			overloaded++
			if !strings.Contains(r.Error, "overloaded") {
				t.Errorf("overload reply text: %q", r.Error)
			}
		default:
			t.Errorf("unexpected reply: %+v code %v", r, r.Code())
		}
	}
	if ok == 0 || overloaded == 0 || ok+overloaded != n {
		t.Errorf("burst of %d: %d ok, %d overloaded — want both nonzero and exhaustive", n, ok, overloaded)
	}
}

// FuzzDecodeRequest: request decoding must never panic and every
// failure must be a typed bad-request reply — afserve feeds it raw
// stdin and the HTTP handler feeds it raw bodies.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"id":1,"op":"solve","s":0,"t":5,"alpha":0.3,"eps":0.1,"n":50}`))
	f.Add([]byte(`{"op":"solvemax","s":0,"t":5,"budgets":[1,2,3]}`))
	f.Add([]byte(`{"op":"topk","s":0,"targets":[3,4,5],"k":2,"maxdraws":10240}`))
	f.Add([]byte(`{"op":"delta","add":[[6,7]],"remove":[[0,1]]}`))
	f.Add([]byte(`{"v":1,"op":"stats"}`))
	f.Add([]byte(`{"v":9,"op":"stats"}`))
	f.Add([]byte("not json"))
	f.Add([]byte(""))
	f.Add([]byte(`{"op":"pmax","s":-1,"t":99999999,"trials":-5}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		req, errResp := DecodeRequest(line)
		if errResp != nil {
			if errResp.OK || errResp.Code() != CodeBadRequest || !strings.HasPrefix(errResp.Error, "bad request: ") {
				t.Errorf("decode failure is not a typed bad request: %+v", errResp)
			}
			return
		}
		if req.V > Version {
			t.Errorf("accepted future version %d", req.V)
		}
	})
}
