package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/weights"
)

const diamond = "0 1\n0 2\n1 3\n1 4\n2 3\n2 4\n3 5\n4 5\n"

func testHandler(t *testing.T) *Handler {
	t.Helper()
	g, err := gen.ReadEdgeList(strings.NewReader(diamond))
	if err != nil {
		t.Fatal(err)
	}
	sv := server.New(g, weights.NewDegree(g), server.Config{Seed: 7})
	return New(proto.NewDispatcher(sv))
}

func TestHandlerRejectsNonPOST(t *testing.T) {
	ts := httptest.NewServer(testHandler(t))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q, want POST", allow)
	}
}

func TestHandlerEmptyBody(t *testing.T) {
	ts := httptest.NewServer(testHandler(t))
	defer ts.Close()
	for _, body := range []string{"", "\n\n"} {
		resp, err := http.Post(ts.URL, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestHandlerDrain: Drain lets the in-flight request finish and answers
// everything afterwards with 503 — the contract that makes SIGTERM safe
// to follow with SpillAll and exit.
func TestHandlerDrain(t *testing.T) {
	h := testHandler(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Start a slow query, give it time to be in flight, then drain from
	// a second goroutine; Drain must block until the query's reply lands.
	inFlight := make(chan struct{})
	var inFlightResp *http.Response
	var inFlightErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(inFlight)
		inFlightResp, inFlightErr = http.Post(ts.URL, "application/json",
			strings.NewReader(`{"id":1,"op":"pmax","s":0,"t":5,"trials":2000000}`+"\n"))
	}()
	<-inFlight
	time.Sleep(10 * time.Millisecond)
	h.Drain()
	wg.Wait()
	if inFlightErr != nil {
		t.Fatalf("in-flight request during drain: %v", inFlightErr)
	}
	defer inFlightResp.Body.Close()
	b, err := io.ReadAll(inFlightResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var r struct {
		OK bool `json:"ok"`
	}
	// The in-flight request either completed before Drain saw it (200,
	// ok) — begin() had already registered it — or arrived after the
	// drain flag flipped (503). Both are correct; a torn connection or a
	// failed reply is not.
	switch inFlightResp.StatusCode {
	case http.StatusOK:
		if err := json.Unmarshal(b, &r); err != nil || !r.OK {
			t.Errorf("in-flight reply: %s (%v)", b, err)
		}
	case http.StatusServiceUnavailable:
	default:
		t.Errorf("in-flight request: status %d", inFlightResp.StatusCode)
	}

	// After Drain every request is refused with 503 and a JSON reply.
	resp, err := http.Post(ts.URL, "application/json",
		strings.NewReader(`{"id":2,"op":"pmax","s":0,"t":5,"trials":100}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain: status %d, want 503", resp.StatusCode)
	}
	var refused struct {
		OK    bool   `json:"ok"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&refused); err != nil {
		t.Fatal(err)
	}
	if refused.OK || !strings.Contains(refused.Error, "draining") {
		t.Errorf("post-drain reply: %+v", refused)
	}

	// Drain is idempotent.
	h.Drain()
}
