// Package httpapi serves the query protocol (internal/proto) over
// HTTP: POST /v1/query accepts one request line or an NDJSON batch and
// answers with the exact reply bytes the stdin/stdout pipe transport
// would produce — the protocol is transport-agnostic, HTTP only adds
// status-code signalling on top.
//
// A single-request body is answered with one JSON line and a status
// mapped from the reply's typed code (400 bad request / unknown op,
// 413 oversized, 429 overloaded); a batch body (more than one line)
// streams one reply line per request at status 200, errors included in
// line — exactly the pipe's contract, where per-request failures are
// replies, not stream failures. Domain errors from queries that ran
// ("target unreachable") are 200 with ok:false on both shapes: the
// protocol answered, HTTP delivered.
//
// The handler supports graceful drain: after Drain, new requests are
// refused with 503 while every in-flight request runs to completion,
// so a SIGTERM can finish the queries it owes before the process
// flushes its spill tier and exits.
package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"

	"repro/internal/proto"
)

// Handler serves POST /v1/query over a Dispatcher.
type Handler struct {
	d *proto.Dispatcher

	mu       sync.Mutex
	wg       sync.WaitGroup
	draining bool
}

// New returns a handler answering through d.
func New(d *proto.Dispatcher) *Handler { return &Handler{d: d} }

// lineReaders pools the protocol line readers: each one owns a buffer
// sized for a maximal request line (~1 MiB), too large to allocate per
// request. Readers are Reset onto each request body and detached (Reset
// to nil) before pooling so a pooled reader never pins a request body.
var lineReaders = sync.Pool{
	New: func() any { return proto.NewLineReader(nil) },
}

// begin registers one in-flight request; false once draining.
func (h *Handler) begin() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.draining {
		return false
	}
	h.wg.Add(1)
	return true
}

// Drain stops admitting requests and blocks until every in-flight
// request has finished. Idempotent; the handler answers 503 afterwards.
func (h *Handler) Drain() {
	h.mu.Lock()
	h.draining = true
	h.mu.Unlock()
	h.wg.Wait()
}

// status maps a reply's typed code to the HTTP status of a
// single-request response.
func status(c proto.Code) int {
	switch c {
	case proto.CodeBadRequest, proto.CodeUnknownOp:
		return http.StatusBadRequest
	case proto.CodeOversized:
		return http.StatusRequestEntityTooLarge
	case proto.CodeOverloaded:
		return http.StatusTooManyRequests
	default:
		return http.StatusOK
	}
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST one request line or an NDJSON batch", http.StatusMethodNotAllowed)
		return
	}
	if !h.begin() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(proto.Response{OK: false, Error: "server draining"})
		return
	}
	defer h.wg.Done()

	// The request context cancels when the client disconnects; threading
	// it into the dispatcher lets an abandoned query stop sampling (and
	// free its admission slot to the queue).
	ctx := r.Context()
	lr := lineReaders.Get().(*proto.LineReader)
	lr.Reset(r.Body)
	defer func() { lr.Reset(nil); lineReaders.Put(lr) }()

	// Read ahead one request before committing to a response shape: one
	// line is a single-request exchange with status signalling, more is
	// an NDJSON batch streamed at 200.
	first, err := readRequest(lr)
	if err != nil {
		msg := "reading body: " + err.Error()
		if errors.Is(err, io.EOF) {
			msg = "empty body: POST one request line or an NDJSON batch"
		}
		http.Error(w, msg, http.StatusBadRequest)
		return
	}
	second, err2 := readRequest(lr)
	if err2 != nil {
		resp := first.dispatch(ctx, h.d)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status(resp.Code()))
		_ = json.NewEncoder(w).Encode(resp)
		return
	}

	// Batch: every line gets a reply line, in request order (the pipe
	// may reorder under -j; HTTP batches keep order so a client can zip
	// request and reply streams even without ids). Flush per reply so a
	// streaming client sees answers as they land.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	emit := func(resp proto.Response) bool {
		if err := enc.Encode(resp); err != nil {
			return false
		}
		if err := bw.Flush(); err != nil {
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		return true
	}
	if !emit(first.dispatch(ctx, h.d)) {
		return
	}
	for {
		if !emit(second.dispatch(ctx, h.d)) {
			return
		}
		if second, err2 = readRequest(lr); err2 != nil {
			return
		}
	}
}

// pending is one read request: either decoded, or already failed with
// the error reply to send (bad decode, oversized line) — per-request
// failures are replies, not transport errors, on HTTP exactly as on
// the pipe.
type pending struct {
	req     proto.Request
	errResp *proto.Response
}

func (p pending) dispatch(ctx context.Context, d *proto.Dispatcher) proto.Response {
	if p.errResp != nil {
		return *p.errResp
	}
	return d.Dispatch(ctx, p.req)
}

// readRequest reads and decodes the next non-empty body line. The only
// errors are terminal ones (io.EOF, a broken body read); an oversized
// line comes back as a pending carrying the oversized reply, since the
// stream stays usable past it.
func readRequest(lr *proto.LineReader) (pending, error) {
	for {
		line, err := lr.ReadLine()
		if errors.Is(err, proto.ErrOversized) {
			resp := proto.Oversized()
			return pending{errResp: &resp}, nil
		}
		if err != nil {
			return pending{}, err
		}
		if len(line) == 0 {
			continue
		}
		req, errResp := proto.DecodeRequest(line)
		return pending{req: req, errResp: errResp}, nil
	}
}
