// Package parallel provides small worker-pool helpers (stdlib only) used to
// parallelize Monte-Carlo sampling and per-pair experiment work while
// keeping results deterministic: work items are indexed and each worker
// receives an independently derived random stream, so the output is a pure
// function of (seed, item index) regardless of scheduling.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a Config asks for 0:
// the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// For runs fn(i) for every i in [0, n) across the given number of workers
// (0 means DefaultWorkers). It blocks until all items complete or ctx is
// cancelled, returning ctx.Err() in the latter case. fn must be safe for
// concurrent invocation on distinct indices.
func For(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || ctx.Err() != nil {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ForChunks splits total items into fixed-size chunks and runs
// fn(chunk, start, n) for every chunk across the given workers. Because
// work is partitioned by chunk index — not by worker id — any per-chunk
// state (e.g. an RNG stream derived from the chunk index) makes the
// overall result a pure function of total, independent of the worker
// count. The final chunk may be short.
func ForChunks(ctx context.Context, total, chunkSize int64, workers int, fn func(chunk int, start, n int64)) error {
	if total <= 0 {
		return nil
	}
	if chunkSize <= 0 {
		panic("parallel: ForChunks chunk size must be positive")
	}
	chunks := int((total + chunkSize - 1) / chunkSize)
	return For(ctx, chunks, workers, func(c int) {
		start := int64(c) * chunkSize
		n := chunkSize
		if start+n > total {
			n = total - start
		}
		fn(c, start, n)
	})
}

// SumUint64 runs trials of fn across workers and sums the uint64 results.
// fn receives the worker id (for RNG stream derivation) and the number of
// trials that worker must run; the split is deterministic. It is intended
// for Monte-Carlo counting loops where per-trial closure dispatch would
// dominate.
func SumUint64(ctx context.Context, trials int64, workers int, fn func(worker int, n int64) uint64) (uint64, error) {
	if trials <= 0 {
		return 0, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if int64(workers) > trials {
		workers = int(trials)
	}
	if workers == 1 {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return fn(0, trials), nil
	}
	per := trials / int64(workers)
	rem := trials % int64(workers)
	results := make([]uint64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		n := per
		if int64(w) < rem {
			n++
		}
		go func(w int, n int64) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			results[w] = fn(w, n)
		}(w, n)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var total uint64
	for _, r := range results {
		total += r
	}
	return total, nil
}
