package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForVisitsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 1000
		var mask [n]int32
		err := For(context.Background(), n, workers, func(i int) {
			atomic.AddInt32(&mask[i], 1)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range mask {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	called := false
	if err := For(context.Background(), 0, 4, func(int) { called = true }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called for n=0")
	}
}

func TestForCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := For(ctx, 100, 1, func(int) { t.Error("fn ran after cancel") })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestSumUint64(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		got, err := SumUint64(context.Background(), 1000, workers, func(worker int, n int64) uint64 {
			return uint64(n) // each trial contributes 1
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != 1000 {
			t.Errorf("workers=%d: sum = %d, want 1000", workers, got)
		}
	}
}

func TestSumUint64SplitsExactly(t *testing.T) {
	var total int64
	_, err := SumUint64(context.Background(), 1003, 4, func(worker int, n int64) uint64 {
		atomic.AddInt64(&total, n)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 1003 {
		t.Errorf("trial split sums to %d, want 1003", total)
	}
}

func TestSumUint64Empty(t *testing.T) {
	got, err := SumUint64(context.Background(), 0, 4, func(int, int64) uint64 { return 99 })
	if err != nil || got != 0 {
		t.Errorf("got %d, err %v", got, err)
	}
}

func TestSumUint64Cancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SumUint64(ctx, 100, 2, func(int, int64) uint64 { return 1 })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Errorf("DefaultWorkers = %d", DefaultWorkers())
	}
}

func TestForChunks(t *testing.T) {
	for _, tc := range []struct {
		total, chunkSize int64
		workers          int
	}{
		{1, 4, 1}, {4, 4, 2}, {10, 4, 3}, {1000, 7, 8},
	} {
		var mu sync.Mutex
		seen := map[int][2]int64{}
		err := ForChunks(context.Background(), tc.total, tc.chunkSize, tc.workers, func(chunk int, start, n int64) {
			mu.Lock()
			seen[chunk] = [2]int64{start, n}
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		wantChunks := int((tc.total + tc.chunkSize - 1) / tc.chunkSize)
		if len(seen) != wantChunks {
			t.Fatalf("total=%d chunk=%d: %d chunks, want %d", tc.total, tc.chunkSize, len(seen), wantChunks)
		}
		var sum int64
		for c := 0; c < wantChunks; c++ {
			got, ok := seen[c]
			if !ok {
				t.Fatalf("chunk %d missing", c)
			}
			if got[0] != int64(c)*tc.chunkSize {
				t.Errorf("chunk %d start = %d", c, got[0])
			}
			if got[1] <= 0 || got[1] > tc.chunkSize {
				t.Errorf("chunk %d size = %d", c, got[1])
			}
			sum += got[1]
		}
		if sum != tc.total {
			t.Errorf("chunk sizes sum to %d, want %d", sum, tc.total)
		}
	}
}
