// Package rank schedules batched top-k candidate ranking under a shared
// draw budget.
//
// The setting is the one ROADMAP item 4 describes: one source, K
// candidate targets, and a serving layer that can score any candidate at
// any effort l (realization draws) as a pure function of (seed,
// candidate, l) — exact-size pool views make a partial-effort answer a
// prefix of the full-effort one, so effort spent on a candidate is never
// wasted when the scheduler returns to it. Under that purity contract,
// ranking K candidates is a best-arm identification problem, and the
// scheduler here runs the classic successive-halving schedule (the inner
// loop of Li et al.'s Hyperband): score every survivor at the round's
// rung effort, freeze the bottom half, double the rung, repeat until k
// survivors have been scored at full effort. The draw bill concentrates
// on the leaders — Σ rounds s_i·Δl_i instead of K·L — while a run whose
// budget admits the exhaustive plan is *identical* to K independent
// full-effort calls, because in that case the plan is a single
// full-effort round.
//
// The scheduler is deliberately ignorant of pools, servers and graphs:
// it sees candidate indices and a scoring callback. Determinism is
// inherited, not imposed — scores land in an index-addressed slice, and
// every freeze decision sorts on (score, index), so the result is a pure
// function of the callback's values for any worker count.
package rank

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// DefaultMinEffort is the smallest rung a plan starts candidates at, one
// sampling chunk (engine.ChunkSize): below that, pool growth cannot get
// cheaper, so finer rungs would only add scheduling rounds.
const DefaultMinEffort = 2048

// Config describes one batched ranking request.
type Config struct {
	// Candidates is the number of arms; the scorer is called with
	// indices in [0, Candidates).
	Candidates int
	// K is how many winners must reach full effort. K ≥ Candidates
	// degenerates to the exhaustive plan.
	K int
	// FullEffort L is the effort a winner must be scored at for its
	// answer to count as exhaustive-equivalent.
	FullEffort int64
	// MaxDraws bounds the total planned draw bill, in draws (effort ×
	// CostPerEffort). 0 means unlimited, which — like any budget that
	// admits the exhaustive bill — yields the single-round exhaustive
	// plan and therefore byte-identical answers to Candidates
	// independent full-effort calls.
	MaxDraws int64
	// MinEffort floors the first rung (default DefaultMinEffort).
	MinEffort int64
	// CostPerEffort converts one unit of effort into draws billed
	// (default 2: a solve pool and a decorrelated eval pool grow
	// together).
	CostPerEffort int64
	// Workers bounds scoring concurrency within a round (0 = all CPUs).
	Workers int
}

// Round is one rung of a plan: Survivors candidates scored at Effort.
type Round struct {
	Effort    int64
	Survivors int
}

// Plan is the fixed schedule a Config resolves to before any scoring
// happens — a pure function of the Config, independent of scores, which
// is what keeps the whole run deterministic and resumable.
type Plan struct {
	Rounds []Round
	// Exhaustive marks the single-round full-effort plan whose answers
	// are identical to independent per-candidate calls.
	Exhaustive bool
	// Cost is the planned draw bill: Σ survivors·cost·(effort − prev).
	Cost int64
	// ExhaustiveCost is Candidates·cost·FullEffort, the bill the
	// schedule is saving against.
	ExhaustiveCost int64
	// Truncated reports that fitting MaxDraws forced even the final
	// rung below FullEffort, so winners carry less than full
	// confidence (a later refinement with a larger budget can finish
	// the job; purity makes the re-run reuse every draw).
	Truncated bool
}

// NewPlan resolves a Config into its schedule.
func NewPlan(cfg Config) (Plan, error) {
	n, k := cfg.Candidates, cfg.K
	if n <= 0 {
		return Plan{}, fmt.Errorf("rank: %d candidates", n)
	}
	if k <= 0 {
		return Plan{}, fmt.Errorf("rank: k=%d must be positive", k)
	}
	if cfg.FullEffort <= 0 {
		return Plan{}, fmt.Errorf("rank: full effort %d must be positive", cfg.FullEffort)
	}
	if cfg.MaxDraws < 0 {
		return Plan{}, fmt.Errorf("rank: max draws %d negative", cfg.MaxDraws)
	}
	if k > n {
		k = n
	}
	l := cfg.FullEffort
	minEffort := cfg.MinEffort
	if minEffort <= 0 {
		minEffort = DefaultMinEffort
	}
	if minEffort > l {
		minEffort = l
	}
	cost := cfg.CostPerEffort
	if cost <= 0 {
		cost = 2
	}
	exhaustive := int64(n) * cost * l
	if cfg.MaxDraws == 0 || cfg.MaxDraws >= exhaustive || k >= n {
		return Plan{
			Rounds:         []Round{{Effort: l, Survivors: n}},
			Exhaustive:     true,
			Cost:           exhaustive,
			ExhaustiveCost: exhaustive,
		}, nil
	}
	// Survivor counts: halve from n down to k. Rungs: double up to L,
	// floored at minEffort.
	var survivors []int
	for s := n; ; s = max((s+1)/2, k) {
		survivors = append(survivors, s)
		if s == k {
			break
		}
	}
	rounds := make([]Round, len(survivors))
	for i := range rounds {
		e := l >> (len(survivors) - 1 - i)
		rounds[i] = Round{Effort: max(e, minEffort), Survivors: survivors[i]}
	}
	planCost := func() int64 {
		var c, prev int64
		for _, r := range rounds {
			if r.Effort > prev {
				c += int64(r.Survivors) * cost * (r.Effort - prev)
				prev = r.Effort
			}
		}
		return c
	}
	// Fit the budget by halving every rung (floor 1). The loop
	// terminates: once all rungs hit 1 the bill is n·cost and cannot
	// shrink further — scoring everyone once is the schedule's floor.
	for planCost() > cfg.MaxDraws {
		shrunk := false
		for i := range rounds {
			if rounds[i].Effort > 1 {
				rounds[i].Effort = max(rounds[i].Effort/2, 1)
				shrunk = true
			}
		}
		if !shrunk {
			break
		}
	}
	return Plan{
		Rounds:         rounds,
		Cost:           planCost(),
		ExhaustiveCost: exhaustive,
		Truncated:      rounds[len(rounds)-1].Effort < l,
	}, nil
}

// Candidate is one arm's final standing.
type Candidate struct {
	// Index is the arm's position in the input list.
	Index int
	// Score is the arm's last score (meaningful at effort Effort).
	Score float64
	// Effort is the largest effort the arm was scored at; for winners
	// of an untruncated plan this is FullEffort.
	Effort int64
	// Rounds counts scoring rounds the arm participated in.
	Rounds int
	// Frozen marks arms eliminated before the final round.
	Frozen bool
	// Err is the scoring error that froze the arm, if any. Scoring
	// errors freeze the arm deterministically rather than aborting the
	// batch (a context cancellation does abort).
	Err error
}

// Result is a finished run.
type Result struct {
	Plan Plan
	// Candidates holds every arm's standing, indexed by input index.
	Candidates []Candidate
	// Ranked lists every candidate index best-first: the final round's
	// survivors by (score desc, index asc), then frozen arms in
	// reverse freeze order (arms that survived longer rank higher).
	Ranked []int
	// Rounds is the number of scheduling rounds executed.
	Rounds int
}

// Run executes the plan for cfg, scoring candidates through score.
// score(ctx, i, effort) must return candidate i's score after effort
// draws-worth of work; it is called from multiple goroutines on distinct
// indices and must be deterministic in (i, effort) for the run to be.
// Context errors abort the run; per-candidate errors freeze only that
// candidate.
func Run(ctx context.Context, cfg Config, score func(ctx context.Context, candidate int, effort int64) (float64, error)) (*Result, error) {
	plan, err := NewPlan(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.Candidates
	res := &Result{Plan: plan, Candidates: make([]Candidate, n)}
	for i := range res.Candidates {
		res.Candidates[i].Index = i
	}
	alive := make([]int, n)
	for i := range alive {
		alive[i] = i
	}
	var frozen []int // freeze order: worst first within a round
	freeze := func(ci int) {
		res.Candidates[ci].Frozen = true
		frozen = append(frozen, ci)
	}
	for ri, round := range plan.Rounds {
		scores := make([]float64, len(alive))
		errs := make([]error, len(alive))
		sp := obs.TraceFrom(ctx).StartSpan(obs.StageRankRound)
		err := parallel.For(ctx, len(alive), cfg.Workers, func(j int) {
			scores[j], errs[j] = score(ctx, alive[j], round.Effort)
		})
		sp.End()
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Rounds++
		var next []int
		for j, ci := range alive {
			c := &res.Candidates[ci]
			c.Rounds++
			c.Effort = round.Effort
			if errs[j] != nil {
				c.Err = errs[j]
				freeze(ci) // errored arms freeze first: worst standing
				continue
			}
			c.Score = scores[j]
			next = append(next, ci)
		}
		sort.Slice(next, func(a, b int) bool {
			sa, sb := res.Candidates[next[a]].Score, res.Candidates[next[b]].Score
			if sa != sb {
				return sa > sb
			}
			return next[a] < next[b]
		})
		if ri < len(plan.Rounds)-1 {
			keep := min(plan.Rounds[ri+1].Survivors, len(next))
			for j := len(next) - 1; j >= keep; j-- {
				freeze(next[j])
			}
			next = next[:keep]
		}
		alive = next
		if len(alive) == 0 {
			break
		}
	}
	res.Ranked = make([]int, 0, n)
	res.Ranked = append(res.Ranked, alive...)
	for j := len(frozen) - 1; j >= 0; j-- {
		res.Ranked = append(res.Ranked, frozen[j])
	}
	return res, nil
}
