package rank

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// deterministicScore is a synthetic pure scorer: monotone in a
// per-candidate "true" quality, with an effort-dependent wobble so
// low-effort rounds can misrank near-ties (as real Monte-Carlo scores
// do), converging as effort grows.
func deterministicScore(i int, effort int64) float64 {
	truth := float64(1000 - i)
	wobble := math.Sin(float64(i)*12.9898+float64(effort)*0.0001) * 50.0 / math.Sqrt(float64(effort))
	return truth + wobble
}

func TestPlanExhaustive(t *testing.T) {
	for _, maxDraws := range []int64{0, 64 * 2 * 16384, 1 << 40} {
		p, err := NewPlan(Config{Candidates: 64, K: 4, FullEffort: 16384, MaxDraws: maxDraws})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Exhaustive || len(p.Rounds) != 1 || p.Rounds[0].Effort != 16384 || p.Rounds[0].Survivors != 64 {
			t.Fatalf("maxDraws=%d: want single exhaustive round, got %+v", maxDraws, p)
		}
		if p.Cost != 64*2*16384 || p.Truncated {
			t.Fatalf("maxDraws=%d: bad cost/truncation: %+v", maxDraws, p)
		}
	}
	// k >= n also degenerates to exhaustive even under a tight budget.
	p, err := NewPlan(Config{Candidates: 8, K: 8, FullEffort: 4096, MaxDraws: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Exhaustive {
		t.Fatalf("k=n: want exhaustive, got %+v", p)
	}
}

func TestPlanHalvingShape(t *testing.T) {
	p, err := NewPlan(Config{Candidates: 64, K: 4, FullEffort: 16384, MaxDraws: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	wantSurv := []int{64, 32, 16, 8, 4}
	wantEff := []int64{2048, 2048, 4096, 8192, 16384} // first rungs floored at DefaultMinEffort
	if len(p.Rounds) != len(wantSurv) {
		t.Fatalf("rounds: %+v", p.Rounds)
	}
	for i, r := range p.Rounds {
		if r.Survivors != wantSurv[i] || r.Effort != wantEff[i] {
			t.Fatalf("round %d = %+v, want {%d %d}", i, r, wantEff[i], wantSurv[i])
		}
	}
	if p.Exhaustive || p.Truncated {
		t.Fatalf("unexpected flags: %+v", p)
	}
	if p.ExhaustiveCost != 64*2*16384 {
		t.Fatalf("exhaustive cost %d", p.ExhaustiveCost)
	}
	if p.Cost*3 > p.ExhaustiveCost {
		t.Fatalf("halving plan saves less than 3x: %d vs %d", p.Cost, p.ExhaustiveCost)
	}
	if p.Cost > 1<<20 {
		t.Fatalf("plan cost %d exceeds budget", p.Cost)
	}
}

func TestPlanBudgetFit(t *testing.T) {
	// A budget below the natural halving bill halves rungs until it fits;
	// the final rung then sits below FullEffort and the plan says so.
	p, err := NewPlan(Config{Candidates: 32, K: 2, FullEffort: 16384, MaxDraws: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost > 100_000 {
		t.Fatalf("fitted cost %d exceeds budget", p.Cost)
	}
	if !p.Truncated {
		t.Fatalf("want truncated plan, got %+v", p)
	}
	last := p.Rounds[len(p.Rounds)-1]
	if last.Effort >= 16384 || last.Survivors != 2 {
		t.Fatalf("last round %+v", last)
	}
	// Monotone rungs survive the fitting.
	for i := 1; i < len(p.Rounds); i++ {
		if p.Rounds[i].Effort < p.Rounds[i-1].Effort {
			t.Fatalf("rungs not monotone: %+v", p.Rounds)
		}
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []Config{
		{Candidates: 0, K: 1, FullEffort: 10},
		{Candidates: 4, K: 0, FullEffort: 10},
		{Candidates: 4, K: 1, FullEffort: 0},
		{Candidates: 4, K: 1, FullEffort: 10, MaxDraws: -1},
	}
	for i, cfg := range bad {
		if _, err := NewPlan(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	var base *Result
	for _, workers := range []int{1, 2, 8} {
		cfg := Config{Candidates: 50, K: 5, FullEffort: 8192, MaxDraws: 200_000, Workers: workers}
		res, err := Run(context.Background(), cfg, func(_ context.Context, i int, effort int64) (float64, error) {
			return deterministicScore(i, effort), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(res, base) {
			t.Fatalf("workers=%d: result diverged\n%+v\nvs\n%+v", workers, res, base)
		}
	}
}

func TestRunFindsTopK(t *testing.T) {
	// With a wide quality gap, the schedule must surface the true top k.
	cfg := Config{Candidates: 64, K: 4, FullEffort: 16384, MaxDraws: 1 << 20}
	res, err := Run(context.Background(), cfg, func(_ context.Context, i int, effort int64) (float64, error) {
		return deterministicScore(i, effort), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) != 64 {
		t.Fatalf("ranked %d of 64", len(res.Ranked))
	}
	got := append([]int{}, res.Ranked[:4]...)
	for _, want := range []int{0, 1, 2, 3} {
		found := false
		for _, g := range got {
			if g == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("true top-4 candidate %d missing from winners %v", want, got)
		}
	}
	for _, ci := range res.Ranked[:4] {
		c := res.Candidates[ci]
		if c.Frozen || c.Effort != 16384 {
			t.Fatalf("winner %d not at full effort: %+v", ci, c)
		}
	}
	// Every index appears exactly once in the ranking.
	seen := make(map[int]bool)
	for _, ci := range res.Ranked {
		if seen[ci] {
			t.Fatalf("index %d ranked twice", ci)
		}
		seen[ci] = true
	}
}

func TestRunExhaustiveMatchesIndependentCalls(t *testing.T) {
	// Full budget: every candidate scored once, at full effort, score
	// identical to a direct call — the byte-identity contract the server
	// builds on.
	n := 16
	cfg := Config{Candidates: n, K: 3, FullEffort: 4096}
	res, err := Run(context.Background(), cfg, func(_ context.Context, i int, effort int64) (float64, error) {
		return deterministicScore(i, effort), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Exhaustive || res.Rounds != 1 {
		t.Fatalf("want one exhaustive round, got %+v", res.Plan)
	}
	for i, c := range res.Candidates {
		want := deterministicScore(i, 4096)
		if c.Score != want || c.Effort != 4096 || c.Rounds != 1 || c.Frozen {
			t.Fatalf("candidate %d: %+v want score %v", i, c, want)
		}
	}
}

func TestRunErrorFreezesCandidate(t *testing.T) {
	boom := errors.New("unreachable target")
	cfg := Config{Candidates: 8, K: 2, FullEffort: 4096, MaxDraws: 40_000}
	res, err := Run(context.Background(), cfg, func(_ context.Context, i int, effort int64) (float64, error) {
		if i == 3 {
			return 0, fmt.Errorf("candidate 3: %w", boom)
		}
		return deterministicScore(i, effort), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Candidates[3]
	if !c.Frozen || !errors.Is(c.Err, boom) {
		t.Fatalf("errored candidate not frozen with cause: %+v", c)
	}
	for _, ci := range res.Ranked[:2] {
		if ci == 3 {
			t.Fatalf("errored candidate ranked as winner")
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Config{Candidates: 4, K: 1, FullEffort: 1024}, func(ctx context.Context, i int, effort int64) (float64, error) {
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context error, got %v", err)
	}
}
