package setcover

import (
	"container/heap"
	"fmt"
	"sort"
)

// GreedyBudget solves the budgeted dual of MSC: choose a union of at most
// budget elements maximizing the number of covered members of U
// (multiplicities counted). It powers the *maximum* active friending
// variant (maximize f(I) subject to |I| ≤ b): realizations are the family
// and invited users are the union.
//
// The greedy repeatedly commits the folded set with the best density —
// covered multiplicity per newly added element — among those fitting the
// remaining budget (the classic budgeted-max-coverage rule). Marginals
// only shrink as the union grows, so densities only improve; every
// decrement re-files the set in a lazy max-heap and stale entries are
// skipped on pop.
func GreedyBudget(inst *Instance, budget int) (*Solution, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("%w: budget %d must be positive", ErrBadInstance, budget)
	}
	folded, err := fold(inst)
	if err != nil {
		return nil, err
	}
	elemToSets := buildElemIndex(folded, inst.UniverseSize)
	marg := make([]int, len(folded))
	done := make([]bool, len(folded))
	sol := &Solution{}
	h := &densityHeap{}
	for j, fs := range folded {
		marg[j] = len(fs.elems)
		if marg[j] == 0 {
			done[j] = true
			sol.Covered += fs.mult
			continue
		}
		heap.Push(h, densityEntry{id: int32(j), marg: marg[j], density: float64(fs.mult) / float64(marg[j])})
	}
	inUnion := make(map[int32]bool)
	remaining := budget
	for h.Len() > 0 && remaining > 0 {
		entry := heap.Pop(h).(densityEntry)
		j := entry.id
		if done[j] || marg[j] != entry.marg {
			continue // stale: a fresher entry exists (or the set is covered)
		}
		if marg[j] > remaining {
			// Doesn't fit now; future decrements re-push it.
			continue
		}
		sol.Picked++
		for _, e := range folded[j].elems {
			if inUnion[e] {
				continue
			}
			inUnion[e] = true
			sol.Union = append(sol.Union, e)
			remaining--
			for _, k := range elemToSets.sets(e) {
				if done[k] {
					continue
				}
				marg[k]--
				if marg[k] == 0 {
					done[k] = true
					sol.Covered += folded[k].mult
				} else {
					heap.Push(h, densityEntry{id: k, marg: marg[k], density: float64(folded[k].mult) / float64(marg[k])})
				}
			}
		}
	}
	sort.Slice(sol.Union, func(i, k int) bool { return sol.Union[i] < sol.Union[k] })
	return sol, nil
}

type densityEntry struct {
	id      int32
	marg    int
	density float64
}

// densityHeap is a max-heap on density (ties: smaller marginal first,
// then smaller id for determinism).
type densityHeap []densityEntry

func (h densityHeap) Len() int { return len(h) }
func (h densityHeap) Less(i, j int) bool {
	if h[i].density != h[j].density {
		return h[i].density > h[j].density
	}
	if h[i].marg != h[j].marg {
		return h[i].marg < h[j].marg
	}
	return h[i].id < h[j].id
}
func (h densityHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *densityHeap) Push(x any)   { *h = append(*h, x.(densityEntry)) }
func (h *densityHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
