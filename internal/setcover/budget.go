package setcover

import "fmt"

// GreedyBudget solves the budgeted dual of MSC: choose a union of at most
// budget elements maximizing the number of covered members of U
// (multiplicities counted). It powers the *maximum* active friending
// variant (maximize f(I) subject to |I| ≤ b): realizations are the family
// and invited users are the union.
//
// The greedy repeatedly commits the folded set with the best density —
// covered multiplicity per newly added element — among those fitting the
// remaining budget (the classic budgeted-max-coverage rule). Marginals
// only shrink as the union grows, so densities only improve; every
// decrement re-files the set in a lazy max-heap and stale entries are
// skipped on pop.
//
// This is the one-shot convenience wrapper: it folds the instance into a
// Family and solves once. For repeated solves on one family, build the
// Family once and use Solver.SolveBudget (or Family.SolveBudget).
func GreedyBudget(inst *Instance, budget int) (*Solution, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("%w: budget %d must be positive", ErrBadInstance, budget)
	}
	fam, err := NewFamily(inst)
	if err != nil {
		return nil, err
	}
	return fam.SolveBudget(budget)
}

type densityEntry struct {
	id      int32
	marg    int
	density float64
}

// densityHeap is a max-heap on density (ties: smaller marginal first,
// then smaller id for determinism). The sift routines mirror
// container/heap exactly — same swaps, same pop order — but operate on
// the concrete type, so pushes in the solver's hot loop never box an
// entry into an interface.
type densityHeap []densityEntry

func (h densityHeap) less(i, j int) bool {
	if h[i].density != h[j].density {
		return h[i].density > h[j].density
	}
	if h[i].marg != h[j].marg {
		return h[i].marg < h[j].marg
	}
	return h[i].id < h[j].id
}

func (h *densityHeap) push(x densityEntry) {
	*h = append(*h, x)
	h.up(len(*h) - 1)
}

func (h *densityHeap) pop() densityEntry {
	n := len(*h) - 1
	(*h)[0], (*h)[n] = (*h)[n], (*h)[0]
	h.down(0, n)
	x := (*h)[n]
	*h = (*h)[:n]
	return x
}

func (h densityHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h densityHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2 // right child
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}
