package setcover

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// --- Pre-PR reference implementation ---------------------------------------
//
// referenceGreedy and referenceGreedyBudget are verbatim copies of the
// one-shot solvers before the Family/Solver split (per-call fold with
// encoding/binary keys, map[int32]bool union, container/heap). The
// Family/Solver path must return byte-identical Solutions — same Union,
// Covered, Demand AND Picked — across randomized instances and both
// encodings.

type refFoldedSet struct {
	elems []int32
	mult  int
}

func refFold(inst *Instance) ([]refFoldedSet, error) {
	if err := inst.validate(); err != nil {
		return nil, err
	}
	nsets := inst.NumSets()
	index := make(map[string]int, nsets)
	var folded []refFoldedSet
	var keyBuf []byte
	var elemBuf []int32
	for i := 0; i < nsets; i++ {
		elemBuf = append(elemBuf[:0], inst.set(i)...)
		sort.Slice(elemBuf, func(i, j int) bool { return elemBuf[i] < elemBuf[j] })
		out := elemBuf[:0]
		var prev int32 = -1
		for _, e := range elemBuf {
			if e < 0 || int(e) >= inst.UniverseSize {
				return nil, fmt.Errorf("%w: element %d outside universe", ErrBadInstance, e)
			}
			if e != prev {
				out = append(out, e)
				prev = e
			}
		}
		elemBuf = out
		keyBuf = keyBuf[:0]
		for _, e := range elemBuf {
			keyBuf = binary.AppendUvarint(keyBuf, uint64(e))
		}
		key := string(keyBuf)
		if j, ok := index[key]; ok {
			folded[j].mult++
			continue
		}
		index[key] = len(folded)
		folded = append(folded, refFoldedSet{elems: append([]int32(nil), elemBuf...), mult: 1})
	}
	return folded, nil
}

type refElemIndex struct {
	off []int32
	ids []int32
}

func (ix *refElemIndex) sets(e int32) []int32 { return ix.ids[ix.off[e]:ix.off[e+1]] }

func refBuildElemIndex(folded []refFoldedSet, universe int) *refElemIndex {
	off := make([]int32, universe+1)
	total := 0
	for _, fs := range folded {
		total += len(fs.elems)
		for _, e := range fs.elems {
			off[e+1]++
		}
	}
	for e := 0; e < universe; e++ {
		off[e+1] += off[e]
	}
	ids := make([]int32, total)
	next := make([]int32, universe)
	for j, fs := range folded {
		for _, e := range fs.elems {
			ids[off[e]+next[e]] = int32(j)
			next[e]++
		}
	}
	return &refElemIndex{off: off, ids: ids}
}

func referenceGreedy(inst *Instance, p int) (*Solution, error) {
	if err := inst.validate(); err != nil {
		return nil, err
	}
	if p <= 0 {
		return nil, fmt.Errorf("%w: demand must be positive", ErrBadInstance)
	}
	if p > inst.NumSets() {
		return nil, fmt.Errorf("%w: p > |U|", ErrInfeasible)
	}
	folded, err := refFold(inst)
	if err != nil {
		return nil, err
	}
	elemToSets := refBuildElemIndex(folded, inst.UniverseSize)
	maxSize := 0
	for _, fs := range folded {
		if len(fs.elems) > maxSize {
			maxSize = len(fs.elems)
		}
	}
	marg := make([]int, len(folded))
	done := make([]bool, len(folded))
	buckets := make([][]int32, maxSize+1)
	for j, fs := range folded {
		marg[j] = len(fs.elems)
		buckets[marg[j]] = append(buckets[marg[j]], int32(j))
	}
	inUnion := make(map[int32]bool)
	sol := &Solution{Demand: p}
	for j, fs := range folded {
		if marg[j] == 0 && !done[j] {
			done[j] = true
			sol.Covered += fs.mult
		}
	}
	cur := 0
	for sol.Covered < p {
		for cur <= maxSize && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxSize {
			return nil, fmt.Errorf("%w: internal exhaustion", ErrInfeasible)
		}
		j := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if done[j] || marg[j] != cur {
			if !done[j] && marg[j] < cur {
				buckets[marg[j]] = append(buckets[marg[j]], j)
				if marg[j] < cur {
					cur = marg[j]
				}
			}
			continue
		}
		sol.Picked++
		for _, e := range folded[j].elems {
			if inUnion[e] {
				continue
			}
			inUnion[e] = true
			sol.Union = append(sol.Union, e)
			for _, k := range elemToSets.sets(e) {
				if done[k] {
					continue
				}
				marg[k]--
				if marg[k] == 0 {
					done[k] = true
					sol.Covered += folded[k].mult
				} else {
					buckets[marg[k]] = append(buckets[marg[k]], k)
					if marg[k] < cur {
						cur = marg[k]
					}
				}
			}
		}
	}
	sort.Slice(sol.Union, func(i, k int) bool { return sol.Union[i] < sol.Union[k] })
	return sol, nil
}

type refDensityEntry struct {
	id      int32
	marg    int
	density float64
}

type refDensityHeap []refDensityEntry

func (h refDensityHeap) Len() int { return len(h) }
func (h refDensityHeap) Less(i, j int) bool {
	if h[i].density != h[j].density {
		return h[i].density > h[j].density
	}
	if h[i].marg != h[j].marg {
		return h[i].marg < h[j].marg
	}
	return h[i].id < h[j].id
}
func (h refDensityHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refDensityHeap) Push(x any)   { *h = append(*h, x.(refDensityEntry)) }
func (h *refDensityHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func referenceGreedyBudget(inst *Instance, budget int) (*Solution, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("%w: budget must be positive", ErrBadInstance)
	}
	folded, err := refFold(inst)
	if err != nil {
		return nil, err
	}
	elemToSets := refBuildElemIndex(folded, inst.UniverseSize)
	marg := make([]int, len(folded))
	done := make([]bool, len(folded))
	sol := &Solution{}
	h := &refDensityHeap{}
	for j, fs := range folded {
		marg[j] = len(fs.elems)
		if marg[j] == 0 {
			done[j] = true
			sol.Covered += fs.mult
			continue
		}
		heap.Push(h, refDensityEntry{id: int32(j), marg: marg[j], density: float64(fs.mult) / float64(marg[j])})
	}
	inUnion := make(map[int32]bool)
	remaining := budget
	for h.Len() > 0 && remaining > 0 {
		entry := heap.Pop(h).(refDensityEntry)
		j := entry.id
		if done[j] || marg[j] != entry.marg {
			continue
		}
		if marg[j] > remaining {
			continue
		}
		sol.Picked++
		for _, e := range folded[j].elems {
			if inUnion[e] {
				continue
			}
			inUnion[e] = true
			sol.Union = append(sol.Union, e)
			remaining--
			for _, k := range elemToSets.sets(e) {
				if done[k] {
					continue
				}
				marg[k]--
				if marg[k] == 0 {
					done[k] = true
					sol.Covered += folded[k].mult
				} else {
					heap.Push(h, refDensityEntry{id: k, marg: marg[k], density: float64(folded[k].mult) / float64(marg[k])})
				}
			}
		}
	}
	sort.Slice(sol.Union, func(i, k int) bool { return sol.Union[i] < sol.Union[k] })
	return sol, nil
}

// --- Parity tests ----------------------------------------------------------

// toCSR re-encodes an explicit-Sets instance as CSR.
func toCSR(inst *Instance) *Instance {
	var arena []int32
	offsets := []int32{0}
	for _, s := range inst.Sets {
		arena = append(arena, s...)
		offsets = append(offsets, int32(len(arena)))
	}
	return &Instance{UniverseSize: inst.UniverseSize, SetArena: arena, SetOffsets: offsets}
}

func solutionsEqual(a, b *Solution) bool {
	return reflect.DeepEqual(a.Union, b.Union) && a.Covered == b.Covered &&
		a.Demand == b.Demand && a.Picked == b.Picked
}

// realizationInstance builds an instance shaped like a realization pool:
// many short, duplicate-heavy sets.
func realizationInstance(rng *rand.Rand, copies int) *Instance {
	universe := 50 + rng.Intn(500)
	distinct := make([][]int32, 10+rng.Intn(60))
	for i := range distinct {
		sz := 1 + rng.Intn(6)
		s := make([]int32, sz)
		for j := range s {
			s[j] = int32(rng.Intn(universe))
		}
		distinct[i] = s
	}
	inst := &Instance{UniverseSize: universe}
	for i := 0; i < copies; i++ {
		inst.Sets = append(inst.Sets, distinct[rng.Intn(len(distinct))])
	}
	return inst
}

// TestFamilySolverParityGreedy: the Family/Solver path must return
// byte-identical Solutions to the pre-PR one-shot Greedy across randomized
// instances, a spread of demands, and both encodings.
func TestFamilySolverParityGreedy(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var inst *Instance
		if seed%3 == 0 {
			inst = realizationInstance(rng, 200+rng.Intn(800))
		} else {
			inst = randomInstance(rng)
		}
		for _, enc := range []*Instance{inst, toCSR(inst)} {
			fam, err := NewFamily(enc)
			if err != nil {
				t.Fatalf("seed %d: NewFamily: %v", seed, err)
			}
			sv := NewSolver(fam)
			n := enc.NumSets()
			for _, p := range []int{1, 1 + n/7, 1 + n/3, n / 2, n} {
				if p < 1 || p > n {
					continue
				}
				want, err := referenceGreedy(enc, p)
				if err != nil {
					t.Fatalf("seed %d p=%d: reference: %v", seed, p, err)
				}
				for pass := 0; pass < 2; pass++ { // reused scratch must not leak state
					got, err := sv.Solve(p)
					if err != nil {
						t.Fatalf("seed %d p=%d pass %d: Solver.Solve: %v", seed, p, pass, err)
					}
					if !solutionsEqual(got, want) {
						t.Fatalf("seed %d p=%d pass %d: solver %+v != reference %+v", seed, p, pass, got, want)
					}
				}
				got, err := Greedy(enc, p)
				if err != nil {
					t.Fatalf("seed %d p=%d: Greedy: %v", seed, p, err)
				}
				if !solutionsEqual(got, want) {
					t.Fatalf("seed %d p=%d: Greedy wrapper %+v != reference %+v", seed, p, got, want)
				}
			}
		}
	}
}

// TestFamilySolverParityBudget: same contract for the budgeted variant.
func TestFamilySolverParityBudget(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		var inst *Instance
		if seed%3 == 0 {
			inst = realizationInstance(rng, 200+rng.Intn(800))
		} else {
			inst = randomInstance(rng)
		}
		for _, enc := range []*Instance{inst, toCSR(inst)} {
			fam, err := NewFamily(enc)
			if err != nil {
				t.Fatalf("seed %d: NewFamily: %v", seed, err)
			}
			sv := NewSolver(fam)
			for _, b := range []int{1, 2, 5, inst.UniverseSize / 4, inst.UniverseSize} {
				if b < 1 {
					continue
				}
				want, err := referenceGreedyBudget(enc, b)
				if err != nil {
					t.Fatalf("seed %d b=%d: reference: %v", seed, b, err)
				}
				for pass := 0; pass < 2; pass++ {
					got, err := sv.SolveBudget(b)
					if err != nil {
						t.Fatalf("seed %d b=%d pass %d: SolveBudget: %v", seed, b, pass, err)
					}
					if !solutionsEqual(got, want) {
						t.Fatalf("seed %d b=%d pass %d: solver %+v != reference %+v", seed, b, pass, got, want)
					}
				}
			}
		}
	}
}

// TestSolverRebindParity: one roaming Solver rebound across a sequence of
// families — growing, shrinking, alternating encodings — must return the
// same Solutions as a fresh Solver per family. This is the batched
// ranking contract: scratch is shared across candidates' pools, answers
// are not.
func TestSolverRebindParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	var roaming *Solver
	for round := 0; round < 40; round++ {
		var inst *Instance
		switch round % 3 {
		case 0:
			inst = realizationInstance(rng, 100+rng.Intn(1500))
		case 1:
			inst = randomInstance(rng)
		default:
			inst = toCSR(randomInstance(rng))
		}
		fam, err := NewFamily(inst)
		if err != nil {
			t.Fatalf("round %d: NewFamily: %v", round, err)
		}
		if roaming == nil {
			roaming = NewSolver(fam)
		} else {
			roaming.Rebind(fam)
		}
		fresh := NewSolver(fam)
		n := inst.NumSets()
		for _, p := range []int{1, 1 + n/3, n} {
			if p < 1 || p > n {
				continue
			}
			want, err := fresh.Solve(p)
			if err != nil {
				t.Fatalf("round %d p=%d: fresh Solve: %v", round, p, err)
			}
			got, err := roaming.Solve(p)
			if err != nil {
				t.Fatalf("round %d p=%d: rebound Solve: %v", round, p, err)
			}
			if !solutionsEqual(got, want) {
				t.Fatalf("round %d p=%d: rebound %+v != fresh %+v", round, p, got, want)
			}
		}
		for _, b := range []int{1, 1 + inst.UniverseSize/3} {
			want, err := fresh.SolveBudget(b)
			if err != nil {
				t.Fatalf("round %d b=%d: fresh SolveBudget: %v", round, b, err)
			}
			got, err := roaming.SolveBudget(b)
			if err != nil {
				t.Fatalf("round %d b=%d: rebound SolveBudget: %v", round, b, err)
			}
			if !solutionsEqual(got, want) {
				t.Fatalf("round %d b=%d: rebound %+v != fresh %+v", round, b, got, want)
			}
		}
	}
}

// TestSolverInterleavedKinds: alternating demand and budget solves on one
// Solver must not contaminate each other's scratch.
func TestSolverInterleavedKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	inst := realizationInstance(rng, 500)
	fam, err := NewFamily(inst)
	if err != nil {
		t.Fatal(err)
	}
	sv := NewSolver(fam)
	n := inst.NumSets()
	for i := 0; i < 20; i++ {
		p := 1 + rng.Intn(n)
		b := 1 + rng.Intn(inst.UniverseSize)
		got, err := sv.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceGreedy(inst, p)
		if err != nil {
			t.Fatal(err)
		}
		if !solutionsEqual(got, want) {
			t.Fatalf("iter %d: Solve(%d) diverged after interleaving", i, p)
		}
		gotB, err := sv.SolveBudget(b)
		if err != nil {
			t.Fatal(err)
		}
		wantB, err := referenceGreedyBudget(inst, b)
		if err != nil {
			t.Fatal(err)
		}
		if !solutionsEqual(gotB, wantB) {
			t.Fatalf("iter %d: SolveBudget(%d) diverged after interleaving", i, b)
		}
	}
}

// TestFoldCollision forces every set into one hash bucket: the fold's
// equality verification alone must keep distinct sets apart, so a hash
// collision can never merge unequal sets (or corrupt multiplicities).
func TestFoldCollision(t *testing.T) {
	orig := hashElems
	hashElems = func([]int32) uint64 { return 42 }
	defer func() { hashElems = orig }()

	inst := &Instance{
		UniverseSize: 10,
		Sets:         [][]int32{{0, 1}, {1, 2}, {0, 1}, {3}, {2, 3, 4}, {3}, {3}},
	}
	fam, err := NewFamily(inst)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fam.NumFolded(), 4; got != want {
		t.Fatalf("NumFolded = %d, want %d (collisions must not merge distinct sets)", got, want)
	}
	if got, want := fam.NumSets(), 7; got != want {
		t.Fatalf("NumSets = %d, want %d", got, want)
	}
	wantMult := []int32{2, 1, 3, 1} // first-appearance order: {0,1}, {1,2}, {3}, {2,3,4}
	if !reflect.DeepEqual(fam.mult, wantMult) {
		t.Fatalf("mult = %v, want %v", fam.mult, wantMult)
	}
	for p := 1; p <= inst.NumSets(); p++ {
		got, err := fam.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceGreedy(inst, p)
		if err != nil {
			t.Fatal(err)
		}
		if !solutionsEqual(got, want) {
			t.Fatalf("p=%d under total hash collision: %+v != %+v", p, got, want)
		}
	}
}

// TestFamilyConcurrentSolvers: one Family, many goroutines, each with its
// own Solver (or the pooled Family.Solve path) — results must match the
// sequential reference. Run under -race by CI.
func TestFamilyConcurrentSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := realizationInstance(rng, 2000)
	fam, err := NewFamily(inst)
	if err != nil {
		t.Fatal(err)
	}
	n := inst.NumSets()
	demands := []int{1, n / 5, n / 3, n / 2, 2 * n / 3, n}
	want := make([]*Solution, len(demands))
	for i, p := range demands {
		if want[i], err = referenceGreedy(inst, p); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sv := NewSolver(fam)
			for rep := 0; rep < 8; rep++ {
				for i, p := range demands {
					var got *Solution
					var err error
					if (g+rep)%2 == 0 {
						got, err = sv.Solve(p)
					} else {
						got, err = fam.Solve(p) // pooled-solver path
					}
					if err != nil {
						errs <- err
						return
					}
					if !solutionsEqual(got, want[i]) {
						errs <- fmt.Errorf("goroutine %d rep %d p=%d: diverged", g, rep, p)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFamilyMemBytes: the accounting must cover every immutable table.
func TestFamilyMemBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := realizationInstance(rng, 300)
	fam, err := NewFamily(inst)
	if err != nil {
		t.Fatal(err)
	}
	want := (int64(cap(fam.elems)) + int64(cap(fam.off)) + int64(cap(fam.mult)) +
		int64(cap(fam.idxOff)) + int64(cap(fam.idxIDs))) * 4
	if got := fam.MemBytes(); got != want || got <= 0 {
		t.Fatalf("MemBytes = %d, want %d (> 0)", got, want)
	}
}

// TestSolverAllocFree: after warm-up, a repeated solve on reused scratch
// must allocate only the returned Solution (a handful of allocations for
// the struct and its union slice, far below the per-solve fold rebuild).
func TestSolverAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := realizationInstance(rng, 5000)
	fam, err := NewFamily(inst)
	if err != nil {
		t.Fatal(err)
	}
	sv := NewSolver(fam)
	p := inst.NumSets() / 2
	if _, err := sv.Solve(p); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := sv.Solve(p); err != nil {
			t.Fatal(err)
		}
	})
	// Solution struct + grown Union backing: single digits; the pre-split
	// path allocated the whole fold + index every call (thousands).
	if allocs > 10 {
		t.Fatalf("Solver.Solve allocates %.0f/op, want ≤ 10", allocs)
	}
}
