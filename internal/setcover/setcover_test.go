package setcover

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestGreedySimple(t *testing.T) {
	inst := &Instance{
		UniverseSize: 10,
		Sets: [][]int32{
			{0, 1},
			{1, 2},
			{7, 8, 9},
		},
	}
	sol, err := Greedy(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Best pair is {0,1} ∪ {1,2} = {0,1,2} (size 3) versus anything with
	// the triple (size ≥ 5).
	if !reflect.DeepEqual(sol.Union, []int32{0, 1, 2}) {
		t.Errorf("Union = %v, want [0 1 2]", sol.Union)
	}
	if sol.Covered != 2 {
		t.Errorf("Covered = %d, want 2", sol.Covered)
	}
}

func TestGreedyMultiplicity(t *testing.T) {
	// Three identical copies of {5}: covering one covers all three.
	inst := &Instance{
		UniverseSize: 10,
		Sets: [][]int32{
			{5}, {5}, {5}, {0, 1, 2, 3},
		},
	}
	sol, err := Greedy(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol.Union, []int32{5}) {
		t.Errorf("Union = %v, want [5]", sol.Union)
	}
	if sol.Covered != 3 {
		t.Errorf("Covered = %d", sol.Covered)
	}
	if sol.Picked != 1 {
		t.Errorf("Picked = %d, want 1 (folded)", sol.Picked)
	}
}

func TestGreedyIncidentalCoverage(t *testing.T) {
	// Picking {0,1,2} incidentally covers {0,1} and {2}.
	inst := &Instance{
		UniverseSize: 5,
		Sets: [][]int32{
			{0, 1, 2},
			{0, 1},
			{2},
			{3, 4},
		},
	}
	sol, err := Greedy(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Union) != 3 {
		t.Errorf("Union = %v, want size 3 ({0,1,2})", sol.Union)
	}
	if sol.Covered < 3 {
		t.Errorf("Covered = %d, want ≥ 3", sol.Covered)
	}
}

func TestGreedyIntraSetDuplicates(t *testing.T) {
	inst := &Instance{
		UniverseSize: 5,
		Sets:         [][]int32{{1, 1, 2, 2}, {3}},
	}
	sol, err := Greedy(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol.Union, []int32{3}) {
		t.Errorf("Union = %v, want [3] (smallest set)", sol.Union)
	}
}

func TestGreedyEmptySetCoveredFree(t *testing.T) {
	inst := &Instance{
		UniverseSize: 5,
		Sets:         [][]int32{{}, {0, 1}},
	}
	sol, err := Greedy(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Union) != 0 {
		t.Errorf("Union = %v, want empty (empty set is pre-covered)", sol.Union)
	}
}

func TestGreedyErrors(t *testing.T) {
	inst := &Instance{UniverseSize: 5, Sets: [][]int32{{0}}}
	if _, err := Greedy(inst, 0); !errors.Is(err, ErrBadInstance) {
		t.Errorf("p=0: err = %v", err)
	}
	if _, err := Greedy(inst, 2); !errors.Is(err, ErrInfeasible) {
		t.Errorf("p>|U|: err = %v", err)
	}
	bad := &Instance{UniverseSize: 5, Sets: [][]int32{{99}}}
	if _, err := Greedy(bad, 1); !errors.Is(err, ErrBadInstance) {
		t.Errorf("element out of range: err = %v", err)
	}
	neg := &Instance{UniverseSize: 5, Sets: [][]int32{{-1}}}
	if _, err := Greedy(neg, 1); !errors.Is(err, ErrBadInstance) {
		t.Errorf("negative element: err = %v", err)
	}
}

func TestExactErrors(t *testing.T) {
	inst := &Instance{UniverseSize: 5, Sets: [][]int32{{0}}}
	if _, err := Exact(inst, 0); !errors.Is(err, ErrBadInstance) {
		t.Errorf("p=0: err = %v", err)
	}
	if _, err := Exact(inst, 2); !errors.Is(err, ErrInfeasible) {
		t.Errorf("p>|U|: err = %v", err)
	}
	big := &Instance{UniverseSize: 100, Sets: make([][]int32, 30)}
	for i := range big.Sets {
		big.Sets[i] = []int32{int32(i)}
	}
	if _, err := Exact(big, 1); !errors.Is(err, ErrBadInstance) {
		t.Errorf("too many sets: err = %v", err)
	}
}

func TestExactSimple(t *testing.T) {
	inst := &Instance{
		UniverseSize: 10,
		Sets: [][]int32{
			{0, 1, 2},
			{2, 3},
			{3, 4},
			{0, 4},
		},
	}
	sol, err := Exact(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal pairs: {2,3} ∪ {3,4} = {2,3,4} or {3,4} ∪ {0,4} = {0,3,4}:
	// size 3.
	if len(sol.Union) != 3 {
		t.Errorf("exact union = %v, want size 3", sol.Union)
	}
	if sol.Covered < 2 {
		t.Errorf("Covered = %d", sol.Covered)
	}
}

// randomInstance builds a small random MSC instance.
func randomInstance(rng *rand.Rand) *Instance {
	universe := 4 + rng.Intn(10)
	numSets := 2 + rng.Intn(8)
	inst := &Instance{UniverseSize: universe}
	for i := 0; i < numSets; i++ {
		size := 1 + rng.Intn(4)
		s := make([]int32, size)
		for j := range s {
			s[j] = int32(rng.Intn(universe))
		}
		inst.Sets = append(inst.Sets, s)
	}
	return inst
}

// TestGreedyFeasibleAndBounded: the greedy solution must cover the demand
// and stay within the 2√|U| factor of the exact optimum.
func TestGreedyFeasibleAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng)
		p := 1 + rng.Intn(len(inst.Sets))
		g, gErr := Greedy(inst, p)
		e, eErr := Exact(inst, p)
		if (gErr == nil) != (eErr == nil) {
			return false
		}
		if gErr != nil {
			return true
		}
		if g.Covered < p || e.Covered < p {
			return false
		}
		// Union must actually cover what it claims.
		inUnion := map[int32]bool{}
		for _, x := range g.Union {
			inUnion[x] = true
		}
		covered := 0
		for _, s := range inst.Sets {
			ok := true
			for _, x := range s {
				if !inUnion[x] {
					ok = false
					break
				}
			}
			if ok {
				covered++
			}
		}
		if covered != g.Covered {
			return false
		}
		// Approximation factor.
		bound := 2 * math.Sqrt(float64(len(inst.Sets)))
		if len(e.Union) > 0 && float64(len(g.Union)) > bound*float64(len(e.Union)) {
			return false
		}
		if len(e.Union) == 0 && len(g.Union) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	inst := randomInstance(rng)
	p := 1 + len(inst.Sets)/2
	a, err := Greedy(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Union, b.Union) || a.Covered != b.Covered {
		t.Error("greedy is not deterministic")
	}
}

func TestGreedyLargeFoldedInstance(t *testing.T) {
	// 100k copies of 50 distinct short paths: folding must make this
	// instant and the cover must satisfy the demand.
	rng := rand.New(rand.NewSource(5))
	distinct := make([][]int32, 50)
	for i := range distinct {
		size := 1 + rng.Intn(5)
		s := make([]int32, size)
		for j := range s {
			s[j] = int32(rng.Intn(200))
		}
		distinct[i] = s
	}
	inst := &Instance{UniverseSize: 200}
	for i := 0; i < 100000; i++ {
		inst.Sets = append(inst.Sets, distinct[rng.Intn(50)])
	}
	p := 60000
	sol, err := Greedy(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Covered < p {
		t.Errorf("Covered = %d < p = %d", sol.Covered, p)
	}
	if len(sol.Union) > 200 {
		t.Errorf("union exceeds universe")
	}
}

// TestGreedyCSREncoding: the CSR family encoding must be interchangeable
// with explicit Sets, and populating both must be rejected.
func TestGreedyCSREncoding(t *testing.T) {
	sets := [][]int32{{0, 1}, {1, 2}, {0, 1}, {3}, {2, 3, 4}}
	explicit := &Instance{UniverseSize: 5, Sets: sets}
	var arena []int32
	offsets := []int32{0}
	for _, s := range sets {
		arena = append(arena, s...)
		offsets = append(offsets, int32(len(arena)))
	}
	csr := &Instance{UniverseSize: 5, SetArena: arena, SetOffsets: offsets}
	if got, want := csr.NumSets(), len(sets); got != want {
		t.Fatalf("NumSets = %d, want %d", got, want)
	}
	for p := 1; p <= len(sets); p++ {
		a, err := Greedy(explicit, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Greedy(csr, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Union) != len(b.Union) || a.Covered != b.Covered || a.Demand != p || b.Demand != p {
			t.Errorf("p=%d: explicit %+v vs CSR %+v", p, a, b)
		}
		for i := range a.Union {
			if a.Union[i] != b.Union[i] {
				t.Errorf("p=%d: unions differ: %v vs %v", p, a.Union, b.Union)
			}
		}
	}
	ba, err := GreedyBudget(explicit, 3)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := GreedyBudget(csr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ba.Covered != bb.Covered {
		t.Errorf("budgeted: explicit covered %d vs CSR %d", ba.Covered, bb.Covered)
	}
	bad := &Instance{UniverseSize: 5, Sets: sets, SetArena: arena, SetOffsets: offsets}
	if _, err := Greedy(bad, 1); !errors.Is(err, ErrBadInstance) {
		t.Errorf("both encodings accepted: %v", err)
	}
	malformed := &Instance{UniverseSize: 5, SetArena: arena, SetOffsets: []int32{1, 2}}
	if _, err := Greedy(malformed, 1); !errors.Is(err, ErrBadInstance) {
		t.Errorf("malformed offsets accepted: %v", err)
	}
}

// TestMalformedCSRBeforeFeasibility: a malformed CSR instance must be
// classified ErrBadInstance even when the demand check would also fail.
func TestMalformedCSRBeforeFeasibility(t *testing.T) {
	bad := &Instance{UniverseSize: 5, SetOffsets: []int32{}}
	if _, err := Greedy(bad, 1); !errors.Is(err, ErrBadInstance) {
		t.Errorf("Greedy: err = %v, want ErrBadInstance", err)
	}
	if _, err := Exact(bad, 1); !errors.Is(err, ErrBadInstance) {
		t.Errorf("Exact: err = %v, want ErrBadInstance", err)
	}
}
