// Package setcover solves the Minimum Subset Cover (MSC) problem the RAF
// framework reduces to (paper, Problems 2–4): given a family U of subsets
// of a universe V and a demand p, find a small V* ⊆ V such that at least p
// members of U are entirely contained in V*.
//
// By Remark 2 of the paper, MSC reduces to Minimum p-Union (MpU), for
// which Chlamtáč et al. give a 2√|U|-approximation. This package
// implements the combinatorial minimum-marginal-union greedy — the
// practical surrogate with the same O(√|U|) behaviour — plus an exact
// exponential solver used as a test oracle. The greedy folds duplicate
// subsets with multiplicities (in RAF many sampled t(g) paths coincide)
// and maintains marginals incrementally with an element→sets index and a
// bucket queue, so a solve costs O(Σ|U_i|) after folding.
//
// Coverage is counted semantically: a subset counts as covered the moment
// all its elements are in the union, whether or not it was explicitly
// picked (incidental coverage is legitimate for MSC and strictly helps).
package setcover

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// ErrInfeasible reports a demand p exceeding the family size.
var ErrInfeasible = errors.New("setcover: demand exceeds family size")

// ErrBadInstance reports malformed input.
var ErrBadInstance = errors.New("setcover: invalid instance")

// Instance is an MSC instance over universe {0, …, UniverseSize−1}. The
// family may be given either as explicit Sets or in CSR form
// (SetArena/SetOffsets) — the latter is what the realization engine hands
// over zero-copy; populating both is an error.
type Instance struct {
	// UniverseSize bounds element ids.
	UniverseSize int
	// Sets is the family U. Sets may repeat (multiplicity matters for the
	// demand count) and elements within a set may repeat harmlessly.
	Sets [][]int32
	// SetArena/SetOffsets encode the family in CSR form: set i is
	// SetArena[SetOffsets[i]:SetOffsets[i+1]]. SetOffsets has one entry
	// per set plus a trailing end offset.
	SetArena   []int32
	SetOffsets []int32
}

// NumSets returns |U| under either encoding.
func (inst *Instance) NumSets() int {
	if inst.SetOffsets != nil {
		return len(inst.SetOffsets) - 1
	}
	return len(inst.Sets)
}

func (inst *Instance) set(i int) []int32 {
	if inst.SetOffsets != nil {
		return inst.SetArena[inst.SetOffsets[i]:inst.SetOffsets[i+1]]
	}
	return inst.Sets[i]
}

func (inst *Instance) validate() error {
	if inst.SetOffsets == nil {
		return nil
	}
	if inst.Sets != nil {
		return fmt.Errorf("%w: both Sets and SetOffsets populated", ErrBadInstance)
	}
	n := len(inst.SetOffsets)
	if n == 0 || inst.SetOffsets[0] != 0 || int(inst.SetOffsets[n-1]) != len(inst.SetArena) {
		return fmt.Errorf("%w: malformed CSR offsets", ErrBadInstance)
	}
	for i := 1; i < n; i++ {
		if inst.SetOffsets[i] < inst.SetOffsets[i-1] {
			return fmt.Errorf("%w: CSR offsets not monotone", ErrBadInstance)
		}
	}
	return nil
}

// Solution is the result of an MSC solve.
type Solution struct {
	// Union is the chosen V*, ascending.
	Union []int32
	// Covered is the number of members of U contained in Union; always
	// ≥ the demand p on success.
	Covered int
	// Demand is the demand p the solve was asked to satisfy (0 for the
	// budgeted variant, which has no demand).
	Demand int
	// Picked is the number of greedy pick operations performed (folded
	// sets explicitly chosen; incidental covers are not counted here).
	Picked int
}

type foldedSet struct {
	elems []int32 // sorted distinct elements
	mult  int     // how many original sets folded here
}

// fold canonicalizes and deduplicates the family. Scratch buffers are
// reused across input sets, so only distinct folded sets allocate.
func fold(inst *Instance) ([]foldedSet, error) {
	if err := inst.validate(); err != nil {
		return nil, err
	}
	nsets := inst.NumSets()
	index := make(map[string]int, nsets)
	var folded []foldedSet
	var keyBuf []byte
	var elemBuf []int32
	for i := 0; i < nsets; i++ {
		elemBuf = append(elemBuf[:0], inst.set(i)...)
		sort.Slice(elemBuf, func(i, j int) bool { return elemBuf[i] < elemBuf[j] })
		// Drop intra-set duplicates and validate range.
		out := elemBuf[:0]
		var prev int32 = -1
		for _, e := range elemBuf {
			if e < 0 || int(e) >= inst.UniverseSize {
				return nil, fmt.Errorf("%w: element %d outside universe [0,%d)", ErrBadInstance, e, inst.UniverseSize)
			}
			if e != prev {
				out = append(out, e)
				prev = e
			}
		}
		elemBuf = out
		keyBuf = keyBuf[:0]
		for _, e := range elemBuf {
			keyBuf = binary.AppendUvarint(keyBuf, uint64(e))
		}
		key := string(keyBuf)
		if j, ok := index[key]; ok {
			folded[j].mult++
			continue
		}
		index[key] = len(folded)
		folded = append(folded, foldedSet{elems: append([]int32(nil), elemBuf...), mult: 1})
	}
	return folded, nil
}

// elemIndex is the inverted element → folded-set-id index in CSR form:
// the sets containing element e are ids[off[e]:off[e+1]].
type elemIndex struct {
	off []int32
	ids []int32
}

func (ix *elemIndex) sets(e int32) []int32 { return ix.ids[ix.off[e]:ix.off[e+1]] }

// buildElemIndex inverts the folded family over the universe.
func buildElemIndex(folded []foldedSet, universe int) *elemIndex {
	off := make([]int32, universe+1)
	total := 0
	for _, fs := range folded {
		total += len(fs.elems)
		for _, e := range fs.elems {
			off[e+1]++
		}
	}
	for e := 0; e < universe; e++ {
		off[e+1] += off[e]
	}
	ids := make([]int32, total)
	next := make([]int32, universe)
	for j, fs := range folded {
		for _, e := range fs.elems {
			ids[off[e]+next[e]] = int32(j)
			next[e]++
		}
	}
	return &elemIndex{off: off, ids: ids}
}

// Greedy solves the MSC instance for demand p with the minimum-marginal
// greedy. It returns ErrInfeasible when p exceeds |U| and ErrBadInstance
// for malformed input.
func Greedy(inst *Instance, p int) (*Solution, error) {
	if err := inst.validate(); err != nil {
		return nil, err
	}
	if p <= 0 {
		return nil, fmt.Errorf("%w: demand p=%d must be positive", ErrBadInstance, p)
	}
	if p > inst.NumSets() {
		return nil, fmt.Errorf("%w: p=%d > |U|=%d", ErrInfeasible, p, inst.NumSets())
	}
	folded, err := fold(inst)
	if err != nil {
		return nil, err
	}

	// Element → folded-set ids inverted index.
	elemToSets := buildElemIndex(folded, inst.UniverseSize)
	maxSize := 0
	for _, fs := range folded {
		if len(fs.elems) > maxSize {
			maxSize = len(fs.elems)
		}
	}

	marg := make([]int, len(folded)) // uncovered-element count per folded set
	done := make([]bool, len(folded))
	buckets := make([][]int32, maxSize+1)
	for j, fs := range folded {
		marg[j] = len(fs.elems)
		buckets[marg[j]] = append(buckets[marg[j]], int32(j))
	}

	inUnion := make(map[int32]bool)
	sol := &Solution{Demand: p}

	// Empty sets (possible in principle) are covered from the start.
	for j, fs := range folded {
		if marg[j] == 0 && !done[j] {
			done[j] = true
			sol.Covered += fs.mult
		}
	}

	cur := 0
	for sol.Covered < p {
		// Find the lowest non-empty bucket with a live entry.
		for cur <= maxSize && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxSize {
			// Cannot happen while sol.Covered < p ≤ total multiplicity,
			// but guard against inconsistency rather than spin.
			return nil, fmt.Errorf("%w: internal exhaustion at covered=%d, p=%d", ErrInfeasible, sol.Covered, p)
		}
		j := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if done[j] || marg[j] != cur {
			// Stale entry: either already covered (skip) or its marginal
			// shrank and a fresher entry exists in a lower bucket.
			if !done[j] && marg[j] < cur {
				// Re-file defensively (normally the decrement path already
				// filed it).
				buckets[marg[j]] = append(buckets[marg[j]], j)
				if marg[j] < cur {
					cur = marg[j]
				}
			}
			continue
		}
		// Pick folded set j: add its uncovered elements to the union.
		sol.Picked++
		for _, e := range folded[j].elems {
			if inUnion[e] {
				continue
			}
			inUnion[e] = true
			sol.Union = append(sol.Union, e)
			for _, k := range elemToSets.sets(e) {
				if done[k] {
					continue
				}
				marg[k]--
				if marg[k] == 0 {
					done[k] = true
					sol.Covered += folded[k].mult
				} else {
					buckets[marg[k]] = append(buckets[marg[k]], k)
					if marg[k] < cur {
						cur = marg[k]
					}
				}
			}
		}
		// j itself reached marginal 0 via the loop above.
	}
	sort.Slice(sol.Union, func(i, k int) bool { return sol.Union[i] < sol.Union[k] })
	return sol, nil
}

// Exact solves the MSC instance optimally by enumerating subfamilies of
// the folded family. Exponential in the number of distinct sets; intended
// as a test oracle for instances with ≤ ~20 distinct sets.
func Exact(inst *Instance, p int) (*Solution, error) {
	if err := inst.validate(); err != nil {
		return nil, err
	}
	if p <= 0 {
		return nil, fmt.Errorf("%w: demand p=%d must be positive", ErrBadInstance, p)
	}
	if p > inst.NumSets() {
		return nil, fmt.Errorf("%w: p=%d > |U|=%d", ErrInfeasible, p, inst.NumSets())
	}
	folded, err := fold(inst)
	if err != nil {
		return nil, err
	}
	k := len(folded)
	if k > 24 {
		return nil, fmt.Errorf("%w: %d distinct sets too many for exact enumeration", ErrBadInstance, k)
	}
	bestSize := -1
	var best *Solution
	for mask := uint32(0); mask < 1<<k; mask++ {
		union := map[int32]bool{}
		for j := 0; j < k; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			for _, e := range folded[j].elems {
				union[e] = true
			}
		}
		if bestSize >= 0 && len(union) >= bestSize {
			continue
		}
		// Count covered multiplicity (incidental covers included).
		covered := 0
		for _, fs := range folded {
			ok := true
			for _, e := range fs.elems {
				if !union[e] {
					ok = false
					break
				}
			}
			if ok {
				covered += fs.mult
			}
		}
		if covered < p {
			continue
		}
		elems := make([]int32, 0, len(union))
		for e := range union {
			elems = append(elems, e)
		}
		sort.Slice(elems, func(i, j int) bool { return elems[i] < elems[j] })
		bestSize = len(elems)
		best = &Solution{Union: elems, Covered: covered, Demand: p}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no subfamily covers p=%d", ErrInfeasible, p)
	}
	return best, nil
}
