// Package setcover solves the Minimum Subset Cover (MSC) problem the RAF
// framework reduces to (paper, Problems 2–4): given a family U of subsets
// of a universe V and a demand p, find a small V* ⊆ V such that at least p
// members of U are entirely contained in V*.
//
// By Remark 2 of the paper, MSC reduces to Minimum p-Union (MpU), for
// which Chlamtáč et al. give a 2√|U|-approximation. This package
// implements the combinatorial minimum-marginal-union greedy — the
// practical surrogate with the same O(√|U|) behaviour — plus an exact
// exponential solver used as a test oracle.
//
// The solve path is split into two halves so repeated queries against one
// family amortize: a Family is the prebuilt immutable fold (canonical
// distinct sets with multiplicities — in RAF many sampled t(g) paths
// coincide — plus the inverted element → sets index), and a Solver holds
// all mutable scratch (marginals, bucket queue, epoch-versioned union
// bitset), so a solve costs O(Σ|U_i|) once at Family build and each
// subsequent solve allocates nothing beyond its Solution. Greedy and
// GreedyBudget are one-shot wrappers over that pair.
//
// Coverage is counted semantically: a subset counts as covered the moment
// all its elements are in the union, whether or not it was explicitly
// picked (incidental coverage is legitimate for MSC and strictly helps).
package setcover

import (
	"errors"
	"fmt"
	"slices"
)

// ErrInfeasible reports a demand p exceeding the family size.
var ErrInfeasible = errors.New("setcover: demand exceeds family size")

// ErrBadInstance reports malformed input.
var ErrBadInstance = errors.New("setcover: invalid instance")

// Instance is an MSC instance over universe {0, …, UniverseSize−1}. The
// family may be given either as explicit Sets or in CSR form
// (SetArena/SetOffsets) — the latter is what the realization engine hands
// over zero-copy; populating both is an error.
type Instance struct {
	// UniverseSize bounds element ids.
	UniverseSize int
	// Sets is the family U. Sets may repeat (multiplicity matters for the
	// demand count) and elements within a set may repeat harmlessly.
	Sets [][]int32
	// SetArena/SetOffsets encode the family in CSR form: set i is
	// SetArena[SetOffsets[i]:SetOffsets[i+1]]. SetOffsets has one entry
	// per set plus a trailing end offset.
	SetArena   []int32
	SetOffsets []int32
}

// NumSets returns |U| under either encoding.
func (inst *Instance) NumSets() int {
	if inst.SetOffsets != nil {
		return len(inst.SetOffsets) - 1
	}
	return len(inst.Sets)
}

func (inst *Instance) set(i int) []int32 {
	if inst.SetOffsets != nil {
		return inst.SetArena[inst.SetOffsets[i]:inst.SetOffsets[i+1]]
	}
	return inst.Sets[i]
}

func (inst *Instance) validate() error {
	if inst.SetOffsets == nil {
		return nil
	}
	if inst.Sets != nil {
		return fmt.Errorf("%w: both Sets and SetOffsets populated", ErrBadInstance)
	}
	n := len(inst.SetOffsets)
	if n == 0 || inst.SetOffsets[0] != 0 || int(inst.SetOffsets[n-1]) != len(inst.SetArena) {
		return fmt.Errorf("%w: malformed CSR offsets", ErrBadInstance)
	}
	for i := 1; i < n; i++ {
		if inst.SetOffsets[i] < inst.SetOffsets[i-1] {
			return fmt.Errorf("%w: CSR offsets not monotone", ErrBadInstance)
		}
	}
	return nil
}

// Solution is the result of an MSC solve.
type Solution struct {
	// Union is the chosen V*, ascending.
	Union []int32
	// Covered is the number of members of U contained in Union; always
	// ≥ the demand p on success.
	Covered int
	// Demand is the demand p the solve was asked to satisfy (0 for the
	// budgeted variant, which has no demand).
	Demand int
	// Picked is the number of greedy pick operations performed (folded
	// sets explicitly chosen; incidental covers are not counted here).
	Picked int
}

// Greedy solves the MSC instance for demand p with the minimum-marginal
// greedy. It returns ErrInfeasible when p exceeds |U| and ErrBadInstance
// for malformed input.
//
// This is the one-shot convenience wrapper: it folds the instance into a
// Family and solves once. For repeated solves on one family (an α/β
// sweep, serving traffic), build the Family once and use Solver.Solve
// (or Family.Solve) — the fold and index are then paid exactly once.
func Greedy(inst *Instance, p int) (*Solution, error) {
	if err := inst.validate(); err != nil {
		return nil, err
	}
	if p <= 0 {
		return nil, fmt.Errorf("%w: demand p=%d must be positive", ErrBadInstance, p)
	}
	if p > inst.NumSets() {
		return nil, fmt.Errorf("%w: p=%d > |U|=%d", ErrInfeasible, p, inst.NumSets())
	}
	fam, err := NewFamily(inst)
	if err != nil {
		return nil, err
	}
	return fam.Solve(p)
}

// Exact solves the MSC instance optimally by enumerating subfamilies of
// the folded family. Exponential in the number of distinct sets; intended
// as a test oracle for instances with ≤ ~20 distinct sets.
func Exact(inst *Instance, p int) (*Solution, error) {
	if err := inst.validate(); err != nil {
		return nil, err
	}
	if p <= 0 {
		return nil, fmt.Errorf("%w: demand p=%d must be positive", ErrBadInstance, p)
	}
	if p > inst.NumSets() {
		return nil, fmt.Errorf("%w: p=%d > |U|=%d", ErrInfeasible, p, inst.NumSets())
	}
	fam, err := NewFamily(inst)
	if err != nil {
		return nil, err
	}
	k := fam.NumFolded()
	if k > 24 {
		return nil, fmt.Errorf("%w: %d distinct sets too many for exact enumeration", ErrBadInstance, k)
	}
	bestSize := -1
	var best *Solution
	for mask := uint32(0); mask < 1<<k; mask++ {
		union := map[int32]bool{}
		for j := 0; j < k; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			for _, e := range fam.set(j) {
				union[e] = true
			}
		}
		if bestSize >= 0 && len(union) >= bestSize {
			continue
		}
		// Count covered multiplicity (incidental covers included).
		covered := 0
		for j := 0; j < k; j++ {
			ok := true
			for _, e := range fam.set(j) {
				if !union[e] {
					ok = false
					break
				}
			}
			if ok {
				covered += int(fam.mult[j])
			}
		}
		if covered < p {
			continue
		}
		elems := make([]int32, 0, len(union))
		for e := range union {
			elems = append(elems, e)
		}
		slices.Sort(elems)
		bestSize = len(elems)
		best = &Solution{Union: elems, Covered: covered, Demand: p}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no subfamily covers p=%d", ErrInfeasible, p)
	}
	return best, nil
}
