package setcover

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/obs"
)

// FNV-1a constants; the fold hashes each folded set word-wise over its
// sorted distinct elements.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashElems is the fold's set hash: FNV-1a folded word-wise over the
// sorted distinct elements. It is a package variable so the collision
// test can substitute a degenerate hash and exercise the bucket
// verification path — equal hashes must never merge unequal sets.
var hashElems = func(elems []int32) uint64 {
	h := uint64(fnvOffset64)
	for _, e := range elems {
		h ^= uint64(uint32(e))
		h *= fnvPrime64
	}
	return h
}

// Family is the prebuilt, immutable fold of an MSC instance: the distinct
// canonicalized sets in CSR form (sorted, deduplicated, in first-appearance
// order), their multiplicities, and the inverted element → folded-set
// index. Building it costs the one O(Σ|U_i|) pass that Greedy used to pay
// on every call; afterwards any number of solves at any demand or budget
// run against it rebuild-free.
//
// A Family is safe for concurrent use: any number of Solvers (each owning
// its own mutable scratch) may solve against one Family from different
// goroutines. The realization engine caches one Family per pool.
type Family struct {
	universe int
	numSets  int // |U|: original set count = total multiplicity

	elems   []int32 // folded-set elements, one CSR arena
	off     []int32 // folded set j is elems[off[j]:off[j+1]]; len NumFolded+1
	mult    []int32 // multiplicity per folded set
	maxSize int     // largest folded-set cardinality

	idxOff []int32 // element → folded-set ids, CSR over the universe
	idxIDs []int32

	solvers sync.Pool // *Solver scratch for the convenience Solve methods
}

// NewFamily folds and indexes the instance. The input is validated exactly
// as Greedy validates it: malformed CSR offsets, double encodings and
// out-of-universe elements all return ErrBadInstance.
func NewFamily(inst *Instance) (*Family, error) {
	if err := inst.validate(); err != nil {
		return nil, err
	}
	nsets := inst.NumSets()
	f := &Family{
		universe: inst.UniverseSize,
		numSets:  nsets,
		off:      make([]int32, 1, nsets+1),
	}
	// hash → folded ids with that hash; equality is verified on every
	// probe, so hash collisions cost a comparison, never correctness.
	buckets := make(map[uint64][]int32, nsets)
	var elemBuf []int32
probe:
	for i := 0; i < nsets; i++ {
		elemBuf = append(elemBuf[:0], inst.set(i)...)
		slices.Sort(elemBuf)
		// Drop intra-set duplicates and validate range.
		out := elemBuf[:0]
		var prev int32 = -1
		for _, e := range elemBuf {
			if e < 0 || int(e) >= inst.UniverseSize {
				return nil, fmt.Errorf("%w: element %d outside universe [0,%d)", ErrBadInstance, e, inst.UniverseSize)
			}
			if e != prev {
				out = append(out, e)
				prev = e
			}
		}
		elemBuf = out
		h := hashElems(elemBuf)
		for _, j := range buckets[h] {
			if slices.Equal(f.set(int(j)), elemBuf) {
				f.mult[j]++
				continue probe
			}
		}
		j := int32(len(f.mult))
		f.elems = append(f.elems, elemBuf...)
		f.off = append(f.off, int32(len(f.elems)))
		f.mult = append(f.mult, 1)
		buckets[h] = append(buckets[h], j)
		if len(elemBuf) > f.maxSize {
			f.maxSize = len(elemBuf)
		}
	}
	f.buildIndex()
	return f, nil
}

// buildIndex inverts the folded family over the universe.
func (f *Family) buildIndex() {
	f.idxOff = make([]int32, f.universe+1)
	for _, e := range f.elems {
		f.idxOff[e+1]++
	}
	for e := 0; e < f.universe; e++ {
		f.idxOff[e+1] += f.idxOff[e]
	}
	f.idxIDs = make([]int32, len(f.elems))
	next := make([]int32, f.universe)
	for j := range f.mult {
		for _, e := range f.set(j) {
			f.idxIDs[f.idxOff[e]+next[e]] = int32(j)
			next[e]++
		}
	}
}

// set returns folded set j's sorted distinct elements.
func (f *Family) set(j int) []int32 { return f.elems[f.off[j]:f.off[j+1]] }

// setSize returns |folded set j|.
func (f *Family) setSize(j int) int32 { return f.off[j+1] - f.off[j] }

// containing returns the folded-set ids containing element e.
func (f *Family) containing(e int32) []int32 { return f.idxIDs[f.idxOff[e]:f.idxOff[e+1]] }

// NumSets returns |U|, the original (unfolded) set count.
func (f *Family) NumSets() int { return f.numSets }

// NumFolded returns the number of distinct folded sets.
func (f *Family) NumFolded() int { return len(f.mult) }

// Universe returns the element-id bound.
func (f *Family) Universe() int { return f.universe }

// MemBytes returns the resident size of the family's immutable tables
// (all int32 entries). Transient Solver scratch — bounded by roughly the
// same order and reclaimed by the GC between solves — is not counted.
func (f *Family) MemBytes() int64 {
	return (int64(cap(f.elems)) + int64(cap(f.off)) + int64(cap(f.mult)) +
		int64(cap(f.idxOff)) + int64(cap(f.idxIDs))) * 4
}

// Solve runs the minimum-marginal-union greedy at demand p using a pooled
// Solver, so repeated calls against one Family are near-allocation-free.
// Safe for concurrent use (each call draws its own scratch); for explicit
// single-goroutine reuse, hold a NewSolver instead.
func (f *Family) Solve(p int) (*Solution, error) {
	s := f.solver()
	defer f.solvers.Put(s)
	return s.Solve(p)
}

// SolveBudget runs the budgeted max-coverage greedy with a pooled Solver;
// see Solve for the concurrency contract.
func (f *Family) SolveBudget(budget int) (*Solution, error) {
	s := f.solver()
	defer f.solvers.Put(s)
	return s.SolveBudget(budget)
}

func (f *Family) solver() *Solver {
	if s, ok := f.solvers.Get().(*Solver); ok {
		return s
	}
	return NewSolver(f)
}

// Solver holds all mutable scratch of the greedy solvers — marginals,
// the bucket queue, the density heap and the epoch-versioned union bitset
// — sized once for its Family and reused across solves, so a repeated
// solve allocates nothing beyond the returned Solution.
//
// A Solver must NOT be shared across goroutines; it serializes nothing.
// Concurrent solving is done with one Solver per goroutine against the
// shared (immutable) Family.
type Solver struct {
	f       *Family
	tr      *obs.Trace // solve-stage spans; nil (the default) records nothing
	marg    []int32    // uncovered-element count per folded set
	done    []bool     // folded set fully covered
	buckets [][]int32  // bucket queue: sets keyed by current marginal
	heap    densityHeap

	inUnion []uint32 // element e is in the union iff inUnion[e] == epoch
	epoch   uint32
}

// SetTrace points the solver's solve-stage spans at tr: subsequent
// Solve/SolveBudget calls record one solve span each. A nil tr (the
// default) disables recording at zero cost — the narrow hook that lets a
// serving layer time greedy solves without setcover knowing about
// requests. The trace does not survive Rebind's family swap; callers
// rebinding per query set it alongside.
func (s *Solver) SetTrace(tr *obs.Trace) { s.tr = tr }

// NewSolver returns a solver with scratch sized for the family.
func NewSolver(f *Family) *Solver {
	return &Solver{
		f:       f,
		marg:    make([]int32, f.NumFolded()),
		done:    make([]bool, f.NumFolded()),
		buckets: make([][]int32, f.maxSize+1),
		inUnion: make([]uint32, f.universe),
	}
}

// Rebind repoints the solver at another family, growing scratch only when
// the new family needs more of it. The batched ranking path holds one
// Solver across many candidates' pools and rebinds it per pool, so the
// marginal/bucket/bitset storage amortizes across the whole batch instead
// of being reallocated per candidate. Solutions are identical to a fresh
// NewSolver's: every solve re-derives its state in reset, and the union
// bitset stays valid because epochs are monotone — every stale entry was
// written at an earlier epoch, so it can never match a future one (a
// newly grown bitset holds zeros, which no live epoch ever equals).
func (s *Solver) Rebind(f *Family) {
	s.f = f
	s.tr = nil // a pooled solver must not leak spans into a later query's trace
	if n := f.NumFolded(); cap(s.marg) < n {
		s.marg = make([]int32, n)
	} else {
		s.marg = s.marg[:n]
	}
	if n := f.NumFolded(); cap(s.done) < n {
		s.done = make([]bool, n)
	} else {
		s.done = s.done[:n]
	}
	if n := f.maxSize + 1; cap(s.buckets) < n {
		grown := make([][]int32, n)
		copy(grown, s.buckets) // keep accumulated per-bucket capacity
		s.buckets = grown
	} else {
		s.buckets = s.buckets[:n]
	}
	if n := f.universe; cap(s.inUnion) < n {
		s.inUnion = make([]uint32, n)
	} else {
		s.inUnion = s.inUnion[:n]
	}
}

// reset prepares the per-solve scratch: a fresh union epoch and re-derived
// marginals. The bucket queue and heap keep their capacity.
func (s *Solver) reset() {
	s.epoch++
	if s.epoch == 0 { // wrapped: clear and restart
		clear(s.inUnion)
		s.epoch = 1
	}
	f := s.f
	for j := range s.marg {
		s.marg[j] = f.setSize(j)
		s.done[j] = false
	}
}

// Solve runs the minimum-marginal greedy for demand p, bit-identical to
// the one-shot Greedy: same picks, same union, same counters. It returns
// ErrInfeasible when p exceeds |U| and ErrBadInstance for p ≤ 0.
func (s *Solver) Solve(p int) (*Solution, error) {
	f := s.f
	if p <= 0 {
		return nil, fmt.Errorf("%w: demand p=%d must be positive", ErrBadInstance, p)
	}
	if p > f.numSets {
		return nil, fmt.Errorf("%w: p=%d > |U|=%d", ErrInfeasible, p, f.numSets)
	}
	sp := s.tr.StartSpan(obs.StageSolve)
	defer sp.End()
	s.reset()
	maxSize := f.maxSize
	for c := 0; c <= maxSize; c++ {
		s.buckets[c] = s.buckets[c][:0]
	}
	for j := range s.marg {
		s.buckets[s.marg[j]] = append(s.buckets[s.marg[j]], int32(j))
	}

	sol := &Solution{Demand: p}
	// Empty sets (possible in principle) are covered from the start.
	for j := range s.marg {
		if s.marg[j] == 0 && !s.done[j] {
			s.done[j] = true
			sol.Covered += int(f.mult[j])
		}
	}

	cur := 0
	for sol.Covered < p {
		// Find the lowest non-empty bucket with a live entry.
		for cur <= maxSize && len(s.buckets[cur]) == 0 {
			cur++
		}
		if cur > maxSize {
			// Cannot happen while sol.Covered < p ≤ total multiplicity,
			// but guard against inconsistency rather than spin.
			return nil, fmt.Errorf("%w: internal exhaustion at covered=%d, p=%d", ErrInfeasible, sol.Covered, p)
		}
		j := s.buckets[cur][len(s.buckets[cur])-1]
		s.buckets[cur] = s.buckets[cur][:len(s.buckets[cur])-1]
		if s.done[j] || int(s.marg[j]) != cur {
			// Stale entry: either already covered (skip) or its marginal
			// shrank and a fresher entry exists in a lower bucket.
			if !s.done[j] && int(s.marg[j]) < cur {
				// Re-file defensively (normally the decrement path already
				// filed it).
				s.buckets[s.marg[j]] = append(s.buckets[s.marg[j]], j)
				cur = int(s.marg[j])
			}
			continue
		}
		// Pick folded set j: add its uncovered elements to the union.
		sol.Picked++
		for _, e := range f.set(int(j)) {
			if s.inUnion[e] == s.epoch {
				continue
			}
			s.inUnion[e] = s.epoch
			sol.Union = append(sol.Union, e)
			for _, k := range f.containing(e) {
				if s.done[k] {
					continue
				}
				s.marg[k]--
				if s.marg[k] == 0 {
					s.done[k] = true
					sol.Covered += int(f.mult[k])
				} else {
					s.buckets[s.marg[k]] = append(s.buckets[s.marg[k]], k)
					if int(s.marg[k]) < cur {
						cur = int(s.marg[k])
					}
				}
			}
		}
		// j itself reached marginal 0 via the loop above.
	}
	slices.Sort(sol.Union)
	return sol, nil
}

// SolveBudget runs the budgeted max-coverage greedy (best covered
// multiplicity per newly added element, among sets fitting the remaining
// budget), bit-identical to the one-shot GreedyBudget.
func (s *Solver) SolveBudget(budget int) (*Solution, error) {
	f := s.f
	if budget <= 0 {
		return nil, fmt.Errorf("%w: budget %d must be positive", ErrBadInstance, budget)
	}
	sp := s.tr.StartSpan(obs.StageSolve)
	defer sp.End()
	s.reset()
	sol := &Solution{}
	s.heap = s.heap[:0]
	for j := range s.marg {
		if s.marg[j] == 0 {
			s.done[j] = true
			sol.Covered += int(f.mult[j])
			continue
		}
		s.heap.push(densityEntry{id: int32(j), marg: int(s.marg[j]), density: float64(f.mult[j]) / float64(s.marg[j])})
	}
	remaining := budget
	for len(s.heap) > 0 && remaining > 0 {
		entry := s.heap.pop()
		j := entry.id
		if s.done[j] || int(s.marg[j]) != entry.marg {
			continue // stale: a fresher entry exists (or the set is covered)
		}
		if int(s.marg[j]) > remaining {
			// Doesn't fit now; future decrements re-push it.
			continue
		}
		sol.Picked++
		for _, e := range f.set(int(j)) {
			if s.inUnion[e] == s.epoch {
				continue
			}
			s.inUnion[e] = s.epoch
			sol.Union = append(sol.Union, e)
			remaining--
			for _, k := range f.containing(e) {
				if s.done[k] {
					continue
				}
				s.marg[k]--
				if s.marg[k] == 0 {
					s.done[k] = true
					sol.Covered += int(f.mult[k])
				} else {
					s.heap.push(densityEntry{id: k, marg: int(s.marg[k]), density: float64(f.mult[k]) / float64(s.marg[k])})
				}
			}
		}
	}
	slices.Sort(sol.Union)
	return sol, nil
}
