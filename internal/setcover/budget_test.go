package setcover

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestGreedyBudgetBasic(t *testing.T) {
	inst := &Instance{
		UniverseSize: 10,
		Sets: [][]int32{
			{0, 1},
			{1, 2},
			{5, 6, 7, 8},
		},
	}
	sol, err := GreedyBudget(inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Budget 3 fits the two overlapping pairs ({0,1,2}) but not the quad.
	if !reflect.DeepEqual(sol.Union, []int32{0, 1, 2}) {
		t.Errorf("Union = %v, want [0 1 2]", sol.Union)
	}
	if sol.Covered != 2 {
		t.Errorf("Covered = %d, want 2", sol.Covered)
	}
}

func TestGreedyBudgetRespectsBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng)
		budget := 1 + rng.Intn(6)
		sol, err := GreedyBudget(inst, budget)
		if err != nil {
			return false
		}
		if len(sol.Union) > budget {
			return false
		}
		// Verify the claimed coverage.
		inUnion := map[int32]bool{}
		for _, x := range sol.Union {
			inUnion[x] = true
		}
		covered := 0
		for _, s := range inst.Sets {
			ok := true
			for _, x := range s {
				if !inUnion[x] {
					ok = false
					break
				}
			}
			if ok {
				covered++
			}
		}
		return covered == sol.Covered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestGreedyBudgetMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst := randomInstance(rng)
	prev := -1
	for budget := 1; budget <= inst.UniverseSize; budget++ {
		sol, err := GreedyBudget(inst, budget)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Covered < prev {
			t.Fatalf("coverage decreased at budget %d: %d < %d", budget, sol.Covered, prev)
		}
		prev = sol.Covered
	}
}

func TestGreedyBudgetTooSmall(t *testing.T) {
	inst := &Instance{UniverseSize: 10, Sets: [][]int32{{0, 1, 2, 3, 4}}}
	sol, err := GreedyBudget(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Covered != 0 || len(sol.Union) != 0 {
		t.Errorf("nothing fits budget 2, got %+v", sol)
	}
}

func TestGreedyBudgetValidation(t *testing.T) {
	inst := &Instance{UniverseSize: 5, Sets: [][]int32{{0}}}
	if _, err := GreedyBudget(inst, 0); !errors.Is(err, ErrBadInstance) {
		t.Errorf("budget 0: err = %v", err)
	}
	bad := &Instance{UniverseSize: 5, Sets: [][]int32{{9}}}
	if _, err := GreedyBudget(bad, 1); !errors.Is(err, ErrBadInstance) {
		t.Errorf("bad element: err = %v", err)
	}
}

func TestGreedyBudgetMultiplicity(t *testing.T) {
	inst := &Instance{
		UniverseSize: 10,
		Sets:         [][]int32{{1, 2, 3}, {5}, {5}, {5}},
	}
	sol, err := GreedyBudget(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol.Union, []int32{5}) || sol.Covered != 3 {
		t.Errorf("budget 1 should take the triple-multiplicity singleton: %+v", sol)
	}
}
