package mc

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestStoppingRuleThresholdPositive(t *testing.T) {
	// The paper's printed ln(2/N) would be negative for N > 2; ours must
	// grow with N.
	small := StoppingRuleThreshold(0.1, 10)
	big := StoppingRuleThreshold(0.1, 100000)
	if small <= 1 || big <= small {
		t.Errorf("thresholds: N=10 → %v, N=1e5 → %v; want increasing and > 1", small, big)
	}
	// Tighter eps needs more mass.
	if StoppingRuleThreshold(0.01, 100) <= StoppingRuleThreshold(0.1, 100) {
		t.Error("smaller eps should raise the threshold")
	}
}

func TestStoppingRuleAccuracy(t *testing.T) {
	for _, p := range []float64{0.5, 0.1, 0.03} {
		rng := rand.New(rand.NewSource(int64(p * 1000)))
		est, draws, _, err := StoppingRule(context.Background(), 0.05, 1000, 0, func() bool {
			return rng.Float64() < p
		})
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if rel := math.Abs(est-p) / p; rel > 0.05 {
			t.Errorf("p=%v: estimate %v, relative error %v > eps", p, est, rel)
		}
		if draws <= 0 {
			t.Errorf("p=%v: nonpositive draw count %d", p, draws)
		}
	}
}

func TestStoppingRuleDrawCountNearOptimal(t *testing.T) {
	p := 0.2
	rng := rand.New(rand.NewSource(8))
	_, draws, _, err := StoppingRule(context.Background(), 0.1, 100, 0, func() bool {
		return rng.Float64() < p
	})
	if err != nil {
		t.Fatal(err)
	}
	// The rule stops after ~Υ/p draws.
	want := StoppingRuleThreshold(0.1, 100) / p
	if float64(draws) < want*0.5 || float64(draws) > want*2 {
		t.Errorf("draws = %d, want within 2x of %v", draws, want)
	}
}

func TestStoppingRuleValidation(t *testing.T) {
	ctx := context.Background()
	always := func() bool { return true }
	if _, _, _, err := StoppingRule(ctx, 0, 10, 0, always); !errors.Is(err, ErrBadParam) {
		t.Errorf("eps=0: err = %v", err)
	}
	if _, _, _, err := StoppingRule(ctx, 1, 10, 0, always); !errors.Is(err, ErrBadParam) {
		t.Errorf("eps=1: err = %v", err)
	}
	if _, _, _, err := StoppingRule(ctx, 0.1, 1, 0, always); !errors.Is(err, ErrBadParam) {
		t.Errorf("N=1: err = %v", err)
	}
}

func TestStoppingRuleZeroMean(t *testing.T) {
	_, draws, truncated, err := StoppingRule(context.Background(), 0.1, 10, 5000, func() bool { return false })
	if !errors.Is(err, ErrZeroEstimate) {
		t.Fatalf("err = %v, want ErrZeroEstimate", err)
	}
	if draws != 5000 {
		t.Errorf("draws = %d, want the full budget", draws)
	}
	if !truncated {
		t.Error("budget-exhausted zero estimate not flagged truncated")
	}
}

func TestStoppingRuleBudgetFallback(t *testing.T) {
	// Tiny p with small budget: should return the plain MC mean.
	rng := rand.New(rand.NewSource(4))
	p := 0.5
	est, draws, truncated, err := StoppingRule(context.Background(), 0.001, 1e6, 2000, func() bool {
		return rng.Float64() < p
	})
	if err != nil {
		t.Fatal(err)
	}
	if draws != 2000 {
		t.Errorf("draws = %d, want budget 2000", draws)
	}
	if !truncated {
		t.Error("budget fallback not flagged truncated")
	}
	if math.Abs(est-p) > 0.05 {
		t.Errorf("fallback estimate %v too far from %v", est, p)
	}
}

func TestStoppingRuleCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := StoppingRule(ctx, 0.1, 10, 0, func() bool { return false })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestExpectedSimulations(t *testing.T) {
	if !math.IsInf(ExpectedSimulations(0.1, 100, 0), 1) {
		t.Error("p=0 should be infinite")
	}
	// Halving p doubles the cost.
	a := ExpectedSimulations(0.1, 100, 0.2)
	b := ExpectedSimulations(0.1, 100, 0.1)
	if math.Abs(b/a-2) > 1e-9 {
		t.Errorf("cost ratio = %v, want 2", b/a)
	}
}

// TestExpectedSimulationsMatchesThreshold cross-checks Eq. 6 against the
// stopping rule it describes: the rule stops after ~Υ/p draws, so l₀ must
// agree with StoppingRuleThreshold(ε, N)/p up to the ε² additive term —
// both use ln(2N). (With the paper's ln(N/2) print, l₀ would undershoot
// Υ/p by a p-independent margin.)
func TestExpectedSimulationsMatchesThreshold(t *testing.T) {
	for _, eps := range []float64{0.05, 0.1, 0.3} {
		for _, n := range []float64{100, 1e5} {
			for _, p := range []float64{0.5, 0.05, 0.001} {
				l0 := ExpectedSimulations(eps, n, p)
				want := StoppingRuleThreshold(eps, n) / p
				// l₀ = (ε² + (Υ−1)·ε²·…)/(ε²p) differs from Υ/p by
				// exactly (ε²−1)/(ε²·p)·ε² ⇒ tiny relative to Υ/p.
				if rel := math.Abs(l0-want) / want; rel > 1e-3 {
					t.Errorf("eps=%v N=%v p=%v: l0=%v, Υ/p=%v (rel %v)", eps, n, p, l0, want, rel)
				}
				// The rule also empirically stops near l₀.
				if p >= 0.05 && n == 100 {
					rng := rand.New(rand.NewSource(int64(p*1e4) + int64(eps*100)))
					_, draws, _, err := StoppingRule(context.Background(), eps, n, 0, func() bool {
						return rng.Float64() < p
					})
					if err != nil {
						t.Fatal(err)
					}
					if float64(draws) < l0/2 || float64(draws) > l0*2 {
						t.Errorf("eps=%v N=%v p=%v: draws=%d, want within 2x of l0=%v", eps, n, p, draws, l0)
					}
				}
			}
		}
	}
}

// TestStoppingRuleConvergesOnLastBudgetedDraw pins the truncation
// boundary: a rule whose Υ-th unit of success mass arrives exactly on the
// final budgeted draw has converged — it must return the stopping-rule
// estimate un-truncated, identical to the unbounded run. One draw less
// and it is a genuine truncation.
func TestStoppingRuleConvergesOnLastBudgetedDraw(t *testing.T) {
	const eps, n, p = 0.2, 50.0, 0.3
	run := func(maxDraws int64) (float64, int64, bool) {
		rng := rand.New(rand.NewSource(11))
		est, draws, truncated, err := StoppingRule(context.Background(), eps, n, maxDraws, func() bool {
			return rng.Float64() < p
		})
		if err != nil {
			t.Fatal(err)
		}
		return est, draws, truncated
	}
	ref, d, truncated := run(0)
	if truncated {
		t.Fatal("unbounded run flagged truncated")
	}
	est, draws, truncated := run(d) // budget == exact convergence point
	if truncated || est != ref || draws != d {
		t.Errorf("budget %d (= convergence): est=%v draws=%d truncated=%v, want %v/%d/false",
			d, est, draws, truncated, ref, d)
	}
	est, draws, truncated = run(d - 1)
	if !truncated || draws != d-1 {
		t.Errorf("budget %d (one short): draws=%d truncated=%v, want %d/true", d-1, draws, truncated, d-1)
	}
	if est == ref {
		t.Errorf("truncated estimate %v should be the plain mean, not the stopping-rule value", est)
	}
}

func TestChernoffDeviationBound(t *testing.T) {
	// Degenerate inputs give the trivial bound 1.
	if ChernoffDeviationBound(0, 0.5, 0.1) != 1 {
		t.Error("l=0 should give 1")
	}
	// More samples → smaller bound.
	b1 := ChernoffDeviationBound(100, 0.5, 0.1)
	b2 := ChernoffDeviationBound(10000, 0.5, 0.1)
	if b2 >= b1 || b1 >= 2 {
		t.Errorf("bounds b1=%v b2=%v", b1, b2)
	}
	// Exact value check: 2·exp(−lµδ²/(2+δ)).
	want := 2 * math.Exp(-100*0.5*0.01/2.1)
	if got := ChernoffDeviationBound(100, 0.5, 0.1); math.Abs(got-want) > 1e-12 {
		t.Errorf("bound = %v, want %v", got, want)
	}
}

func TestRealizationThreshold(t *testing.T) {
	l, err := RealizationThreshold(0.1, 0.01, 0.05, 100, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if l <= 0 {
		t.Fatalf("l* = %v", l)
	}
	// Using |Vmax| < n must reduce the threshold (Sec. III-C).
	l2, err := RealizationThreshold(0.1, 0.01, 0.05, 20, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if l2 >= l {
		t.Errorf("smaller union-bound dimension should shrink l*: %v vs %v", l2, l)
	}
	// Larger pStar reduces it too.
	l3, err := RealizationThreshold(0.1, 0.01, 0.5, 100, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	if l3 >= l {
		t.Errorf("larger pStar should shrink l*: %v vs %v", l3, l)
	}
}

func TestRealizationThresholdValidation(t *testing.T) {
	cases := []struct {
		e0, e1, p float64
		n         int
		bigN      float64
	}{
		{0, 0.1, 0.1, 10, 100},
		{0.1, 1, 0.1, 10, 100},
		{0.1, 0.1, 0, 10, 100},
		{0.1, 0.1, 0.1, 0, 100},
		{0.1, 0.1, 0.1, 10, 1},
	}
	for _, c := range cases {
		if _, err := RealizationThreshold(c.e0, c.e1, c.p, c.n, c.bigN); !errors.Is(err, ErrBadParam) {
			t.Errorf("RealizationThreshold(%+v): err = %v, want ErrBadParam", c, err)
		}
	}
}

// TestRealizationThresholdMeetsChernoff sanity-checks the derivation: with
// l = l*, the per-set Chernoff bound times 2ⁿ·... stays below 1/N.
func TestRealizationThresholdMeetsChernoff(t *testing.T) {
	eps0, eps1, pStar := 0.05, 0.02, 0.1
	n, bigN := 30, 1000.0
	lStar, err := RealizationThreshold(eps0, eps1, pStar, n, bigN)
	if err != nil {
		t.Fatal(err)
	}
	// Worst case is f(I) as large as possible; the proof uses
	// delta = eps1·pStar/f(I) with f(I) ≤ pmax ≤ pStar/(1−eps0).
	fI := pStar / (1 - eps0)
	delta := eps1 * pStar / fI
	perSet := ChernoffDeviationBound(lStar, fI, delta)
	union := perSet * math.Pow(2, float64(n))
	if union > 1/bigN*1.0001 {
		t.Errorf("union bound = %v, want ≤ 1/N = %v", union, 1/bigN)
	}
}
