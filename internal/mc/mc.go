// Package mc implements the optimal Monte-Carlo estimation machinery the
// paper relies on: the Dagum–Karp–Luby–Ross stopping-rule estimator
// (Algorithm 2 / Lemma 3), used to estimate p_max with relative error ε
// and failure probability 1/N, and the Chernoff-bound arithmetic behind
// the realization-count threshold l* (Eq. 16).
package mc

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// ErrBadParam reports invalid estimation parameters.
var ErrBadParam = errors.New("mc: invalid parameter")

// ErrZeroEstimate is returned when sampling exhausts the configured budget
// without observing a single success — the estimated quantity is
// indistinguishable from zero at the allowed cost.
var ErrZeroEstimate = errors.New("mc: no successes within sample budget")

// e2 is (e − 2), the constant of the stopping-rule threshold.
var e2 = math.E - 2

// StoppingRuleThreshold returns Υ = 1 + 4(e−2)(1+ε)·ln(2N)/ε², the success
// mass the stopping rule must accumulate for relative error ε and failure
// probability 1/N. (The paper's Alg. 2 prints ln(2/N), a sign typo: the
// Dagum et al. threshold uses the log of 2/δ with δ = 1/N.)
func StoppingRuleThreshold(eps float64, n float64) float64 {
	return 1 + 4*e2*(1+eps)*math.Log(2*n)/(eps*eps)
}

// ExpectedSimulations returns l₀ of Eq. 6: the asymptotic number of
// simulations the stopping rule uses when the estimated mean is p. Its
// log argument is the same ln(2N) as StoppingRuleThreshold — the rule
// stops after ~Υ/p draws, so l₀ ≈ Υ/p (which the tests cross-check); the
// paper's ln(N/2) print inherits the Alg. 2 sign typo and would
// underestimate the expected cost.
func ExpectedSimulations(eps, n, p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	return (eps*eps + 4*e2*(1+eps)*math.Log(2*n)) / (eps * eps * p)
}

// StoppingRule runs the Dagum–Karp–Luby–Ross first-stage stopping rule on
// a Bernoulli sampler: draw until the accumulated successes reach Υ and
// return Υ divided by the number of draws. With probability ≥ 1 − 1/N the
// result is within relative error ε of the true mean.
//
// sample reports one Bernoulli draw. maxDraws bounds the worst case (the
// rule needs ~Υ/p draws; p ≈ 0 would never terminate): when positive and
// exhausted before the rule converges, ErrZeroEstimate is returned if
// nothing succeeded, otherwise the plain Monte-Carlo mean over the budget
// is returned with truncated = true — the estimate is still usable, only
// the stopping-rule accuracy guarantee is weakened. A rule that converges
// exactly on the last budgeted draw is a normal convergence, not a
// truncation. Callers that need the guarantee unconditionally should pass
// maxDraws = 0 for unbounded sampling.
func StoppingRule(ctx context.Context, eps float64, n float64, maxDraws int64, sample func() bool) (estimate float64, draws int64, truncated bool, err error) {
	if eps <= 0 || eps >= 1 {
		return 0, 0, false, fmt.Errorf("%w: eps=%v not in (0,1)", ErrBadParam, eps)
	}
	if n <= 1 {
		return 0, 0, false, fmt.Errorf("%w: N=%v must exceed 1", ErrBadParam, n)
	}
	upsilon := StoppingRuleThreshold(eps, n)
	var successes float64
	for draws = 0; successes < upsilon; {
		if draws%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, draws, false, err
			}
		}
		if maxDraws > 0 && draws >= maxDraws {
			if successes == 0 {
				return 0, draws, true, fmt.Errorf("%w (budget %d)", ErrZeroEstimate, maxDraws)
			}
			return successes / float64(draws), draws, true, nil
		}
		if sample() {
			successes++
		}
		draws++
	}
	return upsilon / float64(draws), draws, false, nil
}

// ChernoffDeviationBound returns the two-sided Chernoff bound (Eq. 9):
// Pr[|ΣXᵢ − lµ| ≥ δlµ] ≤ 2·exp(−lµδ²/(2+δ)) for i.i.d. Xᵢ ∈ [0,1].
func ChernoffDeviationBound(l, mu, delta float64) float64 {
	if l <= 0 || mu <= 0 || delta <= 0 {
		return 1
	}
	return 2 * math.Exp(-l*mu*delta*delta/(2+delta))
}

// RealizationThreshold returns l* of Eq. 16: the number of realizations
// that makes |F(B_l, I)/l − f(I)| ≤ ε₁·p*max hold simultaneously for all
// 2ⁿ invitation sets with probability ≥ 1 − 1/N, given the p_max estimate
// pStar with relative error ε₀. The union-bound dimension n may be
// replaced by |V_max| (Sec. III-C) since every candidate invitation set is
// a subset of V_max.
func RealizationThreshold(eps0, eps1, pStar float64, n int, bigN float64) (float64, error) {
	if eps0 <= 0 || eps0 >= 1 || eps1 <= 0 || eps1 >= 1 {
		return 0, fmt.Errorf("%w: eps0=%v eps1=%v must lie in (0,1)", ErrBadParam, eps0, eps1)
	}
	if pStar <= 0 {
		return 0, fmt.Errorf("%w: pStar=%v must be positive", ErrBadParam, pStar)
	}
	if n < 1 || bigN <= 1 {
		return 0, fmt.Errorf("%w: n=%d N=%v", ErrBadParam, n, bigN)
	}
	num := (math.Ln2 + math.Log(bigN) + float64(n)*math.Ln2) * (2 + eps1*(1-eps0))
	den := eps1 * eps1 * (1 - eps0) * (1 - eps0) * pStar
	return num / den, nil
}
