package gen

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// ErrBadEdgeList reports a malformed edge-list line.
var ErrBadEdgeList = errors.New("gen: malformed edge list")

// ReadEdgeList parses a SNAP-style whitespace-separated edge list:
// one "u v" pair per line, '#' comment lines ignored, arbitrary
// non-negative integer ids (remapped densely in first-seen order).
// Directed duplicates (u v / v u) collapse to one undirected edge.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	b := graph.NewBuilder(0)
	ids := make(map[int64]graph.Node)
	intern := func(raw int64) graph.Node {
		if v, ok := ids[raw]; ok {
			return v
		}
		v := graph.Node(len(ids))
		ids[raw] = v
		return v
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadEdgeList, lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadEdgeList, lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadEdgeList, lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("%w: line %d: negative id", ErrBadEdgeList, lineNo)
		}
		b.AddEdge(intern(u), intern(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gen: reading edge list: %w", err)
	}
	return b.Build(), nil
}

// WriteEdgeList writes g as a SNAP-style edge list with a summary header.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# Undirected graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges()); err != nil {
		return fmt.Errorf("gen: writing edge list: %w", err)
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", e.U, e.V); err != nil {
			return fmt.Errorf("gen: writing edge list: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("gen: writing edge list: %w", err)
	}
	return nil
}
