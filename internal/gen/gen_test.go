package gen

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := ErdosRenyi(50, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 50 {
		t.Errorf("nodes = %d, want 50", g.NumNodes())
	}
	if g.NumEdges() != 200 {
		t.Errorf("edges = %d, want exactly 200", g.NumEdges())
	}
}

func TestErdosRenyiValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := ErdosRenyi(-1, 0, rng); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative n: err = %v", err)
	}
	if _, err := ErdosRenyi(4, 7, rng); !errors.Is(err, ErrBadParam) {
		t.Errorf("m > n(n-1)/2: err = %v", err)
	}
	if _, err := ErdosRenyi(4, -2, rng); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative m: err = %v", err)
	}
	if g, err := ErdosRenyi(4, 6, rng); err != nil || g.NumEdges() != 6 {
		t.Errorf("K4 case: g=%v err=%v", g, err)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, k := 500, 4
	g, err := BarabasiAlbert(n, k, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != n {
		t.Errorf("nodes = %d, want %d", g.NumNodes(), n)
	}
	// Expected edges: clique k(k+1)/2 plus (n-k-1)*k.
	want := int64(k*(k+1)/2 + (n-k-1)*k)
	if g.NumEdges() != want {
		t.Errorf("edges = %d, want %d", g.NumEdges(), want)
	}
	// Connectivity: PA growth always attaches to the existing component.
	_, comps := g.ConnectedComponents()
	if comps != 1 {
		t.Errorf("components = %d, want 1", comps)
	}
	// Degree skew: max degree should far exceed the average.
	if float64(g.MaxDegree()) < 3*g.AvgDegree() {
		t.Errorf("max degree %d vs avg %.1f: insufficient skew for PA", g.MaxDegree(), g.AvgDegree())
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BarabasiAlbert(3, 3, rng); !errors.Is(err, ErrBadParam) {
		t.Errorf("n <= k: err = %v", err)
	}
	if _, err := BarabasiAlbert(10, 0, rng); !errors.Is(err, ErrBadParam) {
		t.Errorf("k = 0: err = %v", err)
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := WattsStrogatz(100, 3, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Errorf("nodes = %d, want 100", g.NumNodes())
	}
	// Ring lattice has exactly n*k edges; rewiring only moves endpoints
	// (duplicates may slightly reduce the count).
	if g.NumEdges() > 300 || g.NumEdges() < 270 {
		t.Errorf("edges = %d, want ≈300", g.NumEdges())
	}
}

func TestWattsStrogatzNoRewire(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := WattsStrogatz(20, 2, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 40 {
		t.Fatalf("pure lattice edges = %d, want 40", g.NumEdges())
	}
	for v := 0; v < 20; v++ {
		if g.Degree(graph.Node(v)) != 4 {
			t.Errorf("lattice degree(%d) = %d, want 4", v, g.Degree(graph.Node(v)))
		}
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := WattsStrogatz(4, 2, 0.5, rng); !errors.Is(err, ErrBadParam) {
		t.Errorf("n < 2k+1: err = %v", err)
	}
	if _, err := WattsStrogatz(10, 2, 1.5, rng); !errors.Is(err, ErrBadParam) {
		t.Errorf("beta > 1: err = %v", err)
	}
}

func TestPowerLawConfiguration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := PowerLawConfiguration(2000, 2.5, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2000 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	avg := g.AvgDegree()
	if avg < 4 || avg > 9 {
		t.Errorf("avg degree = %v, want roughly 8 (minus collision loss)", avg)
	}
	if g.MaxDegree() < 3*int(avg) {
		t.Errorf("max degree %d lacks power-law tail (avg %v)", g.MaxDegree(), avg)
	}
}

func TestPowerLawConfigurationValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		n        int
		exp, avg float64
	}{{1, 2.5, 3}, {100, 1.0, 3}, {100, 2.5, 0}, {100, 2.5, 200}} {
		if _, err := PowerLawConfiguration(tc.n, tc.exp, tc.avg, rng); !errors.Is(err, ErrBadParam) {
			t.Errorf("PowerLawConfiguration(%d,%v,%v) err = %v, want ErrBadParam", tc.n, tc.exp, tc.avg, err)
		}
	}
}

func TestStochasticBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := StochasticBlock([]int{50, 50}, 0.2, 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	within, across := 0, 0
	for _, e := range g.Edges() {
		if (e.U < 50) == (e.V < 50) {
			within++
		} else {
			across++
		}
	}
	if within <= across*3 {
		t.Errorf("within = %d, across = %d: community structure missing", within, across)
	}
}

func TestStochasticBlockValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := StochasticBlock([]int{5, 0}, 0.1, 0.1, rng); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero block: err = %v", err)
	}
	if _, err := StochasticBlock([]int{5}, 1.5, 0.1, rng); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad pIn: err = %v", err)
	}
}

func TestPreferentialMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := PreferentialMixed(400, 5, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 400 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	_, comps := g.ConnectedComponents()
	if comps != 1 {
		t.Errorf("components = %d, want 1", comps)
	}
	if _, err := PreferentialMixed(10, 2, 1.5, rng); !errors.Is(err, ErrBadParam) {
		t.Errorf("bad prefBias: err = %v", err)
	}
	if _, err := PreferentialMixed(2, 2, 0.5, rng); !errors.Is(err, ErrBadParam) {
		t.Errorf("n too small: err = %v", err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	g1, err := BarabasiAlbert(200, 3, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BarabasiAlbert(200, 3, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("edge counts differ for identical seed")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) != 4 {
		t.Fatalf("registry size = %d, want 4", len(ds))
	}
	wantNames := []string{"Wiki", "HepTh", "HepPh", "Youtube"}
	for i, w := range wantNames {
		if ds[i].Name != w {
			t.Errorf("dataset %d = %s, want %s", i, ds[i].Name, w)
		}
	}
	if _, err := DatasetByName("Wiki"); err != nil {
		t.Errorf("DatasetByName(Wiki) err = %v", err)
	}
	if _, err := DatasetByName("nope"); !errors.Is(err, ErrBadParam) {
		t.Errorf("unknown dataset err = %v", err)
	}
}

func TestDatasetGenerateMatchesTableI(t *testing.T) {
	// At scale 0.05 the edges-per-node ratio should match the published
	// Table I "Avg. Degree" within tolerance for the small datasets.
	for _, d := range Datasets()[:3] {
		g, err := d.Generate(0.05, 99)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		ratio := float64(g.NumEdges()) / float64(g.NumNodes())
		if math.Abs(ratio-d.PaperAvgDegree)/d.PaperAvgDegree > 0.15 {
			t.Errorf("%s: edges/node = %.2f, paper %.2f", d.Name, ratio, d.PaperAvgDegree)
		}
		st := Summarize(g)
		if st.GiantCompFrac < 0.99 {
			t.Errorf("%s: giant component %.2f, want ~1 (PA growth)", d.Name, st.GiantCompFrac)
		}
	}
}

func TestDatasetGenerateValidation(t *testing.T) {
	d := Datasets()[0]
	if _, err := d.Generate(0, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("scale 0: err = %v", err)
	}
	if _, err := d.Generate(1.5, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("scale 1.5: err = %v", err)
	}
}

func TestSummarize(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	st := Summarize(g)
	if st.Nodes != 4 || st.Edges != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.MaxDegree != 2 {
		t.Errorf("MaxDegree = %d, want 2", st.MaxDegree)
	}
	if st.GiantCompFrac != 0.75 {
		t.Errorf("GiantCompFrac = %v, want 0.75", st.GiantCompFrac)
	}
	if est := Summarize(&graph.Graph{}); est.Nodes != 0 || est.EdgesPerNode != 0 {
		t.Errorf("empty stats = %+v", est)
	}
}

func TestReadEdgeList(t *testing.T) {
	in := `# comment line

10 20
20 30
30 10
10 20
20 10
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Errorf("nodes = %d, want 3 (dense remap)", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("edges = %d, want 3 (dedup)", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"1\n",                      // too few fields
		"a b\n",                    // non-numeric
		"1 x\n",                    // non-numeric second
		"-1 2\n",                   // negative id
		"3 99999999999999999999\n", // overflow
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); !errors.Is(err, ErrBadEdgeList) {
			t.Errorf("input %q: err = %v, want ErrBadEdgeList", in, err)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := ErdosRenyi(20, 30, rng)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		// Node ids may be remapped, but counts and the degree multiset
		// must survive.
		if g2.NumEdges() != g.NumEdges() {
			return false
		}
		degCount := func(g *graph.Graph) map[int]int {
			m := map[int]int{}
			for v := 0; v < g.NumNodes(); v++ {
				if d := g.Degree(graph.Node(v)); d > 0 {
					m[d]++
				}
			}
			return m
		}
		d1, d2 := degCount(g), degCount(g2)
		if len(d1) != len(d2) {
			return false
		}
		for k, v := range d1 {
			if d2[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
