// Package gen generates synthetic social graphs and reads/writes SNAP-style
// edge lists. It provides the offline substitutes for the four SNAP
// datasets of the paper's Table I (Wiki-Vote, Cit-HepTh, Cit-HepPh,
// Youtube): heavy-tailed preferential-attachment analogs matched to the
// published node/edge counts, plus general-purpose generators
// (Erdős–Rényi, Barabási–Albert, Watts–Strogatz, power-law configuration
// model, stochastic block model) used by tests, examples and ablations.
package gen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// ErrBadParam reports an invalid generator parameter.
var ErrBadParam = errors.New("gen: invalid parameter")

// ErdosRenyi samples G(n, m): m distinct uniform edges over n nodes.
// Requires 0 ≤ m ≤ n(n−1)/2.
func ErdosRenyi(n int, m int, rng *rand.Rand) (*graph.Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadParam, n)
	}
	maxM := int64(n) * int64(n-1) / 2
	if int64(m) > maxM || m < 0 {
		return nil, fmt.Errorf("%w: m=%d not in [0, %d]", ErrBadParam, m, maxM)
	}
	b := graph.NewBuilder(n)
	b.Grow(m)
	seen := make(map[[2]graph.Node]struct{}, m)
	for len(seen) < m {
		u := graph.Node(rng.Intn(n))
		v := graph.Node(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]graph.Node{u, v}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build(), nil
}

// BarabasiAlbert grows a preferential-attachment graph: starting from a
// small clique of k+1 nodes, each new node attaches to k existing nodes
// chosen proportionally to degree (with rejection of duplicates). The
// result has roughly n·k edges and a power-law degree tail — the shape of
// citation and follower networks.
func BarabasiAlbert(n, k int, rng *rand.Rand) (*graph.Graph, error) {
	if k < 1 || n < k+1 {
		return nil, fmt.Errorf("%w: need n > k >= 1, got n=%d k=%d", ErrBadParam, n, k)
	}
	b := graph.NewBuilder(n)
	b.Grow(n * k)
	// repeated holds each edge endpoint once per incident edge, so uniform
	// sampling from it is degree-proportional sampling.
	repeated := make([]graph.Node, 0, 2*n*k)
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
			repeated = append(repeated, graph.Node(i), graph.Node(j))
		}
	}
	// chosen is a slice (not a map) so iteration order, and therefore the
	// generated graph for a fixed seed, is deterministic.
	chosen := make([]graph.Node, 0, k)
	for v := k + 1; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < k {
			u := repeated[rng.Intn(len(repeated))]
			if !containsNode(chosen, u) {
				chosen = append(chosen, u)
			}
		}
		for _, u := range chosen {
			b.AddEdge(graph.Node(v), u)
			repeated = append(repeated, graph.Node(v), u)
		}
	}
	return b.Build(), nil
}

// containsNode reports membership in a small slice; the attachment counts
// here are tiny, so a linear scan beats a map and keeps order stable.
func containsNode(xs []graph.Node, x graph.Node) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

// WattsStrogatz samples the small-world model: a ring lattice where every
// node connects to its k nearest neighbors on each side, with each edge
// rewired to a uniform endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) (*graph.Graph, error) {
	if k < 1 || n < 2*k+1 {
		return nil, fmt.Errorf("%w: need n >= 2k+1, got n=%d k=%d", ErrBadParam, n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("%w: beta=%v not in [0,1]", ErrBadParam, beta)
	}
	b := graph.NewBuilder(n)
	b.Grow(n * k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			u := (v + j) % n
			if rng.Float64() < beta {
				// Rewire the far endpoint uniformly (avoid self loop; the
				// builder deduplicates any parallel edge).
				u = rng.Intn(n)
				if u == v {
					u = (u + 1) % n
				}
			}
			b.AddEdge(graph.Node(v), graph.Node(u))
		}
	}
	return b.Build(), nil
}

// PowerLawConfiguration samples a configuration-model graph whose degree
// sequence follows a truncated power law with the given exponent (>1) and
// average degree approximately avgDeg. Self-loops and parallel edges from
// the stub matching are discarded, so realized degrees are slightly lower
// than the drawn sequence.
func PowerLawConfiguration(n int, exponent, avgDeg float64, rng *rand.Rand) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadParam, n)
	}
	if exponent <= 1 {
		return nil, fmt.Errorf("%w: exponent=%v must exceed 1", ErrBadParam, exponent)
	}
	if avgDeg <= 0 || avgDeg >= float64(n) {
		return nil, fmt.Errorf("%w: avgDeg=%v", ErrBadParam, avgDeg)
	}
	// Draw degrees from a Pareto-like law d = round(xmin·u^{-1/(exp-1)}),
	// truncated at n-1, then scale xmin to hit the average.
	raw := make([]float64, n)
	mean := 0.0
	for i := range raw {
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		raw[i] = math.Pow(u, -1/(exponent-1))
		mean += raw[i]
	}
	mean /= float64(n)
	scale := avgDeg / mean
	stubs := make([]graph.Node, 0, int(avgDeg*float64(n))+n)
	for i, r := range raw {
		d := int(r*scale + 0.5)
		if d < 1 {
			d = 1
		}
		if d > n-1 {
			d = n - 1
		}
		for j := 0; j < d; j++ {
			stubs = append(stubs, graph.Node(i))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := graph.NewBuilder(n)
	b.Grow(len(stubs) / 2)
	for i := 0; i+1 < len(stubs); i += 2 {
		b.AddEdge(stubs[i], stubs[i+1]) // self loops/duplicates dropped by builder
	}
	return b.Build(), nil
}

// StochasticBlock samples a planted-partition graph: blocks of the given
// sizes, with edge probability pIn inside a block and pOut across blocks.
// Intended for community-structured scenarios; sizes must be small enough
// that O(n²) sampling is acceptable.
func StochasticBlock(sizes []int, pIn, pOut float64, rng *rand.Rand) (*graph.Graph, error) {
	if pIn < 0 || pIn > 1 || pOut < 0 || pOut > 1 {
		return nil, fmt.Errorf("%w: probabilities pIn=%v pOut=%v", ErrBadParam, pIn, pOut)
	}
	n := 0
	blockOf := []int{}
	for b, sz := range sizes {
		if sz <= 0 {
			return nil, fmt.Errorf("%w: block %d size %d", ErrBadParam, b, sz)
		}
		n += sz
		for i := 0; i < sz; i++ {
			blockOf = append(blockOf, b)
		}
	}
	bld := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if blockOf[u] == blockOf[v] {
				p = pIn
			}
			if rng.Float64() < p {
				bld.AddEdge(graph.Node(u), graph.Node(v))
			}
		}
	}
	return bld.Build(), nil
}

// PreferentialMixed grows a graph where each new node attaches k edges,
// each independently either degree-proportional (probability prefBias) or
// uniform. prefBias = 1 is Barabási–Albert; 0 is a uniform-attachment
// random recursive graph. It interpolates the degree-skew of real social
// networks and is the generator behind the Table I analogs.
func PreferentialMixed(n, k int, prefBias float64, rng *rand.Rand) (*graph.Graph, error) {
	if k < 1 || n < k+1 {
		return nil, fmt.Errorf("%w: need n > k >= 1, got n=%d k=%d", ErrBadParam, n, k)
	}
	if prefBias < 0 || prefBias > 1 {
		return nil, fmt.Errorf("%w: prefBias=%v not in [0,1]", ErrBadParam, prefBias)
	}
	b := graph.NewBuilder(n)
	b.Grow(n * k)
	repeated := make([]graph.Node, 0, 2*n*k)
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
			repeated = append(repeated, graph.Node(i), graph.Node(j))
		}
	}
	chosen := make([]graph.Node, 0, k)
	for v := k + 1; v < n; v++ {
		chosen = chosen[:0]
		guard := 0
		for len(chosen) < k && guard < 64*k {
			guard++
			var u graph.Node
			if rng.Float64() < prefBias {
				u = repeated[rng.Intn(len(repeated))]
			} else {
				u = graph.Node(rng.Intn(v))
			}
			if u == graph.Node(v) || containsNode(chosen, u) {
				continue
			}
			chosen = append(chosen, u)
		}
		for _, u := range chosen {
			b.AddEdge(graph.Node(v), u)
			repeated = append(repeated, graph.Node(v), u)
		}
	}
	return b.Build(), nil
}
