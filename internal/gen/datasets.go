package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Dataset describes one of the paper's Table I datasets and how to
// synthesize its offline analog. Published numbers are retained for
// EXPERIMENTS.md reporting; Generate produces a graph whose node count,
// edge count and degree skew match at the requested scale.
type Dataset struct {
	// Name is the paper's dataset name.
	Name string
	// PaperNodes and PaperEdges are the published statistics.
	PaperNodes int
	PaperEdges int
	// PaperAvgDegree is the published "Avg. Degree" (the paper reports
	// edges per node, m/n).
	PaperAvgDegree float64
	// k is the average number of new edges per arriving node in the
	// preferential-attachment analog (≈ m/n).
	k float64
	// prefBias is the fraction of degree-proportional attachments,
	// controlling degree-tail heaviness.
	prefBias float64
}

// Datasets is the Table I registry, in the paper's column order.
func Datasets() []Dataset {
	return []Dataset{
		// Wiki-Vote: who-votes-on-whom; strongly skewed in-degree.
		{Name: "Wiki", PaperNodes: 7115, PaperEdges: 103689, PaperAvgDegree: 14.7, k: 14.57, prefBias: 0.9},
		// Cit-HepTh: citation network.
		{Name: "HepTh", PaperNodes: 27770, PaperEdges: 352807, PaperAvgDegree: 12.6, k: 12.70, prefBias: 0.8},
		// Cit-HepPh: citation network.
		{Name: "HepPh", PaperNodes: 34546, PaperEdges: 421578, PaperAvgDegree: 12.0, k: 12.20, prefBias: 0.8},
		// com-Youtube: sparse social network.
		{Name: "Youtube", PaperNodes: 1134890, PaperEdges: 5975248, PaperAvgDegree: 5.54, k: 5.27, prefBias: 0.85},
	}
}

// DatasetByName returns the registry entry with the given name.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("%w: unknown dataset %q", ErrBadParam, name)
}

// Generate synthesizes the analog graph at the given scale ∈ (0,1]
// (scale 1 reproduces the published node count; smaller scales shrink the
// node count while keeping the average degree, so comparative behaviour is
// preserved at laptop cost).
func (d Dataset) Generate(scale float64, seed int64) (*graph.Graph, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("%w: scale=%v not in (0,1]", ErrBadParam, scale)
	}
	n := int(float64(d.PaperNodes) * scale)
	minN := int(d.k) + 2
	if n < minN {
		n = minN
	}
	rng := rand.New(rand.NewSource(seed))
	g, err := preferentialMixedFrac(n, d.k, d.prefBias, rng)
	if err != nil {
		return nil, fmt.Errorf("gen: dataset %s: %w", d.Name, err)
	}
	return g, nil
}

// preferentialMixedFrac is PreferentialMixed with a fractional average
// attachment count: each arriving node adds ⌊k⌋ edges plus one more with
// probability frac(k).
func preferentialMixedFrac(n int, k float64, prefBias float64, rng *rand.Rand) (*graph.Graph, error) {
	kInt := int(k)
	frac := k - float64(kInt)
	if kInt < 1 {
		kInt = 1
		frac = 0
	}
	if n < kInt+2 {
		return nil, fmt.Errorf("%w: n=%d too small for k=%v", ErrBadParam, n, k)
	}
	b := graph.NewBuilder(n)
	b.Grow(int(float64(n)*k) + n)
	repeated := make([]graph.Node, 0, 2*(int(float64(n)*k)+n))
	for i := 0; i <= kInt; i++ {
		for j := i + 1; j <= kInt; j++ {
			b.AddEdge(graph.Node(i), graph.Node(j))
			repeated = append(repeated, graph.Node(i), graph.Node(j))
		}
	}
	chosen := make([]graph.Node, 0, kInt+1)
	for v := kInt + 1; v < n; v++ {
		chosen = chosen[:0]
		want := kInt
		if frac > 0 && rng.Float64() < frac {
			want++
		}
		if want >= v {
			want = v
		}
		guard := 0
		for len(chosen) < want && guard < 64*want {
			guard++
			var u graph.Node
			if rng.Float64() < prefBias {
				u = repeated[rng.Intn(len(repeated))]
			} else {
				u = graph.Node(rng.Intn(v))
			}
			if u == graph.Node(v) || containsNode(chosen, u) {
				continue
			}
			chosen = append(chosen, u)
		}
		for _, u := range chosen {
			b.AddEdge(graph.Node(v), u)
			repeated = append(repeated, graph.Node(v), u)
		}
	}
	return b.Build(), nil
}

// Stats summarizes a graph for Table I reporting.
type Stats struct {
	Nodes         int
	Edges         int64
	EdgesPerNode  float64 // the paper's "Avg. Degree" column (m/n)
	MaxDegree     int
	MedianDegree  int
	GiantCompFrac float64 // fraction of nodes in the largest component
}

// Summarize computes Stats for g.
func Summarize(g *graph.Graph) Stats {
	n := g.NumNodes()
	st := Stats{Nodes: n, Edges: g.NumEdges()}
	if n == 0 {
		return st
	}
	st.EdgesPerNode = float64(g.NumEdges()) / float64(n)
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		degs[v] = g.Degree(graph.Node(v))
		if degs[v] > st.MaxDegree {
			st.MaxDegree = degs[v]
		}
	}
	sort.Ints(degs)
	st.MedianDegree = degs[n/2]
	labels, count := g.ConnectedComponents()
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	st.GiantCompFrac = float64(largest) / float64(n)
	return st
}
