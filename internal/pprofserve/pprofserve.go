// Package pprofserve starts the net/http/pprof endpoint behind the CLI
// tools' -pprof flags, so hot paths (pool sampling, set-cover solves,
// coverage queries) can be profiled under real traffic:
//
//	afserve -dataset Wiki -pprof localhost:6060 < queries.jsonl &
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package pprofserve

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
)

// Start serves the default mux (where net/http/pprof registers its
// handlers) on addr from a background goroutine. An empty addr is a
// no-op. The listener is opened synchronously so a bad address fails the
// flag parse fast instead of dying silently mid-run.
func Start(addr string) error {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof: %w", err)
	}
	go func() {
		// The default mux also serves expvar if imported elsewhere; only
		// pprof is registered here. Serve errors after a successful listen
		// mean the process is shutting down — nothing to report.
		_ = http.Serve(ln, nil)
	}()
	return nil
}
