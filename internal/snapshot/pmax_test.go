package snapshot

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func testPmaxState() *PmaxState {
	return &PmaxState{
		Seed:        42,
		NS:          0x506D6178,
		Fingerprint: 0xDEADBEEFCAFEF00D,
		Draws:       10000,
		Successes:   []int64{0, 3, 100, 2047, 2048, 5000, 9999},
	}
}

func TestPmaxRoundTrip(t *testing.T) {
	for _, st := range []*PmaxState{
		testPmaxState(),
		{Seed: -7, NS: 1, Fingerprint: 2, Draws: 0, Successes: nil}, // empty ledger
		{Seed: 0, NS: 0, Fingerprint: 0, Draws: 5, Successes: []int64{4}},
	} {
		var buf bytes.Buffer
		if err := WritePmax(&buf, st); err != nil {
			t.Fatalf("%+v: write: %v", st, err)
		}
		if got, want := int64(buf.Len()), EncodedSizePmax(st); got != want {
			t.Errorf("encoded size %d, want %d", got, want)
		}
		if buf.Len()%8 != 0 {
			t.Errorf("blob size %d not a multiple of 8", buf.Len())
		}
		if !IsPmax(buf.Bytes()) {
			t.Error("IsPmax false on a pmax blob")
		}
		got, err := ReadPmax(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		want := *st
		if want.Successes == nil {
			want.Successes = []int64{}
		}
		if got.Seed != want.Seed || got.NS != want.NS || got.Fingerprint != want.Fingerprint ||
			got.Draws != want.Draws || !reflect.DeepEqual(got.Successes, want.Successes) {
			t.Errorf("round trip:\n got %+v\nwant %+v", got, want)
		}
		// Decode over the raw bytes agrees.
		dec, err := DecodePmax(buf.Bytes())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(dec.Successes, got.Successes) || dec.Draws != got.Draws {
			t.Errorf("decode diverged from read: %+v vs %+v", dec, got)
		}
	}
}

// TestPmaxConcatenatesAfterPool: a spill file is pool blobs followed by a
// pmax blob; reading them in sequence consumes each exactly.
func TestPmaxConcatenatesAfterPool(t *testing.T) {
	pool := &Pool{Seed: 1, NS: 2, Universe: 4, Total: 10,
		Offsets: []int32{0, 2}, PathDraw: []int64{3}, Arena: []int32{3, 2}}
	st := testPmaxState()
	var buf bytes.Buffer
	if err := Write(&buf, pool); err != nil {
		t.Fatal(err)
	}
	if err := WritePmax(&buf, st); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	if _, err := Read(r); err != nil {
		t.Fatalf("pool read: %v", err)
	}
	got, err := ReadPmax(r)
	if err != nil {
		t.Fatalf("pmax read: %v", err)
	}
	if got.Draws != st.Draws || !reflect.DeepEqual(got.Successes, st.Successes) {
		t.Errorf("pmax after pool: %+v, want %+v", got, st)
	}
	if r.Len() != 0 {
		t.Errorf("%d bytes left unread", r.Len())
	}
	// IsPmax distinguishes the sections: a pool blob is not a pmax blob.
	if IsPmax(buf.Bytes()) {
		t.Error("IsPmax true on a pool blob")
	}
}

func TestPmaxRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePmax(&buf, testPmaxState()); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	// Flip one payload byte: checksum must catch it.
	bad := append([]byte(nil), blob...)
	bad[pmaxHeaderSize+3] ^= 0x40
	if _, err := DecodePmax(bad); !errors.Is(err, ErrChecksum) {
		t.Errorf("payload corruption: err = %v, want ErrChecksum", err)
	}

	// Version skew.
	bad = append([]byte(nil), blob...)
	putU32(bad[8:], PmaxVersion+1)
	if _, err := DecodePmax(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("version skew: err = %v, want ErrVersion", err)
	}

	// Bad magic.
	bad = append([]byte(nil), blob...)
	bad[0] = 'x'
	if _, err := DecodePmax(bad); !errors.Is(err, ErrFormat) {
		t.Errorf("bad magic: err = %v, want ErrFormat", err)
	}

	// Truncated stream.
	if _, err := ReadPmax(bytes.NewReader(blob[:len(blob)-4])); !errors.Is(err, ErrFormat) {
		t.Errorf("truncated: err = %v, want ErrFormat", err)
	}

	// Header claiming more successes than draws.
	bad = append([]byte(nil), blob...)
	putU64(bad[48:], uint64(1<<40))
	if _, err := ReadPmax(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
		t.Errorf("impossible success count: err = %v, want ErrFormat", err)
	}
}

func TestPmaxWriteRejectsMalformed(t *testing.T) {
	for _, st := range []*PmaxState{
		{Draws: 10, Successes: []int64{5, 5}},  // not strictly ascending
		{Draws: 10, Successes: []int64{3, 2}},  // descending
		{Draws: 10, Successes: []int64{10}},    // out of range
		{Draws: 10, Successes: []int64{-1, 2}}, // negative
	} {
		if err := WritePmax(&bytes.Buffer{}, st); err == nil {
			t.Errorf("WritePmax(%+v) accepted malformed state", st)
		}
	}
}
