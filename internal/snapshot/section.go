package snapshot

import "fmt"

// Every blob type in the snapshot format — pool, p_max state, touch set —
// shares one fixed-size header shape: an 8-byte magic, a u32 format
// version, a u32 stream epoch, then a type-specific run of u64 words.
// sectionDesc captures the per-type constants and factors the encode and
// decode of that shared prefix, so adding a section type means declaring
// a descriptor and its words instead of a third hand-rolled putU64/getU64
// block.
type sectionDesc struct {
	magic   [8]byte
	version uint32
	// name labels the section in error messages ("pool", "pmax",
	// "touch"), so a load failure names which blob of a concatenated
	// spill file was bad.
	name string
}

// sectionHeaderSize returns the encoded header size for a section with
// nWords type-specific u64 words.
func sectionHeaderSize(nWords int) int { return 16 + 8*nWords }

// is reports whether b begins with this section's magic — the peek used
// to decide whether an optional section follows in a concatenated blob
// stream.
func (sd *sectionDesc) is(b []byte) bool {
	return len(b) >= 8 && [8]byte(b[:8]) == sd.magic
}

// put serializes the shared prefix and the type-specific words into hdr,
// which must be at least sectionHeaderSize(len(words)) bytes.
func (sd *sectionDesc) put(hdr []byte, streamEpoch uint32, words []uint64) {
	copy(hdr[:8], sd.magic[:])
	putU32(hdr[8:], sd.version)
	putU32(hdr[12:], streamEpoch)
	for i, w := range words {
		putU64(hdr[16+8*i:], w)
	}
}

// parse validates the magic and version at the start of b and fills
// words with the type-specific u64 run, returning the stream epoch.
// Semantic validation of the words (geometry limits and the like) stays
// with the caller, which knows what each word means.
func (sd *sectionDesc) parse(b []byte, words []uint64) (uint32, error) {
	size := sectionHeaderSize(len(words))
	if len(b) < size {
		return 0, fmt.Errorf("%w: %d-byte blob shorter than the %d-byte %s header", ErrFormat, len(b), size, sd.name)
	}
	if [8]byte(b[:8]) != sd.magic {
		return 0, fmt.Errorf("%w: bad %s magic", ErrFormat, sd.name)
	}
	if v := getU32(b[8:]); v != sd.version {
		return 0, fmt.Errorf("%w: %s version %d (want %d)", ErrVersion, sd.name, v, sd.version)
	}
	for i := range words {
		words[i] = getU64(b[16+8*i:])
	}
	return getU32(b[12:]), nil
}
