package snapshot

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary bytes at the decoder: whatever the input, it
// must return a pool or an error — never panic, and never allocate
// beyond the bytes actually present (huge header claims are capped
// against the data before any slice is made). Inputs that do decode must
// re-encode to a blob that decodes to the same pool.
func FuzzRead(f *testing.F) {
	f.Add([]byte{})
	f.Add(magic[:])
	for _, p := range []*Pool{
		testPool(1, 50, 10),
		testPool(2, 300, 40),
		{Seed: 5, NS: 7, Universe: 3, Total: 0, Offsets: []int32{0}},
	} {
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// Seed a few targeted corruptions so the interesting paths are in
		// the corpus even before the fuzzer mutates anything.
		for _, off := range []int{0, 8, 40, 48, 56, buf.Len() - 1} {
			mut := bytes.Clone(buf.Bytes())
			mut[off] ^= 0x80
			f.Add(mut)
		}
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			t.Fatalf("re-encoding a decoded pool: %v", err)
		}
		q, err := Decode(buf.Bytes())
		if err != nil {
			t.Fatalf("re-decoding a re-encoded pool: %v", err)
		}
		checkEqual(t, q, p)
		// DecodeNext must agree with Read on the same bytes.
		if _, _, err := DecodeNext(data); err != nil {
			t.Fatalf("DecodeNext rejects what Read accepted: %v", err)
		}
	})
}
