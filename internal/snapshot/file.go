package snapshot

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is an open snapshot file: one or more consecutive snapshots
// backed by an mmap'd region (linux) or an in-memory copy (elsewhere).
// Touches[i] is the touch section following Pools[i], nil when the pool
// carries none; interleaved p_max sections are validated and skipped.
// The pools alias the backing bytes; Close only after every pool loaded
// from the file is out of use.
type File struct {
	Pools   []*Pool
	Touches []*TouchSet
	unmap   func() error
}

// OpenFile opens path and decodes every snapshot in it zero-copy. Any
// decode error (truncation, checksum, version skew) fails the whole
// open, so a caller can treat the file as atomically valid or fall back
// to resampling.
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	data, unmap, err := mapFile(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	mf := &File{unmap: unmap}
	for rest := data; len(rest) > 0; {
		var n int64
		var err error
		switch {
		case IsTouch(rest):
			var ts *TouchSet
			ts, n, err = DecodeTouchNext(rest)
			if err == nil {
				if len(mf.Pools) == 0 {
					err = fmt.Errorf("%w: touch section before any pool", ErrFormat)
				} else {
					mf.Touches[len(mf.Pools)-1] = ts
				}
			}
		case IsPmax(rest):
			// A p_max ledger rides along in spill files; validate the
			// header and skip — File indexes pools only.
			var numSucc int64
			_, numSucc, err = parsePmaxHeader(rest)
			n = encodedSizePmax(numSucc)
			if err == nil && n > int64(len(rest)) {
				err = fmt.Errorf("%w: pmax section claims %d bytes, have %d", ErrFormat, n, len(rest))
			}
		default:
			var p *Pool
			p, n, err = DecodeNext(rest)
			if err == nil {
				mf.Pools = append(mf.Pools, p)
				mf.Touches = append(mf.Touches, nil)
			}
		}
		if err != nil {
			unmap()
			return nil, fmt.Errorf("snapshot %d in %s: %w", len(mf.Pools), path, err)
		}
		rest = rest[n:]
	}
	return mf, nil
}

// Close releases the backing region. The file's pools (and anything
// aliasing them, e.g. engine pools opened zero-copy) must not be used
// afterwards.
func (f *File) Close() error {
	if f.unmap == nil {
		return nil
	}
	u := f.unmap
	f.unmap = nil
	return u()
}

// WriteFileFunc atomically replaces path with whatever write produces:
// the content goes to a temporary file in the same directory, is
// fsynced, and renamed into place, so readers (including live mmaps of
// the previous version) never observe a torn file. Returns the bytes
// written. On any error the previous file is left untouched.
func WriteFileFunc(path string, write func(io.Writer) error) (int64, error) {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	bw := bufio.NewWriterSize(tmp, 1<<20)
	err = write(bw)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	st, err := os.Stat(tmp.Name())
	if err != nil {
		return 0, err
	}
	return st.Size(), os.Rename(tmp.Name(), path)
}

// WriteFile atomically replaces path with the given snapshots (see
// WriteFileFunc).
func WriteFile(path string, pools ...*Pool) (int64, error) {
	return WriteFileFunc(path, func(w io.Writer) error {
		for _, p := range pools {
			if err := Write(w, p); err != nil {
				return err
			}
		}
		return nil
	})
}
