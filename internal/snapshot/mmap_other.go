//go:build !linux

package snapshot

import "os"

// mapFile on platforms without the mmap path reads the whole file into
// memory; OpenFile then behaves identically, just without the zero-copy
// property.
func mapFile(f *os.File) ([]byte, func() error, error) {
	data, err := os.ReadFile(f.Name())
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}

// Mapped reports whether OpenFile maps files zero-copy on this platform.
const Mapped = false
