package snapshot

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testPool builds a deterministic well-formed pool with paths of varying
// length (including empty gaps between draws).
func testPool(seed int64, total int64, universe int32) *Pool {
	r := rand.New(rand.NewSource(seed))
	p := &Pool{Seed: seed, NS: 0xABCD, Universe: int64(universe), Total: total, Offsets: []int32{0}}
	for d := int64(0); d < total; d++ {
		if r.Intn(3) == 0 {
			continue // type-2 draw: no path
		}
		n := 1 + r.Intn(5)
		for i := 0; i < n; i++ {
			p.Arena = append(p.Arena, r.Int31n(universe))
		}
		p.Offsets = append(p.Offsets, int32(len(p.Arena)))
		p.PathDraw = append(p.PathDraw, d)
	}
	return p
}

func encode(t *testing.T, p *Pool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	if got, want := int64(buf.Len()), EncodedSize(p); got != want {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", got, want)
	}
	return buf.Bytes()
}

func checkEqual(t *testing.T, got, want *Pool) {
	t.Helper()
	if got.Seed != want.Seed || got.NS != want.NS || got.Universe != want.Universe || got.Total != want.Total {
		t.Fatalf("metadata mismatch: got %+v want %+v", got, want)
	}
	if !reflect.DeepEqual(got.Offsets, want.Offsets) {
		t.Fatalf("offsets differ: %v vs %v", got.Offsets, want.Offsets)
	}
	if !reflect.DeepEqual(got.PathDraw, want.PathDraw) {
		t.Fatalf("pathDraw differ: %v vs %v", got.PathDraw, want.PathDraw)
	}
	if !reflect.DeepEqual(got.Arena, want.Arena) {
		t.Fatalf("arena differ: %v vs %v", got.Arena, want.Arena)
	}
}

func TestRoundTrip(t *testing.T) {
	for _, p := range []*Pool{
		testPool(7, 500, 40),
		testPool(8, 1, 1),
		{Seed: 3, NS: 9, Universe: 5, Total: 0, Offsets: []int32{0}, PathDraw: []int64{}, Arena: []int32{}}, // empty pool
	} {
		data := encode(t, p)
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		checkEqual(t, got, p)
		got2, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		checkEqual(t, got2, p)
	}
}

func TestReadLeavesTrailingBytes(t *testing.T) {
	a, b := testPool(1, 300, 20), testPool(2, 200, 20)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	gotA, err := Read(r)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := Read(r)
	if err != nil {
		t.Fatal(err)
	}
	checkEqual(t, gotA, a)
	checkEqual(t, gotB, b)
	if r.Len() != 0 {
		t.Fatalf("%d bytes left unread", r.Len())
	}
}

func TestDecodeNextContainer(t *testing.T) {
	a, b := testPool(1, 300, 20), testPool(2, 200, 20)
	data := append(encode(t, a), encode(t, b)...)
	gotA, n, err := DecodeNext(data)
	if err != nil {
		t.Fatal(err)
	}
	gotB, m, err := DecodeNext(data[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+m != int64(len(data)) {
		t.Fatalf("consumed %d+%d of %d bytes", n, m, len(data))
	}
	checkEqual(t, gotA, a)
	checkEqual(t, gotB, b)
	if _, err := Decode(data); !errors.Is(err, ErrFormat) {
		t.Fatalf("Decode with trailing snapshot: err = %v, want ErrFormat", err)
	}
}

func TestCorruption(t *testing.T) {
	p := testPool(5, 400, 30)
	good := encode(t, p)
	t.Run("checksum", func(t *testing.T) {
		for _, off := range []int{headerSize + 1, len(good) / 2, len(good) - footerSize} {
			data := bytes.Clone(good)
			data[off] ^= 0x40
			if _, err := Decode(data); !errors.Is(err, ErrChecksum) {
				t.Errorf("flip at %d: err = %v, want ErrChecksum", off, err)
			}
		}
	})
	t.Run("magic", func(t *testing.T) {
		data := bytes.Clone(good)
		data[0] ^= 0xFF
		if _, err := Decode(data); !errors.Is(err, ErrFormat) {
			t.Errorf("err = %v, want ErrFormat", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		data := bytes.Clone(good)
		data[8] = 99
		if _, err := Decode(data); !errors.Is(err, ErrVersion) {
			t.Errorf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 7, headerSize - 1, headerSize, len(good) - 1} {
			if _, err := Decode(good[:n]); err == nil {
				t.Errorf("truncation to %d bytes decoded", n)
			}
			if _, err := Read(bytes.NewReader(good[:n])); err == nil {
				t.Errorf("truncation to %d bytes read", n)
			}
		}
	})
	t.Run("huge-claimed-sizes", func(t *testing.T) {
		// A header claiming astronomical sections on a short stream must
		// error out without allocating them.
		data := bytes.Clone(good[:headerSize])
		putU64(data[56:], 1<<40) // numPaths
		putU64(data[48:], 1<<41) // total, so numPaths ≤ total passes
		putU64(data[64:], 1<<40) // arenaLen
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Error("huge header read succeeded")
		}
		if _, err := Decode(data); err == nil {
			t.Error("huge header decoded")
		}
	})
}

func TestSemanticValidation(t *testing.T) {
	base := testPool(9, 200, 25)
	mutate := func(fn func(p *Pool)) []byte {
		p := &Pool{Seed: base.Seed, NS: base.NS, Universe: base.Universe, Total: base.Total,
			Offsets:  append([]int32{}, base.Offsets...),
			PathDraw: append([]int64{}, base.PathDraw...),
			Arena:    append([]int32{}, base.Arena...)}
		fn(p)
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			// Write itself may reject; re-encode manually by patching the
			// good bytes is overkill — treat a Write rejection as a pass.
			return nil
		}
		return buf.Bytes()
	}
	cases := map[string]func(p *Pool){
		"node-out-of-universe": func(p *Pool) { p.Arena[0] = int32(p.Universe) },
		"negative-node":        func(p *Pool) { p.Arena[0] = -1 },
		"draw-out-of-range":    func(p *Pool) { p.PathDraw[len(p.PathDraw)-1] = p.Total },
		"draw-not-ascending":   func(p *Pool) { p.PathDraw[1] = p.PathDraw[0] },
		"offsets-descending": func(p *Pool) {
			p.Offsets[1], p.Offsets[2] = p.Offsets[2], p.Offsets[1]
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			data := mutate(fn)
			if data == nil {
				return
			}
			if _, err := Decode(data); !errors.Is(err, ErrFormat) {
				t.Errorf("err = %v, want ErrFormat", err)
			}
		})
	}
}

func TestDecodeMisaligned(t *testing.T) {
	p := testPool(11, 300, 30)
	good := encode(t, p)
	// Shift the blob to every sub-word offset: decode must still succeed
	// (copying instead of casting when the input is misaligned).
	for shift := 1; shift < 8; shift++ {
		buf := make([]byte, shift+len(good))
		copy(buf[shift:], good)
		got, err := Decode(buf[shift:])
		if err != nil {
			t.Fatalf("shift %d: %v", shift, err)
		}
		checkEqual(t, got, p)
	}
}

func TestOpenFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pools.afsnap")
	a, b := testPool(21, 600, 50), testPool(22, 100, 50)
	n, err := WriteFile(path, a, b)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != n {
		t.Fatalf("WriteFile reported %d bytes, file has %d", n, st.Size())
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if len(f.Pools) != 2 {
		t.Fatalf("decoded %d pools, want 2", len(f.Pools))
	}
	checkEqual(t, f.Pools[0], a)
	checkEqual(t, f.Pools[1], b)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// A corrupted file must fail the whole open.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("corrupted file opened")
	}
}

func TestWriteRejectsMalformedPool(t *testing.T) {
	p := testPool(2, 100, 10)
	p.PathDraw = p.PathDraw[:len(p.PathDraw)-1]
	if err := Write(&bytes.Buffer{}, p); err == nil {
		t.Fatal("Write accepted offsets/pathDraw length mismatch")
	}
}
