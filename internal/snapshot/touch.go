package snapshot

import (
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// This file adds the third blob type of the snapshot format: the per-chunk
// touch sets a pool carries for delta repair. For every sampled chunk the
// engine records the sorted distinct set of nodes its backward walks
// visited or selected; when the graph mutates, a chunk whose touch set is
// disjoint from the delta's dirty nodes replays identically on the new
// graph, so its pooled bytes can be adopted as-is and only damaged chunks
// resampled. A TouchSet blob is CSR-shaped: chunk c's nodes are
// Nodes[Offsets[c]:Offsets[c+1]].
//
// Layout (all fixed-width fields little-endian):
//
//	header (40 B): magic [8]B, version u32, streamEpoch u32,
//	               universe i64, numChunks i64, nodesLen i64
//	offsets: (numChunks+1) × i32, padded to 8 B
//	nodes:    nodesLen     × i32, padded to 8 B
//	footer (8 B): CRC-32C of everything before it, then 4 zero bytes
//
// A touch blob never stands alone: it directly follows the pool blob it
// describes in a stream, inheriting that pool's (seed, ns, fingerprint)
// identity, which is why the header carries only the stream epoch and the
// geometry. The section is optional on read — a reader peeks for the
// magic (IsTouch) and, when absent, falls back to treating every chunk as
// damaged under a delta, which is always correct, just slower.
const (
	// TouchVersion is bumped on any incompatible TouchSet layout change.
	TouchVersion    = 1
	touchHeaderSize = 40
)

var touchMagic = [8]byte{0x89, 'A', 'F', 'T', 'O', 'U', 'C', 'H'}

// touchSection describes the touch blob's shared header prefix; its three
// type-specific words are universe, numChunks, nodesLen
// (touchHeaderSize == sectionHeaderSize(3)).
var touchSection = sectionDesc{magic: touchMagic, version: TouchVersion, name: "touch"}

// TouchSet is the serialized form of a pool's per-chunk touch sets: chunk
// c touched exactly the nodes Nodes[Offsets[c]:Offsets[c+1]] (strictly
// ascending within each chunk, in [0, Universe)).
type TouchSet struct {
	// StreamEpoch mirrors the accompanying pool blob's stream epoch.
	StreamEpoch uint32
	Universe    int64
	Offsets     []int32 // len numChunks+1, Offsets[0] == 0
	Nodes       []int32
}

// NumChunks returns the number of chunks the touch set describes.
func (ts *TouchSet) NumChunks() int { return len(ts.Offsets) - 1 }

// EncodedSizeTouch returns the exact byte size WriteTouch produces for ts.
func EncodedSizeTouch(ts *TouchSet) int64 {
	return encodedSizeTouch(int64(ts.NumChunks()), int64(len(ts.Nodes)))
}

func encodedSizeTouch(numChunks, nodesLen int64) int64 {
	return touchHeaderSize + pad8((numChunks+1)*4) + pad8(nodesLen*4) + footerSize
}

// EncodedSizeTouchFor returns the encoded size of a touch section with
// the given geometry without materializing it.
func EncodedSizeTouchFor(numChunks, nodesLen int64) int64 {
	return encodedSizeTouch(numChunks, nodesLen)
}

// IsTouch reports whether b begins with the TouchSet magic — the peek a
// stream reader uses to decide whether an optional touch section follows
// a pool blob.
func IsTouch(b []byte) bool { return touchSection.is(b) }

// WriteTouch serializes ts to w in the snapshot format.
func WriteTouch(w io.Writer, ts *TouchSet) error {
	numChunks := int64(ts.NumChunks())
	nodesLen := int64(len(ts.Nodes))
	if len(ts.Offsets) == 0 || ts.Offsets[0] != 0 || int64(ts.Offsets[numChunks]) != nodesLen {
		return fmt.Errorf("snapshot: malformed touch set (offsets %d, nodes %d)", len(ts.Offsets), nodesLen)
	}
	cw := &crcWriter{w: w}
	var hdr [touchHeaderSize]byte
	touchSection.put(hdr[:], ts.StreamEpoch, []uint64{
		uint64(ts.Universe), uint64(numChunks), uint64(nodesLen),
	})
	if _, err := cw.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeInt32s(cw, ts.Offsets, true); err != nil {
		return err
	}
	if err := writeInt32s(cw, ts.Nodes, true); err != nil {
		return err
	}
	var foot [footerSize]byte
	putU32(foot[:], cw.crc)
	_, err := w.Write(foot[:])
	return err
}

// parseTouchHeader validates the fixed-size prefix; geometry limits bound
// every later allocation.
func parseTouchHeader(b []byte) (ts TouchSet, numChunks, nodesLen int64, err error) {
	var words [3]uint64
	se, err := touchSection.parse(b, words[:])
	if err != nil {
		return ts, 0, 0, err
	}
	ts.StreamEpoch = se
	ts.Universe = int64(words[0])
	numChunks = int64(words[1])
	nodesLen = int64(words[2])
	switch {
	case ts.Universe < 0 || ts.Universe > math.MaxInt32:
		return ts, 0, 0, fmt.Errorf("%w: touch universe %d out of range", ErrFormat, ts.Universe)
	case numChunks < 0 || numChunks >= math.MaxInt32:
		return ts, 0, 0, fmt.Errorf("%w: %d touch chunks", ErrFormat, numChunks)
	case nodesLen < 0 || nodesLen > numChunks*ts.Universe || nodesLen > math.MaxInt32:
		return ts, 0, 0, fmt.Errorf("%w: %d touched nodes for %d chunks over %d nodes", ErrFormat, nodesLen, numChunks, ts.Universe)
	}
	return ts, numChunks, nodesLen, nil
}

// DecodeTouchNext parses the TouchSet at the start of data and returns it
// with its encoded size, leaving trailing bytes (the rest of a spill
// file) for the caller. On little-endian hosts the returned slices alias
// data; keep it immutable and alive.
func DecodeTouchNext(data []byte) (*TouchSet, int64, error) {
	ts, numChunks, nodesLen, err := parseTouchHeader(data)
	if err != nil {
		return nil, 0, err
	}
	size := encodedSizeTouch(numChunks, nodesLen)
	if size > int64(len(data)) {
		return nil, 0, fmt.Errorf("%w: touch header claims %d bytes, have %d", ErrFormat, size, len(data))
	}
	body := data[:size-footerSize]
	if crc32.Checksum(body, crcTable) != getU32(data[size-footerSize:]) {
		return nil, 0, fmt.Errorf("%w", ErrChecksum)
	}
	off := int64(touchHeaderSize)
	ts.Offsets = decodeInt32s(data, off, numChunks+1)
	off += pad8((numChunks + 1) * 4)
	ts.Nodes = decodeInt32s(data, off, nodesLen)
	if err := ts.validate(); err != nil {
		return nil, 0, err
	}
	return &ts, size, nil
}

// ReadTouch reads exactly one TouchSet from r (leaving any following
// bytes unread) and returns a set owning freshly allocated sections.
func ReadTouch(r io.Reader) (*TouchSet, error) {
	buf := make([]byte, touchHeaderSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: reading touch header: %v", ErrFormat, err)
	}
	_, numChunks, nodesLen, err := parseTouchHeader(buf)
	if err != nil {
		return nil, err
	}
	size := encodedSizeTouch(numChunks, nodesLen)
	for int64(len(buf)) < size {
		n := min(size-int64(len(buf)), maxReadChunk)
		chunk := len(buf)
		buf = append(buf, make([]byte, n)...)
		if _, err := io.ReadFull(r, buf[chunk:]); err != nil {
			return nil, fmt.Errorf("%w: reading %d-byte touch payload: %v", ErrFormat, size, err)
		}
	}
	ts, _, err := DecodeTouchNext(buf)
	if err != nil {
		return nil, err
	}
	// buf is function-local, so aliasing is ownership; nothing to copy.
	return ts, nil
}

// validate checks the invariants the repair path relies on: offsets
// ascending, each chunk's nodes strictly ascending within the universe.
func (ts *TouchSet) validate() error {
	n := ts.NumChunks()
	if ts.Offsets[0] != 0 {
		return fmt.Errorf("%w: first touch offset %d", ErrFormat, ts.Offsets[0])
	}
	u := int32(ts.Universe)
	for c := 0; c < n; c++ {
		if ts.Offsets[c+1] < ts.Offsets[c] {
			return fmt.Errorf("%w: touch offsets not ascending at %d", ErrFormat, c)
		}
		prev := int32(-1)
		for _, v := range ts.Nodes[ts.Offsets[c]:ts.Offsets[c+1]] {
			if v <= prev || v >= u {
				return fmt.Errorf("%w: touch node %d out of order in chunk %d", ErrFormat, v, c)
			}
			prev = v
		}
	}
	if int64(ts.Offsets[n]) != int64(len(ts.Nodes)) {
		return fmt.Errorf("%w: last touch offset %d, nodes %d", ErrFormat, ts.Offsets[n], len(ts.Nodes))
	}
	return nil
}
