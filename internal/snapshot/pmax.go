package snapshot

import (
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// This file adds the second blob type of the snapshot format: the p_max
// estimator state. The engine's chunked stopping-rule estimator
// (engine.PmaxEstimator) is, like a pool, a pure function of its (seed,
// namespace) stream identity and a total draw count — the full ledger is
// reconstructible from the global draw indices of the successful
// (type-1) draws. A PmaxState blob therefore carries exactly that:
// identity, total draws, and the ascending success indices.
//
// Layout (all fixed-width fields little-endian):
//
//	header (56 B): magic [8]B, version u32, streamEpoch u32,
//	               seed i64, ns u64, fingerprint u64,
//	               draws i64, numSucc i64
//	successes: numSucc × i64
//	footer (8 B): CRC-32C of everything before it, then 4 zero bytes
//
// Like pool blobs, the total size is a multiple of 8, so pool and p_max
// sections concatenate freely in one spill file. The distinct magic is
// what lets a reader peek whether an optional p_max section follows the
// pools (see IsPmax).
const (
	// PmaxVersion is bumped on any incompatible PmaxState layout change.
	PmaxVersion    = 1
	pmaxHeaderSize = 56
)

var pmaxMagic = [8]byte{0x89, 'A', 'F', 'P', 'M', 'A', 'X', '\n'}

// pmaxSection describes the p_max blob's shared header prefix; its five
// type-specific words are seed, ns, fingerprint, draws, numSucc
// (pmaxHeaderSize == sectionHeaderSize(5)).
var pmaxSection = sectionDesc{magic: pmaxMagic, version: PmaxVersion, name: "pmax"}

// PmaxState is the serialized form of one chunked p_max estimator ledger:
// Draws total Bernoulli draws from the (Seed, NS) stream family, of which
// the draws at the strictly ascending global indices Successes were
// type-1. Fingerprint identifies the problem instance, so a loader can
// reject state sampled on a different graph.
type PmaxState struct {
	Seed        int64
	NS          uint64
	Fingerprint uint64
	// StreamEpoch records the rng draw-protocol generation the ledger
	// was sampled under; part of the stream identity like Seed and NS.
	// Pre-epoch blobs carry 0 (the slot used to be written as reserved
	// zero) and are rejected by loaders.
	StreamEpoch uint32
	Draws       int64
	Successes   []int64 // strictly ascending, in [0, Draws)
}

// EncodedSizePmax returns the exact byte size WritePmax produces for st.
func EncodedSizePmax(st *PmaxState) int64 {
	return encodedSizePmax(int64(len(st.Successes)))
}

func encodedSizePmax(numSucc int64) int64 {
	return pmaxHeaderSize + numSucc*8 + footerSize
}

// IsPmax reports whether b begins with the PmaxState magic — the peek a
// stream reader uses to decide whether an optional p_max section follows
// the pool sections in a spill file.
func IsPmax(b []byte) bool { return pmaxSection.is(b) }

// WritePmax serializes st to w in the snapshot format.
func WritePmax(w io.Writer, st *PmaxState) error {
	if err := st.validate(); err != nil {
		return fmt.Errorf("snapshot: malformed pmax state: %w", err)
	}
	cw := &crcWriter{w: w}
	var hdr [pmaxHeaderSize]byte
	pmaxSection.put(hdr[:], st.StreamEpoch, []uint64{
		uint64(st.Seed), st.NS, st.Fingerprint,
		uint64(st.Draws), uint64(len(st.Successes)),
	})
	if _, err := cw.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeInt64s(cw, st.Successes); err != nil {
		return err
	}
	var foot [footerSize]byte
	putU32(foot[:], cw.crc)
	_, err := w.Write(foot[:])
	return err
}

// parsePmaxHeader validates the fixed-size prefix; the success count must
// not exceed what the claimed draw total could have produced, bounding
// every later allocation.
func parsePmaxHeader(b []byte) (PmaxState, int64, error) {
	var st PmaxState
	var words [5]uint64
	se, err := pmaxSection.parse(b, words[:])
	if err != nil {
		return st, 0, err
	}
	st.StreamEpoch = se
	st.Seed = int64(words[0])
	st.NS = words[1]
	st.Fingerprint = words[2]
	st.Draws = int64(words[3])
	numSucc := int64(words[4])
	switch {
	case st.Draws < 0:
		return st, 0, fmt.Errorf("%w: negative draws %d", ErrFormat, st.Draws)
	case numSucc < 0 || numSucc > st.Draws || numSucc >= math.MaxInt32:
		return st, 0, fmt.Errorf("%w: %d successes for %d draws", ErrFormat, numSucc, st.Draws)
	}
	return st, numSucc, nil
}

// DecodePmax parses one PmaxState at the start of data, which must
// contain exactly one blob. On little-endian hosts the returned Successes
// slice aliases data (keep it immutable and alive); on other hosts or
// misaligned input it is copied.
func DecodePmax(data []byte) (*PmaxState, error) {
	st, numSucc, err := parsePmaxHeader(data)
	if err != nil {
		return nil, err
	}
	size := encodedSizePmax(numSucc)
	if size != int64(len(data)) {
		return nil, fmt.Errorf("%w: pmax header claims %d bytes, have %d", ErrFormat, size, len(data))
	}
	body := data[:size-footerSize]
	if crc32.Checksum(body, crcTable) != getU32(data[size-footerSize:]) {
		return nil, fmt.Errorf("%w", ErrChecksum)
	}
	st.Successes = decodeInt64s(data, pmaxHeaderSize, numSucc)
	if err := st.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return &st, nil
}

// ReadPmax reads exactly one PmaxState from r (leaving any following
// bytes unread) and returns state owning freshly allocated sections.
// Allocation is incremental and capped by the bytes actually read.
func ReadPmax(r io.Reader) (*PmaxState, error) {
	buf := make([]byte, pmaxHeaderSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: reading pmax header: %v", ErrFormat, err)
	}
	_, numSucc, err := parsePmaxHeader(buf)
	if err != nil {
		return nil, err
	}
	size := encodedSizePmax(numSucc)
	for int64(len(buf)) < size {
		n := min(size-int64(len(buf)), maxReadChunk)
		chunk := len(buf)
		buf = append(buf, make([]byte, n)...)
		if _, err := io.ReadFull(r, buf[chunk:]); err != nil {
			return nil, fmt.Errorf("%w: reading %d-byte pmax payload: %v", ErrFormat, size, err)
		}
	}
	// buf is function-local, so aliasing is ownership; nothing to copy.
	return DecodePmax(buf)
}

// validate checks the semantic invariant the estimator relies on: success
// indices strictly ascending within [0, Draws).
func (st *PmaxState) validate() error {
	prev := int64(-1)
	for i, d := range st.Successes {
		if d <= prev || d >= st.Draws {
			return fmt.Errorf("success index %d out of order at %d (draws %d)", d, i, st.Draws)
		}
		prev = d
	}
	return nil
}
