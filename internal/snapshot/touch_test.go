package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

func testTouchSet() *TouchSet {
	return &TouchSet{
		StreamEpoch: 1,
		Universe:    100,
		Offsets:     []int32{0, 3, 3, 7},
		Nodes:       []int32{1, 5, 99, 0, 2, 4, 6},
	}
}

func TestTouchRoundTrip(t *testing.T) {
	ts := testTouchSet()
	var buf bytes.Buffer
	if err := WriteTouch(&buf, ts); err != nil {
		t.Fatal(err)
	}
	if got, want := int64(buf.Len()), EncodedSizeTouch(ts); got != want {
		t.Fatalf("encoded %d bytes, EncodedSizeTouch says %d", got, want)
	}
	if !IsTouch(buf.Bytes()) {
		t.Fatal("IsTouch rejects a touch blob")
	}
	if IsPmax(buf.Bytes()) {
		t.Fatal("IsPmax accepts a touch blob")
	}

	got, err := ReadTouch(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.StreamEpoch != ts.StreamEpoch || got.Universe != ts.Universe {
		t.Errorf("identity mismatch: %+v", got)
	}
	if !equalI32(got.Offsets, ts.Offsets) || !equalI32(got.Nodes, ts.Nodes) {
		t.Errorf("payload mismatch: %+v", got)
	}

	// Decode with trailing bytes reports the exact blob size.
	withTail := append(append([]byte(nil), buf.Bytes()...), 0xAB, 0xCD)
	dec, n, err := DecodeTouchNext(withTail)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("DecodeTouchNext size %d, want %d", n, buf.Len())
	}
	if !equalI32(dec.Nodes, ts.Nodes) {
		t.Errorf("decoded payload mismatch")
	}
}

func TestTouchEmptyChunks(t *testing.T) {
	ts := &TouchSet{Universe: 10, Offsets: []int32{0}, Nodes: []int32{}}
	var buf bytes.Buffer
	if err := WriteTouch(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTouch(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumChunks() != 0 || len(got.Nodes) != 0 {
		t.Errorf("empty round-trip: %+v", got)
	}
}

func TestTouchCorruption(t *testing.T) {
	ts := testTouchSet()
	var buf bytes.Buffer
	if err := WriteTouch(&buf, ts); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	flipped := append([]byte(nil), good...)
	flipped[touchHeaderSize+2] ^= 0x40
	if _, _, err := DecodeTouchNext(flipped); !errors.Is(err, ErrChecksum) {
		t.Errorf("flipped payload: err = %v, want ErrChecksum", err)
	}

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 0
	if _, err := ReadTouch(bytes.NewReader(badMagic)); !errors.Is(err, ErrFormat) {
		t.Errorf("bad magic: err = %v, want ErrFormat", err)
	}

	badVer := append([]byte(nil), good...)
	putU32(badVer[8:], TouchVersion+1)
	if _, err := ReadTouch(bytes.NewReader(badVer)); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: err = %v, want ErrVersion", err)
	}

	if _, err := ReadTouch(bytes.NewReader(good[:len(good)-4])); !errors.Is(err, ErrFormat) {
		t.Errorf("truncated: err = %v, want ErrFormat", err)
	}

	// Unsorted nodes within a chunk must be rejected.
	bad := testTouchSet()
	bad.Nodes[0], bad.Nodes[1] = bad.Nodes[1], bad.Nodes[0]
	var bbuf bytes.Buffer
	if err := WriteTouch(&bbuf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTouch(bytes.NewReader(bbuf.Bytes())); !errors.Is(err, ErrFormat) {
		t.Errorf("unsorted chunk: err = %v, want ErrFormat", err)
	}
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
