// Package snapshot is the pool persistence layer: it serializes a CSR
// realization pool (the flat path arena, int32 offsets, per-path draw
// indices, universe and total draw count, plus the seed and stream
// namespace that produced it) to a versioned, checksummed, little-endian
// binary blob, and loads it back either by copy (Read) or zero-copy over
// a caller-owned byte slice such as an mmap'd file (Decode / OpenFile).
//
// Because pool contents are a pure function of (seed, namespace, total)
// — the engine's chunked-sampling determinism contract — a loaded pool
// is byte-identical to a freshly sampled one, so persistence is purely a
// latency tier: answers computed from a snapshot equal answers computed
// from resampling, and a corrupted or version-skewed snapshot can always
// fall back to resampling.
//
// Layout (all fixed-width fields little-endian):
//
//	header (72 B): magic [8]B, version u32, streamEpoch u32,
//	               seed i64, ns u64, fingerprint u64,
//	               universe i64, total i64,
//	               numPaths i64, arenaLen i64
//	offsets:  (numPaths+1) × i32, padded to 8 B
//	pathDraw:  numPaths    × i64
//	arena:     arenaLen    × i32, padded to 8 B
//	footer (8 B): CRC-32C of everything before it, then 4 zero bytes
//
// CRC-32C (Castagnoli) is hardware-accelerated on amd64/arm64, which
// keeps checksum verification a small fraction of a load — the spill
// tier's reload-beats-resample margin rests on it.
//
// Every section starts 8-byte aligned and the blob's total size is a
// multiple of 8, so snapshots can be concatenated in one file and each
// still decodes zero-copy at its natural alignment.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"
)

// Format constants. Version is bumped on any incompatible layout change;
// Read/Decode reject other versions with ErrVersion so callers fall back
// to resampling instead of misreading bytes.
const (
	Version    = 1
	headerSize = 72
	footerSize = 8
)

var magic = [8]byte{0x89, 'A', 'F', 'S', 'N', 'A', 'P', '\n'}

// poolSection describes the pool blob's shared header prefix; its seven
// type-specific words are seed, ns, fingerprint, universe, total,
// numPaths, arenaLen (headerSize == sectionHeaderSize(7)).
var poolSection = sectionDesc{magic: magic, version: Version, name: "pool"}

// crcTable is the CRC-32C (Castagnoli) table shared by writers and
// readers.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrFormat reports bytes that are not a snapshot at all (bad magic,
	// impossible header geometry, or a truncated blob).
	ErrFormat = errors.New("snapshot: not a valid snapshot")
	// ErrVersion reports a snapshot written by an incompatible format
	// version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrChecksum reports a snapshot whose payload does not match its
	// CRC-32C footer.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
)

// Pool is the serialized form of one CSR realization pool. Path i is
// Arena[Offsets[i]:Offsets[i+1]] and was produced by draw PathDraw[i]
// (strictly ascending, in [0, Total)). Seed and NS identify the stream
// family that sampled it, and Fingerprint the problem instance (graph
// structure, weights, source/target), so a loader can verify a snapshot
// belongs to the exact session it is being restored into — a snapshot
// of a different graph with the same node count must not be adopted.
type Pool struct {
	Seed        int64
	NS          uint64
	Fingerprint uint64
	// StreamEpoch records the rng draw-protocol generation the pool was
	// sampled under (rng.StreamEpoch at write time); it is part of the
	// stream identity, like Seed and NS. Blobs written before the field
	// existed carry 0 (the header slot was written as reserved zero), the
	// epoch of the retired math/rand protocol — exactly what makes
	// loaders reject them.
	StreamEpoch uint32
	Universe    int64
	Total       int64
	Offsets     []int32 // len numPaths+1, Offsets[0] == 0
	PathDraw    []int64 // len numPaths
	Arena       []int32 // node ids in [0, Universe)
}

// NumPaths returns the number of serialized type-1 paths.
func (p *Pool) NumPaths() int { return len(p.Offsets) - 1 }

// pad8 returns n rounded up to a multiple of 8.
func pad8(n int64) int64 { return (n + 7) &^ 7 }

// EncodedSize returns the exact byte size Write will produce for p.
func EncodedSize(p *Pool) int64 {
	return encodedSize(int64(p.NumPaths()), int64(len(p.Arena)))
}

func encodedSize(numPaths, arenaLen int64) int64 {
	return headerSize + pad8((numPaths+1)*4) + numPaths*8 + pad8(arenaLen*4) + footerSize
}

// hostLittle reports whether the host is little-endian; on little-endian
// hosts sections are written/read as raw slice memory, otherwise
// element-wise.
var hostLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Short aliases over encoding/binary's little-endian accessors
// (compiler-intrinsified, allocation-free).
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }

// int32Bytes views s as raw little-endian bytes (little-endian hosts
// only; callers must check hostLittle).
func int32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func int64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// crcWriter feeds everything written through the CRC accumulator.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crcTable, p)
	return cw.w.Write(p)
}

var zeroPad [8]byte

// Write serializes p to w in the snapshot format. The blob's size is
// EncodedSize(p); on little-endian hosts the sections are written
// directly from the slices with no intermediate copy.
func Write(w io.Writer, p *Pool) error {
	numPaths := int64(p.NumPaths())
	arenaLen := int64(len(p.Arena))
	if len(p.Offsets) == 0 || p.Offsets[0] != 0 || int64(len(p.PathDraw)) != numPaths {
		return fmt.Errorf("snapshot: malformed pool (offsets %d, pathDraw %d)", len(p.Offsets), len(p.PathDraw))
	}
	if int64(p.Offsets[numPaths]) != arenaLen {
		return fmt.Errorf("snapshot: malformed pool (last offset %d, arena %d)", p.Offsets[numPaths], arenaLen)
	}
	cw := &crcWriter{w: w}
	var hdr [headerSize]byte
	poolSection.put(hdr[:], p.StreamEpoch, []uint64{
		uint64(p.Seed), p.NS, p.Fingerprint,
		uint64(p.Universe), uint64(p.Total),
		uint64(numPaths), uint64(arenaLen),
	})
	if _, err := cw.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeInt32s(cw, p.Offsets, true); err != nil {
		return err
	}
	if err := writeInt64s(cw, p.PathDraw); err != nil {
		return err
	}
	if err := writeInt32s(cw, p.Arena, true); err != nil {
		return err
	}
	var foot [footerSize]byte
	putU32(foot[:], cw.crc)
	_, err := w.Write(foot[:])
	return err
}

func writeInt32s(cw *crcWriter, s []int32, pad bool) error {
	count := len(s)
	if hostLittle {
		if _, err := cw.Write(int32Bytes(s)); err != nil {
			return err
		}
	} else {
		var buf [4096]byte
		for len(s) > 0 {
			n := min(len(s), len(buf)/4)
			for i := 0; i < n; i++ {
				putU32(buf[i*4:], uint32(s[i]))
			}
			if _, err := cw.Write(buf[:n*4]); err != nil {
				return err
			}
			s = s[n:]
		}
	}
	if pad && count%2 != 0 {
		_, err := cw.Write(zeroPad[:4])
		return err
	}
	return nil
}

func writeInt64s(cw *crcWriter, s []int64) error {
	if hostLittle {
		_, err := cw.Write(int64Bytes(s))
		return err
	}
	var buf [4096]byte
	for len(s) > 0 {
		n := min(len(s), len(buf)/8)
		for i := 0; i < n; i++ {
			putU64(buf[i*8:], uint64(s[i]))
		}
		if _, err := cw.Write(buf[:n*8]); err != nil {
			return err
		}
		s = s[n:]
	}
	return nil
}

// header is the decoded fixed-size prefix of a snapshot.
type header struct {
	streamEpoch uint32
	seed        int64
	ns          uint64
	fingerprint uint64
	universe    int64
	total       int64
	numPaths    int64
	arenaLen    int64
}

// parseHeader validates the fixed-size prefix. Geometry limits bound
// every later allocation: numPaths and arenaLen must fit int32 offsets
// and must not exceed what total draws could have produced.
func parseHeader(b []byte) (header, error) {
	var h header
	var words [7]uint64
	se, err := poolSection.parse(b, words[:])
	if err != nil {
		return h, err
	}
	h.streamEpoch = se
	h.seed = int64(words[0])
	h.ns = words[1]
	h.fingerprint = words[2]
	h.universe = int64(words[3])
	h.total = int64(words[4])
	h.numPaths = int64(words[5])
	h.arenaLen = int64(words[6])
	switch {
	case h.universe < 0 || h.universe > math.MaxInt32:
		return h, fmt.Errorf("%w: universe %d out of range", ErrFormat, h.universe)
	case h.total < 0:
		return h, fmt.Errorf("%w: negative total %d", ErrFormat, h.total)
	case h.numPaths < 0 || h.numPaths > h.total || h.numPaths >= math.MaxInt32:
		return h, fmt.Errorf("%w: %d paths for %d draws", ErrFormat, h.numPaths, h.total)
	case h.arenaLen < 0 || h.arenaLen > math.MaxInt32:
		return h, fmt.Errorf("%w: arena of %d nodes overflows int32 offsets", ErrFormat, h.arenaLen)
	}
	return h, nil
}

// aligned4 / aligned8 report whether the slice data at b[off:] sits at
// the natural alignment for the element width; zero-copy casting is only
// done when it does (an mmap base is page-aligned and sections are laid
// out aligned, but Decode also accepts arbitrary caller slices).
func aligned(b []byte, off int64, width int64) bool {
	if int64(len(b)) <= off {
		return true // empty section; never dereferenced
	}
	return uintptr(unsafe.Pointer(&b[off]))%uintptr(width) == 0
}

// Decode parses one snapshot at the start of data, which must contain
// exactly one blob (DecodeNext accepts trailing bytes). On little-endian
// hosts the returned pool's slices alias data — the caller must keep
// data immutable and alive (an mmap'd region must stay mapped) for the
// pool's lifetime; on other hosts or misaligned input the sections are
// copied.
func Decode(data []byte) (*Pool, error) {
	p, n, err := DecodeNext(data)
	if err != nil {
		return nil, err
	}
	if n != int64(len(data)) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, int64(len(data))-n)
	}
	return p, nil
}

// DecodeNext parses the snapshot at the start of data and returns it
// together with its encoded size, so consecutive snapshots in one buffer
// (e.g. a spill file holding a solve pool and an evaluation pool) can be
// decoded in sequence. Sizes claimed by the header are validated against
// len(data) before any slice is materialized: corrupted or adversarial
// bytes produce an error, never a panic or an over-allocation.
func DecodeNext(data []byte) (*Pool, int64, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, 0, err
	}
	size := encodedSize(h.numPaths, h.arenaLen)
	if size > int64(len(data)) {
		return nil, 0, fmt.Errorf("%w: header claims %d bytes, have %d", ErrFormat, size, len(data))
	}
	body := data[:size-footerSize]
	if crc32.Checksum(body, crcTable) != getU32(data[size-footerSize:]) {
		return nil, 0, fmt.Errorf("%w", ErrChecksum)
	}
	p := &Pool{Seed: h.seed, NS: h.ns, Fingerprint: h.fingerprint, StreamEpoch: h.streamEpoch, Universe: h.universe, Total: h.total}
	off := int64(headerSize)
	p.Offsets = decodeInt32s(data, off, h.numPaths+1)
	off += pad8((h.numPaths + 1) * 4)
	p.PathDraw = decodeInt64s(data, off, h.numPaths)
	off += h.numPaths * 8
	p.Arena = decodeInt32s(data, off, h.arenaLen)
	if err := p.validate(); err != nil {
		return nil, 0, err
	}
	return p, size, nil
}

func decodeInt32s(data []byte, off, n int64) []int32 {
	if n == 0 {
		return []int32{}
	}
	if hostLittle && aligned(data, off, 4) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&data[off])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(getU32(data[off+int64(i)*4:]))
	}
	return out
}

func decodeInt64s(data []byte, off, n int64) []int64 {
	if n == 0 {
		return []int64{}
	}
	if hostLittle && aligned(data, off, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&data[off])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(getU64(data[off+int64(i)*8:]))
	}
	return out
}

// validate checks the semantic invariants the engine relies on, so a
// snapshot that passes can be handed to coverage-index construction and
// set-cover folding without further bounds checks.
func (p *Pool) validate() error {
	n := p.NumPaths()
	if p.Offsets[0] != 0 {
		return fmt.Errorf("%w: first offset %d", ErrFormat, p.Offsets[0])
	}
	for i := 0; i < n; i++ {
		if p.Offsets[i+1] < p.Offsets[i] {
			return fmt.Errorf("%w: offsets not ascending at %d", ErrFormat, i)
		}
	}
	if int64(p.Offsets[n]) != int64(len(p.Arena)) {
		return fmt.Errorf("%w: last offset %d, arena %d", ErrFormat, p.Offsets[n], len(p.Arena))
	}
	prev := int64(-1)
	for i, d := range p.PathDraw {
		if d <= prev || d >= p.Total {
			return fmt.Errorf("%w: path draw %d out of order at %d", ErrFormat, d, i)
		}
		prev = d
	}
	u := int32(p.Universe)
	for i, v := range p.Arena {
		if v < 0 || v >= u {
			return fmt.Errorf("%w: node %d out of universe at %d", ErrFormat, v, i)
		}
	}
	return nil
}

// maxReadChunk bounds how much Read allocates ahead of bytes actually
// arriving, so a header claiming a huge payload on a short stream costs
// at most one chunk before hitting the truncation error.
const maxReadChunk = 4 << 20

// Read reads exactly one snapshot from r (leaving any following bytes,
// e.g. a second snapshot in the same file, unread) and returns a pool
// owning freshly allocated sections. Allocation is incremental and
// capped by the bytes actually read, never by header claims alone.
func Read(r io.Reader) (*Pool, error) {
	buf := make([]byte, headerSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrFormat, err)
	}
	h, err := parseHeader(buf)
	if err != nil {
		return nil, err
	}
	size := encodedSize(h.numPaths, h.arenaLen)
	for int64(len(buf)) < size {
		n := min(size-int64(len(buf)), maxReadChunk)
		chunk := len(buf)
		buf = append(buf, make([]byte, n)...)
		if _, err := io.ReadFull(r, buf[chunk:]); err != nil {
			return nil, fmt.Errorf("%w: reading %d-byte payload: %v", ErrFormat, size, err)
		}
	}
	p, _, err := DecodeNext(buf)
	if err != nil {
		return nil, err
	}
	// buf is function-local, so aliasing is ownership; nothing to copy.
	return p, nil
}
