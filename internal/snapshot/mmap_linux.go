//go:build linux

package snapshot

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps the file read-only and returns the bytes plus an unmap
// func. Spill files are replaced atomically (write-temp + rename), so a
// mapping always observes the inode it opened, never a half-written
// successor. Empty files map to nil with a no-op closer.
func mapFile(f *os.File) ([]byte, func() error, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size > int64(int(^uint(0)>>1)) {
		return nil, nil, fmt.Errorf("snapshot: %d-byte file exceeds the address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

// Mapped reports whether OpenFile maps files zero-copy on this platform
// (true on linux) rather than falling back to a copying read.
const Mapped = true
