package obs

import (
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/rng"
)

// TestHistBucketLayout: the bucket function and the bounds function are
// inverse — every value lands in a bucket whose bounds contain it, and
// buckets tile the axis without gaps.
func TestHistBucketLayout(t *testing.T) {
	vals := []int64{0, 1, 2, 15, 16, 17, 31, 32, 33, 63, 64, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	st := rng.NewStream(1)
	for i := 0; i < 10000; i++ {
		vals = append(vals, int64(st.Uint64()>>uint(st.Intn(63))))
	}
	for _, v := range vals {
		if v < 0 {
			continue
		}
		i := histBucket(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("histBucket(%d) = %d out of range", v, i)
		}
		lo, hi := histBounds(i)
		if v < lo || (v >= hi && hi > lo) { // hi may overflow for the top bucket
			t.Errorf("value %d in bucket %d with bounds [%d, %d)", v, i, lo, hi)
		}
	}
	// Buckets tile without gaps.
	for i := 0; i < histBuckets-1; i++ {
		_, hi := histBounds(i)
		lo, _ := histBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between bucket %d (hi %d) and %d (lo %d)", i, hi, i+1, lo)
		}
	}
	if histBucket(-5) != 0 {
		t.Errorf("negative values must clamp to bucket 0")
	}
}

// TestHistogramQuantileOracle: quantiles extracted from the log buckets
// match a sorted-sample oracle within the layout's quantization error,
// across magnitudes from sub-microsecond to minutes.
func TestHistogramQuantileOracle(t *testing.T) {
	for _, scale := range []int64{1, 1000, 1e6, 1e9, 60e9} {
		h := NewHistogram()
		st := rng.NewStream(scale)
		samples := make([]int64, 0, 20000)
		for i := 0; i < 20000; i++ {
			// Long-tailed: mostly near scale, occasional 100× outliers.
			v := scale + int64(st.Intn(int(scale)))
			if st.Intn(100) == 0 {
				v *= 100
			}
			samples = append(samples, v)
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		snap := h.Snapshot()
		if got, want := snap.Count(), int64(len(samples)); got != want {
			t.Fatalf("scale %d: count = %d, want %d", scale, got, want)
		}
		var sum int64
		for _, v := range samples {
			sum += v
		}
		if snap.Sum != sum {
			t.Fatalf("scale %d: sum = %d, want %d", scale, snap.Sum, sum)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			rank := int(math.Ceil(q*float64(len(samples)))) - 1
			oracle := float64(samples[rank])
			got := snap.Quantile(q)
			// Bucket width is ≤ 1/histSub of the value, plus the midpoint
			// convention: allow one full bucket of relative error.
			if tol := oracle/histSub + 1; math.Abs(got-oracle) > tol {
				t.Errorf("scale %d q%.3f: got %g, oracle %g (tol %g)", scale, q, got, oracle, tol)
			}
		}
	}
}

// TestHistogramMergeAssociative: merging snapshots is associative and
// order-independent — ((a+b)+c) equals (a+(b+c)) bucket for bucket, and
// equals one histogram observing everything.
func TestHistogramMergeAssociative(t *testing.T) {
	parts := make([]*Histogram, 3)
	all := NewHistogram()
	st := rng.NewStream(7)
	for i := range parts {
		parts[i] = NewHistogram()
		for j := 0; j < 5000; j++ {
			v := int64(st.Uint64() >> uint(8+st.Intn(40)))
			parts[i].Observe(v)
			all.Observe(v)
		}
	}
	a, b, c := parts[0].Snapshot(), parts[1].Snapshot(), parts[2].Snapshot()

	left := HistSnapshot{}
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)

	bc := HistSnapshot{}
	bc.Merge(b)
	bc.Merge(c)
	right := HistSnapshot{}
	right.Merge(a)
	right.Merge(bc)

	want := all.Snapshot()
	for name, got := range map[string]HistSnapshot{"left": left, "right": right} {
		if got.Sum != want.Sum || got.Count() != want.Count() {
			t.Fatalf("%s: sum/count = %d/%d, want %d/%d", name, got.Sum, got.Count(), want.Sum, want.Count())
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("%s: bucket %d = %d, want %d", name, i, got.Counts[i], want.Counts[i])
			}
		}
	}
	// The zero snapshot is the merge identity.
	var zero HistSnapshot
	zero.Merge(want)
	if zero.Count() != want.Count() || zero.Quantile(0.5) != want.Quantile(0.5) {
		t.Error("merging into the zero snapshot lost observations")
	}
}

// TestHistogramConcurrent: concurrent recording loses nothing (run under
// -race in CI).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := rng.NewStream(int64(g))
			for i := 0; i < per; i++ {
				h.Observe(int64(st.Intn(1 << 30)))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Snapshot().Count(); got != goroutines*per {
		t.Errorf("count = %d, want %d", got, goroutines*per)
	}
}

func TestHistogramEmpty(t *testing.T) {
	snap := NewHistogram().Snapshot()
	if snap.Count() != 0 || snap.Quantile(0.5) != 0 || snap.Mean() != 0 {
		t.Errorf("empty histogram: %+v", snap)
	}
}
