//go:build race

package obs

// raceEnabled gates the AllocsPerRun pins in trace_test.go: the race
// runtime allocates shadow state inside otherwise alloc-free code, so
// the zero-alloc contracts are only checkable without -race.
const raceEnabled = true
