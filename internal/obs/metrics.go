package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the value to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time int64 metric.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		// Log-bucketed histograms expose as Prometheus summaries:
		// pre-extracted quantiles plus _sum and _count.
		return "summary"
	}
}

// series is one labelled time series inside a family. Exactly one of
// c/g/f/h is set.
type series struct {
	labels string // rendered `k="v",k2="v2"`, or ""
	c      *Counter
	g      *Gauge
	f      func() float64
	h      *Histogram
}

// family is every series sharing one metric name (and therefore one
// HELP/TYPE block in the exposition).
type family struct {
	name   string
	help   string
	typ    metricType
	series []*series
	byLab  map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; metric
// handles (Counter, Gauge, Histogram) are created once and cached by
// (name, labels), so registration is idempotent. Registering one name
// with two different types or help strings panics — metric names are an
// API, and a skewed re-registration is a programming error worth failing
// loudly on.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// renderLabels turns alternating key, value arguments into the
// canonical `k="v"` form. Keys are kept in argument order — callers pass
// them consistently, which keeps series identity stable.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label arguments %q", kv))
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteByte('"')
	}
	return b.String()
}

// seriesFor returns the (name, labels) series, creating family and
// series as needed.
func (r *Registry) seriesFor(name, help string, typ metricType, kv []string) *series {
	labels := renderLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.fams[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ, byLab: make(map[string]*series)}
		r.fams[name] = fam
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, typ, fam.typ))
	}
	s := fam.byLab[labels]
	if s == nil {
		s = &series{labels: labels}
		fam.byLab[labels] = s
		fam.series = append(fam.series, s)
	}
	return s
}

// Counter returns the counter named name with the given alternating
// label key, value arguments, registering it on first use.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	s := r.seriesFor(name, help, typeCounter, kv)
	if s.c == nil && s.f == nil {
		s.c = &Counter{}
	}
	return s.c
}

// CounterFunc registers a counter whose value is read from f at
// exposition time — the mirror for counters that already live elsewhere
// (e.g. a server's atomic ledger), costing the hot path nothing.
func (r *Registry) CounterFunc(name, help string, f func() float64, kv ...string) {
	r.seriesFor(name, help, typeCounter, kv).f = f
}

// Gauge returns the gauge named name, registering it on first use.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	s := r.seriesFor(name, help, typeGauge, kv)
	if s.g == nil && s.f == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is read from f at exposition
// time.
func (r *Registry) GaugeFunc(name, help string, f func() float64, kv ...string) {
	r.seriesFor(name, help, typeGauge, kv).f = f
}

// Histogram returns the histogram named name, registering it on first
// use. By the package naming convention histogram values are nanosecond
// durations and the name ends in _seconds; the exposition divides by
// 1e9.
func (r *Registry) Histogram(name, help string, kv ...string) *Histogram {
	s := r.seriesFor(name, help, typeHistogram, kv)
	if s.h == nil {
		s.h = NewHistogram()
	}
	return s.h
}

// quantiles every histogram exposes.
var quantiles = []struct {
	q     float64
	label string
}{{0.5, "0.5"}, {0.99, "0.99"}, {0.999, "0.999"}}

// Sample is one exported series value — the JSON-friendly snapshot form
// (see Registry.Snapshot). Histograms contribute one sample per
// quantile plus _sum and _count.
type Sample struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// sortedFams returns the families sorted by name; series within a family
// keep registration order (already stable).
func (r *Registry) sortedFams() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (s *series) value() float64 {
	switch {
	case s.f != nil:
		return s.f()
	case s.c != nil:
		return float64(s.c.Value())
	case s.g != nil:
		return float64(s.g.Value())
	}
	return 0
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return a + "," + b
}

// WritePrometheus renders every family in Prometheus text exposition
// format, families sorted by name and series in registration order, so
// repeated scrapes of an idle registry are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := &errWriter{w: w}
	for _, fam := range r.sortedFams() {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.typ)
		for _, s := range fam.series {
			if fam.typ == typeHistogram {
				snap := s.h.Snapshot()
				for _, q := range quantiles {
					fmt.Fprintf(bw, "%s{%s} %s\n", fam.name,
						joinLabels(s.labels, `quantile="`+q.label+`"`),
						formatFloat(snap.Quantile(q.q)/1e9))
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", fam.name, curly(s.labels), formatFloat(float64(snap.Sum)/1e9))
				fmt.Fprintf(bw, "%s_count%s %d\n", fam.name, curly(s.labels), snap.Count())
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", fam.name, curly(s.labels), formatFloat(s.value()))
		}
	}
	return bw.err
}

func curly(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// Snapshot returns every series as flat samples in exposition order —
// the JSON mirror of WritePrometheus, for transports that already speak
// JSON (e.g. the afserve stats op). Histogram samples carry seconds,
// like the exposition.
func (r *Registry) Snapshot() []Sample {
	var out []Sample
	for _, fam := range r.sortedFams() {
		for _, s := range fam.series {
			if fam.typ == typeHistogram {
				snap := s.h.Snapshot()
				for _, q := range quantiles {
					out = append(out, Sample{fam.name, joinLabels(s.labels, `quantile="`+q.label+`"`), snap.Quantile(q.q) / 1e9})
				}
				out = append(out, Sample{fam.name + "_sum", s.labels, float64(snap.Sum) / 1e9})
				out = append(out, Sample{fam.name + "_count", s.labels, float64(snap.Count())})
				continue
			}
			out = append(out, Sample{fam.name, s.labels, s.value()})
		}
	}
	return out
}

// errWriter latches the first write error so the exposition loop stays
// simple.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return len(p), nil
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}
