// Package httpserve serves the observability surface behind the CLI
// tools' -metrics-addr / -pprof flags: Prometheus text exposition at
// /metrics, a human-readable /statusz, the slowest-trace ring at
// /tracez, and net/http/pprof under /debug/pprof/ — all on one
// dedicated mux:
//
//	afserve -dataset Wiki -metrics-addr localhost:6060 < queries.jsonl &
//	curl http://localhost:6060/metrics
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// The handlers are registered on a private mux, never on
// http.DefaultServeMux: the default mux is process-wide shared state
// any imported package may add handlers to (expvar, future pprof
// imports), so serving it would expose whatever happened to be linked
// in. This package replaced the earlier pprofserve, which served the
// default mux.
package httpserve

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// Options selects what the endpoint serves. Nil fields disable their
// route; /debug/pprof is always served.
type Options struct {
	// Registry serves Prometheus text exposition at /metrics.
	Registry *obs.Registry
	// Tracer serves the slowest retained traces at /tracez as JSON.
	Tracer *obs.Tracer
	// Statusz renders the human-readable /statusz body.
	Statusz func(w io.Writer)
	// Query serves the query protocol at /v1/query (POST; see
	// internal/proto/httpapi), sharing this endpoint's listener and
	// lifecycle — one -metrics-addr serves observability and queries.
	Query http.Handler
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start serves the observability mux on addr from a background
// goroutine. An empty addr returns (nil, nil) — a nil *Server is a
// no-op endpoint, so callers need no conditional around Close. The
// listener is opened synchronously so a bad address fails the flag
// parse fast instead of dying silently mid-run.
func Start(addr string, o Options) (*Server, error) {
	if addr == "" {
		return nil, nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if o.Registry != nil {
		reg := o.Registry
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheus(w)
		})
	}
	if o.Statusz != nil {
		statusz := o.Statusz
		mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			statusz(w)
		})
	}
	if o.Query != nil {
		mux.Handle("/v1/query", o.Query)
	}
	if o.Tracer != nil {
		tr := o.Tracer
		mux.HandleFunc("/tracez", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(tr.Slowest())
		})
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpserve: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() {
		// Serve errors after a successful listen mean Close was called or
		// the process is shutting down — nothing to report.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0"); "" on a nil server.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the endpoint. A no-op on a nil server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// CLI bundles the observability flags the serving binaries share, so
// afserve and afexp register and interpret them identically instead of
// each carrying its own flag block.
type CLI struct {
	metricsAddr *string
	pprofAddr   *string
}

// AddFlags registers -metrics-addr and -pprof on fs and returns the
// handle to start the endpoint after parsing.
func AddFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	c.metricsAddr = fs.String("metrics-addr", "",
		"serve /metrics, /statusz, /tracez and /debug/pprof on this address (e.g. localhost:6060)")
	c.pprofAddr = fs.String("pprof", "",
		"alias of -metrics-addr (kept for profiling workflows)")
	return c
}

// Enabled reports whether either address flag was set — the caller's
// cue to build an obs.Obs before constructing its server.
func (c *CLI) Enabled() bool { return *c.metricsAddr != "" || *c.pprofAddr != "" }

// Start starts the endpoint on the flagged address (-metrics-addr wins
// when both are set); (nil, nil) when neither flag was given.
func (c *CLI) Start(o Options) (*Server, error) {
	addr := *c.metricsAddr
	if addr == "" {
		addr = *c.pprofAddr
	}
	return Start(addr, o)
}
