package httpserve

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoint(t *testing.T) {
	o := obs.New()
	o.Registry.Counter("af_test_total", "a test counter").Add(7)
	tr := o.Tracer.Start("solve")
	sp := tr.StartSpan(obs.StageSolve)
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Finish()

	s, err := Start("127.0.0.1:0", Options{
		Registry: o.Registry,
		Tracer:   o.Tracer,
		Statusz:  func(w io.Writer) { fmt.Fprintln(w, "status: ok") },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "af_test_total 7") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}
	if code, body := get(t, base+"/statusz"); code != 200 || !strings.Contains(body, "status: ok") {
		t.Errorf("/statusz = %d:\n%s", code, body)
	}
	if code, body := get(t, base+"/tracez"); code != 200 || !strings.Contains(body, `"solve"`) {
		t.Errorf("/tracez = %d:\n%s", code, body)
	}
	if code, body := get(t, base+"/debug/pprof/cmdline"); code != 200 || len(body) == 0 {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

func TestStartEmptyAddrAndNilServer(t *testing.T) {
	s, err := Start("", Options{})
	if s != nil || err != nil {
		t.Fatalf("Start(\"\") = %v, %v; want nil, nil", s, err)
	}
	if got := s.Addr(); got != "" {
		t.Errorf("nil server Addr() = %q", got)
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil server Close() = %v", err)
	}
}

func TestStartBadAddr(t *testing.T) {
	if _, err := Start("definitely-not-a-host:99999", Options{}); err == nil {
		t.Fatal("Start on a bad address did not fail")
	}
}

func TestCLIFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Enabled() {
		t.Error("Enabled() with no flags set")
	}
	if s, err := c.Start(Options{}); s != nil || err != nil {
		t.Errorf("Start with no flags = %v, %v; want nil, nil", s, err)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	c = AddFlags(fs)
	if err := fs.Parse([]string{"-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if !c.Enabled() {
		t.Error("Enabled() false with -pprof set")
	}
	s, err := c.Start(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, _ := get(t, "http://"+s.Addr()+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("pprof over -pprof alias = %d", code)
	}
}
