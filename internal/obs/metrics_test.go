package obs

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden: the exposition of a fixed registry is
// byte-stable (families sorted by name, series in registration order)
// and matches the Prometheus text format.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("af_zeta_total", "registered first, sorted last").Add(3)
	r.Counter("af_requests_total", "requests served", "kind", "solve", "result", "hit").Add(7)
	r.Counter("af_requests_total", "requests served", "kind", "solve", "result", "miss").Inc()
	r.Gauge("af_bytes_held", "resident pool bytes").Set(4096)
	r.GaugeFunc("af_uptime_seconds", "seconds since start", func() float64 { return 1.5 })
	h := r.Histogram("af_request_seconds", "query latency", "kind", "solve")
	for i := 0; i < 1000; i++ {
		h.Observe(2_000_000) // 2ms, exact multiple of a bucket boundary region
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	const want = `# HELP af_bytes_held resident pool bytes
# TYPE af_bytes_held gauge
af_bytes_held 4096
# HELP af_request_seconds query latency
# TYPE af_request_seconds summary
af_request_seconds{kind="solve",quantile="0.5"} 0.001998848
af_request_seconds{kind="solve",quantile="0.99"} 0.001998848
af_request_seconds{kind="solve",quantile="0.999"} 0.001998848
af_request_seconds_sum{kind="solve"} 2
af_request_seconds_count{kind="solve"} 1000
# HELP af_requests_total requests served
# TYPE af_requests_total counter
af_requests_total{kind="solve",result="hit"} 7
af_requests_total{kind="solve",result="miss"} 1
# HELP af_uptime_seconds seconds since start
# TYPE af_uptime_seconds gauge
af_uptime_seconds 1.5
# HELP af_zeta_total registered first, sorted last
# TYPE af_zeta_total counter
af_zeta_total 3
`
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Idempotence: a second scrape of the idle registry is byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Error("second scrape differs from the first")
	}
}

// TestExpositionParses: every line of a populated exposition is either a
// comment or a well-formed series line.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("af_a_total", "a").Inc()
	r.Gauge("af_b", "b").Set(-2)
	r.Histogram("af_c_seconds", "c", "stage", "solve").Observe(12345)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	series := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? -?[0-9.e+-]+$`)
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !series.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

// TestRegistryIdempotent: re-registering the same (name, labels) returns
// the same handle; skewed types panic.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("af_x_total", "x", "kind", "a")
	c2 := r.Counter("af_x_total", "x", "kind", "a")
	if c1 != c2 {
		t.Error("re-registration returned a distinct counter")
	}
	c1.Add(5)
	if c2.Value() != 5 {
		t.Error("handles do not share state")
	}
	if r.Histogram("af_h_seconds", "h") != r.Histogram("af_h_seconds", "h") {
		t.Error("re-registration returned a distinct histogram")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("af_x_total", "x")
}

// TestRegistryConcurrent: concurrent registration and recording under
// -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("af_shared_total", "shared").Inc()
				r.Histogram("af_shared_seconds", "shared").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("af_shared_total", "shared").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("af_shared_seconds", "shared").Snapshot().Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

// TestSnapshotMatchesExposition: the JSON snapshot carries the same
// series as the text exposition, in the same order.
func TestSnapshotMatchesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("af_a_total", "a", "kind", "x").Add(2)
	r.Gauge("af_b", "b").Set(9)
	r.Histogram("af_c_seconds", "c").Observe(1e9)
	samples := r.Snapshot()
	want := []Sample{
		{Name: "af_a_total", Labels: `kind="x"`, Value: 2},
		{Name: "af_b", Value: 9},
		{Name: "af_c_seconds", Labels: `quantile="0.5"`, Value: 0.989855744},
		{Name: "af_c_seconds", Labels: `quantile="0.99"`, Value: 0.989855744},
		{Name: "af_c_seconds", Labels: `quantile="0.999"`, Value: 0.989855744},
		{Name: "af_c_seconds_sum", Value: 1},
		{Name: "af_c_seconds_count", Value: 1},
	}
	if len(samples) != len(want) {
		t.Fatalf("got %d samples, want %d: %+v", len(samples), len(want), samples)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Errorf("sample %d = %+v, want %+v", i, samples[i], want[i])
		}
	}
}
