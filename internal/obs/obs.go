// Package obs is the dependency-free observability core behind the
// serving layer: a metrics registry (atomic counters, gauges, and
// log-bucketed latency histograms with p50/p99/p999 extraction), plus a
// Span/Tracer API for per-query stage timing.
//
// Everything here is designed around two constraints:
//
//   - Disabled must be free. A nil *Tracer returns a nil *Trace, whose
//     StartSpan/End/Finish are nil-check no-ops; TraceFrom on a context
//     with no trace returns nil without allocating. The instrumented
//     hot paths (pool sampling, coverage queries, p_max chunks) pin
//     0 allocs/op on the disabled path with testing.AllocsPerRun.
//   - No dependencies. The Prometheus text exposition is a hand-rolled
//     writer (see Registry.WritePrometheus); histograms are mergeable
//     snapshots of lock-free sharded log buckets, not a client library.
//
// # Metric naming convention
//
// Metric names are a stable API: scrapes, dashboards and the CI smoke
// step key on them, so renaming one is a breaking change. The
// convention: every series is prefixed "af_", monotonic counters end in
// "_total", duration histograms end in "_seconds" (recorded in
// nanoseconds, exposed in seconds as summaries with quantile labels),
// and point-in-time values are bare gauges (af_bytes_held,
// af_sessions_live). Label keys in use: kind (query kind), result
// (hit|miss), cause (spill load error cause), stage (trace stage),
// quantile (summary quantiles).
//
// # Quick start
//
//	o := obs.New()
//	h := o.Registry.Histogram("af_request_seconds", "query latency", "kind", "solve")
//	tr := o.Tracer.Start("solve")
//	ctx = obs.WithTrace(ctx, tr)
//	sp := obs.TraceFrom(ctx).StartSpan(obs.StagePoolGrow)
//	// ... sample ...
//	sp.End()
//	h.Observe(int64(tr.Finish()))
//	o.Registry.WritePrometheus(os.Stdout)
package obs

import (
	"io"
	"time"
)

// Obs bundles one registry with one tracer — the unit of observability a
// server carries. A nil *Obs means observability is disabled end to end.
type Obs struct {
	Registry *Registry
	Tracer   *Tracer
}

// DefaultTraceKeep is how many slowest traces New's tracer retains.
const DefaultTraceKeep = 32

// New returns an enabled Obs with an empty registry and a tracer keeping
// the DefaultTraceKeep slowest traces.
func New() *Obs {
	return &Obs{Registry: NewRegistry(), Tracer: NewTracer(DefaultTraceKeep)}
}

// SetSlowLog arms the tracer's slow-query log: completed traces with
// total duration ≥ threshold are written to w as one-line JSON. A no-op
// on a nil Obs, a zero threshold, or a nil writer.
func (o *Obs) SetSlowLog(threshold time.Duration, w io.Writer) {
	if o == nil || o.Tracer == nil {
		return
	}
	o.Tracer.SetSlowLog(threshold, w)
}
