package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Stage labels one instrumented segment of a query's execution — the
// natural units of the paper's multi-stage pipeline (sample → fold →
// greedy solve → decorrelated measure → p_max stopping rule) plus the
// serving layer's own stages (session acquire, spill load, repair,
// ranking rounds). Stage names are part of the metric-name API (the
// stage label of af_stage_seconds).
type Stage uint8

const (
	// StageAcquire is the pair-session lookup/creation, including any
	// one-time spill restore the acquisition triggered.
	StageAcquire Stage = iota
	// StageSpillLoad is a spill-file restore (also recorded when no
	// trace is in flight, as a bare histogram observation).
	StageSpillLoad
	// StagePoolGrow is realization sampling: growing a session pool to
	// the requested draw count.
	StagePoolGrow
	// StageFamilyFold is the set-cover fold of a pool into its family of
	// distinct canonical sets (≈0 when the pool's family is cached).
	StageFamilyFold
	// StageSolve is the greedy set-cover solve.
	StageSolve
	// StageMeasure is a coverage measurement against a pool's index.
	StageMeasure
	// StagePmax is Algorithm 2 stopping-rule chunk sampling.
	StagePmax
	// StageRepair is delta repair: resampling damaged chunks after a
	// graph mutation.
	StageRepair
	// StageRankRound is one successive-halving round of a batched top-k
	// schedule (scoring of every surviving candidate included).
	StageRankRound
	// NumStages bounds the Stage space for per-stage aggregation arrays.
	NumStages
)

var stageNames = [NumStages]string{
	"acquire", "spill_load", "pool_grow", "family_fold", "solve",
	"measure", "pmax", "repair", "rank_round",
}

// String returns the stage's stable label.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// maxSpans bounds a trace's span records; spans past the cap are counted
// as dropped rather than grown into (traces must not allocate per span).
const maxSpans = 64

type spanRec struct {
	stage Stage
	start int64 // ns since trace begin
	dur   int64
}

// Trace is one query's stage timeline. A nil *Trace is the disabled
// tracer's output and makes every method a no-op, so instrumented code
// needs no conditionals — and no allocations — when tracing is off.
//
// StartSpan is safe to call from concurrent goroutines sharing one trace
// (batched queries score candidates in parallel); Finish must only be
// called after every span has ended.
type Trace struct {
	t       *Tracer
	kind    string
	begin   time.Time
	total   time.Duration
	n       atomic.Int32
	dropped atomic.Int32
	spans   [maxSpans]spanRec
}

// Span is an open stage timing; End closes it. The zero Span (from a nil
// trace or an overflowing one) is a no-op.
type Span struct {
	tr *Trace
	i  int32
}

// StartSpan opens a span for stage st. On a nil trace it returns the
// no-op zero Span without allocating.
func (tr *Trace) StartSpan(st Stage) Span {
	if tr == nil {
		return Span{}
	}
	i := tr.n.Add(1) - 1
	if i >= maxSpans {
		tr.dropped.Add(1)
		return Span{}
	}
	tr.spans[i] = spanRec{stage: st, start: time.Since(tr.begin).Nanoseconds()}
	return Span{tr: tr, i: i}
}

// AddSpan records an already-measured stage duration (for segments timed
// externally). A no-op on a nil trace.
func (tr *Trace) AddSpan(st Stage, start time.Time, dur time.Duration) {
	if tr == nil {
		return
	}
	i := tr.n.Add(1) - 1
	if i >= maxSpans {
		tr.dropped.Add(1)
		return
	}
	tr.spans[i] = spanRec{stage: st, start: start.Sub(tr.begin).Nanoseconds(), dur: dur.Nanoseconds()}
}

// End closes the span.
func (sp Span) End() {
	if sp.tr == nil {
		return
	}
	r := &sp.tr.spans[sp.i]
	r.dur = time.Since(sp.tr.begin).Nanoseconds() - r.start
}

// Kind returns the query kind the trace was started with.
func (tr *Trace) Kind() string {
	if tr == nil {
		return ""
	}
	return tr.kind
}

// Total returns the finished trace's total duration (0 before Finish).
func (tr *Trace) Total() time.Duration {
	if tr == nil {
		return 0
	}
	return tr.total
}

// EachSpan calls f for every recorded span in start order. Must not race
// open spans; intended after Finish.
func (tr *Trace) EachSpan(f func(stage Stage, dur time.Duration)) {
	if tr == nil {
		return
	}
	n := min(int(tr.n.Load()), maxSpans)
	for i := 0; i < n; i++ {
		f(tr.spans[i].stage, time.Duration(tr.spans[i].dur))
	}
}

// Finish stamps the trace's total duration and hands it to the tracer's
// slowest-N ring and slow-query log. Returns the total; 0 on a nil
// trace.
func (tr *Trace) Finish() time.Duration {
	if tr == nil {
		return 0
	}
	tr.total = time.Since(tr.begin)
	tr.t.record(tr)
	return tr.total
}

// SpanSummary is one span of a rendered trace.
type SpanSummary struct {
	Stage   string `json:"stage"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
}

// TraceSummary is a finished trace rendered for transport: the tracez
// ring entries and the slow-query log lines are this struct as JSON.
type TraceSummary struct {
	Kind    string        `json:"kind"`
	Begin   time.Time     `json:"begin"`
	TotalUs int64         `json:"total_us"`
	Spans   []SpanSummary `json:"spans,omitempty"`
	Dropped int           `json:"dropped_spans,omitempty"`
}

// Summary renders the finished trace.
func (tr *Trace) Summary() TraceSummary {
	if tr == nil {
		return TraceSummary{}
	}
	s := TraceSummary{
		Kind:    tr.kind,
		Begin:   tr.begin,
		TotalUs: tr.total.Microseconds(),
		Dropped: int(tr.dropped.Load()),
	}
	tr.EachSpan(func(st Stage, d time.Duration) {
		i := len(s.Spans)
		s.Spans = append(s.Spans, SpanSummary{Stage: st.String(), StartUs: tr.spans[i].start / 1e3, DurUs: d.Microseconds()})
	})
	return s
}

// Tracer hands out traces and retains the slowest keep of them — the
// tracez ring — plus an optional slow-query log. A nil *Tracer is the
// disabled state: Start returns nil and the whole span machinery
// no-ops.
type Tracer struct {
	keep int

	mu    sync.Mutex
	ring  []*Trace // up to keep slowest finished traces, unordered
	slow  time.Duration
	slowW io.Writer
}

// NewTracer returns a tracer retaining the keep slowest traces
// (DefaultTraceKeep when keep ≤ 0).
func NewTracer(keep int) *Tracer {
	if keep <= 0 {
		keep = DefaultTraceKeep
	}
	return &Tracer{keep: keep}
}

// SetSlowLog arms the slow-query log: finished traces with total ≥
// threshold are written to w as one-line JSON (a TraceSummary). Writes
// are serialized by the tracer. A zero threshold or nil writer disarms.
func (t *Tracer) SetSlowLog(threshold time.Duration, w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slow, t.slowW = threshold, w
	t.mu.Unlock()
}

// Start opens a trace for one query of the given kind; nil (a no-op
// trace) on a nil tracer.
func (t *Tracer) Start(kind string) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{t: t, kind: kind, begin: time.Now()}
}

// record files a finished trace into the ring and the slow log.
func (t *Tracer) record(tr *Trace) {
	var logLine []byte
	t.mu.Lock()
	if t.slowW != nil && t.slow > 0 && tr.total >= t.slow {
		logLine, _ = json.Marshal(tr.Summary())
	}
	if len(t.ring) < t.keep {
		t.ring = append(t.ring, tr)
	} else {
		minI := 0
		for i, r := range t.ring {
			if r.total < t.ring[minI].total {
				minI = i
			}
		}
		if tr.total > t.ring[minI].total {
			t.ring[minI] = tr
		}
	}
	if logLine != nil {
		t.slowW.Write(append(logLine, '\n'))
	}
	t.mu.Unlock()
}

// Slowest returns the retained traces, slowest first.
func (t *Tracer) Slowest() []TraceSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TraceSummary, 0, len(t.ring))
	for _, tr := range t.ring {
		out = append(out, tr.Summary())
	}
	t.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].TotalUs > out[j-1].TotalUs; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// traceKey carries a *Trace through a context. A zero-size key type
// keeps WithTrace/TraceFrom allocation-free on the lookup side.
type traceKey struct{}

// WithTrace returns a context carrying tr; the original context when tr
// is nil, so disabled tracing adds no context layer.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the context's trace, or nil — without allocating —
// when none (or a nil context) is present. The nil result flows through
// StartSpan/End as no-ops, which is what keeps disabled-path
// instrumentation at zero cost.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}
