package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Histogram bucket layout: values 0..15 get exact unit buckets; beyond
// that each power of two is split into histSub sub-buckets, so the
// relative quantization error is at most 1/histSub ≈ 6.25%. The layout
// covers the full non-negative int64 range (nanosecond durations up to
// ~292 years), which takes (63-histSubBits+1)*histSub + histSub buckets.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // sub-buckets per power of two
	histBuckets = (63 - histSubBits + 1) * histSub
)

// histBucket maps a non-negative value to its bucket index. Negative
// values clamp to bucket 0.
func histBucket(v int64) int {
	if v < histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // 2^e ≤ v < 2^(e+1), e ≥ histSubBits
	top := v >> (e - histSubBits)  // [histSub, 2·histSub)
	return (e-histSubBits+1)*histSub + int(top) - histSub
}

// histBounds returns bucket i's half-open value range [lo, hi).
func histBounds(i int) (lo, hi int64) {
	if i < histSub {
		return int64(i), int64(i) + 1
	}
	e := histSubBits + (i-histSub)/histSub
	rem := (i - histSub) % histSub
	lo = int64(histSub+rem) << (e - histSubBits)
	return lo, lo + 1<<(e-histSubBits)
}

// histStripe is one shard of a histogram's buckets. Stripes are handed
// out through a sync.Pool, so under steady load each P records into its
// own stripe without contention or locks.
type histStripe struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
}

// Histogram is a lock-free log-bucketed histogram of int64 values
// (by convention nanosecond durations; see the package naming note).
// Observe is safe for concurrent use and allocation-free in steady
// state; Snapshot merges the stripes into an immutable, mergeable view
// with quantile extraction.
type Histogram struct {
	stripes sync.Pool // of *histStripe

	mu  sync.Mutex
	all []*histStripe // every stripe ever created, for Snapshot
}

// NewHistogram returns an empty histogram. Registry.Histogram is the
// usual constructor; this one exists for tests and standalone use.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.stripes.New = func() any {
		s := &histStripe{}
		h.mu.Lock()
		h.all = append(h.all, s)
		h.mu.Unlock()
		return s
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	s := h.stripes.Get().(*histStripe)
	s.counts[histBucket(v)].Add(1)
	s.sum.Add(v)
	h.stripes.Put(s)
}

// Snapshot merges every stripe into one immutable view. The snapshot is
// consistent per bucket (atomic loads) but not across buckets — an
// Observe racing the snapshot may or may not be included, which is the
// usual contract for scrape-time reads.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	h.mu.Lock()
	all := h.all
	h.mu.Unlock()
	for _, st := range all {
		s.Sum += st.sum.Load()
		for i := range st.counts {
			if c := st.counts[i].Load(); c != 0 {
				if s.Counts == nil {
					s.Counts = make([]int64, histBuckets)
				}
				s.Counts[i] += c
			}
		}
	}
	return s
}

// HistSnapshot is a merged, immutable histogram state. The zero value is
// an empty histogram; snapshots from different histograms (or different
// processes) merge associatively.
type HistSnapshot struct {
	Counts []int64 // len histBuckets, or nil when empty
	Sum    int64
}

// Merge adds o's observations into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Sum += o.Sum
	if o.Counts == nil {
		return
	}
	if s.Counts == nil {
		s.Counts = make([]int64, histBuckets)
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
}

// Count returns the number of observations.
func (s HistSnapshot) Count() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean returns the arithmetic mean, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}

// Quantile returns the value at quantile q ∈ [0, 1] — the midpoint of
// the bucket holding the ⌈q·count⌉-th smallest observation, exact for
// values below 16 and within ~6.25% relative error above. Returns 0 when
// empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			lo, hi := histBounds(i)
			if i < histSub {
				return float64(lo) // exact unit bucket
			}
			return float64(lo+hi) / 2
		}
	}
	return 0
}
