package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTracerNoOps: the entire disabled path — nil tracer, nil trace,
// zero span, trace-less context — is a safe no-op.
func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	trace := tr.Start("solve")
	if trace != nil {
		t.Fatal("nil tracer must hand out nil traces")
	}
	sp := trace.StartSpan(StageSolve)
	sp.End()
	trace.AddSpan(StageMeasure, time.Now(), time.Millisecond)
	trace.EachSpan(func(Stage, time.Duration) { t.Error("nil trace has no spans") })
	if trace.Finish() != 0 || trace.Total() != 0 || trace.Kind() != "" {
		t.Error("nil trace must report zeros")
	}
	if s := trace.Summary(); s.Kind != "" || len(s.Spans) != 0 {
		t.Error("nil trace summary must be empty")
	}
	tr.SetSlowLog(time.Millisecond, &bytes.Buffer{})
	if tr.Slowest() != nil {
		t.Error("nil tracer has no retained traces")
	}
	ctx := WithTrace(context.Background(), nil)
	if ctx != context.Background() {
		t.Error("WithTrace(nil) must not wrap the context")
	}
	if TraceFrom(ctx) != nil || TraceFrom(nil) != nil {
		t.Error("TraceFrom must return nil when no trace is present")
	}
}

// TestTraceSpans: spans record stage, ordering, and durations; the
// context round-trip preserves identity.
func TestTraceSpans(t *testing.T) {
	tr := NewTracer(4)
	trace := tr.Start("solvemax")
	ctx := WithTrace(context.Background(), trace)
	if TraceFrom(ctx) != trace {
		t.Fatal("context round-trip lost the trace")
	}

	sp := trace.StartSpan(StagePoolGrow)
	time.Sleep(time.Millisecond)
	sp.End()
	trace.AddSpan(StageSolve, time.Now(), 5*time.Millisecond)
	total := trace.Finish()
	if total <= 0 {
		t.Fatal("finished trace must have positive total")
	}
	if trace.Kind() != "solvemax" || trace.Total() != total {
		t.Errorf("kind/total = %q/%v", trace.Kind(), trace.Total())
	}

	var stages []Stage
	var durs []time.Duration
	trace.EachSpan(func(st Stage, d time.Duration) {
		stages = append(stages, st)
		durs = append(durs, d)
	})
	if len(stages) != 2 || stages[0] != StagePoolGrow || stages[1] != StageSolve {
		t.Fatalf("stages = %v", stages)
	}
	if durs[0] < time.Millisecond || durs[1] != 5*time.Millisecond {
		t.Errorf("durations = %v", durs)
	}

	s := trace.Summary()
	if s.Kind != "solvemax" || len(s.Spans) != 2 || s.Spans[0].Stage != "pool_grow" || s.Spans[1].Stage != "solve" {
		t.Errorf("summary = %+v", s)
	}
	if s.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", s.Dropped)
	}
}

// TestTraceSpanOverflow: spans beyond maxSpans are counted as dropped,
// not grown into or written out of bounds.
func TestTraceSpanOverflow(t *testing.T) {
	trace := NewTracer(1).Start("topk")
	for i := 0; i < maxSpans+10; i++ {
		trace.StartSpan(StageRankRound).End()
	}
	trace.Finish()
	s := trace.Summary()
	if len(s.Spans) != maxSpans {
		t.Errorf("kept %d spans, want %d", len(s.Spans), maxSpans)
	}
	if s.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", s.Dropped)
	}
}

// TestTracerRing: the tracer retains the keep slowest traces, sorted
// slowest first.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	// Fabricate finished traces with controlled totals.
	for _, us := range []int64{10, 50, 20, 90, 5, 70} {
		trace := tr.Start("solve")
		trace.total = time.Duration(us) * time.Microsecond
		tr.record(trace)
	}
	got := tr.Slowest()
	if len(got) != 3 {
		t.Fatalf("retained %d traces, want 3", len(got))
	}
	want := []int64{90, 70, 50}
	for i, s := range got {
		if s.TotalUs != want[i] {
			t.Errorf("slowest[%d] = %dus, want %dus", i, s.TotalUs, want[i])
		}
	}
}

// TestSlowLog: traces at or over the threshold emit one-line JSON
// TraceSummary records; faster traces do not.
func TestSlowLog(t *testing.T) {
	tr := NewTracer(2)
	var buf bytes.Buffer
	tr.SetSlowLog(time.Millisecond, &buf)

	fast := tr.Start("solve")
	fast.total = 100 * time.Microsecond
	tr.record(fast)
	if buf.Len() != 0 {
		t.Fatal("fast trace must not be logged")
	}

	slow := tr.Start("pmax")
	slow.StartSpan(StagePmax).End()
	slow.total = 3 * time.Millisecond
	tr.record(slow)

	line := strings.TrimSuffix(buf.String(), "\n")
	if strings.ContainsRune(line, '\n') {
		t.Fatalf("slow log must be one line, got %q", buf.String())
	}
	var s TraceSummary
	if err := json.Unmarshal([]byte(line), &s); err != nil {
		t.Fatalf("slow log line is not JSON: %v (%q)", err, line)
	}
	if s.Kind != "pmax" || s.TotalUs != 3000 || len(s.Spans) != 1 || s.Spans[0].Stage != "pmax" {
		t.Errorf("slow log summary = %+v", s)
	}
}

// TestConcurrentSpans: goroutines sharing one trace (parallel top-k
// scoring) can StartSpan/End concurrently; every span under the cap is
// kept and the rest counted as dropped.
func TestConcurrentSpans(t *testing.T) {
	trace := NewTracer(1).Start("topk")
	const goroutines, per = 8, 16 // 128 spans, 64 over the cap
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				trace.StartSpan(StageRankRound).End()
			}
		}()
	}
	wg.Wait()
	trace.Finish()
	s := trace.Summary()
	if len(s.Spans)+s.Dropped != goroutines*per {
		t.Errorf("spans %d + dropped %d != %d", len(s.Spans), s.Dropped, goroutines*per)
	}
	if len(s.Spans) != maxSpans {
		t.Errorf("kept %d spans, want %d", len(s.Spans), maxSpans)
	}
}

// TestStageStrings: every stage has a distinct non-"unknown" label —
// the labels are metric API.
func TestStageStrings(t *testing.T) {
	seen := map[string]bool{}
	for st := Stage(0); st < NumStages; st++ {
		name := st.String()
		if name == "" || name == "unknown" || seen[name] {
			t.Errorf("stage %d has bad or duplicate label %q", st, name)
		}
		seen[name] = true
	}
	if NumStages.String() != "unknown" {
		t.Error("out-of-range stage must stringify as unknown")
	}
}

// TestDisabledPathZeroAlloc pins the tentpole contract: with tracing
// disabled, the full instrumentation sequence — context lookup, span
// open/close, finish — allocates nothing, and steady-state histogram
// observation allocates nothing either.
func TestDisabledPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates shadow state")
	}
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		tr := TraceFrom(ctx)
		sp := tr.StartSpan(StageSolve)
		sp.End()
		tr.AddSpan(StageMeasure, time.Time{}, 0)
		tr.Finish()
	}); n != 0 {
		t.Errorf("disabled trace path: %v allocs/op, want 0", n)
	}

	h := NewHistogram()
	h.Observe(1) // warm the calling P's stripe
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(123456)
	}); n != 0 {
		t.Errorf("histogram observe: %v allocs/op, want 0", n)
	}

	var c Counter
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(7)
	}); n != 0 {
		t.Errorf("counter/gauge: %v allocs/op, want 0", n)
	}
}
