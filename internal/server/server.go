// Package server is the graph-level serving layer: one Server owns a
// graph plus a weight scheme and answers Solve / SolveMax / EstimateF /
// Pmax queries for arbitrary (s,t) pairs — the paper's online setting,
// where many friending queries are in flight against one social network
// at once.
//
// Pair sessions (a core.Session plus a decorrelated evaluation-pool
// session) are created on demand and cached in a map sharded across a
// fixed number of locks (hash of the pair), so queries for distinct
// pairs never contend on session lookup. Cached pools are evicted
// least-recently-used under a configurable byte budget, sized by
// engine.Pool.MemBytes.
//
// Every result is a pure function of (seed, s, t): each pair's streams
// derive from rng.DeriveStream(seed, nsPair, pack(s,t)), so an evicted
// pair re-admitted later re-derives byte-identical pools. Eviction is a
// latency event, never a correctness event — an answer after any
// eviction schedule equals the never-evicted answer.
//
// With Config.SpillDir set, eviction gains a second tier: instead of
// discarding a victim's pools, the server snapshots them to disk
// (internal/snapshot; atomic write-temp + rename) — together with the
// pair's Algorithm 2 p_max estimator ledger — and a later query for
// the pair restores the state from bytes instead of resampling it.
// Snapshots are checksummed and carry their stream identity, so a
// corrupted, truncated or configuration-skewed file is rejected and the
// pair silently falls back to resampling — with identical answers, by
// the same purity argument. SpillAll flushes every live pair at
// shutdown; Warm preloads every spill file at startup, so a restarted
// server answers its first queries from disk-warm pools.
//
// The graph itself may mutate: ApplyDelta applies a batch of edge
// additions, removals and weight updates, producing the next epoch's
// graph, and migrates every live pair across it by *repair* instead of
// discard — pool chunks whose touch sets miss the delta's dirty nodes
// keep their bytes, only damaged chunks are resampled (see
// engine.Session.RepairTo), and a pair whose (s,t) the delta dissolves
// (the nodes become adjacent) is dropped. The server keeps the epoch
// lineage (engine.Lineage), so spill files written at an earlier epoch
// are adopted and repaired on load rather than rejected. Queries that
// begin after ApplyDelta returns are answered at the new epoch;
// in-flight queries finish at the epoch they started on.
package server

import (
	"bufio"
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/maxaf"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/snapshot"
	"repro/internal/weights"
)

// nsPair namespaces the per-pair seed derivation so pair streams never
// collide with the engine's own pool/eval/estimate namespaces.
const nsPair uint64 = 0x50616972 // "Pair"

// DefaultShards is the pair-map lock count used when Config.Shards ≤ 0.
const DefaultShards = 16

// Config parameterizes a Server.
type Config struct {
	// MaxPoolBytes bounds the total bytes of cached pair state (pool
	// arenas, offset tables, coverage indexes) as measured by
	// engine MemBytes accounting. When a completed query pushes the total
	// over the budget, least-recently-used pairs are evicted until it
	// fits. 0 disables eviction.
	MaxPoolBytes int64
	// Shards is the number of locks the pair map is sharded across
	// (default DefaultShards). Distinct pairs on distinct shards never
	// contend on session lookup.
	Shards int
	// Seed roots every pair's derived streams; results are pure functions
	// of (Seed, s, t). Workers bounds sampling parallelism per query
	// (0 = all CPUs) without affecting any result.
	Seed    int64
	Workers int
	// SpillDir, when non-empty, turns eviction into a spill: a victim
	// pair's pools are snapshotted to one file in this directory before
	// the memory is released, and the pair's next query restores them
	// from bytes instead of resampling. The directory must exist. Spill
	// files from a previous process with the same Seed are picked up
	// transparently (or eagerly via Warm); files that fail checksum,
	// version or stream-identity validation are ignored and the pair
	// resamples — answers are identical either way.
	SpillDir string
	// SpillTTL, when positive, expires spill files: a snapshot not
	// rewritten within the TTL is deleted — at Warm, and periodically
	// (under the delta mutex, so sweeps never race a migration's own
	// spill-file maintenance) as spills are written. An expired pair
	// simply resamples on its next query, which changes no answer; the
	// sweep is ledgered in Stats.SpillFilesExpired. 0 keeps files
	// forever.
	SpillTTL time.Duration
	// MaxInflight bounds the number of queries executing at once; 0
	// disables admission control. MaxQueue bounds the queries allowed to
	// wait for a free slot when the limit is reached — anything beyond
	// the queue is fast-rejected with ErrOverloaded (never queued
	// unboundedly). The gate covers the public query entry points only;
	// PairHandle/Warm/ApplyDelta traffic is never gated.
	MaxInflight int
	MaxQueue    int
	// Obs, when non-nil, enables observability: every query records its
	// latency into a per-kind histogram and a per-stage trace in
	// Obs.Registry/Obs.Tracer, and every Stats counter is mirrored as a
	// scrape-time series. Nil (the default) disables all of it at zero
	// hot-path cost. An Obs should serve one Server: mirrors registered
	// by a later server with the same registry replace the earlier ones.
	Obs *obs.Obs
}

// Kind labels a query kind in the hit/miss ledger.
type Kind int

const (
	KindSolve Kind = iota
	KindSolveMax
	KindEstimateF
	KindPmax
	KindPmaxEst // Algorithm 2 stopping-rule estimates (PmaxEstimate)
	KindAcquire // harness Pair() acquisitions
	KindTopK    // batched top-k ranking (per-candidate session acquisitions)
	numKinds
)

// String returns the ledger label of the kind.
func (k Kind) String() string {
	switch k {
	case KindSolve:
		return "solve"
	case KindSolveMax:
		return "solvemax"
	case KindEstimateF:
		return "estimatef"
	case KindPmax:
		return "pmax"
	case KindPmaxEst:
		return "pmaxest"
	case KindAcquire:
		return "acquire"
	case KindTopK:
		return "topk"
	}
	return "unknown"
}

// KindCounts is the hit/miss tally for one query kind: a hit found the
// pair's session cached, a miss created (or re-created, after eviction)
// it.
type KindCounts struct {
	Hits   int64
	Misses int64
}

// Stats is the server's observability ledger.
type Stats struct {
	// SessionsLive is the number of currently cached pair sessions;
	// SessionsCreated and SessionsEvicted are lifetime counters (a pair
	// recreated after eviction counts as created again). An eviction is
	// counted exactly when its pair leaves the cache, so at quiescence
	// (no queries in flight) SessionsLive == SessionsCreated −
	// SessionsEvicted; a snapshot taken mid-eviction may transiently see
	// the map shrink before the counter settles.
	SessionsLive    int
	SessionsCreated int64
	SessionsEvicted int64
	// BytesHeld is the accounted size of all cached pair state. After an
	// eviction pass it never exceeds Config.MaxPoolBytes.
	BytesHeld int64
	// Spills counts evictions (and SpillAll flushes) that wrote the
	// victim's pools to SpillDir, totalling SpillBytes on disk; with no
	// SpillDir both stay zero and eviction discards.
	Spills     int64
	SpillBytes int64
	// SpillLoads counts pair re-admissions whose pools were restored
	// from a spill file (SpillLoadBytes read) instead of resampled;
	// SpillDrawsSaved totals the pool draws those loads avoided — the
	// load-vs-resample win. SpillLoadErrors counts spill files rejected
	// or unreadable, split by cause: checksum failures, format-version
	// skew, stream-identity mismatches (wrong seed or namespace),
	// instance mismatches (a fingerprint matching neither the current
	// epoch nor a lineage ancestor), and everything else (I/O errors,
	// truncation). SpillWriteErrors counts failed snapshot writes (the
	// previous file, if any, is left intact); the pair then resamples on
	// its next admission, which changes no answer.
	SpillLoads           int64
	SpillLoadBytes       int64
	SpillDrawsSaved      int64
	SpillLoadErrors      int64
	SpillLoadErrChecksum int64
	SpillLoadErrVersion  int64
	SpillLoadErrStream   int64
	SpillLoadErrInstance int64
	SpillLoadErrOther    int64
	SpillWriteErrors     int64
	// SpillFilesExpired counts spill files deleted by the TTL sweep
	// (Config.SpillTTL): snapshots not rewritten within the TTL. The
	// affected pairs resample on their next admission — a latency event,
	// never a correctness event.
	SpillFilesExpired int64
	// Inflight and Queued are the admission gate's current occupancy:
	// queries executing and queries waiting for a slot. Admitted and
	// Rejected are lifetime counters — every query entering a public
	// query method either admits (possibly after queueing), rejects with
	// ErrOverloaded, or gives up waiting (context cancellation; counted
	// in neither). All zero with admission disabled (MaxInflight ≤ 0).
	Inflight int
	Queued   int
	Admitted int64
	Rejected int64
	// DeltasApplied counts ApplyDelta calls that actually changed the
	// graph or its weights (no-op deltas advance nothing). PairsDropped
	// counts pairs dissolved by a delta — their (s,t) became adjacent,
	// the problem is solved — including spill-only pairs whose files
	// were swept. PoolsRepaired counts pair migrations and spill loads
	// that carried state across epochs by repair; RepairChunksResampled
	// / RepairDrawsResampled are the chunks and draws those repairs
	// re-drew, and RepairDrawsSaved the draws adopted verbatim — what a
	// discard-and-resample would have paid on top.
	DeltasApplied         int64
	PairsDropped          int64
	PoolsRepaired         int64
	RepairChunksResampled int64
	RepairDrawsResampled  int64
	RepairDrawsSaved      int64
	// PmaxDrawsReused totals the Algorithm 2 stopping-rule draws that
	// queries (Solve step 2 and PmaxEstimate) answered from a pair's
	// retained estimator ledger instead of resampling — the refinement
	// win, the p_max analog of SpillDrawsSaved.
	PmaxDrawsReused int64
	// Coalesced counts queries that joined an identical in-flight query
	// (same kind, pair, parameters and graph epoch) instead of paying
	// their own computation — two racing clients previously both paid a
	// cold pool. See Server.coalesce.
	Coalesced int64
	// ByKind indexes hit/miss tallies by Kind.
	ByKind [numKinds]KindCounts
}

type pairKey struct{ s, t graph.Node }

// entry is one cached pair: the solve session and its decorrelated
// evaluation session. The LRU fields are guarded by Server.lruMu.
//
// With a spill directory, a freshly created entry's sessions may be
// restored from disk. The restore runs behind restoreOnce on the first
// acquirer AFTER the entry is published — off the shard lock, so a slow
// disk never stalls unrelated pairs on the same shard; later acquirers
// of the same pair block on the Once (they would block on the cold
// pool's sampling otherwise). sess/eval are replaced only inside the
// Once, which happens-before every use.
type entry struct {
	key  pairKey
	sess *core.Session
	eval *engine.Session
	gen  *generation // the epoch the sessions were built (or migrated) for

	restoreOnce sync.Once
	loaded      bool  // restored from a spill file; written inside restoreOnce
	loadedDraws int64 // pool draws at restore time; written inside restoreOnce

	elem    *list.Element // position in the LRU list; nil when not listed
	bytes   int64         // bytes currently charged against the budget
	evicted bool          // removed from the map; in-flight holders may remain
}

// generation is one epoch of the served graph: the graph, its rebuilt
// weight scheme, and the graph fingerprint that names the epoch in the
// lineage. ApplyDelta swaps the server's generation pointer atomically;
// entries remember the generation they were built for, so a delta's
// migration walk can tell stale pairs from ones already at the head.
type generation struct {
	g       *graph.Graph
	scheme  weights.Scheme
	graphFP uint64
}

type shard struct {
	mu sync.Mutex
	m  map[pairKey]*entry
}

// Server serves multi-pair query traffic on one graph. Safe for
// concurrent use.
type Server struct {
	cfg    Config
	shards []shard

	// gen is the current epoch; acquire reads it inside the shard
	// critical section on a miss, so the mutual exclusion with
	// ApplyDelta's migration walk (which stores gen before locking any
	// shard) guarantees no entry of a stale generation is ever inserted
	// after the walk passed its shard. lineage records every epoch's
	// dirty set so ancestor spill blobs can be adopted and repaired.
	// deltaMu serializes ApplyDelta calls.
	gen     atomic.Pointer[generation]
	lineage *engine.Lineage
	deltaMu sync.Mutex

	created atomic.Int64
	evicted atomic.Int64
	kinds   [numKinds]struct{ hits, misses atomic.Int64 }

	spills               atomic.Int64
	spillBytes           atomic.Int64
	spillLoads           atomic.Int64
	spillLoadBytes       atomic.Int64
	spillDrawsSaved      atomic.Int64
	spillLoadErrors      atomic.Int64
	spillLoadErrChecksum atomic.Int64
	spillLoadErrVersion  atomic.Int64
	spillLoadErrStream   atomic.Int64
	spillLoadErrInstance atomic.Int64
	spillLoadErrOther    atomic.Int64
	spillWriteErrors     atomic.Int64
	spillExpired         atomic.Int64
	pmaxDrawsReused      atomic.Int64
	coalesced            atomic.Int64

	// adm is the admission gate (nil with MaxInflight ≤ 0); lastSweep is
	// the unix-nano time of the last spill TTL sweep, CAS-guarded so at
	// most one goroutine pays for a sweep per interval.
	adm       *admission
	lastSweep atomic.Int64

	// flights holds in-flight coalescable queries; see coalesce.
	flights sync.Map // flightKey -> *flightCall

	deltasApplied atomic.Int64
	pairsDropped  atomic.Int64
	poolsRepaired atomic.Int64
	repairChunks  atomic.Int64
	repairDraws   atomic.Int64
	repairSaved   atomic.Int64

	// lruMu guards the recency list and the byte ledger. It is only ever
	// held for O(1) bookkeeping plus eviction passes; pool sampling,
	// solving and spill I/O run outside it. Lock order: lruMu may acquire
	// a shard lock (eviction); shard locks may acquire session-internal
	// locks (spill restore); neither ever acquires lruMu.
	lruMu sync.Mutex
	lru   *list.List // front = most recently used; values are *entry
	bytes int64

	// obs is the server's observability binding; nil when Config.Obs is
	// nil, and every instrumentation site is a nil-check no-op then.
	obs *serverObs
}

// New returns a server for the graph under the given weight scheme.
func New(g *graph.Graph, scheme weights.Scheme, cfg Config) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	sv := &Server{cfg: cfg, shards: make([]shard, cfg.Shards), lru: list.New()}
	sv.adm = newAdmission(cfg.MaxInflight, cfg.MaxQueue)
	gfp := engine.GraphFingerprint(g, scheme)
	sv.gen.Store(&generation{g: g, scheme: scheme, graphFP: gfp})
	sv.lineage = engine.NewLineage(gfp)
	for i := range sv.shards {
		sv.shards[i].m = make(map[pairKey]*entry)
	}
	if cfg.Obs != nil && cfg.Obs.Registry != nil {
		sv.obs = newServerObs(sv, cfg.Obs)
	}
	return sv
}

// Graph returns the served graph at the current epoch.
func (sv *Server) Graph() *graph.Graph { return sv.gen.Load().g }

// Epochs returns the number of graph epochs the server has served: 1 at
// construction, +1 per effective ApplyDelta.
func (sv *Server) Epochs() int { return sv.lineage.Epochs() }

func packPair(k pairKey) uint64 {
	return uint64(uint32(k.s))<<32 | uint64(uint32(k.t))
}

func (sv *Server) shardFor(k pairKey) *shard {
	// Derive is a full-avalanche mix, so the low bits index uniformly.
	h := uint64(rng.Derive(0, packPair(k)))
	return &sv.shards[h%uint64(len(sv.shards))]
}

// pairSeed derives the pair's root seed. Eviction and re-admission
// re-derive the same value, which is what makes a cache miss a latency
// event rather than a correctness event.
func (sv *Server) pairSeed(k pairKey) int64 {
	return rng.DeriveStream(sv.cfg.Seed, nsPair, packPair(k))
}

// acquire returns the pair's cached entry, creating it on a miss, and
// records the hit/miss under kind. The caller must pair it with release.
// A trace on ctx gets an acquire span covering lookup, creation and any
// one-time spill restore the acquisition triggered.
func (sv *Server) acquire(ctx context.Context, kind Kind, s, t graph.Node) (*entry, error) {
	sp := obs.TraceFrom(ctx).StartSpan(obs.StageAcquire)
	defer sp.End()
	k := pairKey{s, t}
	sh := sv.shardFor(k)
	sh.mu.Lock()
	e, ok := sh.m[k]
	if !ok {
		// Reading the generation inside the critical section is what
		// pins the entry to an epoch ApplyDelta cannot have finished
		// walking past: the walk stores the new generation before taking
		// any shard lock, so an entry built here either predates the walk
		// on this shard (and gets migrated) or already sees the new epoch.
		gen := sv.gen.Load()
		in, err := ltm.NewInstance(gen.g, gen.scheme, s, t)
		if err != nil {
			sh.mu.Unlock()
			return nil, err
		}
		seed := sv.pairSeed(k)
		cs := core.NewSession(in, seed, sv.cfg.Workers)
		cs.Engine().Bind(sv.lineage, gen.graphFP)
		e = &entry{key: k, sess: cs, eval: cs.Engine().NewEvalSession(seed, sv.cfg.Workers), gen: gen}
		sh.m[k] = e
		sv.created.Add(1)
	}
	sh.mu.Unlock()
	sv.ensureRestored(e)
	if ok {
		sv.kinds[kind].hits.Add(1)
	} else {
		sv.kinds[kind].misses.Add(1)
	}
	sv.lruMu.Lock()
	if e.elem != nil {
		sv.lru.MoveToFront(e.elem)
	} else if !e.evicted {
		e.elem = sv.lru.PushFront(e)
	}
	sv.lruMu.Unlock()
	return e, nil
}

// release re-measures the entry's resident bytes, settles the ledger and
// evicts cold pairs if the budget is exceeded. Called after every query,
// when the pools have grown to their final size. The measurement happens
// under lruMu: measured outside, a stale (smaller) reading from one of
// two concurrent queries on the same pair could settle last and leave
// the ledger under-charged. MemBytes only takes session-internal locks,
// which are never held while acquiring lruMu, so the nesting is safe.
func (sv *Server) release(e *entry) {
	sv.lruMu.Lock()
	if e.evicted {
		// Evicted while this query was in flight: its bytes were already
		// written off; the session dies with the last in-flight holder.
		sv.lruMu.Unlock()
		return
	}
	mem := e.sess.MemBytes() + e.eval.MemBytes()
	sv.bytes += mem - e.bytes
	e.bytes = mem
	victims := sv.evictLocked()
	sv.lruMu.Unlock()
	// Spill the victims' pools outside lruMu: snapshotting takes only
	// session-internal locks, and disk writes must not serialize the
	// whole server. An in-flight holder may still grow a victim while it
	// is written; Snapshot sees a consistent (possibly larger) pool,
	// which restores to the same answers.
	for _, v := range victims {
		sv.writeSpill(v)
	}
}

// evictLocked evicts least-recently-used entries until the byte ledger
// fits the budget, returning the victims so the caller can spill them
// after dropping lruMu. Caller holds lruMu. An eviction is counted only
// when the pair actually leaves the cache, keeping SessionsLive ==
// SessionsCreated − SessionsEvicted at quiescence.
func (sv *Server) evictLocked() []*entry {
	if sv.cfg.MaxPoolBytes <= 0 {
		return nil
	}
	var victims []*entry
	for sv.bytes > sv.cfg.MaxPoolBytes && sv.lru.Len() > 0 {
		el := sv.lru.Back()
		victim := el.Value.(*entry)
		sv.lru.Remove(el)
		victim.elem = nil
		victim.evicted = true
		sv.bytes -= victim.bytes
		victim.bytes = 0
		sh := sv.shardFor(victim.key)
		sh.mu.Lock()
		if sh.m[victim.key] == victim {
			delete(sh.m, victim.key)
			sv.evicted.Add(1)
		}
		sh.mu.Unlock()
		if sv.cfg.SpillDir != "" {
			victims = append(victims, victim)
		}
	}
	return victims
}

// ensureRestored runs the entry's one-time spill restore. Every reader
// of e.sess/e.eval must pass through it (acquire does; writeSpill does
// for SpillAll's sake): a concurrent Do blocks until the first finishes,
// so nobody can observe the sessions while a partial-restore reset is
// replacing them. A no-op once done, or without a spill directory.
func (sv *Server) ensureRestored(e *entry) {
	if sv.cfg.SpillDir != "" {
		e.restoreOnce.Do(func() { sv.restoreSpill(e) })
	}
}

// spillPattern names a pair's spill file within SpillDir.
const spillPattern = "pair-%d-%d.afsnap"

func (sv *Server) spillPath(k pairKey) string {
	return filepath.Join(sv.cfg.SpillDir, fmt.Sprintf(spillPattern, k.s, k.t))
}

// writeSpill snapshots the entry's solve and evaluation pools into the
// pair's spill file via snapshot.WriteFileFunc (write-temp + fsync +
// rename, so a reader — or a crash — never observes a torn file).
// Spilling is best-effort on the eviction path — on error the previous
// file is left untouched, the eviction degrades to a plain discard, and
// the failure is ledgered in SpillWriteErrors — but the error is
// returned so SpillAll can surface it.
func (sv *Server) writeSpill(e *entry) error {
	sv.ensureRestored(e)
	// A pair restored from disk and never grown since would rewrite a
	// byte-identical file (pools and the p_max ledger are pure functions
	// of (seed, draws)): skip the redundant write — warming a spill dir
	// larger than the byte budget would otherwise rewrite every
	// over-budget file it just read.
	if e.loaded && e.sess.PoolSize()+e.eval.Size()+e.sess.PmaxEstimator().Draws() == e.loadedDraws {
		return nil
	}
	n, err := snapshot.WriteFileFunc(sv.spillPath(e.key), func(w io.Writer) error {
		if err := e.sess.Snapshot(w); err != nil {
			return err
		}
		return e.eval.Snapshot(w)
	})
	if err != nil {
		sv.spillWriteErrors.Add(1)
		return err
	}
	sv.spills.Add(1)
	sv.spillBytes.Add(n)
	// A write is the natural periodic hook for TTL'd GC: the spill dir
	// only grows when something is written to it.
	sv.maybeSweepExpiredSpills()
	return nil
}

// noteLoadError ledgers one rejected or unreadable spill file, split by
// cause so operators can tell disk rot (checksum) from rollout skew
// (version), misconfiguration (stream identity: wrong seed or
// namespace), and topology drift past the lineage's memory (instance).
func (sv *Server) noteLoadError(err error) {
	sv.spillLoadErrors.Add(1)
	switch {
	case errors.Is(err, snapshot.ErrChecksum):
		sv.spillLoadErrChecksum.Add(1)
	case errors.Is(err, snapshot.ErrVersion):
		sv.spillLoadErrVersion.Add(1)
	case errors.Is(err, engine.ErrStreamMismatch):
		sv.spillLoadErrStream.Add(1)
	case errors.Is(err, engine.ErrInstanceMismatch):
		sv.spillLoadErrInstance.Add(1)
	default:
		sv.spillLoadErrOther.Add(1)
	}
}

// restoreSpill loads the pair's spill file, if any, into its freshly
// created sessions. Every failure mode — missing file aside — counts as
// a load error (split by cause, see noteLoadError) and leaves the pair
// wholly cold (a half-restored pair is reset, so the ledger matches
// reality exactly); the pair then resamples lazily with byte-identical
// pools. Restore validates the checksum, format version and stream
// identity (seed and namespace) before adopting any bytes; a blob
// written at an ancestor epoch is adopted and repaired through the
// engine's bound lineage, and the repair bill is ledgered here. Runs
// inside the entry's restoreOnce.
func (sv *Server) restoreSpill(e *entry) {
	f, err := os.Open(sv.spillPath(e.key))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			sv.noteLoadError(err)
		}
		return
	}
	defer f.Close()
	// Restore runs once per entry and has no request context (SpillAll
	// and Warm reach it too), so the load is timed straight into the
	// stage histogram rather than as a span.
	if so := sv.obs; so != nil {
		defer func(start time.Time) {
			so.stage[obs.StageSpillLoad].Observe(time.Since(start).Nanoseconds())
		}(time.Now())
	}
	br := bufio.NewReaderSize(f, 1<<20)
	if err := e.sess.Restore(br); err != nil {
		sv.noteLoadError(err)
		return
	}
	if err := e.eval.Restore(br); err != nil {
		// The solve pool loaded but the eval pool did not: drop the
		// half-restored state (recreating the sessions is cheap and
		// answer-invariant) so SpillLoads/SpillDrawsSaved count exactly
		// the pairs that really came from disk.
		seed := sv.pairSeed(e.key)
		cs := core.NewSession(e.sess.Instance(), seed, sv.cfg.Workers)
		cs.Engine().Bind(sv.lineage, e.gen.graphFP)
		e.sess, e.eval = cs, cs.Engine().NewEvalSession(seed, sv.cfg.Workers)
		sv.noteLoadError(err)
		return
	}
	e.loaded = true
	e.loadedDraws = e.sess.PoolSize() + e.eval.Size() + e.sess.PmaxEstimator().Draws()
	sv.spillLoads.Add(1)
	if st, err := f.Stat(); err == nil {
		sv.spillLoadBytes.Add(st.Size())
	}
	sv.spillDrawsSaved.Add(e.loadedDraws)
	// An ancestor-epoch blob was adopted and repaired on the way in; the
	// session's engine is fresh (created with the entry), so its repair
	// ledger is exactly this load's bill.
	eng := e.sess.Engine()
	if rd, rs := eng.RepairDrawsResampled(), eng.RepairDrawsSaved(); rd > 0 || rs > 0 {
		sv.poolsRepaired.Add(1)
		sv.repairDraws.Add(rd)
		sv.repairSaved.Add(rs)
		sv.repairChunks.Add(eng.RepairChunksResampled())
		// Draws a repair re-made did not come from disk.
		sv.spillDrawsSaved.Add(-rd)
	}
}

// SpillAll snapshots every live pair to SpillDir without evicting — the
// graceful-shutdown flush: a successor process with the same Seed (see
// Warm) then answers its first queries from disk-warm pools. A no-op
// without a SpillDir. Returns the first write error; pairs after an
// error are still attempted.
func (sv *Server) SpillAll() error {
	if sv.cfg.SpillDir == "" {
		return nil
	}
	if _, err := os.Stat(sv.cfg.SpillDir); err != nil {
		return err
	}
	var firstErr error
	for i := range sv.shards {
		sh := &sv.shards[i]
		sh.mu.Lock()
		entries := make([]*entry, 0, len(sh.m))
		for _, e := range sh.m {
			entries = append(entries, e)
		}
		sh.mu.Unlock()
		for _, e := range entries {
			if err := sv.writeSpill(e); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("spilling pair (%d,%d): %w", e.key.s, e.key.t, err)
			}
		}
	}
	return firstErr
}

// Warm admits every pair with a spill file in SpillDir and returns the
// number of pairs whose pools were actually restored from disk (files
// that fail validation admit a cold pair, ledgered in SpillLoadErrors,
// and are not counted). Admission runs through the normal cache path,
// so the byte budget is enforced (warming more state than fits simply
// re-spills the coldest pairs) and Stats ledgers the loads. A no-op
// without a SpillDir.
func (sv *Server) Warm() (int, error) {
	if sv.cfg.SpillDir == "" {
		return 0, nil
	}
	// Sweep temp debris a crash mid-spill may have orphaned; a live
	// concurrent write losing its temp file just degrades to a plain
	// discard (ledgered), so the sweep is safe.
	if orphans, err := filepath.Glob(filepath.Join(sv.cfg.SpillDir, "*.afsnap.tmp*")); err == nil {
		for _, o := range orphans {
			os.Remove(o)
		}
	}
	// Expire stale blobs before admitting anything: a snapshot past its
	// TTL must not warm a pair only to be GC'd moments later.
	sv.deltaMu.Lock()
	sv.sweepExpiredSpillsLocked()
	sv.deltaMu.Unlock()
	des, err := os.ReadDir(sv.cfg.SpillDir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, de := range des {
		var s, t graph.Node
		// Sscanf tolerates trailing input, so require an exact re-render
		// match too — orphaned *.tmp* debris must not admit a pair twice.
		if c, err := fmt.Sscanf(de.Name(), spillPattern, &s, &t); err != nil || c != 2 ||
			de.Name() != fmt.Sprintf(spillPattern, s, t) {
			continue
		}
		h, err := sv.Pair(s, t)
		if err != nil {
			continue
		}
		if h.e.loaded {
			n++
		}
		h.Done()
	}
	return n, nil
}

// Solve runs RAF for (s,t) against the pair's cached session. cfg.Seed
// and cfg.Workers are ignored in favor of the server's per-pair streams.
// Concurrent identical calls coalesce into one execution (see coalesce).
// Subject to admission control (Config.MaxInflight), like every public
// query method.
func (sv *Server) Solve(ctx context.Context, s, t graph.Node, cfg core.Config) (*core.Result, error) {
	if err := sv.admit(ctx); err != nil {
		return nil, err
	}
	defer sv.admitDone()
	v, err := sv.coalesce(KindSolve, s, t, pairParams(fmt.Sprintf("%+v", cfg)), func() (any, error) {
		return sv.solve(ctx, s, t, cfg)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Result), nil
}

func (sv *Server) solve(ctx context.Context, s, t graph.Node, cfg core.Config) (res *core.Result, err error) {
	ctx, obsEnd := sv.obsBegin(ctx, KindSolve)
	defer func() { obsEnd(err) }()
	e, err := sv.acquire(ctx, KindSolve, s, t)
	if err != nil {
		return nil, err
	}
	defer sv.release(e)
	res, err = e.sess.RAF(ctx, cfg)
	if err != nil {
		return nil, err
	}
	sv.pmaxDrawsReused.Add(res.PmaxReused)
	return res, nil
}

// SolveMax runs the budgeted maximum variant for (s,t) against the
// pair's cached solve pool (realizations ≤ 0 selects the default size)
// and re-measures the chosen set on the pair's decorrelated evaluation
// pool. It returns the solver result (whose CoveredFraction is the
// biased in-pool fraction) together with the decorrelated estimate.
// Concurrent identical calls coalesce into one execution (see coalesce).
func (sv *Server) SolveMax(ctx context.Context, s, t graph.Node, budget int, realizations int64) (*maxaf.Result, float64, error) {
	if err := sv.admit(ctx); err != nil {
		return nil, 0, err
	}
	defer sv.admitDone()
	type out struct {
		res *maxaf.Result
		f   float64
	}
	v, err := sv.coalesce(KindSolveMax, s, t, pairParams("max", budget, realizations), func() (any, error) {
		res, f, err := sv.solveMax(ctx, s, t, budget, realizations)
		if err != nil {
			return nil, err
		}
		return out{res, f}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	o := v.(out)
	return o.res, o.f, nil
}

func (sv *Server) solveMax(ctx context.Context, s, t graph.Node, budget int, realizations int64) (_ *maxaf.Result, _ float64, err error) {
	ctx, obsEnd := sv.obsBegin(ctx, KindSolveMax)
	defer func() { obsEnd(err) }()
	e, err := sv.acquire(ctx, KindSolveMax, s, t)
	if err != nil {
		return nil, 0, err
	}
	defer sv.release(e)
	l := realizations
	if l <= 0 {
		l = maxaf.DefaultRealizations
	}
	pool, err := e.sess.Pool(ctx, l)
	if err != nil {
		return nil, 0, err
	}
	res, err := maxaf.SolveFromPool(ctx, e.sess.Instance(), budget, pool)
	if err != nil {
		return nil, 0, err
	}
	f, err := e.eval.EstimateF(ctx, res.Invited, l)
	if err != nil {
		return nil, 0, err
	}
	return res, f, nil
}

// SolveMaxBudgets answers a whole budget sweep for (s,t) in one shot: the
// budgeted greedy runs against the pair's cached pool with one reused
// solver (the pool's set-cover family is folded once), and both the
// in-pool fractions and the decorrelated estimates come from batched
// coverage queries — one postings traversal per pool for the entire
// sweep. Results are identical to calling SolveMax per budget.
// Concurrent identical calls coalesce into one execution (see coalesce).
func (sv *Server) SolveMaxBudgets(ctx context.Context, s, t graph.Node, budgets []int, realizations int64) ([]*maxaf.Result, []float64, error) {
	if err := sv.admit(ctx); err != nil {
		return nil, nil, err
	}
	defer sv.admitDone()
	type out struct {
		res []*maxaf.Result
		fs  []float64
	}
	v, err := sv.coalesce(KindSolveMax, s, t, pairParams("sweep", budgets, realizations), func() (any, error) {
		res, fs, err := sv.solveMaxBudgets(ctx, s, t, budgets, realizations)
		if err != nil {
			return nil, err
		}
		return out{res, fs}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	o := v.(out)
	return o.res, o.fs, nil
}

func (sv *Server) solveMaxBudgets(ctx context.Context, s, t graph.Node, budgets []int, realizations int64) (_ []*maxaf.Result, _ []float64, err error) {
	ctx, obsEnd := sv.obsBegin(ctx, KindSolveMax)
	defer func() { obsEnd(err) }()
	e, err := sv.acquire(ctx, KindSolveMax, s, t)
	if err != nil {
		return nil, nil, err
	}
	defer sv.release(e)
	l := realizations
	if l <= 0 {
		l = maxaf.DefaultRealizations
	}
	pool, err := e.sess.Pool(ctx, l)
	if err != nil {
		return nil, nil, err
	}
	results, err := maxaf.SolveBudgetsFromPool(ctx, e.sess.Instance(), budgets, pool)
	if err != nil {
		return nil, nil, err
	}
	sets := make([]*graph.NodeSet, len(results))
	for i, r := range results {
		sets[i] = r.Invited
	}
	fs, err := e.eval.EstimateFMany(ctx, sets, l)
	if err != nil {
		return nil, nil, err
	}
	return results, fs, nil
}

// EstimateF estimates f(invited) for (s,t) as a coverage query against
// the pair's cached evaluation pool, grown to at least trials draws.
func (sv *Server) EstimateF(ctx context.Context, s, t graph.Node, invited *graph.NodeSet, trials int64) (_ float64, err error) {
	if err := sv.admit(ctx); err != nil {
		return 0, err
	}
	defer sv.admitDone()
	ctx, obsEnd := sv.obsBegin(ctx, KindEstimateF)
	defer func() { obsEnd(err) }()
	e, err := sv.acquire(ctx, KindEstimateF, s, t)
	if err != nil {
		return 0, err
	}
	defer sv.release(e)
	return e.eval.EstimateF(ctx, invited, trials)
}

// Pmax estimates p_max for (s,t) from the pair's evaluation pool — the
// cheap fixed-budget estimate (the pool's type-1 fraction over exactly
// trials draws). For an estimate with the paper's (ε₀, 1/N) stopping-rule
// guarantee, use PmaxEstimate. Concurrent identical calls coalesce into
// one execution (see coalesce).
func (sv *Server) Pmax(ctx context.Context, s, t graph.Node, trials int64) (float64, error) {
	if err := sv.admit(ctx); err != nil {
		return 0, err
	}
	defer sv.admitDone()
	v, err := sv.coalesce(KindPmax, s, t, pairParams(trials), func() (any, error) {
		return sv.pmaxQuery(ctx, s, t, trials)
	})
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

func (sv *Server) pmaxQuery(ctx context.Context, s, t graph.Node, trials int64) (_ float64, err error) {
	ctx, obsEnd := sv.obsBegin(ctx, KindPmax)
	defer func() { obsEnd(err) }()
	e, err := sv.acquire(ctx, KindPmax, s, t)
	if err != nil {
		return 0, err
	}
	defer sv.release(e)
	return e.eval.FractionType1(ctx, trials)
}

// PmaxEstimate runs the Algorithm 2 stopping rule for (s,t) at relative
// error eps0 and failure probability 1/n under a draw budget (0 =
// unbounded), through the pair's retained estimator ledger: repeated or
// refined requests for one pair reuse every draw already paid for (the
// reuse is ledgered in Stats().PmaxDrawsReused), and the estimator state
// rides the spill tier across eviction and restarts. The result is a
// pure function of (Seed, s, t, eps0, n, maxDraws). Concurrent identical
// calls coalesce into one execution (see coalesce).
func (sv *Server) PmaxEstimate(ctx context.Context, s, t graph.Node, eps0, n float64, maxDraws int64) (engine.PmaxResult, error) {
	if err := sv.admit(ctx); err != nil {
		return engine.PmaxResult{}, err
	}
	defer sv.admitDone()
	v, err := sv.coalesce(KindPmaxEst, s, t, pairParams(eps0, n, maxDraws), func() (any, error) {
		return sv.pmaxEstimate(ctx, s, t, eps0, n, maxDraws)
	})
	if err != nil {
		return engine.PmaxResult{}, err
	}
	return v.(engine.PmaxResult), nil
}

func (sv *Server) pmaxEstimate(ctx context.Context, s, t graph.Node, eps0, n float64, maxDraws int64) (_ engine.PmaxResult, err error) {
	ctx, obsEnd := sv.obsBegin(ctx, KindPmaxEst)
	defer func() { obsEnd(err) }()
	e, err := sv.acquire(ctx, KindPmaxEst, s, t)
	if err != nil {
		return engine.PmaxResult{}, err
	}
	defer sv.release(e)
	res, err := e.sess.EstimatePmax(ctx, eps0, n, maxDraws)
	sv.pmaxDrawsReused.Add(res.Reused)
	return res, err
}

// PairHandle exposes a pair's cached sessions for harness use (the eval
// experiments drive core.Session directly). Call Done after a batch of
// operations so the server can settle the byte ledger and evict.
type PairHandle struct {
	sv *Server
	e  *entry
}

// Pair returns a handle on the (s,t) sessions, creating them on demand.
func (sv *Server) Pair(s, t graph.Node) (*PairHandle, error) {
	e, err := sv.acquire(context.Background(), KindAcquire, s, t)
	if err != nil {
		return nil, err
	}
	return &PairHandle{sv: sv, e: e}, nil
}

// Core returns the pair's solve session.
func (h *PairHandle) Core() *core.Session { return h.e.sess }

// Eval returns the pair's evaluation-pool session.
func (h *PairHandle) Eval() *engine.Session { return h.e.eval }

// Instance returns the pair's problem instance.
func (h *PairHandle) Instance() *ltm.Instance { return h.e.sess.Instance() }

// Done settles the pair's byte accounting and runs eviction. The handle
// stays usable afterwards (an evicted pair keeps working for in-flight
// holders; the server just stops charging for it).
func (h *PairHandle) Done() { h.sv.release(h.e) }

// Stats returns a snapshot of the server's ledger.
func (sv *Server) Stats() Stats {
	st := Stats{
		SessionsCreated:      sv.created.Load(),
		SessionsEvicted:      sv.evicted.Load(),
		Spills:               sv.spills.Load(),
		SpillBytes:           sv.spillBytes.Load(),
		SpillLoads:           sv.spillLoads.Load(),
		SpillLoadBytes:       sv.spillLoadBytes.Load(),
		SpillDrawsSaved:      sv.spillDrawsSaved.Load(),
		SpillLoadErrors:      sv.spillLoadErrors.Load(),
		SpillLoadErrChecksum: sv.spillLoadErrChecksum.Load(),
		SpillLoadErrVersion:  sv.spillLoadErrVersion.Load(),
		SpillLoadErrStream:   sv.spillLoadErrStream.Load(),
		SpillLoadErrInstance: sv.spillLoadErrInstance.Load(),
		SpillLoadErrOther:    sv.spillLoadErrOther.Load(),
		SpillWriteErrors:     sv.spillWriteErrors.Load(),
		SpillFilesExpired:    sv.spillExpired.Load(),
		PmaxDrawsReused:      sv.pmaxDrawsReused.Load(),
		Coalesced:            sv.coalesced.Load(),

		DeltasApplied:         sv.deltasApplied.Load(),
		PairsDropped:          sv.pairsDropped.Load(),
		PoolsRepaired:         sv.poolsRepaired.Load(),
		RepairChunksResampled: sv.repairChunks.Load(),
		RepairDrawsResampled:  sv.repairDraws.Load(),
		RepairDrawsSaved:      sv.repairSaved.Load(),
	}
	if a := sv.adm; a != nil {
		st.Inflight = int(a.inflight.Load())
		st.Queued = int(a.queued.Load())
		st.Admitted = a.admitted.Load()
		st.Rejected = a.rejected.Load()
	}
	for k := range st.ByKind {
		st.ByKind[k] = KindCounts{Hits: sv.kinds[k].hits.Load(), Misses: sv.kinds[k].misses.Load()}
	}
	for i := range sv.shards {
		sh := &sv.shards[i]
		sh.mu.Lock()
		st.SessionsLive += len(sh.m)
		sh.mu.Unlock()
	}
	sv.lruMu.Lock()
	st.BytesHeld = sv.bytes
	sv.lruMu.Unlock()
	return st
}
