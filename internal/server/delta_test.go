package server

import (
	"context"
	"math/rand"
	"os"
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/weights"
)

// testDelta builds a delta on g that dissolves none of the given pairs:
// it adds nAdd new edges between nodes that form no tested pair and
// removes nRemove existing edges whose endpoints keep degree ≥ 3.
func testDelta(t *testing.T, g *graph.Graph, pairs []pairKey, nAdd, nRemove int) *graph.Delta {
	t.Helper()
	tested := make(map[pairKey]bool, len(pairs))
	for _, pk := range pairs {
		tested[pk] = true
		tested[pairKey{pk.t, pk.s}] = true
	}
	r := rand.New(rand.NewSource(99))
	n := g.NumNodes()
	d := &graph.Delta{}
	for tries := 0; len(d.Add) < nAdd && tries < 10000; tries++ {
		u, v := graph.Node(r.Intn(n)), graph.Node(r.Intn(n))
		if u == v || g.HasEdge(u, v) || tested[pairKey{u, v}] {
			continue
		}
		d.Add = append(d.Add, graph.Edge{U: u, V: v})
	}
	for _, e := range g.Edges() {
		if len(d.Remove) >= nRemove {
			break
		}
		if g.Degree(e.U) >= 3 && g.Degree(e.V) >= 3 {
			d.Remove = append(d.Remove, e)
		}
	}
	if len(d.Add) < nAdd || len(d.Remove) < nRemove {
		t.Fatalf("could not build test delta (%d adds, %d removes)", len(d.Add), len(d.Remove))
	}
	return d
}

// TestApplyDeltaMatchesColdServer is the serving layer's repair-identity
// claim: after ApplyDelta, a warmed server answers every query exactly
// like a server built cold on the post-delta graph — migration by
// repair changes no answer, it only saves draws.
func TestApplyDeltaMatchesColdServer(t *testing.T) {
	ctx := context.Background()
	g := testGraph(40, 50)
	pairs := validPairs(g, 8)
	if len(pairs) < 6 {
		t.Fatalf("only %d valid pairs", len(pairs))
	}
	d := testDelta(t, g, pairs, 2, 2)
	g2, _, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}

	warm := New(g, weights.NewDegree(g), Config{Seed: 7, Workers: 2})
	queryAll(t, warm, pairs, 1) // populate pair pools at epoch 1
	res, err := warm.ApplyDelta(ctx, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsMigrated == 0 || len(res.Dirty) == 0 {
		t.Fatalf("delta migrated nothing: %+v", res)
	}
	if warm.Epochs() != 2 {
		t.Fatalf("Epochs = %d, want 2", warm.Epochs())
	}

	cold := New(g2, weights.NewDegree(g2), Config{Seed: 7, Workers: 2})
	want := queryAll(t, cold, pairs, 2)
	got := queryAll(t, warm, pairs, 2)
	if !reflect.DeepEqual(got, want) {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("answer %d diverged after delta:\n got %s\nwant %s", i, got[i], want[i])
			}
		}
	}

	st := warm.Stats()
	if st.DeltasApplied != 1 || st.PoolsRepaired == 0 {
		t.Fatalf("repair not ledgered: %+v", st)
	}
	if st.RepairDrawsResampled+st.RepairDrawsSaved == 0 {
		t.Fatalf("repair examined no draws: %+v", st)
	}
}

// TestApplyDeltaNoOp: a delta that changes nothing (re-adding present
// edges, removing absent ones) advances no epoch and touches no pair.
func TestApplyDeltaNoOp(t *testing.T) {
	g := testGraph(30, 30)
	sv := New(g, weights.NewDegree(g), Config{Seed: 3, Workers: 1})
	absent := validPairs(g, 1) // non-adjacent pair: removing its edge is a no-op
	if len(absent) == 0 {
		t.Fatal("no absent edge")
	}
	res, err := sv.ApplyDelta(context.Background(), &graph.Delta{
		Add:    []graph.Edge{g.Edges()[0]},
		Remove: []graph.Edge{{U: absent[0].s, V: absent[0].t}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dirty) != 0 || res.PairsMigrated != 0 {
		t.Fatalf("no-op delta did something: %+v", res)
	}
	if sv.Epochs() != 1 || sv.Stats().DeltasApplied != 0 {
		t.Fatalf("no-op delta advanced the epoch")
	}
}

// TestApplyDeltaDissolvesPair: a delta that makes a served pair's (s,t)
// adjacent drops the pair — its problem is solved — and later queries
// for it fail cleanly at instance validation.
func TestApplyDeltaDissolvesPair(t *testing.T) {
	ctx := context.Background()
	g := testGraph(40, 50)
	pairs := validPairs(g, 4)
	if len(pairs) < 2 {
		t.Fatal("not enough pairs")
	}
	dir := t.TempDir()
	sv := New(g, weights.NewDegree(g), Config{Seed: 7, Workers: 1, SpillDir: dir})
	victim := pairs[0]
	if _, err := sv.Pmax(ctx, victim.s, victim.t, 2000); err != nil {
		t.Fatal(err)
	}
	if err := sv.SpillAll(); err != nil {
		t.Fatal(err)
	}
	spill := sv.spillPath(victim)
	if _, err := os.Stat(spill); err != nil {
		t.Fatalf("victim pair has no spill file: %v", err)
	}

	res, err := sv.ApplyDelta(ctx, &graph.Delta{Add: []graph.Edge{{U: victim.s, V: victim.t}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsDropped == 0 {
		t.Fatalf("dissolved pair not dropped: %+v", res)
	}
	if _, err := os.Stat(spill); !os.IsNotExist(err) {
		t.Fatalf("dissolved pair's spill file survived: %v", err)
	}
	if _, err := sv.Pair(victim.s, victim.t); err == nil {
		t.Fatal("dissolved pair still acquirable")
	}
	st := sv.Stats()
	if st.PairsDropped == 0 {
		t.Fatalf("drop not ledgered: %+v", st)
	}
	if st.SessionsLive != int(st.SessionsCreated-st.SessionsEvicted) {
		t.Fatalf("session invariant broken after drop: %+v", st)
	}
}

// TestApplyDeltaAdoptsSpillFiles: spill files written at epoch N are
// adopted and repaired when loaded at epoch N+1 — a restarted (or
// evict-heavy) server carries its disk tier across graph mutations
// instead of discarding it.
func TestApplyDeltaAdoptsSpillFiles(t *testing.T) {
	ctx := context.Background()
	g := testGraph(40, 60)
	pairs := validPairs(g, 6)
	if len(pairs) < 4 {
		t.Fatal("not enough pairs")
	}
	d := testDelta(t, g, pairs, 1, 1)
	g2, _, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	first := New(g, weights.NewDegree(g), Config{Seed: 7, Workers: 2, SpillDir: dir})
	queryAll(t, first, pairs, 1)
	if err := first.SpillAll(); err != nil {
		t.Fatal(err)
	}

	// A successor process: same seed and spill dir, original graph, then
	// the delta lands before any pair is touched — every spill file on
	// disk is now one epoch stale.
	sv := New(g, weights.NewDegree(g), Config{Seed: 7, Workers: 2, SpillDir: dir})
	if _, err := sv.ApplyDelta(ctx, d, nil); err != nil {
		t.Fatal(err)
	}
	got := queryAll(t, sv, pairs, 2)

	cold := New(g2, weights.NewDegree(g2), Config{Seed: 7, Workers: 2})
	want := queryAll(t, cold, pairs, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("answers from adopted+repaired spill files differ from cold")
	}

	st := sv.Stats()
	if st.SpillLoads == 0 {
		t.Fatalf("stale spill files were not loaded: %+v", st)
	}
	if st.SpillLoadErrors != 0 {
		t.Fatalf("stale spill files were rejected instead of adopted: %+v", st)
	}
	if st.PoolsRepaired == 0 || st.RepairDrawsResampled+st.RepairDrawsSaved == 0 {
		t.Fatalf("spill adoption repaired nothing: %+v", st)
	}
}

// TestSpillLoadErrorKinds: each rejection cause lands in its own
// counter, and the error messages name the mismatch kind via sentinels.
func TestSpillLoadErrorKinds(t *testing.T) {
	ctx := context.Background()
	g := testGraph(40, 60)
	pairs := validPairs(g, 2)
	if len(pairs) < 1 {
		t.Fatal("no pairs")
	}
	pk := pairs[0]

	// Seed a valid spill file.
	write := func(dir string) string {
		sv := New(g, weights.NewDegree(g), Config{Seed: 7, Workers: 1, SpillDir: dir})
		if _, err := sv.Pmax(ctx, pk.s, pk.t, 3000); err != nil {
			t.Fatal(err)
		}
		if err := sv.SpillAll(); err != nil {
			t.Fatal(err)
		}
		return sv.spillPath(pk)
	}

	load := func(dir string, sv *Server) Stats {
		if _, err := sv.Pmax(ctx, pk.s, pk.t, 3000); err != nil {
			t.Fatal(err)
		}
		return sv.Stats()
	}

	t.Run("checksum", func(t *testing.T) {
		dir := t.TempDir()
		path := write(dir)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st := load(dir, New(g, weights.NewDegree(g), Config{Seed: 7, Workers: 1, SpillDir: dir}))
		if st.SpillLoadErrChecksum != 1 || st.SpillLoadErrors != 1 {
			t.Fatalf("stats %+v, want one checksum error", st)
		}
	})

	t.Run("version", func(t *testing.T) {
		dir := t.TempDir()
		path := write(dir)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[8]++ // version u32 follows the 8-byte magic; checked before the CRC
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st := load(dir, New(g, weights.NewDegree(g), Config{Seed: 7, Workers: 1, SpillDir: dir}))
		if st.SpillLoadErrVersion != 1 || st.SpillLoadErrors != 1 {
			t.Fatalf("stats %+v, want one version error", st)
		}
	})

	t.Run("stream", func(t *testing.T) {
		dir := t.TempDir()
		write(dir)
		st := load(dir, New(g, weights.NewDegree(g), Config{Seed: 8, Workers: 1, SpillDir: dir}))
		if st.SpillLoadErrStream != 1 || st.SpillLoadErrors != 1 {
			t.Fatalf("stats %+v, want one stream-identity error", st)
		}
	})

	t.Run("instance", func(t *testing.T) {
		dir := t.TempDir()
		write(dir)
		// Same seed, different graph, and — crucially — no lineage
		// connecting the two: the fingerprint matches no ancestor.
		g2 := testGraph(40, 61)
		st := load(dir, New(g2, weights.NewDegree(g2), Config{Seed: 7, Workers: 1, SpillDir: dir}))
		if st.SpillLoadErrInstance != 1 || st.SpillLoadErrors != 1 {
			t.Fatalf("stats %+v, want one instance-mismatch error", st)
		}
	})

	t.Run("other", func(t *testing.T) {
		dir := t.TempDir()
		path := write(dir)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:40], 0o644); err != nil { // truncated mid-header
			t.Fatal(err)
		}
		st := load(dir, New(g, weights.NewDegree(g), Config{Seed: 7, Workers: 1, SpillDir: dir}))
		if st.SpillLoadErrOther != 1 || st.SpillLoadErrors != 1 {
			t.Fatalf("stats %+v, want one other error", st)
		}
	})
}

// TestDeltaChurnRace runs graph mutations against concurrent query and
// spill traffic — the race job's churn test — then checks the settled
// server answers exactly like a cold server on the final graph.
func TestDeltaChurnRace(t *testing.T) {
	ctx := context.Background()
	g := testGraph(40, 50)
	pairs := validPairs(g, 8)
	if len(pairs) < 6 {
		t.Fatal("not enough pairs")
	}

	// Three deltas that never dissolve a tested pair, applied in
	// sequence while queries hammer the pairs.
	deltas := make([]*graph.Delta, 3)
	cur := g
	for i := range deltas {
		d := testDelta(t, cur, pairs, 1, 1)
		deltas[i] = d
		next, _, err := d.Apply(cur)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}

	sv := New(g, weights.NewDegree(g), Config{
		Seed: 7, Workers: 2, Shards: 4,
		MaxPoolBytes: 192 << 10, SpillDir: t.TempDir(),
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pk := pairs[(i+w)%len(pairs)]
				if _, err := sv.Pmax(ctx, pk.s, pk.t, 2000); err != nil {
					t.Errorf("pmax(%d,%d): %v", pk.s, pk.t, err)
					return
				}
				if _, err := sv.PmaxEstimate(ctx, pk.s, pk.t, 0.3, 50, 10000); err != nil {
					t.Errorf("pmaxest(%d,%d): %v", pk.s, pk.t, err)
					return
				}
			}
		}(w)
	}
	for _, d := range deltas {
		if _, err := sv.ApplyDelta(ctx, d, nil); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	got := queryAll(t, sv, pairs, 1)
	cold := New(cur, weights.NewDegree(cur), Config{Seed: 7, Workers: 2})
	want := queryAll(t, cold, pairs, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-churn answers differ from a cold server on the final graph")
	}
	if st := sv.Stats(); st.DeltasApplied != 3 {
		t.Fatalf("DeltasApplied = %d, want 3", st.DeltasApplied)
	}
}
