package server

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/weights"
)

// BenchmarkServerManyPairs drives concurrent mixed traffic over ≥ 32
// pairs through one budgeted server — the serving layer's target
// workload. Run with -race in CI to machine-check the concurrency
// claims.
func BenchmarkServerManyPairs(b *testing.B) {
	g := testGraph(200, 300)
	pairs := validPairs(g, 32)
	if len(pairs) < 32 {
		b.Fatalf("only %d valid pairs", len(pairs))
	}
	// A budget below the working set (~32 pairs × tens of KiB of pools)
	// keeps the LRU evicting while the benchmark runs.
	sv := New(g, weights.NewDegree(g), Config{Seed: 1, MaxPoolBytes: 1 << 20})
	ctx := context.Background()
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			pk := pairs[int(i)%len(pairs)]
			if i%4 == 0 {
				ns := graph.NewNodeSetOf(sv.Graph().NumNodes(), pk.t)
				for _, v := range sv.Graph().Neighbors(pk.t) {
					ns.Add(v)
				}
				if _, err := sv.EstimateF(ctx, pk.s, pk.t, ns, 4096); err != nil {
					b.Fatal(err)
				}
			} else {
				if _, err := sv.Pmax(ctx, pk.s, pk.t, 4096); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.ReportMetric(float64(sv.Stats().SessionsEvicted), "evictions")
}

// BenchmarkAdmissionAdmit measures the gate's uncontended fast path —
// the per-query overhead every admitted request pays.
func BenchmarkAdmissionAdmit(b *testing.B) {
	g := testGraph(40, 60)
	sv := New(g, weights.NewDegree(g), Config{Seed: 1, MaxInflight: 4, MaxQueue: 16})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sv.admit(ctx); err != nil {
			b.Fatal(err)
		}
		sv.admitDone()
	}
}

// BenchmarkAdmissionReject measures the rejection path under full
// saturation — the latency an overloaded client sees before its 429 /
// error reply, which must stay far below the cost of running a query.
func BenchmarkAdmissionReject(b *testing.B) {
	g := testGraph(40, 60)
	sv := New(g, weights.NewDegree(g), Config{Seed: 1, MaxInflight: 1, MaxQueue: 0})
	ctx := context.Background()
	if err := sv.admit(ctx); err != nil { // hold the only slot
		b.Fatal(err)
	}
	defer sv.admitDone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sv.admit(ctx); err != ErrOverloaded {
			b.Fatalf("admit under saturation: %v", err)
		}
	}
}
