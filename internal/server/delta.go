package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/weights"
)

// DeltaResult reports what one ApplyDelta did.
type DeltaResult struct {
	// Dirty is the sorted distinct set of nodes the delta actually
	// changed (edge endpoints added, removed, or re-weighted); empty for
	// a no-op delta, which advances no epoch.
	Dirty []graph.Node
	// NumNodes / NumEdges describe the new epoch's graph.
	NumNodes int
	NumEdges int64
	// PairsMigrated counts live pairs carried across the epoch by
	// repair; PairsDropped the pairs dissolved because the delta made
	// their (s,t) adjacent — including spill-only pairs whose files were
	// swept from SpillDir.
	PairsMigrated int
	PairsDropped  int
	// Repair totals the migration's repair bill across all migrated
	// pools (solve, eval and p_max ledgers).
	Repair engine.RepairStats
}

// ApplyDelta applies a batch graph mutation — edges added, removed, and
// (for Explicit weight schemes) re-weighted — producing the next epoch,
// and migrates every live pair across it: each pair's instance is
// rebound to the new graph (sampling-plan rows rebuilt only for dirty
// nodes), and its cached pools and p_max ledger are *repaired* — chunks
// whose touch sets miss the dirty nodes keep their bytes, damaged
// chunks are resampled under their original streams — leaving every
// pair byte-identical to one built cold at the new epoch (see
// engine.Session.RepairTo). Pairs whose (s,t) the delta makes adjacent
// are dissolved and dropped, as are their spill files; spill files of
// non-live pairs are otherwise left in place and adopted-and-repaired
// through the lineage on their next load.
//
// Queries that begin after ApplyDelta returns are answered at the new
// epoch; queries in flight during the call finish at the epoch they
// started on (the same contract eviction has: correctness per epoch,
// never a torn answer). A delta that changes nothing returns an empty
// Dirty set and advances no epoch. Concurrent ApplyDelta calls are
// serialized.
func (sv *Server) ApplyDelta(ctx context.Context, d *graph.Delta, updates []weights.EdgeWeight) (*DeltaResult, error) {
	sv.deltaMu.Lock()
	defer sv.deltaMu.Unlock()

	cur := sv.gen.Load()
	if d == nil {
		d = &graph.Delta{}
	}
	g2, dirty, err := d.Apply(cur.g)
	if err != nil {
		return nil, err
	}
	// Pure weight updates dirty their endpoints too: the damage test
	// keys on every node whose influencer row changed.
	if len(updates) > 0 {
		ds := graph.NewNodeSet(g2.NumNodes())
		for _, v := range dirty {
			ds.Add(v)
		}
		for _, uw := range updates {
			ds.Add(uw.U)
			ds.Add(uw.V)
		}
		dirty = ds.Members()
	}
	if len(dirty) == 0 {
		return &DeltaResult{NumNodes: cur.g.NumNodes(), NumEdges: cur.g.NumEdges()}, nil
	}
	scheme2, err := weights.Rebuild(cur.scheme, g2, dirty, updates)
	if err != nil {
		return nil, err
	}

	next := &generation{g: g2, scheme: scheme2, graphFP: engine.GraphFingerprint(g2, scheme2)}
	// Store the generation BEFORE walking any shard: an acquire miss
	// reads sv.gen inside its shard critical section, so every entry the
	// walk below does not see was created at (or after) the new epoch.
	sv.gen.Store(next)
	sv.lineage.Advance(next.graphFP, dirty)
	sv.deltasApplied.Add(1)

	res := &DeltaResult{
		Dirty:    dirty,
		NumNodes: g2.NumNodes(),
		NumEdges: g2.NumEdges(),
	}
	for i := range sv.shards {
		sh := &sv.shards[i]
		sh.mu.Lock()
		stale := make([]*entry, 0, len(sh.m))
		for _, e := range sh.m {
			if e.gen != next {
				stale = append(stale, e)
			}
		}
		sh.mu.Unlock()
		for _, e := range stale {
			if err := sv.migratePair(ctx, sh, e, next, dirty, res); err != nil {
				return res, err
			}
		}
	}
	sv.sweepDissolvedSpills(g2, res)
	sv.sweepExpiredSpillsLocked()

	// Migrated pairs were re-measured; settle the budget once for the
	// whole walk.
	sv.lruMu.Lock()
	victims := sv.evictLocked()
	sv.lruMu.Unlock()
	for _, v := range victims {
		sv.writeSpill(v)
	}
	return res, nil
}

// migratePair carries one stale entry across to the new generation and
// swaps it into the shard map — unless a newer entry took its place
// meanwhile, in which case the migrated state is discarded (the newer
// entry is already at the head epoch). Dissolved pairs are dropped.
// Repair errors (context cancellation, mid-walk failures) drop the
// entry instead: its next acquire recreates it cold at the new epoch,
// with identical answers.
func (sv *Server) migratePair(ctx context.Context, sh *shard, e *entry, next *generation, dirty []graph.Node, res *DeltaResult) error {
	// Settle any pending spill restore first so the migration sees the
	// entry's real state and restoreOnce never races the swap.
	sv.ensureRestored(e)
	in2, err := e.sess.Instance().RebindTo(next.g, next.scheme, dirty)
	if err != nil {
		// The delta dissolved the pair: s and t are adjacent (or the
		// pair is otherwise invalid on the new graph) — the friending
		// problem for it is solved, so drop it and its spill file.
		sv.dropEntry(sh, e)
		if sv.cfg.SpillDir != "" {
			os.Remove(sv.spillPath(e.key))
		}
		sv.pairsDropped.Add(1)
		res.PairsDropped++
		return nil
	}
	cs2, st, err := e.sess.RepairTo(ctx, in2, sv.lineage, next.graphFP, dirty)
	if err != nil {
		sv.dropEntry(sh, e)
		return err
	}
	eval2, est, err := e.eval.RepairTo(ctx, cs2.Engine(), dirty)
	if err != nil {
		sv.dropEntry(sh, e)
		return err
	}
	st.Add(est)
	e2 := &entry{key: e.key, sess: cs2, eval: eval2, gen: next}
	e2.restoreOnce.Do(func() {}) // migrated state must not be overwritten from disk

	sh.mu.Lock()
	current := sh.m[e.key] == e
	if current {
		sh.m[e.key] = e2
	}
	sh.mu.Unlock()
	if !current {
		// A concurrent eviction (or a racing future migration) replaced
		// or removed the entry; whatever is in the map now is already at
		// the head epoch, so the migrated state is simply dropped.
		return nil
	}
	sv.lruMu.Lock()
	if !e.evicted {
		e.evicted = true
		sv.bytes -= e.bytes
		e.bytes = 0
		if e.elem != nil {
			sv.lru.Remove(e.elem)
			e.elem = nil
		}
	}
	e2.bytes = e2.sess.MemBytes() + e2.eval.MemBytes()
	sv.bytes += e2.bytes
	e2.elem = sv.lru.PushFront(e2)
	sv.lruMu.Unlock()

	sv.poolsRepaired.Add(1)
	sv.repairChunks.Add(int64(st.Resampled))
	sv.repairDraws.Add(st.DrawsResampled)
	sv.repairSaved.Add(st.DrawsSaved)
	res.PairsMigrated++
	res.Repair.Add(st)
	return nil
}

// dropEntry removes e from its shard map and writes off its bytes; a
// migration counts neither as a creation nor an eviction, so the
// SessionsLive bookkeeping is adjusted through SessionsEvicted exactly
// when the pair really leaves the cache.
func (sv *Server) dropEntry(sh *shard, e *entry) {
	sh.mu.Lock()
	if sh.m[e.key] == e {
		delete(sh.m, e.key)
		sv.evicted.Add(1)
	}
	sh.mu.Unlock()
	sv.lruMu.Lock()
	if !e.evicted {
		e.evicted = true
		sv.bytes -= e.bytes
		e.bytes = 0
		if e.elem != nil {
			sv.lru.Remove(e.elem)
			e.elem = nil
		}
	}
	sv.lruMu.Unlock()
}

// sweepDissolvedSpills deletes spill files of pairs the new graph
// dissolves (s and t adjacent). Live dissolved pairs already removed
// their files in migratePair, so everything swept here is a spill-only
// pair. Files whose names don't parse are left alone.
func (sv *Server) sweepDissolvedSpills(g2 *graph.Graph, res *DeltaResult) {
	if sv.cfg.SpillDir == "" {
		return
	}
	des, err := os.ReadDir(sv.cfg.SpillDir)
	if err != nil {
		return
	}
	for _, de := range des {
		var s, t graph.Node
		if c, err := fmt.Sscanf(de.Name(), spillPattern, &s, &t); err != nil || c != 2 ||
			de.Name() != fmt.Sprintf(spillPattern, s, t) {
			continue
		}
		if int(s) >= g2.NumNodes() || int(t) >= g2.NumNodes() || !g2.HasEdge(s, t) {
			continue
		}
		if os.Remove(filepath.Join(sv.cfg.SpillDir, de.Name())) == nil {
			sv.pairsDropped.Add(1)
			res.PairsDropped++
		}
	}
}
