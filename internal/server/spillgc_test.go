package server

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/weights"
)

func newTTLServer(tb testing.TB, dir string, ttl time.Duration) *Server {
	g := testGraph(40, 60)
	return New(g, weights.NewDegree(g), Config{
		Seed:     7,
		Workers:  2,
		SpillDir: dir,
		SpillTTL: ttl,
	})
}

func spillFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "pair-*.afsnap"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// age rewinds every named file's mtime by d — the clock the TTL sweep
// keys on, since rename(2) stamps a fresh mtime per rewrite.
func age(t *testing.T, files []string, d time.Duration) {
	t.Helper()
	old := time.Now().Add(-d)
	for _, f := range files {
		if err := os.Chtimes(f, old, old); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSpillTTLWarmSweep: Warm on a directory of expired snapshots
// removes them instead of loading them, ledgers the removals, and the
// server still answers identically by resampling — expiry is a cost
// event, never a correctness event. Fresh files are untouched.
func TestSpillTTLWarmSweep(t *testing.T) {
	dir := t.TempDir()
	sv := newTTLServer(t, dir, time.Hour)
	pairs := validPairs(sv.Graph(), 4)
	if len(pairs) < 2 {
		t.Skip("not enough pairs")
	}
	want := queryAll(t, sv, pairs, 1)
	if err := sv.SpillAll(); err != nil {
		t.Fatal(err)
	}
	files := spillFiles(t, dir)
	if len(files) == 0 {
		t.Fatal("SpillAll wrote nothing")
	}

	// Fresh files survive a warm start wholesale.
	warm := newTTLServer(t, dir, time.Hour)
	n, err := warm.Warm()
	if err != nil || n != len(files) {
		t.Fatalf("Warm loaded %d of %d fresh files (err %v)", n, len(files), err)
	}
	if st := warm.Stats(); st.SpillFilesExpired != 0 {
		t.Fatalf("fresh files expired: %+v", st)
	}

	// Past the TTL the same directory warms nothing: the sweep removes
	// every file before the load walk, and the ledger says so.
	age(t, files, 2*time.Hour)
	cold := newTTLServer(t, dir, time.Hour)
	n, err = cold.Warm()
	if err != nil || n != 0 {
		t.Fatalf("Warm loaded %d expired files (err %v)", n, err)
	}
	if st := cold.Stats(); st.SpillFilesExpired != int64(len(files)) {
		t.Fatalf("expired %d files, ledger says %d", len(files), st.SpillFilesExpired)
	}
	if left := spillFiles(t, dir); len(left) != 0 {
		t.Fatalf("%d expired files survived the sweep: %v", len(left), left)
	}
	// Resampled answers equal the originals: pools are pure functions of
	// (Seed, s, t), so losing a snapshot costs draws, not answers.
	if got := queryAll(t, cold, pairs, 1); !reflect.DeepEqual(got, want) {
		t.Fatal("answers diverged after TTL expiry forced a resample")
	}
}

// TestSpillTTLDeltaSweep: ApplyDelta sweeps expired files on its way
// out (it already holds the delta mutex and walks the spill dir), and
// the sweep only ever touches our own expired snapshots — tmp debris
// and foreign files are not ours to delete.
func TestSpillTTLDeltaSweep(t *testing.T) {
	dir := t.TempDir()
	sv := newTTLServer(t, dir, time.Hour)
	pairs := validPairs(sv.Graph(), 4)
	if len(pairs) < 2 {
		t.Skip("not enough pairs")
	}
	queryAll(t, sv, pairs, 1)
	if err := sv.SpillAll(); err != nil {
		t.Fatal(err)
	}
	files := spillFiles(t, dir)
	if len(files) == 0 {
		t.Fatal("SpillAll wrote nothing")
	}
	foreign := filepath.Join(dir, "not-a-snapshot.txt")
	if err := os.WriteFile(foreign, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	age(t, append(append([]string{}, files...), foreign), 2*time.Hour)

	// An edge append triggers repair; the sweep rides along under the
	// same mutex. (The delta invalidates some pairs' spills anyway — the
	// point here is the TTL ledger and the foreign file.)
	g := sv.Graph()
	a := graph.Node(0)
	b := graph.Node(g.NumNodes() - 1)
	if g.HasEdge(a, b) {
		t.Skip("test graph grew an inconvenient edge")
	}
	if _, err := sv.ApplyDelta(context.Background(), &graph.Delta{Add: []graph.Edge{{U: a, V: b}}}, nil); err != nil {
		t.Fatal(err)
	}
	if st := sv.Stats(); st.SpillFilesExpired == 0 {
		t.Fatalf("delta sweep expired nothing: %+v", st)
	}
	if left := spillFiles(t, dir); len(left) != 0 {
		t.Fatalf("expired files survived the delta sweep: %v", left)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Errorf("foreign file deleted by the sweep: %v", err)
	}
}

// TestSpillTTLDisabled: SpillTTL = 0 (the default) never expires
// anything, however old.
func TestSpillTTLDisabled(t *testing.T) {
	dir := t.TempDir()
	sv := newTTLServer(t, dir, 0)
	pairs := validPairs(sv.Graph(), 2)
	if len(pairs) < 1 {
		t.Skip("not enough pairs")
	}
	queryAll(t, sv, pairs[:1], 1)
	if err := sv.SpillAll(); err != nil {
		t.Fatal(err)
	}
	files := spillFiles(t, dir)
	age(t, files, 1000*time.Hour)
	warm := newTTLServer(t, dir, 0)
	if n, err := warm.Warm(); err != nil || n != len(files) {
		t.Fatalf("Warm loaded %d of %d (err %v)", n, len(files), err)
	}
	if st := warm.Stats(); st.SpillFilesExpired != 0 {
		t.Fatalf("TTL disabled but files expired: %+v", st)
	}
}
