package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded is the typed fast-reject: the in-flight query limit is
// reached and the wait queue is full. Transports map it to their own
// overload shape (HTTP 429, a pipe error reply); callers can test for
// it with errors.Is and retry with backoff — rejection never corrupts
// state, the query simply did not run.
var ErrOverloaded = errors.New("server: overloaded (in-flight limit reached and wait queue full)")

// admission is the server's in-flight gate: at most cap(slots) queries
// execute at once, at most maxQueue more wait for a slot, and everything
// beyond that is rejected immediately with ErrOverloaded. A nil
// *admission (Config.MaxInflight ≤ 0) disables the gate at zero cost.
//
// The gate sits at the outermost query entry points — Solve, SolveMax,
// SolveMaxBudgets, EstimateF, Pmax, PmaxEstimate, TopK (and through it
// TopKRefine, which delegates and must not hold two slots) — so
// "in flight" counts client requests, including ones that will coalesce
// onto an identical leader. Internal traffic (PairHandle acquisitions,
// Warm, ApplyDelta migrations) is never gated: admission protects the
// server from clients, not from itself.
type admission struct {
	slots    chan struct{}
	maxQueue int64

	inflight atomic.Int64 // currently executing (holding a slot)
	queued   atomic.Int64 // currently waiting for a slot
	admitted atomic.Int64 // lifetime admits (fast-path + dequeued)
	rejected atomic.Int64 // lifetime fast-rejects
}

func newAdmission(maxInflight, maxQueue int) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),
	}
}

// admit blocks until a slot is free, the queue overflows (ErrOverloaded)
// or ctx is done (its error). Every nil return must be paired with
// release.
func (a *admission) admit(ctx context.Context) error {
	if a == nil {
		return nil
	}
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		a.admitted.Add(1)
		return nil
	default:
	}
	// Saturated: join the bounded wait queue or fast-reject. The counter
	// is optimistic — increment, then check — so a burst past the bound
	// rejects deterministically instead of over-admitting.
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.rejected.Add(1)
		return ErrOverloaded
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		a.admitted.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() {
	if a == nil {
		return
	}
	a.inflight.Add(-1)
	<-a.slots
}

// admit gates one query on the server's admission limiter; see admission.
func (sv *Server) admit(ctx context.Context) error { return sv.adm.admit(ctx) }

func (sv *Server) admitDone() { sv.adm.release() }
