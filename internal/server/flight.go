package server

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// flightKey identifies one coalescable query: kind, pair, a rendered
// parameter string — and the graph generation the query started on.
// Keying on the generation pointer is what keeps coalescing delta-epoch
// safe: a query that begins after ApplyDelta returns reads the new
// generation, so it can never adopt an answer computed (or still being
// computed) at the previous epoch, while in-flight queries of the old
// epoch keep coalescing among themselves.
type flightKey struct {
	gen    *generation
	kind   Kind
	s, t   graph.Node
	params string
}

// flightCall is one in-flight computation; duplicates block on the Once
// (the per-entry pattern spill restore uses) and share the result.
type flightCall struct {
	once sync.Once
	val  any
	err  error
}

// coalesce funnels concurrent identical queries into a single execution.
// The first caller computes fn; every caller that arrives while the
// flight is open blocks on the call's Once and shares the result —
// ledgered in Stats().Coalesced — so two racing clients no longer both
// pay a cold pool. Sharing is sound because every answer is a pure
// function of (Seed, s, t, params) at a fixed graph epoch: the joiner
// receives exactly the bytes it would have computed. The entry is
// removed when the computation finishes, so a later non-overlapping
// duplicate recomputes — cheaply, against the now-warm pools.
//
// One sharp edge is inherited from every singleflight: joiners share the
// winning caller's execution, including its context. A joiner whose own
// context is live can therefore see the winner's cancellation error;
// retrying is always sound (purity), and the retried query reuses the
// pools the aborted flight already grew.
func (sv *Server) coalesce(kind Kind, s, t graph.Node, params string, fn func() (any, error)) (any, error) {
	key := flightKey{gen: sv.gen.Load(), kind: kind, s: s, t: t, params: params}
	v, joined := sv.flights.LoadOrStore(key, &flightCall{})
	c := v.(*flightCall)
	if joined {
		sv.coalesced.Add(1)
	}
	c.once.Do(func() {
		defer sv.flights.Delete(key)
		c.val, c.err = fn()
	})
	return c.val, c.err
}

// pairParams renders a parameter list into a flight key component.
func pairParams(args ...any) string { return fmt.Sprint(args...) }
