package server

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// serverObs binds a Server to an obs.Obs: per-kind request latency
// histograms, per-stage histograms fed from finished traces, and
// scrape-time mirrors of every Stats counter. All mirrors are
// CounterFunc/GaugeFunc reads of the server's existing atomics, so the
// query hot path pays nothing for them; only an enabled trace and the
// two Observe calls per finished query are new work.
//
// Metric names follow the package obs convention (af_ prefix, _total
// counters, _seconds summaries); they are a stable scrape API.
type serverObs struct {
	o       *obs.Obs
	reqHist [numKinds]*obs.Histogram // af_request_seconds{kind}
	reqErrs [numKinds]*obs.Counter   // af_request_errors_total{kind}
	stage   [obs.NumStages]*obs.Histogram
}

func newServerObs(sv *Server, o *obs.Obs) *serverObs {
	so := &serverObs{o: o}
	r := o.Registry
	for k := KindSolve; k < numKinds; k++ {
		so.reqHist[k] = r.Histogram("af_request_seconds", "query latency by kind", "kind", k.String())
		so.reqErrs[k] = r.Counter("af_request_errors_total", "queries that returned an error", "kind", k.String())
	}
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		so.stage[st] = r.Histogram("af_stage_seconds", "time spent per query stage", "stage", st.String())
	}
	for k := KindSolve; k < numKinds; k++ {
		kc := &sv.kinds[k]
		r.CounterFunc("af_requests_total", "session acquisitions by kind and cache outcome",
			func() float64 { return float64(kc.hits.Load()) }, "kind", k.String(), "result", "hit")
		r.CounterFunc("af_requests_total", "session acquisitions by kind and cache outcome",
			func() float64 { return float64(kc.misses.Load()) }, "kind", k.String(), "result", "miss")
	}
	r.GaugeFunc("af_sessions_live", "currently cached pair sessions", func() float64 {
		n := 0
		for i := range sv.shards {
			sh := &sv.shards[i]
			sh.mu.Lock()
			n += len(sh.m)
			sh.mu.Unlock()
		}
		return float64(n)
	})
	r.GaugeFunc("af_bytes_held", "accounted bytes of cached pair state", func() float64 {
		sv.lruMu.Lock()
		defer sv.lruMu.Unlock()
		return float64(sv.bytes)
	})
	r.GaugeFunc("af_graph_epochs", "graph epochs served (1 + effective deltas)", func() float64 {
		return float64(sv.Epochs())
	})
	mirror := func(name, help string, v *atomic.Int64, kv ...string) {
		r.CounterFunc(name, help, func() float64 { return float64(v.Load()) }, kv...)
	}
	mirror("af_sessions_created_total", "pair sessions created (recreation after eviction included)", &sv.created)
	mirror("af_sessions_evicted_total", "pair sessions evicted", &sv.evicted)
	mirror("af_spills_total", "evictions and flushes that wrote a spill file", &sv.spills)
	mirror("af_spill_bytes_total", "bytes written to spill files", &sv.spillBytes)
	mirror("af_spill_loads_total", "pair admissions restored from a spill file", &sv.spillLoads)
	mirror("af_spill_load_bytes_total", "bytes read from spill files", &sv.spillLoadBytes)
	mirror("af_spill_draws_saved_total", "pool draws spill restores avoided", &sv.spillDrawsSaved)
	mirror("af_spill_load_errors_total", "spill files rejected or unreadable, by cause", &sv.spillLoadErrChecksum, "cause", "checksum")
	mirror("af_spill_load_errors_total", "spill files rejected or unreadable, by cause", &sv.spillLoadErrVersion, "cause", "version")
	mirror("af_spill_load_errors_total", "spill files rejected or unreadable, by cause", &sv.spillLoadErrStream, "cause", "stream")
	mirror("af_spill_load_errors_total", "spill files rejected or unreadable, by cause", &sv.spillLoadErrInstance, "cause", "instance")
	mirror("af_spill_load_errors_total", "spill files rejected or unreadable, by cause", &sv.spillLoadErrOther, "cause", "other")
	mirror("af_spill_write_errors_total", "failed spill snapshot writes", &sv.spillWriteErrors)
	mirror("af_deltas_applied_total", "graph deltas that changed the graph or weights", &sv.deltasApplied)
	mirror("af_pairs_dropped_total", "pairs dissolved by a delta", &sv.pairsDropped)
	mirror("af_pools_repaired_total", "pair migrations and spill loads that repaired pools across epochs", &sv.poolsRepaired)
	mirror("af_repair_chunks_resampled_total", "pool chunks re-drawn by delta repair", &sv.repairChunks)
	mirror("af_repair_draws_resampled_total", "pool draws re-drawn by delta repair", &sv.repairDraws)
	mirror("af_repair_draws_saved_total", "pool draws adopted verbatim by delta repair", &sv.repairSaved)
	mirror("af_pmax_draws_reused_total", "stopping-rule draws answered from retained estimator ledgers", &sv.pmaxDrawsReused)
	mirror("af_coalesced_total", "queries that joined an identical in-flight query", &sv.coalesced)
	mirror("af_spill_files_expired_total", "spill files removed by TTL GC", &sv.spillExpired)
	// Admission series are registered even with the gate disabled (all
	// zeros): dashboards and the CI smoke can rely on the names existing.
	adm := sv.adm
	r.GaugeFunc("af_inflight", "queries currently executing (holding an admission slot)", func() float64 {
		if adm == nil {
			return 0
		}
		return float64(adm.inflight.Load())
	})
	r.GaugeFunc("af_queue_depth", "queries waiting for an admission slot", func() float64 {
		if adm == nil {
			return 0
		}
		return float64(adm.queued.Load())
	})
	r.CounterFunc("af_admitted_total", "queries admitted past the in-flight gate", func() float64 {
		if adm == nil {
			return 0
		}
		return float64(adm.admitted.Load())
	})
	r.CounterFunc("af_rejected_total", "queries fast-rejected by admission control", func() float64 {
		if adm == nil {
			return 0
		}
		return float64(adm.rejected.Load())
	})
	return so
}

// obsNoopEnd is the pre-allocated end callback of the disabled path, so
// obsBegin allocates nothing when observability is off.
var obsNoopEnd = func(error) {}

// obsBegin opens one query's trace and returns the (possibly wrapped)
// context plus the end callback the query must invoke with its final
// error. With observability disabled both returns are free: the original
// context and a shared no-op.
func (sv *Server) obsBegin(ctx context.Context, kind Kind) (context.Context, func(err error)) {
	so := sv.obs
	if so == nil {
		return ctx, obsNoopEnd
	}
	tr := so.o.Tracer.Start(kind.String())
	start := time.Now()
	return obs.WithTrace(ctx, tr), func(err error) {
		tr.Finish()
		so.reqHist[kind].Observe(time.Since(start).Nanoseconds())
		if err != nil {
			so.reqErrs[kind].Inc()
		}
		tr.EachSpan(func(st obs.Stage, d time.Duration) {
			so.stage[st].Observe(d.Nanoseconds())
		})
	}
}

// Obs returns the server's observability bundle (nil when disabled) —
// the handle the serving binaries expose over HTTP.
func (sv *Server) Obs() *obs.Obs {
	if sv.obs == nil {
		return nil
	}
	return sv.obs.o
}

// WriteStatusz renders a human-readable status page: the stats ledger,
// per-kind and per-stage latency quantiles, and the slowest retained
// traces. The page is for operators; the machine-readable form is the
// registry's Prometheus exposition.
func (sv *Server) WriteStatusz(w io.Writer) {
	st := sv.Stats()
	fmt.Fprintf(w, "sessions: live=%d created=%d evicted=%d bytes_held=%d\n",
		st.SessionsLive, st.SessionsCreated, st.SessionsEvicted, st.BytesHeld)
	fmt.Fprintf(w, "spill: spills=%d bytes=%d loads=%d load_bytes=%d draws_saved=%d load_errors=%d write_errors=%d\n",
		st.Spills, st.SpillBytes, st.SpillLoads, st.SpillLoadBytes, st.SpillDrawsSaved, st.SpillLoadErrors, st.SpillWriteErrors)
	fmt.Fprintf(w, "deltas: applied=%d pairs_dropped=%d pools_repaired=%d chunks_resampled=%d draws_resampled=%d draws_saved=%d\n",
		st.DeltasApplied, st.PairsDropped, st.PoolsRepaired, st.RepairChunksResampled, st.RepairDrawsResampled, st.RepairDrawsSaved)
	fmt.Fprintf(w, "reuse: pmax_draws_reused=%d coalesced=%d\n", st.PmaxDrawsReused, st.Coalesced)
	fmt.Fprintf(w, "admission: inflight=%d queued=%d admitted=%d rejected=%d spill_expired=%d\n",
		st.Inflight, st.Queued, st.Admitted, st.Rejected, st.SpillFilesExpired)
	for k := KindSolve; k < numKinds; k++ {
		c := st.ByKind[k]
		if c.Hits+c.Misses == 0 {
			continue
		}
		fmt.Fprintf(w, "kind %-9s hits=%d misses=%d", k.String(), c.Hits, c.Misses)
		if sv.obs != nil {
			if snap := sv.obs.reqHist[k].Snapshot(); snap.Count() > 0 {
				fmt.Fprintf(w, " n=%d p50=%s p99=%s p999=%s",
					snap.Count(), statuszDur(snap.Quantile(0.5)), statuszDur(snap.Quantile(0.99)), statuszDur(snap.Quantile(0.999)))
			}
		}
		fmt.Fprintln(w)
	}
	if sv.obs == nil {
		return
	}
	for stg := obs.Stage(0); stg < obs.NumStages; stg++ {
		snap := sv.obs.stage[stg].Snapshot()
		if snap.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "stage %-11s n=%d p50=%s p99=%s total=%s\n",
			stg.String(), snap.Count(), statuszDur(snap.Quantile(0.5)), statuszDur(snap.Quantile(0.99)),
			time.Duration(snap.Sum).Round(time.Microsecond))
	}
	for i, s := range sv.obs.o.Tracer.Slowest() {
		fmt.Fprintf(w, "slow[%d] kind=%s total=%s spans=%d\n",
			i, s.Kind, time.Duration(s.TotalUs)*time.Microsecond, len(s.Spans))
	}
}

func statuszDur(ns float64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
