package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/maxaf"
	"repro/internal/rank"
	"repro/internal/setcover"
)

// TopKQuery is one batched ranking request: rank Targets as friending
// candidates for source S and surface the best K, spending at most
// MaxDraws realization draws across the whole batch.
type TopKQuery struct {
	S       graph.Node
	Targets []graph.Node
	// K is how many winners must be scored at full effort.
	K int
	// Budget is the invitation budget each candidate is solved under
	// (the paper's b).
	Budget int
	// Realizations is the full per-candidate effort L (≤ 0 selects
	// maxaf.DefaultRealizations); a winner of an untruncated run is
	// scored at exactly this pool size.
	Realizations int64
	// MaxDraws bounds the batch's total draw bill (0 = unlimited). Any
	// budget that admits the exhaustive bill — 2·L per candidate —
	// degenerates to it, making the answers byte-identical to
	// len(Targets) independent SolveMax calls.
	MaxDraws int64
}

// TopKCandidate is one target's standing after a TopK run.
type TopKCandidate struct {
	Target graph.Node
	// Score is the decorrelated estimate of f(Invited) at Effort
	// draws — the quantity candidates are ranked on.
	Score float64
	// TrainF is the biased in-pool covered fraction of the last solve.
	TrainF float64
	// Invited is the last chosen invitation set (nil if the candidate
	// never scored successfully).
	Invited *graph.NodeSet
	// Effort is the pool size the candidate was last scored at — the
	// per-candidate confidence knob; Rounds counts its scheduling
	// rounds. Frozen candidates stopped before the final round.
	Effort int64
	Rounds int
	Frozen bool
	// Err is the scoring failure that froze the candidate, if any
	// (e.g. an unreachable or adjacent target) — rendered to a string
	// so results serialize.
	Err string
}

// TopKResult is a finished batched ranking. It retains its Query so a
// later TopKRefine call can resume the schedule.
type TopKResult struct {
	Query      TopKQuery
	Candidates []TopKCandidate // by Targets index
	// Ranked lists Targets indices best-first: the final survivors by
	// score, then frozen candidates by how long they survived.
	Ranked []int
	Rounds int
	// PlannedDraws is the schedule's a-priori bill; DrawsSpent is the
	// measured pool growth the run actually caused (eviction-induced
	// resampling included, reuse of already-grown pools excluded);
	// ExhaustiveDraws is what len(Targets) independent full-effort
	// SolveMax calls would plan. Truncated reports that MaxDraws
	// forced even the winners below full effort.
	PlannedDraws    int64
	DrawsSpent      int64
	ExhaustiveDraws int64
	Truncated       bool
}

// Winners returns the top-min(K, ranked) candidate indices, best first.
func (r *TopKResult) Winners() []int {
	return r.Ranked[:min(r.Query.K, len(r.Ranked))]
}

// TopK serves one batched top-k request end to end as a single scheduled
// computation. A rank.Plan (successive halving) decides how much effort
// each surviving candidate receives per round; every candidate's session
// lives in the ordinary pair cache, so the byte budget, eviction, spill
// tier and delta migration all apply per candidate exactly as they do to
// single-pair queries — an evicted candidate resamples (or restores) to
// byte-identical pools, and the measured DrawsSpent ledgers the extra
// bill. Within the batch, one solver scratch pool serves every
// candidate's greedy (setcover.Solver.Rebind) and the engine's shared
// chunk arenas serve every pool growth.
//
// Purity: every candidate's score at effort l is the same pure function
// of (Seed, S, target, Budget, l) that SolveMax computes, so a full-
// budget run returns byte-identical winners, scores and invitation sets
// to len(Targets) independent SolveMax calls, for any worker count and
// any eviction schedule. Concurrent identical calls coalesce into one
// execution (see coalesce).
func (sv *Server) TopK(ctx context.Context, q TopKQuery) (*TopKResult, error) {
	if err := sv.admit(ctx); err != nil {
		return nil, err
	}
	defer sv.admitDone()
	v, err := sv.coalesce(KindTopK, q.S, q.S, pairParams(q.Targets, q.K, q.Budget, q.Realizations, q.MaxDraws), func() (any, error) {
		return sv.topK(ctx, q)
	})
	if err != nil {
		return nil, err
	}
	return v.(*TopKResult), nil
}

func (sv *Server) topK(ctx context.Context, q TopKQuery) (_ *TopKResult, err error) {
	ctx, obsEnd := sv.obsBegin(ctx, KindTopK)
	defer func() { obsEnd(err) }()
	n := len(q.Targets)
	if n == 0 {
		return nil, fmt.Errorf("server: topk with no targets")
	}
	if q.K <= 0 {
		return nil, fmt.Errorf("server: topk k=%d must be positive", q.K)
	}
	if q.Budget <= 0 {
		return nil, fmt.Errorf("server: topk budget %d must be positive", q.Budget)
	}
	l := q.Realizations
	if l <= 0 {
		l = maxaf.DefaultRealizations
	}
	res := &TopKResult{Query: q, Candidates: make([]TopKCandidate, n)}
	for i, t := range q.Targets {
		res.Candidates[i].Target = t
	}
	var spent atomic.Int64
	var solvers sync.Pool // *setcover.Solver scratch shared across the batch
	score := func(ctx context.Context, i int, effort int64) (float64, error) {
		e, err := sv.acquire(ctx, KindTopK, q.S, q.Targets[i])
		if err != nil {
			return 0, err
		}
		defer sv.release(e)
		eng := e.sess.Engine()
		before := eng.PoolDraws()
		defer func() { spent.Add(eng.PoolDraws() - before) }()
		pool, err := e.sess.Pool(ctx, effort)
		if err != nil {
			return 0, err
		}
		var solver *setcover.Solver
		if s, ok := solvers.Get().(*setcover.Solver); ok {
			solver = s
		}
		mres, solver, err := maxaf.SolveFromPoolSolver(ctx, e.sess.Instance(), q.Budget, pool, solver)
		if solver != nil {
			solvers.Put(solver)
		}
		if err != nil {
			return 0, err
		}
		f, err := e.eval.EstimateF(ctx, mres.Invited, effort)
		if err != nil {
			return 0, err
		}
		// Index-disjoint writes: the scheduler scores each candidate at
		// most once per round, so no two goroutines touch slot i.
		c := &res.Candidates[i]
		c.TrainF = mres.CoveredFraction
		c.Invited = mres.Invited
		return f, nil
	}
	rr, err := rank.Run(ctx, rank.Config{
		Candidates: n,
		K:          q.K,
		FullEffort: l,
		MaxDraws:   q.MaxDraws,
		Workers:    sv.cfg.Workers,
	}, score)
	if err != nil {
		return nil, err
	}
	for i, rc := range rr.Candidates {
		c := &res.Candidates[i]
		c.Score = rc.Score
		c.Effort = rc.Effort
		c.Rounds = rc.Rounds
		c.Frozen = rc.Frozen
		if rc.Err != nil {
			c.Err = rc.Err.Error()
		}
	}
	res.Ranked = rr.Ranked
	res.Rounds = rr.Rounds
	res.PlannedDraws = rr.Plan.Cost
	res.ExhaustiveDraws = rr.Plan.ExhaustiveCost
	res.Truncated = rr.Plan.Truncated
	res.DrawsSpent = spent.Load()
	return res, nil
}

// TopKRefine resumes a finished scheduled run with extraDraws more
// budget: the request is re-planned at the enlarged budget and re-run
// against the same pair cache, where every pool the first run grew is
// still warm (or restorable) — so the refinement pays only the
// incremental draws of the deeper schedule. The anytime contract: the
// refined result equals what a cold run at the enlarged budget would
// have returned (purity), while DrawsSpent records only the top-up.
// Refining an exhaustive (MaxDraws = 0) result is a no-op re-scoring
// from warm pools.
func (sv *Server) TopKRefine(ctx context.Context, prev *TopKResult, extraDraws int64) (*TopKResult, error) {
	if prev == nil {
		return nil, fmt.Errorf("server: topk refine without a prior result")
	}
	if extraDraws <= 0 {
		return nil, fmt.Errorf("server: topk refine extraDraws=%d must be positive", extraDraws)
	}
	q := prev.Query
	if q.MaxDraws != 0 {
		q.MaxDraws += extraDraws
		if q.MaxDraws >= prev.ExhaustiveDraws {
			q.MaxDraws = 0 // budget now admits the exhaustive plan
		}
	}
	return sv.TopK(ctx, q)
}
