package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/weights"
)

// waitFor polls until cond holds, failing the test after ~5s — used to
// observe a goroutine reaching the wait queue, which has no ordering
// edge with the spawning test otherwise.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

func newAdmissionServer(tb testing.TB, maxInflight, maxQueue int) *Server {
	g := testGraph(40, 60)
	return New(g, weights.NewDegree(g), Config{
		Seed:        7,
		Workers:     2,
		MaxInflight: maxInflight,
		MaxQueue:    maxQueue,
	})
}

// TestAdmissionFastReject pins the gate's semantics deterministically by
// occupying slots directly: with every slot held and the queue full,
// the next admit rejects immediately with ErrOverloaded instead of
// queuing unboundedly, and the ledger accounts every transition.
func TestAdmissionFastReject(t *testing.T) {
	sv := newAdmissionServer(t, 2, 1)
	ctx := context.Background()

	// Occupy both slots.
	if err := sv.admit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sv.admit(ctx); err != nil {
		t.Fatal(err)
	}
	if st := sv.Stats(); st.Inflight != 2 || st.Admitted != 2 {
		t.Fatalf("after two admits: %+v", st)
	}

	// Third query queues (the queue has one seat)...
	queuedErr := make(chan error, 1)
	go func() { queuedErr <- sv.admit(ctx) }()
	waitFor(t, func() bool { return sv.Stats().Queued == 1 })

	// ...and the fourth fast-rejects: saturated slots, full queue.
	if err := sv.admit(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("fourth admit: err = %v, want ErrOverloaded", err)
	}
	if st := sv.Stats(); st.Rejected != 1 || st.Queued != 1 || st.Inflight != 2 {
		t.Fatalf("after fast-reject: %+v", st)
	}

	// A gated query surfaces the same rejection through its public entry
	// point — the queue seat is still taken, so it cannot wait.
	if _, err := sv.Pmax(ctx, 0, 5, 1000); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Pmax under saturation: err = %v, want ErrOverloaded", err)
	}

	// Releasing a slot admits the queued waiter.
	sv.admitDone()
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued admit: %v", err)
	}
	if st := sv.Stats(); st.Inflight != 2 || st.Queued != 0 || st.Admitted != 3 {
		t.Fatalf("after dequeue: %+v", st)
	}

	sv.admitDone()
	sv.admitDone()
	if st := sv.Stats(); st.Inflight != 0 || st.Queued != 0 || st.Admitted != 3 || st.Rejected != 2 {
		t.Fatalf("final ledger: %+v", st)
	}
	// With the gate clear, queries run again — rejection never corrupts.
	if _, err := sv.Pmax(ctx, 0, 5, 1000); err != nil {
		t.Fatalf("Pmax after release: %v", err)
	}
}

// TestAdmissionCancelWhileQueued: a queued query whose context is
// canceled leaves with ctx.Err(), vacating its queue seat without
// consuming a slot — counted neither admitted nor rejected.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	sv := newAdmissionServer(t, 1, 4)
	if err := sv.admit(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() { queuedErr <- sv.admit(ctx) }()
	waitFor(t, func() bool { return sv.Stats().Queued == 1 })
	cancel()
	if err := <-queuedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled admit: err = %v, want context.Canceled", err)
	}
	if st := sv.Stats(); st.Queued != 0 || st.Admitted != 1 || st.Rejected != 0 {
		t.Fatalf("after cancellation: %+v", st)
	}
	sv.admitDone()
}

// TestAdmissionDisabled: MaxInflight ≤ 0 disables the gate entirely —
// queries run ungated and the ledger stays zero.
func TestAdmissionDisabled(t *testing.T) {
	g := testGraph(40, 60)
	sv := New(g, weights.NewDegree(g), Config{Seed: 7, Workers: 2})
	if sv.adm != nil {
		t.Fatal("gate constructed with MaxInflight = 0")
	}
	if _, err := sv.Pmax(context.Background(), 0, 5, 1000); err != nil {
		t.Fatal(err)
	}
	if st := sv.Stats(); st.Inflight != 0 || st.Queued != 0 || st.Admitted != 0 || st.Rejected != 0 {
		t.Fatalf("disabled gate has a ledger: %+v", st)
	}
}

// TestAdmissionConcurrent hammers the gate from many goroutines across
// every gated query kind (run under -race in CI). The invariants: the
// ledger is exhaustive (admitted + rejected = attempts, nothing
// canceled here), occupancy returns to zero, and admitted answers are
// correct — rejection sheds load without corrupting anything.
func TestAdmissionConcurrent(t *testing.T) {
	sv := newAdmissionServer(t, 2, 2)
	g := sv.Graph()
	pairs := validPairs(g, 4)
	if len(pairs) < 2 {
		t.Skip("not enough pairs")
	}

	const workers = 16
	const perWorker = 8
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				pk := pairs[(w+i)%len(pairs)]
				var err error
				switch i % 3 {
				case 0:
					_, err = sv.Pmax(ctx, pk.s, pk.t, 2000)
				case 1:
					_, err = sv.PmaxEstimate(ctx, pk.s, pk.t, 0.25, 50, 20000)
				default:
					_, err = sv.Solve(ctx, pk.s, pk.t, solveCfg)
				}
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)

	var okCount, rejected int
	for err := range errs {
		switch {
		case err == nil:
			okCount++
		case errors.Is(err, ErrOverloaded):
			rejected++
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	st := sv.Stats()
	if st.Inflight != 0 || st.Queued != 0 {
		t.Errorf("gate still occupied after drain: %+v", st)
	}
	if int(st.Admitted) != okCount || int(st.Rejected) != rejected {
		t.Errorf("ledger (admitted %d, rejected %d) disagrees with callers (%d ok, %d rejected)",
			st.Admitted, st.Rejected, okCount, rejected)
	}
	if okCount == 0 {
		t.Error("every query rejected: the gate admits nothing")
	}

	// Answers from the contended server match an ungated reference.
	ref := New(g, weights.NewDegree(g), Config{Seed: 7, Workers: 2})
	for _, pk := range pairs[:2] {
		want, err1 := ref.Pmax(ctx, pk.s, pk.t, 2000)
		got, err2 := sv.Pmax(ctx, pk.s, pk.t, 2000)
		if err1 != nil || err2 != nil || got != want {
			t.Errorf("pmax(%d,%d) = %v/%v, want %v/%v", pk.s, pk.t, got, err2, want, err1)
		}
	}
}
