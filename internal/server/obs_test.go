package server

import (
	"context"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/weights"
)

// TestServerObs: an observability-enabled server records per-kind
// request latency, per-stage spans, Stats counter mirrors and the
// tracez ring — and the answers are identical to an uninstrumented
// server's.
func TestServerObs(t *testing.T) {
	g := testGraph(60, 40)
	pairs := validPairs(g, 4)
	o := obs.New()
	sv := New(g, weights.NewDegree(g), Config{Seed: 11, Obs: o})
	got := queryAll(t, sv, pairs, 2)
	plain := New(g, weights.NewDegree(g), Config{Seed: 11})
	want := queryAll(t, plain, pairs, 2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("instrumented answer diverged:\n got %s\nwant %s", got[i], want[i])
		}
	}
	targets := make([]graph.Node, len(pairs))
	for i, p := range pairs {
		targets[i] = p.t
	}
	if _, err := sv.TopK(context.Background(), TopKQuery{
		S: pairs[0].s, Targets: targets, K: 2, Budget: 3, Realizations: 2000,
	}); err != nil {
		t.Fatalf("topk: %v", err)
	}

	var b strings.Builder
	if err := o.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	for _, series := range []string{
		`af_request_seconds{kind="solve",quantile="0.5"}`,
		`af_request_seconds{kind="solvemax",quantile="0.99"}`,
		`af_request_seconds{kind="pmaxest",quantile="0.999"}`,
		`af_request_seconds{kind="topk",quantile="0.5"}`,
		`af_requests_total{kind="solve",result="miss"}`,
		`af_stage_seconds{stage="acquire",quantile="0.5"}`,
		`af_stage_seconds{stage="pool_grow",quantile="0.5"}`,
		`af_stage_seconds{stage="solve",quantile="0.5"}`,
		`af_stage_seconds{stage="measure",quantile="0.5"}`,
		`af_stage_seconds{stage="rank_round",quantile="0.5"}`,
		"af_sessions_live", "af_sessions_created_total", "af_bytes_held",
		"af_spill_loads_total", `af_spill_load_errors_total{cause="checksum"}`,
		"af_deltas_applied_total", "af_pools_repaired_total",
		"af_pmax_draws_reused_total", "af_coalesced_total", "af_graph_epochs",
	} {
		if !strings.Contains(exp, series) {
			t.Errorf("exposition is missing %s", series)
		}
	}

	// The mirrors track the ledger: created sessions moved off zero and
	// the exposition agrees with Stats().
	st := sv.Stats()
	if st.SessionsCreated == 0 {
		t.Fatal("workload created no sessions")
	}
	var createdSample float64
	for _, s := range o.Registry.Snapshot() {
		if s.Name == "af_sessions_created_total" {
			createdSample = s.Value
		}
	}
	if createdSample != float64(st.SessionsCreated) {
		t.Errorf("af_sessions_created_total = %v, Stats says %d", createdSample, st.SessionsCreated)
	}

	slowest := o.Tracer.Slowest()
	if len(slowest) == 0 {
		t.Fatal("tracer retained no traces")
	}
	haveSpans := false
	for _, s := range slowest {
		if len(s.Spans) > 0 {
			haveSpans = true
		}
	}
	if !haveSpans {
		t.Error("no retained trace carries spans")
	}

	var sz strings.Builder
	sv.WriteStatusz(&sz)
	for _, want := range []string{"sessions:", "kind solve", "stage ", "slow[0]"} {
		if !strings.Contains(sz.String(), want) {
			t.Errorf("statusz is missing %q:\n%s", want, sz.String())
		}
	}
}
