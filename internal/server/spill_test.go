package server

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/snapshot"
	"repro/internal/weights"
)

// newSpillServer returns a server over the shared test graph with a
// spill directory and the given byte budget (0 = no eviction).
func newSpillServer(tb testing.TB, dir string, maxBytes int64) *Server {
	g := testGraph(40, 60)
	return New(g, weights.NewDegree(g), Config{
		MaxPoolBytes: maxBytes,
		Seed:         7,
		Workers:      2,
		SpillDir:     dir,
	})
}

// TestSpillReloadDeterminism is the spill tier's correctness claim:
// answers under any evict-to-disk / restore-from-disk schedule equal the
// never-evicted answers, and the ledger shows the spills and loads
// actually happening.
func TestSpillReloadDeterminism(t *testing.T) {
	g := testGraph(40, 60)
	pairs := validPairs(g, 8)
	if len(pairs) < 4 {
		t.Skip("not enough pairs")
	}

	ref := New(g, weights.NewDegree(g), Config{Seed: 7, Workers: 2})
	want := queryAll(t, ref, pairs, 2)

	dir := t.TempDir()
	sv := newSpillServer(t, dir, 200<<10)
	got := queryAll(t, sv, pairs, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("spill-evicting server answers differ from the unbounded reference")
	}

	st := sv.Stats()
	if st.SessionsEvicted == 0 {
		t.Fatal("budget never forced an eviction; shrink MaxPoolBytes")
	}
	if st.Spills == 0 || st.SpillBytes == 0 {
		t.Fatalf("evictions did not spill: %+v", st)
	}
	if st.SpillLoads == 0 || st.SpillDrawsSaved == 0 {
		t.Fatalf("re-admissions did not load from disk: %+v", st)
	}
	if st.SpillLoadErrors != 0 {
		t.Fatalf("unexpected load errors: %+v", st)
	}
	files, err := filepath.Glob(filepath.Join(dir, "pair-*.afsnap"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no spill files on disk (err %v)", err)
	}
}

// TestSpillCorruptionFallsBackToResample: a damaged spill file must be
// rejected (ledgered as a load error) and the pair resampled, with
// byte-identical answers.
func TestSpillCorruptionFallsBackToResample(t *testing.T) {
	g := testGraph(40, 60)
	pairs := validPairs(g, 4)
	if len(pairs) < 2 {
		t.Skip("not enough pairs")
	}
	dir := t.TempDir()
	sv := newSpillServer(t, dir, 0) // no budget: spill only via SpillAll
	want := queryAll(t, sv, pairs, 1)
	if err := sv.SpillAll(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "pair-*.afsnap"))
	if err != nil || len(files) == 0 {
		t.Fatalf("SpillAll wrote nothing (err %v)", err)
	}
	// Corrupt one file, truncate another mid-header, and cut a third
	// exactly after its first snapshot — the partial-restore path, where
	// the solve pool loads but the eval pool cannot: the pair must be
	// reset to wholly cold so the load ledger stays exact.
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 1
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if len(files) > 1 {
		if err := os.Truncate(files[1], 40); err != nil {
			t.Fatal(err)
		}
	}
	if len(files) > 2 {
		whole, err := os.ReadFile(files[2])
		if err != nil {
			t.Fatal(err)
		}
		if _, first, err := snapshot.DecodeNext(whole); err != nil {
			t.Fatal(err)
		} else if err := os.Truncate(files[2], first); err != nil {
			t.Fatal(err)
		}
	}

	fresh := newSpillServer(t, dir, 0)
	got := queryAll(t, fresh, pairs, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("answers after corrupted spill differ")
	}
	st := fresh.Stats()
	if want := int64(min(len(files), 3)); st.SpillLoadErrors != want {
		t.Fatalf("SpillLoadErrors = %d, want %d: %+v", st.SpillLoadErrors, want, st)
	}
	if st.SpillLoads != int64(len(files))-st.SpillLoadErrors {
		t.Fatalf("SpillLoads = %d with %d files and %d errors", st.SpillLoads, len(files), st.SpillLoadErrors)
	}
}

// TestSpillAllWriteError: when snapshots cannot be written (here the
// "directory" is a regular file), SpillAll must surface the error and
// the ledger must count the failed writes.
func TestSpillAllWriteError(t *testing.T) {
	g := testGraph(40, 60)
	pairs := validPairs(g, 2)
	if len(pairs) == 0 {
		t.Skip("no pairs")
	}
	notADir := filepath.Join(t.TempDir(), "notadir")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	sv := newSpillServer(t, notADir, 0)
	queryAll(t, sv, pairs[:1], 1)
	if err := sv.SpillAll(); err == nil {
		t.Fatal("SpillAll on an unwritable spill dir returned nil")
	}
	if st := sv.Stats(); st.SpillWriteErrors == 0 || st.Spills != 0 {
		t.Fatalf("write failures not ledgered: %+v", st)
	}
}

// TestSpillAllWarmRestart is the restart story end to end: flush a
// server's pools, open a successor with the same seed, Warm it, and
// check the successor (a) loads pools from disk and (b) answers
// identically without resampling the warmed draws.
func TestSpillAllWarmRestart(t *testing.T) {
	g := testGraph(40, 60)
	pairs := validPairs(g, 6)
	if len(pairs) < 3 {
		t.Skip("not enough pairs")
	}
	dir := t.TempDir()

	first := newSpillServer(t, dir, 0)
	want := queryAll(t, first, pairs, 1)
	if err := first.SpillAll(); err != nil {
		t.Fatal(err)
	}

	second := newSpillServer(t, dir, 0)
	n, err := second.Warm()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("Warm admitted no pairs")
	}
	st := second.Stats()
	if st.SpillLoads == 0 || st.SpillDrawsSaved == 0 {
		t.Fatalf("Warm did not load pools: %+v", st)
	}
	got := queryAll(t, second, pairs, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("warm-restarted server answers differ")
	}

	// A server with a different seed must refuse the foreign snapshots
	// (stream identity mismatch) and still answer deterministically for
	// its own seed.
	foreign := New(g, weights.NewDegree(g), Config{Seed: 8, Workers: 2, SpillDir: dir})
	if _, err := foreign.Warm(); err != nil {
		t.Fatal(err)
	}
	if fst := foreign.Stats(); fst.SpillLoads != 0 || fst.SpillLoadErrors == 0 {
		t.Fatalf("foreign-seed server adopted alien pools: %+v", fst)
	}
}

// TestStatsSessionInvariant drives concurrent query/evict/spill churn,
// quiesces, and checks the lifetime ledger: every created session is
// either still live or was evicted exactly once. Run under -race in CI.
func TestStatsSessionInvariant(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		name := "discard"
		if dir != "" {
			name = "spill"
		}
		t.Run(name, func(t *testing.T) {
			g := testGraph(40, 60)
			pairs := validPairs(g, 10)
			if len(pairs) < 4 {
				t.Skip("not enough pairs")
			}
			sv := New(g, weights.NewDegree(g), Config{
				MaxPoolBytes: 150 << 10,
				Seed:         7,
				Workers:      1,
				SpillDir:     dir,
			})
			ctx := context.Background()
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < 30; i++ {
						pk := pairs[r.Intn(len(pairs))]
						switch r.Intn(3) {
						case 0:
							sv.Pmax(ctx, pk.s, pk.t, 2000)
						case 1:
							sv.SolveMax(ctx, pk.s, pk.t, 3, 2000)
						default:
							sv.Solve(ctx, pk.s, pk.t, solveCfg)
						}
					}
				}(w)
			}
			wg.Wait()
			st := sv.Stats()
			if st.SessionsEvicted == 0 {
				t.Fatalf("no eviction churn; shrink the budget (stats %+v)", st)
			}
			if got, want := int64(st.SessionsLive), st.SessionsCreated-st.SessionsEvicted; got != want {
				t.Fatalf("SessionsLive = %d, want created−evicted = %d (stats %+v)", got, want, st)
			}
		})
	}
}

// TestPmaxEstimatorSpillCarry: the p_max estimator's draw ledger rides
// the spill tier — a flushed pair's stopping-rule draws are restored by a
// successor process, so a refined estimate after the restart reuses them
// (ledgered in PmaxDrawsReused) instead of resampling, with answers
// identical to an always-warm server.
func TestPmaxEstimatorSpillCarry(t *testing.T) {
	g := testGraph(40, 60)
	pairs := validPairs(g, 3)
	if len(pairs) < 2 {
		t.Skip("not enough pairs")
	}
	pk := pairs[1]
	ctx := context.Background()
	dir := t.TempDir()

	first := newSpillServer(t, dir, 0)
	coarse, err := first.PmaxEstimate(ctx, pk.s, pk.t, 0.3, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Reused != 0 || coarse.Sampled == 0 {
		t.Fatalf("cold coarse estimate %+v, want fresh sampling", coarse)
	}
	// Always-warm reference for the refined request.
	wantTight, err := first.PmaxEstimate(ctx, pk.s, pk.t, 0.12, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats().PmaxDrawsReused == 0 {
		t.Error("refinement on a warm pair ledgered no reused draws")
	}
	if err := first.SpillAll(); err != nil {
		t.Fatal(err)
	}

	// Restarted process: restore from disk, refine straight to the tight
	// accuracy. Every stopping-rule draw the first process paid for must
	// be reused.
	second := newSpillServer(t, dir, 0)
	if _, err := second.Warm(); err != nil {
		t.Fatal(err)
	}
	tight, err := second.PmaxEstimate(ctx, pk.s, pk.t, 0.12, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Estimate != wantTight.Estimate || tight.Draws != wantTight.Draws || tight.Truncated != wantTight.Truncated {
		t.Errorf("post-restart estimate %+v, want %+v", tight, wantTight)
	}
	if tight.Sampled != 0 {
		t.Errorf("post-restart refinement sampled %d draws despite the spilled ledger", tight.Sampled)
	}
	if got := second.Stats().PmaxDrawsReused; got < tight.Draws {
		t.Errorf("PmaxDrawsReused = %d, want at least the %d consumed draws", got, tight.Draws)
	}

	// A third process with a different seed must reject the files and
	// still answer deterministically for its own streams.
	third := New(g, weights.NewDegree(g), Config{Seed: 8, Workers: 2, SpillDir: dir})
	if _, err := third.PmaxEstimate(ctx, pk.s, pk.t, 0.12, 100, 0); err != nil {
		t.Fatalf("mismatched-seed server failed to fall back cold: %v", err)
	}
	if st := third.Stats(); st.SpillLoads != 0 {
		t.Errorf("mismatched-seed server claimed %d spill loads", st.SpillLoads)
	}
}
