package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/weights"
)

// testGraph builds a deterministic random connected graph with enough
// non-adjacent pairs for multi-pair traffic.
func testGraph(n, extra int) *graph.Graph {
	r := rand.New(rand.NewSource(42))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.Node(i), graph.Node(r.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(graph.Node(r.Intn(n)), graph.Node(r.Intn(n)))
	}
	return b.Build()
}

// validPairs returns up to want distinct non-adjacent (s,t) pairs.
func validPairs(g *graph.Graph, want int) []pairKey {
	var out []pairKey
	n := graph.Node(g.NumNodes())
	for s := graph.Node(0); s < n && len(out) < want; s++ {
		for t := s + 2; t < n && len(out) < want; t++ {
			if s != t && !g.HasEdge(s, t) && g.Degree(s) > 0 && g.Degree(t) > 0 {
				out = append(out, pairKey{s, t})
			}
		}
	}
	return out
}

var solveCfg = core.Config{Alpha: 0.3, Eps: 0.1, N: 50, OverrideL: 3000, MaxPmaxDraws: 50000}

// queryAll runs a fixed mixed workload (every pair × every query kind,
// with repeats) sequentially and returns the answers as strings (errors
// included: an unreachable pair must stay unreachable).
func queryAll(t *testing.T, sv *Server, pairs []pairKey, rounds int) []string {
	t.Helper()
	ctx := context.Background()
	var out []string
	for round := 0; round < rounds; round++ {
		for _, pk := range pairs {
			pm, err := sv.Pmax(ctx, pk.s, pk.t, 3000)
			out = append(out, fmt.Sprintf("pmax(%d,%d)=%.9f/%v", pk.s, pk.t, pm, err))
			invited := graph.NewNodeSetOf(sv.Graph().NumNodes(), pk.t)
			for _, v := range sv.Graph().Neighbors(pk.t) {
				invited.Add(v)
			}
			f, err := sv.EstimateF(ctx, pk.s, pk.t, invited, 3000)
			out = append(out, fmt.Sprintf("estf(%d,%d)=%.9f/%v", pk.s, pk.t, f, err))
			res, err := sv.Solve(ctx, pk.s, pk.t, solveCfg)
			if err != nil {
				out = append(out, fmt.Sprintf("solve(%d,%d)=err:%v", pk.s, pk.t, errors.Is(err, core.ErrTargetUnreachable)))
			} else {
				out = append(out, fmt.Sprintf("solve(%d,%d)=%v|%.9f", pk.s, pk.t, res.Invited.Members(), res.PStar))
			}
			mres, mf, err := sv.SolveMax(ctx, pk.s, pk.t, 3, 2000)
			if err != nil {
				out = append(out, fmt.Sprintf("smax(%d,%d)=err:%v", pk.s, pk.t, errors.Is(err, core.ErrTargetUnreachable)))
			} else {
				out = append(out, fmt.Sprintf("smax(%d,%d)=%v|%.9f|%.9f", pk.s, pk.t, mres.Invited.Members(), mres.CoveredFraction, mf))
			}
			// Estimate/Draws/Truncated are pure functions of (seed, s, t,
			// eps0, n, budget); Reused/Sampled legitimately vary with the
			// eviction schedule and are excluded from the answer identity.
			pe, err := sv.PmaxEstimate(ctx, pk.s, pk.t, 0.25, 50, 20000)
			out = append(out, fmt.Sprintf("pmaxest(%d,%d)=%.9f|%d|%v/%v", pk.s, pk.t,
				pe.Estimate, pe.Draws, pe.Truncated, err != nil))
		}
	}
	return out
}

// TestEvictThenRequeryDeterminism is the tentpole's correctness claim:
// for any eviction schedule and worker count, every query answer equals
// the never-evicted answer, because evicted pairs re-derive the same
// (seed, s, t) streams on re-admission.
func TestEvictThenRequeryDeterminism(t *testing.T) {
	g := testGraph(40, 50)
	pairs := validPairs(g, 10)
	if len(pairs) < 8 {
		t.Fatalf("only %d valid pairs", len(pairs))
	}
	baseline := New(g, weights.NewDegree(g), Config{Seed: 7, Workers: 1})
	want := queryAll(t, baseline, pairs, 2)
	if st := baseline.Stats(); st.SessionsEvicted != 0 {
		t.Fatalf("unbudgeted server evicted %d sessions", st.SessionsEvicted)
	}

	for _, cfg := range []Config{
		{Seed: 7, Workers: 4},                          // worker count must not matter
		{Seed: 7, Workers: 2, MaxPoolBytes: 64 << 10},  // constant eviction
		{Seed: 7, Workers: 1, MaxPoolBytes: 256 << 10}, // occasional eviction
		{Seed: 7, Workers: 3, Shards: 1},               // single shard
	} {
		sv := New(g, weights.NewDegree(g), cfg)
		got := queryAll(t, sv, pairs, 2)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cfg %+v: answer %d diverged:\n got %s\nwant %s", cfg, i, got[i], want[i])
			}
		}
		st := sv.Stats()
		if cfg.MaxPoolBytes > 0 {
			if st.SessionsEvicted == 0 {
				t.Errorf("cfg %+v: no eviction under a %d-byte budget (stats %+v)", cfg, cfg.MaxPoolBytes, st)
			}
			if st.BytesHeld > cfg.MaxPoolBytes {
				t.Errorf("cfg %+v: BytesHeld = %d exceeds budget %d", cfg, st.BytesHeld, cfg.MaxPoolBytes)
			}
		}
	}
}

// TestConcurrentQueriesMatchSequential: a concurrent mixed workload under
// an eviction-inducing budget returns, query for query, the sequential
// answers. Run with -race.
func TestConcurrentQueriesMatchSequential(t *testing.T) {
	g := testGraph(40, 50)
	pairs := validPairs(g, 12)
	if len(pairs) < 8 {
		t.Fatalf("only %d valid pairs", len(pairs))
	}
	baseline := New(g, weights.NewDegree(g), Config{Seed: 3, Workers: 1})
	want := queryAll(t, baseline, pairs, 1)

	sv := New(g, weights.NewDegree(g), Config{Seed: 3, Workers: 2, MaxPoolBytes: 128 << 10, Shards: 4})
	got := make([]string, len(pairs))
	var wg sync.WaitGroup
	for i, pk := range pairs {
		wg.Add(1)
		go func(i int, pk pairKey) {
			defer wg.Done()
			// Each goroutine runs its pair's full query slice; the per-pair
			// sub-slice of the sequential transcript must match exactly.
			one := queryAll(t, sv, []pairKey{pk}, 1)
			got[i] = fmt.Sprint(one)
		}(i, pk)
	}
	wg.Wait()
	const perPair = 5 // answers queryAll emits per pair per round
	for i := range pairs {
		wantOne := fmt.Sprint(want[i*perPair : (i+1)*perPair])
		if got[i] != wantOne {
			t.Errorf("pair %v: concurrent answers diverged:\n got %s\nwant %s", pairs[i], got[i], wantOne)
		}
	}
	if st := sv.Stats(); st.BytesHeld > 128<<10 {
		t.Errorf("BytesHeld = %d exceeds budget", st.BytesHeld)
	}
}

// TestStatsLedger: hit/miss accounting per kind, live/created/evicted
// counts, and the budget invariant on BytesHeld.
func TestStatsLedger(t *testing.T) {
	g := testGraph(30, 30)
	pairs := validPairs(g, 4)
	if len(pairs) < 4 {
		t.Fatalf("only %d valid pairs", len(pairs))
	}
	ctx := context.Background()
	sv := New(g, weights.NewDegree(g), Config{Seed: 1})
	for _, pk := range pairs {
		if _, err := sv.Pmax(ctx, pk.s, pk.t, 2000); err != nil {
			t.Fatal(err)
		}
		if _, err := sv.Pmax(ctx, pk.s, pk.t, 2000); err != nil {
			t.Fatal(err)
		}
	}
	st := sv.Stats()
	if st.SessionsLive != len(pairs) || st.SessionsCreated != int64(len(pairs)) {
		t.Errorf("live/created = %d/%d, want %d/%d", st.SessionsLive, st.SessionsCreated, len(pairs), len(pairs))
	}
	if c := st.ByKind[KindPmax]; c.Misses != int64(len(pairs)) || c.Hits != int64(len(pairs)) {
		t.Errorf("pmax hit/miss = %d/%d, want %d/%d", c.Hits, c.Misses, len(pairs), len(pairs))
	}
	if st.BytesHeld <= 0 {
		t.Errorf("BytesHeld = %d, want positive", st.BytesHeld)
	}
	// An invalid pair (adjacent) fails without leaving state behind.
	s := pairs[0].s
	var adj graph.Node = -1
	for _, v := range g.Neighbors(s) {
		adj = v
		break
	}
	if adj >= 0 {
		if _, err := sv.Pmax(ctx, s, adj, 1000); err == nil {
			t.Error("adjacent pair accepted")
		}
		if got := sv.Stats().SessionsLive; got != len(pairs) {
			t.Errorf("failed query leaked a session: live = %d", got)
		}
	}

	// A tiny budget evicts down to the budget, never below zero bytes.
	tiny := New(g, weights.NewDegree(g), Config{Seed: 1, MaxPoolBytes: 1 << 10})
	for _, pk := range pairs {
		if _, err := tiny.Pmax(ctx, pk.s, pk.t, 4000); err != nil {
			t.Fatal(err)
		}
	}
	st = tiny.Stats()
	if st.SessionsEvicted == 0 {
		t.Errorf("no eviction under a 1KiB budget: %+v", st)
	}
	if st.BytesHeld > 1<<10 || st.BytesHeld < 0 {
		t.Errorf("BytesHeld = %d, want within [0, 1024]", st.BytesHeld)
	}
	if st.SessionsLive > len(pairs) {
		t.Errorf("live = %d after evictions", st.SessionsLive)
	}
}

// TestPairHandle: the harness handle shares the cached sessions and
// settles accounting on Done.
func TestPairHandle(t *testing.T) {
	g := testGraph(30, 30)
	pairs := validPairs(g, 1)
	if len(pairs) == 0 {
		t.Fatal("no valid pair")
	}
	pk := pairs[0]
	ctx := context.Background()
	sv := New(g, weights.NewDegree(g), Config{Seed: 5})
	h, err := sv.Pair(pk.s, pk.t)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Eval().Pool(ctx, 5000); err != nil {
		t.Fatal(err)
	}
	h.Done()
	if st := sv.Stats(); st.BytesHeld <= 0 {
		t.Errorf("BytesHeld = %d after Done, want positive", st.BytesHeld)
	}
	// The server-level query reuses the handle's session (a hit).
	if _, err := sv.Pmax(ctx, pk.s, pk.t, 5000); err != nil {
		t.Fatal(err)
	}
	if c := sv.Stats().ByKind[KindPmax]; c.Hits != 1 || c.Misses != 0 {
		t.Errorf("pmax hit/miss = %d/%d, want 1/0 (handle session not shared)", c.Hits, c.Misses)
	}
}

// TestSolveMaxBudgetsMatchesSolveMax: the batched budget sweep must
// return, per budget, exactly what the single-budget query returns —
// same invited sets, same in-pool fractions, same decorrelated
// estimates — including across eviction (fresh server).
func TestSolveMaxBudgetsMatchesSolveMax(t *testing.T) {
	g := testGraph(40, 60)
	pairs := validPairs(g, 2)
	if len(pairs) == 0 {
		t.Skip("no valid pairs")
	}
	ctx := context.Background()
	budgets := []int{1, 2, 4, 8}
	for _, pk := range pairs {
		sweepSv := New(g, weights.NewDegree(g), Config{Seed: 5})
		results, fs, err := sweepSv.SolveMaxBudgets(ctx, pk.s, pk.t, budgets, 3000)
		if err != nil {
			if errors.Is(err, core.ErrTargetUnreachable) {
				continue
			}
			t.Fatal(err)
		}
		singleSv := New(g, weights.NewDegree(g), Config{Seed: 5})
		for i, b := range budgets {
			res, f, err := singleSv.SolveMax(ctx, pk.s, pk.t, b, 3000)
			if err != nil {
				t.Fatal(err)
			}
			gotM, wantM := results[i].Invited.Members(), res.Invited.Members()
			if fmt.Sprint(gotM) != fmt.Sprint(wantM) {
				t.Fatalf("pair %v budget %d: sweep invited %v != single %v", pk, b, gotM, wantM)
			}
			if results[i].CoveredFraction != res.CoveredFraction {
				t.Errorf("pair %v budget %d: TrainF %v != %v", pk, b, results[i].CoveredFraction, res.CoveredFraction)
			}
			if fs[i] != f {
				t.Errorf("pair %v budget %d: EstimatedF %v != %v", pk, b, fs[i], f)
			}
		}
	}
}
