package server

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/weights"
)

// validTargetsFor returns up to want candidate targets for source s:
// distinct, non-adjacent, positive-degree nodes — what a friending
// surface would rank.
func validTargetsFor(g *graph.Graph, s graph.Node, want int) []graph.Node {
	var out []graph.Node
	for t := graph.Node(0); t < graph.Node(g.NumNodes()) && len(out) < want; t++ {
		if t != s && !g.HasEdge(s, t) && g.Degree(t) > 0 {
			out = append(out, t)
		}
	}
	return out
}

// renderTopK serializes everything a TopK answer promises to be a pure
// function of (seed, query) — float bits included, so equality means
// byte identity. DrawsSpent is excluded: it legitimately varies with the
// eviction schedule (a resampled pool costs real draws), never the
// answer.
func renderTopK(res *TopKResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ranked=%v winners=%v rounds=%d planned=%d exhaustive=%d trunc=%v\n",
		res.Ranked, res.Winners(), res.Rounds, res.PlannedDraws, res.ExhaustiveDraws, res.Truncated)
	for i, c := range res.Candidates {
		fmt.Fprintf(&b, "cand %d t=%d score=%x train=%x effort=%d rounds=%d frozen=%v err=%q inv=",
			i, c.Target, math.Float64bits(c.Score), math.Float64bits(c.TrainF), c.Effort, c.Rounds, c.Frozen, c.Err)
		if c.Invited != nil {
			fmt.Fprintf(&b, "%v", c.Invited.Members())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

const topkEffort = 4096

func topkServer(workers int, maxBytes int64) (*Server, *graph.Graph) {
	g := testGraph(40, 50)
	return New(g, weights.NewDegree(g), Config{Seed: 7, Workers: workers, MaxPoolBytes: maxBytes}), g
}

// TestTopKFullBudgetMatchesExhaustive is the purity half of the
// acceptance criteria: an unbudgeted TopK must return byte-identical
// scores and invitation sets to independent SolveMax calls, and its
// ranking must be exactly the exhaustive scores' order.
func TestTopKFullBudgetMatchesExhaustive(t *testing.T) {
	ctx := context.Background()
	sv, g := topkServer(1, 0)
	s := graph.Node(0)
	targets := validTargetsFor(g, s, 12)
	if len(targets) < 8 {
		t.Fatalf("only %d targets", len(targets))
	}
	res, err := sv.TopK(ctx, TopKQuery{S: s, Targets: targets, K: 3, Budget: 3, Realizations: topkEffort})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := topkServer(1, 0)
	for i, tgt := range targets {
		mres, f, err := ref.SolveMax(ctx, s, tgt, 3, topkEffort)
		c := res.Candidates[i]
		if err != nil {
			if c.Err == "" {
				t.Fatalf("candidate %d: solvemax failed (%v) but topk scored it: %+v", i, err, c)
			}
			continue
		}
		if c.Err != "" || c.Frozen || c.Effort != topkEffort {
			t.Fatalf("candidate %d not at full effort: %+v", i, c)
		}
		if c.Score != f || c.TrainF != mres.CoveredFraction ||
			fmt.Sprint(c.Invited.Members()) != fmt.Sprint(mres.Invited.Members()) {
			t.Fatalf("candidate %d diverged from SolveMax:\ntopk  %x %x %v\nsolve %x %x %v",
				i, math.Float64bits(c.Score), math.Float64bits(c.TrainF), c.Invited.Members(),
				math.Float64bits(f), math.Float64bits(mres.CoveredFraction), mres.Invited.Members())
		}
	}
	// The ranking must be the exhaustive scores in (score desc, index
	// asc) order, errored candidates last.
	for j := 1; j < len(res.Ranked); j++ {
		a, b := res.Candidates[res.Ranked[j-1]], res.Candidates[res.Ranked[j]]
		if a.Err != "" && b.Err == "" {
			t.Fatalf("errored candidate ranked above a scored one: %v", res.Ranked)
		}
		if a.Err == "" && b.Err == "" {
			if a.Score < b.Score || (a.Score == b.Score && res.Ranked[j-1] > res.Ranked[j]) {
				t.Fatalf("ranking out of order at %d: %v", j, res.Ranked)
			}
		}
	}
	if res.Rounds != 1 || res.Truncated {
		t.Fatalf("full budget should plan one exhaustive round: %+v", res)
	}
}

// TestTopKDeterminismAcrossWorkers: the whole result (ranking, float
// bits, efforts, draw plan) is a pure function of (seed, query) for any
// worker count.
func TestTopKDeterminismAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	var want string
	var wantSpent int64
	for _, workers := range []int{1, 2, 8} {
		sv, g := topkServer(workers, 0)
		s := graph.Node(0)
		targets := validTargetsFor(g, s, 16)
		res, err := sv.TopK(ctx, TopKQuery{
			S: s, Targets: targets, K: 3, Budget: 3,
			Realizations: topkEffort, MaxDraws: int64(len(targets)) * topkEffort, // half the exhaustive bill
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := renderTopK(res)
		if want == "" {
			want, wantSpent = got, res.DrawsSpent
			continue
		}
		if got != want {
			t.Fatalf("workers=%d diverged:\n%s\nvs\n%s", workers, got, want)
		}
		if res.DrawsSpent != wantSpent {
			t.Fatalf("workers=%d: draws spent %d != %d (no eviction here)", workers, res.DrawsSpent, wantSpent)
		}
	}
}

// TestTopKEvictRestoreDeterminism: a byte budget small enough to churn
// candidates out mid-batch changes the bill, never the answer.
func TestTopKEvictRestoreDeterminism(t *testing.T) {
	ctx := context.Background()
	free, g := topkServer(2, 0)
	s := graph.Node(0)
	targets := validTargetsFor(g, s, 12)
	q := TopKQuery{S: s, Targets: targets, K: 3, Budget: 3,
		Realizations: topkEffort, MaxDraws: int64(len(targets)) * topkEffort}
	want, err := free.TopK(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	tight, _ := topkServer(2, 200_000) // a few pools' worth: constant churn
	got, err := tight.TopK(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if renderTopK(got) != renderTopK(want) {
		t.Fatalf("evicting server diverged:\n%s\nvs\n%s", renderTopK(got), renderTopK(want))
	}
	if st := tight.Stats(); st.SessionsEvicted == 0 {
		t.Fatalf("tight budget evicted nothing (bytes held %d) — test lost its teeth", st.BytesHeld)
	}
	if got.DrawsSpent < want.DrawsSpent {
		t.Fatalf("evicting run spent fewer draws (%d) than the free run (%d)?", got.DrawsSpent, want.DrawsSpent)
	}
}

// TestTopKScheduledSublinearDraws is the perf half of the acceptance
// criteria at unit-test scale: a quarter-budget schedule must spend ≥3×
// fewer draws than the exhaustive batch while still returning k winners.
func TestTopKScheduledSublinearDraws(t *testing.T) {
	ctx := context.Background()
	sv, g := topkServer(2, 0)
	s := graph.Node(0)
	targets := validTargetsFor(g, s, 16)
	exhaustive := int64(len(targets)) * 2 * topkEffort
	sched, err := sv.TopK(ctx, TopKQuery{S: s, Targets: targets, K: 2, Budget: 3,
		Realizations: topkEffort, MaxDraws: exhaustive / 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := topkServer(2, 0)
	full, err := ref.TopK(ctx, TopKQuery{S: s, Targets: targets, K: 2, Budget: 3, Realizations: topkEffort})
	if err != nil {
		t.Fatal(err)
	}
	if sched.DrawsSpent*3 > full.DrawsSpent {
		t.Fatalf("scheduled batch not ≥3x cheaper: %d vs %d draws", sched.DrawsSpent, full.DrawsSpent)
	}
	if len(sched.Winners()) != 2 {
		t.Fatalf("winners: %v", sched.Winners())
	}
	for _, wi := range sched.Winners() {
		if c := sched.Candidates[wi]; c.Err != "" || c.Effort == 0 {
			t.Fatalf("winner %d unscored: %+v", wi, c)
		}
	}
}

// TestTopKRefineResumesWarm: refining a budgeted run tops up to the
// cold larger-budget answer while paying only the incremental draws.
func TestTopKRefineResumesWarm(t *testing.T) {
	ctx := context.Background()
	sv, g := topkServer(2, 0)
	s := graph.Node(0)
	targets := validTargetsFor(g, s, 12)
	exhaustive := int64(len(targets)) * 2 * topkEffort
	first, err := sv.TopK(ctx, TopKQuery{S: s, Targets: targets, K: 3, Budget: 3,
		Realizations: topkEffort, MaxDraws: exhaustive / 4})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := sv.TopKRefine(ctx, first, exhaustive/4)
	if err != nil {
		t.Fatal(err)
	}
	cold, _ := topkServer(2, 0)
	want, err := cold.TopK(ctx, TopKQuery{S: s, Targets: targets, K: 3, Budget: 3,
		Realizations: topkEffort, MaxDraws: exhaustive / 2})
	if err != nil {
		t.Fatal(err)
	}
	if renderTopK(refined) != renderTopK(want) {
		t.Fatalf("refined result != cold run at the combined budget:\n%s\nvs\n%s",
			renderTopK(refined), renderTopK(want))
	}
	if refined.DrawsSpent >= want.DrawsSpent {
		t.Fatalf("refinement resumed nothing: spent %d, cold run spent %d", refined.DrawsSpent, want.DrawsSpent)
	}
}

// TestTopKErrorCandidates: targets the instance rejects (self, already
// adjacent) freeze with an error and rank last; the batch still answers.
func TestTopKErrorCandidates(t *testing.T) {
	ctx := context.Background()
	sv, g := topkServer(1, 0)
	s := graph.Node(0)
	adjacent := g.Neighbors(s)[0]
	targets := append([]graph.Node{s, adjacent}, validTargetsFor(g, s, 6)...)
	res, err := sv.TopK(ctx, TopKQuery{S: s, Targets: targets, K: 2, Budget: 3, Realizations: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if c := res.Candidates[i]; !c.Frozen || c.Err == "" {
			t.Fatalf("invalid target %d not frozen with error: %+v", i, c)
		}
	}
	for _, wi := range res.Winners() {
		if wi < 2 {
			t.Fatalf("invalid target ranked as winner: %v", res.Winners())
		}
	}
}

// TestTopKValidation: malformed queries fail fast.
func TestTopKValidation(t *testing.T) {
	sv, g := topkServer(1, 0)
	s := graph.Node(0)
	targets := validTargetsFor(g, s, 4)
	ctx := context.Background()
	bad := []TopKQuery{
		{S: s, K: 1, Budget: 1},
		{S: s, Targets: targets, K: 0, Budget: 1},
		{S: s, Targets: targets, K: 1, Budget: 0},
	}
	for i, q := range bad {
		if _, err := sv.TopK(ctx, q); err == nil {
			t.Errorf("query %d accepted: %+v", i, q)
		}
	}
	if _, err := sv.TopKRefine(ctx, nil, 10); err == nil {
		t.Error("refine without prior accepted")
	}
}

// TestCoalesceJoinsFlight pins the singleflight mechanics without
// relying on scheduler luck: the winner blocks inside the flight until
// the test has observed a second caller join it.
func TestCoalesceJoinsFlight(t *testing.T) {
	sv, _ := topkServer(1, 0)
	release := make(chan struct{})
	computed := 0
	key := func() (any, error) { computed++; <-release; return 42, nil }
	done := make(chan int, 2)
	go func() {
		v, _ := sv.coalesce(KindPmax, 0, 5, "x", key)
		done <- v.(int)
	}()
	// Wait for the winner to open the flight.
	for {
		if _, ok := sv.flights.Load(flightKey{gen: sv.gen.Load(), kind: KindPmax, s: 0, t: 5, params: "x"}); ok {
			break
		}
		runtime.Gosched()
	}
	go func() {
		v, _ := sv.coalesce(KindPmax, 0, 5, "x", key)
		done <- v.(int)
	}()
	// Wait for the joiner to be counted, then let the flight finish.
	for sv.coalesced.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	if a, b := <-done, <-done; a != 42 || b != 42 {
		t.Fatalf("flight answers %d, %d", a, b)
	}
	if computed != 1 {
		t.Fatalf("fn computed %d times", computed)
	}
	if got := sv.Stats().Coalesced; got != 1 {
		t.Fatalf("Coalesced = %d, want 1", got)
	}
	// A later, non-overlapping duplicate opens a fresh flight.
	v, err := sv.coalesce(KindPmax, 0, 5, "x", func() (any, error) { return 43, nil })
	if err != nil || v.(int) != 43 {
		t.Fatalf("post-flight call: %v %v", v, err)
	}
}

// TestCoalesceConcurrentQueries: racing identical SolveMax calls all get
// the same answer, and the flight table drains.
func TestCoalesceConcurrentQueries(t *testing.T) {
	sv, g := topkServer(0, 0)
	s := graph.Node(0)
	tgt := validTargetsFor(g, s, 1)[0]
	ctx := context.Background()
	const callers = 8
	answers := make([]string, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, f, err := sv.SolveMax(ctx, s, tgt, 3, 4096)
			if err != nil {
				answers[i] = err.Error()
				return
			}
			answers[i] = fmt.Sprintf("%v|%x", res.Invited.Members(), math.Float64bits(f))
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if answers[i] != answers[0] {
			t.Fatalf("caller %d got %q, caller 0 got %q", i, answers[i], answers[0])
		}
	}
	open := 0
	sv.flights.Range(func(_, _ any) bool { open++; return true })
	if open != 0 {
		t.Fatalf("%d flights left open", open)
	}
}

// TestCoalesceEpochKeying: a flight opened at one epoch must not serve a
// query that starts after ApplyDelta — the keys differ by generation.
func TestCoalesceEpochKeying(t *testing.T) {
	sv, _ := topkServer(1, 0)
	genBefore := sv.gen.Load()
	k1 := flightKey{gen: genBefore, kind: KindPmax, s: 1, t: 9, params: "p"}
	// Simulate an in-flight query at the old epoch.
	sv.flights.Store(k1, &flightCall{})
	g := sv.Graph()
	free := validPairs(g, 1)[0]
	if _, err := sv.ApplyDelta(context.Background(), &graph.Delta{Add: []graph.Edge{{U: free.s, V: free.t}}}, nil); err != nil {
		t.Fatal(err)
	}
	k2 := flightKey{gen: sv.gen.Load(), kind: KindPmax, s: 1, t: 9, params: "p"}
	if k1 == k2 {
		t.Fatal("flight keys identical across epochs")
	}
	if _, ok := sv.flights.Load(k2); ok {
		t.Fatal("new-epoch query would join the old epoch's flight")
	}
}
