package server

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/graph"
)

// sweepExpiredSpillsLocked removes spill files whose mtime is older than
// Config.SpillTTL and ledgers them in SpillFilesExpired. Callers must
// hold deltaMu: the sweep must not race ApplyDelta's own spill-dir walk
// (sweepDissolvedSpills), and serializing through the same mutex keeps
// "one directory walker at a time" an invariant rather than a hope.
//
// Expiry keys on mtime alone — rename(2) stamps a fresh mtime on every
// rewrite, so a file's age is exactly the time since its pair last
// changed. Removing the file of a pair that is still live (or about to
// be queried) is answer-invariant: pools are pure functions of
// (Seed, s, t), so the pair merely resamples from scratch instead of
// restoring. TTL'd GC trades that resample cost for a bounded spill dir.
// A no-op when SpillTTL ≤ 0 or there is no SpillDir.
func (sv *Server) sweepExpiredSpillsLocked() int {
	ttl := sv.cfg.SpillTTL
	if ttl <= 0 || sv.cfg.SpillDir == "" {
		return 0
	}
	des, err := os.ReadDir(sv.cfg.SpillDir)
	if err != nil {
		return 0
	}
	cutoff := time.Now().Add(-ttl)
	n := 0
	for _, de := range des {
		var s, t graph.Node
		// Same exact-name discipline as Warm: only files that re-render
		// to their own name are spill blobs; tmp debris and foreign files
		// are not ours to expire.
		if c, err := fmt.Sscanf(de.Name(), spillPattern, &s, &t); err != nil || c != 2 ||
			de.Name() != fmt.Sprintf(spillPattern, s, t) {
			continue
		}
		info, err := de.Info()
		if err != nil || !info.ModTime().Before(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(sv.cfg.SpillDir, de.Name())) == nil {
			n++
		}
	}
	if n > 0 {
		sv.spillExpired.Add(int64(n))
	}
	return n
}

// maybeSweepExpiredSpills is the periodic entry point, hung off the
// spill-write path: at most one sweep per TTL/4 (floored at a second),
// claimed by CAS on lastSweep so concurrent evictions never pile up on
// the directory walk, and gated by TryLock on deltaMu so a sweep never
// waits behind — or deadlocks under — a running ApplyDelta (which calls
// writeSpill while holding deltaMu and sweeps on its own way out).
func (sv *Server) maybeSweepExpiredSpills() {
	ttl := sv.cfg.SpillTTL
	if ttl <= 0 || sv.cfg.SpillDir == "" {
		return
	}
	interval := ttl / 4
	if interval < time.Second {
		interval = time.Second
	}
	now := time.Now().UnixNano()
	last := sv.lastSweep.Load()
	if now-last < int64(interval) || !sv.lastSweep.CompareAndSwap(last, now) {
		return
	}
	if !sv.deltaMu.TryLock() {
		return
	}
	defer sv.deltaMu.Unlock()
	sv.sweepExpiredSpillsLocked()
}
