package weights

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, graph.Node(i))
	}
	return b.Build()
}

func randomGraph(seed int64, n, m int) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.Node(r.Intn(n)), graph.Node(r.Intn(n)))
	}
	return b.Build()
}

func TestDegreeWeights(t *testing.T) {
	g := star(5)
	d := NewDegree(g)
	if got := d.W(1, 0); got != 0.25 {
		t.Errorf("W(1,0) = %v, want 0.25 (hub degree 4)", got)
	}
	if got := d.W(0, 3); got != 1 {
		t.Errorf("W(0,3) = %v, want 1 (leaf degree 1)", got)
	}
	if got := d.InSum(0); got != 1 {
		t.Errorf("InSum(0) = %v, want 1", got)
	}
}

func TestDegreeIsolated(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	b.EnsureNode(1)
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	d := NewDegree(g)
	if d.InSum(2) != 0 {
		t.Errorf("isolated InSum = %v, want 0", d.InSum(2))
	}
	if d.W(0, 2) != 0 {
		t.Errorf("isolated W = %v, want 0", d.W(0, 2))
	}
	st := rng.NewStream(1)
	if _, ok := d.SampleInfluencer(2, &st); ok {
		t.Error("isolated node sampled an influencer")
	}
	_ = b
}

func TestDegreeSampleUniform(t *testing.T) {
	g := star(4) // hub 0, leaves 1..3
	d := NewDegree(g)
	st := rng.NewStream(42)
	counts := map[graph.Node]int{}
	const trials = 30000
	for i := 0; i < trials; i++ {
		u, ok := d.SampleInfluencer(0, &st)
		if !ok {
			t.Fatal("hub must always select (InSum=1)")
		}
		counts[u]++
	}
	for v := graph.Node(1); v <= 3; v++ {
		frac := float64(counts[v]) / trials
		if math.Abs(frac-1.0/3) > 0.02 {
			t.Errorf("neighbor %d sampled with frequency %v, want ~1/3", v, frac)
		}
	}
}

func TestUniformValidation(t *testing.T) {
	g := star(3)
	if _, err := NewUniform(g, 0); !errors.Is(err, ErrInvalidWeight) {
		t.Errorf("NewUniform(0) error = %v, want ErrInvalidWeight", err)
	}
	if _, err := NewUniform(g, 1.5); !errors.Is(err, ErrInvalidWeight) {
		t.Errorf("NewUniform(1.5) error = %v, want ErrInvalidWeight", err)
	}
	if _, err := NewUniform(g, 0.3); err != nil {
		t.Errorf("NewUniform(0.3) error = %v, want nil", err)
	}
}

func TestUniformCapping(t *testing.T) {
	g := star(6) // hub degree 5
	u, err := NewUniform(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.W(1, 0); got != 0.2 {
		t.Errorf("capped W = %v, want 1/5", got)
	}
	if got := u.W(0, 1); got != 0.5 {
		t.Errorf("leaf W = %v, want 0.5", got)
	}
	if got := u.InSum(1); got != 0.5 {
		t.Errorf("leaf InSum = %v, want 0.5", got)
	}
	if got := u.InSum(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("hub InSum = %v, want 1", got)
	}
}

func TestUniformSampleResidual(t *testing.T) {
	g := star(2) // single edge; leaf InSum = c
	u, err := NewUniform(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	st := rng.NewStream(9)
	selected := 0
	const trials = 50000
	for i := 0; i < trials; i++ {
		if _, ok := u.SampleInfluencer(1, &st); ok {
			selected++
		}
	}
	frac := float64(selected) / trials
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("selection rate = %v, want ~0.3", frac)
	}
}

func TestExplicitValidation(t *testing.T) {
	g := star(3)
	if _, err := NewExplicit(g, func(u, v graph.Node) float64 { return 2 }); !errors.Is(err, ErrInvalidWeight) {
		t.Errorf("weight 2 accepted: %v", err)
	}
	// Two incoming edges of 0.7 each exceed the sum cap at the hub.
	if _, err := NewExplicit(g, func(u, v graph.Node) float64 { return 0.7 }); !errors.Is(err, ErrInvalidWeight) {
		t.Errorf("overspent in-sum accepted: %v", err)
	}
	if _, err := NewExplicit(g, func(u, v graph.Node) float64 { return -0.1 }); !errors.Is(err, ErrInvalidWeight) {
		t.Errorf("negative weight accepted: %v", err)
	}
}

func TestExplicitLookup(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	e, err := NewExplicit(g, func(u, v graph.Node) float64 {
		return 0.1 * float64(u+1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.W(0, 1); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("W(0,1) = %v, want 0.1", got)
	}
	if got := e.W(2, 1); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("W(2,1) = %v, want 0.3", got)
	}
	if got := e.W(0, 2); got != 0 {
		t.Errorf("non-adjacent W = %v, want 0", got)
	}
	if got := e.InSum(1); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("InSum(1) = %v, want 0.4", got)
	}
}

func TestExplicitSampleDistribution(t *testing.T) {
	// Node 2 has neighbors 0 (w=0.2) and 1 (w=0.5); residual 0.3.
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 2}, {U: 1, V: 2}})
	e, err := NewExplicit(g, func(u, v graph.Node) float64 {
		if v != 2 {
			return 0.1
		}
		if u == 0 {
			return 0.2
		}
		return 0.5
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rng.NewStream(5)
	counts := map[graph.Node]int{}
	none := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		u, ok := e.SampleInfluencer(2, &st)
		if !ok {
			none++
			continue
		}
		counts[u]++
	}
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s frequency = %v, want ~%v", name, got, want)
		}
	}
	check("neighbor 0", float64(counts[0])/trials, 0.2)
	check("neighbor 1", float64(counts[1])/trials, 0.5)
	check("none", float64(none)/trials, 0.3)
}

// TestSchemesNormalized is a property test: all schemes keep InSum ≤ 1 and
// agree with the sum of their per-edge weights.
func TestSchemesNormalized(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 3+int(uint64(seed)%20), 30)
		schemes := []Scheme{NewDegree(g)}
		if u, err := NewUniform(g, 0.4); err == nil {
			schemes = append(schemes, u)
		}
		if e, err := NewExplicit(g, func(u, v graph.Node) float64 {
			d := g.Degree(v)
			if d == 0 {
				return 0
			}
			return 0.9 / float64(d)
		}); err == nil {
			schemes = append(schemes, e)
		} else {
			return false
		}
		for _, sc := range schemes {
			for v := 0; v < g.NumNodes(); v++ {
				sum := 0.0
				for _, u := range g.Neighbors(graph.Node(v)) {
					w := sc.W(u, graph.Node(v))
					if w < 0 || w > 1 {
						return false
					}
					sum += w
				}
				if sum > 1+1e-9 {
					return false
				}
				if math.Abs(sum-sc.InSum(graph.Node(v))) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
