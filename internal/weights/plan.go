package weights

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// planKind selects the devirtualized sampling strategy for a scheme.
type planKind uint8

const (
	// planDegree: InSum is 1 for every non-isolated node, so sampling is
	// a single uniform neighbor pick.
	planDegree planKind = iota
	// planUniform: one shared residual probability per node, then a
	// uniform neighbor pick.
	planUniform
	// planAlias: a Walker alias table per node over deg(v)+1 outcomes
	// (each neighbor plus an explicit "no influencer" outcome carrying
	// the residual mass), giving O(1) draws for arbitrary weights.
	planAlias
)

// Plan is a precompiled sampling strategy for one (graph, Scheme) pair:
// it answers SampleInfluencer-equivalent draws without interface
// dispatch, per-call InSum lookups, or prefix binary searches. Build it
// once per instance (NewPlan is O(V+E)) and share it freely — a Plan is
// immutable and safe for concurrent use; the per-draw mutable state
// lives entirely in the caller's rng.Stream.
//
// The draw distribution matches Definition 1 exactly (neighbor u with
// probability w(u,v), none with the residual), but the stream
// *consumption protocol* is the Plan's own: callers must not interleave
// Plan draws and Scheme.SampleInfluencer draws on one stream and expect
// scheme-level reproducibility.
type Plan struct {
	g    *graph.Graph
	kind planKind

	// planUniform: per-node selection probability InSum(v).
	inSum []float64

	// planAlias: CSR alias tables. Node v owns slots
	// [off[v], off[v+1]), one per neighbor plus a final ℵ₀ slot; an
	// isolated node owns none. prob/alias are the Vose split: draw a
	// uniform slot j, keep it with probability prob[j], otherwise take
	// alias[j] (a node-local slot index).
	off   []int32
	prob  []float64
	alias []int32
}

// NewPlan compiles a sampling plan for s over g. The concrete scheme
// types ship specialized strategies; any other Scheme implementation
// falls back to alias tables built from its W/InSum answers, so the plan
// is always exact.
func NewPlan(g *graph.Graph, s Scheme) *Plan {
	switch sc := s.(type) {
	case *Degree:
		return &Plan{g: g, kind: planDegree}
	case *Uniform:
		n := g.NumNodes()
		p := &Plan{g: g, kind: planUniform, inSum: make([]float64, n)}
		for v := 0; v < n; v++ {
			p.inSum[v] = sc.InSum(graph.Node(v))
		}
		return p
	default:
		weightOf, inSum := aliasWeightFns(s)
		return newAliasPlan(g, weightOf, inSum)
	}
}

// newAliasPlan builds per-node Vose alias tables; weightOf(v, j, u)
// returns w(u,v) for v's j-th neighbor u.
func newAliasPlan(g *graph.Graph, weightOf func(v graph.Node, j int, u graph.Node) float64, inSum func(graph.Node) float64) *Plan {
	n := g.NumNodes()
	p := &Plan{g: g, kind: planAlias, off: make([]int32, n+1)}
	var slots int32
	for v := 0; v < n; v++ {
		p.off[v] = slots
		if d := g.Degree(graph.Node(v)); d > 0 {
			slots += int32(d) + 1
		}
	}
	p.off[n] = slots
	p.prob = make([]float64, slots)
	p.alias = make([]int32, slots)

	var sc aliasScratch
	for v := 0; v < n; v++ {
		p.buildAliasRow(graph.Node(v), weightOf, inSum, &sc)
	}
	return p
}

// aliasScratch is the reusable buffer set for Vose row construction;
// scaled doubles as the weight buffer.
type aliasScratch struct {
	scaled       []float64
	small, large []int32
}

// buildAliasRow fills node v's alias-table row in p (whose off/prob/alias
// arrays must already be sized) from the scheme's weight answers.
func (p *Plan) buildAliasRow(v graph.Node, weightOf func(v graph.Node, j int, u graph.Node) float64, inSum func(graph.Node) float64, sc *aliasScratch) {
	ns := p.g.Neighbors(v)
	if len(ns) == 0 {
		return
	}
	k := len(ns) + 1
	scaled := sc.scaled
	if cap(scaled) < k {
		scaled = make([]float64, k)
	} else {
		scaled = scaled[:k]
	}
	total := 0.0
	for j, u := range ns {
		w := weightOf(v, j, u)
		scaled[j] = w
		total += w
	}
	scaled[k-1] = 0
	if res := 1 - inSum(v); res > 0 {
		scaled[k-1] = res
		total += res
	}
	// Vose's method: split each outcome's scaled mass k·w/total into
	// a keep probability and one alias.
	prob := p.prob[p.off[v] : p.off[v]+int32(k)]
	alias := p.alias[p.off[v] : p.off[v]+int32(k)]
	small, large := sc.small[:0], sc.large[:0]
	for j := range scaled {
		scaled[j] *= float64(k) / total
		if scaled[j] < 1 {
			small = append(small, int32(j))
		} else {
			large = append(large, int32(j))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Numerical leftovers on either stack carry full kept mass.
	for _, j := range large {
		prob[j] = 1
		alias[j] = j
	}
	for _, j := range small {
		prob[j] = 1
		alias[j] = j
	}
	sc.scaled, sc.small, sc.large = scaled, small, large
}

// Sample draws v's selected influencer per Definition 1 using the
// compiled strategy: neighbor u with probability w(u,v), ok=false with
// the residual 1 − InSum(v).
func (p *Plan) Sample(v graph.Node, st *rng.Stream) (graph.Node, bool) {
	switch p.kind {
	case planDegree:
		ns := p.g.Neighbors(v)
		if len(ns) == 0 {
			return -1, false
		}
		return ns[st.Intn(len(ns))], true
	case planUniform:
		ns := p.g.Neighbors(v)
		if len(ns) == 0 {
			return -1, false
		}
		if s := p.inSum[v]; s < 1 && st.Float64() >= s {
			return -1, false
		}
		return ns[st.Intn(len(ns))], true
	default:
		lo := p.off[v]
		k := int(p.off[v+1] - lo)
		if k == 0 {
			return -1, false
		}
		j := int32(st.Intn(k))
		if st.Float64() >= p.prob[lo+j] {
			j = p.alias[lo+j]
		}
		if int(j) == k-1 {
			return -1, false // the ℵ₀ slot
		}
		return p.g.Neighbors(v)[j], true
	}
}
