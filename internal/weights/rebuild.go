package weights

import (
	"fmt"

	"repro/internal/graph"
)

// This file is the weights half of the delta-repair story: after a graph
// mutation, the scheme and its compiled sampling Plan are rebuilt for the
// epoch-N+1 graph by recomputing only the dirty nodes' state — the nodes
// whose incident edges or incoming weights actually changed — and
// copying every clean node's rows verbatim. Byte-identical rows mean
// byte-identical draws, which is what lets the engine adopt undamaged
// pool chunks across a delta.

// EdgeWeight supplies the directional weights of one undirected edge for
// Explicit rebuilds: WUV is w(U,V) (V's familiarity with U) and WVU is
// w(V,U). Edges added by a delta default to zero weight in both
// directions unless listed; an entry for an edge that survives the delta
// overrides its old weights (a pure weight update — the caller must then
// include both endpoints in the dirty set).
type EdgeWeight struct {
	U, V     graph.Node
	WUV, WVU float64
}

// Rebuild returns a Scheme equivalent to s but bound to the post-delta
// graph g, recomputing per-node state only for the dirty nodes (sorted
// distinct; from Delta.Apply, plus any endpoints of weight updates).
// updates is consulted only by Explicit schemes. Scheme implementations
// outside this package cannot be rebuilt generically and return an error
// — callers fall back to constructing the scheme anew.
func Rebuild(s Scheme, g *graph.Graph, dirty []graph.Node, updates []EdgeWeight) (Scheme, error) {
	switch sc := s.(type) {
	case *Degree:
		return NewDegree(g), nil
	case *Uniform:
		return &Uniform{g: g, c: sc.c}, nil
	case *Explicit:
		return sc.rebuild(g, dirty, updates)
	default:
		return nil, fmt.Errorf("weights: scheme %T does not support delta rebuild", s)
	}
}

// dirWeight keys one directed weight w(u→v) (i.e. w(u,v)).
type dirWeight struct{ u, v graph.Node }

func updateMap(updates []EdgeWeight) map[dirWeight]float64 {
	if len(updates) == 0 {
		return nil
	}
	m := make(map[dirWeight]float64, 2*len(updates))
	for _, uw := range updates {
		m[dirWeight{uw.U, uw.V}] = uw.WUV
		m[dirWeight{uw.V, uw.U}] = uw.WVU
	}
	return m
}

// rebuild produces the post-delta Explicit table. Clean nodes' CSR rows
// (weights, prefixes, in-sums) are copied; dirty and brand-new nodes are
// recomputed from surviving old weights, update entries, and the
// zero-weight default for unlisted new edges.
func (e *Explicit) rebuild(g *graph.Graph, dirty []graph.Node, updates []EdgeWeight) (*Explicit, error) {
	n := g.NumNodes()
	oldN := len(e.inSum)
	ne := &Explicit{
		g:      g,
		inSum:  make([]float64, n),
		offset: make([]int64, n+1),
	}
	var total int64
	for v := 0; v < n; v++ {
		ne.offset[v] = total
		total += int64(g.Degree(graph.Node(v)))
	}
	ne.offset[n] = total
	ne.w = make([]float64, total)
	ne.prefix = make([]float64, total)

	dirtySet := graph.NewNodeSet(n)
	for _, v := range dirty {
		dirtySet.Add(v)
	}
	upd := updateMap(updates)

	for v := 0; v < n; v++ {
		nv := graph.Node(v)
		base := ne.offset[v]
		if v < oldN && !dirtySet.Contains(nv) {
			// Clean: identical neighbor list and weights; copy the row.
			ob, oe := e.offset[v], e.offset[v+1]
			copy(ne.w[base:], e.w[ob:oe])
			copy(ne.prefix[base:], e.prefix[ob:oe])
			ne.inSum[v] = e.inSum[v]
			continue
		}
		sum := 0.0
		for j, u := range g.Neighbors(nv) {
			w, listed := 0.0, false
			if upd != nil {
				w, listed = upd[dirWeight{u, nv}]
			}
			if !listed && v < oldN && u < graph.Node(oldN) && e.g.HasEdge(u, nv) {
				w = e.W(u, nv)
			}
			if w < 0 || w > 1 {
				return nil, fmt.Errorf("%w: w(%d,%d)=%v not in [0,1]", ErrInvalidWeight, u, v, w)
			}
			sum += w
			ne.w[base+int64(j)] = w
			ne.prefix[base+int64(j)] = sum
		}
		if sum > 1+1e-9 {
			return nil, fmt.Errorf("%w: incoming weights of node %d sum to %v > 1 after delta", ErrInvalidWeight, v, sum)
		}
		ne.inSum[v] = sum
	}
	return ne, nil
}

// Rebuild compiles the post-delta plan for (g, s), copying every clean
// node's compiled row from p and rebuilding only dirty and new nodes. s
// must be the post-delta scheme (same concrete type the plan was compiled
// from); the result is equivalent to NewPlan(g, s) row for row.
func (p *Plan) Rebuild(g *graph.Graph, s Scheme, dirty []graph.Node) *Plan {
	n := g.NumNodes()
	switch p.kind {
	case planDegree:
		return &Plan{g: g, kind: planDegree}
	case planUniform:
		oldN := len(p.inSum)
		np := &Plan{g: g, kind: planUniform, inSum: make([]float64, n)}
		copy(np.inSum, p.inSum[:min(oldN, n)])
		for v := oldN; v < n; v++ {
			np.inSum[v] = s.InSum(graph.Node(v))
		}
		for _, v := range dirty {
			np.inSum[v] = s.InSum(v)
		}
		return np
	default:
		weightOf, inSum := aliasWeightFns(s)
		oldN := len(p.off) - 1
		np := &Plan{g: g, kind: planAlias, off: make([]int32, n+1)}
		var slots int32
		for v := 0; v < n; v++ {
			np.off[v] = slots
			if d := g.Degree(graph.Node(v)); d > 0 {
				slots += int32(d) + 1
			}
		}
		np.off[n] = slots
		np.prob = make([]float64, slots)
		np.alias = make([]int32, slots)

		dirtySet := graph.NewNodeSet(n)
		for _, v := range dirty {
			dirtySet.Add(v)
		}
		var sc aliasScratch
		for v := 0; v < n; v++ {
			nv := graph.Node(v)
			if v < oldN && !dirtySet.Contains(nv) {
				ob, oe := p.off[v], p.off[v+1]
				copy(np.prob[np.off[v]:], p.prob[ob:oe])
				copy(np.alias[np.off[v]:], p.alias[ob:oe])
				continue
			}
			np.buildAliasRow(nv, weightOf, inSum, &sc)
		}
		return np
	}
}

// aliasWeightFns returns the weight accessors newAliasPlan would use for
// s — the specialized table reads for Explicit, interface calls
// otherwise.
func aliasWeightFns(s Scheme) (func(v graph.Node, j int, u graph.Node) float64, func(graph.Node) float64) {
	if sc, ok := s.(*Explicit); ok {
		return func(v graph.Node, j int, _ graph.Node) float64 {
			return sc.w[sc.offset[v]+int64(j)]
		}, sc.InSum
	}
	return func(v graph.Node, _ int, u graph.Node) float64 {
		return s.W(u, v)
	}, s.InSum
}
