// Package weights defines the directional influence-weight schemes w(u,v)
// attached to a social graph: the familiarity of v with u, used both by the
// forward friending process (Process 1 of the paper) and by realization
// sampling (Definition 1).
//
// Every scheme must satisfy the paper's normalization Σ_{u∈N_v} w(u,v) ≤ 1
// for every node v; schemes constructed by this package guarantee it.
package weights

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// ErrInvalidWeight reports a weight outside the legal range or a node whose
// incoming weights exceed 1.
var ErrInvalidWeight = errors.New("weights: invalid weight")

// Scheme assigns the directional weight w(u,v) — v's familiarity with u —
// for every adjacent ordered pair. Implementations are immutable and safe
// for concurrent use.
type Scheme interface {
	// W returns w(u,v) for an adjacent pair; calling it for non-adjacent
	// pairs is undefined (the model sets those weights to zero and callers
	// never ask).
	W(u, v graph.Node) float64
	// InSum returns Σ_{u∈N_v} w(u,v) ∈ [0,1], the probability that v
	// selects some influencer in a realization.
	InSum(v graph.Node) float64
	// SampleInfluencer draws v's selected influencer per Definition 1:
	// neighbor u with probability w(u,v), no one (ok=false) with the
	// residual probability 1 − InSum(v). Hot loops should prefer a Plan,
	// which devirtualizes this call.
	SampleInfluencer(v graph.Node, st *rng.Stream) (u graph.Node, ok bool)
}

// Degree is the paper's experimental convention w(u,v) = 1/|N_v|
// (Sec. IV, "Friending Model", following Kempe et al.). Incoming weights
// sum to exactly 1 for every non-isolated node, so every node selects
// exactly one uniformly-random neighbor in a realization.
type Degree struct {
	g *graph.Graph
}

var _ Scheme = (*Degree)(nil)

// NewDegree returns the degree-normalized scheme for g.
func NewDegree(g *graph.Graph) *Degree { return &Degree{g: g} }

// W returns 1/deg(v).
func (d *Degree) W(_, v graph.Node) float64 {
	deg := d.g.Degree(v)
	if deg == 0 {
		return 0
	}
	return 1 / float64(deg)
}

// InSum returns 1 for non-isolated nodes, 0 otherwise.
func (d *Degree) InSum(v graph.Node) float64 {
	if d.g.Degree(v) == 0 {
		return 0
	}
	return 1
}

// SampleInfluencer picks a uniformly random neighbor.
func (d *Degree) SampleInfluencer(v graph.Node, st *rng.Stream) (graph.Node, bool) {
	ns := d.g.Neighbors(v)
	if len(ns) == 0 {
		return -1, false
	}
	return ns[st.Intn(len(ns))], true
}

// Uniform assigns the same weight c to every incoming edge of v, capped so
// that c·deg(v) ≤ 1: w(u,v) = min(c, 1/deg(v)).
type Uniform struct {
	g *graph.Graph
	c float64
}

var _ Scheme = (*Uniform)(nil)

// NewUniform returns a Uniform scheme with base weight c ∈ (0,1].
func NewUniform(g *graph.Graph, c float64) (*Uniform, error) {
	if c <= 0 || c > 1 {
		return nil, fmt.Errorf("%w: base weight %v not in (0,1]", ErrInvalidWeight, c)
	}
	return &Uniform{g: g, c: c}, nil
}

// W returns min(c, 1/deg(v)).
func (u *Uniform) W(_, v graph.Node) float64 {
	deg := u.g.Degree(v)
	if deg == 0 {
		return 0
	}
	if w := 1 / float64(deg); w < u.c {
		return w
	}
	return u.c
}

// InSum returns deg(v)·W(·,v).
func (u *Uniform) InSum(v graph.Node) float64 {
	return float64(u.g.Degree(v)) * u.W(-1, v)
}

// SampleInfluencer selects a uniformly random neighbor with probability
// InSum(v), no one otherwise.
func (u *Uniform) SampleInfluencer(v graph.Node, st *rng.Stream) (graph.Node, bool) {
	ns := u.g.Neighbors(v)
	if len(ns) == 0 {
		return -1, false
	}
	if s := u.InSum(v); s < 1 && st.Float64() >= s {
		return -1, false
	}
	return ns[st.Intn(len(ns))], true
}

// Explicit stores an arbitrary per-edge weight table. It is the general
// scheme for tests and for networks with measured familiarity.
type Explicit struct {
	g *graph.Graph
	// w[i] is the weight of the i-th CSR slot: for node v with neighbor
	// list N_v, w aligned with g's adjacency gives w(N_v[j], v).
	w      []float64
	inSum  []float64
	prefix []float64 // per-node cumulative weights for sampling
	offset []int64
}

var _ Scheme = (*Explicit)(nil)

// NewExplicit builds an explicit scheme from a weight function; weightOf
// is evaluated once per ordered adjacent pair (u, v) and must return a
// value in [0,1] with Σ_{u∈N_v} weightOf(u,v) ≤ 1+1e-9.
func NewExplicit(g *graph.Graph, weightOf func(u, v graph.Node) float64) (*Explicit, error) {
	n := g.NumNodes()
	e := &Explicit{
		g:      g,
		inSum:  make([]float64, n),
		offset: make([]int64, n+1),
	}
	var total int64
	for v := 0; v < n; v++ {
		e.offset[v] = total
		total += int64(g.Degree(graph.Node(v)))
	}
	e.offset[n] = total
	e.w = make([]float64, total)
	e.prefix = make([]float64, total)
	for v := 0; v < n; v++ {
		sum := 0.0
		base := e.offset[v]
		for j, u := range g.Neighbors(graph.Node(v)) {
			w := weightOf(u, graph.Node(v))
			if w < 0 || w > 1 {
				return nil, fmt.Errorf("%w: w(%d,%d)=%v not in [0,1]", ErrInvalidWeight, u, v, w)
			}
			sum += w
			e.w[base+int64(j)] = w
			e.prefix[base+int64(j)] = sum
		}
		if sum > 1+1e-9 {
			return nil, fmt.Errorf("%w: incoming weights of node %d sum to %v > 1", ErrInvalidWeight, v, sum)
		}
		e.inSum[v] = sum
	}
	return e, nil
}

// W returns the stored weight, or 0 for non-adjacent pairs.
func (e *Explicit) W(u, v graph.Node) float64 {
	base := e.offset[v]
	for j, x := range e.g.Neighbors(v) {
		if x == u {
			return e.w[base+int64(j)]
		}
	}
	return 0
}

// InSum returns Σ_{u∈N_v} w(u,v).
func (e *Explicit) InSum(v graph.Node) float64 { return e.inSum[v] }

// SampleInfluencer draws the influencer by inverse-CDF over the per-node
// prefix sums.
func (e *Explicit) SampleInfluencer(v graph.Node, st *rng.Stream) (graph.Node, bool) {
	lo, hi := e.offset[v], e.offset[v+1]
	if lo == hi {
		return -1, false
	}
	x := st.Float64()
	if x >= e.inSum[v] {
		return -1, false
	}
	// Binary search the prefix array.
	l, h := lo, hi-1
	for l < h {
		mid := (l + h) / 2
		if e.prefix[mid] > x {
			h = mid
		} else {
			l = mid + 1
		}
	}
	return e.g.Neighbors(v)[l-lo], true
}
