package weights

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func randomGraphAndDelta(t *testing.T, seed int64) (*graph.Graph, *graph.Graph, []graph.Node) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	n := 6 + r.Intn(30)
	b := graph.NewBuilder(n)
	for i := 0; i < 3*n; i++ {
		b.AddEdge(graph.Node(r.Intn(n)), graph.Node(r.Intn(n)))
	}
	g := b.Build()
	var d graph.Delta
	for i := 0; i < 1+r.Intn(5); i++ {
		e := graph.Edge{U: graph.Node(r.Intn(n)), V: graph.Node(r.Intn(n))}
		if e.U == e.V {
			continue
		}
		if r.Intn(2) == 0 && !g.HasEdge(e.U, e.V) {
			d.Add = append(d.Add, e)
		} else if g.HasEdge(e.U, e.V) {
			d.Remove = append(d.Remove, e)
		}
	}
	g2, dirty, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, g2, dirty
}

// sameSchemeTables asserts W and InSum agree on every adjacent pair of g.
func sameSchemeTables(t *testing.T, g *graph.Graph, got, want Scheme) {
	t.Helper()
	for v := 0; v < g.NumNodes(); v++ {
		nv := graph.Node(v)
		if got.InSum(nv) != want.InSum(nv) {
			t.Fatalf("InSum(%d) = %v, want %v", v, got.InSum(nv), want.InSum(nv))
		}
		for _, u := range g.Neighbors(nv) {
			if got.W(u, nv) != want.W(u, nv) {
				t.Fatalf("W(%d,%d) = %v, want %v", u, v, got.W(u, nv), want.W(u, nv))
			}
		}
	}
}

func TestExplicitRebuildMatchesFresh(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g, g2, dirty := randomGraphAndDelta(t, seed)
		weightOf := func(u, v graph.Node) float64 {
			return 1 / float64(2*g.Degree(v))
		}
		old, err := NewExplicit(g, weightOf)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt, err := Rebuild(old, g2, dirty, nil)
		if err != nil {
			t.Fatal(err)
		}
		// The fresh reference keeps surviving edges' old weights and gives
		// new edges weight zero — exactly the rebuild contract.
		fresh, err := NewExplicit(g2, func(u, v graph.Node) float64 {
			if int(v) < g.NumNodes() && int(u) < g.NumNodes() && g.HasEdge(u, v) {
				return weightOf(u, v)
			}
			return 0
		})
		if err != nil {
			t.Fatal(err)
		}
		sameSchemeTables(t, g2, rebuilt, fresh)
	}
}

func TestExplicitRebuildWithUpdates(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	old, err := NewExplicit(g, func(u, v graph.Node) float64 { return 0.25 })
	if err != nil {
		t.Fatal(err)
	}
	d := &graph.Delta{Add: []graph.Edge{{U: 2, V: 3}}}
	g2, dirty, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	// Weight the new edge and override a surviving one (0-1), whose
	// endpoints we add to the dirty set per the weight-update contract.
	updates := []EdgeWeight{
		{U: 2, V: 3, WUV: 0.5, WVU: 0.125},
		{U: 0, V: 1, WUV: 0.75, WVU: 0.0625},
	}
	dirty = append(dirty, 0, 1)
	got, err := Rebuild(old, g2, dirty, updates)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		u, v graph.Node
		want float64
	}{
		{2, 3, 0.5}, {3, 2, 0.125}, // added edge, both directions
		{0, 1, 0.75}, {1, 0, 0.0625}, // overridden survivor
		{1, 2, 0.25}, {2, 1, 0.25}, // untouched survivor
	}
	for _, c := range cases {
		if w := got.W(c.u, c.v); w != c.want {
			t.Errorf("W(%d,%d) = %v, want %v", c.u, c.v, w, c.want)
		}
	}
	if s := got.InSum(1); math.Abs(s-(0.75+0.25)) > 1e-12 {
		t.Errorf("InSum(1) = %v, want 1", s)
	}
}

func TestExplicitRebuildRejectsOverflow(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	old, err := NewExplicit(g, func(u, v graph.Node) float64 { return 0.9 })
	if err != nil {
		t.Fatal(err)
	}
	d := &graph.Delta{Add: []graph.Edge{{U: 1, V: 2}}}
	g2, dirty, err := d.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	// 0.9 (surviving 0→1) + 0.2 (new 2→1) > 1 must be rejected.
	if _, err := Rebuild(old, g2, dirty, []EdgeWeight{{U: 1, V: 2, WUV: 0.3, WVU: 0.2}}); err == nil {
		t.Error("incoming-sum overflow accepted")
	}
}

// TestPlanRebuildMatchesFresh: for every scheme kind, the incrementally
// rebuilt plan must draw identically to a freshly compiled one — same
// stream, same answers — which is the row-for-row equivalence the pool
// repair path needs.
func TestPlanRebuildMatchesFresh(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, g2, dirty := randomGraphAndDelta(t, 100+seed)

		degree := func() (Scheme, Scheme) { return NewDegree(g), NewDegree(g2) }
		uniform := func() (Scheme, Scheme) {
			a, err := NewUniform(g, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewUniform(g2, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			return a, b
		}
		explicit := func() (Scheme, Scheme) {
			a, err := NewExplicit(g, func(u, v graph.Node) float64 {
				return 1 / float64(2*g.Degree(v))
			})
			if err != nil {
				t.Fatal(err)
			}
			bs, err := Rebuild(a, g2, dirty, nil)
			if err != nil {
				t.Fatal(err)
			}
			return a, bs
		}

		for name, mk := range map[string]func() (Scheme, Scheme){
			"degree": degree, "uniform": uniform, "explicit": explicit,
		} {
			oldS, newS := mk()
			oldPlan := NewPlan(g, oldS)
			rebuilt := oldPlan.Rebuild(g2, newS, dirty)
			fresh := NewPlan(g2, newS)
			for v := 0; v < g2.NumNodes(); v++ {
				st1 := rng.DerivedStream(42, 7, uint64(v))
				st2 := rng.DerivedStream(42, 7, uint64(v))
				for i := 0; i < 50; i++ {
					u1, ok1 := rebuilt.Sample(graph.Node(v), &st1)
					u2, ok2 := fresh.Sample(graph.Node(v), &st2)
					if u1 != u2 || ok1 != ok2 {
						t.Fatalf("%s seed %d: Sample(%d) draw %d: (%d,%v) != (%d,%v)",
							name, seed, v, i, u1, ok1, u2, ok2)
					}
				}
			}
		}
	}
}
