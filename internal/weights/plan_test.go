package weights

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// opaque hides the concrete scheme type from NewPlan's type switch, so
// the plan is forced onto the generic alias-table fallback.
type opaque struct{ Scheme }

// planFracs draws trials samples for v and returns each neighbor's
// selection frequency plus the no-influencer frequency.
func planFracs(p *Plan, v graph.Node, trials int, seed int64) (map[graph.Node]float64, float64) {
	st := rng.NewStream(seed)
	counts := map[graph.Node]int{}
	none := 0
	for i := 0; i < trials; i++ {
		if u, ok := p.Sample(v, &st); ok {
			counts[u]++
		} else {
			none++
		}
	}
	fr := make(map[graph.Node]float64, len(counts))
	for u, c := range counts {
		fr[u] = float64(c) / float64(trials)
	}
	return fr, float64(none) / float64(trials)
}

func TestPlanDegreeUniformPick(t *testing.T) {
	g := star(4) // hub 0, leaves 1..3
	p := NewPlan(g, NewDegree(g))
	fr, none := planFracs(p, 0, 30000, 42)
	if none != 0 {
		t.Errorf("degree plan returned no-influencer with frequency %v, want 0", none)
	}
	for v := graph.Node(1); v <= 3; v++ {
		if math.Abs(fr[v]-1.0/3) > 0.02 {
			t.Errorf("neighbor %d frequency = %v, want ~1/3", v, fr[v])
		}
	}
}

func TestPlanUniformResidual(t *testing.T) {
	g := star(2) // single edge; leaf InSum = c
	u, err := NewUniform(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlan(g, u)
	fr, none := planFracs(p, 1, 50000, 9)
	if math.Abs(none-0.7) > 0.01 {
		t.Errorf("no-influencer frequency = %v, want ~0.7", none)
	}
	if math.Abs(fr[0]-0.3) > 0.01 {
		t.Errorf("selection frequency = %v, want ~0.3", fr[0])
	}
}

// explicitFixture is the TestExplicitSampleDistribution instance: node 2
// selects 0 with probability 0.2, 1 with 0.5, no one with 0.3.
func explicitFixture(t *testing.T) (*graph.Graph, *Explicit) {
	t.Helper()
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 2}, {U: 1, V: 2}})
	e, err := NewExplicit(g, func(u, v graph.Node) float64 {
		if v != 2 {
			return 0.1
		}
		if u == 0 {
			return 0.2
		}
		return 0.5
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, e
}

func checkExplicitFracs(t *testing.T, fr map[graph.Node]float64, none float64) {
	t.Helper()
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s frequency = %v, want ~%v", name, got, want)
		}
	}
	check("neighbor 0", fr[0], 0.2)
	check("neighbor 1", fr[1], 0.5)
	check("none", none, 0.3)
}

func TestPlanExplicitAliasDistribution(t *testing.T) {
	g, e := explicitFixture(t)
	fr, none := planFracs(NewPlan(g, e), 2, 100000, 5)
	checkExplicitFracs(t, fr, none)
}

// The generic fallback must reproduce the same distribution from nothing
// but the Scheme interface (W and InSum answers).
func TestPlanGenericFallbackDistribution(t *testing.T) {
	g, e := explicitFixture(t)
	fr, none := planFracs(NewPlan(g, opaque{e}), 2, 100000, 5)
	checkExplicitFracs(t, fr, none)
}

func TestPlanIsolatedNode(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	schemes := []Scheme{NewDegree(g)}
	if u, err := NewUniform(g, 0.4); err == nil {
		schemes = append(schemes, u)
	}
	if e, err := NewExplicit(g, func(u, v graph.Node) float64 { return 0.5 }); err == nil {
		schemes = append(schemes, e, opaque{e})
	}
	for _, s := range schemes {
		p := NewPlan(g, s)
		st := rng.NewStream(1)
		for i := 0; i < 100; i++ {
			if _, ok := p.Sample(2, &st); ok {
				t.Fatalf("%T plan sampled an influencer for an isolated node", s)
			}
		}
	}
}
