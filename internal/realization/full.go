package realization

import (
	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/rng"
)

// NoSelection is the encoding of the artificial user ℵ₀ in a full
// realization: g(v) = NoSelection means v selected no influencer.
const NoSelection graph.Node = -1

// Full is an explicit realization per Definition 1: the complete mapping
// g: V → V ∪ {ℵ₀}. It exists for validation — the lazy Sampler must agree
// with running Process 2 on a Full realization — and for small-graph
// exhaustive analyses.
type Full struct {
	// Sel[v] is g(v): the influencer v selected, or NoSelection.
	Sel []graph.Node
}

// SampleFull draws a complete realization: every node independently
// selects per Definition 1.
func SampleFull(in *ltm.Instance, st *rng.Stream) *Full {
	g := in.Graph()
	w := in.Weights()
	sel := make([]graph.Node, g.NumNodes())
	for v := range sel {
		if u, ok := w.SampleInfluencer(graph.Node(v), st); ok {
			sel[v] = u
		} else {
			sel[v] = NoSelection
		}
	}
	return &Full{Sel: sel}
}

// TGOf runs Algorithm 1 on the full realization: walk backward from t
// following g until ℵ₀, a cycle, the initiator, or N_s is reached.
func (f *Full) TGOf(in *ltm.Instance) TG {
	nsSet := in.InitialFriendSet()
	s := in.S()
	visited := graph.NewNodeSet(in.Graph().NumNodes())
	var path []graph.Node
	cur := in.T()
	path = append(path, cur)
	visited.Add(cur)
	for {
		u := f.Sel[cur]
		switch {
		case u == NoSelection:
			return TG{Outcome: Type0}
		case u == s:
			return TG{Outcome: Type0}
		case nsSet.Contains(u):
			return TG{Path: path, Outcome: Type1}
		case visited.Contains(u):
			return TG{Outcome: Type0}
		}
		path = append(path, u)
		visited.Add(u)
		cur = u
	}
}

// Succeeds runs Process 2 forward on the full realization under
// invitation set invited and reports whether t ∈ H∞(g, I). It is the
// reference semantics that Lemma 2 relates to TGOf.
func (f *Full) Succeeds(in *ltm.Instance, invited *graph.NodeSet) bool {
	g := in.Graph()
	t := in.T()
	inH := in.InitialFriendSet().Clone()
	// Repeatedly add invited nodes whose selection is already in H.
	// A node activates at most once; iterate to fixpoint.
	frontier := in.InitialFriends()
	queue := make([]graph.Node, 0, len(frontier))
	queue = append(queue, frontier...)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		// Any neighbor u with g(u) = v activates if invited.
		for _, u := range g.Neighbors(v) {
			if inH.Contains(u) || !invited.Contains(u) {
				continue
			}
			if f.Sel[u] == v {
				inH.Add(u)
				if u == t {
					return true
				}
				queue = append(queue, u)
			}
		}
	}
	return inH.Contains(t)
}
