// Package realization implements the paper's realization machinery
// (Definition 1, Algorithm 1, Process 2): the derandomization of the
// friending process in which every node selects at most one influencer
// among its friends, and the backward path t(g) that characterizes success
// (Lemma 2: t befriends s under g and invitation set I iff t(g) ⊆ I), in
// the reverse-sampling style of Borgs et al. (Remark 3). Batch sampling
// and the estimators built on this primitive live in internal/engine.
//
// A subtle invariant: the backward walk can never reach the initiator s.
// Every node appended to the path lies outside N_s (the walk stops the
// moment N_s is reached), only members of N_s are adjacent to s, and the
// instance forbids an s–t edge — so no path node can select s. The
// sampler still guards the case defensively and classifies it type-0,
// which is also the model-consistent reading (Process 1 never places s
// itself in the friend set C, so a selection of s could never fire).
package realization

import (
	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/rng"
	"repro/internal/weights"
)

// Outcome classifies a sampled realization.
type Outcome uint8

const (
	// Type0 means t(g) contains the artificial user ℵ₀ (no selection,
	// a cycle, or the initiator was reached): no invitation set succeeds.
	Type0 Outcome = iota + 1
	// Type1 means the backward walk reached N_s: inviting all of t(g)
	// makes t a friend of s.
	Type1
)

// TG is one sampled backward path t(g).
type TG struct {
	// Path lists the nodes of t(g) in walk order, starting with t.
	// For a Type1 realization, inviting exactly these nodes suffices
	// under g. Empty for Type0 (the path is unusable, so it is dropped).
	Path []graph.Node
	// Outcome is the realization's type.
	Outcome Outcome
}

// Sampler draws t(g) paths for one instance. Not safe for concurrent use;
// derive one per goroutine (NewSampler is cheap: two O(n) arrays; the
// instance's sampling plan is shared, built once).
type Sampler struct {
	in   *ltm.Instance
	plan *weights.Plan
	// visitedEpoch implements an O(1)-reset visited set for cycle
	// detection.
	visitedEpoch []uint32
	epoch        uint32
	buf          []graph.Node

	// Touch accumulation (BeginTouches/Touches): the distinct nodes whose
	// influencer rows the walks consulted since BeginTouches. touchEpoch is
	// the same O(1)-reset trick as visitedEpoch, but spanning many draws;
	// it is allocated lazily so samplers that never collect pay nothing.
	collecting bool
	touchEpoch []uint32
	touchGen   uint32
	touches    []graph.Node
}

// NewSampler returns a sampler for the instance. Influencer draws go
// through the instance's compiled weights.Plan, so the per-step loop
// carries no interface dispatch or per-call InSum/prefix work.
func NewSampler(in *ltm.Instance) *Sampler {
	return &Sampler{
		in:           in,
		plan:         in.Plan(),
		visitedEpoch: make([]uint32, in.Graph().NumNodes()),
	}
}

// BeginTouches starts accumulating the distinct nodes the following draws
// touch. A draw "touches" every node whose influencer selection it reads —
// each path node starting with t — plus the node the selection returned
// (including the N_s member that ends a Type1 walk, which is not part of
// t(g)). Together these are exactly the nodes whose adjacency row, incoming
// weights, or N_s membership the draw's outcome depends on: a graph delta
// leaving all of them untouched replays the draw byte-identically, which is
// the delta-repair damage test. Accumulation spans draws until the next
// BeginTouches; read the set with Touches.
func (sp *Sampler) BeginTouches() {
	if sp.touchEpoch == nil {
		sp.touchEpoch = make([]uint32, len(sp.visitedEpoch))
	}
	sp.collecting = true
	sp.touches = sp.touches[:0]
	sp.touchGen++
	if sp.touchGen == 0 { // wrapped: clear and restart
		for i := range sp.touchEpoch {
			sp.touchEpoch[i] = 0
		}
		sp.touchGen = 1
	}
}

// Touches returns the distinct nodes touched since BeginTouches, in
// first-touch order, and stops collecting. The slice aliases the sampler's
// internal buffer and is valid only until the next BeginTouches.
func (sp *Sampler) Touches() []graph.Node {
	sp.collecting = false
	return sp.touches
}

// touch records one touched node (collecting mode only).
func (sp *Sampler) touch(v graph.Node) {
	if sp.touchEpoch[v] != sp.touchGen {
		sp.touchEpoch[v] = sp.touchGen
		sp.touches = append(sp.touches, v)
	}
}

// SampleTG draws one realization lazily (only nodes on the backward walk
// select an influencer — Remark 3) and returns its t(g). The returned
// Path is freshly allocated for Type1 outcomes.
func (sp *Sampler) SampleTG(st *rng.Stream) TG {
	tg := sp.SampleTGView(st)
	if tg.Outcome == Type1 {
		path := make([]graph.Node, len(tg.Path))
		copy(path, tg.Path)
		tg.Path = path
	}
	return tg
}

// SampleTGView is SampleTG without the defensive copy: the returned Path
// aliases the sampler's internal buffer and is valid only until the next
// draw. It consumes the random stream identically to SampleTG. Callers
// that retain paths (the engine's arena writer) must copy the contents.
func (sp *Sampler) SampleTGView(st *rng.Stream) TG {
	sp.epoch++
	if sp.epoch == 0 { // wrapped: clear and restart
		for i := range sp.visitedEpoch {
			sp.visitedEpoch[i] = 0
		}
		sp.epoch = 1
	}
	in := sp.in
	nsSet := in.InitialFriendSet()
	s := in.S()

	sp.buf = sp.buf[:0]
	cur := in.T()
	sp.buf = append(sp.buf, cur)
	sp.visitedEpoch[cur] = sp.epoch
	if sp.collecting {
		sp.touch(cur)
	}
	for {
		u, ok := sp.plan.Sample(cur, st)
		if sp.collecting && ok {
			sp.touch(u)
		}
		switch {
		case !ok:
			// v selected no one: ℵ₀ (line 5 of Alg. 1).
			return TG{Outcome: Type0}
		case u == s:
			// Unreachable in a valid instance (see package doc); kept as a
			// defensive, model-consistent type-0 classification.
			return TG{Outcome: Type0}
		case nsSet.Contains(u):
			// Reached N_s (line 7): success, u itself is not part of t(g).
			return TG{Path: sp.buf, Outcome: Type1}
		case sp.visitedEpoch[u] == sp.epoch:
			// Cycle (line 6).
			return TG{Outcome: Type0}
		}
		sp.buf = append(sp.buf, u)
		sp.visitedEpoch[u] = sp.epoch
		cur = u
	}
}

// Covered reports whether invitation set invited covers this realization
// (t(g) ⊆ I). Type0 realizations are never covered.
func (tg TG) Covered(invited *graph.NodeSet) bool {
	if tg.Outcome != Type1 {
		return false
	}
	for _, v := range tg.Path {
		if !invited.Contains(v) {
			return false
		}
	}
	return true
}

// Pool sampling, coverage counting and the reverse f-estimator live in
// internal/engine, which stores pools in a compact CSR layout and samples
// in worker-count-independent chunks; this package provides only the
// single-draw primitive it is built on.
