// Package realization implements the paper's realization machinery
// (Definition 1, Algorithm 1, Process 2): the derandomization of the
// friending process in which every node selects at most one influencer
// among its friends, the backward path t(g) that characterizes success
// (Lemma 2: t befriends s under g and invitation set I iff t(g) ⊆ I), and
// the reverse-sampling estimator of f(I) (Corollary 1) in the style of
// Borgs et al. (Remark 3).
//
// A subtle invariant: the backward walk can never reach the initiator s.
// Every node appended to the path lies outside N_s (the walk stops the
// moment N_s is reached), only members of N_s are adjacent to s, and the
// instance forbids an s–t edge — so no path node can select s. The
// sampler still guards the case defensively and classifies it type-0,
// which is also the model-consistent reading (Process 1 never places s
// itself in the friend set C, so a selection of s could never fire).
package realization

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// Outcome classifies a sampled realization.
type Outcome uint8

const (
	// Type0 means t(g) contains the artificial user ℵ₀ (no selection,
	// a cycle, or the initiator was reached): no invitation set succeeds.
	Type0 Outcome = iota + 1
	// Type1 means the backward walk reached N_s: inviting all of t(g)
	// makes t a friend of s.
	Type1
)

// TG is one sampled backward path t(g).
type TG struct {
	// Path lists the nodes of t(g) in walk order, starting with t.
	// For a Type1 realization, inviting exactly these nodes suffices
	// under g. Empty for Type0 (the path is unusable, so it is dropped).
	Path []graph.Node
	// Outcome is the realization's type.
	Outcome Outcome
}

// Sampler draws t(g) paths for one instance. Not safe for concurrent use;
// derive one per goroutine (NewSampler is cheap: two O(n) arrays).
type Sampler struct {
	in *ltm.Instance
	// visitedEpoch implements an O(1)-reset visited set for cycle
	// detection.
	visitedEpoch []uint32
	epoch        uint32
	buf          []graph.Node
}

// NewSampler returns a sampler for the instance.
func NewSampler(in *ltm.Instance) *Sampler {
	return &Sampler{
		in:           in,
		visitedEpoch: make([]uint32, in.Graph().NumNodes()),
	}
}

// SampleTG draws one realization lazily (only nodes on the backward walk
// select an influencer — Remark 3) and returns its t(g). The returned
// Path is freshly allocated for Type1 outcomes.
func (sp *Sampler) SampleTG(rand *rand.Rand) TG {
	sp.epoch++
	if sp.epoch == 0 { // wrapped: clear and restart
		for i := range sp.visitedEpoch {
			sp.visitedEpoch[i] = 0
		}
		sp.epoch = 1
	}
	in := sp.in
	w := in.Weights()
	nsSet := in.InitialFriendSet()
	s := in.S()

	sp.buf = sp.buf[:0]
	cur := in.T()
	sp.buf = append(sp.buf, cur)
	sp.visitedEpoch[cur] = sp.epoch
	for {
		u, ok := w.SampleInfluencer(cur, rand)
		switch {
		case !ok:
			// v selected no one: ℵ₀ (line 5 of Alg. 1).
			return TG{Outcome: Type0}
		case u == s:
			// Unreachable in a valid instance (see package doc); kept as a
			// defensive, model-consistent type-0 classification.
			return TG{Outcome: Type0}
		case nsSet.Contains(u):
			// Reached N_s (line 7): success, u itself is not part of t(g).
			path := make([]graph.Node, len(sp.buf))
			copy(path, sp.buf)
			return TG{Path: path, Outcome: Type1}
		case sp.visitedEpoch[u] == sp.epoch:
			// Cycle (line 6).
			return TG{Outcome: Type0}
		}
		sp.buf = append(sp.buf, u)
		sp.visitedEpoch[u] = sp.epoch
		cur = u
	}
}

// Covered reports whether invitation set invited covers this realization
// (t(g) ⊆ I). Type0 realizations are never covered.
func (tg TG) Covered(invited *graph.NodeSet) bool {
	if tg.Outcome != Type1 {
		return false
	}
	for _, v := range tg.Path {
		if !invited.Contains(v) {
			return false
		}
	}
	return true
}

// Pool is a batch of sampled realizations B_l: the type-1 paths plus the
// count of type-0 draws. It is the input to the RAF framework (Alg. 3).
type Pool struct {
	// Type1 holds the t(g) paths of the type-1 realizations (B_l¹).
	Type1 [][]graph.Node
	// Total is l, the total number of realizations drawn (|B_l|).
	Total int64
}

// NumType1 returns |B_l¹|.
func (p *Pool) NumType1() int { return len(p.Type1) }

// FractionType1 returns |B_l¹|/l, the pool's estimate of p_max.
func (p *Pool) FractionType1() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(len(p.Type1)) / float64(p.Total)
}

// CoverageCount returns F(B_l, I): the number of pooled realizations
// covered by invited.
func (p *Pool) CoverageCount(invited *graph.NodeSet) int64 {
	var covered int64
	for _, path := range p.Type1 {
		ok := true
		for _, v := range path {
			if !invited.Contains(v) {
				ok = false
				break
			}
		}
		if ok {
			covered++
		}
	}
	return covered
}

// EstimateF returns F(B_l, I)/l, the pool's estimate of f(I).
func (p *Pool) EstimateF(invited *graph.NodeSet) float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.CoverageCount(invited)) / float64(p.Total)
}

// SamplePool draws l realizations in parallel (workers 0 = all CPUs) and
// collects the type-1 paths. Deterministic for fixed (seed, l, workers).
func SamplePool(ctx context.Context, in *ltm.Instance, l int64, workers int, seed int64) (*Pool, error) {
	if l <= 0 {
		return nil, fmt.Errorf("realization: pool size %d must be positive", l)
	}
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	if int64(workers) > l {
		workers = int(l)
	}
	per := l / int64(workers)
	rem := l % int64(workers)
	parts := make([][][]graph.Node, workers)
	err := parallel.For(ctx, workers, workers, func(w int) {
		n := per
		if int64(w) < rem {
			n++
		}
		r := rng.DeriveRand(seed, uint64(w))
		sp := NewSampler(in)
		var acc [][]graph.Node
		for i := int64(0); i < n; i++ {
			tg := sp.SampleTG(r)
			if tg.Outcome == Type1 {
				acc = append(acc, tg.Path)
			}
		}
		parts[w] = acc
	})
	if err != nil {
		return nil, err
	}
	pool := &Pool{Total: l}
	for _, part := range parts {
		pool.Type1 = append(pool.Type1, part...)
	}
	return pool, nil
}

// EstimateFReverse estimates f(invited) with trials independent reverse
// samples (Corollary 1): the fraction of draws whose t(g) is covered.
// It is the fast estimator used throughout the experiments; Lemma 1
// guarantees it agrees with the forward simulator.
func EstimateFReverse(ctx context.Context, in *ltm.Instance, invited *graph.NodeSet, trials int64, workers int, seed int64) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("realization: trials %d must be positive", trials)
	}
	hits, err := parallel.SumUint64(ctx, trials, workers, func(worker int, n int64) uint64 {
		r := rng.DeriveRand(seed, uint64(worker))
		sp := NewSampler(in)
		var h uint64
		for i := int64(0); i < n; i++ {
			if sp.SampleTG(r).Covered(invited) {
				h++
			}
		}
		return h
	})
	if err != nil {
		return 0, err
	}
	return float64(hits) / float64(trials), nil
}
