package realization

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/weights"
)

func line(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.Node(i), graph.Node(i+1))
	}
	return b.Build()
}

func randomConnected(seed int64, n, extra int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.Node(i), graph.Node(rng.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(graph.Node(rng.Intn(n)), graph.Node(rng.Intn(n)))
	}
	return b.Build()
}

func mustInstance(t *testing.T, g *graph.Graph, s, tt graph.Node) *ltm.Instance {
	t.Helper()
	in, err := ltm.NewInstance(g, weights.NewDegree(g), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// On the line 0-1-2-3 with degree weights every node selects exactly one
// neighbor. t=3 selects 2 surely (degree 1); 2 selects 1 or 3 with prob
// 1/2 each. Selecting 3 is a cycle (type-0); selecting 1 reaches N_s.
// Hence p_max = 1/2 and t(g) = [3 2] for every type-1 draw.
func TestSampleTGLine(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	sp := NewSampler(in)
	rng := rand.New(rand.NewSource(5))
	type1 := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		tg := sp.SampleTG(rng)
		switch tg.Outcome {
		case Type1:
			type1++
			if len(tg.Path) != 2 || tg.Path[0] != 3 || tg.Path[1] != 2 {
				t.Fatalf("t(g) = %v, want [3 2]", tg.Path)
			}
		case Type0:
			if tg.Path != nil {
				t.Fatal("type-0 should carry no path")
			}
		default:
			t.Fatalf("invalid outcome %v", tg.Outcome)
		}
	}
	frac := float64(type1) / trials
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("type-1 fraction = %v, want ~0.5", frac)
	}
}

// Star with hub h adjacent to s, t and leaves: t (degree 1) must select h;
// h selects uniformly among its deg(h) neighbors and only selecting s... —
// in this topology h IS a friend of s, so the walk always ends at N_s
// immediately: p_max = 1.
func TestSampleTGStarAlwaysType1(t *testing.T) {
	// s=0 - 1(hub) - t=2, hub also adjacent to 3,4.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(1, 4)
	g := b.Build()
	in := mustInstance(t, g, 0, 2)
	sp := NewSampler(in)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		tg := sp.SampleTG(rng)
		if tg.Outcome != Type1 {
			t.Fatal("walk must terminate at the hub ∈ N_s immediately")
		}
		if len(tg.Path) != 1 || tg.Path[0] != 2 {
			t.Fatalf("t(g) = %v, want [2]", tg.Path)
		}
	}
}

// TestSampleTGPathInvariants checks the structural invariants of every
// sampled t(g): the path starts at t, consecutive nodes are adjacent,
// nodes are distinct, and — the subtle one — no path node is s or a member
// of N_s. (Reaching s is in fact impossible: every path node lies outside
// N_s, and only N_s members are adjacent to s; see the package doc.)
func TestSampleTGPathInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := randomConnected(seed, 18, 24)
		s, tt := graph.Node(0), graph.Node(17)
		if g.HasEdge(s, tt) {
			return true
		}
		in, err := ltm.NewInstance(g, weights.NewDegree(g), s, tt)
		if err != nil {
			return true
		}
		sp := NewSampler(in)
		rng := rand.New(rand.NewSource(seed))
		nsSet := in.InitialFriendSet()
		for i := 0; i < 300; i++ {
			tg := sp.SampleTG(rng)
			if tg.Outcome != Type1 {
				continue
			}
			if len(tg.Path) == 0 || tg.Path[0] != tt {
				return false
			}
			seen := map[graph.Node]bool{}
			for j, v := range tg.Path {
				if v == s || nsSet.Contains(v) || seen[v] {
					return false
				}
				seen[v] = true
				if j > 0 && !g.HasEdge(tg.Path[j-1], v) {
					return false
				}
			}
			// The walk's final hop must connect to N_s.
			last := tg.Path[len(tg.Path)-1]
			hasNsNeighbor := false
			for _, u := range g.Neighbors(last) {
				if nsSet.Contains(u) {
					hasNsNeighbor = true
					break
				}
			}
			if !hasNsNeighbor {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCovered(t *testing.T) {
	tg := TG{Path: []graph.Node{3, 2}, Outcome: Type1}
	if !tg.Covered(graph.NewNodeSetOf(4, 2, 3)) {
		t.Error("exact cover rejected")
	}
	if tg.Covered(graph.NewNodeSetOf(4, 3)) {
		t.Error("partial cover accepted")
	}
	t0 := TG{Outcome: Type0}
	full := graph.NewNodeSet(4)
	full.Fill()
	if t0.Covered(full) {
		t.Error("type-0 covered by full set")
	}
}

func TestSamplePool(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	pool, err := SamplePool(context.Background(), in, 20000, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Total != 20000 {
		t.Errorf("Total = %d", pool.Total)
	}
	if frac := pool.FractionType1(); math.Abs(frac-0.5) > 0.02 {
		t.Errorf("FractionType1 = %v, want ~0.5", frac)
	}
	invited := graph.NewNodeSetOf(4, 2, 3)
	if got, want := pool.EstimateF(invited), pool.FractionType1(); got != want {
		t.Errorf("EstimateF(full path) = %v, want %v (all type-1 covered)", got, want)
	}
	if got := pool.EstimateF(graph.NewNodeSetOf(4, 3)); got != 0 {
		t.Errorf("EstimateF(partial) = %v, want 0", got)
	}
	if got := pool.CoverageCount(invited); got != int64(pool.NumType1()) {
		t.Errorf("CoverageCount = %d, want %d", got, pool.NumType1())
	}
}

func TestSamplePoolValidation(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	if _, err := SamplePool(context.Background(), in, 0, 1, 1); err == nil {
		t.Error("zero pool size accepted")
	}
}

func TestSamplePoolDeterministic(t *testing.T) {
	g := randomConnected(3, 30, 40)
	if g.HasEdge(0, 29) {
		t.Skip("adjacent s,t")
	}
	in := mustInstance(t, g, 0, 29)
	p1, err := SamplePool(context.Background(), in, 5000, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := SamplePool(context.Background(), in, 5000, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if p1.NumType1() != p2.NumType1() {
		t.Fatalf("type-1 counts differ: %d vs %d", p1.NumType1(), p2.NumType1())
	}
	for i := range p1.Type1 {
		if len(p1.Type1[i]) != len(p2.Type1[i]) {
			t.Fatal("paths differ between identical seeds")
		}
		for j := range p1.Type1[i] {
			if p1.Type1[i][j] != p2.Type1[i][j] {
				t.Fatal("paths differ between identical seeds")
			}
		}
	}
}

// TestLazyMatchesFullSampler validates Remark 3: the lazy walk has the
// same distribution as running Alg. 1 on a fully sampled realization.
func TestLazyMatchesFullSampler(t *testing.T) {
	g := randomConnected(13, 16, 20)
	if g.HasEdge(0, 15) {
		t.Skip("adjacent s,t")
	}
	in := mustInstance(t, g, 0, 15)
	const trials = 60000
	rng1 := rand.New(rand.NewSource(101))
	rng2 := rand.New(rand.NewSource(202))
	sp := NewSampler(in)
	lazy1 := 0
	for i := 0; i < trials; i++ {
		if sp.SampleTG(rng1).Outcome == Type1 {
			lazy1++
		}
	}
	full1 := 0
	for i := 0; i < trials; i++ {
		f := SampleFull(in, rng2)
		if f.TGOf(in).Outcome == Type1 {
			full1++
		}
	}
	a, b := float64(lazy1)/trials, float64(full1)/trials
	if math.Abs(a-b) > 0.01 {
		t.Errorf("lazy type-1 rate %v vs full %v", a, b)
	}
}

// TestLemma2 validates the key combinatorial lemma: for a fully sampled
// realization g and any invitation set I, Process 2 succeeds iff t(g) ⊆ I.
func TestLemma2(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(12)
		g := randomConnected(seed, n, n)
		s := graph.Node(0)
		tt := graph.Node(n - 1)
		if g.HasEdge(s, tt) {
			return true // skip invalid instances
		}
		in, err := ltm.NewInstance(g, weights.NewDegree(g), s, tt)
		if err != nil {
			return true
		}
		for trial := 0; trial < 20; trial++ {
			full := SampleFull(in, rng)
			tg := full.TGOf(in)
			// Random invitation set, biased to include the path when one
			// exists so both outcomes are exercised.
			invited := graph.NewNodeSet(n)
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					invited.Add(graph.Node(v))
				}
			}
			if tg.Outcome == Type1 && rng.Intn(2) == 0 {
				for _, v := range tg.Path {
					invited.Add(v)
				}
			}
			want := tg.Covered(invited)
			got := full.Succeeds(in, invited)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLemma1ForwardReverseAgreement is the central model-equivalence test:
// the forward Process 1 estimator and the reverse realization estimator
// must agree on f(I) within Monte-Carlo noise.
func TestLemma1ForwardReverseAgreement(t *testing.T) {
	seeds := []int64{21, 22, 23}
	for _, seed := range seeds {
		g := randomConnected(seed, 14, 16)
		s, tt := graph.Node(0), graph.Node(13)
		if g.HasEdge(s, tt) {
			continue
		}
		in := mustInstance(t, g, s, tt)
		rng := rand.New(rand.NewSource(seed * 7))
		invited := graph.NewNodeSet(14)
		invited.Add(tt)
		for v := 0; v < 14; v++ {
			if rng.Intn(3) > 0 {
				invited.Add(graph.Node(v))
			}
		}
		ctx := context.Background()
		const trials = 150000
		fwd, err := in.EstimateF(ctx, invited, trials, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		rev, err := EstimateFReverse(ctx, in, invited, trials, 4, seed+1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fwd-rev) > 0.008 {
			t.Errorf("seed %d: forward %v vs reverse %v", seed, fwd, rev)
		}
	}
}

func TestEstimateFReverseValidation(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	if _, err := EstimateFReverse(context.Background(), in, graph.NewNodeSet(4), 0, 1, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestEpochWraparound(t *testing.T) {
	// Force the epoch counter near wraparound and confirm sampling still
	// detects cycles correctly.
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	sp := NewSampler(in)
	sp.epoch = ^uint32(0) - 3
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		tg := sp.SampleTG(rng)
		if tg.Outcome != Type0 && tg.Outcome != Type1 {
			t.Fatal("invalid outcome after wraparound")
		}
	}
}

// TestLemma1UnderSubStochasticWeights repeats the forward/reverse
// agreement check with a weight scheme whose incoming weights sum to less
// than 1, so realizations exercise the ℵ₀ (no selection) branch that the
// degree convention never hits.
func TestLemma1UnderSubStochasticWeights(t *testing.T) {
	g := randomConnected(33, 12, 14)
	s, tt := graph.Node(0), graph.Node(11)
	if g.HasEdge(s, tt) {
		t.Skip("adjacent pair")
	}
	sch, err := weights.NewExplicit(g, func(u, v graph.Node) float64 {
		d := g.Degree(v)
		if d == 0 {
			return 0
		}
		return 0.7 / float64(d) // InSum = 0.7 < 1 everywhere
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := ltm.NewInstance(g, sch, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	invited := graph.NewNodeSet(12)
	invited.Fill()
	ctx := context.Background()
	const trials = 200000
	fwd, err := in.EstimateF(ctx, invited, trials, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := EstimateFReverse(ctx, in, invited, trials, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fwd-rev) > 0.008 {
		t.Errorf("forward %v vs reverse %v under sub-stochastic weights", fwd, rev)
	}
	// The ℵ₀ branch must actually fire: a backward walk selects no one
	// with probability 0.3 at the first step alone.
	sp := NewSampler(in)
	rng := rand.New(rand.NewSource(7))
	type0 := 0
	for i := 0; i < 2000; i++ {
		if sp.SampleTG(rng).Outcome == Type0 {
			type0++
		}
	}
	if type0 < 400 {
		t.Errorf("only %d/2000 type-0 draws; ℵ₀ branch not exercised", type0)
	}
}
