package realization

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/rng"
	"repro/internal/weights"
)

func line(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.Node(i), graph.Node(i+1))
	}
	return b.Build()
}

func randomConnected(seed int64, n, extra int) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.Node(i), graph.Node(r.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(graph.Node(r.Intn(n)), graph.Node(r.Intn(n)))
	}
	return b.Build()
}

func mustInstance(t *testing.T, g *graph.Graph, s, tt graph.Node) *ltm.Instance {
	t.Helper()
	in, err := ltm.NewInstance(g, weights.NewDegree(g), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// On the line 0-1-2-3 with degree weights every node selects exactly one
// neighbor. t=3 selects 2 surely (degree 1); 2 selects 1 or 3 with prob
// 1/2 each. Selecting 3 is a cycle (type-0); selecting 1 reaches N_s.
// Hence p_max = 1/2 and t(g) = [3 2] for every type-1 draw.
func TestSampleTGLine(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	sp := NewSampler(in)
	st := rng.NewStream(5)
	type1 := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		tg := sp.SampleTG(&st)
		switch tg.Outcome {
		case Type1:
			type1++
			if len(tg.Path) != 2 || tg.Path[0] != 3 || tg.Path[1] != 2 {
				t.Fatalf("t(g) = %v, want [3 2]", tg.Path)
			}
		case Type0:
			if tg.Path != nil {
				t.Fatal("type-0 should carry no path")
			}
		default:
			t.Fatalf("invalid outcome %v", tg.Outcome)
		}
	}
	frac := float64(type1) / trials
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("type-1 fraction = %v, want ~0.5", frac)
	}
}

// Star with hub h adjacent to s, t and leaves: t (degree 1) must select h;
// h selects uniformly among its deg(h) neighbors and only selecting s... —
// in this topology h IS a friend of s, so the walk always ends at N_s
// immediately: p_max = 1.
func TestSampleTGStarAlwaysType1(t *testing.T) {
	// s=0 - 1(hub) - t=2, hub also adjacent to 3,4.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(1, 4)
	g := b.Build()
	in := mustInstance(t, g, 0, 2)
	sp := NewSampler(in)
	st := rng.NewStream(1)
	for i := 0; i < 1000; i++ {
		tg := sp.SampleTG(&st)
		if tg.Outcome != Type1 {
			t.Fatal("walk must terminate at the hub ∈ N_s immediately")
		}
		if len(tg.Path) != 1 || tg.Path[0] != 2 {
			t.Fatalf("t(g) = %v, want [2]", tg.Path)
		}
	}
}

// TestSampleTGPathInvariants checks the structural invariants of every
// sampled t(g): the path starts at t, consecutive nodes are adjacent,
// nodes are distinct, and — the subtle one — no path node is s or a member
// of N_s. (Reaching s is in fact impossible: every path node lies outside
// N_s, and only N_s members are adjacent to s; see the package doc.)
func TestSampleTGPathInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := randomConnected(seed, 18, 24)
		s, tt := graph.Node(0), graph.Node(17)
		if g.HasEdge(s, tt) {
			return true
		}
		in, err := ltm.NewInstance(g, weights.NewDegree(g), s, tt)
		if err != nil {
			return true
		}
		sp := NewSampler(in)
		st := rng.NewStream(seed)
		nsSet := in.InitialFriendSet()
		for i := 0; i < 300; i++ {
			tg := sp.SampleTG(&st)
			if tg.Outcome != Type1 {
				continue
			}
			if len(tg.Path) == 0 || tg.Path[0] != tt {
				return false
			}
			seen := map[graph.Node]bool{}
			for j, v := range tg.Path {
				if v == s || nsSet.Contains(v) || seen[v] {
					return false
				}
				seen[v] = true
				if j > 0 && !g.HasEdge(tg.Path[j-1], v) {
					return false
				}
			}
			// The walk's final hop must connect to N_s.
			last := tg.Path[len(tg.Path)-1]
			hasNsNeighbor := false
			for _, u := range g.Neighbors(last) {
				if nsSet.Contains(u) {
					hasNsNeighbor = true
					break
				}
			}
			if !hasNsNeighbor {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCovered(t *testing.T) {
	tg := TG{Path: []graph.Node{3, 2}, Outcome: Type1}
	if !tg.Covered(graph.NewNodeSetOf(4, 2, 3)) {
		t.Error("exact cover rejected")
	}
	if tg.Covered(graph.NewNodeSetOf(4, 3)) {
		t.Error("partial cover accepted")
	}
	t0 := TG{Outcome: Type0}
	full := graph.NewNodeSet(4)
	full.Fill()
	if t0.Covered(full) {
		t.Error("type-0 covered by full set")
	}
}

// TestSampleTGViewAliasing confirms the zero-copy draw reuses the
// sampler's buffer while SampleTG returns a stable copy.
func TestSampleTGViewAliasing(t *testing.T) {
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	sp := NewSampler(in)
	st := rng.NewStream(9)
	var view []graph.Node
	for view == nil {
		if tg := sp.SampleTGView(&st); tg.Outcome == Type1 {
			view = tg.Path
		}
	}
	// A later view draw may rewrite the same backing array.
	for i := 0; i < 50; i++ {
		sp.SampleTGView(&st)
	}
	var copied []graph.Node
	for copied == nil {
		if tg := sp.SampleTG(&st); tg.Outcome == Type1 {
			copied = tg.Path
		}
	}
	for i := 0; i < 50; i++ {
		sp.SampleTGView(&st)
	}
	if copied[0] != 3 || copied[1] != 2 {
		t.Errorf("copied path %v corrupted by later draws", copied)
	}
}

// TestLazyMatchesFullSampler validates Remark 3: the lazy walk has the
// same distribution as running Alg. 1 on a fully sampled realization.
func TestLazyMatchesFullSampler(t *testing.T) {
	g := randomConnected(13, 16, 20)
	if g.HasEdge(0, 15) {
		t.Skip("adjacent s,t")
	}
	in := mustInstance(t, g, 0, 15)
	const trials = 60000
	st1 := rng.NewStream(101)
	st2 := rng.NewStream(202)
	sp := NewSampler(in)
	lazy1 := 0
	for i := 0; i < trials; i++ {
		if sp.SampleTG(&st1).Outcome == Type1 {
			lazy1++
		}
	}
	full1 := 0
	for i := 0; i < trials; i++ {
		f := SampleFull(in, &st2)
		if f.TGOf(in).Outcome == Type1 {
			full1++
		}
	}
	a, b := float64(lazy1)/trials, float64(full1)/trials
	if math.Abs(a-b) > 0.01 {
		t.Errorf("lazy type-1 rate %v vs full %v", a, b)
	}
}

// TestLemma2 validates the key combinatorial lemma: for a fully sampled
// realization g and any invitation set I, Process 2 succeeds iff t(g) ⊆ I.
func TestLemma2(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := rng.NewStream(seed)
		n := 6 + r.Intn(12)
		g := randomConnected(seed, n, n)
		s := graph.Node(0)
		tt := graph.Node(n - 1)
		if g.HasEdge(s, tt) {
			return true // skip invalid instances
		}
		in, err := ltm.NewInstance(g, weights.NewDegree(g), s, tt)
		if err != nil {
			return true
		}
		for trial := 0; trial < 20; trial++ {
			full := SampleFull(in, &st)
			tg := full.TGOf(in)
			// Random invitation set, biased to include the path when one
			// exists so both outcomes are exercised.
			invited := graph.NewNodeSet(n)
			for v := 0; v < n; v++ {
				if r.Intn(2) == 0 {
					invited.Add(graph.Node(v))
				}
			}
			if tg.Outcome == Type1 && r.Intn(2) == 0 {
				for _, v := range tg.Path {
					invited.Add(v)
				}
			}
			want := tg.Covered(invited)
			got := full.Succeeds(in, invited)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEpochWraparound(t *testing.T) {
	// Force the epoch counter near wraparound and confirm sampling still
	// detects cycles correctly.
	g := line(4)
	in := mustInstance(t, g, 0, 3)
	sp := NewSampler(in)
	sp.epoch = ^uint32(0) - 3
	st := rng.NewStream(1)
	for i := 0; i < 10; i++ {
		tg := sp.SampleTG(&st)
		if tg.Outcome != Type0 && tg.Outcome != Type1 {
			t.Fatal("invalid outcome after wraparound")
		}
	}
}
