package engine

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/snapshot"
)

// poolsEqual compares two pools' CSR contents exactly (arena sliced to
// the owned paths, so truncated views compare by content).
func mustPoolsEqual(t *testing.T, got, want *Pool) {
	t.Helper()
	if got.total != want.total || got.universe != want.universe {
		t.Fatalf("total/universe: got %d/%d, want %d/%d", got.total, got.universe, want.total, want.universe)
	}
	if !reflect.DeepEqual(got.offsets, want.offsets) {
		t.Fatalf("offsets differ (%d vs %d entries)", len(got.offsets), len(want.offsets))
	}
	if !reflect.DeepEqual(got.pathDraw, want.pathDraw) {
		t.Fatalf("pathDraw differ")
	}
	g := got.arena[:got.offsets[got.NumType1()]]
	w := want.arena[:want.offsets[want.NumType1()]]
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("arena differ (%d vs %d nodes)", len(g), len(w))
	}
}

// snapshotOf serializes the session to bytes.
func snapshotOf(t *testing.T, s *Session) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := int64(buf.Len()), s.SnapshotSize(); got != want {
		t.Fatalf("snapshot is %d bytes, SnapshotSize said %d", got, want)
	}
	return buf.Bytes()
}

func TestSessionSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	in := testInstance(t)
	const l = 3*ChunkSize + 700 // several full chunks plus a partial tail

	fresh := New(in).NewSession(5, 4)
	want, err := fresh.Pool(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	data := snapshotOf(t, fresh)

	loaded, err := OpenSession(New(in), bytes.NewReader(data), 4)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seed() != 5 {
		t.Fatalf("Seed = %d, want 5", loaded.Seed())
	}
	got, err := loaded.Pool(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	mustPoolsEqual(t, got, want)

	// The loaded session's chunk tables must equal the writer's, so a
	// re-snapshot is byte-identical.
	if again := snapshotOf(t, loaded); !bytes.Equal(again, data) {
		t.Fatal("snapshot of a loaded session differs from the original")
	}

	// Loading consumed no sampling: the engine ledger stays at zero.
	if d := loaded.eng.PoolDraws(); d != 0 {
		t.Fatalf("loading charged %d pool draws", d)
	}
}

func TestSessionSnapshotGrowthAfterLoad(t *testing.T) {
	ctx := context.Background()
	in := testInstance(t)
	const small, big = ChunkSize + 300, 4*ChunkSize + 100

	fresh := New(in).NewSession(9, 3)
	if _, err := fresh.Pool(ctx, small); err != nil {
		t.Fatal(err)
	}
	data := snapshotOf(t, fresh)
	loaded, err := OpenSession(New(in), bytes.NewReader(data), 3)
	if err != nil {
		t.Fatal(err)
	}

	// Growth past the snapshot must resample only the missing draws and
	// land on the same pool a never-snapshotted session produces.
	got, err := loaded.Pool(ctx, big)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Pool(ctx, big)
	if err != nil {
		t.Fatal(err)
	}
	mustPoolsEqual(t, got, want)
	// The loaded session pays only the net growth: the snapshotted prefix
	// includes a partial trailing chunk whose regrow re-derives existing
	// draws without re-charging them.
	if d := loaded.eng.PoolDraws(); d != big-small {
		t.Fatalf("growth charged %d draws, want %d", d, big-small)
	}
}

// TestTruncateOverLoadedPool is the prefix-purity property over the
// snapshot path: for every l, querying the loaded pool truncated to l
// must equal querying a pool freshly sampled at exactly l — estimates,
// coverage counts and the set-cover family all agree.
func TestTruncateOverLoadedPool(t *testing.T) {
	ctx := context.Background()
	in := testInstance(t)
	const full = 2*ChunkSize + 512

	fresh := New(in).NewSession(13, 2)
	if _, err := fresh.Pool(ctx, full); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenSession(New(in), bytes.NewReader(snapshotOf(t, fresh)), 2)
	if err != nil {
		t.Fatal(err)
	}

	invited := graph.NewNodeSetOf(in.Graph().NumNodes(), in.T())
	for _, v := range in.Graph().Neighbors(in.T()) {
		invited.Add(v)
	}
	for _, l := range []int64{1, 37, 1000, ChunkSize, ChunkSize + 1, 2 * ChunkSize, full - 1, full} {
		ref, err := New(in).NewSession(13, 2).Pool(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		view, err := loaded.Pool(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		mustPoolsEqual(t, view, ref)
		if got, want := view.EstimateF(invited), ref.EstimateF(invited); got != want {
			t.Errorf("l=%d: EstimateF %v != %v", l, got, want)
		}
		if got, want := view.FractionType1(), ref.FractionType1(); got != want {
			t.Errorf("l=%d: FractionType1 %v != %v", l, got, want)
		}
		gf, err := view.Family()
		if err != nil {
			t.Fatal(err)
		}
		wf, err := ref.Family()
		if err != nil {
			t.Fatal(err)
		}
		if gf.NumSets() != wf.NumSets() {
			t.Errorf("l=%d: family sets %d != %d", l, gf.NumSets(), wf.NumSets())
		}
	}
}

func TestOpenSessionBytesMmap(t *testing.T) {
	ctx := context.Background()
	in := testInstance(t)
	const l = ChunkSize * 2

	fresh := New(in).NewSession(21, 0)
	want, err := fresh.Pool(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sess.afsnap")
	var buf bytes.Buffer
	if err := fresh.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	f, err := snapshot.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := OpenSessionBytes(New(in), buf.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Pool(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	mustPoolsEqual(t, got, want)

	// The zero-copy path over the mapped region must agree too, and its
	// coverage answers must match the live session's exactly.
	if len(f.Pools) != 1 {
		t.Fatalf("mapped %d pools, want 1", len(f.Pools))
	}
	mappedSess, err := OpenSessionData(New(in), f.Pools[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if mappedSess.Seed() != 21 {
		t.Fatalf("mapped Seed = %d, want 21", mappedSess.Seed())
	}
	mp, err := mappedSess.Pool(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	mustPoolsEqual(t, mp, want)
	invited := graph.NewNodeSetOf(in.Graph().NumNodes(), in.T())
	for _, v := range in.Graph().Neighbors(in.T()) {
		invited.Add(v)
	}
	if g, w := mp.EstimateF(invited), want.EstimateF(invited); g != w {
		t.Fatalf("mmap EstimateF %v != %v", g, w)
	}
}

func TestRestoreValidation(t *testing.T) {
	ctx := context.Background()
	in := testInstance(t)
	fresh := New(in).NewSession(3, 1)
	if _, err := fresh.Pool(ctx, 1000); err != nil {
		t.Fatal(err)
	}
	data := snapshotOf(t, fresh)

	t.Run("matching", func(t *testing.T) {
		s := New(in).NewSession(3, 1)
		if err := s.Restore(bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
		if s.Size() != 1000 {
			t.Fatalf("Size = %d", s.Size())
		}
	})
	t.Run("wrong-seed", func(t *testing.T) {
		s := New(in).NewSession(4, 1)
		if err := s.Restore(bytes.NewReader(data)); err == nil {
			t.Fatal("restore with mismatched seed succeeded")
		}
	})
	t.Run("wrong-namespace", func(t *testing.T) {
		s := New(in).NewEvalSession(3, 1)
		if err := s.Restore(bytes.NewReader(data)); err == nil {
			t.Fatal("restore of a solve snapshot into an eval session succeeded")
		}
	})
	t.Run("non-empty", func(t *testing.T) {
		s := New(in).NewSession(3, 1)
		if _, err := s.Pool(ctx, 10); err != nil {
			t.Fatal(err)
		}
		if err := s.Restore(bytes.NewReader(data)); err == nil {
			t.Fatal("restore into a sampled session succeeded")
		}
	})
	t.Run("wrong-universe", func(t *testing.T) {
		other := mustInstance(t, line(6), 0, 5)
		if _, err := OpenSession(New(other), bytes.NewReader(data), 1); err == nil {
			t.Fatal("open against a different instance succeeded")
		}
	})
	t.Run("same-size-different-graph", func(t *testing.T) {
		// Same node count and seed, different edges: the instance
		// fingerprint must reject the snapshot — adopting pools sampled
		// on another graph would silently produce wrong answers.
		other := mustInstance(t, randomConnected(99, 30, 40), 0, 29)
		if _, err := OpenSession(New(other), bytes.NewReader(data), 1); err == nil {
			t.Fatal("open against a different same-size graph succeeded")
		}
	})
	t.Run("corrupted", func(t *testing.T) {
		bad := bytes.Clone(data)
		bad[len(bad)/2] ^= 1
		s := New(in).NewSession(3, 1)
		if err := s.Restore(bytes.NewReader(bad)); err == nil {
			t.Fatal("restore of corrupted bytes succeeded")
		}
		// The failed restore must leave the session usable and cold.
		if s.Size() != 0 {
			t.Fatalf("failed restore left %d draws", s.Size())
		}
		if _, err := s.Pool(ctx, 500); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSnapshotEmptySession(t *testing.T) {
	in := testInstance(t)
	s := New(in).NewSession(8, 1)
	data := snapshotOf(t, s)
	loaded, err := OpenSession(New(in), bytes.NewReader(data), 1)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 0 {
		t.Fatalf("Size = %d, want 0", loaded.Size())
	}
	if _, err := loaded.Pool(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
}
