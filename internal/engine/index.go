package engine

import (
	"math/bits"
	"sync"

	"repro/internal/graph"
)

// Index is an inverted node → realization index over one pool: for every
// node it lists the type-1 realizations whose path contains it. A coverage
// query then touches only the realizations incident to the invited nodes
// that actually occur in the pool, instead of rescanning every path —
// the win grows with query volume (greedy growth curves, α-sweeps, and
// baseline comparisons all interrogate one pool many times).
//
// The postings are hybrid: every node has an id-list (CSR), and
// high-postings nodes additionally get a dense bitmap over the
// realizations. Bulk positive-side queries then tally counts in
// bit-sliced planes — 64 realizations per machine word — with dense
// nodes added by carry-propagating word operations, and read coverage
// off by comparing the count planes to precomputed path-length planes.
// That closes the historical gap between small-invited-set queries
// (which scattered one counter per posting) and the complement side.
//
// Queries share epoch-reset scratch buffers and are serialized by an
// internal mutex; the pool's plain CoverageCount scan remains available
// for lock-free concurrent use.
type Index struct {
	pool  *Pool
	nodes []graph.Node // distinct nodes occurring in any path, ascending
	off   []int32      // CSR offsets over the universe; len universe+1
	ids   []int32      // realization ids

	// Bit-sliced tally machinery. words is the realization-bitmap width
	// ⌈t1/64⌉; planes the number of count bit-planes, ⌈log2(maxlen+1)⌉.
	// lenPlanes[i*words+w] holds bit i of every path length; liveMask
	// zeroes the tail bits of the last word. Nodes with at least
	// denseCut postings own a row of bitmaps (denseOf maps node →
	// dense row, -1 for sparse nodes).
	words   int
	planes  int
	tallyPl int // tally/lenPlanes rows: planes padded up to 6 so the
	// register-specialized counter (countCovered6) can touch all six
	// planes unconditionally; the pad rows stay all-zero.
	lenPlanes []uint64
	liveMask  uint64
	denseOf   []int32
	bitmaps   []uint64

	mu        sync.Mutex
	hits      []int32 // per-realization covered-node counts (epoch-valid)
	hitEpoch  []uint32
	epoch     uint32
	tally     []uint64 // planes*words count planes; all-zero between queries
	denseRows []int32  // query scratch: bitmap row offsets of invited dense nodes
}

func newIndex(p *Pool) *Index {
	t1 := p.NumType1()
	off := make([]int32, p.universe+1)
	// Scan only the arena prefix the pool's paths occupy: a truncated
	// view shares its parent's full arena but owns fewer paths.
	for _, v := range p.arena[:p.offsets[t1]] {
		off[v+1]++
	}
	var nodes []graph.Node
	for v := 0; v < p.universe; v++ {
		if off[v+1] > 0 {
			nodes = append(nodes, graph.Node(v))
		}
		off[v+1] += off[v]
	}
	ids := make([]int32, p.offsets[t1])
	next := make([]int32, p.universe)
	for i := 0; i < t1; i++ {
		for _, v := range p.Path(i) {
			ids[off[v]+next[v]] = int32(i)
			next[v]++
		}
	}
	ix := &Index{
		pool:     p,
		nodes:    nodes,
		off:      off,
		ids:      ids,
		hits:     make([]int32, t1),
		hitEpoch: make([]uint32, t1),
	}
	ix.buildPlanes(t1)
	return ix
}

// buildPlanes sets up the bit-sliced tally machinery: path-length
// planes, the query tally scratch, and dense bitmaps for every node
// whose postings mass makes word-parallel adds cheaper than scattered
// counter increments.
func (ix *Index) buildPlanes(t1 int) {
	if t1 == 0 {
		return
	}
	p := ix.pool
	maxlen := int32(0)
	for i := 0; i < t1; i++ {
		if l := p.offsets[i+1] - p.offsets[i]; l > maxlen {
			maxlen = l
		}
	}
	ix.words = (t1 + 63) / 64
	ix.planes = bits.Len(uint(maxlen))
	ix.tallyPl = max(ix.planes, 6)
	ix.liveMask = ^uint64(0) >> (uint(ix.words*64-t1) & 63)
	ix.lenPlanes = make([]uint64, ix.tallyPl*ix.words)
	for i := 0; i < t1; i++ {
		l := uint32(p.offsets[i+1] - p.offsets[i])
		w, bit := i>>6, uint64(1)<<(uint(i)&63)
		for pl := 0; pl < ix.planes; pl++ {
			if l>>uint(pl)&1 != 0 {
				ix.lenPlanes[pl*ix.words+w] |= bit
			}
		}
	}
	ix.tally = make([]uint64, ix.tallyPl*ix.words)

	// A dense node's bitmap add touches every word but the carry chain
	// dies after one plane for almost all of them, so it costs ~2·words
	// sequential ops; a sparse node's scatter costs a few *random-access*
	// ops per posting. The break-even is therefore near `words` postings,
	// and the bitmap memory at that cutoff (8·words bytes) stays within
	// 2× of the id-list it shadows.
	denseCut := int32(max(64, ix.words))
	ix.denseOf = make([]int32, p.universe)
	nDense := int32(0)
	for v := 0; v < p.universe; v++ {
		if ix.off[v+1]-ix.off[v] >= denseCut {
			ix.denseOf[v] = nDense
			nDense++
		} else {
			ix.denseOf[v] = -1
		}
	}
	if nDense == 0 {
		return
	}
	ix.denseRows = make([]int32, 0, nDense)
	ix.bitmaps = make([]uint64, int(nDense)*ix.words)
	for _, v := range ix.nodes {
		d := ix.denseOf[v]
		if d < 0 {
			continue
		}
		row := ix.bitmaps[int(d)*ix.words : (int(d)+1)*ix.words]
		for _, r := range ix.Realizations(v) {
			row[r>>6] |= 1 << (uint(r) & 63)
		}
	}
}

// memBytes returns the resident size of the index's postings and scratch
// tables (graph.Node, int32 and uint32 entries are 4 bytes each).
func (ix *Index) memBytes() int64 {
	return (int64(cap(ix.nodes))+int64(cap(ix.off))+int64(cap(ix.ids))+
		int64(cap(ix.hits))+int64(cap(ix.hitEpoch))+int64(cap(ix.denseOf))+
		int64(cap(ix.denseRows)))*4 +
		(int64(cap(ix.lenPlanes))+int64(cap(ix.bitmaps))+int64(cap(ix.tally)))*8
}

// Realizations returns the ids of the pooled realizations whose path
// contains v. The slice aliases index storage and must not be modified.
func (ix *Index) Realizations(v graph.Node) []int32 {
	return ix.ids[ix.off[v]:ix.off[v+1]]
}

// scatterNode tallies a sparse (no-bitmap) node into the count planes
// with one binary-counter increment per posting. Counts never exceed
// the path length (a path's nodes are distinct), so carries cannot
// leave the top plane. Dense nodes do not come through here — the
// word-major pass in countCovered folds their bitmap rows in directly.
func (ix *Index) scatterNode(tally []uint64, v graph.Node) {
	words, planes := ix.words, ix.planes
	for _, r := range ix.Realizations(v) {
		w, bit := int(r>>6), uint64(1)<<(uint(r)&63)
		for pl := 0; pl < planes; pl++ {
			i := pl*words + w
			if tally[i]&bit == 0 {
				tally[i] |= bit
				break
			}
			tally[i] &^= bit
		}
	}
}

// gatherInvited splits the invited set for a heavy positive-side query:
// sparse nodes are scattered into the count planes immediately, dense
// nodes contribute their bitmap row *offset* (premultiplied by words)
// to rows, for countCovered to fold in word-major. rows must come in
// empty with enough capacity for every dense row (the Index and batch
// scratches are sized at build time, so appends never reallocate).
func (ix *Index) gatherInvited(invited *graph.NodeSet, tally []uint64, rows []int32) []int32 {
	words := int32(ix.words)
	ix.forEachInvited(invited, func(v graph.Node) {
		if d := ix.denseOf[v]; d >= 0 {
			rows = append(rows, d*words)
		} else {
			ix.scatterNode(tally, v)
		}
	})
	return rows
}

// countCovered finishes a heavy positive-side query in one word-major
// pass. For each machine word of realizations it lifts the count planes
// (pre-seeded by sparse scatters, re-zeroed on the way out) into
// register-resident counters, folds in every invited dense bitmap row
// with a binary carry chain that dies as soon as the carry does, then
// reads coverage off against the length planes — a realization is
// covered iff its count equals its path length — and popcounts the
// matches. Keeping the counters in registers is the point: the former
// plane-major formulation streamed the whole tally through L1 once per
// dense add, which profiling showed was the entire cost of the query.
// Pools with path lengths under 64 (all practical ones — the Lemma 2
// walk terminates fast) take the six-named-registers specialization;
// an indexed-array fallback covers deeper counts.
func (ix *Index) countCovered(tally []uint64, rows []int32) int64 {
	if ix.planes <= 6 {
		return ix.countCovered6(tally, rows)
	}
	words, planes := ix.words, ix.planes
	bm, lp := ix.bitmaps, ix.lenPlanes
	var covered int64
	var cnt [32]uint64 // planes ≤ 31 (path lengths are int32)
	for w := 0; w < words; w++ {
		for pl := 0; pl < planes; pl++ {
			i := pl*words + w
			cnt[pl] = tally[i]
			tally[i] = 0
		}
		for _, base := range rows {
			c := bm[int(base)+w]
			for pl := 0; c != 0 && pl < len(cnt); pl++ {
				t := cnt[pl] & c
				cnt[pl] ^= c
				c = t
			}
		}
		eq := ^uint64(0)
		for pl := 0; pl < planes; pl++ {
			eq &= ^(cnt[pl] ^ lp[pl*words+w])
		}
		if w == words-1 {
			eq &= ix.liveMask
		}
		covered += int64(bits.OnesCount64(eq))
	}
	return covered
}

// countCovered6 is countCovered for planes ≤ 6 (counts below 64), with
// the six counter planes held in named locals so the compiler keeps
// them in registers across the whole row loop. tally and lenPlanes are
// padded to six rows at build time (tallyPl), so every plane is read,
// cleared, and compared unconditionally — the pad rows are permanently
// zero and compare as trivially equal. The carry chain is unrolled two
// planes at a time: carries out of plane 1 (counts crossing 4) are
// uncommon, so one well-predicted branch retires most rows after six
// ALU ops, and counts cannot carry out of plane 5.
func (ix *Index) countCovered6(tally []uint64, rows []int32) int64 {
	words := ix.words
	bm := ix.bitmaps
	t0, t1, t2 := tally[:words], tally[words:2*words], tally[2*words:3*words]
	t3, t4, t5 := tally[3*words:4*words], tally[4*words:5*words], tally[5*words:6*words]
	lp := ix.lenPlanes
	l0, l1, l2 := lp[:words], lp[words:2*words], lp[2*words:3*words]
	l3, l4, l5 := lp[3*words:4*words], lp[4*words:5*words], lp[5*words:6*words]
	var covered int64
	for w := 0; w < words; w++ {
		c0, c1, c2 := t0[w], t1[w], t2[w]
		c3, c4, c5 := t3[w], t4[w], t5[w]
		t0[w], t1[w], t2[w] = 0, 0, 0
		t3[w], t4[w], t5[w] = 0, 0, 0
		// Rows go in two at a time through a half-adder — ones lands at
		// plane 0, twos joins plane 0's carry at plane 1 (t and up are
		// disjoint: up ⊆ twos but t ⊆ ones = c ^ twos) — so the chain
		// prefix runs once per pair instead of once per row.
		i := 0
		for ; i+1 < len(rows); i += 2 {
			a, b := bm[int(rows[i])+w], bm[int(rows[i+1])+w]
			ones := a ^ b
			twos := a & b
			t := c0 & ones
			c0 ^= ones
			in := t ^ twos
			up := t & twos
			t = c1 & in
			c1 ^= in
			if c := t | up; c != 0 {
				t = c2 & c
				c2 ^= c
				c = t & c3
				c3 ^= t
				if c != 0 {
					t = c4 & c
					c4 ^= c
					c5 ^= t
				}
			}
		}
		if i < len(rows) {
			c := bm[int(rows[i])+w]
			t := c0 & c
			c0 ^= c
			c = t & c1
			c1 ^= t
			if c != 0 {
				t = c2 & c
				c2 ^= c
				c = t & c3
				c3 ^= t
				if c != 0 {
					t = c4 & c
					c4 ^= c
					c5 ^= t
				}
			}
		}
		eq := ^(c0 ^ l0[w]) & ^(c1 ^ l1[w]) & ^(c2 ^ l2[w])
		eq &= ^(c3 ^ l3[w]) & ^(c4 ^ l4[w]) & ^(c5 ^ l5[w])
		if w == words-1 {
			eq &= ix.liveMask
		}
		covered += int64(bits.OnesCount64(eq))
	}
	return covered
}

// planesWorthIt reports whether a positive-side query with the given
// postings mass should tally in bit planes rather than scattered
// counters: the planes path pays a fixed ~2·planes·words sweep to read
// and clear, so tiny queries (singleton invitations) stay on the
// epoch-scatter path.
func (ix *Index) planesWorthIt(invPostings int64) bool {
	return ix.tally != nil && invPostings > 2*int64(ix.planes*ix.words)
}

// CoverageCount returns F(B_l, I) using the inverted index. It counts
// from whichever side carries fewer postings: the invited pool nodes
// (tally per-realization hits until they reach the path length — valid
// because path nodes are distinct by construction) or their complement
// (start from "all covered" and strike out every realization touching a
// non-invited node). Solver outputs and measurement sets consist of
// exactly the popular path nodes, so the complement side is usually tiny
// and a query costs far less than rescanning the arena. Heavy positive
// sides tally word-parallel in bit planes instead of one counter at a
// time.
func (ix *Index) CoverageCount(invited *graph.NodeSet) int64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var invPostings int64
	ix.forEachInvited(invited, func(v graph.Node) {
		invPostings += int64(ix.off[v+1] - ix.off[v])
	})
	t1 := int64(ix.pool.NumType1())
	if invPostings <= int64(len(ix.ids))-invPostings {
		if ix.planesWorthIt(invPostings) {
			rows := ix.gatherInvited(invited, ix.tally, ix.denseRows[:0])
			return ix.countCovered(ix.tally, rows)
		}
		// Positive side, light: tally hits on realizations of invited
		// nodes.
		ix.epoch++
		if ix.epoch == 0 { // wrapped: clear and restart
			for i := range ix.hitEpoch {
				ix.hitEpoch[i] = 0
			}
			ix.epoch = 1
		}
		var covered int64
		ix.forEachInvited(invited, func(v graph.Node) {
			for _, r := range ix.Realizations(v) {
				if ix.hitEpoch[r] != ix.epoch {
					ix.hitEpoch[r] = ix.epoch
					ix.hits[r] = 0
				}
				ix.hits[r]++
				if ix.hits[r] == ix.pool.offsets[r+1]-ix.pool.offsets[r] {
					covered++
				}
			}
		})
		return covered
	}
	// Complement side: strike out realizations touching non-invited nodes.
	ix.epoch++
	if ix.epoch == 0 {
		for i := range ix.hitEpoch {
			ix.hitEpoch[i] = 0
		}
		ix.epoch = 1
	}
	covered := t1
	for _, v := range ix.nodes {
		if invited.Contains(v) {
			continue
		}
		for _, r := range ix.Realizations(v) {
			if ix.hitEpoch[r] != ix.epoch {
				ix.hitEpoch[r] = ix.epoch
				covered--
			}
		}
	}
	return covered
}

// forEachInvited visits invited ∩ pool-nodes via whichever enumeration is
// smaller — the set's own members or the pool's distinct-node list — the
// same adaptivity CoverageCount uses. Invited nodes absent from the pool
// have empty postings, so visiting them is harmless. nil visits nothing
// (the empty invitation set).
func (ix *Index) forEachInvited(invited *graph.NodeSet, fn func(v graph.Node)) {
	if invited == nil {
		return
	}
	if invited.Len() <= len(ix.nodes) {
		invited.Range(func(v graph.Node) bool { fn(v); return true })
		return
	}
	for _, v := range ix.nodes {
		if invited.Contains(v) {
			fn(v)
		}
	}
}

// CoverageCounts answers many coverage queries against the pool at once:
// counts[j] = F(B_l, invited[j]). Each set is counted from its cheaper
// postings side, exactly like CoverageCount. Positive-side sets (small
// invitation sets) touch only their own members' postings — heavy ones
// tally word-parallel in bit planes, sparse ones reuse one
// per-realization tally row — so they cost no more than single queries
// minus the per-call locking. Complement-side sets — the shape solver
// outputs and measurement sets take, where the batch win matters — share
// ONE traversal of the pool's node list and postings for the entire
// group, instead of one traversal per set.
//
// A nil entry counts as the empty invitation set. Unlike CoverageCount,
// the batch uses its own scratch rather than the index's epoch buffers,
// so it takes no lock and may run concurrently with other queries.
func (ix *Index) CoverageCounts(invited []*graph.NodeSet) []int64 {
	k := len(invited)
	counts := make([]int64, k)
	if k == 0 {
		return counts
	}
	t1 := ix.pool.NumType1()
	total := int64(len(ix.ids))
	var pos, neg []int // batch-local set indexes per side
	invPostings := make([]int64, k)
	for j, s := range invited {
		ix.forEachInvited(s, func(v graph.Node) {
			invPostings[j] += int64(ix.off[v+1] - ix.off[v])
		})
		if invPostings[j] <= total-invPostings[j] {
			pos = append(pos, j)
		} else {
			neg = append(neg, j)
			counts[j] = int64(t1)
		}
	}
	// Positive side: tally hits on the realizations of each set's invited
	// nodes until the path length is reached (path nodes are distinct by
	// construction). Sets run sequentially. Heavy sets tally in batch-
	// local bit planes; light sets share one counter row that is all-zero
	// between sets, returned to zero per set by whichever of scatter-reset
	// (sparse) or sequential clear (dense) is cheaper.
	if len(pos) > 0 {
		var hits []int32
		var touched []int32 // allocated on the first sparse set
		var tally []uint64  // allocated on the first heavy set
		var rows []int32
		for _, j := range pos {
			if ix.planesWorthIt(invPostings[j]) {
				if tally == nil {
					tally = make([]uint64, ix.tallyPl*ix.words)
					rows = make([]int32, 0, len(ix.bitmaps)/ix.words)
				}
				rows = ix.gatherInvited(invited[j], tally, rows[:0])
				counts[j] = ix.countCovered(tally, rows)
				continue
			}
			if hits == nil {
				hits = make([]int32, t1)
			}
			if sparse := invPostings[j] < int64(t1)/8; sparse {
				if touched == nil {
					touched = make([]int32, 0, t1/8+1)
				}
				touched = touched[:0]
				ix.forEachInvited(invited[j], func(v graph.Node) {
					for _, r := range ix.Realizations(v) {
						if hits[r] == 0 {
							touched = append(touched, r)
						}
						hits[r]++
						if hits[r] == ix.pool.offsets[r+1]-ix.pool.offsets[r] {
							counts[j]++
						}
					}
				})
				for _, r := range touched {
					hits[r] = 0
				}
				continue
			}
			ix.forEachInvited(invited[j], func(v graph.Node) {
				for _, r := range ix.Realizations(v) {
					hits[r]++
					if hits[r] == ix.pool.offsets[r+1]-ix.pool.offsets[r] {
						counts[j]++
					}
				}
			})
			clear(hits)
		}
	}
	// Complement side: strike out realizations touching non-invited nodes,
	// for all sets in one sweep of the node list and postings.
	if len(neg) > 0 {
		struck := make([]uint64, (len(neg)*t1+63)/64)
		miss := make([]int, 0, len(neg))
		for _, v := range ix.nodes {
			miss = miss[:0]
			for ni, j := range neg {
				if s := invited[j]; s == nil || !s.Contains(v) {
					miss = append(miss, ni)
				}
			}
			if len(miss) == 0 {
				continue
			}
			for _, r := range ix.Realizations(v) {
				for _, ni := range miss {
					bit := ni*t1 + int(r)
					if struck[bit>>6]&(1<<(uint(bit)&63)) == 0 {
						struck[bit>>6] |= 1 << (uint(bit) & 63)
						counts[neg[ni]]--
					}
				}
			}
		}
	}
	return counts
}
