package engine

import (
	"sync"

	"repro/internal/graph"
)

// Index is an inverted node → realization index over one pool: for every
// node it lists the type-1 realizations whose path contains it. A coverage
// query then touches only the realizations incident to the invited nodes
// that actually occur in the pool, instead of rescanning every path —
// the win grows with query volume (greedy growth curves, α-sweeps, and
// baseline comparisons all interrogate one pool many times).
//
// Queries share epoch-reset scratch buffers and are serialized by an
// internal mutex; the pool's plain CoverageCount scan remains available
// for lock-free concurrent use.
type Index struct {
	pool  *Pool
	nodes []graph.Node // distinct nodes occurring in any path, ascending
	off   []int32      // CSR offsets over the universe; len universe+1
	ids   []int32      // realization ids

	mu       sync.Mutex
	hits     []int32 // per-realization covered-node counts (epoch-valid)
	hitEpoch []uint32
	epoch    uint32
}

func newIndex(p *Pool) *Index {
	t1 := p.NumType1()
	off := make([]int32, p.universe+1)
	// Scan only the arena prefix the pool's paths occupy: a truncated
	// view shares its parent's full arena but owns fewer paths.
	for _, v := range p.arena[:p.offsets[t1]] {
		off[v+1]++
	}
	var nodes []graph.Node
	for v := 0; v < p.universe; v++ {
		if off[v+1] > 0 {
			nodes = append(nodes, graph.Node(v))
		}
		off[v+1] += off[v]
	}
	ids := make([]int32, p.offsets[t1])
	next := make([]int32, p.universe)
	for i := 0; i < t1; i++ {
		for _, v := range p.Path(i) {
			ids[off[v]+next[v]] = int32(i)
			next[v]++
		}
	}
	return &Index{
		pool:     p,
		nodes:    nodes,
		off:      off,
		ids:      ids,
		hits:     make([]int32, t1),
		hitEpoch: make([]uint32, t1),
	}
}

// memBytes returns the resident size of the index's postings and scratch
// tables (graph.Node, int32 and uint32 entries are 4 bytes each).
func (ix *Index) memBytes() int64 {
	return (int64(cap(ix.nodes)) + int64(cap(ix.off)) + int64(cap(ix.ids)) +
		int64(cap(ix.hits)) + int64(cap(ix.hitEpoch))) * 4
}

// Realizations returns the ids of the pooled realizations whose path
// contains v. The slice aliases index storage and must not be modified.
func (ix *Index) Realizations(v graph.Node) []int32 {
	return ix.ids[ix.off[v]:ix.off[v+1]]
}

// CoverageCount returns F(B_l, I) using the inverted index. It counts
// from whichever side carries fewer postings: the invited pool nodes
// (tally per-realization hits until they reach the path length — valid
// because path nodes are distinct by construction) or their complement
// (start from "all covered" and strike out every realization touching a
// non-invited node). Solver outputs and measurement sets consist of
// exactly the popular path nodes, so the complement side is usually tiny
// and a query costs far less than rescanning the arena.
func (ix *Index) CoverageCount(invited *graph.NodeSet) int64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.epoch++
	if ix.epoch == 0 { // wrapped: clear and restart
		for i := range ix.hitEpoch {
			ix.hitEpoch[i] = 0
		}
		ix.epoch = 1
	}
	var invPostings int64
	ix.forEachInvited(invited, func(v graph.Node) {
		invPostings += int64(ix.off[v+1] - ix.off[v])
	})
	t1 := int64(ix.pool.NumType1())
	if invPostings <= int64(len(ix.ids))-invPostings {
		// Positive side: tally hits on realizations of invited nodes.
		var covered int64
		ix.forEachInvited(invited, func(v graph.Node) {
			for _, r := range ix.Realizations(v) {
				if ix.hitEpoch[r] != ix.epoch {
					ix.hitEpoch[r] = ix.epoch
					ix.hits[r] = 0
				}
				ix.hits[r]++
				if ix.hits[r] == ix.pool.offsets[r+1]-ix.pool.offsets[r] {
					covered++
				}
			}
		})
		return covered
	}
	// Complement side: strike out realizations touching non-invited nodes.
	covered := t1
	for _, v := range ix.nodes {
		if invited.Contains(v) {
			continue
		}
		for _, r := range ix.Realizations(v) {
			if ix.hitEpoch[r] != ix.epoch {
				ix.hitEpoch[r] = ix.epoch
				covered--
			}
		}
	}
	return covered
}

// forEachInvited visits invited ∩ pool-nodes via whichever enumeration is
// smaller — the set's own members or the pool's distinct-node list — the
// same adaptivity CoverageCount uses. Invited nodes absent from the pool
// have empty postings, so visiting them is harmless. nil visits nothing
// (the empty invitation set).
func (ix *Index) forEachInvited(invited *graph.NodeSet, fn func(v graph.Node)) {
	if invited == nil {
		return
	}
	if invited.Len() <= len(ix.nodes) {
		invited.Range(func(v graph.Node) bool { fn(v); return true })
		return
	}
	for _, v := range ix.nodes {
		if invited.Contains(v) {
			fn(v)
		}
	}
}

// CoverageCounts answers many coverage queries against the pool at once:
// counts[j] = F(B_l, invited[j]). Each set is counted from its cheaper
// postings side, exactly like CoverageCount. Positive-side sets (small
// invitation sets) touch only their own members' postings, reusing one
// per-realization tally row, so they cost no more than single queries
// minus the per-call locking. Complement-side sets — the shape solver
// outputs and measurement sets take, where the batch win matters — share
// ONE traversal of the pool's node list and postings for the entire
// group, instead of one traversal per set.
//
// A nil entry counts as the empty invitation set. Unlike CoverageCount,
// the batch uses its own scratch rather than the index's epoch buffers,
// so it takes no lock and may run concurrently with other queries.
func (ix *Index) CoverageCounts(invited []*graph.NodeSet) []int64 {
	k := len(invited)
	counts := make([]int64, k)
	if k == 0 {
		return counts
	}
	t1 := ix.pool.NumType1()
	total := int64(len(ix.ids))
	var pos, neg []int // batch-local set indexes per side
	invPostings := make([]int64, k)
	for j, s := range invited {
		ix.forEachInvited(s, func(v graph.Node) {
			invPostings[j] += int64(ix.off[v+1] - ix.off[v])
		})
		if invPostings[j] <= total-invPostings[j] {
			pos = append(pos, j)
		} else {
			neg = append(neg, j)
			counts[j] = int64(t1)
		}
	}
	// Positive side: tally hits on the realizations of each set's invited
	// nodes until the path length is reached (path nodes are distinct by
	// construction). Sets run sequentially, sharing one tally row that is
	// all-zero between sets. How the row returns to zero is chosen per set
	// from its pass-1 postings mass: a sparse set records the realizations
	// it touched and zeroes only those (work proportional to its own
	// postings — a singleton set against a huge pool never pays an
	// O(|B_l¹|) pass), while a dense set tallies branch-free and pays one
	// sequential clear, far cheaper than scatter-resetting most of the row.
	if len(pos) > 0 {
		hits := make([]int32, t1)
		var touched []int32 // allocated on the first sparse set
		for _, j := range pos {
			if sparse := invPostings[j] < int64(t1)/8; sparse {
				if touched == nil {
					touched = make([]int32, 0, t1/8+1)
				}
				touched = touched[:0]
				ix.forEachInvited(invited[j], func(v graph.Node) {
					for _, r := range ix.Realizations(v) {
						if hits[r] == 0 {
							touched = append(touched, r)
						}
						hits[r]++
						if hits[r] == ix.pool.offsets[r+1]-ix.pool.offsets[r] {
							counts[j]++
						}
					}
				})
				for _, r := range touched {
					hits[r] = 0
				}
				continue
			}
			ix.forEachInvited(invited[j], func(v graph.Node) {
				for _, r := range ix.Realizations(v) {
					hits[r]++
					if hits[r] == ix.pool.offsets[r+1]-ix.pool.offsets[r] {
						counts[j]++
					}
				}
			})
			clear(hits)
		}
	}
	// Complement side: strike out realizations touching non-invited nodes,
	// for all sets in one sweep of the node list and postings.
	if len(neg) > 0 {
		struck := make([]uint64, (len(neg)*t1+63)/64)
		miss := make([]int, 0, len(neg))
		for _, v := range ix.nodes {
			miss = miss[:0]
			for ni, j := range neg {
				if s := invited[j]; s == nil || !s.Contains(v) {
					miss = append(miss, ni)
				}
			}
			if len(miss) == 0 {
				continue
			}
			for _, r := range ix.Realizations(v) {
				for _, ni := range miss {
					bit := ni*t1 + int(r)
					if struck[bit>>6]&(1<<(uint(bit)&63)) == 0 {
						struck[bit>>6] |= 1 << (uint(bit) & 63)
						counts[neg[ni]]--
					}
				}
			}
		}
	}
	return counts
}
