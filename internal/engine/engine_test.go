package engine

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/realization"
	"repro/internal/rng"
	"repro/internal/weights"
)

func line(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.Node(i), graph.Node(i+1))
	}
	return b.Build()
}

func randomConnected(seed int64, n, extra int) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.Node(i), graph.Node(r.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(graph.Node(r.Intn(n)), graph.Node(r.Intn(n)))
	}
	return b.Build()
}

func mustInstance(t *testing.T, g *graph.Graph, s, tt graph.Node) *ltm.Instance {
	t.Helper()
	in, err := ltm.NewInstance(g, weights.NewDegree(g), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// testInstance returns a random instance large enough that pools span
// several chunks and paths vary in length.
func testInstance(t *testing.T) *ltm.Instance {
	t.Helper()
	g := randomConnected(3, 30, 40)
	if g.HasEdge(0, 29) {
		t.Skip("adjacent s,t")
	}
	return mustInstance(t, g, 0, 29)
}

func TestSamplePoolLine(t *testing.T) {
	in := mustInstance(t, line(4), 0, 3)
	pool, err := New(in).SamplePool(context.Background(), 20000, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Total() != 20000 {
		t.Errorf("Total = %d", pool.Total())
	}
	if frac := pool.FractionType1(); math.Abs(frac-0.5) > 0.02 {
		t.Errorf("FractionType1 = %v, want ~0.5", frac)
	}
	invited := graph.NewNodeSetOf(4, 2, 3)
	if got, want := pool.EstimateF(invited), pool.FractionType1(); got != want {
		t.Errorf("EstimateF(full path) = %v, want %v (all type-1 covered)", got, want)
	}
	if got := pool.EstimateF(graph.NewNodeSetOf(4, 3)); got != 0 {
		t.Errorf("EstimateF(partial) = %v, want 0", got)
	}
	if got := pool.CoverageCount(invited); got != int64(pool.NumType1()) {
		t.Errorf("CoverageCount = %d, want %d", got, pool.NumType1())
	}
}

func TestSamplePoolValidation(t *testing.T) {
	in := mustInstance(t, line(4), 0, 3)
	if _, err := New(in).SamplePool(context.Background(), 0, 1, 1); err == nil {
		t.Error("zero pool size accepted")
	}
	if _, err := New(in).EstimateF(context.Background(), graph.NewNodeSet(4), 0, 1, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func poolsEqual(a, b *Pool) bool {
	if a.total != b.total || len(a.arena) != len(b.arena) || len(a.offsets) != len(b.offsets) {
		return false
	}
	for i := range a.arena {
		if a.arena[i] != b.arena[i] {
			return false
		}
	}
	for i := range a.offsets {
		if a.offsets[i] != b.offsets[i] {
			return false
		}
	}
	return true
}

// TestPoolWorkerCountIndependence is the engine's central determinism
// guarantee: pool contents are a pure function of (seed, l), byte-
// identical for any worker count.
func TestPoolWorkerCountIndependence(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	const l = 5000 // spans 3 chunks, last one partial
	ref, err := New(in).SamplePool(ctx, l, 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := New(in).SamplePool(ctx, l, workers, 77)
		if err != nil {
			t.Fatal(err)
		}
		if !poolsEqual(ref, got) {
			t.Errorf("pool with workers=%d differs from workers=1", workers)
		}
	}
}

// perPathPool rebuilds the pre-engine representation — one freshly
// allocated []graph.Node per type-1 path — from the same chunk streams.
func perPathPool(in *ltm.Instance, l, seed int64) [][]graph.Node {
	var paths [][]graph.Node
	for chunk := int64(0); chunk*ChunkSize < l; chunk++ {
		n := int64(ChunkSize)
		if rem := l - chunk*ChunkSize; rem < n {
			n = rem
		}
		st := rng.DerivedStream(seed, nsPool, uint64(chunk))
		sp := realization.NewSampler(in)
		for i := int64(0); i < n; i++ {
			if tg := sp.SampleTG(&st); tg.Outcome == realization.Type1 {
				paths = append(paths, tg.Path)
			}
		}
	}
	return paths
}

// TestCSRAgreesWithPerPathPool checks the CSR pool against the old
// per-path representation: identical paths, identical coverage counts.
func TestCSRAgreesWithPerPathPool(t *testing.T) {
	in := testInstance(t)
	const l, seed = 5000, 42
	pool, err := New(in).SamplePool(context.Background(), l, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	paths := perPathPool(in, l, seed)
	if pool.NumType1() != len(paths) {
		t.Fatalf("NumType1 = %d, per-path count = %d", pool.NumType1(), len(paths))
	}
	for i, p := range paths {
		got := pool.Path(i)
		if len(got) != len(p) {
			t.Fatalf("path %d: %v vs %v", i, got, p)
		}
		for j := range p {
			if got[j] != p[j] {
				t.Fatalf("path %d: %v vs %v", i, got, p)
			}
		}
	}
	// Coverage counts agree between the per-path scan, the CSR scan and
	// the inverted index, on a spread of random invitation sets.
	n := in.Graph().NumNodes()
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		invited := graph.NewNodeSet(n)
		for v := 0; v < n; v++ {
			if r.Intn(3) > 0 {
				invited.Add(graph.Node(v))
			}
		}
		var perPath int64
		for _, p := range paths {
			covered := true
			for _, v := range p {
				if !invited.Contains(v) {
					covered = false
					break
				}
			}
			if covered {
				perPath++
			}
		}
		if scan := pool.CoverageCount(invited); scan != perPath {
			t.Fatalf("trial %d: CSR scan %d vs per-path %d", trial, scan, perPath)
		}
		if idx := pool.Index().CoverageCount(invited); idx != perPath {
			t.Fatalf("trial %d: index %d vs per-path %d", trial, idx, perPath)
		}
	}
}

func TestEstimateFWorkerCountIndependence(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	invited := graph.NewNodeSet(in.Graph().NumNodes())
	invited.Fill()
	ref, err := New(in).EstimateF(ctx, invited, 5000, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := New(in).EstimateF(ctx, invited, 5000, workers, 13)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Errorf("EstimateF with workers=%d: %v, want %v", workers, got, ref)
		}
	}
}

// TestSessionGrowthConsistency: a pool grown through a session in several
// steps is byte-identical to a one-shot pool of the final size, and
// growing never resamples cached draws.
func TestSessionGrowthConsistency(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	eng := New(in)
	sess := eng.NewSession(77, 4)
	sizes := []int64{900, 2500, 2600, 9000}
	for _, l := range sizes {
		p, err := sess.Pool(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		if p.Total() < l {
			t.Fatalf("pool total %d < requested %d", p.Total(), l)
		}
	}
	final, err := sess.Pool(ctx, 9000)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := New(in).SamplePool(ctx, 9000, 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	if !poolsEqual(final, oneShot) {
		t.Error("grown session pool differs from one-shot pool of the final size")
	}
	// The ledger counts every pooled draw exactly once: growth redraws
	// partial trailing chunks, but their re-derived prefixes are already
	// counted, so after any grow sequence PoolDraws equals the pool size.
	if draws := eng.PoolDraws(); draws != 9000 {
		t.Errorf("pool draws = %d, want exactly the pool size 9000", draws)
	}
}

// TestSessionRegrowLedger is the regression test for the grow-time
// over-count: growing through a partial chunk used to re-count the
// chunk's already-counted prefix (Pool(1000) then Pool(4096) reported
// PoolDraws = 5096), breaking the documented invariant that after an
// α-sweep PoolDraws equals the pool size.
func TestSessionRegrowLedger(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	eng := New(in)
	sess := eng.NewSession(11, 2)
	for _, l := range []int64{1000, 4096, 5000} {
		p, err := sess.Pool(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		if got := eng.PoolDraws(); got != p.Total() {
			t.Errorf("after Pool(%d): PoolDraws = %d, want pool size %d", l, got, p.Total())
		}
		if eng.Draws() != eng.PoolDraws() {
			t.Errorf("after Pool(%d): Draws = %d, PoolDraws = %d, want equal (no estimator ran)",
				l, eng.Draws(), eng.PoolDraws())
		}
	}
}

// TestMemBytes: pool byte accounting is positive, grows with the pool,
// and includes the coverage index once built; the session adds its chunk
// offset tables on top of the pool.
func TestMemBytes(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	sess := New(in).NewSession(3, 2)
	small, err := sess.Pool(ctx, 2000)
	if err != nil {
		t.Fatal(err)
	}
	smallBytes := small.MemBytes()
	if smallBytes <= 0 {
		t.Fatalf("MemBytes = %d, want positive", smallBytes)
	}
	big, err := sess.Pool(ctx, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if big.MemBytes() <= smallBytes {
		t.Errorf("grown pool MemBytes = %d, want > %d", big.MemBytes(), smallBytes)
	}
	pre := big.MemBytes()
	big.Index()
	if big.MemBytes() <= pre {
		t.Errorf("MemBytes with index = %d, want > %d (index not accounted)", big.MemBytes(), pre)
	}
	if sess.MemBytes() <= big.MemBytes() {
		t.Errorf("session MemBytes = %d, want > pool's %d (chunk offset tables)", sess.MemBytes(), big.MemBytes())
	}
}

// TestSessionSamplesOnce: repeated Pool calls at or below the cached size
// perform no sampling at all.
func TestSessionSamplesOnce(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	eng := New(in)
	sess := eng.NewSession(5, 2)
	if _, err := sess.Pool(ctx, 4096); err != nil { // two exact chunks
		t.Fatal(err)
	}
	base := eng.Draws()
	for i := 0; i < 5; i++ {
		for _, l := range []int64{1, 1000, 4096} {
			if _, err := sess.Pool(ctx, l); err != nil {
				t.Fatal(err)
			}
		}
	}
	if eng.Draws() != base {
		t.Errorf("cached Pool calls drew %d extra samples", eng.Draws()-base)
	}
	if sess.Size() != 4096 {
		t.Errorf("Size = %d, want 4096", sess.Size())
	}
}

// TestEvalSessionDecorrelated: the evaluation namespace yields a
// different stream family than the solve namespace for the same seed.
func TestEvalSessionDecorrelated(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	eng := New(in)
	solve, err := eng.NewSession(7, 2).Pool(ctx, 4000)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := eng.NewEvalSession(7, 2).Pool(ctx, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if poolsEqual(solve, eval) {
		t.Error("solve and eval pools identical: namespaces collide")
	}
}

// TestLemma1ForwardReverseAgreement is the central model-equivalence
// test: the forward Process 1 estimator and the engine's reverse
// estimator must agree on f(I) within Monte-Carlo noise.
func TestLemma1ForwardReverseAgreement(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{21, 22, 23} {
		g := randomConnected(seed, 14, 16)
		s, tt := graph.Node(0), graph.Node(13)
		if g.HasEdge(s, tt) {
			continue
		}
		in := mustInstance(t, g, s, tt)
		r := rand.New(rand.NewSource(seed * 7))
		invited := graph.NewNodeSet(14)
		invited.Add(tt)
		for v := 0; v < 14; v++ {
			if r.Intn(3) > 0 {
				invited.Add(graph.Node(v))
			}
		}
		const trials = 150000
		fwd, err := in.EstimateF(ctx, invited, trials, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		rev, err := New(in).EstimateF(ctx, invited, trials, 4, seed+1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fwd-rev) > 0.008 {
			t.Errorf("seed %d: forward %v vs reverse %v", seed, fwd, rev)
		}
	}
}

// TestLemma1UnderSubStochasticWeights repeats the forward/reverse
// agreement check with a weight scheme whose incoming weights sum to less
// than 1, so realizations exercise the ℵ₀ (no selection) branch that the
// degree convention never hits.
func TestLemma1UnderSubStochasticWeights(t *testing.T) {
	g := randomConnected(33, 12, 14)
	s, tt := graph.Node(0), graph.Node(11)
	if g.HasEdge(s, tt) {
		t.Skip("adjacent pair")
	}
	sch, err := weights.NewExplicit(g, func(u, v graph.Node) float64 {
		d := g.Degree(v)
		if d == 0 {
			return 0
		}
		return 0.7 / float64(d) // InSum = 0.7 < 1 everywhere
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := ltm.NewInstance(g, sch, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	invited := graph.NewNodeSet(12)
	invited.Fill()
	ctx := context.Background()
	const trials = 200000
	fwd, err := in.EstimateF(ctx, invited, trials, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := New(in).EstimateF(ctx, invited, trials, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fwd-rev) > 0.008 {
		t.Errorf("forward %v vs reverse %v under sub-stochastic weights", fwd, rev)
	}
	// The ℵ₀ branch must actually fire: a backward walk selects no one
	// with probability 0.3 at the first step alone.
	sp := realization.NewSampler(in)
	st := rng.NewStream(7)
	type0 := 0
	for i := 0; i < 2000; i++ {
		if sp.SampleTG(&st).Outcome == realization.Type0 {
			type0++
		}
	}
	if type0 < 400 {
		t.Errorf("only %d/2000 type-0 draws; ℵ₀ branch not exercised", type0)
	}
}

// TestSetcoverInstanceZeroCopy confirms the MSC instance aliases the
// pool's arena rather than copying it.
func TestSetcoverInstanceZeroCopy(t *testing.T) {
	in := testInstance(t)
	pool, err := New(in).SamplePool(context.Background(), 3000, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pool.NumType1() == 0 {
		t.Skip("no type-1 paths")
	}
	inst := pool.SetcoverInstance()
	if inst.NumSets() != pool.NumType1() {
		t.Fatalf("NumSets = %d, want %d", inst.NumSets(), pool.NumType1())
	}
	if &inst.SetArena[0] != &pool.arena[0] {
		t.Error("setcover arena is a copy, not an alias")
	}
	if &inst.SetOffsets[0] != &pool.offsets[0] {
		t.Error("setcover offsets are a copy, not an alias")
	}
}

// TestDrawCountGuard: absurd draw counts (e.g. an uncapped theoretical
// l*) fail with a clean error instead of a fatal allocation.
func TestDrawCountGuard(t *testing.T) {
	in := mustInstance(t, line(4), 0, 3)
	huge := int64(maxPoolChunks+1) * ChunkSize
	if _, err := New(in).SamplePool(context.Background(), huge, 1, 1); err == nil {
		t.Error("oversized pool accepted")
	}
	if _, err := New(in).NewSession(1, 1).Pool(context.Background(), huge); err == nil {
		t.Error("oversized session pool accepted")
	}
	if _, err := New(in).EstimateF(context.Background(), graph.NewNodeSet(4), huge, 1, 1); err == nil {
		t.Error("oversized estimate accepted")
	}
}

// TestTruncatedViewMatchesOneShot: Pool(l) on a cache grown far beyond l
// returns exactly the pool one-shot sampling of l draws would have
// produced — path for path — so any result computed at size l is
// independent of the session's growth history. This is the invariant a
// serving layer relies on to evict and re-admit sessions without
// changing answers.
func TestTruncatedViewMatchesOneShot(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	sess := New(in).NewSession(21, 3)
	if _, err := sess.Pool(ctx, 9000); err != nil { // grow the cache first
		t.Fatal(err)
	}
	for _, l := range []int64{100, 2000, 2048, 4096, 5000, 9000} {
		view, err := sess.Pool(ctx, l)
		if err != nil {
			t.Fatal(err)
		}
		oneShot, err := New(in).SamplePool(ctx, l, 1, 21)
		if err != nil {
			t.Fatal(err)
		}
		if view.Total() != l || oneShot.Total() != l {
			t.Fatalf("l=%d: totals %d / %d", l, view.Total(), oneShot.Total())
		}
		if view.NumType1() != oneShot.NumType1() {
			t.Fatalf("l=%d: NumType1 %d, one-shot %d", l, view.NumType1(), oneShot.NumType1())
		}
		for i := 0; i < view.NumType1(); i++ {
			a, b := view.Path(i), oneShot.Path(i)
			if len(a) != len(b) {
				t.Fatalf("l=%d path %d: len %d vs %d", l, i, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("l=%d path %d diverges at %d", l, i, j)
				}
			}
		}
		// The view's own coverage machinery agrees with the one-shot pool.
		all := graph.NewNodeSet(in.Graph().NumNodes())
		all.Fill()
		if got, want := view.EstimateF(all), oneShot.EstimateF(all); got != want {
			t.Errorf("l=%d: view EstimateF(V) = %v, one-shot %v", l, got, want)
		}
	}
}
