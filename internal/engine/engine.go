// Package engine is the shared realization engine behind every algorithm
// in the library: RAF (Alg. 3–4), the budgeted maximum variant, the
// reverse f-estimator (Corollary 1) and the experiment harness all draw
// reverse realizations t(g) and answer coverage queries through it.
//
// Three properties distinguish it from naive per-consumer sampling:
//
//   - Pools are stored in a compact CSR layout (one flat path arena plus
//     offsets) handed zero-copy to the set-cover solver, with an inverted
//     node → realization index for repeated coverage queries.
//   - Sampling is partitioned into fixed-size chunks whose random streams
//     derive from the chunk index (namespaced per call site), so pool
//     contents and estimates are pure functions of (seed, l) — identical
//     for any worker count.
//   - Per-worker Samplers are recycled through a sync.Pool, and a Session
//     caches a growable pool so repeated solves (e.g. an α-sweep) sample
//     each realization exactly once.
package engine

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/parallel"
	"repro/internal/realization"
	"repro/internal/rng"
	"repro/internal/weights"
	"sync"
)

// ChunkSize is the number of realization draws per sampling chunk. It is
// part of the determinism contract: pool contents depend on how draws are
// grouped into chunks, so changing it changes pools for a fixed seed.
const ChunkSize = 2048

// Stream namespaces (see rng.DeriveStream): every sampling call site gets
// its own family of indexed streams so phases sharing one root seed never
// consume identical randomness. The p_max stopping-rule namespace nsPmax
// lives in pmax.go next to the estimator; its draws follow the same
// fixed-chunk layout as pools (chunk c reads stream (seed, ns, c) from
// its start), so every stream family shares one determinism story.
const (
	nsPool     uint64 = 0x506F6F4C // solve pools ("PooL")
	nsEstimate uint64 = 0x45737446 // one-shot reverse f-estimation ("EstF")
	nsEval     uint64 = 0x4576616C // evaluation-pool sessions ("Eval")
)

// Engine samples realizations for one instance. It is safe for concurrent
// use; samplers are recycled across calls and goroutines.
type Engine struct {
	in        *ltm.Instance
	samplers  sync.Pool
	draws     atomic.Int64 // every draw made through the engine
	poolDraws atomic.Int64 // draws spent filling pools (subset of draws)
	pmaxDraws atomic.Int64 // draws spent in p_max estimator ledgers (subset of draws)

	// Delta-repair accounting (subsets of draws; see repair.go): draws
	// re-made resampling damaged chunks, draws adopted across a delta
	// without resampling, and the damaged chunk count.
	repairDraws  atomic.Int64
	repairSaved  atomic.Int64
	repairChunks atomic.Int64

	// lineage, when bound, lets snapshot adoption resolve fingerprints of
	// ancestor epochs of the same evolving graph (see lineage.go). gfp is
	// the graph-level fingerprint; fp mixes in (s, t).
	lineage *Lineage
	gfpOnce sync.Once
	gfp     uint64
	fpOnce  sync.Once
	fp      uint64
}

// fpFinalize is the murmur3 finalizer used to restore avalanche after the
// word-wise FNV mixing in the fingerprint functions.
func fpFinalize(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// GraphFingerprint returns a content hash of a (graph, weights) pair —
// structure and edge weights, but no (s, t) binding, so one O(V+E) pass
// serves every pair session on the graph (instance fingerprints mix the
// endpoints in afterwards, O(1) each). It identifies one graph *epoch*:
// applying a delta changes it, and the lineage of these values is what
// lets a restore recognize a snapshot from an earlier epoch of the same
// evolving graph (see Lineage).
func GraphFingerprint(g *graph.Graph, w weights.Scheme) uint64 {
	// Word-wise FNV-1a (whole uint64 per round, not per byte — this runs
	// on server construction and every delta, so it must stay a small
	// fraction of a reload) with a murmur3 finalizer.
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) { h = (h ^ v) * prime64 }
	mix(uint64(g.NumNodes()))
	for v := graph.Node(0); v < graph.Node(g.NumNodes()); v++ {
		nb := g.Neighbors(v)
		mix(uint64(len(nb)))
		for _, u := range nb {
			mix(uint64(u))
			mix(math.Float64bits(w.W(u, v)))
		}
	}
	return fpFinalize(h)
}

// instanceFingerprint derives the per-instance fingerprint from a graph
// epoch's fingerprint and the (s, t) endpoints.
func instanceFingerprint(graphFP uint64, s, t graph.Node) uint64 {
	const prime64 = 1099511628211
	h := graphFP
	h = (h ^ uint64(uint32(s))) * prime64
	h = (h ^ uint64(uint32(t))) * prime64
	return fpFinalize(h)
}

// Bind attaches the engine to a graph-epoch lineage and pins its graph
// fingerprint, sparing the O(V+E) hash when the caller (a serving layer
// that computed it once per epoch) already knows it. Call before the
// first Fingerprint use; an engine that already hashed on its own keeps
// its value (identical, since GraphFingerprint is deterministic).
func (e *Engine) Bind(lin *Lineage, graphFP uint64) {
	e.lineage = lin
	e.gfpOnce.Do(func() { e.gfp = graphFP })
}

// GraphFP returns the engine's graph-epoch fingerprint (computing it on
// first use unless Bind supplied it).
func (e *Engine) GraphFP() uint64 {
	e.gfpOnce.Do(func() { e.gfp = GraphFingerprint(e.in.Graph(), e.in.Weights()) })
	return e.gfp
}

// Fingerprint returns a content hash of the engine's problem instance —
// graph structure, edge weights, initiator and target. Snapshots embed
// it so a restore can reject pools sampled on a *different* instance
// that happens to share a node count (same-seed restarts against a
// modified graph must resample — or, when the mismatch resolves to an
// ancestor epoch in a bound lineage, adopt and repair).
func (e *Engine) Fingerprint() uint64 {
	e.fpOnce.Do(func() { e.fp = instanceFingerprint(e.GraphFP(), e.in.S(), e.in.T()) })
	return e.fp
}

// New returns an engine for the instance.
func New(in *ltm.Instance) *Engine {
	e := &Engine{in: in}
	e.samplers.New = func() any { return realization.NewSampler(in) }
	return e
}

// Instance returns the underlying instance.
func (e *Engine) Instance() *ltm.Instance { return e.in }

// Draws returns the total number of realization draws made through the
// engine; PoolDraws counts only those spent filling pools. Each pooled
// draw is counted exactly once: when a Session regrows a partial trailing
// chunk, the re-derived prefix is not re-counted, so after any grow
// sequence PoolDraws equals the sum of the cached pool sizes. The pair
// makes pool reuse observable: an α-sweep through one Session leaves
// PoolDraws at exactly the pool size.
func (e *Engine) Draws() int64     { return e.draws.Load() }
func (e *Engine) PoolDraws() int64 { return e.poolDraws.Load() }

// PmaxDraws counts the draws spent filling p_max estimator ledgers
// (a subset of Draws, disjoint from PoolDraws). Each ledgered draw is
// charged at most once — regrowing a partial trailing chunk charges only
// the net growth — so after any estimate sequence PmaxDraws equals the
// draws this process sampled into live estimator ledgers. Ledger content
// restored from a snapshot is NOT counted (those draws were paid for in
// a previous life), so a restored estimator's ledger can exceed the
// counter; the gap is exactly the restart's sampling win.
func (e *Engine) PmaxDraws() int64 { return e.pmaxDraws.Load() }

// RepairDrawsResampled, RepairDrawsSaved and RepairChunksResampled expose
// the engine's delta-repair accounting: draws re-made resampling damaged
// chunks (charged to Draws but to neither PoolDraws nor PmaxDraws — the
// repaired pool's size was paid for at the old epoch), draws whose chunks
// were adopted across a delta without resampling (the repair-vs-discard
// win), and the damaged chunk count.
func (e *Engine) RepairDrawsResampled() int64  { return e.repairDraws.Load() }
func (e *Engine) RepairDrawsSaved() int64      { return e.repairSaved.Load() }
func (e *Engine) RepairChunksResampled() int64 { return e.repairChunks.Load() }

// addPmaxDraws charges n p_max-ledger draws to the engine's ledger.
func (e *Engine) addPmaxDraws(n int64) {
	e.draws.Add(n)
	e.pmaxDraws.Add(n)
}

// chunkPaths holds the type-1 paths of one sampled chunk in local CSR
// form: path j is arena[offsets[j]:offsets[j+1]] and was produced by the
// chunk-local draw drawIdx[j]. The draw indices are what let an
// assembled pool serve truncated prefix views (Pool.Truncate) at any
// draw count, independent of how large the cache has grown.
type chunkPaths struct {
	draws   int64
	arena   []graph.Node
	offsets []int32
	drawIdx []int32
	// touched is the sorted distinct set of nodes the chunk's draws
	// consulted (see realization.Sampler.BeginTouches) — the delta-repair
	// damage test: a chunk whose touched set is disjoint from a delta's
	// dirty nodes replays byte-identically on the post-delta graph. nil
	// means unknown (e.g. restored from a snapshot without a touch
	// section), which repair treats as damaged — always correct, just
	// slower.
	touched []graph.Node
}

// chunkBuf carries the backing arrays a sampled chunk appends into.
// Buffers cycle through a process-wide pool: a sampling call draws one
// per chunk, hands its (possibly regrown) arrays back after pool
// assembly, and steady-state sampling stops allocating entirely — the
// arenas are size-hinted by whatever previous chunks needed. The pool is
// package-level rather than per-Engine because a buffer's contents are
// appended from scratch every use and carry nothing instance-specific,
// so a batched top-k request spanning many pair engines warms one shared
// set of arenas instead of one cold set per candidate.
type chunkBuf struct {
	arena   []graph.Node
	offsets []int32
	drawIdx []int32
	touched []graph.Node
}

var chunkBufs = sync.Pool{New: func() any { return new(chunkBuf) }}

// getChunkBuf draws a recycled chunk buffer from the shared pool.
func (e *Engine) getChunkBuf() *chunkBuf { return chunkBufs.Get().(*chunkBuf) }

// putChunkBuf returns cp's backing arrays to the pool through b (the
// buffer cp was sampled into). keepTables leaves offsets/drawIdx with the
// caller — Session retains them for regrowth and recycles only the
// arena, whose contents it re-aliases into the assembled pool.
func (e *Engine) putChunkBuf(b *chunkBuf, cp chunkPaths, keepTables bool) {
	b.arena = cp.arena[:0]
	if keepTables {
		b.offsets, b.drawIdx, b.touched = nil, nil, nil
	} else {
		b.offsets = cp.offsets[:0]
		b.drawIdx = cp.drawIdx[:0]
		b.touched = cp.touched[:0]
	}
	chunkBufs.Put(b)
}

// sampleChunk draws n realizations from the stream (seed, ns, chunk) and
// accumulates the type-1 paths into b's chunk-local arena — no per-path
// allocation, and none at all once b's arrays are warm. A chunk's result
// depends only on (seed, ns, chunk, n), and a shorter chunk's paths are
// a prefix of a longer one's, which is what lets Session grow a partial
// trailing chunk consistently.
//
// sampleChunk does not touch the draw ledger: the caller accounts for the
// draws it is responsible for, so a Session that regrows a partial chunk
// (re-deriving its already-counted prefix) can charge only the net-new
// draws and keep PoolDraws equal to the pool size.
func (e *Engine) sampleChunk(seed int64, ns uint64, chunk, n int64, b *chunkBuf) chunkPaths {
	st := rng.DerivedStream(seed, ns, uint64(chunk))
	sp := e.samplers.Get().(*realization.Sampler)
	sp.BeginTouches()
	cp := chunkPaths{
		draws:   n,
		arena:   b.arena[:0],
		offsets: append(b.offsets[:0], 0),
		drawIdx: b.drawIdx[:0],
	}
	for i := int64(0); i < n; i++ {
		tg := sp.SampleTGView(&st)
		if tg.Outcome == realization.Type1 {
			cp.arena = append(cp.arena, tg.Path...)
			cp.offsets = append(cp.offsets, int32(len(cp.arena)))
			cp.drawIdx = append(cp.drawIdx, int32(i))
		}
	}
	cp.touched = append(b.touched[:0], sp.Touches()...)
	slices.Sort(cp.touched)
	e.samplers.Put(sp)
	return cp
}

// addPoolDraws charges n pool draws to the engine's ledger.
func (e *Engine) addPoolDraws(n int64) {
	e.draws.Add(n)
	e.poolDraws.Add(n)
}

// assemblePool concatenates chunk results (in chunk order) into one pool.
func assemblePool(chunks []chunkPaths, universe int) (*Pool, error) {
	var total, arenaLen int64
	var paths int
	for _, c := range chunks {
		total += c.draws
		arenaLen += int64(len(c.arena))
		paths += len(c.offsets) - 1
	}
	if arenaLen > math.MaxInt32 {
		return nil, fmt.Errorf("engine: pool arena of %d nodes overflows int32 offsets", arenaLen)
	}
	p := &Pool{
		arena:    make([]graph.Node, 0, arenaLen),
		offsets:  make([]int32, 1, paths+1),
		pathDraw: make([]int64, 0, paths),
		total:    total,
		universe: universe,
	}
	var drawBase int64
	for _, c := range chunks {
		base := int32(len(p.arena))
		p.arena = append(p.arena, c.arena...)
		for _, end := range c.offsets[1:] {
			p.offsets = append(p.offsets, base+end)
		}
		for _, d := range c.drawIdx {
			p.pathDraw = append(p.pathDraw, drawBase+int64(d))
		}
		drawBase += c.draws
	}
	return p, nil
}

// maxPoolChunks bounds the per-chunk descriptor table one sampling run
// may materialize (the cap allows ~8.6 billion draws, weeks of work; a
// request beyond it — e.g. an Unbounded solve whose theoretical l* is
// astronomical — is a configuration error and gets a clean error instead
// of a fatal allocation).
const maxPoolChunks = 1 << 22

// checkDraws validates a requested draw count against the chunk-table cap.
func checkDraws(l int64) error {
	if l <= 0 {
		return fmt.Errorf("engine: draw count %d must be positive", l)
	}
	if (l+ChunkSize-1)/ChunkSize > maxPoolChunks {
		return fmt.Errorf("engine: draw count %d exceeds the %d maximum (cap the pool, e.g. MaxRealizations)",
			l, int64(maxPoolChunks)*ChunkSize)
	}
	return nil
}

// SamplePool draws l realizations (workers 0 = all CPUs) and collects the
// type-1 paths into a CSR pool. The result is a pure function of
// (seed, l): draws are partitioned into fixed chunks assigned by index,
// so the worker count affects only wall-clock time.
func (e *Engine) SamplePool(ctx context.Context, l int64, workers int, seed int64) (*Pool, error) {
	return e.samplePoolNS(ctx, l, workers, seed, nsPool)
}

func (e *Engine) samplePoolNS(ctx context.Context, l int64, workers int, seed int64, ns uint64) (*Pool, error) {
	if err := checkDraws(l); err != nil {
		return nil, err
	}
	chunks := make([]chunkPaths, (l+ChunkSize-1)/ChunkSize)
	bufs := make([]*chunkBuf, len(chunks))
	err := parallel.ForChunks(ctx, l, ChunkSize, workers, func(c int, _, n int64) {
		bufs[c] = e.getChunkBuf()
		chunks[c] = e.sampleChunk(seed, ns, int64(c), n, bufs[c])
	})
	if err != nil {
		return nil, err
	}
	e.addPoolDraws(l)
	pool, err := assemblePool(chunks, e.in.Graph().NumNodes())
	if err != nil {
		return nil, err
	}
	// Assembly copied everything out; the chunk arrays go back to the pool.
	for c := range chunks {
		e.putChunkBuf(bufs[c], chunks[c], false)
	}
	return pool, nil
}

// EstimateF estimates f(invited) with trials independent reverse samples
// (Corollary 1): the fraction of draws whose t(g) is covered. Lemma 1
// guarantees agreement with the forward simulator. Like SamplePool, the
// estimate is a pure function of (seed, trials) regardless of workers.
func (e *Engine) EstimateF(ctx context.Context, invited *graph.NodeSet, trials int64, workers int, seed int64) (float64, error) {
	if err := checkDraws(trials); err != nil {
		return 0, err
	}
	hits := make([]int64, (trials+ChunkSize-1)/ChunkSize)
	err := parallel.ForChunks(ctx, trials, ChunkSize, workers, func(c int, _, n int64) {
		st := rng.DerivedStream(seed, nsEstimate, uint64(c))
		sp := e.samplers.Get().(*realization.Sampler)
		var h int64
		for i := int64(0); i < n; i++ {
			if sp.SampleTGView(&st).Covered(invited) {
				h++
			}
		}
		e.samplers.Put(sp)
		e.draws.Add(n)
		hits[c] = h
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, h := range hits {
		total += h
	}
	return float64(total) / float64(trials), nil
}
