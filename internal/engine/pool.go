package engine

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/setcover"
)

// Pool is a batch of sampled realizations B_l in compact CSR form: the
// type-1 backward paths live in one flat arena, so a pool of hundreds of
// thousands of realizations costs two allocations instead of one per
// path. Path i is arena[offsets[i]:offsets[i+1]] and was produced by
// draw pathDraw[i] (ascending).
//
// Pool contents are a pure function of (seed, l) — chunked sampling makes
// them independent of the worker count (see Engine.SamplePool), and
// Truncate serves the exact-prefix view at any smaller draw count, so
// estimates and solves can be pure functions of the requested size no
// matter how large a cached pool has grown. Pools are immutable after
// construction and safe for concurrent use.
type Pool struct {
	arena    []graph.Node
	offsets  []int32
	pathDraw []int64
	total    int64
	universe int

	idxOnce  sync.Once
	idx      *Index
	idxBuilt atomic.Bool // set after idx is fully constructed

	famOnce  sync.Once
	fam      *setcover.Family
	famErr   error
	famBuilt atomic.Bool // set after fam is fully constructed
}

// Truncate returns the prefix view of the pool's first l draws: exactly
// the pool that sampling l draws one-shot would have produced (chunk
// streams are indexed and prefix-stable). The view shares the parent's
// arena and offsets zero-copy and builds its own coverage index on
// demand. l ≥ Total returns the pool itself.
func (p *Pool) Truncate(l int64) *Pool {
	if l >= p.total {
		return p
	}
	k := sort.Search(len(p.pathDraw), func(i int) bool { return p.pathDraw[i] >= l })
	return &Pool{
		arena:    p.arena,
		offsets:  p.offsets[:k+1],
		pathDraw: p.pathDraw[:k],
		total:    l,
		universe: p.universe,
	}
}

// Total returns l, the total number of realizations drawn (|B_l|).
func (p *Pool) Total() int64 { return p.total }

// NumType1 returns |B_l¹|, the number of type-1 realizations.
func (p *Pool) NumType1() int { return len(p.offsets) - 1 }

// Universe returns the node-id bound of the underlying graph.
func (p *Pool) Universe() int { return p.universe }

// Path returns the i-th type-1 backward path t(g). The slice aliases the
// pool's arena and must not be modified.
func (p *Pool) Path(i int) []graph.Node {
	return p.arena[p.offsets[i]:p.offsets[i+1]]
}

// FractionType1 returns |B_l¹|/l, the pool's estimate of p_max.
func (p *Pool) FractionType1() float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.NumType1()) / float64(p.total)
}

// CoverageCount returns F(B_l, I): the number of pooled realizations
// covered by invited (t(g) ⊆ I). This is the allocation-free linear scan;
// for repeated queries against one pool, Index().CoverageCount amortizes
// an inverted node → realization index instead of rescanning every path.
func (p *Pool) CoverageCount(invited *graph.NodeSet) int64 {
	var covered int64
	for i := 0; i < p.NumType1(); i++ {
		ok := true
		for _, v := range p.Path(i) {
			if !invited.Contains(v) {
				ok = false
				break
			}
		}
		if ok {
			covered++
		}
	}
	return covered
}

// EstimateF returns F(B_l, I)/l, the pool's estimate of f(I), via the
// coverage index.
func (p *Pool) EstimateF(invited *graph.NodeSet) float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.Index().CoverageCount(invited)) / float64(p.total)
}

// EstimateFMany returns F(B_l, I)/l for every invitation set in one
// batched traversal of the coverage index's postings (Index.CoverageCounts);
// measuring k sets costs one pass instead of k.
func (p *Pool) EstimateFMany(invited []*graph.NodeSet) []float64 {
	counts := p.Index().CoverageCounts(invited)
	out := make([]float64, len(counts))
	if p.total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(p.total)
	}
	return out
}

// Index returns the pool's inverted node → realization index, built
// lazily on first use and cached.
func (p *Pool) Index() *Index {
	p.idxOnce.Do(func() {
		p.idx = newIndex(p)
		p.idxBuilt.Store(true)
	})
	return p.idx
}

// MemBytes returns the resident size of the pool: the CSR path arena,
// offset table and draw-index table, plus the coverage index and the
// set-cover family once they have been built. It is the unit of account
// for memory-budgeted pool eviction. Truncated views share their parent's
// tables; account them with IndexMemBytes + FamilyMemBytes instead.
func (p *Pool) MemBytes() int64 {
	return int64(cap(p.arena))*4 + int64(cap(p.offsets))*4 + int64(cap(p.pathDraw))*8 +
		p.IndexMemBytes() + p.FamilyMemBytes()
}

// IndexMemBytes returns the resident size of the pool's coverage index
// (0 until it is built).
func (p *Pool) IndexMemBytes() int64 {
	if p.idxBuilt.Load() {
		return p.idx.memBytes()
	}
	return 0
}

// FamilyMemBytes returns the resident size of the pool's cached set-cover
// family (0 until it is built). Together with IndexMemBytes it is all the
// storage a truncated view owns.
func (p *Pool) FamilyMemBytes() int64 {
	if p.famBuilt.Load() {
		return p.fam.MemBytes()
	}
	return 0
}

// Family returns the pool's set-cover family — the immutable fold
// (distinct paths with multiplicities plus the element → sets index) every
// MSC solve against this pool shares — built lazily on first use from the
// CSR arena and cached. Repeated solves at new demands or budgets (α/β
// sweeps, SolveMax budget searches, server traffic) then skip the
// per-query rebuild entirely: they borrow a pooled Solver holding only
// mutable scratch. Safe for concurrent use.
func (p *Pool) Family() (*setcover.Family, error) {
	p.famOnce.Do(func() {
		p.fam, p.famErr = setcover.NewFamily(p.SetcoverInstance())
		if p.famErr == nil {
			p.famBuilt.Store(true)
		}
	})
	return p.fam, p.famErr
}

// FamilyCtx is Family with stage tracing: when the call is the one that
// actually folds the family (not a cache hit), the fold is recorded as a
// family_fold span on the context's trace. The built fast path skips the
// span entirely, so cached folds cost one atomic load over Family.
func (p *Pool) FamilyCtx(ctx context.Context) (*setcover.Family, error) {
	if p.famBuilt.Load() {
		return p.fam, nil
	}
	sp := obs.TraceFrom(ctx).StartSpan(obs.StageFamilyFold)
	defer sp.End()
	return p.Family()
}

// SetcoverInstance hands the pool to the MSC solver zero-copy: the arena
// and offsets become the solver's CSR set family directly (graph.Node is
// an alias of int32), with no per-path slice headers materialized. The
// arena is sliced to the paths the pool owns — a truncated view shares a
// larger parent arena.
func (p *Pool) SetcoverInstance() *setcover.Instance {
	return &setcover.Instance{
		UniverseSize: p.universe,
		SetArena:     p.arena[:p.offsets[p.NumType1()]],
		SetOffsets:   p.offsets,
	}
}
