package engine

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/setcover"
)

// Pool is a batch of sampled realizations B_l in compact CSR form: the
// type-1 backward paths live in one flat arena, so a pool of hundreds of
// thousands of realizations costs two allocations instead of one per
// path. Path i is arena[offsets[i]:offsets[i+1]].
//
// Pool contents are a pure function of (seed, l) — chunked sampling makes
// them independent of the worker count (see Engine.SamplePool). Pools are
// immutable after construction and safe for concurrent use.
type Pool struct {
	arena    []graph.Node
	offsets  []int32
	total    int64
	universe int

	idxOnce sync.Once
	idx     *Index
}

// Total returns l, the total number of realizations drawn (|B_l|).
func (p *Pool) Total() int64 { return p.total }

// NumType1 returns |B_l¹|, the number of type-1 realizations.
func (p *Pool) NumType1() int { return len(p.offsets) - 1 }

// Universe returns the node-id bound of the underlying graph.
func (p *Pool) Universe() int { return p.universe }

// Path returns the i-th type-1 backward path t(g). The slice aliases the
// pool's arena and must not be modified.
func (p *Pool) Path(i int) []graph.Node {
	return p.arena[p.offsets[i]:p.offsets[i+1]]
}

// FractionType1 returns |B_l¹|/l, the pool's estimate of p_max.
func (p *Pool) FractionType1() float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.NumType1()) / float64(p.total)
}

// CoverageCount returns F(B_l, I): the number of pooled realizations
// covered by invited (t(g) ⊆ I). This is the allocation-free linear scan;
// for repeated queries against one pool, Index().CoverageCount amortizes
// an inverted node → realization index instead of rescanning every path.
func (p *Pool) CoverageCount(invited *graph.NodeSet) int64 {
	var covered int64
	for i := 0; i < p.NumType1(); i++ {
		ok := true
		for _, v := range p.Path(i) {
			if !invited.Contains(v) {
				ok = false
				break
			}
		}
		if ok {
			covered++
		}
	}
	return covered
}

// EstimateF returns F(B_l, I)/l, the pool's estimate of f(I), via the
// coverage index.
func (p *Pool) EstimateF(invited *graph.NodeSet) float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.Index().CoverageCount(invited)) / float64(p.total)
}

// Index returns the pool's inverted node → realization index, built
// lazily on first use and cached.
func (p *Pool) Index() *Index {
	p.idxOnce.Do(func() { p.idx = newIndex(p) })
	return p.idx
}

// SetcoverInstance hands the pool to the MSC solver zero-copy: the arena
// and offsets become the solver's CSR set family directly (graph.Node is
// an alias of int32), with no per-path slice headers materialized.
func (p *Pool) SetcoverInstance() *setcover.Instance {
	return &setcover.Instance{
		UniverseSize: p.universe,
		SetArena:     p.arena,
		SetOffsets:   p.offsets,
	}
}
