package engine

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ltm"
)

// randomDelta builds a delta of nAdd new edges and nRemove existing ones
// on g, avoiding self-loops, duplicates, and the (s, t) pair itself (a
// delta that makes s and t adjacent dissolves the instance — tested
// separately at the server layer).
func randomDelta(r *rand.Rand, g *graph.Graph, s, t graph.Node, nAdd, nRemove int) *graph.Delta {
	n := g.NumNodes()
	d := &graph.Delta{}
	for len(d.Add) < nAdd {
		u, v := graph.Node(r.Intn(n)), graph.Node(r.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if (u == s && v == t) || (u == t && v == s) {
			continue
		}
		d.Add = append(d.Add, graph.Edge{U: u, V: v})
	}
	edges := g.Edges()
	for len(d.Remove) < nRemove && len(edges) > 0 {
		e := edges[r.Intn(len(edges))]
		d.Remove = append(d.Remove, e)
	}
	return d
}

// applyDelta produces the epoch-N+1 instance (and its dirty set) or
// fails the test.
func applyDelta(t *testing.T, in *ltm.Instance, d *graph.Delta) (*ltm.Instance, []graph.Node) {
	t.Helper()
	g2, dirty, err := d.Apply(in.Graph())
	if err != nil {
		t.Fatal(err)
	}
	in2, err := in.ApplyDelta(g2, dirty, nil)
	if err != nil {
		t.Fatal(err)
	}
	return in2, dirty
}

// TestRepairToIdentity is the tentpole invariant: a repaired pool —
// undamaged chunks adopted, damaged chunks resampled under the original
// (seed, ns, chunk) streams — is byte-identical to a cold pool sampled
// on the post-delta instance, for any worker count, and stays identical
// through truncated views and subsequent growth.
func TestRepairToIdentity(t *testing.T) {
	ctx := context.Background()
	const l = 3*ChunkSize + 700
	for _, workers := range []int{1, 2, 8} {
		for trial := int64(0); trial < 4; trial++ {
			r := rand.New(rand.NewSource(100*int64(workers) + trial))
			g := randomConnected(3+trial, 40, 60)
			if g.HasEdge(0, 39) {
				continue
			}
			in := mustInstance(t, g, 0, 39)
			old := New(in).NewSession(11, workers)
			if _, err := old.Pool(ctx, l); err != nil {
				t.Fatal(err)
			}

			in2, dirty := applyDelta(t, in, randomDelta(r, g, 0, 39, 2, 2))
			ne := New(in2)
			repaired, st, err := old.RepairTo(ctx, ne, dirty)
			if err != nil {
				t.Fatal(err)
			}
			if st.Chunks != 4 || st.DrawsResampled+st.DrawsSaved != l {
				t.Fatalf("workers=%d trial=%d: stats %+v, want 4 chunks covering %d draws", workers, trial, st, l)
			}
			if got := ne.RepairDrawsResampled(); got != st.DrawsResampled {
				t.Fatalf("engine repair ledger %d, want %d", got, st.DrawsResampled)
			}

			cold := New(in2).NewSession(11, workers)
			want, err := cold.Pool(ctx, l)
			if err != nil {
				t.Fatal(err)
			}
			got, err := repaired.Pool(ctx, l)
			if err != nil {
				t.Fatal(err)
			}
			mustPoolsEqual(t, got, want)

			// Truncated views, snapshots, and subsequent growth must all
			// behave as if the repaired session had been sampled cold.
			gv, err := repaired.Pool(ctx, l/2)
			if err != nil {
				t.Fatal(err)
			}
			wv, err := cold.Pool(ctx, l/2)
			if err != nil {
				t.Fatal(err)
			}
			mustPoolsEqual(t, gv, wv)
			if !bytes.Equal(snapshotOf(t, repaired), snapshotOf(t, cold)) {
				t.Fatalf("workers=%d trial=%d: repaired snapshot differs from cold", workers, trial)
			}
			const grown = l + ChunkSize + 13
			gg, err := repaired.Pool(ctx, grown)
			if err != nil {
				t.Fatal(err)
			}
			wg, err := cold.Pool(ctx, grown)
			if err != nil {
				t.Fatal(err)
			}
			mustPoolsEqual(t, gg, wg)
		}
	}
}

// TestRepairToSavesDraws picks a delta whose dirty nodes are the rarest
// in the pool's touch sets, so at least one chunk must be adopted
// verbatim and the repair bill is strictly below discard-and-resample.
func TestRepairToSavesDraws(t *testing.T) {
	ctx := context.Background()
	g := randomConnected(17, 4000, 1500)
	in := mustInstance(t, g, 0, 3999)
	const l = 4 * ChunkSize
	old := New(in).NewSession(23, 4)
	if _, err := old.Pool(ctx, l); err != nil {
		t.Fatal(err)
	}

	// Count per-node chunk appearances and find a pair of nodes missing
	// from at least one common chunk; an edge flip between them damages
	// only the chunks that consulted either endpoint.
	appears := make([]int, g.NumNodes())
	for _, c := range old.chunks {
		for _, v := range c.touched {
			appears[v]++
		}
	}
	var u, v graph.Node = -1, -1
	for cand := graph.Node(1); cand < graph.Node(g.NumNodes()); cand++ {
		if appears[cand] < len(old.chunks) && cand != 3999 {
			if u < 0 {
				u = cand
			} else if !g.HasEdge(u, cand) {
				v = cand
				break
			}
		}
	}
	if v < 0 {
		t.Skip("no sparse node pair found")
	}
	d := &graph.Delta{Add: []graph.Edge{{U: u, V: v}}}
	in2, dirty := applyDelta(t, in, d)
	repaired, st, err := old.RepairTo(ctx, New(in2), dirty)
	if err != nil {
		t.Fatal(err)
	}
	if st.DrawsSaved <= 0 {
		t.Fatalf("sparse delta saved no draws: %+v", st)
	}
	if st.DrawsResampled >= l {
		t.Fatalf("sparse delta resampled everything: %+v", st)
	}
	want, err := New(in2).NewSession(23, 4).Pool(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	got, err := repaired.Pool(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	mustPoolsEqual(t, got, want)
}

// TestPmaxRepairToIdentity: a repaired p_max ledger matches a cold
// ledger drawn on the post-delta instance — same draws, same success
// positions — so every stopping-rule answer is preserved or correctly
// revised.
func TestPmaxRepairToIdentity(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(9))
	g := randomConnected(5, 40, 60)
	if g.HasEdge(0, 39) {
		t.Skip("adjacent s,t")
	}
	in := mustInstance(t, g, 0, 39)
	const l = 3*ChunkSize + 100
	pe := New(in).NewPmaxEstimator(31, 4)
	pe.mu.Lock()
	err := pe.growLocked(ctx, l)
	pe.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	in2, dirty := applyDelta(t, in, randomDelta(r, g, 0, 39, 2, 1))
	ne := New(in2)
	repaired, st, err := pe.RepairTo(ctx, ne, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if st.DrawsResampled+st.DrawsSaved != l {
		t.Fatalf("stats %+v do not cover %d draws", st, l)
	}

	cold := New(in2).NewPmaxEstimator(31, 4)
	cold.mu.Lock()
	err = cold.growLocked(ctx, l)
	cold.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Draws() != cold.Draws() || repaired.Successes() != cold.Successes() {
		t.Fatalf("repaired ledger %d/%d, cold %d/%d",
			repaired.Draws(), repaired.Successes(), cold.Draws(), cold.Successes())
	}
	for i := range cold.chunks {
		a, b := repaired.chunks[i], cold.chunks[i]
		if a.draws != b.draws || len(a.succ) != len(b.succ) {
			t.Fatalf("chunk %d geometry differs", i)
		}
		for j := range a.succ {
			if a.succ[j] != b.succ[j] {
				t.Fatalf("chunk %d success %d: %d vs %d", i, j, a.succ[j], b.succ[j])
			}
		}
	}
}

// TestSnapshotAdoptAndRepair: an epoch-N snapshot restored into an
// engine bound to the epoch-N+1 lineage is adopted and repaired — the
// resulting session answers exactly like a cold one — instead of being
// rejected for its stale fingerprint.
func TestSnapshotAdoptAndRepair(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(77))
	g := randomConnected(21, 40, 60)
	if g.HasEdge(0, 39) {
		t.Skip("adjacent s,t")
	}
	in := mustInstance(t, g, 0, 39)
	const l = 2*ChunkSize + 300

	gfp1 := GraphFingerprint(g, in.Weights())
	lin := NewLineage(gfp1)
	e1 := New(in)
	e1.Bind(lin, gfp1)
	old := e1.NewSession(41, 2)
	if _, err := old.Pool(ctx, l); err != nil {
		t.Fatal(err)
	}
	data := snapshotOf(t, old)

	in2, dirty := applyDelta(t, in, randomDelta(r, g, 0, 39, 1, 1))
	gfp2 := GraphFingerprint(in2.Graph(), in2.Weights())
	lin.Advance(gfp2, dirty)

	e2 := New(in2)
	e2.Bind(lin, gfp2)
	loaded, err := OpenSession(e2, bytes.NewReader(data), 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(in2).NewSession(41, 2).Pool(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Pool(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	mustPoolsEqual(t, got, want)
	if e2.RepairChunksResampled() == 0 && len(dirty) > 0 {
		// A delta that dirties nodes no chunk touched is possible but
		// vanishingly unlikely on a 40-node graph; treat zero resamples
		// with a damaged lineage as suspicious only when repair claims
		// to have examined nothing.
		if e2.RepairDrawsSaved() == 0 {
			t.Fatal("adopt-and-repair examined no chunks")
		}
	}

	// Without a bound lineage the same stale snapshot must be rejected
	// with the instance-mismatch sentinel.
	if _, err := OpenSession(New(in2), bytes.NewReader(data), 2); !errors.Is(err, ErrInstanceMismatch) {
		t.Fatalf("unbound engine: err = %v, want ErrInstanceMismatch", err)
	}

	// A two-epoch gap unions the dirty sets: snapshot at epoch N restored
	// at epoch N+2.
	in3, dirty2 := applyDelta(t, in2, randomDelta(r, in2.Graph(), 0, 39, 1, 1))
	gfp3 := GraphFingerprint(in3.Graph(), in3.Weights())
	lin.Advance(gfp3, dirty2)
	e3 := New(in3)
	e3.Bind(lin, gfp3)
	loaded3, err := OpenSession(e3, bytes.NewReader(data), 2)
	if err != nil {
		t.Fatal(err)
	}
	want3, err := New(in3).NewSession(41, 2).Pool(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	got3, err := loaded3.Pool(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	mustPoolsEqual(t, got3, want3)
}

// TestSnapshotAdoptUniverseGrowth: a delta may add nodes; an ancestor
// snapshot with the smaller universe is still adopted (dirty nodes
// damage its chunks as usual), while a snapshot from a LARGER universe
// than the engine's is rejected.
func TestSnapshotAdoptUniverseGrowth(t *testing.T) {
	ctx := context.Background()
	g := randomConnected(34, 30, 40)
	if g.HasEdge(0, 29) {
		t.Skip("adjacent s,t")
	}
	in := mustInstance(t, g, 0, 29)
	const l = ChunkSize + 50

	gfp1 := GraphFingerprint(g, in.Weights())
	lin := NewLineage(gfp1)
	e1 := New(in)
	e1.Bind(lin, gfp1)
	old := e1.NewSession(51, 1)
	if _, err := old.Pool(ctx, l); err != nil {
		t.Fatal(err)
	}
	data := snapshotOf(t, old)

	// Add an edge to a brand-new node 30: universe grows to 31.
	d := &graph.Delta{Add: []graph.Edge{{U: 5, V: 30}}}
	in2, dirty := applyDelta(t, in, d)
	if in2.Graph().NumNodes() != 31 {
		t.Fatalf("universe = %d, want 31", in2.Graph().NumNodes())
	}
	gfp2 := GraphFingerprint(in2.Graph(), in2.Weights())
	lin.Advance(gfp2, dirty)
	e2 := New(in2)
	e2.Bind(lin, gfp2)
	loaded, err := OpenSession(e2, bytes.NewReader(data), 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(in2).NewSession(51, 1).Pool(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Pool(ctx, l)
	if err != nil {
		t.Fatal(err)
	}
	mustPoolsEqual(t, got, want)

	// The reverse direction — an epoch-N+1 snapshot into the epoch-N
	// engine — must be refused even though the fingerprint is in the
	// lineage story: its universe exceeds the engine's graph.
	big := e2.NewSession(51, 1)
	if _, err := big.Pool(ctx, l); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSession(e1, bytes.NewReader(snapshotOf(t, big)), 1); !errors.Is(err, ErrInstanceMismatch) {
		t.Fatalf("larger-universe snapshot: err = %v, want ErrInstanceMismatch", err)
	}
}
