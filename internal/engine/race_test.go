//go:build race

package engine

// raceEnabled gates the AllocsPerRun pins in perf_test.go: the race
// runtime allocates shadow state inside otherwise alloc-free code, so
// the zero-alloc contracts are only checkable without -race.
const raceEnabled = true
