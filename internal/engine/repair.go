package engine

import (
	"context"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// This file is the engine half of delta repair. A graph delta dirties a
// set of nodes (changed edges' endpoints and re-weighted rows); a sampled
// chunk is *damaged* iff its touched set (the nodes whose influencer rows
// or N_s membership its draws consulted — see chunkPaths.touched)
// intersects the dirty set. Undamaged chunks replay byte-identically on
// the post-delta graph, so repair adopts their bytes verbatim and
// resamples only damaged chunks under the original (seed, ns, chunk)
// streams — making a repaired pool byte-identical to a cold pool sampled
// at the new epoch, at a fraction of the draw bill for sparse deltas.

// RepairStats accounts one repair pass.
type RepairStats struct {
	// Chunks is the number of chunks examined; Resampled of them were
	// damaged (or carried no touch information) and were re-drawn.
	Chunks    int
	Resampled int
	// DrawsResampled is the draw bill of the resampled chunks;
	// DrawsSaved the draws adopted without resampling — what a
	// discard-and-resample would have paid on top.
	DrawsResampled int64
	DrawsSaved     int64
}

// Add accumulates another pass's stats.
func (r *RepairStats) Add(o RepairStats) {
	r.Chunks += o.Chunks
	r.Resampled += o.Resampled
	r.DrawsResampled += o.DrawsResampled
	r.DrawsSaved += o.DrawsSaved
}

// touchedIntersects reports whether any touched node is dirty.
func touchedIntersects(touched []graph.Node, dirty *graph.NodeSet) bool {
	for _, v := range touched {
		if dirty.Contains(v) {
			return true
		}
	}
	return false
}

// repairChunks adopts the undamaged chunks of old and resamples the rest
// on engine e (the post-delta engine) under the original stream identity.
// Adopted chunkPaths share their backing arrays with old — callers must
// treat old's tables as immutable, which they are (growth replaces them
// wholesale). Resampled chunks' buffers are returned in bufs (nil for
// adopted chunks) for recycling after pool assembly. The resampled draws
// are charged to e's Draws and repair ledgers, but not to PoolDraws: the
// repaired pool's size was paid for at the old epoch.
func repairChunks(ctx context.Context, e *Engine, seed int64, ns uint64, old []chunkPaths, dirty []graph.Node, workers int) ([]chunkPaths, []*chunkBuf, RepairStats, error) {
	ds := graph.NewNodeSet(e.in.Graph().NumNodes())
	for _, v := range dirty {
		ds.Add(v)
	}
	chunks := make([]chunkPaths, len(old))
	copy(chunks, old)
	var damaged []int
	st := RepairStats{Chunks: len(old)}
	for i, c := range old {
		if c.touched == nil || touchedIntersects(c.touched, ds) {
			damaged = append(damaged, i)
			st.DrawsResampled += c.draws
		} else {
			st.DrawsSaved += c.draws
		}
	}
	st.Resampled = len(damaged)
	bufs := make([]*chunkBuf, len(old))
	err := parallel.For(ctx, len(damaged), workers, func(j int) {
		i := damaged[j]
		bufs[i] = e.getChunkBuf()
		chunks[i] = e.sampleChunk(seed, ns, int64(i), old[i].draws, bufs[i])
	})
	if err != nil {
		return nil, nil, RepairStats{}, err
	}
	e.draws.Add(st.DrawsResampled)
	e.repairDraws.Add(st.DrawsResampled)
	e.repairSaved.Add(st.DrawsSaved)
	e.repairChunks.Add(int64(st.Resampled))
	return chunks, bufs, st, nil
}

// RepairTo builds a session on engine ne — created for the post-delta
// instance, same (s, t) — that adopts this session's cached pool across
// the delta whose dirty node set is given: undamaged chunks keep their
// bytes, damaged chunks are resampled under the original (seed, ns,
// chunk) streams, and the reassembled pool is byte-identical to the one
// a cold session on ne would sample at the same size. The receiver is
// not mutated; in-flight queries on it finish at the old epoch.
func (s *Session) RepairTo(ctx context.Context, ne *Engine, dirty []graph.Node) (*Session, RepairStats, error) {
	sp := obs.TraceFrom(ctx).StartSpan(obs.StageRepair)
	defer sp.End()
	s.mu.Lock()
	old := make([]chunkPaths, len(s.chunks))
	copy(old, s.chunks)
	draws := s.draws
	s.mu.Unlock()
	out := &Session{eng: ne, seed: s.seed, workers: s.workers, ns: s.ns}
	if draws == 0 {
		return out, RepairStats{}, nil
	}
	chunks, bufs, st, err := repairChunks(ctx, ne, s.seed, s.ns, old, dirty, s.workers)
	if err != nil {
		return nil, RepairStats{}, err
	}
	pool, err := assemblePool(chunks, ne.in.Graph().NumNodes())
	if err != nil {
		return nil, RepairStats{}, err
	}
	// Re-alias chunk arenas into the assembled pool arena (as Session.Pool
	// does) so the new session holds one copy of the path data and no
	// reference to the old session's arena.
	var base int32
	for c := range chunks {
		n := int32(len(chunks[c].arena))
		if bufs[c] != nil {
			ne.putChunkBuf(bufs[c], chunks[c], true)
		}
		chunks[c].arena = pool.arena[base : base+n]
		base += n
	}
	out.chunks, out.draws, out.pool = chunks, pool.total, pool
	return out, st, nil
}

// RepairTo builds a p_max estimator on engine ne that adopts this
// estimator's draw ledger across the delta: chunks whose touched sets
// miss the dirty nodes keep their success positions, damaged chunks are
// re-drawn under the original (seed, nsPmax, chunk) streams. The result
// is byte-identical to a cold estimator's ledger at the same size on the
// post-delta instance, so every stopping-rule answer is preserved or
// correctly revised. Chunks restored from a snapshot carry no touch
// information and are conservatively re-drawn (touch sets are not
// persisted for the p_max ledger).
func (pe *PmaxEstimator) RepairTo(ctx context.Context, ne *Engine, dirty []graph.Node) (*PmaxEstimator, RepairStats, error) {
	sp := obs.TraceFrom(ctx).StartSpan(obs.StageRepair)
	defer sp.End()
	pe.mu.Lock()
	old := make([]pmaxChunk, len(pe.chunks))
	copy(old, pe.chunks)
	pe.mu.Unlock()
	out := ne.NewPmaxEstimator(pe.seed, pe.workers)
	if len(old) == 0 {
		return out, RepairStats{}, nil
	}
	ds := graph.NewNodeSet(ne.in.Graph().NumNodes())
	for _, v := range dirty {
		ds.Add(v)
	}
	chunks := make([]pmaxChunk, len(old))
	copy(chunks, old)
	var damaged []int
	st := RepairStats{Chunks: len(old)}
	for i, c := range old {
		if c.touched == nil || touchedIntersects(c.touched, ds) {
			damaged = append(damaged, i)
			st.DrawsResampled += c.draws
		} else {
			st.DrawsSaved += c.draws
		}
	}
	st.Resampled = len(damaged)
	err := parallel.For(ctx, len(damaged), pe.workers, func(j int) {
		i := damaged[j]
		chunks[i] = ne.samplePmaxChunk(pe.seed, int64(i), old[i].draws)
	})
	if err != nil {
		return nil, RepairStats{}, err
	}
	ne.draws.Add(st.DrawsResampled)
	ne.repairDraws.Add(st.DrawsResampled)
	ne.repairSaved.Add(st.DrawsSaved)
	ne.repairChunks.Add(int64(st.Resampled))
	var draws, succ int64
	for _, c := range chunks {
		draws += c.draws
		succ += int64(len(c.succ))
	}
	out.chunks, out.draws, out.succ = chunks, draws, succ
	return out, st, nil
}
