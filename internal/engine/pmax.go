package engine

import (
	"context"
	"fmt"
	"io"
	"math"
	"slices"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/realization"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

// nsPmax namespaces the p_max stopping-rule streams (Algorithm 2) so they
// never collide with the engine's pool, estimation or evaluation streams
// for a shared root seed.
//
// Draw-stream layout: exactly like pool sampling, the Bernoulli type-1
// draws are partitioned into fixed ChunkSize chunks, and chunk c consumes
// the stream rng.DeriveStream(seed, nsPmax, c) from its start. A shorter
// chunk's draws are therefore a prefix of the regrown chunk's, and the
// whole draw sequence — hence every estimate computed from it — is a pure
// function of the seed, for any worker count and any growth schedule.
//
// Epoch semantics: a stream (seed, ns, chunk) names a draw *schedule*,
// not a result — what each draw produces also depends on the graph
// epoch the engine is bound to. A graph delta advances the epoch
// (engine.Lineage) and RepairTo replays exactly the damaged chunks'
// streams from their start against the new epoch, so chunk c's draws
// at epoch N+1 are what a cold epoch-N+1 engine would have produced
// under the same stream; undamaged chunks' outputs are epoch-invariant
// by the touch-set damage test and are adopted verbatim. Estimates
// recomputed after a repair are therefore pure functions of
// (seed, epoch), still for any worker count.
const nsPmax uint64 = 0x506D6178 // "Pmax"

// pmaxInitialDraws is the first growth target of a cold estimator. Growth
// then follows pmaxNextTarget's fixed chunk-aligned ladder, so the
// sampled total always lands on the same rung sequence (until a budget
// clamps it) regardless of which requests drove the growth — which is
// what makes a staged refinement sample no more than the equivalent cold
// estimate: both walk the identical ladder and stop at the identical
// rung.
const pmaxInitialDraws = ChunkSize

// pmaxNextTarget is the growth ladder: from a ledger of draws samples,
// the next rung. It is a pure function of the ledger size — never of the
// request that triggered growth — so staged and cold estimators land on
// byte-identical ledgers. The rung starts one chunk up and grows by a
// capped ~1.25× ratio (chunk-aligned) rather than doubling: Estimate
// re-runs the prefix scan at every rung, so finer rungs stop sampling at
// the first one whose scan already converged, and the worst-case
// oversample past the stopping draw shrinks from ~2× to ~1.25× while the
// rung count to any total stays logarithmic.
func pmaxNextTarget(draws int64) int64 {
	next := draws + draws/4
	if c := next % ChunkSize; c != 0 {
		next += ChunkSize - c
	}
	return max(next, draws+ChunkSize, pmaxInitialDraws)
}

// pmaxChunk is one sampled chunk of the estimator's ledger: draws
// Bernoulli draws, of which the chunk-local indices in succ (ascending)
// were type-1.
type pmaxChunk struct {
	draws int64
	succ  []int32
	// touched is the chunk's delta-repair damage-test input (see
	// chunkPaths.touched); nil when unknown (snapshot-restored ledgers —
	// touch sets are not persisted for p_max, so ancestor-epoch ledgers
	// reset to a full re-draw, which is answer-identical).
	touched []graph.Node
}

// PmaxEstimator is the chunked, resumable form of the paper's Algorithm 2
// (the Dagum–Karp–Luby–Ross stopping rule) for p_max: it maintains a
// ledger of Bernoulli type-1 draws sampled in worker-parallel chunks, and
// answers Estimate(ε₀, N, budget) requests by a deterministic prefix scan
// over the per-chunk success positions — the stopping point is the draw
// at which the accumulated successes first reach Υ(ε₀, N), exactly as if
// the draws had been made one by one.
//
// Because the ledger is retained, a later request with a tighter ε₀
// (larger Υ) or a bigger budget extends the existing draw sequence
// instead of restarting: every draw the previous estimate consumed is
// reused, and the refined estimate is identical to a cold estimate at the
// tighter accuracy. The ledger state can be snapshotted to disk and
// restored (see Snapshot/Restore), making the estimate survive process
// restarts the same way pools do.
//
// Safe for concurrent use; estimation and growth are serialized.
type PmaxEstimator struct {
	eng     *Engine
	seed    int64
	workers int

	mu     sync.Mutex
	chunks []pmaxChunk
	draws  int64 // total ledgered draws = Σ chunk draws
	succ   int64 // total ledgered successes
}

// NewPmaxEstimator returns a p_max estimator drawing from the engine's
// Algorithm 2 stream family. seed fixes the draw sequence; workers bounds
// sampling parallelism (0 = all CPUs) without affecting any result.
func (e *Engine) NewPmaxEstimator(seed int64, workers int) *PmaxEstimator {
	return &PmaxEstimator{eng: e, seed: seed, workers: workers}
}

// Seed returns the seed the estimator's streams derive from.
func (pe *PmaxEstimator) Seed() int64 { return pe.seed }

// Draws returns the total number of draws in the estimator's ledger —
// every Bernoulli sample ever paid for, across all Estimate calls.
func (pe *PmaxEstimator) Draws() int64 {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	return pe.draws
}

// Successes returns the number of type-1 draws in the ledger.
func (pe *PmaxEstimator) Successes() int64 {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	return pe.succ
}

// MemBytes returns the bytes held by the estimator's chunk ledger — the
// sizing input for memory-budgeted eviction alongside pool MemBytes.
func (pe *PmaxEstimator) MemBytes() int64 {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	var b int64
	for _, c := range pe.chunks {
		b += int64(cap(c.succ))*4 + int64(cap(c.touched))*4
	}
	return b + int64(cap(pe.chunks))*56
}

// PmaxResult is the outcome of one Estimate call.
type PmaxResult struct {
	// Estimate is Υ/Draws when the rule converged, or the plain
	// Monte-Carlo mean over the budget when Truncated.
	Estimate float64
	// Draws is the number of draws the stopping rule consumed (the budget
	// itself when Truncated). It is a pure function of (seed, ε₀, N) —
	// independent of worker count and of any earlier requests.
	Draws int64
	// Reused counts the consumed draws that were already in the ledger
	// before this call — the refinement win; Sampled counts the net-new
	// draws this call added to the ledger (the growth schedule may
	// oversample past the stopping point; the surplus stays ledgered for
	// the next refinement).
	Reused  int64
	Sampled int64
	// Truncated reports that the budget was exhausted before the rule
	// accumulated Υ success mass, so Estimate carries no stopping-rule
	// accuracy guarantee. A rule that converges exactly on the last
	// budgeted draw is NOT truncated.
	Truncated bool
}

// Estimate runs the stopping rule at relative error eps ∈ (0,1) and
// failure probability 1/n, drawing at most maxDraws samples (0 = no
// budget). The ledger is extended only as far as the scan requires;
// draws already present are never resampled.
//
// On a zero-success budget exhaustion the returned error wraps
// mc.ErrZeroEstimate. With no budget and a truly unreachable target the
// growth ladder eventually overflows the chunk-table cap and returns
// an error rather than sampling forever.
func (pe *PmaxEstimator) Estimate(ctx context.Context, eps, n float64, maxDraws int64) (PmaxResult, error) {
	if eps <= 0 || eps >= 1 {
		return PmaxResult{}, fmt.Errorf("%w: eps=%v not in (0,1)", mc.ErrBadParam, eps)
	}
	if n <= 1 {
		return PmaxResult{}, fmt.Errorf("%w: N=%v must exceed 1", mc.ErrBadParam, n)
	}
	if maxDraws < 0 {
		return PmaxResult{}, fmt.Errorf("%w: maxDraws=%d negative", mc.ErrBadParam, maxDraws)
	}
	upsilon := mc.StoppingRuleThreshold(eps, n)
	// Successes are integral, so Σ first reaches Υ at the ⌈Υ⌉-th one. A
	// Υ beyond the engine's total draw capacity can never be reached:
	// needed is then pinned to an unreachable sentinel so the request
	// falls through to the budget-truncation path exactly like the
	// sequential rule — and the out-of-range float→int64 conversion
	// (implementation-defined in Go) is never taken. Unbounded requests
	// with such a Υ are rejected up front instead of sampling to the
	// chunk-table cap first.
	const drawCapacity = int64(maxPoolChunks) * ChunkSize
	needed := drawCapacity + 1
	if upsilon <= float64(drawCapacity) {
		needed = int64(math.Ceil(upsilon))
	} else if maxDraws == 0 {
		return PmaxResult{}, fmt.Errorf("%w: eps=%v needs %g successes, beyond the engine's %d-draw capacity; set a draw budget",
			mc.ErrBadParam, eps, upsilon, drawCapacity)
	}

	pe.mu.Lock()
	defer pe.mu.Unlock()
	before := pe.draws
	for {
		if d, ok := pe.stopDrawLocked(needed); ok && (maxDraws == 0 || d <= maxDraws) {
			return PmaxResult{
				Estimate: upsilon / float64(d),
				Draws:    d,
				Reused:   min(before, d),
				Sampled:  pe.draws - before,
			}, nil
		}
		if maxDraws > 0 && pe.draws >= maxDraws {
			// Budget exhausted before convergence: fall back to the plain
			// Monte-Carlo mean over exactly the budgeted prefix (the
			// ledger may extend past it from an earlier, larger request).
			s := pe.successesWithinLocked(maxDraws)
			if s == 0 {
				return PmaxResult{Draws: maxDraws, Reused: min(before, maxDraws), Sampled: pe.draws - before, Truncated: true},
					fmt.Errorf("%w (budget %d)", mc.ErrZeroEstimate, maxDraws)
			}
			return PmaxResult{
				Estimate:  float64(s) / float64(maxDraws),
				Draws:     maxDraws,
				Reused:    min(before, maxDraws),
				Sampled:   pe.draws - before,
				Truncated: true,
			}, nil
		}
		target := pmaxNextTarget(pe.draws)
		if maxDraws > 0 && target > maxDraws {
			target = maxDraws
		}
		sp := obs.TraceFrom(ctx).StartSpan(obs.StagePmax)
		err := pe.growLocked(ctx, target)
		sp.End()
		if err != nil {
			return PmaxResult{Sampled: pe.draws - before}, err
		}
	}
}

// stopDrawLocked returns the 1-based index of the draw on which the k-th
// success arrives, scanning the per-chunk success positions in chunk
// order. Caller holds pe.mu.
func (pe *PmaxEstimator) stopDrawLocked(k int64) (int64, bool) {
	if pe.succ < k {
		return 0, false
	}
	var seen, base int64
	for _, c := range pe.chunks {
		if seen+int64(len(c.succ)) >= k {
			return base + int64(c.succ[k-seen-1]) + 1, true
		}
		seen += int64(len(c.succ))
		base += c.draws
	}
	return 0, false
}

// successesWithinLocked counts the successes among the first d ledgered
// draws. Caller holds pe.mu; d ≤ pe.draws.
func (pe *PmaxEstimator) successesWithinLocked(d int64) int64 {
	var s, base int64
	for _, c := range pe.chunks {
		if base+c.draws <= d {
			s += int64(len(c.succ))
			base += c.draws
			continue
		}
		off := d - base
		return s + int64(sort.Search(len(c.succ), func(i int) bool { return int64(c.succ[i]) >= off }))
	}
	return s
}

// growLocked extends the ledger to l draws, sampling the missing chunks
// in parallel. Like pool growth, full chunks are kept and a trailing
// partial chunk is resampled at its grown size — its stream restarts, so
// the draws it already contributed are reproduced as a prefix, and only
// the net growth is charged to the engine's draw ledger. Caller holds
// pe.mu.
func (pe *PmaxEstimator) growLocked(ctx context.Context, l int64) error {
	if err := checkDraws(l); err != nil {
		return err
	}
	if l <= pe.draws {
		return nil
	}
	keep := len(pe.chunks)
	for keep > 0 && pe.chunks[keep-1].draws < ChunkSize {
		keep--
	}
	nchunks := int((l + ChunkSize - 1) / ChunkSize)
	chunks := make([]pmaxChunk, nchunks)
	copy(chunks, pe.chunks[:keep])
	err := parallel.For(ctx, nchunks-keep, pe.workers, func(i int) {
		c := keep + i
		n := int64(ChunkSize)
		if start := int64(c) * ChunkSize; start+n > l {
			n = l - start
		}
		chunks[c] = pe.eng.samplePmaxChunk(pe.seed, int64(c), n)
	})
	if err != nil {
		return err
	}
	var draws, succ int64
	for _, c := range chunks {
		draws += c.draws
		succ += int64(len(c.succ))
	}
	pe.eng.addPmaxDraws(draws - pe.draws)
	pe.chunks, pe.draws, pe.succ = chunks, draws, succ
	return nil
}

// samplePmaxChunk draws n Bernoulli type-1 samples from the stream
// (seed, nsPmax, chunk) and records the chunk-local indices of the
// successes. Like sampleChunk, it does not touch the draw ledger — the
// caller charges the net-new draws it is responsible for.
func (e *Engine) samplePmaxChunk(seed int64, chunk, n int64) pmaxChunk {
	st := rng.DerivedStream(seed, nsPmax, uint64(chunk))
	sp := e.samplers.Get().(*realization.Sampler)
	sp.BeginTouches()
	c := pmaxChunk{draws: n}
	for i := int64(0); i < n; i++ {
		if sp.SampleTGView(&st).Outcome == realization.Type1 {
			c.succ = append(c.succ, int32(i))
		}
	}
	c.touched = append([]graph.Node(nil), sp.Touches()...)
	slices.Sort(c.touched)
	e.samplers.Put(sp)
	return c
}

// Snapshot serializes the estimator's ledger — the (seed, nsPmax) stream
// identity, the instance fingerprint, the total draw count and the global
// success indices — in the internal/snapshot PmaxState format. Because
// the ledger is a pure function of (seed, draws), a restored estimator
// answers every request identically to the writer, including refinements
// that grow past the snapshotted size. A never-sampled estimator writes a
// valid empty snapshot.
func (pe *PmaxEstimator) Snapshot(w io.Writer) error {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	st := &snapshot.PmaxState{
		Seed:        pe.seed,
		NS:          nsPmax,
		Fingerprint: pe.eng.Fingerprint(),
		StreamEpoch: rng.StreamEpoch,
		Draws:       pe.draws,
		Successes:   make([]int64, 0, pe.succ),
	}
	var base int64
	for _, c := range pe.chunks {
		for _, p := range c.succ {
			st.Successes = append(st.Successes, base+int64(p))
		}
		base += c.draws
	}
	return snapshot.WritePmax(w, st)
}

// Restore loads a Snapshot into a freshly created (never-sampled)
// estimator, consuming exactly one PmaxState from r. The snapshot's
// stream identity (seed and namespace) and instance fingerprint must
// match the estimator's own; on mismatch an error is returned and the
// estimator is left cold — it resamples lazily with byte-identical
// results, so the fallback never changes an answer. Loading charges
// nothing to the engine's draw ledger.
func (pe *PmaxEstimator) Restore(r io.Reader) error {
	st, err := snapshot.ReadPmax(r)
	if err != nil {
		return err
	}
	pe.mu.Lock()
	defer pe.mu.Unlock()
	if pe.draws != 0 {
		return fmt.Errorf("engine: pmax restore into an estimator holding %d draws", pe.draws)
	}
	if st.StreamEpoch != rng.StreamEpoch {
		return fmt.Errorf("%w: pmax snapshot stream epoch %d does not match the current epoch %d (resample required)",
			ErrStreamMismatch, st.StreamEpoch, rng.StreamEpoch)
	}
	if st.Seed != pe.seed || st.NS != nsPmax {
		return fmt.Errorf("%w: pmax snapshot stream (seed %d, ns %#x) does not match estimator (seed %d, ns %#x)",
			ErrStreamMismatch, st.Seed, st.NS, pe.seed, nsPmax)
	}
	// Unlike pools, ancestor-epoch ledgers are not adopted: touch sets are
	// not persisted for p_max, so every chunk would fail the damage test
	// anyway — resetting cold re-draws the same chunks, answer-identically.
	if fp := pe.eng.Fingerprint(); st.Fingerprint != fp {
		return fmt.Errorf("%w: pmax snapshot instance fingerprint %#x does not match %#x", ErrInstanceMismatch, st.Fingerprint, fp)
	}
	if st.Draws == 0 {
		return nil // empty snapshot: the estimator starts cold, as written
	}
	if err := checkDraws(st.Draws); err != nil {
		return err
	}
	// Rebuild the per-chunk ledger by splitting the global success
	// indices at ChunkSize boundaries — the exact inverse of Snapshot, so
	// growth past the snapshotted size behaves identically to the writer.
	nchunks := int((st.Draws + ChunkSize - 1) / ChunkSize)
	chunks := make([]pmaxChunk, nchunks)
	for c := range chunks {
		start := int64(c) * ChunkSize
		chunks[c].draws = min(int64(ChunkSize), st.Draws-start)
	}
	for _, d := range st.Successes {
		c := d / ChunkSize
		chunks[c].succ = append(chunks[c].succ, int32(d%ChunkSize))
	}
	pe.chunks, pe.draws, pe.succ = chunks, st.Draws, int64(len(st.Successes))
	return nil
}
