package engine

import (
	"context"
	"sync"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// Session caches a growable realization pool across solves. Repeated
// Pool(l) calls with l at or below the cached size are served without any
// sampling; a larger l grows the pool incrementally, resampling only the
// trailing partial chunk (whose existing draws are a prefix of the grown
// chunk's stream) plus the new chunks. Because chunk streams are indexed,
// a grown pool is byte-identical to one sampled at the final size in a
// single shot — for any worker count.
//
// Session is safe for concurrent use; growth is serialized.
type Session struct {
	eng     *Engine
	seed    int64
	workers int
	ns      uint64

	mu     sync.Mutex
	chunks []chunkPaths
	draws  int64 // total draws across chunks = cached pool size
	pool   *Pool // assembled view of chunks; nil until first Pool call
}

// NewSession returns a session whose pools draw from the engine's solve
// namespace: Session.Pool(l) returns the same pool as Engine.SamplePool(l)
// for the same seed.
func (e *Engine) NewSession(seed int64, workers int) *Session {
	return &Session{eng: e, seed: seed, workers: workers, ns: nsPool}
}

// NewEvalSession returns a session over an independent stream family,
// meant for measuring f of candidate invitation sets against a pool that
// is decorrelated from the one the sets were optimized on.
func (e *Engine) NewEvalSession(seed int64, workers int) *Session {
	return &Session{eng: e, seed: seed, workers: workers, ns: nsEval}
}

// Size returns the cached pool size (0 before the first Pool call).
func (s *Session) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draws
}

// Pool returns a pool of at least l realizations, sampling only what the
// cache is missing. The returned pool's Total may exceed l when an
// earlier call requested more — estimates normalize by Total, so a larger
// pool only tightens accuracy.
func (s *Session) Pool(ctx context.Context, l int64) (*Pool, error) {
	if err := checkDraws(l); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if l <= s.draws && s.pool != nil {
		return s.pool, nil
	}

	// Keep full chunks; the trailing partial chunk (if any) is resampled
	// at its grown size — its stream restarts, so the draws it already
	// contributed are reproduced as a prefix.
	keep := len(s.chunks)
	for keep > 0 && s.chunks[keep-1].draws < ChunkSize {
		keep--
	}
	nchunks := int((l + ChunkSize - 1) / ChunkSize)
	chunks := make([]chunkPaths, nchunks)
	copy(chunks, s.chunks[:keep])
	missing := nchunks - keep
	err := parallel.For(ctx, missing, s.workers, func(i int) {
		c := keep + i
		n := int64(ChunkSize)
		if start := int64(c) * ChunkSize; start+n > l {
			n = l - start
		}
		chunks[c] = s.eng.sampleChunk(s.seed, s.ns, int64(c), n)
	})
	if err != nil {
		return nil, err
	}
	pool, err := assemblePool(chunks, s.eng.in.Graph().NumNodes())
	if err != nil {
		return nil, err
	}
	// Re-alias each chunk's arena to its segment of the assembled pool
	// arena: the cache then holds one copy of the path data (plus the
	// small per-chunk offset tables needed to reassemble on growth).
	var base int32
	for c := range chunks {
		n := int32(len(chunks[c].arena))
		chunks[c].arena = pool.arena[base : base+n]
		base += n
	}
	s.chunks = chunks
	s.draws = pool.total
	s.pool = pool
	return pool, nil
}

// EstimateF estimates f(invited) from the session's cached pool, growing
// it to at least trials draws first. Repeated estimates against the same
// session share both the draws and the pool's coverage index.
func (s *Session) EstimateF(ctx context.Context, invited *graph.NodeSet, trials int64) (float64, error) {
	p, err := s.Pool(ctx, trials)
	if err != nil {
		return 0, err
	}
	return p.EstimateF(invited), nil
}

// FractionType1 returns the cached pool's estimate of p_max = f(V),
// growing the pool to at least trials draws first.
func (s *Session) FractionType1(ctx context.Context, trials int64) (float64, error) {
	p, err := s.Pool(ctx, trials)
	if err != nil {
		return 0, err
	}
	return p.FractionType1(), nil
}
