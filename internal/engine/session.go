package engine

import (
	"context"
	"sync"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Session caches a growable realization pool across solves. Repeated
// Pool(l) calls with l at or below the cached size are served without any
// sampling; a larger l grows the pool incrementally, resampling only the
// trailing partial chunk (whose existing draws are a prefix of the grown
// chunk's stream) plus the new chunks. Because chunk streams are indexed,
// a grown pool is byte-identical to one sampled at the final size in a
// single shot — for any worker count.
//
// Pool(l) always returns the pool of EXACTLY l draws — a truncated
// prefix view when the cache has grown beyond l — so every result
// computed from it is a pure function of (seed, l), independent of what
// earlier calls happened to request. That independence is what lets a
// serving layer evict and re-admit sessions without changing any answer.
//
// Session is safe for concurrent use; growth is serialized.
type Session struct {
	eng     *Engine
	seed    int64
	workers int
	ns      uint64

	mu     sync.Mutex
	chunks []chunkPaths
	draws  int64           // total draws across chunks = cached pool size
	pool   *Pool           // assembled view of chunks; nil until first Pool call
	views  map[int64]*Pool // truncated prefix views by draw count
}

// NewSession returns a session whose pools draw from the engine's solve
// namespace: Session.Pool(l) returns the same pool as Engine.SamplePool(l)
// for the same seed.
func (e *Engine) NewSession(seed int64, workers int) *Session {
	return &Session{eng: e, seed: seed, workers: workers, ns: nsPool}
}

// NewEvalSession returns a session over an independent stream family,
// meant for measuring f of candidate invitation sets against a pool that
// is decorrelated from the one the sets were optimized on.
func (e *Engine) NewEvalSession(seed int64, workers int) *Session {
	return &Session{eng: e, seed: seed, workers: workers, ns: nsEval}
}

// Size returns the cached pool size (0 before the first Pool call).
func (s *Session) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draws
}

// MemBytes returns the bytes held by the session's cached pool, the
// per-chunk tables kept for regrowth (chunk arenas alias the pool arena
// and are not double-counted), and the coverage indexes of cached prefix
// views. It is the sizing input for memory-budgeted eviction of cold
// sessions.
func (s *Session) MemBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b int64
	for _, c := range s.chunks {
		b += int64(cap(c.offsets))*4 + int64(cap(c.drawIdx))*4 + int64(cap(c.touched))*4
	}
	if s.pool != nil {
		b += s.pool.MemBytes()
	}
	for _, v := range s.views {
		b += v.IndexMemBytes() + v.FamilyMemBytes()
	}
	return b
}

// Pool returns the pool of exactly l realizations, sampling only what
// the cache is missing: when the cached pool is larger, the returned
// pool is the zero-copy prefix view of its first l draws (identical to
// a one-shot pool of size l); when smaller, the cache grows first.
// Views are cached per draw count so repeated queries at one size share
// a coverage index.
func (s *Session) Pool(ctx context.Context, l int64) (*Pool, error) {
	if err := checkDraws(l); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if l <= s.draws && s.pool != nil {
		return s.viewLocked(l), nil
	}
	sp := obs.TraceFrom(ctx).StartSpan(obs.StagePoolGrow)
	defer sp.End()

	// Keep full chunks; the trailing partial chunk (if any) is resampled
	// at its grown size — its stream restarts, so the draws it already
	// contributed are reproduced as a prefix.
	keep := len(s.chunks)
	for keep > 0 && s.chunks[keep-1].draws < ChunkSize {
		keep--
	}
	nchunks := int((l + ChunkSize - 1) / ChunkSize)
	chunks := make([]chunkPaths, nchunks)
	copy(chunks, s.chunks[:keep])
	missing := nchunks - keep
	bufs := make([]*chunkBuf, missing)
	err := parallel.For(ctx, missing, s.workers, func(i int) {
		c := keep + i
		n := int64(ChunkSize)
		if start := int64(c) * ChunkSize; start+n > l {
			n = l - start
		}
		bufs[i] = s.eng.getChunkBuf()
		chunks[c] = s.eng.sampleChunk(s.seed, s.ns, int64(c), n, bufs[i])
	})
	if err != nil {
		return nil, err
	}
	pool, err := assemblePool(chunks, s.eng.in.Graph().NumNodes())
	if err != nil {
		return nil, err
	}
	// Charge only the net growth: regrowing the trailing partial chunk
	// re-derives draws the ledger already counted, and counting them again
	// would break the "PoolDraws equals the pool size" invariant.
	s.eng.addPoolDraws(pool.total - s.draws)
	// Re-alias each chunk's arena to its segment of the assembled pool
	// arena: the cache then holds one copy of the path data (plus the
	// small per-chunk offset tables needed to reassemble on growth).
	// The original chunk arenas are then dead and go back to the buffer
	// pool; the offset tables stay with the retained chunks.
	var base int32
	for c := range chunks {
		n := int32(len(chunks[c].arena))
		if c >= keep {
			s.eng.putChunkBuf(bufs[c-keep], chunks[c], true)
		}
		chunks[c].arena = pool.arena[base : base+n]
		base += n
	}
	s.chunks = chunks
	s.draws = pool.total
	s.pool = pool
	// Growth rebuilt the arena; cached views alias the old one. Their
	// contents remain valid prefixes, but dropping them lets the old
	// arena be reclaimed — views are cheap to re-derive.
	s.views = nil
	return s.viewLocked(l), nil
}

// maxCachedViews bounds the per-session view cache: each cached view can
// lazily build its own coverage index (comparable in size to the pool's),
// so a workload sweeping many distinct draw counts must not accumulate
// one index per count. Views are cheap to re-derive, so overflow just
// resets the cache.
const maxCachedViews = 8

// viewLocked returns the cached prefix view of exactly l draws, creating
// it if needed. Caller holds s.mu; l ≤ s.draws.
func (s *Session) viewLocked(l int64) *Pool {
	if l == s.draws {
		return s.pool
	}
	if v, ok := s.views[l]; ok {
		return v
	}
	v := s.pool.Truncate(l)
	if s.views == nil || len(s.views) >= maxCachedViews {
		s.views = make(map[int64]*Pool)
	}
	s.views[l] = v
	return v
}

// EstimateF estimates f(invited) from the session's cached pool, growing
// it to at least trials draws first. Repeated estimates against the same
// session share both the draws and the pool's coverage index.
func (s *Session) EstimateF(ctx context.Context, invited *graph.NodeSet, trials int64) (float64, error) {
	p, err := s.Pool(ctx, trials)
	if err != nil {
		return 0, err
	}
	sp := obs.TraceFrom(ctx).StartSpan(obs.StageMeasure)
	defer sp.End()
	return p.EstimateF(invited), nil
}

// EstimateFMany estimates f for every invitation set in one batched
// coverage query against the session's cached pool (grown to at least
// trials draws first): the pool's postings are traversed once for the
// whole batch instead of once per set.
func (s *Session) EstimateFMany(ctx context.Context, invited []*graph.NodeSet, trials int64) ([]float64, error) {
	p, err := s.Pool(ctx, trials)
	if err != nil {
		return nil, err
	}
	sp := obs.TraceFrom(ctx).StartSpan(obs.StageMeasure)
	defer sp.End()
	return p.EstimateFMany(invited), nil
}

// FractionType1 returns the cached pool's estimate of p_max = f(V),
// growing the pool to at least trials draws first.
func (s *Session) FractionType1(ctx context.Context, trials int64) (float64, error) {
	p, err := s.Pool(ctx, trials)
	if err != nil {
		return 0, err
	}
	sp := obs.TraceFrom(ctx).StartSpan(obs.StageMeasure)
	defer sp.End()
	return p.FractionType1(), nil
}
