package engine

import (
	"bytes"
	"context"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

// sink defeats dead-code elimination in the allocation tests.
var sink int64

// TestStaleStreamEpochPoolSnapshotRejected: a pool blob written under an
// older draw protocol (stream epoch 0 was the retired math/rand kernel)
// must be rejected on load — by OpenSession and by Restore — and the
// resample fallback must rebuild the exact same pool.
func TestStaleStreamEpochPoolSnapshotRejected(t *testing.T) {
	in := testInstance(t)
	e := New(in)
	s := e.NewSession(7, 0)
	ctx := context.Background()
	if _, err := s.Pool(ctx, 3000); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := s.Snapshot(&want); err != nil {
		t.Fatal(err)
	}
	sp, err := snapshot.Read(bytes.NewReader(want.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sp.StreamEpoch = rng.StreamEpoch - 1
	var stale bytes.Buffer
	if err := snapshot.Write(&stale, sp); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenSession(e, bytes.NewReader(stale.Bytes()), 0); err == nil {
		t.Error("OpenSession accepted a stale stream-epoch snapshot")
	}
	fresh := New(in).NewSession(7, 0)
	if err := fresh.Restore(bytes.NewReader(stale.Bytes())); err == nil {
		t.Error("Restore accepted a stale stream-epoch snapshot")
	}
	// The serving layer's fallback after a rejected restore is plain
	// resampling; it must produce a byte-identical pool.
	if _, err := fresh.Pool(ctx, 3000); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := fresh.Snapshot(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("resample fallback pool differs from the rejected snapshot's")
	}
}

// TestStaleStreamEpochPmaxSnapshotRejected is the p_max-ledger twin: a
// pre-epoch PmaxState is rejected by Restore and the estimator, left
// cold, resamples to the identical estimate.
func TestStaleStreamEpochPmaxSnapshotRejected(t *testing.T) {
	in := testInstance(t)
	pe := New(in).NewPmaxEstimator(7, 0)
	ctx := context.Background()
	want, err := pe.Estimate(ctx, 0.2, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pe.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := snapshot.ReadPmax(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	st.StreamEpoch = rng.StreamEpoch - 1
	var stale bytes.Buffer
	if err := snapshot.WritePmax(&stale, st); err != nil {
		t.Fatal(err)
	}

	fresh := New(in).NewPmaxEstimator(7, 0)
	if err := fresh.Restore(bytes.NewReader(stale.Bytes())); err == nil {
		t.Error("pmax Restore accepted a stale stream-epoch snapshot")
	}
	if fresh.Draws() != 0 {
		t.Fatalf("rejected restore left %d draws in the ledger", fresh.Draws())
	}
	got, err := fresh.Estimate(ctx, 0.2, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("resample fallback estimate %+v differs from %+v", got, want)
	}
}

// TestSampleChunkZeroAlloc pins the steady-state sampling contract: once
// the engine's sampler and chunk-buffer pools are warm, drawing a chunk
// allocates nothing.
func TestSampleChunkZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	in := testInstance(t)
	e := New(in)
	run := func() {
		b := e.getChunkBuf()
		cp := e.sampleChunk(7, nsPool, 0, ChunkSize, b)
		sink += int64(len(cp.offsets))
		e.putChunkBuf(b, cp, false)
	}
	run() // warm the sampler and size the chunk arrays
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Errorf("warmed sampleChunk allocates %v per run, want 0", allocs)
	}
}

// TestCoverageCountZeroAlloc pins the positive-side query paths — both
// the bit-plane tally for heavy sets and the epoch scatter for light
// ones — to zero allocations per query.
func TestCoverageCountZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	in := testInstance(t)
	pool, err := New(in).SamplePool(context.Background(), 50000, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	ix := pool.Index()
	if len(ix.nodes) == 0 {
		t.Skip("empty pool")
	}
	byPostings := append([]graph.Node(nil), ix.nodes...)
	sort.Slice(byPostings, func(i, j int) bool {
		pi := ix.off[byPostings[i]+1] - ix.off[byPostings[i]]
		pj := ix.off[byPostings[j]+1] - ix.off[byPostings[j]]
		return pi > pj
	})
	total := int64(len(ix.ids))

	// Heavy positive side: popular nodes until the planes path engages,
	// while staying on the positive (invited) side of the postings split.
	heavy := graph.NewNodeSet(pool.universe)
	var inv int64
	for _, v := range byPostings {
		if p := int64(ix.off[v+1] - ix.off[v]); inv+p <= total/2 {
			heavy.Add(v)
			inv += p
		}
		if ix.planesWorthIt(inv) {
			break
		}
	}
	// Light positive side: the single least-popular pool node.
	lightNode := byPostings[len(byPostings)-1]
	light := graph.NewNodeSetOf(pool.universe, lightNode)

	cases := []struct {
		name    string
		set     *graph.NodeSet
		planes  bool
		skipMsg string
	}{
		{"planes", heavy, true, "graph too small to engage the planes path"},
		{"scatter", light, false, "least-popular node still crosses the planes cutoff"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var p int64
			ix.forEachInvited(tc.set, func(v graph.Node) {
				p += int64(ix.off[v+1] - ix.off[v])
			})
			if ix.planesWorthIt(p) != tc.planes || p > total-p {
				t.Skip(tc.skipMsg)
			}
			set := tc.set
			sink = ix.CoverageCount(set) // warm
			if allocs := testing.AllocsPerRun(20, func() {
				sink += ix.CoverageCount(set)
			}); allocs != 0 {
				t.Errorf("positive-side CoverageCount allocates %v per query, want 0", allocs)
			}
		})
	}
}

// TestPmaxRepeatEstimateZeroAlloc pins the refine fast path: once the
// ledger covers a request, answering it again is a pure prefix scan with
// no allocation.
func TestPmaxRepeatEstimateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	in := testInstance(t)
	pe := New(in).NewPmaxEstimator(7, 0)
	ctx := context.Background()
	if _, err := pe.Estimate(ctx, 0.2, 1000, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := pe.Estimate(ctx, 0.1, 1000, 0); err != nil { // refine
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		r, err := pe.Estimate(ctx, 0.1, 1000, 0)
		if err != nil {
			panic(err)
		}
		sink += r.Draws
	}); allocs != 0 {
		t.Errorf("ledger-covered Estimate allocates %v per call, want 0", allocs)
	}
}
