package engine

import (
	"slices"
	"sync"

	"repro/internal/graph"
)

// Lineage is the process-local epoch history of one evolving graph: epoch
// 0 is the graph a server was constructed with, and every applied delta
// appends the post-delta graph's fingerprint together with the delta's
// dirty node set. It is the key that turns snapshot fingerprint
// mismatches into repairs: a pool blob written at epoch N and loaded at
// epoch N+k resolves its fingerprint to the ancestor entry, and the
// union of the dirty sets of epochs N+1..N+k is exactly the damage test
// input under which undamaged chunks may be adopted as-is.
//
// The lineage is deliberately not persisted: it only ever relates epochs
// one process has itself lived through (or been told about via deltas),
// and a snapshot from an unknown fingerprint still fails closed into a
// full resample — answer-identical, just slower.
//
// Safe for concurrent use.
type Lineage struct {
	mu     sync.RWMutex
	epochs []lineageEpoch
}

type lineageEpoch struct {
	graphFP uint64
	dirty   []graph.Node // vs. the previous epoch; nil for the base epoch
}

// NewLineage returns a lineage rooted at the given graph fingerprint
// (epoch 0).
func NewLineage(baseGraphFP uint64) *Lineage {
	return &Lineage{epochs: []lineageEpoch{{graphFP: baseGraphFP}}}
}

// Head returns the current (newest) epoch's graph fingerprint.
func (l *Lineage) Head() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.epochs[len(l.epochs)-1].graphFP
}

// Epochs returns the number of recorded epochs (1 for a fresh lineage).
func (l *Lineage) Epochs() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.epochs)
}

// Advance records the epoch produced by applying a delta with the given
// dirty node set to the current head. The dirty slice is copied.
func (l *Lineage) Advance(graphFP uint64, dirty []graph.Node) {
	cp := append([]graph.Node(nil), dirty...)
	l.mu.Lock()
	l.epochs = append(l.epochs, lineageEpoch{graphFP: graphFP, dirty: cp})
	l.mu.Unlock()
}

// dirtySince scans epochs newest-first for one whose graph fingerprint
// satisfies match and returns the sorted union of the dirty sets of every
// epoch after it — the damage-test input for adopting state written at
// that epoch. Matching the head returns an empty (non-nil) union.
func (l *Lineage) dirtySince(match func(graphFP uint64) bool) ([]graph.Node, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for i := len(l.epochs) - 1; i >= 0; i-- {
		if !match(l.epochs[i].graphFP) {
			continue
		}
		union := []graph.Node{}
		for j := i + 1; j < len(l.epochs); j++ {
			union = append(union, l.epochs[j].dirty...)
		}
		slices.Sort(union)
		return slices.Compact(union), true
	}
	return nil, false
}

// DirtySinceGraph resolves a graph-epoch fingerprint against the lineage,
// returning the accumulated dirty set since that epoch (sorted distinct)
// and whether the fingerprint was found.
func (l *Lineage) DirtySinceGraph(graphFP uint64) ([]graph.Node, bool) {
	return l.dirtySince(func(fp uint64) bool { return fp == graphFP })
}

// ancestorDirty resolves an *instance* fingerprint from a snapshot
// against the engine's bound lineage: if it is this (s, t) instance at an
// ancestor epoch of the engine's graph, the accumulated dirty set since
// that epoch is returned. Without a bound lineage nothing resolves.
func (e *Engine) ancestorDirty(snapFP uint64) ([]graph.Node, bool) {
	if e.lineage == nil {
		return nil, false
	}
	s, t := e.in.S(), e.in.T()
	return e.lineage.dirtySince(func(gfp uint64) bool {
		return instanceFingerprint(gfp, s, t) == snapFP
	})
}
