package engine

import (
	"fmt"
	"io"

	"repro/internal/rng"
	"repro/internal/snapshot"
)

// Snapshot serializes the session's cached pool — arena, offsets,
// per-path draw indices, universe and total draws, plus the (seed,
// namespace) that produced it — in the internal/snapshot format. Because
// pool contents are a pure function of (seed, l), a snapshot loaded by
// OpenSession or Restore is byte-identical to the live pool, and every
// solve or estimate computed from it returns identical results: spilling
// to disk is a latency decision, never a correctness one. A session that
// has not sampled yet writes a valid empty snapshot.
func (s *Session) Snapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := &snapshot.Pool{
		Seed:        s.seed,
		NS:          uint64(s.ns),
		Fingerprint: s.eng.Fingerprint(),
		StreamEpoch: rng.StreamEpoch,
		Universe:    int64(s.eng.in.Graph().NumNodes()),
		Total:       s.draws,
		Offsets:     []int32{0},
	}
	if s.pool != nil {
		sp.Offsets = s.pool.offsets
		sp.PathDraw = s.pool.pathDraw
		sp.Arena = s.pool.arena[:s.pool.offsets[s.pool.NumType1()]]
	}
	return snapshot.Write(w, sp)
}

// SnapshotSize returns the exact byte size Snapshot would write now.
func (s *Session) SnapshotSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pool == nil {
		return snapshot.EncodedSize(&snapshot.Pool{Offsets: []int32{0}})
	}
	return snapshot.EncodedSize(&snapshot.Pool{
		Offsets: s.pool.offsets,
		Arena:   s.pool.arena[:s.pool.offsets[s.pool.NumType1()]],
	})
}

// Seed returns the seed the session's streams derive from.
func (s *Session) Seed() int64 { return s.seed }

// OpenSession loads a session from a snapshot written by Snapshot: the
// pool, its per-chunk regrow tables, and the (seed, namespace) identity
// all come from the snapshot, so the loaded session behaves exactly like
// the one that wrote it — including growth past the snapshotted size,
// which resamples only the missing chunks. Reading consumes exactly one
// snapshot from r, leaving any following bytes unread.
func OpenSession(e *Engine, r io.Reader, workers int) (*Session, error) {
	sp, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	return sessionFromSnapshot(e, sp, workers)
}

// OpenSessionBytes is OpenSession over an in-memory or mmap'd blob
// holding exactly one snapshot. On little-endian hosts the session's
// pool aliases data zero-copy: the caller must keep data immutable and
// alive (for an mmap'd file, mapped) as long as the session or any pool
// view derived from it is in use.
func OpenSessionBytes(e *Engine, data []byte, workers int) (*Session, error) {
	sp, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	return sessionFromSnapshot(e, sp, workers)
}

// OpenSessionData builds a session directly from an already-decoded
// snapshot — the zero-copy mmap path: pair it with snapshot.OpenFile,
// whose pools alias the mapped region (keep the file open for the
// session's lifetime).
func OpenSessionData(e *Engine, sp *snapshot.Pool, workers int) (*Session, error) {
	return sessionFromSnapshot(e, sp, workers)
}

func sessionFromSnapshot(e *Engine, sp *snapshot.Pool, workers int) (*Session, error) {
	s := &Session{eng: e, seed: sp.Seed, workers: workers, ns: sp.NS}
	if err := s.adoptSnapshot(sp); err != nil {
		return nil, err
	}
	return s, nil
}

// Restore loads a snapshot into a freshly created (never-sampled)
// session. Unlike OpenSession it validates that the snapshot's stream
// identity matches the session's own (seed and namespace), so a serving
// layer restoring spilled pair state cannot adopt bytes sampled under a
// different configuration — a mismatch returns an error and the caller
// falls back to resampling, which yields the same answers.
func (s *Session) Restore(r io.Reader) error {
	sp, err := snapshot.Read(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draws != 0 {
		return fmt.Errorf("engine: restore into a session holding %d draws", s.draws)
	}
	if sp.Seed != s.seed || sp.NS != s.ns {
		return fmt.Errorf("engine: snapshot stream (seed %d, ns %#x) does not match session (seed %d, ns %#x)",
			sp.Seed, sp.NS, s.seed, s.ns)
	}
	return s.adoptSnapshotLocked(sp)
}

func (s *Session) adoptSnapshot(sp *snapshot.Pool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adoptSnapshotLocked(sp)
}

// adoptSnapshotLocked installs the snapshot's pool and rebuilds the
// per-chunk tables growth needs. Caller holds s.mu. Loading charges
// nothing to the engine's draw ledger: the whole point of a snapshot is
// that its draws were paid for in a previous life.
func (s *Session) adoptSnapshotLocked(sp *snapshot.Pool) error {
	// The stream epoch is part of the pool's identity: bytes sampled
	// under another draw protocol are correct for that protocol only, so
	// adopting them would silently mix generations. Rejecting here sends
	// every caller down its resample fallback, which is answer-identical.
	if sp.StreamEpoch != rng.StreamEpoch {
		return fmt.Errorf("engine: snapshot stream epoch %d does not match the current epoch %d (resample required)",
			sp.StreamEpoch, rng.StreamEpoch)
	}
	if n := int64(s.eng.in.Graph().NumNodes()); sp.Universe != n {
		return fmt.Errorf("engine: snapshot universe %d does not match the %d-node instance", sp.Universe, n)
	}
	// Same node count is not same instance: a restart against a modified
	// graph or weight scheme must resample rather than adopt stale pools.
	if fp := s.eng.Fingerprint(); sp.Fingerprint != fp {
		return fmt.Errorf("engine: snapshot instance fingerprint %#x does not match %#x", sp.Fingerprint, fp)
	}
	if sp.Total == 0 {
		return nil // empty snapshot: the session starts cold, as written
	}
	if err := checkDraws(sp.Total); err != nil {
		return err
	}
	pool := &Pool{
		arena:    sp.Arena,
		offsets:  sp.Offsets,
		pathDraw: sp.PathDraw,
		total:    sp.Total,
		universe: int(sp.Universe),
	}
	s.pool = pool
	s.draws = pool.total
	s.chunks = chunksFromPool(pool)
	s.views = nil
	return nil
}

// chunksFromPool rebuilds the per-chunk CSR tables from an assembled
// pool by splitting its draw indices at ChunkSize boundaries — the exact
// inverse of assemblePool, so a loaded session's chunk state is
// byte-identical to the writer's and growth behaves identically (the
// trailing partial chunk, if any, is still resampled on growth with the
// loaded draws as its stream prefix).
func chunksFromPool(p *Pool) []chunkPaths {
	nchunks := int((p.total + ChunkSize - 1) / ChunkSize)
	chunks := make([]chunkPaths, nchunks)
	lo := 0
	for c := range chunks {
		start := int64(c) * ChunkSize
		end := min(start+ChunkSize, p.total)
		hi := lo
		for hi < len(p.pathDraw) && p.pathDraw[hi] < end {
			hi++
		}
		cp := chunkPaths{
			draws:   end - start,
			arena:   p.arena[p.offsets[lo]:p.offsets[hi]],
			offsets: make([]int32, hi-lo+1),
			drawIdx: make([]int32, hi-lo),
		}
		base := p.offsets[lo]
		for j := lo; j < hi; j++ {
			cp.offsets[j-lo+1] = p.offsets[j+1] - base
			cp.drawIdx[j-lo] = int32(p.pathDraw[j] - start)
		}
		chunks[c] = cp
		lo = hi
	}
	return chunks
}
