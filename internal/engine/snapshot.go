package engine

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

// Sentinel causes for snapshot rejection, wrapped into the returned
// errors so serving layers can ledger rejections by kind (errors.Is).
var (
	// ErrStreamMismatch: the blob was sampled under a different stream
	// identity — seed, namespace, or rng.StreamEpoch draw protocol.
	ErrStreamMismatch = errors.New("engine: snapshot stream identity mismatch")
	// ErrInstanceMismatch: the blob belongs to a different problem
	// instance — a fingerprint that is neither the current instance nor,
	// when a lineage is bound, any ancestor epoch of it.
	ErrInstanceMismatch = errors.New("engine: snapshot instance mismatch")
)

// Snapshot serializes the session's cached pool — arena, offsets,
// per-path draw indices, universe and total draws, plus the (seed,
// namespace) that produced it — in the internal/snapshot format. Because
// pool contents are a pure function of (seed, l), a snapshot loaded by
// OpenSession or Restore is byte-identical to the live pool, and every
// solve or estimate computed from it returns identical results: spilling
// to disk is a latency decision, never a correctness one. A session that
// has not sampled yet writes a valid empty snapshot.
// When every cached chunk carries touch information, the pool blob is
// followed by a touch section (snapshot.TouchSet) recording the per-chunk
// damage-test sets, so a later process can adopt-and-repair the blob
// across graph deltas instead of resampling it wholesale. The section is
// optional on read; a session restored without one still answers
// identically, it just repairs more conservatively.
func (s *Session) Snapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := &snapshot.Pool{
		Seed:        s.seed,
		NS:          uint64(s.ns),
		Fingerprint: s.eng.Fingerprint(),
		StreamEpoch: rng.StreamEpoch,
		Universe:    int64(s.eng.in.Graph().NumNodes()),
		Total:       s.draws,
		Offsets:     []int32{0},
	}
	if s.pool != nil {
		sp.Offsets = s.pool.offsets
		sp.PathDraw = s.pool.pathDraw
		sp.Arena = s.pool.arena[:s.pool.offsets[s.pool.NumType1()]]
	}
	if err := snapshot.Write(w, sp); err != nil {
		return err
	}
	ts := s.touchSetLocked()
	if ts == nil {
		return nil
	}
	return snapshot.WriteTouch(w, ts)
}

// touchSetLocked flattens the per-chunk touch lists into a serializable
// TouchSet, or nil when the session has no chunks or any chunk lacks
// touch information (all-or-nothing: a partially-informed section could
// not distinguish "untouched" from "unknown"). Caller holds s.mu.
func (s *Session) touchSetLocked() *snapshot.TouchSet {
	if len(s.chunks) == 0 {
		return nil
	}
	total := 0
	for _, c := range s.chunks {
		if c.touched == nil {
			return nil
		}
		total += len(c.touched)
	}
	ts := &snapshot.TouchSet{
		StreamEpoch: rng.StreamEpoch,
		Universe:    int64(s.eng.in.Graph().NumNodes()),
		Offsets:     make([]int32, 1, len(s.chunks)+1),
		Nodes:       make([]int32, 0, total),
	}
	for _, c := range s.chunks {
		ts.Nodes = append(ts.Nodes, c.touched...)
		ts.Offsets = append(ts.Offsets, int32(len(ts.Nodes)))
	}
	return ts
}

// SnapshotSize returns the exact byte size Snapshot would write now.
func (s *Session) SnapshotSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pool == nil {
		return snapshot.EncodedSize(&snapshot.Pool{Offsets: []int32{0}})
	}
	sz := snapshot.EncodedSize(&snapshot.Pool{
		Offsets: s.pool.offsets,
		Arena:   s.pool.arena[:s.pool.offsets[s.pool.NumType1()]],
	})
	var nodes int64
	complete := len(s.chunks) > 0
	for _, c := range s.chunks {
		if c.touched == nil {
			complete = false
			break
		}
		nodes += int64(len(c.touched))
	}
	if complete {
		sz += snapshot.EncodedSizeTouchFor(int64(len(s.chunks)), nodes)
	}
	return sz
}

// Seed returns the seed the session's streams derive from.
func (s *Session) Seed() int64 { return s.seed }

// peeker is the subset of bufio.Reader used to detect an optional touch
// section without consuming stream bytes.
type peeker interface {
	io.Reader
	Peek(int) ([]byte, error)
}

// readSnapshotAndTouch reads one pool blob from r plus, when the next
// bytes carry the touch magic, the touch section that follows it. The
// lookahead needs a reader that can un-consume 8 bytes — Peek (e.g. a
// *bufio.Reader) or Seek (bytes.Reader, *os.File); any other reader
// leaves a touch section unread, which is harmless: repair then treats
// every chunk as damaged.
func readSnapshotAndTouch(r io.Reader) (*snapshot.Pool, *snapshot.TouchSet, error) {
	sp, err := snapshot.Read(r)
	if err != nil {
		return nil, nil, err
	}
	hasTouch := false
	switch rr := r.(type) {
	case peeker:
		b, err := rr.Peek(8)
		hasTouch = err == nil && snapshot.IsTouch(b)
	case io.ReadSeeker:
		var hdr [8]byte
		n, err := io.ReadFull(rr, hdr[:])
		if n > 0 {
			if _, serr := rr.Seek(int64(-n), io.SeekCurrent); serr != nil {
				return nil, nil, serr
			}
		}
		hasTouch = err == nil && snapshot.IsTouch(hdr[:])
	}
	if !hasTouch {
		return sp, nil, nil
	}
	ts, err := snapshot.ReadTouch(r)
	if err != nil {
		return nil, nil, err
	}
	return sp, ts, nil
}

// OpenSession loads a session from a snapshot written by Snapshot: the
// pool, its per-chunk regrow tables, and the (seed, namespace) identity
// all come from the snapshot, so the loaded session behaves exactly like
// the one that wrote it — including growth past the snapshotted size,
// which resamples only the missing chunks. Reading consumes the pool
// blob plus its touch section when one follows — r should support Peek
// (e.g. a *bufio.Reader; a plain reader loads the pool but leaves the
// touch bytes unread).
func OpenSession(e *Engine, r io.Reader, workers int) (*Session, error) {
	sp, ts, err := readSnapshotAndTouch(r)
	if err != nil {
		return nil, err
	}
	return sessionFromSnapshot(e, sp, ts, workers)
}

// OpenSessionBytes is OpenSession over an in-memory or mmap'd blob
// holding exactly one snapshot (optionally followed by its touch
// section). On little-endian hosts the session's pool aliases data
// zero-copy: the caller must keep data immutable and alive (for an
// mmap'd file, mapped) as long as the session or any pool view derived
// from it is in use.
func OpenSessionBytes(e *Engine, data []byte, workers int) (*Session, error) {
	sp, n, err := snapshot.DecodeNext(data)
	if err != nil {
		return nil, err
	}
	rest := data[n:]
	var ts *snapshot.TouchSet
	if len(rest) > 0 && snapshot.IsTouch(rest) {
		t, m, err := snapshot.DecodeTouchNext(rest)
		if err != nil {
			return nil, err
		}
		ts, rest = t, rest[m:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", snapshot.ErrFormat, len(rest))
	}
	return sessionFromSnapshot(e, sp, ts, workers)
}

// OpenSessionData builds a session directly from an already-decoded
// snapshot — the zero-copy mmap path: pair it with snapshot.OpenFile,
// whose pools alias the mapped region (keep the file open for the
// session's lifetime). No touch section rides along on this path, so a
// later delta repair resamples every chunk.
func OpenSessionData(e *Engine, sp *snapshot.Pool, workers int) (*Session, error) {
	return sessionFromSnapshot(e, sp, nil, workers)
}

func sessionFromSnapshot(e *Engine, sp *snapshot.Pool, ts *snapshot.TouchSet, workers int) (*Session, error) {
	s := &Session{eng: e, seed: sp.Seed, workers: workers, ns: sp.NS}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.adoptSnapshotLocked(sp, ts); err != nil {
		return nil, err
	}
	return s, nil
}

// Restore loads a snapshot into a freshly created (never-sampled)
// session. Unlike OpenSession it validates that the snapshot's stream
// identity matches the session's own (seed and namespace), so a serving
// layer restoring spilled pair state cannot adopt bytes sampled under a
// different configuration — a mismatch returns an error (wrapping
// ErrStreamMismatch or ErrInstanceMismatch) and the caller falls back to
// resampling, which yields the same answers. When the engine is bound to
// a lineage, a snapshot from an ancestor graph epoch is adopted and
// repaired instead of rejected (see adoptSnapshotLocked).
func (s *Session) Restore(r io.Reader) error {
	sp, ts, err := readSnapshotAndTouch(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draws != 0 {
		return fmt.Errorf("engine: restore into a session holding %d draws", s.draws)
	}
	if sp.Seed != s.seed || sp.NS != s.ns {
		return fmt.Errorf("%w: snapshot stream (seed %d, ns %#x) does not match session (seed %d, ns %#x)",
			ErrStreamMismatch, sp.Seed, sp.NS, s.seed, s.ns)
	}
	return s.adoptSnapshotLocked(sp, ts)
}

// attachTouch hands each rebuilt chunk its persisted touch list when the
// touch section matches the pool's stream epoch and geometry; on any
// mismatch the lists stay nil and a later repair degrades to resampling
// every chunk (correct, just slower).
func attachTouch(chunks []chunkPaths, ts *snapshot.TouchSet, sp *snapshot.Pool) {
	if ts == nil || ts.StreamEpoch != sp.StreamEpoch || ts.Universe != sp.Universe || ts.NumChunks() != len(chunks) {
		return
	}
	for c := range chunks {
		nodes := ts.Nodes[ts.Offsets[c]:ts.Offsets[c+1]]
		if len(nodes) == 0 {
			continue // a sampled chunk always touches t; empty means unknown
		}
		chunks[c].touched = nodes
	}
}

// adoptSnapshotLocked installs the snapshot's pool and rebuilds the
// per-chunk tables growth needs. Caller holds s.mu. Loading charges
// nothing to the engine's draw ledger: the whole point of a snapshot is
// that its draws were paid for in a previous life. (Draws re-made
// repairing an ancestor-epoch blob ARE charged, to the repair ledger.)
//
// A fingerprint (or universe) mismatch is terminal unless the engine's
// bound lineage resolves the snapshot's fingerprint to an ancestor epoch
// of this same instance; then the blob is adopted and repaired — chunks
// untouched by the epochs' accumulated dirty set keep their bytes,
// damaged chunks are resampled — leaving the session byte-identical to
// one sampled cold at the current epoch.
func (s *Session) adoptSnapshotLocked(sp *snapshot.Pool, ts *snapshot.TouchSet) error {
	// The stream epoch is part of the pool's identity: bytes sampled
	// under another draw protocol are correct for that protocol only, so
	// adopting them would silently mix generations. Rejecting here sends
	// every caller down its resample fallback, which is answer-identical.
	if sp.StreamEpoch != rng.StreamEpoch {
		return fmt.Errorf("%w: snapshot stream epoch %d does not match the current epoch %d (resample required)",
			ErrStreamMismatch, sp.StreamEpoch, rng.StreamEpoch)
	}
	n := int64(s.eng.in.Graph().NumNodes())
	var repairDirty []graph.Node
	repair := false
	if fp := s.eng.Fingerprint(); sp.Fingerprint != fp || sp.Universe != n {
		// Same node count is not same instance: a restart against a
		// modified graph or weight scheme must not silently adopt stale
		// pools. An ancestor epoch of this instance's own lineage is the
		// one exception — its blob is adopted and repaired below. (Deltas
		// only grow the universe, so an ancestor universe never exceeds n.)
		dirty, ok := s.eng.ancestorDirty(sp.Fingerprint)
		if !ok || sp.Universe > n {
			return fmt.Errorf("%w: snapshot instance fingerprint %#x (universe %d) matches neither %#x (universe %d) nor a lineage ancestor",
				ErrInstanceMismatch, sp.Fingerprint, sp.Universe, fp, n)
		}
		repair, repairDirty = true, dirty
	}
	if sp.Total == 0 {
		return nil // empty snapshot: the session starts cold, as written
	}
	if err := checkDraws(sp.Total); err != nil {
		return err
	}
	pool := &Pool{
		arena:    sp.Arena,
		offsets:  sp.Offsets,
		pathDraw: sp.PathDraw,
		total:    sp.Total,
		universe: int(sp.Universe),
	}
	chunks := chunksFromPool(pool)
	attachTouch(chunks, ts, sp)
	if repair {
		rchunks, bufs, _, err := repairChunks(context.Background(), s.eng, s.seed, s.ns, chunks, repairDirty, s.workers)
		if err != nil {
			return err
		}
		rpool, err := assemblePool(rchunks, int(n))
		if err != nil {
			return err
		}
		var base int32
		for c := range rchunks {
			cn := int32(len(rchunks[c].arena))
			if bufs[c] != nil {
				s.eng.putChunkBuf(bufs[c], rchunks[c], true)
			}
			rchunks[c].arena = rpool.arena[base : base+cn]
			base += cn
		}
		pool, chunks = rpool, rchunks
	}
	s.pool = pool
	s.draws = pool.total
	s.chunks = chunks
	s.views = nil
	return nil
}

// chunksFromPool rebuilds the per-chunk CSR tables from an assembled
// pool by splitting its draw indices at ChunkSize boundaries — the exact
// inverse of assemblePool, so a loaded session's chunk state is
// byte-identical to the writer's and growth behaves identically (the
// trailing partial chunk, if any, is still resampled on growth with the
// loaded draws as its stream prefix).
func chunksFromPool(p *Pool) []chunkPaths {
	nchunks := int((p.total + ChunkSize - 1) / ChunkSize)
	chunks := make([]chunkPaths, nchunks)
	lo := 0
	for c := range chunks {
		start := int64(c) * ChunkSize
		end := min(start+ChunkSize, p.total)
		hi := lo
		for hi < len(p.pathDraw) && p.pathDraw[hi] < end {
			hi++
		}
		cp := chunkPaths{
			draws:   end - start,
			arena:   p.arena[p.offsets[lo]:p.offsets[hi]],
			offsets: make([]int32, hi-lo+1),
			drawIdx: make([]int32, hi-lo),
		}
		base := p.offsets[lo]
		for j := lo; j < hi; j++ {
			cp.offsets[j-lo+1] = p.offsets[j+1] - base
			cp.drawIdx[j-lo] = int32(p.pathDraw[j] - start)
		}
		chunks[c] = cp
		lo = hi
	}
	return chunks
}
