package engine

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/setcover"
)

// setcoverGreedy runs the one-shot greedy on the pool's CSR instance — an
// independent fresh fold to compare the cached family against.
func setcoverGreedy(pool *Pool, p int) (*setcover.Solution, error) {
	return setcover.Greedy(pool.SetcoverInstance(), p)
}

// coverageBatchPool samples one pool with an index for the batch tests.
func coverageBatchPool(t *testing.T) *Pool {
	t.Helper()
	in := testInstance(t)
	pool, err := New(in).SamplePool(context.Background(), 12000, 0, 21)
	if err != nil {
		t.Fatal(err)
	}
	if pool.NumType1() == 0 {
		t.Skip("no type-1 realizations")
	}
	return pool
}

// randomQuerySets builds a batch that exercises both postings sides:
// small random sets and unions of sampled paths (positive side), plus
// near-universe sets (complement side), an empty set and a nil entry.
func randomQuerySets(rng *rand.Rand, pool *Pool) []*graph.NodeSet {
	n := pool.Universe()
	var sets []*graph.NodeSet
	// Small random sets: cheap positive side.
	for i := 0; i < 4; i++ {
		s := graph.NewNodeSet(n)
		for j := 0; j < 1+rng.Intn(5); j++ {
			s.Add(graph.Node(rng.Intn(n)))
		}
		sets = append(sets, s)
	}
	// Unions of pooled paths: the solver-output shape.
	for i := 0; i < 3; i++ {
		s := graph.NewNodeSet(n)
		for j := 0; j < 1+rng.Intn(8); j++ {
			for _, v := range pool.Path(rng.Intn(pool.NumType1())) {
				s.Add(v)
			}
		}
		sets = append(sets, s)
	}
	// Near-universe sets: the complement side carries fewer postings.
	for i := 0; i < 3; i++ {
		s := graph.NewNodeSet(n)
		s.Fill()
		for j := 0; j < rng.Intn(4); j++ {
			s.Remove(graph.Node(rng.Intn(n)))
		}
		sets = append(sets, s)
	}
	// Full universe, empty, and nil (treated as empty).
	full := graph.NewNodeSet(n)
	full.Fill()
	sets = append(sets, full, graph.NewNodeSet(n), nil)
	return sets
}

// TestCoverageCountsParity: the batched query must agree with a loop of
// single CoverageCount calls on every kind of set — both postings sides,
// empty and full sets — and with the raw pool scan.
func TestCoverageCountsParity(t *testing.T) {
	pool := coverageBatchPool(t)
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 5; round++ {
		sets := randomQuerySets(rng, pool)
		got := pool.Index().CoverageCounts(sets)
		if len(got) != len(sets) {
			t.Fatalf("round %d: %d counts for %d sets", round, len(got), len(sets))
		}
		for j, s := range sets {
			if s == nil {
				// nil counts as the empty invitation set.
				empty := graph.NewNodeSet(pool.Universe())
				if want := pool.Index().CoverageCount(empty); got[j] != want {
					t.Errorf("round %d set %d (nil): batch %d, single(empty) %d", round, j, got[j], want)
				}
				continue
			}
			if want := pool.Index().CoverageCount(s); got[j] != want {
				t.Errorf("round %d set %d: batch %d, single %d", round, j, got[j], want)
			}
			if want := pool.CoverageCount(s); got[j] != want {
				t.Errorf("round %d set %d: batch %d, scan %d", round, j, got[j], want)
			}
		}
	}
}

// TestCoverageCountsEdgeBatches: empty batches and degenerate entries.
func TestCoverageCountsEdgeBatches(t *testing.T) {
	pool := coverageBatchPool(t)
	if got := pool.Index().CoverageCounts(nil); len(got) != 0 {
		t.Errorf("nil batch: %v, want empty", got)
	}
	if got := pool.Index().CoverageCounts([]*graph.NodeSet{}); len(got) != 0 {
		t.Errorf("empty batch: %v, want empty", got)
	}
	// All-nil and all-empty batches count no coverage (paths are non-empty).
	got := pool.Index().CoverageCounts([]*graph.NodeSet{nil, graph.NewNodeSet(pool.Universe())})
	for j, c := range got {
		if c != 0 {
			t.Errorf("degenerate set %d: count %d, want 0", j, c)
		}
	}
	// Duplicated sets must count independently and identically.
	full := graph.NewNodeSet(pool.Universe())
	full.Fill()
	dup := pool.Index().CoverageCounts([]*graph.NodeSet{full, full, full})
	for j := 1; j < len(dup); j++ {
		if dup[j] != dup[0] {
			t.Errorf("duplicate sets disagree: %v", dup)
		}
	}
	if dup[0] != int64(pool.NumType1()) {
		t.Errorf("full-universe count = %d, want %d", dup[0], pool.NumType1())
	}
}

// TestEstimateFManyMatchesEstimateF: the batched estimates must equal the
// single-set estimates bit for bit (same counts, same division).
func TestEstimateFManyMatchesEstimateF(t *testing.T) {
	pool := coverageBatchPool(t)
	rng := rand.New(rand.NewSource(13))
	sets := randomQuerySets(rng, pool)
	got := pool.EstimateFMany(sets)
	for j, s := range sets {
		if s == nil {
			continue
		}
		if want := pool.EstimateF(s); got[j] != want {
			t.Errorf("set %d: batch %v, single %v", j, got[j], want)
		}
	}
}

// TestSessionEstimateFMany: the session path must grow the pool and agree
// with per-set EstimateF at the same trial count.
func TestSessionEstimateFMany(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	sess := New(in).NewEvalSession(7, 0)
	n := in.Graph().NumNodes()
	a := graph.NewNodeSet(n)
	a.Fill()
	b := graph.NewNodeSet(n)
	b.Add(graph.Node(n - 1))
	got, err := sess.EstimateFMany(ctx, []*graph.NodeSet{a, b}, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Size() != 6000 {
		t.Fatalf("session size = %d, want 6000", sess.Size())
	}
	for j, s := range []*graph.NodeSet{a, b} {
		want, err := sess.EstimateF(ctx, s, 6000)
		if err != nil {
			t.Fatal(err)
		}
		if got[j] != want {
			t.Errorf("set %d: batch %v, single %v", j, got[j], want)
		}
	}
}

// TestPoolFamilyCachedAndAccounted: Family() must build once, be shared
// across calls, agree with a fresh fold of the same CSR instance, and
// show up in the pool's MemBytes the moment it exists.
func TestPoolFamilyCachedAndAccounted(t *testing.T) {
	pool := coverageBatchPool(t)
	pre := pool.MemBytes()
	if pool.FamilyMemBytes() != 0 {
		t.Fatalf("FamilyMemBytes before build = %d, want 0", pool.FamilyMemBytes())
	}
	fam, err := pool.Family()
	if err != nil {
		t.Fatal(err)
	}
	again, err := pool.Family()
	if err != nil {
		t.Fatal(err)
	}
	if fam != again {
		t.Error("Family() not cached: distinct pointers")
	}
	if fam.NumSets() != pool.NumType1() {
		t.Errorf("family |U| = %d, want %d", fam.NumSets(), pool.NumType1())
	}
	if pool.FamilyMemBytes() != fam.MemBytes() {
		t.Errorf("FamilyMemBytes = %d, want %d", pool.FamilyMemBytes(), fam.MemBytes())
	}
	if got := pool.MemBytes(); got != pre+fam.MemBytes() {
		t.Errorf("MemBytes after family build = %d, want %d", got, pre+fam.MemBytes())
	}
	// Solves through the cached family must match one-shot Greedy on the
	// same CSR instance (the engine-side half of the parity guarantee; the
	// solver-level parity tests live in internal/setcover).
	demand := pool.NumType1() / 2
	if demand < 1 {
		demand = 1
	}
	got, err := fam.Solve(demand)
	if err != nil {
		t.Fatal(err)
	}
	want, err := setcoverGreedy(pool, demand)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Union) != len(want.Union) || got.Covered != want.Covered || got.Picked != want.Picked {
		t.Fatalf("family solve %+v != one-shot %+v", got, want)
	}
	for i := range got.Union {
		if got.Union[i] != want.Union[i] {
			t.Fatalf("unions differ at %d", i)
		}
	}
}

// TestTruncatedViewFamilyIndependent: a truncated view folds its own
// (smaller) family over its own path prefix, independent of the parent's.
func TestTruncatedViewFamilyIndependent(t *testing.T) {
	in := testInstance(t)
	pool, err := New(in).SamplePool(context.Background(), 8000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	view := pool.Truncate(2000)
	oneShot, err := New(in).SamplePool(context.Background(), 2000, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	vf, err := view.Family()
	if err != nil {
		t.Fatal(err)
	}
	of, err := oneShot.Family()
	if err != nil {
		t.Fatal(err)
	}
	if vf.NumSets() != of.NumSets() || vf.NumFolded() != of.NumFolded() {
		t.Fatalf("view family (%d sets, %d folded) != one-shot (%d, %d)",
			vf.NumSets(), vf.NumFolded(), of.NumSets(), of.NumFolded())
	}
	if view.FamilyMemBytes() != vf.MemBytes() {
		t.Errorf("view FamilyMemBytes = %d, want %d", view.FamilyMemBytes(), vf.MemBytes())
	}
}
