package engine

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/ltm"
	"repro/internal/mc"
	"repro/internal/realization"
	"repro/internal/rng"
)

// TestPmaxEstimatorMatchesSequentialRule: for a request that converges
// within the first chunk, the chunked estimator must agree exactly with
// the sequential mc.StoppingRule over the same stream — chunk 0 reads
// the stream (seed, nsPmax, 0), which is precisely what a sequential
// estimator drawing one by one would consume.
func TestPmaxEstimatorMatchesSequentialRule(t *testing.T) {
	in := mustInstance(t, line(4), 0, 3) // p_max = 1/2
	const eps, n, seed = 0.2, 10.0, 7

	sp := realization.NewSampler(in)
	st := rng.DerivedStream(seed, nsPmax, 0)
	want, wantDraws, truncated, err := mc.StoppingRule(context.Background(), eps, n, 0, func() bool {
		return sp.SampleTG(&st).Outcome == realization.Type1
	})
	if err != nil || truncated {
		t.Fatalf("sequential reference: %v (truncated %v)", err, truncated)
	}
	if wantDraws >= ChunkSize {
		t.Fatalf("reference needs %d draws; test requires convergence inside chunk 0", wantDraws)
	}

	res, err := New(in).NewPmaxEstimator(seed, 4).Estimate(context.Background(), eps, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != want || res.Draws != wantDraws || res.Truncated {
		t.Errorf("chunked = %v/%d/%v, sequential = %v/%d", res.Estimate, res.Draws, res.Truncated, want, wantDraws)
	}
	if math.Abs(res.Estimate-0.5) > 0.2 {
		t.Errorf("estimate %v far from p_max = 0.5", res.Estimate)
	}
}

// TestPmaxDeterminismAcrossWorkers: the estimate — every field of the
// result, and the ledger it leaves behind — is a pure function of the
// seed for any worker count.
func TestPmaxDeterminismAcrossWorkers(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	type outcome struct {
		res   PmaxResult
		draws int64
	}
	var ref outcome
	for i, workers := range []int{1, 2, 8} {
		pe := New(in).NewPmaxEstimator(11, workers)
		res, err := pe.Estimate(ctx, 0.1, 1000, 0)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := outcome{res: res, draws: pe.Draws()}
		if i == 0 {
			ref = got
			if res.Draws <= ChunkSize {
				t.Fatalf("stopping point %d inside one chunk; pick a tighter eps for a multi-chunk test", res.Draws)
			}
			continue
		}
		if got != ref {
			t.Errorf("workers=%d diverged: %+v vs %+v", workers, got, ref)
		}
	}
}

// TestPmaxRefineMatchesCold is the resumability contract: refining a
// coarse estimate (ε₀ = 0.3) to a tight one (ε₀ = 0.1) reuses every draw
// the coarse pass sampled, and the refined estimate is identical — in
// every field — to a cold estimate at the tight accuracy. Checked for
// several worker counts.
func TestPmaxRefineMatchesCold(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	for _, workers := range []int{1, 2, 8} {
		engCold := New(in)
		cold, err := engCold.NewPmaxEstimator(3, workers).Estimate(ctx, 0.1, 1000, 0)
		if err != nil {
			t.Fatal(err)
		}

		engRef := New(in)
		pe := engRef.NewPmaxEstimator(3, workers)
		coarse, err := pe.Estimate(ctx, 0.3, 1000, 0)
		if err != nil {
			t.Fatal(err)
		}
		ledgerAfterCoarse := pe.Draws()
		refined, err := pe.Estimate(ctx, 0.1, 1000, 0)
		if err != nil {
			t.Fatal(err)
		}

		if refined.Estimate != cold.Estimate || refined.Draws != cold.Draws || refined.Truncated != cold.Truncated {
			t.Errorf("workers=%d: refined %+v != cold %+v", workers, refined, cold)
		}
		if coarse.Draws >= refined.Draws {
			t.Errorf("workers=%d: coarse stopping point %d not before refined %d", workers, coarse.Draws, refined.Draws)
		}
		// All prior draws are reused...
		if refined.Reused != ledgerAfterCoarse {
			t.Errorf("workers=%d: refined reused %d draws, want the whole coarse ledger %d",
				workers, refined.Reused, ledgerAfterCoarse)
		}
		// ...so the refinement samples strictly less than the cold run,
		// asserted on the engines' draw ledgers.
		if refined.Sampled >= cold.Sampled {
			t.Errorf("workers=%d: refine sampled %d draws, cold sampled %d — no reuse",
				workers, refined.Sampled, cold.Sampled)
		}
		if engRef.PmaxDraws() != pe.Draws() {
			t.Errorf("workers=%d: engine ledger %d != estimator ledger %d (regrow double-counted?)",
				workers, engRef.PmaxDraws(), pe.Draws())
		}
		if got, want := engRef.PmaxDraws(), engCold.PmaxDraws(); got != want {
			t.Errorf("workers=%d: staged ledger %d != cold ledger %d (schedules diverged)", workers, got, want)
		}
	}
}

// TestPmaxTruncationBoundary pins the budget semantics the sequential
// rule's callers used to get wrong: a budget equal to the exact
// convergence point converges (not truncated, same estimate), one draw
// less is a genuine truncation returning the plain mean over the budget.
func TestPmaxTruncationBoundary(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	free, err := New(in).NewPmaxEstimator(5, 2).Estimate(ctx, 0.2, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := free.Draws

	exact, err := New(in).NewPmaxEstimator(5, 2).Estimate(ctx, 0.2, 100, d)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Truncated || exact.Estimate != free.Estimate || exact.Draws != d {
		t.Errorf("budget %d (= convergence) mismarked: %+v, want %+v", d, exact, free)
	}

	short, err := New(in).NewPmaxEstimator(5, 2).Estimate(ctx, 0.2, 100, d-1)
	if err != nil {
		t.Fatal(err)
	}
	if !short.Truncated || short.Draws != d-1 {
		t.Errorf("budget %d (one short): %+v, want truncated at %d draws", d-1, short, d-1)
	}

	// A truncated request against a ledger that already extends past the
	// budget (from the unbounded run) must use exactly the budgeted
	// prefix, matching the fresh estimator's answer.
	pe := New(in).NewPmaxEstimator(5, 2)
	if _, err := pe.Estimate(ctx, 0.2, 100, 0); err != nil {
		t.Fatal(err)
	}
	again, err := pe.Estimate(ctx, 0.2, 100, d-1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Estimate != short.Estimate || again.Draws != short.Draws || !again.Truncated {
		t.Errorf("truncated answer from an over-full ledger %+v != fresh %+v", again, short)
	}
	if again.Sampled != 0 {
		t.Errorf("over-full ledger sampled %d new draws for a within-ledger request", again.Sampled)
	}
}

// TestPmaxZeroSuccesses: a disconnected target exhausts its budget with
// zero successes and reports mc.ErrZeroEstimate.
func TestPmaxZeroSuccesses(t *testing.T) {
	in := disconnectedInstance(t)
	res, err := New(in).NewPmaxEstimator(1, 2).Estimate(context.Background(), 0.1, 100, 3000)
	if !errors.Is(err, mc.ErrZeroEstimate) {
		t.Fatalf("err = %v, want ErrZeroEstimate", err)
	}
	if res.Draws != 3000 || !res.Truncated {
		t.Errorf("zero-success result %+v, want the full 3000-draw budget, truncated", res)
	}
}

// TestPmaxAstronomicalThreshold: an eps tiny enough to push Υ past the
// engine's total draw capacity (Υ overflows int64; the float→int64
// conversion is implementation-defined) must not panic: with a budget it
// degrades to the sequential rule's budget-truncated plain mean, and
// unbounded it is rejected up front as a bad parameter.
func TestPmaxAstronomicalThreshold(t *testing.T) {
	in := mustInstance(t, line(4), 0, 3)
	ctx := context.Background()
	res, err := New(in).NewPmaxEstimator(3, 2).Estimate(ctx, 1e-9, 1e5, 10000)
	if err != nil {
		t.Fatalf("budgeted astronomical eps: %v", err)
	}
	if !res.Truncated || res.Draws != 10000 || math.Abs(res.Estimate-0.5) > 0.05 {
		t.Errorf("budgeted astronomical eps: %+v, want truncated plain mean ~0.5 over 10000 draws", res)
	}
	if _, err := New(in).NewPmaxEstimator(3, 2).Estimate(ctx, 1e-9, 1e5, 0); !errors.Is(err, mc.ErrBadParam) {
		t.Errorf("unbounded astronomical eps: err = %v, want ErrBadParam", err)
	}
}

func TestPmaxEstimateValidation(t *testing.T) {
	pe := New(testInstance(t)).NewPmaxEstimator(1, 1)
	ctx := context.Background()
	for _, c := range []struct {
		eps, n float64
		budget int64
	}{
		{0, 100, 0}, {1, 100, 0}, {0.1, 1, 0}, {0.1, 100, -5},
	} {
		if _, err := pe.Estimate(ctx, c.eps, c.n, c.budget); !errors.Is(err, mc.ErrBadParam) {
			t.Errorf("Estimate(%v,%v,%d): err = %v, want ErrBadParam", c.eps, c.n, c.budget, err)
		}
	}
	ctxc, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := pe.Estimate(ctxc, 0.1, 100, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled: err = %v", err)
	}
}

// TestPmaxSnapshotRoundTrip: snapshot → restore reproduces the ledger
// exactly, charges nothing to the engine's draw ledger, and a refinement
// after the restore continues identically to one on the original.
func TestPmaxSnapshotRoundTrip(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	eng := New(in)
	pe := eng.NewPmaxEstimator(9, 4)
	coarse, err := pe.Estimate(ctx, 0.25, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pe.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	eng2 := New(in)
	pe2 := eng2.NewPmaxEstimator(9, 1)
	if err := pe2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if eng2.PmaxDraws() != 0 || eng2.Draws() != 0 {
		t.Errorf("restore charged %d draws to the engine ledger", eng2.Draws())
	}
	if pe2.Draws() != pe.Draws() || pe2.Successes() != pe.Successes() {
		t.Errorf("restored ledger %d/%d, want %d/%d", pe2.Draws(), pe2.Successes(), pe.Draws(), pe.Successes())
	}
	// Same request: answered from the ledger with zero sampling.
	re, err := pe2.Estimate(ctx, 0.25, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if re.Estimate != coarse.Estimate || re.Draws != coarse.Draws || re.Sampled != 0 {
		t.Errorf("restored answer %+v, want %+v with 0 sampled", re, coarse)
	}
	// Refinement past the snapshotted size matches the original's.
	want, err := pe.Estimate(ctx, 0.1, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pe2.Estimate(ctx, 0.1, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("post-restore refinement %+v != original %+v", got, want)
	}
}

// TestPmaxSnapshotEmpty: a never-sampled estimator writes a valid empty
// snapshot that restores to a cold estimator.
func TestPmaxSnapshotEmpty(t *testing.T) {
	in := testInstance(t)
	eng := New(in)
	var buf bytes.Buffer
	if err := eng.NewPmaxEstimator(3, 1).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	pe := eng.NewPmaxEstimator(3, 1)
	if err := pe.Restore(bufio.NewReader(bytes.NewReader(buf.Bytes()))); err != nil {
		t.Fatal(err)
	}
	if pe.Draws() != 0 {
		t.Errorf("empty snapshot restored %d draws", pe.Draws())
	}
}

// TestPmaxSnapshotMismatchFallsBackCold: restoring a snapshot with the
// wrong stream identity or instance fingerprint errors without adopting
// any state, and the estimator then resamples with answers identical to
// a clean cold run — the mismatch is a latency event, not a correctness
// event.
func TestPmaxSnapshotMismatchFallsBackCold(t *testing.T) {
	in := testInstance(t)
	ctx := context.Background()
	eng := New(in)
	writer := eng.NewPmaxEstimator(9, 2)
	if _, err := writer.Estimate(ctx, 0.3, 100, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writer.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Wrong seed.
	pe := eng.NewPmaxEstimator(10, 2)
	if err := pe.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("seed-mismatched snapshot adopted")
	}
	if pe.Draws() != 0 {
		t.Fatalf("mismatch left %d draws behind", pe.Draws())
	}
	clean, err := eng.NewPmaxEstimator(10, 2).Estimate(ctx, 0.3, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := pe.Estimate(ctx, 0.3, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cold != clean {
		t.Errorf("post-mismatch estimate %+v != clean cold %+v", cold, clean)
	}

	// Wrong instance: same seed, different graph.
	other := New(mustInstance(t, randomConnected(8, 30, 40), 0, 29))
	pe2 := other.NewPmaxEstimator(9, 2)
	if err := pe2.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("fingerprint-mismatched snapshot adopted")
	}

	// Restoring into a warm estimator is refused.
	if err := writer.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("restore into a warm estimator accepted")
	}
}

// disconnectedInstance returns an instance whose target is unreachable
// from the initiator (p_max = 0).
func disconnectedInstance(t *testing.T) *ltm.Instance {
	t.Helper()
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(3, 4)
	return mustInstance(t, b.Build(), 0, 4)
}

// TestPmaxGrowthLadder pins the growth schedule's contract: rungs are a
// pure function of ledger size (request-independent — this is what keeps
// staged and cold ledgers byte-identical), chunk-aligned, strictly
// increasing, and capped near 1.25× so the oversample past the stopping
// draw stays small.
func TestPmaxGrowthLadder(t *testing.T) {
	if got := pmaxNextTarget(0); got != pmaxInitialDraws {
		t.Fatalf("cold rung = %d, want %d", got, pmaxInitialDraws)
	}
	draws := int64(0)
	for rung := 0; rung < 60; rung++ {
		next := pmaxNextTarget(draws)
		if next%ChunkSize != 0 {
			t.Fatalf("rung %d: target %d not chunk-aligned", rung, next)
		}
		if next <= draws {
			t.Fatalf("rung %d: target %d does not grow past %d", rung, next, draws)
		}
		if draws >= 8*ChunkSize {
			if ratio := float64(next) / float64(draws); ratio > 1.5 {
				t.Fatalf("rung %d: growth ratio %.2f too aggressive (%d -> %d)", rung, ratio, draws, next)
			}
		}
		draws = next
	}
	// Sixty rungs of ~1.25× growth still reach billions of draws — the
	// finer ladder trades at most a constant factor of rung count.
	if draws < int64(1)<<31 {
		t.Fatalf("ladder stalled: 60 rungs reach only %d draws", draws)
	}
}
