package rng

import "math/bits"

// StreamEpoch identifies the generation of the draw protocol: the PRNG
// family (xoshiro256++ seeded by splitmix64) together with the draw
// primitives built on it (Float64 from the top 53 bits, Intn by
// multiply-shift). Any change to either alters which realizations a
// fixed (seed, namespace, index) stream produces, so pool and p_max
// snapshots embed the epoch alongside their stream identity and loaders
// reject blobs from another epoch — the caller falls back to resampling,
// which is always answer-correct under the new protocol.
//
// Epoch history:
//
//	0 — math/rand (Go 1 LCG-based source) streams; retired.
//	1 — xoshiro256++ value streams (current).
const StreamEpoch uint32 = 1

// Stream is a value-type xoshiro256++ generator: 4 words of state, no
// heap allocation, methods cheap enough to inline into sampling loops.
// It replaces *math/rand.Rand in every chunk kernel — seeding a Stream
// costs four splitmix64 rounds instead of math/rand's 607-word lattice
// initialization, which used to dominate short chunks.
//
// A Stream is NOT safe for concurrent use; it is meant to live on the
// stack of one sampling loop. The zero value is usable but fixed —
// always derive via NewStream or DerivedStream.
type Stream struct {
	s0, s1, s2, s3 uint64
}

// NewStream returns a stream seeded from seed by four rounds of
// splitmix64, the initialization recommended by the xoshiro authors.
func NewStream(seed int64) Stream {
	z := uint64(seed)
	var st Stream
	st.s0 = splitmix64(z)
	z += 0x9e3779b97f4a7c15
	st.s1 = splitmix64(z)
	z += 0x9e3779b97f4a7c15
	st.s2 = splitmix64(z)
	z += 0x9e3779b97f4a7c15
	st.s3 = splitmix64(z)
	if st.s0|st.s1|st.s2|st.s3 == 0 {
		// The all-zero state is the one fixed point of the generator;
		// splitmix64 cannot in fact produce it from any seed, but guard
		// anyway so the invariant is local.
		st.s0 = 0x9e3779b97f4a7c15
	}
	return st
}

// DerivedStream returns the stream for (seed, namespace, index): the
// Stream equivalent of DeriveStreamRand, using the same DeriveStream
// child-seed derivation so stream families from distinct call sites stay
// decorrelated.
func DerivedStream(seed int64, namespace, index uint64) Stream {
	return NewStream(DeriveStream(seed, namespace, index))
}

// Uint64 returns the next 64 uniform bits (xoshiro256++).
func (st *Stream) Uint64() uint64 {
	r := bits.RotateLeft64(st.s0+st.s3, 23) + st.s0
	t := st.s1 << 17
	st.s2 ^= st.s0
	st.s3 ^= st.s1
	st.s1 ^= st.s2
	st.s0 ^= st.s3
	st.s2 ^= t
	st.s3 = bits.RotateLeft64(st.s3, 45)
	return r
}

// Float64 returns a uniform float64 in [0, 1) built from the top 53 bits.
func (st *Stream) Float64() float64 {
	return float64(st.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform integer in [0, n) for n > 0 by multiply-shift
// (Lemire): the high word of u·n over the full 64-bit range. It consumes
// exactly one Uint64 — no rejection loop — so stream consumption is a
// fixed function of the draw protocol; the price is a selection bias of
// at most n·2⁻⁶⁴ per outcome, many orders below the Monte-Carlo noise
// floor of any estimate built on it. Behavior for n ≤ 0 is undefined.
func (st *Stream) Intn(n int) int {
	hi, _ := bits.Mul64(st.Uint64(), uint64(n))
	return int(hi)
}
