// Package rng provides deterministic, splittable pseudo-random sources so
// that every stochastic component of the library (realization sampling,
// threshold draws, generators, experiment pair selection) is reproducible
// for a fixed seed, independent of goroutine scheduling.
//
// Two kinds of source coexist:
//
//   - Stream, a value-type xoshiro256++ generator used by every sampling
//     hot path (chunk kernels, threshold draws). Streams are derived per
//     (seed, namespace, chunk index) via DerivedStream, so results are
//     pure functions of the seed regardless of worker count.
//   - *math/rand.Rand wrappers (DeriveRand, DeriveStreamRand, NextRand)
//     for cold paths — generators, experiment pair selection — where the
//     heavyweight seeding cost is irrelevant.
//
// The exact draw protocol of Stream is versioned by StreamEpoch (see
// stream.go): artifacts whose bytes depend on stream contents — pool and
// p_max snapshots — record the epoch they were sampled under, and loaders
// reject blobs from another epoch so two protocol generations are never
// silently mixed. Rejection degrades to resampling, never to a wrong
// answer.
package rng

import (
	"math/rand"
)

// splitmix64 advances and mixes a 64-bit state; used to derive independent
// stream seeds from a root seed. This is the standard SplitMix64 finalizer.
func splitmix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seeder deterministically derives child seeds from a root seed. The
// zero value is a valid seeder rooted at 0.
type Seeder struct {
	root uint64
	ctr  uint64
}

// NewSeeder returns a Seeder rooted at seed.
func NewSeeder(seed int64) *Seeder {
	return &Seeder{root: uint64(seed)}
}

// Next returns the next derived child seed. Successive calls yield
// well-decorrelated values even for adjacent roots.
func (s *Seeder) Next() int64 {
	s.ctr++
	return int64(splitmix64(s.root ^ splitmix64(s.ctr)))
}

// NextRand returns a *rand.Rand seeded with the next derived seed.
// The returned Rand is NOT safe for concurrent use; derive one per
// goroutine.
func (s *Seeder) NextRand() *rand.Rand {
	return rand.New(rand.NewSource(s.Next()))
}

// Derive returns a deterministic child seed for (seed, stream) without
// mutating any state; use it when streams are indexed rather than
// sequential (e.g. one stream per worker id).
func Derive(seed int64, stream uint64) int64 {
	return int64(splitmix64(uint64(seed) ^ splitmix64(stream+0x51ed2701)))
}

// DeriveRand returns a *rand.Rand for (seed, stream); see Derive.
func DeriveRand(seed int64, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(Derive(seed, stream)))
}

// DeriveStream returns a deterministic child seed for (seed, namespace,
// index). The namespace keeps indexed stream families from distinct call
// sites (pool sampling, estimation, p_max draws, …) decorrelated even when
// they share a root seed and overlapping index ranges — deriving by index
// alone would hand two phases of one run identical streams.
func DeriveStream(seed int64, namespace, index uint64) int64 {
	return Derive(Derive(seed, namespace), index)
}

// DeriveStreamRand returns a *rand.Rand for (seed, namespace, index); see
// DeriveStream.
func DeriveStreamRand(seed int64, namespace, index uint64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveStream(seed, namespace, index)))
}
