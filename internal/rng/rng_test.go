package rng

import (
	"testing"
)

func TestSeederDeterministic(t *testing.T) {
	a, b := NewSeeder(42), NewSeeder(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same root seeders diverged")
		}
	}
}

func TestSeederStreamsDiffer(t *testing.T) {
	s := NewSeeder(42)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		v := s.Next()
		if seen[v] {
			t.Fatalf("duplicate child seed %d", v)
		}
		seen[v] = true
	}
}

func TestSeederRootsDecorrelated(t *testing.T) {
	// Adjacent roots must produce different first children.
	if NewSeeder(1).Next() == NewSeeder(2).Next() {
		t.Error("adjacent roots collide")
	}
}

func TestNextRandUsable(t *testing.T) {
	r := NewSeeder(7).NextRand()
	v := r.Float64()
	if v < 0 || v >= 1 {
		t.Errorf("Float64 = %v", v)
	}
}

func TestDerive(t *testing.T) {
	if Derive(5, 1) == Derive(5, 2) {
		t.Error("streams collide")
	}
	if Derive(5, 1) != Derive(5, 1) {
		t.Error("Derive not deterministic")
	}
	if Derive(5, 1) == Derive(6, 1) {
		t.Error("seeds collide")
	}
	r1 := DeriveRand(5, 3)
	r2 := DeriveRand(5, 3)
	for i := 0; i < 10; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("DeriveRand streams diverged")
		}
	}
}
