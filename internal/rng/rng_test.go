package rng

import (
	"fmt"
	"testing"
)

func TestSeederDeterministic(t *testing.T) {
	a, b := NewSeeder(42), NewSeeder(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same root seeders diverged")
		}
	}
}

func TestSeederStreamsDiffer(t *testing.T) {
	s := NewSeeder(42)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		v := s.Next()
		if seen[v] {
			t.Fatalf("duplicate child seed %d", v)
		}
		seen[v] = true
	}
}

func TestSeederRootsDecorrelated(t *testing.T) {
	// Adjacent roots must produce different first children.
	if NewSeeder(1).Next() == NewSeeder(2).Next() {
		t.Error("adjacent roots collide")
	}
}

func TestNextRandUsable(t *testing.T) {
	r := NewSeeder(7).NextRand()
	v := r.Float64()
	if v < 0 || v >= 1 {
		t.Errorf("Float64 = %v", v)
	}
}

func TestDerive(t *testing.T) {
	if Derive(5, 1) == Derive(5, 2) {
		t.Error("streams collide")
	}
	if Derive(5, 1) != Derive(5, 1) {
		t.Error("Derive not deterministic")
	}
	if Derive(5, 1) == Derive(6, 1) {
		t.Error("seeds collide")
	}
	r1 := DeriveRand(5, 3)
	r2 := DeriveRand(5, 3)
	for i := 0; i < 10; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("DeriveRand streams diverged")
		}
	}
}

// TestDeriveStreamNamespacing: indexed stream families from different
// namespaces must not collide even with a shared root seed — the bug this
// guards against is two sampling phases consuming identical streams.
func TestDeriveStreamNamespacing(t *testing.T) {
	const seed = 42
	seen := map[int64]string{}
	for _, ns := range []uint64{0x506F6F4C, 0x45737446, 0x4576616C} {
		for idx := uint64(0); idx < 100; idx++ {
			v := DeriveStream(seed, ns, idx)
			if prev, ok := seen[v]; ok {
				t.Fatalf("stream seed collision: (ns=%#x, idx=%d) vs %s", ns, idx, prev)
			}
			seen[v] = fmt.Sprintf("(ns=%#x, idx=%d)", ns, idx)
		}
	}
	if DeriveStream(1, 2, 3) != DeriveStream(1, 2, 3) {
		t.Error("DeriveStream not deterministic")
	}
	if DeriveStream(1, 2, 3) == Derive(1, 3) {
		t.Error("namespaced stream equals un-namespaced Derive")
	}
}
